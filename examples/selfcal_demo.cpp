// Self-calibrating install: deploy Cyclops with zero manual measurement.
//
// The paper's Stage 2 seeds its optimizer from a hand-measured guess of
// the deployment geometry.  This demo flips on `blind_stage2`: the 12
// mapping parameters are recovered from the ~30 aligned tuples alone
// (multi-start SO(3) search anchored by the fact that an aligned beam
// passes through the headset), then verified by pointing the link.
#include <cstdio>

#include "core/calibration.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Self-calibrating install (no manual measurement) ==\n\n");

  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);

  core::CalibrationConfig config;
  config.blind_stage2 = true;  // ignore all deployment knowledge
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, config, rng);

  std::printf("stage 1: TX %.2f mm avg, RX %.2f mm avg board error\n",
              util::m_to_mm(calib.tx_stage1.avg_error_m),
              util::m_to_mm(calib.rx_stage1.avg_error_m));
  std::printf("blind stage 2: Lemma-1 residual %.2f mm avg over %zu "
              "tuples\n",
              util::m_to_mm(calib.mapping.avg_coincidence_m),
              calib.stage2_samples.size());
  std::printf("recovered TX mapping vs hidden truth: %.1f mm / %.1f mrad "
              "off\n\n",
              util::m_to_mm(geom::translation_distance(
                  calib.mapping.map_tx, proto.true_map_tx)),
              util::rad_to_mrad(geom::rotation_distance(
                  calib.mapping.map_tx, proto.true_map_tx)));

  // Proof: point the link from a fresh tracker report.
  const core::PointingSolver solver = calib.make_pointing_solver();
  const geom::Pose psi =
      proto.tracker.report(0, proto.nominal_rig_pose).pose;
  const core::PointingResult p = solver.solve(psi, {});
  const double power = proto.scene.received_power_dbm(p.voltages);
  std::printf("pointing from a fresh report: %.1f dBm (sensitivity %.0f) "
              "-> link %s\n",
              power, proto.scene.config().sfp.rx_sensitivity_dbm,
              power >= proto.scene.config().sfp.rx_sensitivity_dbm ? "UP"
                                                                   : "DOWN");
  return 0;
}

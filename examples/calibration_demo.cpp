// Walkthrough of Cyclops's two-stage learning pipeline (§4) with the
// intermediate numbers printed at each step:
//
//   Stage 1 (pre-deployment): learn each GMA's 25 physical parameters on
//   the grid-board rig from ~266 (x, y, v1, v2) samples.
//   Stage 2 (at deployment): learn the 12 mapping parameters from ~30
//   exhaustively-aligned 5-tuples using the Lemma-1 coincidence error.
//   Then: invert G computationally (G') and point in real time (P).
#include <cstdio>

#include "core/calibration.hpp"
#include "core/evaluation.hpp"
#include "core/gprime.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Cyclops calibration walkthrough ==\n\n");

  sim::Prototype proto = sim::make_prototype(7, sim::prototype_10g_config());
  util::Rng rng(11);

  // ---- Stage 1, by hand, for the TX GMA ----
  std::printf("[stage 1] collecting board samples for the TX GMA...\n");
  const galvo::GalvoMirror tx_galvo(proto.tx_galvo_truth,
                                    galvo::gvs102_spec());
  const auto samples = core::collect_board_samples(
      tx_galvo, proto.k_from_tx_gma, core::BoardConfig{}, rng);
  std::printf("  %zu samples (19 x 14 interior grid points)\n",
              samples.size());
  std::printf("  example tuple: x=%.3f m, y=%.3f m -> v1=%.3f V, v2=%.3f V\n",
              samples[0].x, samples[0].y, samples[0].v1, samples[0].v2);

  const core::GmaModel guess =
      core::nominal_kspace_guess(proto.config.board_distance);
  double guess_error = 0.0;
  for (const auto& s : samples) guess_error += core::board_error(guess, s);
  std::printf("  CAD initial guess board error: %.2f mm avg\n",
              util::m_to_mm(guess_error / samples.size()));

  const core::KSpaceFitReport tx_fit = core::fit_kspace_model(samples, guess);
  std::printf("  after Levenberg-Marquardt (%d iterations): %.2f mm avg, "
              "%.2f mm max\n\n",
              tx_fit.optimizer_iterations, util::m_to_mm(tx_fit.avg_error_m),
              util::m_to_mm(tx_fit.max_error_m));

  // ---- Full pipeline (stage 1 for both + stage 2) ----
  std::printf("[stage 2] full pipeline: exhaustive alignment at ~30 rig "
              "poses + joint 12-parameter fit...\n");
  core::CalibrationConfig config;
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, config, rng);
  std::printf("  collected %zu aligned 5-tuples\n",
              calib.stage2_samples.size());
  std::printf("  Lemma-1 coincidence after fit: %.2f mm avg, %.2f mm max\n",
              util::m_to_mm(calib.mapping.avg_coincidence_m),
              util::m_to_mm(calib.mapping.max_coincidence_m));
  std::printf("  learned TX mapping vs hidden truth: %.2f mm / %.2f mrad "
              "off\n",
              util::m_to_mm(geom::translation_distance(
                  calib.mapping.map_tx, proto.true_map_tx)),
              util::rad_to_mrad(geom::rotation_distance(
                  calib.mapping.map_tx, proto.true_map_tx)));

  // ---- G' inversion, purely computational ----
  const core::PointingSolver solver = calib.make_pointing_solver();
  const auto boresight = solver.tx_vr().trace(0.0, 0.0);
  const geom::Vec3 target = boresight->at(1.7);
  const core::GPrimeResult gp =
      core::GPrimeSolver().solve(solver.tx_vr(), target);
  std::printf("\n[G'] aim the TX beam through a target point: converged in "
              "%d iterations, miss %.4f mm\n",
              gp.iterations, util::m_to_mm(gp.miss_distance));

  // ---- P, end to end ----
  const geom::Pose psi = proto.tracker.report(0, proto.nominal_rig_pose).pose;
  const core::PointingResult p = solver.solve(psi, {});
  const double power = proto.scene.received_power_dbm(p.voltages);
  std::printf("[P]  pointing from a VRH report: %d iterations -> voltages "
              "(%.2f, %.2f, %.2f, %.2f) V -> received power %.1f dBm\n",
              p.iterations, p.voltages.tx1, p.voltages.tx2, p.voltages.rx1,
              p.voltages.rx2, power);
  std::printf("     (SFP sensitivity %.0f dBm: link %s)\n",
              proto.scene.config().sfp.rx_sensitivity_dbm,
              power >= proto.scene.config().sfp.rx_sensitivity_dbm
                  ? "UP"
                  : "DOWN");
  return 0;
}

// Spectator fan-out demo: one VR session streamed through a flapping
// FSO -> mmWave heterogeneous link and fanned out to 4 spectators.
//
// Two planes, wired through HeteroConfig::on_slot:
//   1. The link plane — a 10G FSO chain with a 60 GHz mmWave fallback
//     (the handover_demo Part-2 rig) under a passer-by occluder that
//     blocks the FSO LOS 2 s out of every 6.  Its per-slot delivered
//     rate is captured into a timeline.
//   2. The streaming plane — stream::StreamPipeline replays that
//     timeline as its CapacityFn: the encoder rate-adapts, frames are
//     packetized through the zero-copy arena, and the headset plus 4
//     lossy spectators reassemble and play out through jitter buffers,
//     all sharing the headset's arena slabs refcount-only.
//
// Prints per-receiver freeze/drop stats and the obs registry in
// Prometheus text format (DESIGN.md §14 has the architecture).
#include <cstdio>
#include <vector>

#include "core/calibration.hpp"
#include "core/tp_controller.hpp"
#include "link/hetero_session.hpp"
#include "motion/profile.hpp"
#include "obs/export.hpp"
#include "phy/mmwave_channel.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"
#include "stream/pipeline.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Spectator fan-out over a flapping FSO -> mmWave link "
              "==\n\n");

  // ---- Link plane: the handover_demo rig, occluded 2 s of every 6.
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng calib_rng(42 ^ 0x9e3779b97f4a7c15ULL);
  core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, calib_rng);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  phy::MmWaveChannelConfig mm_config;
  mm_config.ap_position =
      proto.nominal_rig_pose.translation() + geom::Vec3{0.0, 1.2, 0.0};
  phy::MmWaveChannel fallback{mm_config};

  const double session_s = 12.0;
  const motion::StillMotion still(proto.nominal_rig_pose, session_s);
  link::HeteroConfig hetero;
  hetero.fso_occlusion = [](util::SimTimeUs now) {
    return (now / util::us_from_s(1.0)) % 6 < 2;
  };
  std::vector<double> rate_timeline;  // Gbps per 1 ms slot
  hetero.on_slot = [&rate_timeline](util::SimTimeUs, int, bool,
                                    double rate_gbps) {
    rate_timeline.push_back(rate_gbps);
  };
  const link::HeteroResult link_result = link::run_hetero_session(
      proto, controller, fallback, still, hetero, nullptr);

  std::printf("link plane: served %.1f%% of slots at %.2f Gbps average "
              "(%d handovers) over %.0f s\n",
              100.0 * link_result.served_fraction, link_result.avg_rate_gbps,
              link_result.switches, session_s);
  for (const auto& channel : link_result.channels) {
    std::printf("  %-14s usable %5.1f%%  serving %5.1f%%\n",
                channel.name.c_str(), 100.0 * channel.usable_fraction,
                100.0 * channel.serving_fraction);
  }

  // ---- Streaming plane: replay the captured timeline as capacity.
  runtime::Context ctx = runtime::Context::isolated();
  stream::PipelineConfig config;
  config.duration =
      static_cast<util::SimTimeUs>(rate_timeline.size()) * config.slot;
  config.spectators = 4;
  config.spectator = {.loss = 0.002, .dup = 0.01, .reorder = 0.05};
  stream::StreamPipeline pipeline(config, ctx);
  const stream::PipelineResult result =
      pipeline.run([&rate_timeline, &config](util::SimTimeUs t) {
        const auto slot = static_cast<std::size_t>(t / config.slot);
        return slot < rate_timeline.size() ? rate_timeline[slot] : 0.0;
      });

  std::printf("\nstreaming plane: %lld frames, %d ABR mode switches, "
              "offered %.2f -> goodput %.2f Gbps, %llu arena copies\n",
              static_cast<long long>(result.frames_generated),
              result.mode_switches, result.offered_gbps, result.goodput_gbps,
              static_cast<unsigned long long>(result.arena.copies));
  std::printf("%-12s %10s %10s %10s %10s %12s %10s\n", "receiver",
              "delivered", "dropped", "freezes", "re-shows", "late drops",
              "torn");
  for (std::size_t i = 0; i < result.receivers.size(); ++i) {
    const auto& r = result.receivers[i];
    const std::string who =
        i == 0 ? "headset" : "spectator " + std::to_string(i);
    std::printf("%-12s %10lld %10lld %10d %10lld %12lld %10lld\n", who.c_str(),
                static_cast<long long>(r.ledger.frames_delivered),
                static_cast<long long>(r.ledger.frames_dropped),
                r.ledger.freeze_events,
                static_cast<long long>(r.jitter.re_shows),
                static_cast<long long>(r.jitter.late_drops),
                static_cast<long long>(r.reassembly.frames_torn));
  }

  std::printf("\n---- Prometheus view (ctx.registry()) ----\n%s",
              obs::to_prometheus(ctx.registry()).c_str());
  return 0;
}

// Trace tooling: generate a synthetic 360°-viewing dataset, export it to
// CSV, reload it, and print per-trace speed statistics — the workflow for
// anyone who wants to swap in their own head-movement recordings (the
// Trace CSV schema is t_ms, x, y, z, qw, qx, qy, qz).
//
// Usage: trace_tool [count] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::filesystem::path dir =
      argc > 2 ? argv[2]
               : std::filesystem::temp_directory_path() / "cyclops_traces";
  std::filesystem::create_directories(dir);

  std::printf("== Cyclops trace tool: %d traces -> %s ==\n\n", count,
              dir.string().c_str());

  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  const auto traces = motion::generate_dataset(base, count, {}, rng);

  std::printf("trace, samples, lin_p50_cm_s, lin_max_cm_s, ang_p50_deg_s, "
              "ang_max_deg_s, off_slots_pct\n");
  const link::SlotEvalConfig slot_config;
  for (int i = 0; i < count; ++i) {
    const auto path = dir / ("trace_" + std::to_string(i) + ".csv");
    traces[static_cast<std::size_t>(i)].save_csv(path);

    // Reload to prove the round trip, then analyze the loaded copy.
    const motion::Trace loaded = motion::Trace::load_csv(path);
    const motion::TraceSpeeds speeds = motion::compute_speeds(loaded);
    const link::SlotEvalResult connectivity =
        link::evaluate_trace(loaded, slot_config);

    std::printf("%d, %zu, %.2f, %.2f, %.2f, %.2f, %.3f\n", i,
                loaded.samples.size(),
                util::percentile(speeds.linear_mps, 50.0) * 100.0,
                util::percentile(speeds.linear_mps, 100.0) * 100.0,
                util::rad_to_deg(util::percentile(speeds.angular_rps, 50.0)),
                util::rad_to_deg(util::percentile(speeds.angular_rps, 100.0)),
                100.0 * connectivity.off_fraction());
  }

  std::printf("\nwrote %d CSV traces to %s (schema: t_ms, x, y, z, qw, qx, "
              "qy, qz @ 10 ms)\n",
              count, dir.string().c_str());
  return 0;
}

// Handover demos on the unified session core.
//
// Part 1 — Multi-TX (§3): two ceiling FSO transmitters cover occlusions.
// A second person repeatedly walks through the primary TX's beam path;
// run_multi_tx_session fails over to the backup TX and the session stays
// up, while a single-TX deployment goes dark for every occlusion.
//
// Part 2 — Heterogeneous fallback: one FSO transmitter plus a 60 GHz
// mmWave radio (§2.1's baseline, repurposed as a safety net) in ONE event
// scheduler via phy::Channel.  When the beam is blocked the session drops
// to mmWave rates instead of zero, and returns to FSO when the path
// clears — the payoff of putting every channel behind one interface.
#include <cstdio>

#include "core/calibration.hpp"
#include "link/hetero_session.hpp"
#include "link/multi_tx.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "phy/mmwave_channel.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Multi-TX occlusion handover demo (two 10G ceiling "
              "transmitters) ==\n\n");

  // Both TXs must sit within the RX galvo's ~±20° steering cone of the
  // play area (see bench/coverage_planner for the general placement
  // problem).
  std::vector<link::TxChain> chains;
  chains.push_back(
      link::make_tx_chain(42, {0.0, 2.2, 0.0}, sim::prototype_10g_config()));
  chains.push_back(
      link::make_tx_chain(43, {0.5, 2.2, 0.25}, sim::prototype_10g_config()));
  std::printf("TX0 at (0.0, 2.2, 0.0); TX1 at (0.5, 2.2, 0.25); RX rig at "
              "head height\n");

  // Slow hand-held motion around the nominal pose.
  motion::MixedRandomMotion::Config motion_config;
  motion_config.duration_s = 30.0;
  motion_config.max_linear_speed = 0.10;
  motion_config.max_angular_speed = util::deg_to_rad(8.0);
  const motion::MixedRandomMotion profile(chains[0].proto.nominal_rig_pose,
                                          motion_config, util::Rng(99));

  // A passer-by blocks TX0's path for 2 s out of every 6 s.
  const auto occlusion = [](util::SimTimeUs now, std::size_t tx) {
    return tx == 0 && (now / util::us_from_s(1.0)) % 6 < 2;
  };

  link::MultiTxConfig config;
  config.handover.switch_delay_s = 0.2;
  // The event engine can abandon a drop-triggered switch if the occluder
  // clears before the 200 ms switch delay elapses.
  config.handover.cancel_on_reacquire = true;
  link::SessionLog log;
  const link::MultiTxResult result =
      link::run_multi_tx_session(chains, profile, config, occlusion, &log);

  std::printf("\nper-TX usable fractions: TX0 %.1f%%, TX1 %.1f%%\n",
              100.0 * result.per_tx_usable_fraction[0],
              100.0 * result.per_tx_usable_fraction[1]);
  std::printf("best single TX:          %.1f%%\n",
              100.0 * result.best_single_tx_fraction);
  std::printf("with handover (2 TX):    %.1f%%  (%d switches, %d cancelled "
              "by reacquisition, %llu events)\n",
              100.0 * result.served_fraction, result.switches,
              result.cancelled_switches,
              static_cast<unsigned long long>(result.events));

  // Every handover / reacquisition at its exact event-engine timestamp —
  // these land between 1 ms sampling slots, un-quantized.
  for (const auto& event : log.events()) {
    if (event.kind != link::SessionEventKind::kHandover &&
        event.kind != link::SessionEventKind::kReacquisition) {
      continue;
    }
    std::printf("  t=%9.4f s  %-13s (%.1f dBm)\n", util::us_to_s(event.time),
                link::to_string(event.kind), event.power_dbm);
  }

  // ---- Part 2: heterogeneous FSO -> mmWave fallback. ----
  std::printf("\n== Heterogeneous fallback demo (one 10G FSO TX + 60 GHz "
              "mmWave) ==\n\n");

  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng calib_rng(42 ^ 0x9e3779b97f4a7c15ULL);
  core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, calib_rng);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});

  phy::MmWaveChannelConfig mm_config;
  mm_config.ap_position =
      proto.nominal_rig_pose.translation() + geom::Vec3{0.0, 1.2, 0.0};
  phy::MmWaveChannel fallback{mm_config};

  const motion::StillMotion still(proto.nominal_rig_pose, 12.0);
  link::HeteroConfig hetero;
  // The same passer-by pattern: FSO blocked 2 s out of every 6.
  hetero.fso_occlusion = [](util::SimTimeUs now) {
    return (now / util::us_from_s(1.0)) % 6 < 2;
  };
  link::SessionLog hetero_log;
  const link::HeteroResult hetero_result = link::run_hetero_session(
      proto, controller, fallback, still, hetero, &hetero_log);

  std::printf("channel usable/serving fractions over 12 s:\n");
  for (const auto& channel : hetero_result.channels) {
    std::printf("  %-14s usable %5.1f%%  serving %5.1f%%\n",
                channel.name.c_str(), 100.0 * channel.usable_fraction,
                100.0 * channel.serving_fraction);
  }
  std::printf("session served %.1f%% of slots at %.2f Gbps average "
              "(%d switches, %d cancelled, %llu events)\n",
              100.0 * hetero_result.served_fraction,
              hetero_result.avg_rate_gbps, hetero_result.switches,
              hetero_result.cancelled_switches,
              static_cast<unsigned long long>(hetero_result.events));
  std::printf("single-channel FSO would have served at most %.1f%% — the "
              "mmWave fallback carries the blockages.\n",
              100.0 * hetero_result.channels[0].usable_fraction);

  for (const auto& event : hetero_log.events()) {
    if (event.kind != link::SessionEventKind::kHandover &&
        event.kind != link::SessionEventKind::kReacquisition) {
      continue;
    }
    std::printf("  t=%9.4f s  %-13s (margin %+.1f dB)\n",
                util::us_to_s(event.time), link::to_string(event.kind),
                event.power_dbm);
  }
  return 0;
}

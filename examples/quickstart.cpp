// Quickstart: build a 10G Cyclops prototype, calibrate it, and stream
// over a moving link.
//
//   1. make_prototype() assembles the simulated hardware (galvos, optics,
//      VRH tracker) with hidden ground truth.
//   2. calibrate_prototype() runs the paper's two learning stages.
//   3. run_link_simulation() closes the loop over a hand-held motion
//      profile and reports throughput.
#include <cstdio>

#include "core/calibration.hpp"
#include "core/evaluation.hpp"
#include "link/fso_link.hpp"
#include "motion/profile.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Cyclops quickstart (10G diverging-beam link) ==\n\n");

  // 1. Hardware.
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);

  // Sanity: what does a perfectly aligned link deliver?
  core::ExhaustiveAligner aligner;
  const core::AlignResult aligned = aligner.align(proto.scene, {});
  std::printf("exhaustive alignment: peak received power %.1f dBm "
              "(sensitivity %.0f dBm)\n",
              aligned.power_dbm, proto.scene.config().sfp.rx_sensitivity_dbm);

  // 2. Calibration (Stage 1 on the board rig, Stage 2 in place).
  core::CalibrationConfig calib_config;
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, calib_config, rng);
  std::printf("stage 1: TX board error %.2f mm avg, RX %.2f mm avg\n",
              util::m_to_mm(calib.tx_stage1.avg_error_m),
              util::m_to_mm(calib.rx_stage1.avg_error_m));
  std::printf("stage 2: mean Lemma-1 coincidence %.2f mm over %zu samples\n\n",
              util::m_to_mm(calib.mapping.avg_coincidence_m),
              calib.stage2_samples.size());

  // 3. Stream over hand-held motion.
  core::TpController controller(calib.make_pointing_solver(), core::TpConfig{});
  motion::MixedRandomMotion::Config motion_config;
  motion_config.duration_s = 10.0;
  motion_config.max_linear_speed = 0.25;
  motion_config.max_angular_speed = util::deg_to_rad(15.0);
  motion::MixedRandomMotion profile(proto.nominal_rig_pose, motion_config,
                                    util::Rng(99));

  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile);
  std::printf("10 s hand-held stream: link up %.1f%% of slots, "
              "%d realignments, avg P iterations %.1f\n",
              100.0 * run.total_up_fraction, run.realignments,
              run.avg_pointing_iterations);
  double sum = 0.0;
  for (const auto& w : run.windows) sum += w.throughput_gbps;
  std::printf("mean window throughput: %.2f Gbps (optimal %.1f)\n",
              run.windows.empty() ? 0.0 : sum / run.windows.size(),
              proto.scene.config().sfp.goodput_gbps);
  return 0;
}

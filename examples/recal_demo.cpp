// Online recalibration demo: a drift-injected serving session run twice
// from the same seed — once with the calibration frozen, once with the
// online recalibrator refitting the Stage-2 mapping in flight — printing
// per-window link margins so the recovery is visible, then the Prometheus
// cal_* view of the online run.
//
//   ./recal_demo [duration_s]
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "cal/online.hpp"
#include "core/calibration.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"

using namespace cyclops;

namespace {

core::CalibrationResult truth_calibration(const sim::Prototype& proto) {
  return core::CalibrationResult{
      core::KSpaceFitReport{core::GmaModel(proto.tx_galvo_truth)
                                .transformed(proto.k_from_tx_gma),
                            0.0, 0.0, 0, true},
      core::KSpaceFitReport{core::GmaModel(proto.rx_galvo_truth)
                                .transformed(proto.k_from_rx_gma),
                            0.0, 0.0, 0, true},
      core::MappingFitReport{proto.true_map_tx, proto.true_map_rx, 0.0, 0.0, 0,
                             true},
      {}};
}

cal::OnlineRecalResult run(double duration_s, bool online,
                           const runtime::Context* ctx = nullptr) {
  sim::Prototype proto = sim::make_prototype(211, sim::prototype_25g_config());
  const core::CalibrationResult calibration = truth_calibration(proto);
  cal::OnlineRecalConfig config;
  config.duration_s = duration_s;
  config.online = online;
  config.seed = 7;
  return cal::run_online_recal_session(proto, calibration, config, ctx);
}

/// Filters the full exposition down to the cal_* families (keeping the
/// `# TYPE` comments so the dump is still valid Prometheus text).
void print_cal_metrics(const obs::Registry& registry) {
  std::istringstream text(obs::to_prometheus(registry));
  std::string line;
  while (std::getline(text, line)) {
    const bool comment = line.rfind("# TYPE ", 0) == 0;
    const std::string& name = comment ? line.substr(7) : line;
    if (name.rfind("cal_", 0) == 0) std::printf("%s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 2.0;

  const cal::OnlineRecalResult frozen = run(duration_s, /*online=*/false);
  const runtime::Context ctx = runtime::Context::isolated();
  const cal::OnlineRecalResult online = run(duration_s, /*online=*/true, &ctx);

  std::printf("window  frozen_margin  online_margin  refit\n");
  const std::size_t n = std::min(frozen.window_stats.size(),
                                 online.window_stats.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%5zu  %12.2f  %12.2f  %s\n", i,
                frozen.window_stats[i].avg_margin_db,
                online.window_stats[i].avg_margin_db,
                online.window_stats[i].refit_active ? "  *" : "");
  }

  std::printf("\nfrozen: early %.2f dB -> tail %.2f dB (up %.3f)\n",
              frozen.early_margin_db, frozen.tail_margin_db,
              frozen.up_fraction);
  std::printf("online: early %.2f dB -> tail %.2f dB (up %.3f), %d refits, "
              "%llu refit windows, %llu refit-down windows\n",
              online.early_margin_db, online.tail_margin_db,
              online.up_fraction, online.refits,
              static_cast<unsigned long long>(online.refit_windows),
              static_cast<unsigned long long>(online.refit_down_windows));
  const double lost = frozen.early_margin_db - frozen.tail_margin_db;
  if (lost > 0.0) {
    std::printf("margin recovered: %.1f%%\n",
                100.0 * (online.tail_margin_db - frozen.tail_margin_db) / lost);
  }

  std::printf("\ncal_* metrics (online run):\n");
  print_cal_metrics(ctx.registry());
  return 0;
}

// Fleet quickstart: run a small mixed fleet of isolated sessions through
// session::run_fleet and read the rolled-up telemetry.  Each session is
// a pure function of its SessionSpec — same specs, same driver pool or
// not, same bytes out (README "Fleet quickstart", DESIGN.md §16).
#include <cstdio>

#include "session/catalog.hpp"
#include "session/fleet.hpp"

using namespace cyclops;

int main() {
  // 60 sessions: ten of each catalog variant, seeds 1..60.
  std::vector<session::SessionSpec> specs;
  for (std::size_t i = 0; i < 60; ++i) {
    session::SessionSpec spec;
    spec.variant = static_cast<session::Variant>(i % session::kVariantCount);
    spec.seed = 1 + i;
    spec.duration_s = 0.25;
    specs.push_back(spec);
  }

  session::FleetConfig config;
  config.capture_metrics = false;  // flip on for per-session JSONL exports
  const session::FleetResult fleet =
      session::run_fleet(specs, session::catalog_factory(), config);

  std::printf("%zu sessions, %llu events, %.2f s wall, reconciled=%d\n",
              fleet.reports.size(),
              static_cast<unsigned long long>(fleet.totals.events),
              fleet.totals.wall_seconds, fleet.reconciled ? 1 : 0);
  for (std::size_t v = 0; v < session::kVariantCount; ++v) {
    double served = 0.0;
    std::size_t count = 0;
    for (const session::Report& r : fleet.reports) {
      if (static_cast<std::size_t>(r.variant) != v) continue;
      served += r.served_fraction;
      ++count;
    }
    std::printf("  %-9s %2zu sessions  mean served %.3f\n",
                session::variant_name(static_cast<session::Variant>(v)),
                count, count > 0 ? served / static_cast<double>(count) : 0.0);
  }

  // The rollup is every session registry folded together; the fleet_*
  // counters in it reconcile exactly against the Report sums above.
  std::printf("rollup fleet_events_total = %llu\n",
              static_cast<unsigned long long>(
                  fleet.rollup->counter("fleet_events_total").value()));
  return fleet.reconciled ? 0 : 1;
}

// A complete VR session over the 25G Cyclops link: a user watches a
// one-minute 360° video (synthetic head trace), the TP loop keeps the
// beam aligned, and the renderer streams raw 90 fps frames over the link.
//
// Reports both the link-level §5.4 metrics (operational slots) and the
// user-level ones (frames delivered on time, freezes).  The control
// plane runs on the discrete-event engine: tracker reports fire at their
// exact (jittered) capture instants and GM commands apply at their exact
// DAQ+settle completion times instead of the next physics step.
#include <cstdio>

#include "core/calibration.hpp"
#include "link/event_session.hpp"
#include "link/fso_link.hpp"
#include "link/session_log.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "net/adaptive_stream.hpp"
#include "net/streamer.hpp"
#include "obs/obs.hpp"
#include "runtime/context.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== VR session over the 25G Cyclops link ==\n\n");

  // One context for the whole session: the global pool for speed, but a
  // session-local registry — every layer below records into it through
  // the context, and the report ends with the Prometheus text view
  // (README quickstart).
  obs::Registry registry;
  runtime::Context ctx(util::ThreadPool::global(), registry);

  // Hardware + calibration.
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_25g_config());
  util::Rng rng(5);
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng, ctx);
  std::printf("calibrated: stage-2 residual %.1f mm over %zu tuples\n",
              util::m_to_mm(calib.mapping.avg_coincidence_m),
              calib.stage2_samples.size());

  // A one-minute 360° viewing trace anchored at the rig's deployed pose.
  motion::TraceGeneratorConfig trace_config;
  util::Rng trace_rng(2023);
  const motion::Trace trace = motion::generate_viewing_trace(
      proto.nominal_rig_pose, trace_config, trace_rng);
  const motion::TraceMotion profile(trace);
  std::printf("trace: %.0f s of head motion, %zu samples\n",
              profile.duration_s(), trace.samples.size());

  // Renderer: raw 90 fps stream sized to ~85%% of the link goodput.
  net::FrameSourceConfig source_config;
  source_config.fps = 90.0;
  source_config.stream_rate_gbps =
      0.85 * proto.scene.config().sfp.goodput_gbps;
  source_config.size_jitter = 0.03;
  net::FrameSource source(source_config, util::Rng(17));
  net::FrameStreamer streamer(net::StreamerConfig{}, ctx);
  std::printf("stream: %.0f fps, %.1f Gbps raw (%.0f Mbit/frame)\n\n",
              source_config.fps, source_config.stream_rate_gbps,
              source_config.mean_frame_bits() / 1e6);

  // Closed loop with the streamer, the adaptive-mode controller, and the
  // session log all riding the per-slot callback.
  core::TpController controller(calib.make_pointing_solver({}, ctx),
                                core::TpConfig{});
  net::AdaptiveConfig adaptive_config;
  adaptive_config.raw_rate_gbps = source_config.stream_rate_gbps;
  net::AdaptiveStreamController adaptive(adaptive_config, ctx);
  link::SessionLog log;

  link::SimOptions options;
  options.step = 1000;  // 1 ms slots, as in §5.4
  const double goodput = proto.scene.config().sfp.goodput_gbps;
  options.on_slot = [&](util::SimTimeUs now, bool up, double power) {
    log.on_slot(now, up, power);
    adaptive.step(now, up ? goodput : 0.0);
    while (const auto frame = source.poll(now)) streamer.offer(*frame);
    streamer.step(now, options.step, up ? goodput : 0.0);
  };

  link::EventSessionStats engine_stats;
  const link::RunResult run = link::run_link_session_events(
      proto, controller, profile, ctx, options, &log, &engine_stats);
  log.finish(run);

  // ---- report ----
  std::printf("link:   operational %.2f%% of 1 ms slots, %d realignments, "
              "avg P iterations %.1f\n",
              100.0 * run.total_up_fraction, run.realignments,
              run.avg_pointing_iterations);
  std::printf("engine: %llu events dispatched (%llu scheduled) by the "
              "discrete-event control plane\n",
              static_cast<unsigned long long>(engine_stats.events),
              static_cast<unsigned long long>(engine_stats.scheduled));

  const net::StreamStats& stats = streamer.stats();
  std::printf("frames: %lld offered, %lld delivered (%.2f%%), %lld dropped\n",
              static_cast<long long>(stats.frames_offered),
              static_cast<long long>(stats.frames_delivered),
              100.0 * stats.delivery_rate(),
              static_cast<long long>(stats.frames_dropped));
  std::printf("        delivery latency %.1f ms avg / %.1f ms max; "
              "%d freeze events (longest %d frames)\n",
              stats.avg_delivery_latency_ms, stats.max_delivery_latency_ms,
              stats.freeze_events, stats.longest_freeze_frames);

  const double effective_gbps = run.total_up_fraction * goodput;
  std::printf("\neffective bandwidth %.1f Gbps — "
              "%s for the %.1f Gbps stream\n",
              effective_gbps,
              effective_gbps > source_config.stream_rate_gbps ? "sufficient"
                                                              : "NOT enough",
              source_config.stream_rate_gbps);
  std::printf("adaptive controller: %d mode switches; final mode %s\n",
              adaptive.mode_switches(),
              adaptive.mode() == net::StreamMode::kRaw ? "raw"
                                                       : "compressed");
  std::printf("session log: %d link-down events, longest outage %.2f s "
              "(CSVs via SessionLog::save)\n",
              log.count(link::SessionEventKind::kLinkDown),
              log.longest_outage_s());

  // The solver tallies (G'/LM) already live in the context's registry —
  // no global-registry fold needed; add the pool dispatch stats and dump.
  obs::record_thread_pool(registry, ctx.pool());
  std::printf("\n== telemetry (Prometheus text exposition) ==\n%s",
              obs::to_prometheus(registry).c_str());
  return 0;
}

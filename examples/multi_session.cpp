// N independent headset sessions in one process — the payoff of the
// runtime::Context refactor (DESIGN.md §11).
//
// Each session gets a fully isolated context (own registry, own RNG
// stream, own sim clock, inline pool), runs a short event-driven link
// session over its own synthetic head trace, and exports its metrics.
// The driver fans the sessions out over a thread pool; because they
// share nothing, the parallel run is byte-identical to running each
// session alone — this demo proves it by re-running every session
// serially and diffing both the run results and the JSONL metric
// exports (the same check tests/concurrent_session_test.cpp enforces
// at several thread counts).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pointing.hpp"
#include "core/tp_controller.hpp"
#include "link/concurrent.hpp"
#include "link/event_session.hpp"
#include "motion/trace_generator.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

using namespace cyclops;

namespace {

constexpr std::size_t kSessions = 4;

/// A pointing solver built from the prototype's ground truth — skips the
/// (expensive) calibration pipeline, which this demo is not about.
core::PointingSolver truth_solver(const sim::Prototype& proto,
                                  const runtime::Context& ctx) {
  return core::PointingSolver(
      core::GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      core::GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx, {}, ctx);
}

/// One complete session, everything drawn from `ctx`: the head trace from
/// the context RNG, the scheduler from the context clock, the session
/// metrics into the context registry.
link::RunResult session_body(std::size_t i, runtime::Context& ctx,
                             link::SessionLog& log) {
  sim::Prototype proto =
      sim::make_prototype(100 + i, sim::prototype_25g_config());
  core::TpController controller(truth_solver(proto, ctx), core::TpConfig{});

  motion::TraceGeneratorConfig trace_config;
  trace_config.duration_s = 5.0;
  util::Rng trace_rng = ctx.rng(/*key=*/1);
  const motion::Trace trace = motion::generate_viewing_trace(
      proto.nominal_rig_pose, trace_config, trace_rng);
  const motion::TraceMotion profile(trace);

  link::SimOptions options;
  options.step = 1000;  // 1 ms slots
  return link::run_link_session_events(proto, controller, profile, ctx,
                                       options, &log);
}

}  // namespace

int main() {
  std::printf("== %zu isolated VR sessions, one process ==\n\n", kSessions);

  const auto factory = [](std::size_t i) {
    runtime::Context::Options opts;
    opts.seed = 1000 + i;  // per-session stream; pool stays inline
    return runtime::Context::isolated(opts);
  };

  // Parallel: all sessions at once over the process pool.
  const std::vector<link::SessionOutput> parallel =
      link::run_concurrent_sessions(kSessions, factory, session_body,
                                    util::ThreadPool::global());

  for (std::size_t i = 0; i < parallel.size(); ++i) {
    const link::SessionOutput& out = parallel[i];
    std::printf(
        "session %zu: up %.2f%% of slots, %d realignments, "
        "%d link-down events, %zu metric lines\n",
        i, 100.0 * out.run.total_up_fraction, out.run.realignments,
        out.log.count(link::SessionEventKind::kLinkDown),
        static_cast<std::size_t>(
            std::count(out.metrics_jsonl.begin(), out.metrics_jsonl.end(),
                       '\n')));
  }

  // Serial baseline: the same sessions one at a time on a serial pool.
  const std::vector<link::SessionOutput> serial =
      link::run_concurrent_sessions(kSessions, factory, session_body,
                                    util::ThreadPool::serial());

  bool identical = true;
  for (std::size_t i = 0; i < kSessions; ++i) {
    identical = identical &&
                parallel[i].run.total_up_fraction ==
                    serial[i].run.total_up_fraction &&
                parallel[i].run.realignments == serial[i].run.realignments &&
                parallel[i].metrics_jsonl == serial[i].metrics_jsonl;
  }
  std::printf("\nparallel vs serial: outputs and metric exports %s\n",
              identical ? "byte-identical" : "DIFFER (bug!)");
  return identical ? 0 : 1;
}

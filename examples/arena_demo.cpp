// Arena demo: a six-player, four-TX room for 12 seconds — beam
// scheduling, admission control, and a mid-session TX failure that
// forces live TX->TX migrations.  Prints each headset's QoE, the full
// decision trail (admissions, migrations, evictions), and the arena
// metrics as a Prometheus registry view.
//
//   ./examples/arena_demo
#include <cstdio>

#include "arena/session.hpp"
#include "arena/topology.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"

using namespace cyclops;

int main() {
  std::printf("== Cyclops arena: 6 headsets, 4 ceiling TXs, TX2 fails at "
              "t=6s ==\n\n");

  arena::ArenaConfig config;
  arena::ArenaTopology topo(
      config, /*num_tx=*/4,
      arena::ArenaTopology::make_tracks(config, /*m=*/6,
                                        arena::Scenario::kUniform,
                                        /*duration_s=*/12.0, /*seed=*/7));

  arena::ArenaOptions options;
  options.scheduler.policy = arena::SchedulePolicy::kPredictive;
  options.duration_s = 12.0;
  options.tx_failed = [](util::SimTimeUs t, std::size_t tx) {
    return tx == 2 && t >= util::us_from_s(6.0);
  };

  obs::Registry registry;
  const arena::ArenaResult result =
      arena::run_arena_session(topo, options, &registry);

  std::printf("per-headset QoE:\n");
  std::printf("%3s %4s %10s %8s %8s %9s %11s %4s\n", "id", "tx", "rate_gbps",
              "served", "occluded", "outage_s", "migrations", "sla");
  for (std::size_t h = 0; h < result.headsets.size(); ++h) {
    const auto& q = result.headsets[h];
    std::printf("%3zu %4d %10.2f %7.0f%% %7.1f%% %9.2f %11d %4s\n", h,
                q.final_tx, q.avg_rate_gbps, 100.0 * q.served_fraction,
                100.0 * q.occluded_fraction, q.longest_outage_s, q.migrations,
                q.sla_met ? "yes" : "NO");
  }

  std::printf("\ndecision trail (%zu events):\n", result.log.size());
  for (const auto& ev : result.log) {
    std::printf("  t=%7.3fs %-10s headset=%2d tx=%d\n", util::us_to_s(ev.time),
                arena::to_string(ev.kind), ev.headset, ev.tx);
  }

  std::printf("\ntotals: %d admissions, %d migrations (%d cancelled), "
              "%d evictions, %d duty violations, schedule efficiency "
              "%.2f\n",
              result.admissions, result.migrations,
              result.cancelled_migrations, result.evictions,
              result.duty_violations, result.schedule_efficiency);
  std::printf("per-TX duty: ");
  for (const double d : result.per_tx_duty) std::printf("%.2f ", d);
  std::printf("(budget %.2f)\n", options.scheduler.duty_budget);

  std::printf("\nPrometheus registry view:\n%s",
              obs::to_prometheus(registry).c_str());
  return 0;
}

// Event-queue microbench: push / pop / cancel / steady-state churn
// throughput of both queue disciplines (binary heap vs calendar queue)
// under three arrival-time distributions:
//
//   hot_bucket — all offsets land inside one calendar bucket window;
//                the dense near-future regime a slot-sampled session
//                produces (§13 of DESIGN.md).
//   uniform    — offsets spread across many buckets; the calendar's
//                bread-and-butter O(1) regime.
//   long_tail  — 90% near-future, 10% far-future; exercises the
//                overflow ladder and its rebucketing on window advance.
//
// Emits BENCH_event_queue.json with one Mops/s field per
// (discipline, distribution, operation).  The churn loop is the number
// that predicts engine throughput: a DES steady state holds a bounded
// set of pending timers and replaces the popped head with a new event a
// bounded offset ahead.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "event/event_queue.hpp"
#include "util/rng.hpp"

using namespace cyclops;

namespace {

constexpr std::size_t kEvents = 1u << 17;  // per timed pass
constexpr std::size_t kChurnLive = 1024;   // pending set during churn
constexpr std::size_t kChurnOps = 1u << 18;

/// Deterministic offset stream for one distribution (values in us).
std::vector<util::SimTimeUs> make_offsets(const std::string& dist,
                                          std::size_t n) {
  util::Rng rng(0x5eed5 + static_cast<std::uint64_t>(dist.size()));
  std::vector<util::SimTimeUs> offsets;
  offsets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::SimTimeUs off = 0;
    if (dist == "hot_bucket") {
      off = static_cast<util::SimTimeUs>(rng.uniform_index(1u << 12));
    } else if (dist == "uniform") {
      off = static_cast<util::SimTimeUs>(rng.uniform_index(1u << 22));
    } else {  // long_tail
      off = rng.uniform() < 0.9
                ? static_cast<util::SimTimeUs>(rng.uniform_index(1u << 13))
                : static_cast<util::SimTimeUs>(rng.uniform_index(1u << 26));
    }
    offsets.push_back(off);
  }
  return offsets;
}

double mops(std::size_t ops, double ms) {
  return ms > 0.0 ? static_cast<double>(ops) / (ms * 1e3) : 0.0;
}

struct Row {
  double push_mops = 0.0;
  double pop_mops = 0.0;
  double cancel_mops = 0.0;
  double churn_mops = 0.0;
};

Row run_case(event::EventQueue::Discipline disc,
             const std::vector<util::SimTimeUs>& offsets) {
  Row row;
  event::Event ev;
  ev.type = 1;

  // Fill + drain: N pushes, then N pops in time order.
  {
    event::EventQueue q(disc);
    bench::Timer timer;
    for (const util::SimTimeUs off : offsets) {
      ev.time = off;
      q.push(ev);
    }
    row.push_mops = mops(offsets.size(), timer.elapsed_ms());
    timer.reset();
    event::Event out;
    std::size_t popped = 0;
    while (q.pop_next(out)) ++popped;
    row.pop_mops = mops(popped, timer.elapsed_ms());
    if (popped != offsets.size()) std::abort();
  }

  // Cancel: N pushes, then eagerly cancel every pending id (reverse
  // insertion order so the heap discipline pays its worst lazy cost and
  // the calendar pays swap-remove).
  {
    event::EventQueue q(disc);
    std::vector<event::EventQueue::Id> ids;
    ids.reserve(offsets.size());
    for (const util::SimTimeUs off : offsets) {
      ev.time = off;
      ids.push_back(q.push(ev));
    }
    bench::Timer timer;
    for (std::size_t i = ids.size(); i-- > 0;) {
      if (!q.cancel(ids[i])) std::abort();
    }
    row.cancel_mops = mops(ids.size(), timer.elapsed_ms());
    if (!q.empty()) std::abort();
  }

  // Steady-state churn: hold kChurnLive pending events; each op pops the
  // head and schedules a replacement a bounded offset past it.  This is
  // the regime the engines actually run in.
  {
    event::EventQueue q(disc);
    std::size_t next = 0;
    const auto offset_at = [&offsets](std::size_t i) {
      return offsets[i % offsets.size()];
    };
    for (std::size_t i = 0; i < kChurnLive; ++i) {
      ev.time = offset_at(next++);
      q.push(ev);
    }
    bench::Timer timer;
    event::Event out;
    for (std::size_t i = 0; i < kChurnOps; ++i) {
      if (!q.pop_next(out)) std::abort();
      ev.time = out.time + offset_at(next++);
      q.push(ev);
    }
    row.churn_mops = mops(kChurnOps, timer.elapsed_ms());
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== event queue micro: push/pop/cancel/churn throughput "
              "(Mops/s) ==\n\n");

  const char* kDistributions[] = {"hot_bucket", "uniform", "long_tail"};
  const struct {
    event::EventQueue::Discipline disc;
    const char* name;
  } kDisciplines[] = {
      {event::EventQueue::Discipline::kBinaryHeap, "heap"},
      {event::EventQueue::Discipline::kCalendar, "calendar"},
  };

  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("events_per_pass", static_cast<double>(kEvents));
  fields.emplace_back("churn_live", static_cast<double>(kChurnLive));
  std::printf("%-10s %-11s %9s %9s %9s %9s\n", "discipline", "distribution",
              "push", "pop", "cancel", "churn");
  for (const auto& d : kDisciplines) {
    for (const char* dist : kDistributions) {
      const auto offsets = make_offsets(dist, kEvents);
      const Row row = run_case(d.disc, offsets);
      std::printf("%-10s %-11s %9.2f %9.2f %9.2f %9.2f\n", d.name, dist,
                  row.push_mops, row.pop_mops, row.cancel_mops,
                  row.churn_mops);
      const std::string prefix = std::string(d.name) + "_" + dist + "_";
      fields.emplace_back(prefix + "push_mops", row.push_mops);
      fields.emplace_back(prefix + "pop_mops", row.pop_mops);
      fields.emplace_back(prefix + "cancel_mops", row.cancel_mops);
      fields.emplace_back(prefix + "churn_mops", row.churn_mops);
    }
  }
  bench::write_bench_json("event_queue", fields);
  return 0;
}

// §6 future work, implemented: 40G/100G WDM links over the Cyclops
// steering design, with commodity vs custom (achromatic) collimators.
//
// The shared (geometry + mode) coupling loss comes from the calibrated
// diverging-beam model at perfect alignment; each WDM lane then pays its
// own chromatic penalty.  Expectation: with a commodity collimator the
// outer lanes (±30 nm) lose their thin margins and the aggregate rate
// collapses; the §6 "customized collimator" restores all four lanes.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "geom/pose.hpp"
#include "link/session_core.hpp"
#include "motion/profile.hpp"
#include "optics/coupling.hpp"
#include "optics/wdm.hpp"
#include "phy/wdm_channel.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

void report(const char* label, const optics::WdmTransceiver& transceiver,
            const optics::CollimatorChromatics& collimator,
            double shared_loss_db) {
  const optics::WdmLinkReport r =
      optics::evaluate_wdm_link(transceiver, collimator, shared_loss_db);
  std::printf("%s, %s:\n", transceiver.name.c_str(), label);
  for (const auto& lane : r.lanes) {
    std::printf("  lane %.0f nm: rx %.1f dBm, margin %+.1f dB -> %s\n",
                lane.wavelength_nm, lane.rx_power_dbm, lane.margin_db,
                lane.up ? "up" : "DOWN");
  }
  std::printf("  aggregate: %.1f Gbps (%d/%zu lanes)\n\n",
              r.aggregate_rate_gbps, r.lanes_up, r.lanes.size());
}

}  // namespace

int main() {
  std::printf("== §6 future work: 40G/100G WDM links and custom "
              "collimators ==\n\n");

  // Shared coupling loss of an improved diverging design at alignment
  // (adjustable-focus class optics: geometric capture + small mode
  // mismatch; no EDFA exists in the O-band).
  const optics::LinkDesign design = optics::diverging_25g(12e-3, 1.5);
  const optics::CouplingResult coupling = optics::coupling_loss_from_errors(
      design.receiver, 12e-3, design.beam.divergence_half_angle,
      design.beam.tail_factor, 0.0, 0.0);
  const double shared_loss = coupling.total_db();
  std::printf("shared coupling loss at alignment: %.1f dB\n\n", shared_loss);

  report("commodity collimator", optics::qsfp_lr4(),
         optics::commodity_collimator(), shared_loss);
  report("custom achromatic collimator (§6)", optics::qsfp_lr4(),
         optics::custom_achromatic_collimator(), shared_loss);

  report("commodity collimator", optics::qsfp28_lr4(),
         optics::commodity_collimator(), shared_loss);
  report("custom achromatic collimator (§6)", optics::qsfp28_lr4(),
         optics::custom_achromatic_collimator(), shared_loss);

  // Movement tolerance: the thin outer-lane margins are what break first
  // as the link misaligns.  Sweep the RX incidence error and report the
  // aggregate rate per collimator.
  std::printf("aggregate rate vs RX angular error (100G):\n");
  std::printf("psi_mrad, commodity_gbps, custom_gbps\n");
  for (double psi_mrad = 0.0; psi_mrad <= 5.0 + 1e-9; psi_mrad += 0.5) {
    const optics::CouplingResult at_psi = optics::coupling_loss_from_errors(
        design.receiver, 12e-3, design.beam.divergence_half_angle,
        design.beam.tail_factor, 0.0, util::mrad_to_rad(psi_mrad));
    const double loss = at_psi.total_db();
    const double commodity =
        optics::evaluate_wdm_link(optics::qsfp28_lr4(),
                                  optics::commodity_collimator(), loss)
            .aggregate_rate_gbps;
    const double custom =
        optics::evaluate_wdm_link(optics::qsfp28_lr4(),
                                  optics::custom_achromatic_collimator(), loss)
            .aggregate_rate_gbps;
    std::printf("%.1f, %.1f, %.1f\n", psi_mrad, commodity, custom);
  }

  std::printf("\nreading: the commodity collimator's outer lanes die first "
              "under misalignment, shrinking the movement tolerance; the "
              "custom achromat keeps all four lanes together — §6's case "
              "for customized collimators.  The TP mechanism itself is "
              "wavelength-agnostic: the steering path is identical to the "
              "10G/25G prototypes.\n");

  // --- Dynamic: the 100G WDM link as a phy::Channel on the unified
  // session core.  The head sweeps ±5 mrad about the aligned axis
  // (AngularStrokeMotion); the shared coupling loss tracks the rotation
  // misalignment, lanes drop out and come back, and the per-window
  // throughput ladder lands in the RunResult — the same engine that runs
  // the 10G/25G and mmWave sessions. ---
  std::printf("\ndynamic 100G session (±5 mrad angular stroke, unified "
              "session core):\n");
  const geom::Pose base;  // aligned axis; only the rotation offset matters
  const auto shared_loss_at = [&design, &base](const geom::Pose& pose,
                                               util::SimTimeUs) {
    const double psi = geom::rotation_distance(base, pose);
    return optics::coupling_loss_from_errors(
               design.receiver, 12e-3, design.beam.divergence_half_angle,
               design.beam.tail_factor, 0.0, psi)
        .total_db();
  };
  const motion::AngularStrokeMotion stroke(
      base, geom::Vec3{0.0, 1.0, 0.0}, util::mrad_to_rad(5.0),
      {util::mrad_to_rad(5.0)});
  link::ChannelSessionOptions options;
  options.step = 1000;

  // Best-of-2 wall time over both dynamic sessions (the fig13/fig16
  // protocol); the reported rates are rep 0's — each rep constructs fresh
  // channels, so the sessions are identical across reps.
  constexpr int kTimingReps = 2;
  double session_gbps[2] = {0.0, 0.0};
  double sessions_ms = 0.0;
  const optics::CollimatorChromatics collimators[2] = {
      optics::commodity_collimator(), optics::custom_achromatic_collimator()};
  const char* labels[2] = {"commodity", "custom achromat"};
  for (int rep = 0; rep < kTimingReps; ++rep) {
    bench::Timer timer;
    for (int i = 0; i < 2; ++i) {
      phy::WdmChannel channel(optics::qsfp28_lr4(), collimators[i],
                              shared_loss_at);
      const link::RunResult run =
          link::run_channel_session(channel, stroke, options);
      if (rep != 0) continue;
      session_gbps[i] = run.avg_rate_gbps;
      double worst = channel.info().peak_rate_gbps;
      for (const auto& w : run.windows) {
        if (w.throughput_gbps < worst) worst = w.throughput_gbps;
      }
      std::printf("  %s: avg %.1f Gbps over the stroke (worst window "
                  "%.1f Gbps, peak %.1f)\n",
                  labels[i], run.avg_rate_gbps, worst,
                  channel.info().peak_rate_gbps);
    }
    const double rep_ms = timer.elapsed_ms();
    sessions_ms = rep == 0 ? rep_ms : std::min(sessions_ms, rep_ms);
  }
  std::printf("  dynamic sessions: %.0f ms (best of %d)\n", sessions_ms,
              kTimingReps);

  bench::write_bench_json(
      "future_wdm",
      {{"shared_loss_at_alignment_db", shared_loss},
       {"commodity_session_gbps", session_gbps[0]},
       {"custom_session_gbps", session_gbps[1]},
       {"custom_advantage_gbps", session_gbps[1] - session_gbps[0]},
       {"sessions_ms", sessions_ms},
       {"timing_reps", static_cast<double>(kTimingReps)}});
  return 0;
}

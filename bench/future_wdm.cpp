// §6 future work, implemented: 40G/100G WDM links over the Cyclops
// steering design, with commodity vs custom (achromatic) collimators.
//
// The shared (geometry + mode) coupling loss comes from the calibrated
// diverging-beam model at perfect alignment; each WDM lane then pays its
// own chromatic penalty.  Expectation: with a commodity collimator the
// outer lanes (±30 nm) lose their thin margins and the aggregate rate
// collapses; the §6 "customized collimator" restores all four lanes.
#include <cstdio>

#include "optics/coupling.hpp"
#include "optics/wdm.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

void report(const char* label, const optics::WdmTransceiver& transceiver,
            const optics::CollimatorChromatics& collimator,
            double shared_loss_db) {
  const optics::WdmLinkReport r =
      optics::evaluate_wdm_link(transceiver, collimator, shared_loss_db);
  std::printf("%s, %s:\n", transceiver.name.c_str(), label);
  for (const auto& lane : r.lanes) {
    std::printf("  lane %.0f nm: rx %.1f dBm, margin %+.1f dB -> %s\n",
                lane.wavelength_nm, lane.rx_power_dbm, lane.margin_db,
                lane.up ? "up" : "DOWN");
  }
  std::printf("  aggregate: %.1f Gbps (%d/%zu lanes)\n\n",
              r.aggregate_rate_gbps, r.lanes_up, r.lanes.size());
}

}  // namespace

int main() {
  std::printf("== §6 future work: 40G/100G WDM links and custom "
              "collimators ==\n\n");

  // Shared coupling loss of an improved diverging design at alignment
  // (adjustable-focus class optics: geometric capture + small mode
  // mismatch; no EDFA exists in the O-band).
  const optics::LinkDesign design = optics::diverging_25g(12e-3, 1.5);
  const optics::CouplingResult coupling = optics::coupling_loss_from_errors(
      design.receiver, 12e-3, design.beam.divergence_half_angle,
      design.beam.tail_factor, 0.0, 0.0);
  const double shared_loss = coupling.total_db();
  std::printf("shared coupling loss at alignment: %.1f dB\n\n", shared_loss);

  report("commodity collimator", optics::qsfp_lr4(),
         optics::commodity_collimator(), shared_loss);
  report("custom achromatic collimator (§6)", optics::qsfp_lr4(),
         optics::custom_achromatic_collimator(), shared_loss);

  report("commodity collimator", optics::qsfp28_lr4(),
         optics::commodity_collimator(), shared_loss);
  report("custom achromatic collimator (§6)", optics::qsfp28_lr4(),
         optics::custom_achromatic_collimator(), shared_loss);

  // Movement tolerance: the thin outer-lane margins are what break first
  // as the link misaligns.  Sweep the RX incidence error and report the
  // aggregate rate per collimator.
  std::printf("aggregate rate vs RX angular error (100G):\n");
  std::printf("psi_mrad, commodity_gbps, custom_gbps\n");
  for (double psi_mrad = 0.0; psi_mrad <= 5.0 + 1e-9; psi_mrad += 0.5) {
    const optics::CouplingResult at_psi = optics::coupling_loss_from_errors(
        design.receiver, 12e-3, design.beam.divergence_half_angle,
        design.beam.tail_factor, 0.0, util::mrad_to_rad(psi_mrad));
    const double loss = at_psi.total_db();
    const double commodity =
        optics::evaluate_wdm_link(optics::qsfp28_lr4(),
                                  optics::commodity_collimator(), loss)
            .aggregate_rate_gbps;
    const double custom =
        optics::evaluate_wdm_link(optics::qsfp28_lr4(),
                                  optics::custom_achromatic_collimator(), loss)
            .aggregate_rate_gbps;
    std::printf("%.1f, %.1f, %.1f\n", psi_mrad, commodity, custom);
  }

  std::printf("\nreading: the commodity collimator's outer lanes die first "
              "under misalignment, shrinking the movement tolerance; the "
              "custom achromat keeps all four lanes together — §6's case "
              "for customized collimators.  The TP mechanism itself is "
              "wavelength-agnostic: the steering path is identical to the "
              "10G/25G prototypes.\n");
  return 0;
}

// Shared infrastructure for the reproduction harness binaries in bench/.
//
// Each bench/ binary regenerates one table or figure from the paper's
// evaluation (§5).  The helpers here implement the shared lab procedures:
// building a calibrated rig, measuring movement tolerances the way the
// paper does (rotate/translate the terminal from an aligned position until
// the link drops, with no TP running), and sweeping motion speeds with the
// TP loop closed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "link/fso_link.hpp"
#include "motion/profile.hpp"
#include "sim/prototype.hpp"
#include "util/bench_io.hpp"

namespace cyclops::bench {

/// Timing + JSON reporting now live in util/bench_io.hpp (so src/ code —
/// e.g. the event engine's trace hooks — can use them too); aliased here
/// so the harness binaries keep their spelling.
using util::Timer;
using util::write_bench_json;

/// A prototype with its calibration — the starting point of every
/// experiment.
struct CalibratedRig {
  sim::Prototype proto;
  core::CalibrationResult calib;
};

CalibratedRig make_calibrated_rig(std::uint64_t seed,
                                  const sim::PrototypeConfig& config);

/// Peak received power after exhaustive alignment at the nominal pose.
double aligned_peak_power_dbm(sim::Prototype& proto);

/// Angular movement tolerance of the TX terminal: rotate the whole TX
/// assembly about its GM from the aligned position (no TP) until received
/// power falls below sensitivity; returns the worst-axis angle (rad).
double tx_angular_tolerance(sim::Prototype& proto);

/// Same for the RX terminal (rotating the rig, as on the rotation stage).
double rx_angular_tolerance(sim::Prototype& proto);

/// Lateral movement tolerance of the RX terminal (worst translation axis).
double rx_lateral_tolerance(sim::Prototype& proto);

enum class StrokeKind { kLinear, kAngular };

struct SpeedSweepRow {
  double speed = 0.0;           ///< m/s or rad/s.
  double throughput_gbps = 0.0; ///< Median over moving windows.
  double power_dbm = 0.0;       ///< Median over moving windows.
  double up_fraction = 0.0;
};

/// The §5.3 protocol: one full stroke per speed, starting from an aligned
/// link each time (the paper pauses to re-acquire after every loss).
/// `engine` picks the closed-loop engine — kEvent by default; fig13 also
/// runs the kFixedStep oracle and asserts bitwise-equal output.
std::vector<SpeedSweepRow> stroke_speed_sweep(
    CalibratedRig& rig, StrokeKind kind, const std::vector<double>& speeds,
    link::SessionEngine engine = link::SessionEngine::kEvent);

/// Largest swept speed whose throughput stayed optimal (>= 98 % of
/// goodput).  Returns 0 if none.
double max_optimal_speed(const std::vector<SpeedSweepRow>& rows,
                         double goodput_gbps);

/// Mixed-motion characterization: run hand-held motion with the given
/// speed caps, return the aggregate windows.
link::RunResult mixed_motion_run(
    CalibratedRig& rig, double max_linear_mps, double max_angular_rps,
    double duration_s, std::uint64_t seed,
    link::SessionEngine engine = link::SessionEngine::kEvent);

/// Per-window alignment capability bucketed by measured speeds — the
/// paper's way of reading Figs 14/15: "optimal throughput for motions
/// undergoing simultaneous speeds below X and Y".  A window counts as
/// aligned when its worst-slot power stays above the SFP sensitivity
/// (independent of the 2 s re-acquisition state machine, which would
/// otherwise blame slow windows for an earlier fast one).
struct MixedBucket {
  double speed_lo = 0.0;      ///< Bucket lower edge (m/s or rad/s).
  int windows = 0;
  int aligned = 0;
  double aligned_fraction() const {
    return windows > 0 ? static_cast<double>(aligned) / windows : 0.0;
  }
};

struct MixedCharacterization {
  std::vector<MixedBucket> by_linear;   ///< Windows with angular < ang_limit.
  std::vector<MixedBucket> by_angular;  ///< Windows with linear < lin_limit.
  /// Largest bucket edges with >= 95 % aligned windows (and some data).
  double sustained_linear_mps = 0.0;
  double sustained_angular_rps = 0.0;
};

MixedCharacterization characterize_mixed(
    CalibratedRig& rig, double cap_linear_mps, double cap_angular_rps,
    double lin_limit, double ang_limit, double duration_s, std::uint64_t seed,
    link::SessionEngine engine = link::SessionEngine::kEvent);

/// Formats "x.xx" with the given precision (printf wrapper for tables).
std::string fmt(double v, int precision = 2);

}  // namespace cyclops::bench

// Online recalibration under injected drift — the ROADMAP item-3 "slow
// die-off" scenario, run as twin sessions from the same seed:
//
//   frozen — the commissioning calibration serves unchanged while VRH-T
//            frame drift (ramp + step) and RX galvo gain drift accumulate;
//   online — identical slot stream, but cal::OnlineRecalibrator refits the
//            Stage-2 mapping in flight whenever DriftMonitor latches.
//
// The twins share every rng draw, so the delta between them is exactly the
// recalibration effect.  Hard gates (also run by scripts/check.sh smoke):
//   * refits >= 1              — the monitor actually triggered;
//   * refit_down_windows == 0  — no link-down slot while a refit was in
//                                flight (refit-without-outage);
//   * margin_recovered >= 0.9  — online's tail margin recovers >= 90 % of
//                                what the frozen calibration loses.
//
// An argv[1] duration below the full 2 s selects smoke mode, which writes
// BENCH_recal_smoke.json so the committed full-run BENCH_recal.json is
// never clobbered.  (Durations below ~1 s compress the drift ramp faster
// than a refit can converge, so the smoke floor is 1 s.)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "cal/online.hpp"
#include "core/calibration.hpp"
#include "sim/prototype.hpp"

using namespace cyclops;

namespace {

constexpr double kFullDurationS = 2.0;
constexpr int kTimingReps = 2;

/// The commissioning calibration: ground-truth models/maps (so every dB
/// lost later is attributable to the injected drift, not fit error).
core::CalibrationResult truth_calibration(const sim::Prototype& proto) {
  return core::CalibrationResult{
      core::KSpaceFitReport{core::GmaModel(proto.tx_galvo_truth)
                                .transformed(proto.k_from_tx_gma),
                            0.0, 0.0, 0, true},
      core::KSpaceFitReport{core::GmaModel(proto.rx_galvo_truth)
                                .transformed(proto.k_from_rx_gma),
                            0.0, 0.0, 0, true},
      core::MappingFitReport{proto.true_map_tx, proto.true_map_rx, 0.0, 0.0, 0,
                             true},
      {}};
}

cal::OnlineRecalResult run_twin(double duration_s, bool online) {
  sim::Prototype proto = sim::make_prototype(211, sim::prototype_25g_config());
  const core::CalibrationResult calibration = truth_calibration(proto);
  cal::OnlineRecalConfig config;
  config.duration_s = duration_s;
  config.online = online;
  config.seed = 7;
  return cal::run_online_recal_session(proto, calibration, config);
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = kFullDurationS;
  if (argc > 1) duration_s = std::atof(argv[1]);
  const bool smoke = duration_s < kFullDurationS;

  std::printf("== Online recalibration: frozen vs online under drift "
              "(%.1f s twins) ==\n\n", duration_s);

  // Best-of-2 wall time over the twin pair (fig13/14/15 protocol); the
  // reported results are rep 0's — the runs are deterministic, so later
  // reps only re-measure time.
  cal::OnlineRecalResult frozen, online;
  double pair_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    bench::Timer timer;
    cal::OnlineRecalResult rep_frozen = run_twin(duration_s, /*online=*/false);
    cal::OnlineRecalResult rep_online = run_twin(duration_s, /*online=*/true);
    const double rep_ms = timer.elapsed_ms();
    if (rep == 0) {
      frozen = std::move(rep_frozen);
      online = std::move(rep_online);
      pair_ms = rep_ms;
    } else {
      pair_ms = std::min(pair_ms, rep_ms);
    }
  }

  const double lost = frozen.early_margin_db - frozen.tail_margin_db;
  const double recovered =
      lost > 0.0 ? (online.tail_margin_db - frozen.tail_margin_db) / lost : 0.0;

  std::printf("frozen: early %.2f dB -> tail %.2f dB  (up %.3f, "
              "%llu down slots)\n",
              frozen.early_margin_db, frozen.tail_margin_db,
              frozen.up_fraction,
              static_cast<unsigned long long>(frozen.down_slots));
  std::printf("online: early %.2f dB -> tail %.2f dB  (up %.3f, "
              "%llu down slots)\n",
              online.early_margin_db, online.tail_margin_db,
              online.up_fraction,
              static_cast<unsigned long long>(online.down_slots));
  std::printf("refits %d  refit windows %llu  refit-down windows %llu\n",
              online.refits,
              static_cast<unsigned long long>(online.refit_windows),
              static_cast<unsigned long long>(online.refit_down_windows));
  std::printf("margin lost (frozen) %.2f dB, recovered (online) %.1f%%\n",
              lost, 100.0 * recovered);
  std::printf("twin pair: %.1f ms (best of %d)\n", pair_ms, kTimingReps);

  bench::write_bench_json(
      smoke ? "recal_smoke" : "recal",
      {{"duration_s", duration_s},
       {"frozen_early_margin_db", frozen.early_margin_db},
       {"frozen_tail_margin_db", frozen.tail_margin_db},
       {"frozen_up_fraction", frozen.up_fraction},
       {"online_tail_margin_db", online.tail_margin_db},
       {"online_up_fraction", online.up_fraction},
       {"margin_lost_db", lost},
       {"margin_recovered", recovered},
       {"refits", static_cast<double>(online.refits)},
       {"refit_windows", static_cast<double>(online.refit_windows)},
       {"refit_down_windows",
        static_cast<double>(online.refit_down_windows)},
       {"windows", static_cast<double>(online.windows)},
       {"pair_ms", pair_ms},
       {"timing_reps", static_cast<double>(kTimingReps)}});

  // Gates.
  bool ok = true;
  if (online.refits < 1) {
    std::fprintf(stderr, "GATE FAIL: no refit triggered (drift monitor never "
                         "latched)\n");
    ok = false;
  }
  if (online.refit_down_windows != 0) {
    std::fprintf(stderr, "GATE FAIL: %llu windows had a down slot during an "
                         "in-flight refit\n",
                 static_cast<unsigned long long>(online.refit_down_windows));
    ok = false;
  }
  if (lost <= 0.0) {
    std::fprintf(stderr, "GATE FAIL: frozen twin lost no margin — drift "
                         "injection is not biting\n");
    ok = false;
  }
  if (recovered < 0.9) {
    std::fprintf(stderr, "GATE FAIL: online recovered %.1f%% of lost margin "
                         "(< 90%%)\n", 100.0 * recovered);
    ok = false;
  }
  return ok ? 0 : 1;
}

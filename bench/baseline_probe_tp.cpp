// Baseline: traditional probe-based TP (FSONet-style dither-and-climb)
// vs Cyclops's learned pointing, on identical motion.
//
// §3's core claim: probe-based TP is "challenging and likely even
// infeasible" here, because (i) every probe observation costs a real
// DAQ/settle cycle (~1.8 ms) while the rig keeps moving, and (ii) the
// four voltages must be optimized jointly.  One maintenance round = 8
// probes ≈ 14.4 ms — about one VRH-T period — during which a
// 10 deg/s rotation moves the rig by ~2.5 mrad, half the RX tolerance.
#include <cstdio>

#include "bench_common.hpp"
#include "core/probe_tracker.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

/// Fraction of time the link would carry traffic (power >= sensitivity)
/// under probe-based TP, for a given angular stroke speed.
double probe_up_fraction(bench::CalibratedRig& rig, double angular_rps) {
  const motion::AngularStrokeMotion profile(
      rig.proto.nominal_rig_pose, {0, 1, 0}, util::deg_to_rad(12.0),
      {angular_rps});
  const double sensitivity = rig.proto.scene.config().sfp.rx_sensitivity_dbm;

  // Start aligned (same protocol as the learned-TP runs).
  core::ExhaustiveAligner aligner;
  rig.proto.scene.set_rig_pose(profile.pose_at(0));
  sim::Voltages v = aligner.align(rig.proto.scene, {}).voltages;

  const core::ProbeTracker tracker(core::ProbeTpConfig{});
  util::SimTimeUs now = 0;
  const auto duration = util::us_from_s(profile.duration_s());
  int up = 0, total = 0;

  while (now < duration) {
    // One maintenance round: the rig moves between probes.
    const auto observe = [&](const sim::Voltages& probe) {
      now += tracker.config().probe_interval;
      rig.proto.scene.set_rig_pose(profile.pose_at(now));
      return rig.proto.scene.received_power_dbm(probe);
    };
    v = tracker.round(v, observe);
    // Check service at the end of the round.
    rig.proto.scene.set_rig_pose(profile.pose_at(now));
    ++total;
    if (rig.proto.scene.received_power_dbm(v) >= sensitivity) ++up;
  }
  rig.proto.scene.set_rig_pose(rig.proto.nominal_rig_pose);
  return total > 0 ? static_cast<double>(up) / total : 0.0;
}

double learned_up_fraction(bench::CalibratedRig& rig, double angular_rps) {
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  const motion::AngularStrokeMotion profile(
      rig.proto.nominal_rig_pose, {0, 1, 0}, util::deg_to_rad(12.0),
      {angular_rps});
  return link::run_link_simulation(rig.proto, controller, profile)
      .total_up_fraction;
}

}  // namespace

int main() {
  std::printf("== Baseline: probe-based TP (FSONet-style) vs Cyclops's "
              "learned TP ==\n\n");
  std::printf("one probe round = %d observations x %.1f ms = %.1f ms\n\n",
              core::ProbeTracker::kProbesPerRound,
              core::ProbeTpConfig{}.probe_interval / 1000.0,
              core::ProbeTracker(core::ProbeTpConfig{}).round_duration() /
                  1000.0);

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());

  std::printf("angular_speed_deg_s, probe_tp_up_fraction, "
              "learned_tp_up_fraction\n");
  for (double w : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    const double probe = probe_up_fraction(rig, util::deg_to_rad(w));
    const double learned = learned_up_fraction(rig, util::deg_to_rad(w));
    std::printf("%.0f, %.2f, %.2f\n", w, probe, learned);
  }

  std::printf("\nexpectation: probe-based TP collapses well below the VRH "
              "requirement (19 deg/s) while the learned TP holds to "
              "~16-18 deg/s — §3's infeasibility argument, quantified.\n");
  return 0;
}

// §3's deployment question, quantified: how many ceiling TXs does a room
// need, as a function of the steering cone?  The GVS102's ±20° beam cone
// covers only a small disk at head height — the paper's "limited
// field-of-view coverage of the GMs" — while a (hypothetical) wide-angle
// steering stage collapses the count to a handful.
#include <cstdio>

#include "link/coverage.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Multi-TX coverage planning (§3) ==\n\n");

  std::printf("room_m, cone_half_angle_deg, redundancy, tx_count, "
              "covered_fraction\n");
  for (double size : {3.0, 4.0, 6.0}) {
    for (double cone_deg : {20.0, 35.0, 60.0}) {
      for (int redundancy : {1, 2}) {
        link::RoomConfig room;
        room.width = size;
        room.depth = size;
        room.tx_cone_half_angle = util::deg_to_rad(cone_deg);
        room.max_range = cone_deg > 30.0 ? 3.5 : 3.0;
        room.min_coverage = redundancy;
        const link::CoveragePlan plan = link::plan_coverage(room);
        std::printf("%.0fx%.0f, %.0f, %d, %zu, %.2f\n", size, size, cone_deg,
                    redundancy, plan.tx_positions.size(),
                    plan.covered_fraction);
      }
    }
  }

  std::printf("\nreading: the stock GVS102 cone (±20°) needs dozens of TXs "
              "per room — §6's miniaturization/cost hurdle; wide-angle "
              "steering (±60°) collapses the count to a handful.\n");
  return 0;
}

// Acquisition-time accounting, reproducing the paper's cost claims:
//
//  * footnote 3: "determining the (four) voltages that align the link
//    takes a few minutes of exhaustive search" — each search observation
//    costs a real DAQ write + settle + power read;
//  * §4.2: "the time taken (1-2 mins) by the search is tolerable" because
//    it happens ~30 times, once per Stage-2 sample;
//  * after calibration, P computes the aligning voltages in microseconds
//    and one DAQ cycle applies them — the whole reason to learn a model.
#include <cstdio>

#include "bench_common.hpp"
#include "core/exhaustive_aligner.hpp"
#include "core/pointing.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Acquisition time: exhaustive search vs learned pointing "
              "==\n\n");

  // Each bench observation = DAQ conversion + GM settle + power read.
  const double per_observation_s = 1.8e-3;

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());

  // Exhaustive alignment cost across random poses.
  core::ExhaustiveAligner aligner;
  util::Rng rng(5);
  util::RunningStats evals, seconds;
  for (int i = 0; i < 10; ++i) {
    const geom::Pose pose = core::random_rig_pose(
        rig.proto.nominal_rig_pose, 0.15, 0.10, rng);
    rig.proto.scene.set_rig_pose(pose);
    const core::AlignResult r = aligner.align(rig.proto.scene, {});
    if (!r.converged()) continue;
    evals.add(r.evaluations);
    seconds.add(r.evaluations * per_observation_s);
  }
  rig.proto.scene.set_rig_pose(rig.proto.nominal_rig_pose);
  std::printf("exhaustive search (cold): %.0f observations avg -> %.1f s "
              "per alignment on real hardware\n",
              evals.mean(), seconds.mean());
  std::printf("  (the paper's raster-style search: 1-2 min; ours uses a "
              "photodiode-guided sweep + simplex polish)\n");
  std::printf("stage-2 data collection: 30 samples x %.1f s ~ %.1f min of "
              "bench time, once per deployment\n\n",
              seconds.mean(), 30.0 * seconds.mean() / 60.0);

  // Learned pointing: one P solve + one DAQ application.
  const core::PointingSolver solver = rig.calib.make_pointing_solver();
  const geom::Pose psi =
      rig.proto.tracker.report(0, rig.proto.nominal_rig_pose).pose;
  const core::PointingResult p = solver.solve(psi, {});
  const core::TpConfig tp;
  std::printf("learned pointing: %d iterations, ~5 us compute + %.2f ms "
              "DAQ/settle = one realignment per tracker report\n",
              p.iterations, tp.pointing_latency_s() * 1e3);
  std::printf("speedup over exhaustive re-acquisition: ~%.0fx\n",
              seconds.mean() / tp.pointing_latency_s());
  std::printf("\nthis gap is the paper's core argument for learning P "
              "instead of searching per pose (footnote 3 / §4.2).\n");
  return 0;
}

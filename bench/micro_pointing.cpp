// Hot-path microbenchmarks (google-benchmark): the cost of one G
// evaluation, one G' inversion, one full P solve, one physical scene
// trace, and one TP controller step.  Supports the §5.2 claim that the P
// computation is "minimal (in microseconds)" next to the 1-2 ms DAQ
// latency.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/gprime.hpp"
#include "core/pointing.hpp"
#include "core/tp_controller.hpp"

using namespace cyclops;

namespace {

bench::CalibratedRig& rig() {
  static bench::CalibratedRig instance =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  return instance;
}

void BM_GmaModelTrace(benchmark::State& state) {
  const core::GmaModel& model = rig().calib.tx_stage1.model;
  double v = 0.0;
  for (auto _ : state) {
    v += 1e-4;
    benchmark::DoNotOptimize(model.trace(v, -v));
  }
}
BENCHMARK(BM_GmaModelTrace);

void BM_GPrimeSolve(benchmark::State& state) {
  const core::PointingSolver solver = rig().calib.make_pointing_solver();
  const core::GmaModel& tx = solver.tx_vr();
  const core::GPrimeSolver gprime;
  const auto boresight = tx.trace(0.0, 0.0);
  const geom::Vec3 target = boresight->at(1.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gprime.solve(tx, target));
  }
}
BENCHMARK(BM_GPrimeSolve);

void BM_PointingSolve(benchmark::State& state) {
  const core::PointingSolver solver = rig().calib.make_pointing_solver();
  const geom::Pose psi =
      rig().proto.tracker.ideal_report(rig().proto.nominal_rig_pose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(psi, {}));
  }
}
BENCHMARK(BM_PointingSolve);

void BM_PointingSolveWarm(benchmark::State& state) {
  const core::PointingSolver solver = rig().calib.make_pointing_solver();
  const geom::Pose psi =
      rig().proto.tracker.ideal_report(rig().proto.nominal_rig_pose);
  const sim::Voltages warm = solver.solve(psi, {}).voltages;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(psi, warm));
  }
}
BENCHMARK(BM_PointingSolveWarm);

void BM_SceneObserve(benchmark::State& state) {
  sim::Scene& scene = rig().proto.scene;
  const sim::Voltages v{0.1, -0.2, 0.3, -0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene.observe(v));
  }
}
BENCHMARK(BM_SceneObserve);

void BM_TpControllerStep(benchmark::State& state) {
  core::TpController controller(rig().calib.make_pointing_solver(),
                                core::TpConfig{});
  tracking::PoseReport report;
  report.pose = rig().proto.tracker.ideal_report(rig().proto.nominal_rig_pose);
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.on_report(report));
  }
}
BENCHMARK(BM_TpControllerStep);

}  // namespace

BENCHMARK_MAIN();

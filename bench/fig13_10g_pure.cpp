// Reproduces Fig 13: 10G throughput and received power for purely linear
// and purely angular motions (rail / rotation-stage strokes of gradually
// increasing speed, 50 ms iperf windows).
//
// Paper anchors: optimal 9.4 Gbps up to ~33 cm/s linear (observed up to
// 39 cm/s) and ~16-18 deg/s angular (up to ~19 deg/s); received power
// stays above -25..-30 dBm inside those bounds.
//
// This bench also doubles as the engine-equivalence gate: every sweep
// runs on the event-driven session core AND on the retained fixed-step
// oracle (on an identically seeded twin rig), the two outputs must be
// bitwise equal, and the timings land in BENCH_fig13.json as
// legacy_vs_event_speedup.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

/// Bitwise comparison (== on doubles; the claim is exact equality, not
/// tolerance) — aborts the bench on the first mismatch.
void require_identical(const std::vector<bench::SpeedSweepRow>& event_rows,
                       const std::vector<bench::SpeedSweepRow>& oracle_rows,
                       const char* what) {
  bool ok = event_rows.size() == oracle_rows.size();
  for (std::size_t i = 0; ok && i < event_rows.size(); ++i) {
    const auto& a = event_rows[i];
    const auto& b = oracle_rows[i];
    ok = a.speed == b.speed && a.throughput_gbps == b.throughput_gbps &&
         a.power_dbm == b.power_dbm && a.up_fraction == b.up_fraction;
  }
  if (!ok) {
    std::printf("ENGINE MISMATCH in %s sweep: event engine output is not "
                "bitwise equal to the fixed-step oracle\n",
                what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("== Fig 13: 10G throughput/power vs linear and angular speed "
              "==\n\n");

  // Twin rigs: both engines consume tracker randomness, so each gets its
  // own identically seeded prototype (cf. tests/session_core_test).
  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  bench::CalibratedRig oracle_rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const double goodput = rig.proto.scene.config().sfp.goodput_gbps;

  // --- purely linear motion (cm/s) ---
  std::vector<double> linear_speeds;
  for (double v = 0.05; v <= 0.90 + 1e-9; v += 0.05) linear_speeds.push_back(v);
  bench::Timer timer;
  const auto linear_rows = bench::stroke_speed_sweep(
      rig, bench::StrokeKind::kLinear, linear_speeds,
      link::SessionEngine::kEvent);
  double event_ms = timer.elapsed_ms();
  timer.reset();
  const auto linear_oracle = bench::stroke_speed_sweep(
      oracle_rig, bench::StrokeKind::kLinear, linear_speeds,
      link::SessionEngine::kFixedStep);
  double legacy_ms = timer.elapsed_ms();
  require_identical(linear_rows, linear_oracle, "linear");

  std::printf("linear_speed_cm_s, throughput_gbps, power_dbm\n");
  for (const auto& row : linear_rows) {
    std::printf("%.0f, %.2f, %.1f\n", row.speed * 100.0, row.throughput_gbps,
                row.power_dbm);
  }
  const double max_linear = bench::max_optimal_speed(linear_rows, goodput);
  std::printf("max linear speed with optimal throughput: %.0f cm/s "
              "(paper: ~33-39 cm/s)\n\n",
              max_linear * 100.0);

  // --- purely angular motion (deg/s) ---
  std::vector<double> angular_speeds;
  for (double w = 4.0; w <= 40.0 + 1e-9; w += 4.0) {
    angular_speeds.push_back(util::deg_to_rad(w));
  }
  timer.reset();
  const auto angular_rows = bench::stroke_speed_sweep(
      rig, bench::StrokeKind::kAngular, angular_speeds,
      link::SessionEngine::kEvent);
  event_ms += timer.elapsed_ms();
  timer.reset();
  const auto angular_oracle = bench::stroke_speed_sweep(
      oracle_rig, bench::StrokeKind::kAngular, angular_speeds,
      link::SessionEngine::kFixedStep);
  legacy_ms += timer.elapsed_ms();
  require_identical(angular_rows, angular_oracle, "angular");

  std::printf("angular_speed_deg_s, throughput_gbps, power_dbm\n");
  for (const auto& row : angular_rows) {
    std::printf("%.0f, %.2f, %.1f\n", util::rad_to_deg(row.speed),
                row.throughput_gbps, row.power_dbm);
  }
  const double max_angular = bench::max_optimal_speed(angular_rows, goodput);
  std::printf("max angular speed with optimal throughput: %.0f deg/s "
              "(paper: ~16-19 deg/s)\n\n",
              util::rad_to_deg(max_angular));

  std::printf("engines bitwise equal; event %.0f ms vs fixed-step %.0f ms "
              "(speedup %.2fx)\n",
              event_ms, legacy_ms, legacy_ms / event_ms);
  bench::write_bench_json(
      "fig13", {{"max_linear_cm_s", max_linear * 100.0},
                {"max_angular_deg_s", util::rad_to_deg(max_angular)},
                {"event_ms", event_ms},
                {"legacy_ms", legacy_ms},
                {"legacy_vs_event_speedup", legacy_ms / event_ms}});
  return 0;
}

// Reproduces Fig 13: 10G throughput and received power for purely linear
// and purely angular motions (rail / rotation-stage strokes of gradually
// increasing speed, 50 ms iperf windows).
//
// Paper anchors: optimal 9.4 Gbps up to ~33 cm/s linear (observed up to
// 39 cm/s) and ~16-18 deg/s angular (up to ~19 deg/s); received power
// stays above -25..-30 dBm inside those bounds.
//
// This bench also doubles as the engine-equivalence gate: every sweep
// runs on the event-driven session core AND on the retained fixed-step
// oracle (on an identically seeded twin rig), the two outputs must be
// bitwise equal, and the timings land in BENCH_fig13.json as
// legacy_vs_event_speedup.  Timings are best-of-2 (the fig16 protocol:
// the min discards one-off scheduler hiccups so the speedup ratio is
// stable against single-shot noise); both twin rigs run every rep so
// their consumed-randomness streams stay in lockstep.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

constexpr int kTimingReps = 2;

/// Bitwise comparison (== on doubles; the claim is exact equality, not
/// tolerance) — aborts the bench on the first mismatch.
void require_identical(const std::vector<bench::SpeedSweepRow>& event_rows,
                       const std::vector<bench::SpeedSweepRow>& oracle_rows,
                       const char* what) {
  bool ok = event_rows.size() == oracle_rows.size();
  for (std::size_t i = 0; ok && i < event_rows.size(); ++i) {
    const auto& a = event_rows[i];
    const auto& b = oracle_rows[i];
    ok = a.speed == b.speed && a.throughput_gbps == b.throughput_gbps &&
         a.power_dbm == b.power_dbm && a.up_fraction == b.up_fraction;
  }
  if (!ok) {
    std::printf("ENGINE MISMATCH in %s sweep: event engine output is not "
                "bitwise equal to the fixed-step oracle\n",
                what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("== Fig 13: 10G throughput/power vs linear and angular speed "
              "==\n\n");

  // Twin rigs: both engines consume tracker randomness, so each gets its
  // own identically seeded prototype (cf. tests/session_core_test).
  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  bench::CalibratedRig oracle_rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const double goodput = rig.proto.scene.config().sfp.goodput_gbps;

  std::vector<double> linear_speeds;
  for (double v = 0.05; v <= 0.90 + 1e-9; v += 0.05) linear_speeds.push_back(v);
  std::vector<double> angular_speeds;
  for (double w = 4.0; w <= 40.0 + 1e-9; w += 4.0) {
    angular_speeds.push_back(util::deg_to_rad(w));
  }

  // Best-of-2 over full (linear + angular) passes.  Each rep runs the
  // event engine AND the fixed-step oracle on their respective rigs, so
  // the twins see identical stroke sequences and stay comparable; the
  // reported rows are rep 0's (every rep is checked bitwise-equal
  // across engines regardless).
  std::vector<bench::SpeedSweepRow> linear_rows, angular_rows;
  double event_ms = 0.0, legacy_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    bench::Timer timer;
    auto rep_linear = bench::stroke_speed_sweep(
        rig, bench::StrokeKind::kLinear, linear_speeds,
        link::SessionEngine::kEvent);
    double rep_event_ms = timer.elapsed_ms();
    timer.reset();
    const auto linear_oracle = bench::stroke_speed_sweep(
        oracle_rig, bench::StrokeKind::kLinear, linear_speeds,
        link::SessionEngine::kFixedStep);
    double rep_legacy_ms = timer.elapsed_ms();
    require_identical(rep_linear, linear_oracle, "linear");

    timer.reset();
    auto rep_angular = bench::stroke_speed_sweep(
        rig, bench::StrokeKind::kAngular, angular_speeds,
        link::SessionEngine::kEvent);
    rep_event_ms += timer.elapsed_ms();
    timer.reset();
    const auto angular_oracle = bench::stroke_speed_sweep(
        oracle_rig, bench::StrokeKind::kAngular, angular_speeds,
        link::SessionEngine::kFixedStep);
    rep_legacy_ms += timer.elapsed_ms();
    require_identical(rep_angular, angular_oracle, "angular");

    if (rep == 0) {
      linear_rows = std::move(rep_linear);
      angular_rows = std::move(rep_angular);
      event_ms = rep_event_ms;
      legacy_ms = rep_legacy_ms;
    } else {
      event_ms = std::min(event_ms, rep_event_ms);
      legacy_ms = std::min(legacy_ms, rep_legacy_ms);
    }
  }

  std::printf("linear_speed_cm_s, throughput_gbps, power_dbm\n");
  for (const auto& row : linear_rows) {
    std::printf("%.0f, %.2f, %.1f\n", row.speed * 100.0, row.throughput_gbps,
                row.power_dbm);
  }
  const double max_linear = bench::max_optimal_speed(linear_rows, goodput);
  std::printf("max linear speed with optimal throughput: %.0f cm/s "
              "(paper: ~33-39 cm/s)\n\n",
              max_linear * 100.0);

  std::printf("angular_speed_deg_s, throughput_gbps, power_dbm\n");
  for (const auto& row : angular_rows) {
    std::printf("%.0f, %.2f, %.1f\n", util::rad_to_deg(row.speed),
                row.throughput_gbps, row.power_dbm);
  }
  const double max_angular = bench::max_optimal_speed(angular_rows, goodput);
  std::printf("max angular speed with optimal throughput: %.0f deg/s "
              "(paper: ~16-19 deg/s)\n\n",
              util::rad_to_deg(max_angular));

  std::printf("engines bitwise equal; event %.0f ms vs fixed-step %.0f ms "
              "(best of %d, speedup %.2fx)\n",
              event_ms, legacy_ms, kTimingReps, legacy_ms / event_ms);
  bench::write_bench_json(
      "fig13", {{"max_linear_cm_s", max_linear * 100.0},
                {"max_angular_deg_s", util::rad_to_deg(max_angular)},
                {"event_ms", event_ms},
                {"legacy_ms", legacy_ms},
                {"legacy_vs_event_speedup", legacy_ms / event_ms},
                {"timing_reps", static_cast<double>(kTimingReps)}});
  return 0;
}

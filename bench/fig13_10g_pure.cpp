// Reproduces Fig 13: 10G throughput and received power for purely linear
// and purely angular motions (rail / rotation-stage strokes of gradually
// increasing speed, 50 ms iperf windows).
//
// Paper anchors: optimal 9.4 Gbps up to ~33 cm/s linear (observed up to
// 39 cm/s) and ~16-18 deg/s angular (up to ~19 deg/s); received power
// stays above -25..-30 dBm inside those bounds.
#include <cstdio>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Fig 13: 10G throughput/power vs linear and angular speed "
              "==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const double goodput = rig.proto.scene.config().sfp.goodput_gbps;

  // --- purely linear motion (cm/s) ---
  std::vector<double> linear_speeds;
  for (double v = 0.05; v <= 0.90 + 1e-9; v += 0.05) linear_speeds.push_back(v);
  const auto linear_rows =
      bench::stroke_speed_sweep(rig, bench::StrokeKind::kLinear, linear_speeds);

  std::printf("linear_speed_cm_s, throughput_gbps, power_dbm\n");
  for (const auto& row : linear_rows) {
    std::printf("%.0f, %.2f, %.1f\n", row.speed * 100.0, row.throughput_gbps,
                row.power_dbm);
  }
  const double max_linear = bench::max_optimal_speed(linear_rows, goodput);
  std::printf("max linear speed with optimal throughput: %.0f cm/s "
              "(paper: ~33-39 cm/s)\n\n",
              max_linear * 100.0);

  // --- purely angular motion (deg/s) ---
  std::vector<double> angular_speeds;
  for (double w = 4.0; w <= 40.0 + 1e-9; w += 4.0) {
    angular_speeds.push_back(util::deg_to_rad(w));
  }
  const auto angular_rows = bench::stroke_speed_sweep(
      rig, bench::StrokeKind::kAngular, angular_speeds);

  std::printf("angular_speed_deg_s, throughput_gbps, power_dbm\n");
  for (const auto& row : angular_rows) {
    std::printf("%.0f, %.2f, %.1f\n", util::rad_to_deg(row.speed),
                row.throughput_gbps, row.power_dbm);
  }
  const double max_angular = bench::max_optimal_speed(angular_rows, goodput);
  std::printf("max angular speed with optimal throughput: %.0f deg/s "
              "(paper: ~16-19 deg/s)\n",
              util::rad_to_deg(max_angular));
  return 0;
}

// Reproduces Table 2: errors of the first and combined (first + second)
// stages of estimating the TX and RX GMA models.
//
// Paper anchors (avg / max, mm):
//   First Stage (TX)  1.24 / 5.30      First Stage (RX)  1.90 / 5.41
//   Combined (TX)     2.18 / 4.07      Combined (RX)     4.54 / 6.50
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Table 2: GMA model estimation errors (10G prototype) ==\n\n");

  // Calibrate under both execution modes — forced serial, and over the
  // pool (the LM Jacobians inside Stage 1/2 are column-parallel) — to
  // record the speedup and check the fits agree exactly.  Timings are
  // best-of-2 (the fig16 protocol: the min discards one-off scheduler
  // hiccups so the speedup ratio is stable against single-shot noise);
  // calibration is a pure function of the seed, so reruns are free.
  constexpr int kTimingReps = 2;
  bench::Timer timer;
  double serial_stage1_avg = 0.0;
  double serial_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    util::ThreadPool::SerialScope force_serial;
    timer.reset();
    const bench::CalibratedRig serial_rig =
        bench::make_calibrated_rig(42, sim::prototype_10g_config());
    serial_ms = rep == 0 ? timer.elapsed_ms()
                         : std::min(serial_ms, timer.elapsed_ms());
    serial_stage1_avg = serial_rig.calib.tx_stage1.avg_error_m;
  }

  timer.reset();
  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  double parallel_ms = timer.elapsed_ms();
  for (int rep = 1; rep < kTimingReps; ++rep) {
    timer.reset();
    const bench::CalibratedRig rerun =
        bench::make_calibrated_rig(42, sim::prototype_10g_config());
    parallel_ms = std::min(parallel_ms, timer.elapsed_ms());
    if (rerun.calib.tx_stage1.avg_error_m !=
        rig.calib.tx_stage1.avg_error_m) {
      std::fprintf(stderr, "FATAL: calibration rerun not deterministic\n");
      return 1;
    }
  }
  if (rig.calib.tx_stage1.avg_error_m != serial_stage1_avg) {
    std::fprintf(stderr, "FATAL: parallel calibration differs from serial\n");
    return 1;
  }
  bench::write_bench_json(
      "table2",
      {{"serial_ms", serial_ms},
       {"parallel_ms", parallel_ms},
       {"speedup", serial_ms / parallel_ms},
       {"serial_threads", 1.0},
       {"parallel_threads",
        static_cast<double>(util::ThreadPool::global().thread_count())},
       {"timing_reps", static_cast<double>(kTimingReps)}});

  util::Rng rng(17);
  const core::CombinedErrors combined = core::evaluate_combined_errors(
      rig.proto, rig.calib, 20, 0.15, 0.10, rng);

  util::TextTable table({"", "Avg. Error (mm)", "Max. Error (mm)", "paper"});
  table.add_row({"First Stage (TX)",
                 util::TextTable::num(util::m_to_mm(rig.calib.tx_stage1.avg_error_m)),
                 util::TextTable::num(util::m_to_mm(rig.calib.tx_stage1.max_error_m)),
                 "1.24 / 5.30"});
  table.add_row({"First Stage (RX)",
                 util::TextTable::num(util::m_to_mm(rig.calib.rx_stage1.avg_error_m)),
                 util::TextTable::num(util::m_to_mm(rig.calib.rx_stage1.max_error_m)),
                 "1.90 / 5.41"});
  table.add_row({"Combined (TX)",
                 util::TextTable::num(util::m_to_mm(combined.tx.avg_m)),
                 util::TextTable::num(util::m_to_mm(combined.tx.max_m)),
                 "2.18 / 4.07"});
  table.add_row({"Combined (RX)",
                 util::TextTable::num(util::m_to_mm(combined.rx.avg_m)),
                 util::TextTable::num(util::m_to_mm(combined.rx.max_m)),
                 "4.54 / 6.50"});
  table.print(std::cout);

  std::printf("\nstage-2 Lemma-1 residual: %.2f mm avg over %zu aligned "
              "tuples\n",
              util::m_to_mm(rig.calib.mapping.avg_coincidence_m),
              rig.calib.stage2_samples.size());
  std::printf("shape checks: combined > first stage; RX combined > TX "
              "combined (rig flex): %s\n",
              combined.rx.avg_m > combined.tx.avg_m ? "yes" : "no");
  return 0;
}

// Fleet simulator: N isolated sessions (default 10 000) striped across
// the driver pool via session::run_fleet — the LP-scale story (DESIGN.md
// §16).  The spec list cycles the full catalog (link / channel / hetero /
// multi-TX / arena / stream) with per-index seeds, so the fleet exercises
// every plane and the per-variant mix lands in the JSON.
//
// Hard gates (scripts/check.sh runs the 1k smoke mode):
//   * rollup reconciliation — fleet_{sessions,events,slots}_total in the
//     merged registry exactly equal the per-session Report sums;
//   * every session dispatched at least one event;
//   * a sessions/sec floor (smoke mode only; see scripts/check.sh).
//
// An argv[1] session count below the full 10 000 selects smoke mode,
// which writes BENCH_fleet_smoke.json so the committed full-run
// BENCH_fleet.json is never clobbered.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "session/catalog.hpp"
#include "session/fleet.hpp"
#include "util/bench_io.hpp"

using namespace cyclops;

namespace {

constexpr std::size_t kFullSessions = 10000;

/// Spec i: variant cycles the catalog, seed is index-derived, durations
/// are tuned so the expensive planes (prototype construction) don't
/// dominate a 10k-session run on one core.
session::SessionSpec make_spec(std::size_t i) {
  session::SessionSpec spec;
  spec.variant =
      static_cast<session::Variant>(i % session::kVariantCount);
  spec.seed = 1 + static_cast<std::uint64_t>(i);
  spec.motion = static_cast<std::uint32_t>(i / session::kVariantCount) % 3;
  spec.intensity = 1.0 + 0.25 * static_cast<double>(i % 4);
  switch (spec.variant) {
    case session::Variant::kLink:
    case session::Variant::kHetero:
    case session::Variant::kMultiTx:
      spec.duration_s = 0.2;
      break;
    case session::Variant::kChannel:
      spec.duration_s = 1.0;
      break;
    case session::Variant::kArena:
      spec.duration_s = 0.5;
      break;
    case session::Variant::kStream:
      spec.duration_s = 0.5;
      break;
    case session::Variant::kOnlineRecal:
      spec.duration_s = 0.2;
      break;
  }
  return spec;
}

double peak_rss_mb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = kFullSessions;
  if (argc > 1) n = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  const bool smoke = n < kFullSessions;

  std::vector<session::SessionSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) specs.push_back(make_spec(i));

  const session::RunnerFactory factory = session::catalog_factory();
  const session::FleetResult fleet = session::run_fleet(specs, factory);

  std::size_t mix[session::kVariantCount] = {};
  std::uint64_t events_by_variant[session::kVariantCount] = {};
  std::size_t empty_sessions = 0;
  for (const session::Report& report : fleet.reports) {
    const auto v = static_cast<std::size_t>(report.variant);
    ++mix[v];
    events_by_variant[v] += report.events;
    if (report.events == 0) ++empty_sessions;
  }

  const double wall = fleet.totals.wall_seconds;
  const double sessions_per_sec =
      wall > 0.0 ? static_cast<double>(fleet.totals.sessions) / wall : 0.0;
  const double events_per_sec =
      wall > 0.0 ? static_cast<double>(fleet.totals.events) / wall : 0.0;

  std::printf("fleet: %zu sessions in %.2f s  (%.0f sessions/s, %.2e events/s)\n",
              n, wall, sessions_per_sec, events_per_sec);
  std::printf("  events %llu  slots %llu  peak RSS %.1f MB  reconciled %d\n",
              static_cast<unsigned long long>(fleet.totals.events),
              static_cast<unsigned long long>(fleet.totals.slots),
              peak_rss_mb(), fleet.reconciled ? 1 : 0);
  for (std::size_t v = 0; v < session::kVariantCount; ++v) {
    std::printf("  %-9s %6zu sessions  %12llu events\n",
                session::variant_name(static_cast<session::Variant>(v)),
                mix[v], static_cast<unsigned long long>(events_by_variant[v]));
  }

  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("sessions", static_cast<double>(fleet.totals.sessions));
  fields.emplace_back("wall_seconds", wall);
  fields.emplace_back("sessions_per_sec", sessions_per_sec);
  fields.emplace_back("events_total", static_cast<double>(fleet.totals.events));
  fields.emplace_back("events_per_sec", events_per_sec);
  fields.emplace_back("slots_total", static_cast<double>(fleet.totals.slots));
  fields.emplace_back("peak_rss_mb", peak_rss_mb());
  fields.emplace_back("reconciled", fleet.reconciled ? 1.0 : 0.0);
  for (std::size_t v = 0; v < session::kVariantCount; ++v) {
    const std::string key =
        std::string("mix_") +
        session::variant_name(static_cast<session::Variant>(v));
    fields.emplace_back(key, static_cast<double>(mix[v]));
  }
  util::write_bench_json(smoke ? "fleet_smoke" : "fleet", fields);

  // Gates.
  bool ok = true;
  if (!fleet.reconciled) {
    std::fprintf(stderr, "GATE FAIL: rollup does not reconcile with per-session sums\n");
    ok = false;
  }
  if (fleet.reports.size() != n) {
    std::fprintf(stderr, "GATE FAIL: %zu reports for %zu specs\n",
                 fleet.reports.size(), n);
    ok = false;
  }
  if (empty_sessions != 0) {
    std::fprintf(stderr, "GATE FAIL: %zu sessions dispatched zero events\n",
                 empty_sessions);
    ok = false;
  }
  return ok ? 0 : 1;
}

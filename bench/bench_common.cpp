#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/exhaustive_aligner.hpp"
#include "core/tolerance.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cyclops::bench {

CalibratedRig make_calibrated_rig(std::uint64_t seed,
                                  const sim::PrototypeConfig& config) {
  sim::Prototype proto = sim::make_prototype(seed, config);
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
  return {std::move(proto), std::move(calib)};
}

double aligned_peak_power_dbm(sim::Prototype& proto) {
  return core::aligned_peak_power_dbm(proto);
}

double tx_angular_tolerance(sim::Prototype& proto) {
  return core::tx_angular_tolerance(proto);
}

double rx_angular_tolerance(sim::Prototype& proto) {
  return core::rx_angular_tolerance(proto);
}

double rx_lateral_tolerance(sim::Prototype& proto) {
  return core::rx_lateral_tolerance(proto);
}

std::vector<SpeedSweepRow> stroke_speed_sweep(
    CalibratedRig& rig, StrokeKind kind, const std::vector<double>& speeds,
    link::SessionEngine engine) {
  std::vector<SpeedSweepRow> rows;
  rows.reserve(speeds.size());
  for (double speed : speeds) {
    core::TpController controller(rig.calib.make_pointing_solver(),
                                  core::TpConfig{});
    std::unique_ptr<motion::MotionProfile> profile;
    if (kind == StrokeKind::kLinear) {
      profile = std::make_unique<motion::LinearStrokeMotion>(
          rig.proto.nominal_rig_pose, geom::Vec3{1, 0, 0}, 0.12,
          std::vector<double>{speed});
    } else {
      profile = std::make_unique<motion::AngularStrokeMotion>(
          rig.proto.nominal_rig_pose, geom::Vec3{0, 1, 0},
          util::deg_to_rad(12.0), std::vector<double>{speed});
    }
    link::SimOptions options;
    options.engine = engine;
    const link::RunResult run =
        link::run_link_simulation(rig.proto, controller, *profile, options);

    // Medians over the *moving* windows (the stroke, not the end rests).
    const double speed_floor = 0.5 * speed;
    std::vector<double> tp, power, up;
    for (const auto& w : run.windows) {
      const double w_speed = kind == StrokeKind::kLinear
                                 ? w.linear_speed_mps
                                 : w.angular_speed_rps;
      if (w_speed < speed_floor) continue;
      tp.push_back(w.throughput_gbps);
      up.push_back(w.up_fraction);
      if (std::isfinite(w.avg_power_dbm)) power.push_back(w.avg_power_dbm);
    }
    SpeedSweepRow row;
    row.speed = speed;
    row.throughput_gbps = util::percentile(tp, 50.0);
    row.power_dbm = power.empty() ? -99.0 : util::percentile(power, 50.0);
    row.up_fraction = util::percentile(up, 50.0);
    rows.push_back(row);
  }
  return rows;
}

double max_optimal_speed(const std::vector<SpeedSweepRow>& rows,
                         double goodput_gbps) {
  double best = 0.0;
  for (const auto& row : rows) {
    if (row.throughput_gbps >= 0.98 * goodput_gbps) {
      best = std::max(best, row.speed);
    }
  }
  return best;
}

link::RunResult mixed_motion_run(CalibratedRig& rig, double max_linear_mps,
                                 double max_angular_rps, double duration_s,
                                 std::uint64_t seed,
                                 link::SessionEngine engine) {
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  motion::MixedRandomMotion::Config config;
  config.duration_s = duration_s;
  config.max_linear_speed = max_linear_mps;
  config.max_angular_speed = max_angular_rps;
  config.linear_speed_sigma = max_linear_mps * 0.5;
  config.angular_speed_sigma = max_angular_rps * 0.5;
  const motion::MixedRandomMotion profile(rig.proto.nominal_rig_pose, config,
                                          util::Rng(seed));
  link::SimOptions options;
  options.engine = engine;
  return link::run_link_simulation(rig.proto, controller, profile, options);
}

MixedCharacterization characterize_mixed(CalibratedRig& rig,
                                         double cap_linear_mps,
                                         double cap_angular_rps,
                                         double lin_limit, double ang_limit,
                                         double duration_s, std::uint64_t seed,
                                         link::SessionEngine engine) {
  const double sensitivity = rig.proto.scene.config().sfp.rx_sensitivity_dbm;
  const link::RunResult run = mixed_motion_run(
      rig, cap_linear_mps, cap_angular_rps, duration_s, seed, engine);

  MixedCharacterization result;
  const int n_lin = 10, n_ang = 10;
  const double lin_step = cap_linear_mps / n_lin;
  const double ang_step = cap_angular_rps / n_ang;
  result.by_linear.resize(n_lin);
  result.by_angular.resize(n_ang);
  for (int i = 0; i < n_lin; ++i) result.by_linear[i].speed_lo = i * lin_step;
  for (int i = 0; i < n_ang; ++i) result.by_angular[i].speed_lo = i * ang_step;

  (void)sensitivity;
  for (const auto& w : run.windows) {
    // Aligned = at least 95 % of the window's slots meet sensitivity
    // (tolerates the transient dip of a mid-window realignment).
    const bool aligned = w.power_ok_fraction >= 0.95;
    if (w.angular_speed_rps < ang_limit) {
      const int b = std::min(
          n_lin - 1, static_cast<int>(w.linear_speed_mps / lin_step));
      ++result.by_linear[b].windows;
      if (aligned) ++result.by_linear[b].aligned;
    }
    if (w.linear_speed_mps < lin_limit) {
      const int b = std::min(
          n_ang - 1, static_cast<int>(w.angular_speed_rps / ang_step));
      ++result.by_angular[b].windows;
      if (aligned) ++result.by_angular[b].aligned;
    }
  }

  // "Sustained" = the highest bucket edge reached while every populated
  // bucket below it keeps >= 75 % of windows aligned.  (Scatter-plot data:
  // window-center speeds are noisy and the off-axis speed can sit near its
  // own limit, so individual buckets never reach 100 %.)
  const auto sustained = [](const std::vector<MixedBucket>& buckets,
                            double step) {
    double edge = 0.0;
    for (const auto& bucket : buckets) {
      if (bucket.windows < 5) continue;
      if (bucket.aligned_fraction() < 0.75) break;
      edge = bucket.speed_lo + step;
    }
    return edge;
  };
  result.sustained_linear_mps = sustained(result.by_linear, lin_step);
  result.sustained_angular_rps = sustained(result.by_angular, ang_step);
  return result;
}

std::string fmt(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

}  // namespace cyclops::bench

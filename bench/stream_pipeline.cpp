// Streaming data plane study (DESIGN.md §14): what the RTP-style
// transport + jitter-buffered playout deliver under the link the paper
// characterizes.
//
// Three phases:
//   1. ABR policy trade-off over the §5.4 trace library (the fig16
//      dataset): freeze rate vs encode quality for always-raw,
//      always-compressed, and the adaptive controller, at the wire
//      level (WireQueue + FreezeLedger — the rebased FrameStreamer).
//   2. The full packetized pipeline (arena -> transport -> jitter
//      playout) through synthetic link flaps: goodput sustained,
//      frames/sec and events/sec of the event core, zero-copy check.
//   3. Spectator fan-out scaling: 1 / 4 / 16 receivers sharing the
//      headset's arena slabs refcount-only.
//
// Hard gates (scripts/check.sh runs the 50-trace smoke subset): zero
// torn frames, zero arena copies, and >= 1 Gbps goodput through flaps.
//
// Usage: stream_pipeline [n_traces]
//   n_traces < 500 is the smoke subset; it writes BENCH_stream_smoke.json
//   so the committed full-run BENCH_stream.json is never clobbered.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "bench_common.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "runtime/context.hpp"
#include "stream/pipeline.hpp"
#include "stream/rate_adapter.hpp"
#include "stream/wire_queue.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

constexpr int kFullTraces = 500;
constexpr double kOnRateGbps = 23.5;  // 25G prototype effective rate
constexpr util::SimTimeUs kSlotUs = 1000;
constexpr util::SimTimeUs kFramePeriodUs = 11111;  // 90 fps

// The fig16 §5.4 dataset recipe (bench/fig16_trace_cdf.cpp), verbatim.
std::vector<motion::Trace> make_dataset(int n, util::ThreadPool& pool) {
  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig gen_config;
  gen_config.max_linear_mps = 0.19;
  gen_config.shift_peak_mps = 0.17;
  gen_config.shift_rate_hz = 0.22;
  return motion::generate_dataset(base, n, gen_config, rng, pool);
}

// Per-slot capacity from a head trace: the evaluate_trace_fixed_step
// interval walk, reduced to off -> 0 Gbps, on -> 23.5 Gbps.
std::vector<double> capacity_per_slot(const motion::Trace& trace,
                                      const link::SlotEvalConfig& config) {
  std::vector<double> capacity;
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    const auto& prev = trace.samples[i - 1];
    const auto& cur = trace.samples[i];
    link::detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    if (model.gap_ms <= 0.0) continue;
    model.lat_rate =
        geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.ang_rate =
        geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.config = &config;
    const int slots =
        std::max(1, static_cast<int>(model.gap_ms / config.slot_ms));
    for (int s = 0; s < slots; ++s) {
      capacity.push_back(model.off_at(s) ? 0.0 : kOnRateGbps);
    }
  }
  return capacity;
}

// ---------------------------------------------------------------------
// Phase 1: ABR policy study at the wire level.

enum class Policy { kRaw, kCompressed, kAdaptive };

struct PolicyOutcome {
  double sim_seconds = 0.0;
  std::int64_t frames_offered = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t freeze_events = 0;
  double encoded_bits = 0.0;    ///< Sum of offered frame sizes.
  double delivered_bits = 0.0;  ///< Sum of delivered frame sizes.

  double freeze_per_min() const {
    return sim_seconds > 0.0 ? freeze_events / (sim_seconds / 60.0) : 0.0;
  }
  double delivery_rate() const {
    return frames_offered > 0
               ? static_cast<double>(frames_delivered) / frames_offered
               : 0.0;
  }
  double encode_gbps() const {
    return sim_seconds > 0.0 ? encoded_bits / sim_seconds / 1e9 : 0.0;
  }
  double goodput_gbps() const {
    return sim_seconds > 0.0 ? delivered_bits / sim_seconds / 1e9 : 0.0;
  }
};

// Drives one trace's capacity timeline through the wire queue under a
// policy.  The queue is FIFO and resolves frames strictly in id order
// (expiries from the front, then deliveries from the front), so the
// per-step delta of dropped/delivered counts identifies exactly which
// offered sizes were delivered — the goodput is exact, not estimated.
void drive_policy(const std::vector<double>& capacity, Policy policy,
                  PolicyOutcome& out) {
  stream::FreezeLedger ledger;
  stream::WireQueue wire({}, ledger);
  stream::EncoderRateAdapter adapter{stream::RatePolicy{}};
  std::deque<double> pending_bits;  // offered, not yet resolved
  std::int64_t next_frame = 0;
  std::int64_t seen_dropped = 0;
  std::int64_t seen_delivered = 0;
  for (std::size_t s = 0; s < capacity.size(); ++s) {
    const util::SimTimeUs now = static_cast<util::SimTimeUs>(s) * kSlotUs;
    const double rate_gbps =
        policy == Policy::kRaw          ? adapter.policy().raw_rate_gbps
        : policy == Policy::kCompressed ? adapter.policy().compressed_rate_gbps
                                        : adapter.current_rate_gbps();
    while (next_frame * kFramePeriodUs <= now) {
      const double bits = rate_gbps * 1e9 / 90.0;
      wire.offer(next_frame, next_frame * kFramePeriodUs, bits);
      pending_bits.push_back(bits);
      out.encoded_bits += bits;
      ++next_frame;
    }
    if (policy == Policy::kAdaptive) adapter.step(now, capacity[s]);
    wire.step(now, kSlotUs, capacity[s]);
    const auto& st = ledger.stats();
    for (; seen_dropped < st.frames_dropped; ++seen_dropped) {
      pending_bits.pop_front();
    }
    for (; seen_delivered < st.frames_delivered; ++seen_delivered) {
      out.delivered_bits += pending_bits.front();
      pending_bits.pop_front();
    }
  }
  out.sim_seconds += util::us_to_s(static_cast<util::SimTimeUs>(
      capacity.size() * kSlotUs));
  out.frames_offered += ledger.stats().frames_offered;
  out.frames_delivered += ledger.stats().frames_delivered;
  out.freeze_events += ledger.stats().freeze_events;
}

// ---------------------------------------------------------------------
// Phases 2/3: the full packetized pipeline.

stream::PipelineResult run_pipeline(int spectators, double duration_s,
                                    const stream::CapacityFn& capacity) {
  runtime::Context ctx = runtime::Context::isolated();
  stream::PipelineConfig config;
  config.duration = util::us_from_s(duration_s);
  config.spectators = spectators;
  config.spectator = {.loss = 0.002, .dup = 0.01, .reorder = 0.05};
  stream::StreamPipeline pipe(config, ctx);
  return pipe.run(capacity);
}

// 100 ms outage every 2 s: frequent enough to exercise expiry/eviction
// and jitter-buffer gaps, mild enough (5% off) that the adapter holds
// raw mode — the "sustained through flaps" number is the raw stream.
double flap_capacity(util::SimTimeUs t) {
  return t % util::us_from_s(2.0) < util::us_from_ms(100.0) ? 0.0
                                                            : kOnRateGbps;
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "GATE FAILED: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_traces =
      argc > 1 ? std::max(1, std::atoi(argv[1])) : kFullTraces;
  std::printf("== Streaming data plane: ABR policies, packetized "
              "pipeline, fan-out (%d traces) ==\n\n",
              n_traces);

  const auto traces = make_dataset(n_traces, util::ThreadPool::global());
  const link::SlotEvalConfig slot_config;  // §5.4 constants (25G)

  // Phase 1: freeze-rate vs quality per ABR policy over the library.
  PolicyOutcome raw, compressed, adaptive;
  for (const auto& trace : traces) {
    const auto capacity = capacity_per_slot(trace, slot_config);
    drive_policy(capacity, Policy::kRaw, raw);
    drive_policy(capacity, Policy::kCompressed, compressed);
    drive_policy(capacity, Policy::kAdaptive, adaptive);
  }
  std::printf("%-12s %14s %14s %12s %12s\n", "policy", "encode Gbps",
              "goodput Gbps", "delivery", "freezes/min");
  const auto policy_row = [](const char* name, const PolicyOutcome& o) {
    std::printf("%-12s %14s %14s %12s %12s\n", name,
                bench::fmt(o.encode_gbps()).c_str(),
                bench::fmt(o.goodput_gbps()).c_str(),
                bench::fmt(o.delivery_rate(), 4).c_str(),
                bench::fmt(o.freeze_per_min()).c_str());
  };
  policy_row("raw", raw);
  policy_row("compressed", compressed);
  policy_row("adaptive", adaptive);

  // Phase 2: the packetized pipeline through link flaps (best-of-2 wall
  // time; the pipeline is a pure function of its config + capacity).
  stream::PipelineResult flap;
  const double flap_ms = [&] {
    bench::Timer timer;
    flap = run_pipeline(0, 10.0, flap_capacity);
    double best = timer.elapsed_ms();
    timer.reset();
    flap = run_pipeline(0, 10.0, flap_capacity);
    return std::min(best, timer.elapsed_ms());
  }();
  const double frames_per_sec =
      flap_ms > 0.0 ? flap.frames_generated / (flap_ms / 1e3) : 0.0;
  const double events_per_sec =
      flap_ms > 0.0 ? flap.events_dispatched / (flap_ms / 1e3) : 0.0;
  std::printf("\nflapping link (100 ms off / 2 s): offered %s Gbps, "
              "goodput %s Gbps, %d mode switches\n",
              bench::fmt(flap.offered_gbps).c_str(),
              bench::fmt(flap.goodput_gbps).c_str(), flap.mode_switches);
  std::printf("  event core: %s frames/s, %s events/s (wall %s ms)\n",
              bench::fmt(frames_per_sec, 0).c_str(),
              bench::fmt(events_per_sec, 0).c_str(),
              bench::fmt(flap_ms).c_str());

  // Phase 3: fan-out scaling.
  const int fan_counts[3] = {1, 4, 16};
  stream::PipelineResult fan[3];
  double fan_ms[3];
  for (int i = 0; i < 3; ++i) {
    bench::Timer timer;
    fan[i] = run_pipeline(fan_counts[i], 5.0, flap_capacity);
    fan_ms[i] = timer.elapsed_ms();
  }
  std::printf("\n%-10s %12s %14s %16s %10s\n", "spectators", "wall ms",
              "headset Gbps", "spectator dlvry", "copies");
  std::int64_t fan_torn = 0;
  std::uint64_t fan_copies = 0;
  double spectator_delivery[3];
  for (int i = 0; i < 3; ++i) {
    const auto& r = fan[i];
    double worst = 1.0;
    for (std::size_t j = 1; j < r.receivers.size(); ++j) {
      worst = std::min(worst, r.receivers[j].ledger.delivery_rate());
    }
    spectator_delivery[i] = worst;
    fan_torn += r.torn_frames;
    fan_copies += r.arena.copies;
    std::printf("%-10d %12s %14s %16s %10llu\n", fan_counts[i],
                bench::fmt(fan_ms[i]).c_str(),
                bench::fmt(r.goodput_gbps).c_str(),
                bench::fmt(worst, 4).c_str(),
                static_cast<unsigned long long>(r.arena.copies));
  }

  // Hard gates (the check.sh smoke stage runs these on the subset).
  bool ok = true;
  ok &= check(flap.torn_frames == 0 && fan_torn == 0, "zero torn frames");
  ok &= check(flap.arena.copies == 0 && fan_copies == 0,
              "zero-copy arena (copies == 0)");
  ok &= check(flap.goodput_gbps >= 1.0,
              "goodput >= 1 Gbps sustained through flaps");
  ok &= check(adaptive.freeze_per_min() <= raw.freeze_per_min(),
              "adaptive freeze rate <= always-raw freeze rate");
  if (!ok) return 1;

  bench::write_bench_json(
      n_traces == kFullTraces ? "stream" : "stream_smoke",
      {{"traces", static_cast<double>(n_traces)},
       {"timing_reps", 2.0},
       {"abr_raw_encode_gbps", raw.encode_gbps()},
       {"abr_raw_goodput_gbps", raw.goodput_gbps()},
       {"abr_raw_delivery_rate", raw.delivery_rate()},
       {"abr_raw_freeze_per_min", raw.freeze_per_min()},
       {"abr_compressed_encode_gbps", compressed.encode_gbps()},
       {"abr_compressed_goodput_gbps", compressed.goodput_gbps()},
       {"abr_compressed_delivery_rate", compressed.delivery_rate()},
       {"abr_compressed_freeze_per_min", compressed.freeze_per_min()},
       {"abr_adaptive_encode_gbps", adaptive.encode_gbps()},
       {"abr_adaptive_goodput_gbps", adaptive.goodput_gbps()},
       {"abr_adaptive_delivery_rate", adaptive.delivery_rate()},
       {"abr_adaptive_freeze_per_min", adaptive.freeze_per_min()},
       {"flap_offered_gbps", flap.offered_gbps},
       {"flap_goodput_gbps", flap.goodput_gbps},
       {"flap_mode_switches", static_cast<double>(flap.mode_switches)},
       {"flap_wall_ms", flap_ms},
       {"frames_per_sec", frames_per_sec},
       {"events_per_sec", events_per_sec},
       {"fanout_1_wall_ms", fan_ms[0]},
       {"fanout_4_wall_ms", fan_ms[1]},
       {"fanout_16_wall_ms", fan_ms[2]},
       {"fanout_1_goodput_gbps", fan[0].goodput_gbps},
       {"fanout_4_goodput_gbps", fan[1].goodput_gbps},
       {"fanout_16_goodput_gbps", fan[2].goodput_gbps},
       {"fanout_16_spectator_delivery", spectator_delivery[2]},
       {"torn_frames", 0.0},
       {"arena_copies", 0.0}});
  return 0;
}

// Extension ablation: pose prediction vs the paper's react-only TP.
//
// §5.2's speed wall is (tracking period + pointing latency + position
// lag) x speed.  A constant-velocity Kalman predictor aims the beam at
// where the headset *will* be when the voltages land, buying back most of
// that wall with zero new hardware — complementary to the paper's
// "faster VRH-T" suggestion.
#include <cstdio>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

double max_speed(bench::CalibratedRig& rig, bench::StrokeKind kind,
                 bool predict) {
  // Temporarily switch the controller config via a local sweep.
  std::vector<double> speeds;
  if (kind == bench::StrokeKind::kLinear) {
    for (double v = 0.10; v <= 1.50 + 1e-9; v += 0.10) speeds.push_back(v);
  } else {
    for (double w = 5.0; w <= 80.0 + 1e-9; w += 5.0) {
      speeds.push_back(util::deg_to_rad(w));
    }
  }

  double best = 0.0;
  for (double speed : speeds) {
    core::TpConfig config;
    config.predict_pose = predict;
    core::TpController controller(rig.calib.make_pointing_solver(), config);
    std::unique_ptr<motion::MotionProfile> profile;
    if (kind == bench::StrokeKind::kLinear) {
      profile = std::make_unique<motion::LinearStrokeMotion>(
          rig.proto.nominal_rig_pose, geom::Vec3{1, 0, 0}, 0.12,
          std::vector<double>{speed});
    } else {
      profile = std::make_unique<motion::AngularStrokeMotion>(
          rig.proto.nominal_rig_pose, geom::Vec3{0, 1, 0},
          util::deg_to_rad(12.0), std::vector<double>{speed});
    }
    const link::RunResult run =
        link::run_link_simulation(rig.proto, controller, *profile);
    if (run.total_up_fraction > 0.98) best = speed;
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== Extension: Kalman pose prediction vs react-only TP "
              "(10G) ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());

  const double lin_react =
      max_speed(rig, bench::StrokeKind::kLinear, false) * 100.0;
  const double lin_pred =
      max_speed(rig, bench::StrokeKind::kLinear, true) * 100.0;
  const double ang_react =
      util::rad_to_deg(max_speed(rig, bench::StrokeKind::kAngular, false));
  const double ang_pred =
      util::rad_to_deg(max_speed(rig, bench::StrokeKind::kAngular, true));

  std::printf("stroke tests (hard reversals — worst case for prediction):\n");
  std::printf("mode, max_linear_cm_s, max_angular_deg_s\n");
  std::printf("react-only (paper), %.0f, %.0f\n", lin_react, ang_react);
  std::printf("with prediction,    %.0f, %.0f\n", lin_pred, ang_pred);
  std::printf("(reversals make the velocity estimate momentarily stale, so "
              "stroke gains are modest: %.1fx / %.1fx)\n\n",
              lin_pred / std::max(lin_react, 1.0),
              ang_pred / std::max(ang_react, 1.0));

  // Smooth hand-held motion — the realistic regime, no hard reversals.
  std::printf("smooth mixed motion (caps 50 cm/s, 35 deg/s), link-up "
              "fraction:\n");
  for (const bool predict : {false, true}) {
    core::TpConfig config;
    config.predict_pose = predict;
    core::TpController controller(rig.calib.make_pointing_solver(), config);
    motion::MixedRandomMotion::Config mc;
    mc.duration_s = 60.0;
    mc.max_linear_speed = 0.50;
    mc.max_angular_speed = util::deg_to_rad(35.0);
    mc.linear_speed_sigma = 0.25;
    mc.angular_speed_sigma = util::deg_to_rad(18.0);
    const motion::MixedRandomMotion profile(rig.proto.nominal_rig_pose, mc,
                                            util::Rng(33));
    link::SimOptions options;
    const link::RunResult run =
        link::run_link_simulation(rig.proto, controller, profile, options);
    // Count aligned windows (sensitivity-met), reacquisition-independent.
    int aligned = 0;
    for (const auto& w : run.windows) {
      if (w.power_ok_fraction >= 0.95) ++aligned;
    }
    std::printf("  %s: %.2f aligned-window fraction\n",
                predict ? "with prediction   " : "react-only (paper)",
                static_cast<double>(aligned) /
                    std::max<std::size_t>(run.windows.size(), 1));
  }
  std::printf("\nprediction is a software alternative to the paper's "
              "faster-VRH-T suggestion; it helps most on smooth motion and "
              "least at motion reversals.\n");
  return 0;
}

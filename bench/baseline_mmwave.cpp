// Baseline: an 802.11ad mmWave VR link vs Cyclops on identical head
// traces — the paper's §1/§2 motivation ("current RF links ... are not
// able to provide desired data rates"), quantified.
//
// Both links run over the same 100 synthetic viewing traces.  The mmWave
// side rides the unified session core: phy::MmWaveChannel (MCS ladder,
// beam retraining) under link::run_channel_session, one event-scheduler
// session per trace with an isolated metrics registry — the same engine
// that runs the FSO link.  The mmWave model is given every benefit of the
// doubt (ideal rate adaptation, no interference); its ceiling is still an
// order of magnitude short of the raw-video requirement, while Cyclops
// delivers ~23 Gbps.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "link/session_core.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace.hpp"
#include "motion/trace_generator.hpp"
#include "obs/registry.hpp"
#include "phy/mmwave_channel.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Baseline: 802.11ad mmWave vs Cyclops 25G on identical "
              "traces ==\n\n");

  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  const geom::Vec3 ap_position{0.0, 2.2, 0.0};
  const auto traces = motion::generate_dataset(base, 100, {}, rng);

  const link::SlotEvalConfig cyclops_config;  // §5.4 parameters
  const double cyclops_goodput =
      phy::make_sfp_info(optics::sfp28_lr()).peak_rate_gbps;

  obs::Registry registry;  // isolated: one bench, one metrics scope
  // Best-of-2 wall time over the full 100-trace pass (the fig13/fig16
  // protocol); the reported stats are rep 0's — each rep starts fresh
  // RunningStats and retrain counts, so reps never accumulate into the
  // result fields.
  constexpr int kTimingReps = 2;
  util::RunningStats mmwave_gbps, cyclops_gbps;
  int total_retrains = 0;
  double pass_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    util::RunningStats rep_mmwave, rep_cyclops;
    int rep_retrains = 0;
    bench::Timer timer;
    for (const auto& trace : traces) {
      // --- mmWave: the unified session core over the trace, one channel
      // (fresh beam-training state) per trace, 10 ms slots to match the
      // trace sampling. ---
      phy::MmWaveChannelConfig config;
      config.ap_position = ap_position;
      phy::MmWaveChannel channel(config, &registry);
      const motion::TraceMotion profile(trace);
      link::ChannelSessionOptions options;
      options.step = 10000;
      const link::RunResult run =
          link::run_channel_session(channel, profile, options, &registry);
      channel.finish(util::us_from_s(profile.duration_s()));
      rep_mmwave.add(run.avg_rate_gbps);
      rep_retrains += channel.retrains();

      // --- Cyclops: §5.4 slot connectivity x the SFP28 goodput. ---
      const link::SlotEvalResult r =
          link::evaluate_trace(trace, cyclops_config);
      rep_cyclops.add((1.0 - r.off_fraction()) * cyclops_goodput);
    }
    const double rep_ms = timer.elapsed_ms();
    if (rep == 0) {
      mmwave_gbps = rep_mmwave;
      cyclops_gbps = rep_cyclops;
      total_retrains = rep_retrains;
      pass_ms = rep_ms;
    } else {
      pass_ms = std::min(pass_ms, rep_ms);
    }
  }

  std::printf("per-trace average goodput over %zu traces:\n", traces.size());
  std::printf("  802.11ad mmWave: %.2f Gbps (min %.2f, max %.2f), "
              "%.1f beam retrains/trace\n",
              mmwave_gbps.mean(), mmwave_gbps.min(), mmwave_gbps.max(),
              static_cast<double>(total_retrains) / traces.size());
  std::printf("  Cyclops 25G FSO: %.2f Gbps (min %.2f, max %.2f)\n",
              cyclops_gbps.mean(), cyclops_gbps.min(), cyclops_gbps.max());

  const double requirement = 24.0;  // raw 8K RGB at 30 fps (§2.1)
  std::printf("\nraw 8K/30fps requirement: %.0f Gbps -> mmWave delivers "
              "%.0f%%, Cyclops %.0f%%\n",
              requirement, 100.0 * mmwave_gbps.mean() / requirement,
              100.0 * cyclops_gbps.mean() / requirement);
  std::printf("advantage: %.1fx — the paper's case for FSO.\n",
              cyclops_gbps.mean() / mmwave_gbps.mean());
  bench::write_bench_json(
      "baseline_mmwave",
      {{"mmwave_mean_gbps", mmwave_gbps.mean()},
       {"cyclops_mean_gbps", cyclops_gbps.mean()},
       {"advantage_x", cyclops_gbps.mean() / mmwave_gbps.mean()},
       {"retrains_per_trace",
        static_cast<double>(total_retrains) / traces.size()},
       {"pass_ms", pass_ms},
       {"timing_reps", static_cast<double>(kTimingReps)}});
  return 0;
}

// Baseline: an 802.11ad mmWave VR link vs Cyclops on identical head
// traces — the paper's §1/§2 motivation ("current RF links ... are not
// able to provide desired data rates"), quantified.
//
// Both links run over the same 100 synthetic viewing traces.  The mmWave
// model is given every benefit of the doubt (ideal rate adaptation, no
// interference); its ceiling is still an order of magnitude short of the
// raw-video requirement, while Cyclops delivers ~23 Gbps.
#include <cstdio>

#include "baseline/mmwave.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Baseline: 802.11ad mmWave vs Cyclops 25G on identical "
              "traces ==\n\n");

  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  const geom::Vec3 ap_position{0.0, 2.2, 0.0};
  const auto traces = motion::generate_dataset(base, 100, {}, rng);

  const baseline::MmWaveLink mmwave((baseline::MmWaveConfig()));
  const link::SlotEvalConfig cyclops_config;  // §5.4 parameters

  util::RunningStats mmwave_gbps, cyclops_gbps;
  int total_retrains = 0;
  for (const auto& trace : traces) {
    // --- mmWave: per 10 ms sample, rate from range/rotation state. ---
    baseline::BeamTrainingState training(mmwave.config());
    double yaw_like = 0.0;
    double sum = 0.0;
    for (std::size_t i = 1; i < trace.samples.size(); ++i) {
      const auto& s = trace.samples[i];
      yaw_like += geom::rotation_distance(trace.samples[i - 1].pose, s.pose);
      const double range =
          geom::distance(s.pose.translation(), ap_position);
      const bool retraining = training.step(s.time, yaw_like);
      sum += mmwave.goodput_gbps(range, /*blocked=*/false, retraining);
    }
    mmwave_gbps.add(sum / static_cast<double>(trace.samples.size() - 1));
    total_retrains += training.retrains();

    // --- Cyclops: §5.4 slot connectivity x 23.5 Gbps. ---
    const link::SlotEvalResult r = link::evaluate_trace(trace, cyclops_config);
    cyclops_gbps.add((1.0 - r.off_fraction()) * 23.5);
  }

  std::printf("per-trace average goodput over %zu traces:\n", traces.size());
  std::printf("  802.11ad mmWave: %.2f Gbps (min %.2f, max %.2f), "
              "%.1f beam retrains/trace\n",
              mmwave_gbps.mean(), mmwave_gbps.min(), mmwave_gbps.max(),
              static_cast<double>(total_retrains) / traces.size());
  std::printf("  Cyclops 25G FSO: %.2f Gbps (min %.2f, max %.2f)\n",
              cyclops_gbps.mean(), cyclops_gbps.min(), cyclops_gbps.max());

  const double requirement = 24.0;  // raw 8K RGB at 30 fps (§2.1)
  std::printf("\nraw 8K/30fps requirement: %.0f Gbps -> mmWave delivers "
              "%.0f%%, Cyclops %.0f%%\n",
              requirement, 100.0 * mmwave_gbps.mean() / requirement,
              100.0 * cyclops_gbps.mean() / requirement);
  std::printf("advantage: %.1fx — the paper's case for FSO.\n",
              cyclops_gbps.mean() / mmwave_gbps.mean());
  return 0;
}

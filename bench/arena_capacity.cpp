// Arena capacity study: how many headsets an N-TX room actually serves
// at the SLA floor, per scheduling policy — the multi-player extension of
// the paper's one-TX/one-headset deployment (§3's ceiling grid, shared).
//
// Sweeps TX count x scheduling policy over a 16-player uniform room, then
// stresses the winner with adversarial scenarios:
//   * clustered corner      — everyone in one quadrant: occlusion-dense,
//     one TX's roster oversubscribed while the rest idle;
//   * synchronized motion   — every player yaw-bursts at the same
//     instants (worst case for reactive scheduling; the predictive
//     policy's reason to exist);
//   * TX failure mid-game   — TX0 dies a third of the way in; its roster
//     must migrate to surviving TXs (drop-triggered handover commits).
//
// Hard gates (scripts/check.sh runs the short-duration smoke mode):
// zero galvo duty-budget violations anywhere, at least one successful
// migration in the TX-failure runs, and an SLA floor on the uniform
// 4-TX room.  An argv[1] duration (seconds) below the full 30 selects
// smoke mode, which writes BENCH_arena_smoke.json so the committed
// full-run BENCH_arena.json is never clobbered.
//
// Every run is constructed inside its own fan-out item as a pure
// function of its spec, so the fan is bit-identical at any driver-pool
// thread count (the determinism test pins this).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arena/session.hpp"
#include "arena/topology.hpp"
#include "util/bench_io.hpp"
#include "util/thread_pool.hpp"

using namespace cyclops;

namespace {

constexpr double kFullDurationS = 30.0;
constexpr std::size_t kHeadsets = 16;
constexpr std::uint64_t kSeed = 2026;

struct RunSpec {
  arena::SchedulePolicy policy = arena::SchedulePolicy::kRoundRobin;
  std::size_t num_tx = 4;
  arena::Scenario scenario = arena::Scenario::kUniform;
  bool fail_tx0 = false;
};

const char* policy_key(arena::SchedulePolicy p) {
  switch (p) {
    case arena::SchedulePolicy::kRoundRobin: return "rr";
    case arena::SchedulePolicy::kMarginWeighted: return "mw";
    case arena::SchedulePolicy::kPredictive: return "pred";
  }
  return "?";
}

arena::ArenaResult run_spec(const RunSpec& spec, double duration_s) {
  arena::ArenaConfig config;
  arena::ArenaTopology topo(
      config, spec.num_tx,
      arena::ArenaTopology::make_tracks(config, kHeadsets, spec.scenario,
                                        duration_s, kSeed));
  arena::ArenaOptions options;
  options.scheduler.policy = spec.policy;
  options.duration_s = duration_s;
  if (spec.fail_tx0) {
    const util::SimTimeUs fail_at = util::us_from_s(duration_s / 3.0);
    options.tx_failed = [fail_at](util::SimTimeUs t, std::size_t tx) {
      return tx == 0 && t >= fail_at;
    };
  }
  return arena::run_arena_session(topo, options);
}

double mean_rate(const arena::ArenaResult& r) {
  double sum = 0.0;
  int n = 0;
  for (const auto& q : r.headsets) {
    if (!q.admitted) continue;
    sum += q.avg_rate_gbps;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "GATE FAILED: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s =
      argc > 1 ? std::max(1.0, std::atof(argv[1])) : kFullDurationS;
  const bool smoke = duration_s < kFullDurationS;
  std::printf("== Arena capacity: %zu headsets, beam scheduling + admission "
              "+ TX handover (%.0f s sessions%s) ==\n\n",
              kHeadsets, duration_s, smoke ? ", smoke" : "");

  const arena::SchedulePolicy kPolicies[] = {
      arena::SchedulePolicy::kRoundRobin,
      arena::SchedulePolicy::kMarginWeighted,
      arena::SchedulePolicy::kPredictive};
  const std::size_t kTxCounts[] = {1, 2, 4, 6};
  const arena::SchedulePolicy kAdvPolicies[] = {
      arena::SchedulePolicy::kRoundRobin,
      arena::SchedulePolicy::kPredictive};
  const arena::Scenario kAdvScenarios[] = {
      arena::Scenario::kClusteredCorner, arena::Scenario::kSyncFastMotion};

  // Capacity curves (policy x TX count, uniform room) + adversarial runs,
  // all fanned over the driver pool; each item builds its own topology.
  std::vector<RunSpec> specs;
  for (const auto policy : kPolicies) {
    for (const auto n : kTxCounts) {
      specs.push_back({policy, n, arena::Scenario::kUniform, false});
    }
  }
  for (const auto policy : kAdvPolicies) {
    for (const auto scenario : kAdvScenarios) {
      specs.push_back({policy, 4, scenario, false});
    }
    specs.push_back({policy, 4, arena::Scenario::kUniform, true});
  }

  // Best-of-2 wall time over the whole fan (the fig13/fig16 protocol);
  // results are identical across reps — sessions are deterministic — so
  // rep 0's are reported.
  constexpr int kTimingReps = 2;
  std::vector<arena::ArenaResult> results(specs.size());
  double fan_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    std::vector<arena::ArenaResult> rep_results(specs.size());
    util::Timer timer;
    util::parallel_for(specs.size(), [&](std::size_t i) {
      rep_results[i] = run_spec(specs[i], duration_s);
    });
    const double rep_ms = timer.elapsed_ms();
    if (rep == 0) {
      results = std::move(rep_results);
      fan_ms = rep_ms;
    } else {
      fan_ms = std::min(fan_ms, rep_ms);
    }
  }

  std::vector<std::pair<std::string, double>> fields;
  std::printf("capacity curves (headsets meeting the %.1f Gbps SLA):\n",
              arena::SlaConfig{}.min_rate_gbps);
  std::printf("%-16s %4s %6s %10s %11s %10s\n", "policy", "tx", "sla",
              "mean_gbps", "migrations", "evictions");
  int duty_violations = 0;
  std::size_t idx = 0;
  for (const auto policy : kPolicies) {
    for (const auto n : kTxCounts) {
      const auto& r = results[idx++];
      duty_violations += r.duty_violations;
      std::printf("%-16s %4zu %6d %10.2f %11d %10d\n",
                  arena::to_string(policy), n, r.sla_met_count(),
                  mean_rate(r), r.migrations, r.evictions);
      const std::string key =
          std::string("cap_") + policy_key(policy) + "_tx" + std::to_string(n);
      fields.emplace_back(key + "_sla",
                          static_cast<double>(r.sla_met_count()));
      fields.emplace_back(key + "_mean_gbps", mean_rate(r));
    }
  }

  std::printf("\nadversarial scenarios (4 TXs):\n");
  std::printf("%-18s %-16s %6s %10s %11s %10s\n", "scenario", "policy", "sla",
              "mean_gbps", "migrations", "evictions");
  int failure_migrations = 0;
  for (const auto policy : kAdvPolicies) {
    for (int s = 0; s < 3; ++s) {
      const auto& spec = specs[idx];
      const auto& r = results[idx++];
      duty_violations += r.duty_violations;
      const char* scenario_name =
          spec.fail_tx0 ? "tx0_failure" : arena::to_string(spec.scenario);
      if (spec.fail_tx0) failure_migrations += r.migrations;
      std::printf("%-18s %-16s %6d %10.2f %11d %10d\n", scenario_name,
                  arena::to_string(policy), r.sla_met_count(), mean_rate(r),
                  r.migrations, r.evictions);
      const std::string key = std::string("adv_") +
                              (spec.fail_tx0 ? "tx_fail" : scenario_name) +
                              "_" + policy_key(policy);
      fields.emplace_back(key + "_sla",
                          static_cast<double>(r.sla_met_count()));
      fields.emplace_back(key + "_migrations",
                          static_cast<double>(r.migrations));
    }
  }

  // The uniform 4-TX predictive run anchors the SLA-fraction gate.
  double uniform_tx4_sla = 0.0;
  idx = 0;
  for (const auto policy : kPolicies) {
    for (const auto n : kTxCounts) {
      if (policy == arena::SchedulePolicy::kPredictive && n == 4) {
        uniform_tx4_sla = static_cast<double>(results[idx].sla_met_count()) /
                          static_cast<double>(kHeadsets);
      }
      ++idx;
    }
  }

  std::printf("\nfan: %.0f ms (best of %d); duty violations %d, "
              "failure-scenario migrations %d, uniform 4-TX SLA fraction "
              "%.2f\n",
              fan_ms, kTimingReps, duty_violations, failure_migrations,
              uniform_tx4_sla);

  // Hard gates (the check.sh arena smoke stage runs these on the short
  // duration; the full run enforces them too).
  bool ok = true;
  ok &= check(duty_violations == 0, "zero galvo duty-budget violations");
  ok &= check(failure_migrations >= 1,
              "TX-failure runs commit at least one migration");
  ok &= check(uniform_tx4_sla >= 0.75,
              "uniform 4-TX room serves >= 75% of headsets at the SLA");
  if (!ok) return 1;

  fields.emplace_back("headsets", static_cast<double>(kHeadsets));
  fields.emplace_back("duration_s", duration_s);
  fields.emplace_back("duty_violations", static_cast<double>(duty_violations));
  fields.emplace_back("failure_migrations",
                      static_cast<double>(failure_migrations));
  fields.emplace_back("uniform_tx4_sla_fraction", uniform_tx4_sla);
  fields.emplace_back("fan_ms", fan_ms);
  fields.emplace_back("timing_reps", static_cast<double>(kTimingReps));
  util::write_bench_json(smoke ? "arena_smoke" : "arena", fields);
  return 0;
}

// Ablation: does the voltage-dependent beam origin ("distortion" [58])
// actually matter?
//
// The paper (§4.1, footnote 6) insists the output origin p must be
// modeled as a function of the voltages, unlike earlier FSO systems
// [32, 33] that treat it as constant.  This bench freezes p at its
// zero-voltage value inside the pointing solver and measures what that
// costs in physical alignment, across increasing rig excursions from the
// nominal pose (larger excursions -> larger GM deflections -> more
// origin travel).
#include <cstdio>

#include "bench_common.hpp"
#include "core/pointing.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Ablation: constant-origin (no-distortion) pointing vs "
              "the full model ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const core::PointingSolver full = rig.calib.make_pointing_solver();
  const core::PointingSolver frozen(
      rig.calib.tx_stage1.model.with_frozen_origin(),
      rig.calib.rx_stage1.model.with_frozen_origin(), rig.calib.mapping.map_tx,
      rig.calib.mapping.map_rx, core::PointingOptions{});

  std::printf("excursion_cm, full_power_dbm, frozen_power_dbm, "
              "full_err_mrad, frozen_err_mrad\n");
  util::Rng rng(9);
  for (double excursion = 0.05; excursion <= 0.30 + 1e-9; excursion += 0.05) {
    util::RunningStats full_power, frozen_power, full_err, frozen_err;
    for (int i = 0; i < 25; ++i) {
      const geom::Pose pose = core::random_rig_pose(
          rig.proto.nominal_rig_pose, excursion, excursion * 0.6, rng);
      rig.proto.scene.set_rig_pose(pose);
      const geom::Pose psi = rig.proto.tracker.report(0, pose).pose;

      const core::PointingResult a = full.solve(psi, {});
      const core::PointingResult b = frozen.solve(psi, {});
      if (!a.converged || !b.converged) continue;
      full_power.add(rig.proto.scene.received_power_dbm(a.voltages));
      frozen_power.add(rig.proto.scene.received_power_dbm(b.voltages));
      full_err.add(util::rad_to_mrad(rig.proto.scene.observe(a.voltages).psi));
      frozen_err.add(
          util::rad_to_mrad(rig.proto.scene.observe(b.voltages).psi));
    }
    std::printf("%.0f, %.1f, %.1f, %.2f, %.2f\n", excursion * 100.0,
                full_power.mean(), frozen_power.mean(), full_err.mean(),
                frozen_err.mean());
  }
  rig.proto.scene.set_rig_pose(rig.proto.nominal_rig_pose);

  std::printf("\nexpectation: the frozen-origin model loses power and "
              "accuracy as excursions grow — the paper's case for modeling "
              "the distortion.\n");
  return 0;
}

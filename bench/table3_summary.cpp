// Reproduces Table 3: summary of results — the §2 speed requirements vs
// the speeds tolerated by the 10G and 25G prototypes under pure and mixed
// motions.
//
// Paper anchors:           Reqs   10G(P) 10G(M) 25G(P) 25G(M)
//   Linear (cm/s)          14     33     30     25     15
//   Angular (deg/s)        19     16-18  16     25     15-20
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

struct ProtoResult {
  double pure_linear_cms;
  double pure_angular_dps;
  double mixed_linear_cms;
  double mixed_angular_dps;
};

ProtoResult measure(bench::CalibratedRig& rig) {
  const double goodput = rig.proto.scene.config().sfp.goodput_gbps;
  ProtoResult result{};

  std::vector<double> lin;
  for (double v = 0.05; v <= 0.55 + 1e-9; v += 0.05) lin.push_back(v);
  result.pure_linear_cms =
      bench::max_optimal_speed(
          bench::stroke_speed_sweep(rig, bench::StrokeKind::kLinear, lin),
          goodput) *
      100.0;

  std::vector<double> ang;
  for (double w = 4.0; w <= 40.0 + 1e-9; w += 4.0) {
    ang.push_back(util::deg_to_rad(w));
  }
  result.pure_angular_dps = util::rad_to_deg(bench::max_optimal_speed(
      bench::stroke_speed_sweep(rig, bench::StrokeKind::kAngular, ang),
      goodput));

  // Mixed: bucketed alignment characterization (same as Figs 14/15).
  const bench::MixedCharacterization mixed = bench::characterize_mixed(
      rig, /*cap_linear=*/0.50, /*cap_angular=*/util::deg_to_rad(40.0),
      /*lin_limit=*/0.5 * result.pure_linear_cms / 100.0,
      /*ang_limit=*/util::deg_to_rad(0.8 * result.pure_angular_dps),
      /*duration_s=*/120.0, /*seed=*/55);
  result.mixed_linear_cms = mixed.sustained_linear_mps * 100.0;
  result.mixed_angular_dps = util::rad_to_deg(mixed.sustained_angular_rps);
  return result;
}

}  // namespace

int main() {
  std::printf("== Table 3: requirements vs tolerated speeds ==\n\n");

  bench::CalibratedRig rig10 =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const ProtoResult r10 = measure(rig10);

  bench::CalibratedRig rig25 =
      bench::make_calibrated_rig(42, sim::prototype_25g_config());
  const ProtoResult r25 = measure(rig25);

  util::TextTable table(
      {"", "Reqs", "10G Pure", "10G Mixed", "25G Pure", "25G Mixed"});
  table.add_row({"Linear (cm/s)", "14", bench::fmt(r10.pure_linear_cms, 0),
                 bench::fmt(r10.mixed_linear_cms, 0),
                 bench::fmt(r25.pure_linear_cms, 0),
                 bench::fmt(r25.mixed_linear_cms, 0)});
  table.add_row({"Angular (deg/s)", "19", bench::fmt(r10.pure_angular_dps, 0),
                 bench::fmt(r10.mixed_angular_dps, 0),
                 bench::fmt(r25.pure_angular_dps, 0),
                 bench::fmt(r25.mixed_angular_dps, 0)});
  table.print(std::cout);

  std::printf("\npaper:            Reqs  10G-P  10G-M  25G-P  25G-M\n");
  std::printf("Linear (cm/s):    14    33     30     25     15\n");
  std::printf("Angular (deg/s):  19    16-18  16     25     15-20\n");
  std::printf("\nshape checks: every tolerated speed >= the requirement; "
              "mixed <= pure for each prototype.\n");
  return 0;
}

// Reproduces Fig 11: TX and RX angular tolerance of the 10G diverging
// link for varying beam diameter at the RX.
//
// Paper anchors: RX angular tolerance peaks at 5.77 mrad around a 16 mm
// beam diameter; TX tolerance keeps growing with the diameter.
#include <cstdio>

#include "bench_common.hpp"
#include "optics/coupling.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Fig 11: angular tolerance vs beam diameter at RX "
              "(10G diverging link, 1.5 m) ==\n\n");
  std::printf("diameter_mm, tx_tolerance_mrad, rx_tolerance_mrad, "
              "peak_power_dbm\n");

  double best_rx = 0.0;
  double best_diameter = 0.0;
  for (double diameter_mm = 8.0; diameter_mm <= 40.0; diameter_mm += 4.0) {
    sim::PrototypeConfig config = sim::prototype_10g_config();
    config.design = optics::diverging_10g(diameter_mm * 1e-3, 1.5);
    sim::Prototype proto = sim::make_prototype(42, config);

    const double peak = bench::aligned_peak_power_dbm(proto);
    const double tx = util::rad_to_mrad(bench::tx_angular_tolerance(proto));
    const double rx = util::rad_to_mrad(bench::rx_angular_tolerance(proto));
    std::printf("%.0f, %.2f, %.2f, %.1f\n", diameter_mm, tx, rx, peak);
    if (rx > best_rx) {
      best_rx = rx;
      best_diameter = diameter_mm;
    }
  }

  std::printf("\nRX tolerance peaks at %.2f mrad for a %.0f mm beam "
              "(paper: 5.77 mrad at 16 mm)\n",
              best_rx, best_diameter);
  return 0;
}

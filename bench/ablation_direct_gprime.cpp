// Ablation: learn the reverse function G' *directly* from samples —
// the approach the paper tried and rejected (footnote 3: "even several
// hundred training samples yielded an error of a few cms").
//
// We fit a quadratic polynomial regression (target point -> voltages) on
// N aligned samples and compare its pointing error against the
// model-based G' iteration, for several N.
#include <cstdio>

#include "bench_common.hpp"
#include "core/gprime.hpp"
#include "opt/linalg.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

/// Quadratic features of a 3-D target point: 1, x, y, z, x^2, ..., yz.
std::vector<double> features(const geom::Vec3& p) {
  return {1.0,       p.x,       p.y,       p.z,       p.x * p.x,
          p.y * p.y, p.z * p.z, p.x * p.y, p.x * p.z, p.y * p.z};
}

/// Least-squares fit of one voltage channel against the features.
std::vector<double> fit_channel(const std::vector<std::vector<double>>& xs,
                                const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  const std::size_t k = xs.front().size();
  opt::Matrix a(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) a(i, j) = xs[i][j];
  opt::Matrix ata = opt::normal_matrix(a);
  for (std::size_t d = 0; d < k; ++d) ata(d, d) += 1e-9;  // ridge
  const std::vector<double> atb = opt::transpose_times(a, ys);
  std::vector<double> w;
  opt::solve_spd(ata, atb, w);
  return w;
}

double predict(const std::vector<double>& w, const std::vector<double>& f) {
  double s = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) s += w[i] * f[i];
  return s;
}

}  // namespace

int main() {
  std::printf("== Ablation: direct regression of G' vs the model-based "
              "iteration (paper footnote 3) ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const core::PointingSolver solver = rig.calib.make_pointing_solver();
  const core::GmaModel& tx = solver.tx_vr();
  const core::GPrimeSolver gprime;

  // Ground-truth sample factory: (target, voltages) pairs from the
  // physical model, like collecting aligned samples in the lab.
  util::Rng rng(3);
  const auto sample_at = [&](util::Rng& r) {
    const auto boresight = tx.trace(0.0, 0.0);
    const geom::Vec3 target = boresight->at(r.uniform(1.3, 2.2)) +
                              geom::Vec3{r.uniform(-0.3, 0.3),
                                         r.uniform(-0.3, 0.3),
                                         r.uniform(-0.1, 0.1)};
    const core::GPrimeResult g = gprime.solve(tx, target);
    return std::pair{target, g};
  };

  std::printf("training_samples, direct_err_mm_avg, direct_err_mm_max, "
              "model_based_err_mm_avg\n");
  for (int n_train : {50, 100, 200, 400, 800}) {
    std::vector<std::vector<double>> xs;
    std::vector<double> y1, y2;
    for (int i = 0; i < n_train; ++i) {
      const auto [target, g] = sample_at(rng);
      if (!g.converged) continue;
      xs.push_back(features(target));
      y1.push_back(g.v1);
      y2.push_back(g.v2);
    }
    const auto w1 = fit_channel(xs, y1);
    const auto w2 = fit_channel(xs, y2);

    util::RunningStats direct_err, model_err;
    util::Rng test_rng(777);
    for (int i = 0; i < 200; ++i) {
      const auto [target, g] = sample_at(test_rng);
      if (!g.converged) continue;
      // Direct regression prediction.
      const auto f = features(target);
      const auto ray =
          tx.trace(predict(w1, f), predict(w2, f));
      if (ray) direct_err.add(geom::line_point_distance(*ray, target));
      // Model-based G'.
      model_err.add(g.miss_distance);
    }
    std::printf("%d, %.2f, %.2f, %.4f\n", n_train,
                util::m_to_mm(direct_err.mean()),
                util::m_to_mm(direct_err.max()),
                util::m_to_mm(model_err.mean()));
  }

  std::printf("\nexpectation: direct regression stalls at many-mm-to-cm "
              "error while the model-based inversion is sub-mm — why the "
              "paper learns G and inverts it computationally.\n");
  return 0;
}

// Systems study: toward room-scale (walking) VR on Cyclops.
//
// Seated 360° viewing keeps heads under ~14 cm/s (Fig 3), squarely inside
// the prototype's envelope.  Walking VR does not: strolls hit ~0.5 m/s,
// beyond the react-only TP limit, and the head yaws across the TX cone.
// This bench stacks the repo's extensions to see how far they carry:
//
//   config A: the paper's system (one TX, react-only TP)
//   config B: + Kalman pose prediction
//   config C: + a second ceiling TX with handover (prediction on both)
//
// Calibration uses a wider Stage-2 box so the learned mapping covers the
// walk area.
#include <cstdio>

#include "bench_common.hpp"
#include "link/multi_tx.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

core::CalibrationConfig wide_calibration() {
  core::CalibrationConfig config;
  config.pose_position_extent = 0.60;  // span the walkable box
  config.pose_angle_extent = 0.12;
  config.stage2_samples = 40;          // more poses to cover more volume
  return config;
}

/// Aligned-window fraction of a single-TX run over the walking trace.
double single_tx_run(bool predict, const motion::Trace& trace) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, wide_calibration(), rng);
  core::TpConfig tp;
  tp.predict_pose = predict;
  core::TpController controller(calib.make_pointing_solver(), tp);
  const motion::TraceMotion profile(trace);
  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile);
  int aligned = 0;
  for (const auto& w : run.windows) {
    if (w.power_ok_fraction >= 0.95) ++aligned;
  }
  return run.windows.empty()
             ? 0.0
             : static_cast<double>(aligned) / run.windows.size();
}

}  // namespace

int main() {
  std::printf("== Room-scale study: walking VR over Cyclops ==\n\n");

  // One walking trace shared by all configurations.  The walk box
  // (±0.6 m) deliberately exceeds a single GM cone's ~0.5 m coverage
  // radius at head height, so TX coverage binds as well as speed.
  util::Rng trace_rng(314);
  sim::Prototype reference =
      sim::make_prototype(42, sim::prototype_10g_config());
  motion::WalkingConfig walk;
  walk.area_half_extent = 0.60;
  const motion::Trace trace = motion::generate_walking_trace(
      reference.nominal_rig_pose, walk, trace_rng);
  const motion::TraceSpeeds speeds = motion::compute_speeds(trace);
  std::printf("walking trace: %.0f s; linear speed p50 %.0f cm/s, max "
              "%.0f cm/s; angular p50 %.0f deg/s, max %.0f deg/s\n\n",
              trace.duration_s(),
              util::percentile(speeds.linear_mps, 50.0) * 100.0,
              util::percentile(speeds.linear_mps, 100.0) * 100.0,
              util::rad_to_deg(util::percentile(speeds.angular_rps, 50.0)),
              util::rad_to_deg(util::percentile(speeds.angular_rps, 100.0)));

  const double react = single_tx_run(false, trace);
  std::printf("A. paper system (1 TX, react-only):      %.2f aligned "
              "windows\n",
              react);
  const double predicted = single_tx_run(true, trace);
  std::printf("B. + pose prediction:                    %.2f aligned "
              "windows\n",
              predicted);

  // C: two TXs with handover; both chains calibrated over the wide box.
  std::vector<link::TxChain> chains;
  {
    // Two TXs splitting the box left/right — each *aimed* at its own
    // half (the boresight targets rig_position), so the steering cones
    // tile the walk area instead of stacking on the center.
    sim::PrototypeConfig base = sim::prototype_10g_config();
    base.tx_position = {-0.45, 2.2, -0.2};
    base.rig_position = {-0.35, 0.8, 1.2};
    sim::PrototypeConfig second = sim::prototype_10g_config();
    second.tx_position = {0.45, 2.2, 0.2};
    second.rig_position = {0.35, 0.8, 1.2};
    sim::Prototype p0 = sim::make_prototype(42, base);
    sim::Prototype p1 = sim::make_prototype(43, second);
    util::Rng rng0(7), rng1(9);
    core::CalibrationResult c0 =
        core::calibrate_prototype(p0, wide_calibration(), rng0);
    core::CalibrationResult c1 =
        core::calibrate_prototype(p1, wide_calibration(), rng1);
    chains.emplace_back(std::move(p0), std::move(c0));
    chains.emplace_back(std::move(p1), std::move(c1));
  }
  const motion::TraceMotion profile(trace);
  link::MultiTxConfig mt;
  mt.handover.switch_delay_s = 0.1;
  mt.tp.predict_pose = true;
  const link::MultiTxResult multi =
      link::run_multi_tx_session(chains, profile, mt, nullptr);
  std::printf("C. + second TX with handover:            %.2f served slots "
              "(%d switches; best single TX %.2f)\n",
              multi.served_fraction, multi.switches,
              multi.best_single_tx_fraction);

  std::printf("\nreading: walking exceeds the react-only envelope; "
              "prediction recovers most of it, and a second TX covers the "
              "yaw/coverage gaps — the §6 commercialization path, "
              "composed.\n");
  return 0;
}

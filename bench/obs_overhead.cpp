// Overhead of the telemetry subsystem on the §5.4 evaluator hot path.
//
// Runs evaluate_dataset twice per repetition — without a registry and
// with one — and reports the best-of-N times.  In a CYCLOPS_OBS=OFF
// build the instrumented entry points null the registry before the hot
// loop, so the two paths execute the same code and the delta must be
// measurement noise; the binary exits non-zero if it is not.  In ON
// builds the delta is the real cost of the sharded recording (expected
// low single-digit percent: integer bucket increments and hoisted
// counter adds).
#include <cstdio>

#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "obs/obs.hpp"
#include "runtime/context.hpp"
#include "util/bench_io.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace cyclops;

int main() {
  std::printf("== telemetry overhead on the Fig. 16 evaluator ==\n");
  std::printf("build mode: CYCLOPS_OBS=%s\n", obs::kEnabled ? "ON" : "OFF");

  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig trace_config;
  trace_config.duration_s = 20.0;
  util::Rng rng(2022);
  const std::vector<motion::Trace> traces = motion::generate_dataset(
      base, 200, trace_config, rng, util::ThreadPool::global());
  const link::SlotEvalConfig config;

  // Warm-up (page in the traces, size the pool).
  link::evaluate_dataset(traces, config);

  constexpr int kReps = 5;
  double best_off_ms = 1e300, best_on_ms = 1e300;
  std::uint64_t events = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    util::Timer timer;
    const link::DatasetEvalResult plain = link::evaluate_dataset(traces, config);
    best_off_ms = std::min(best_off_ms, timer.elapsed_ms());

    // The instrumented pass runs through a borrowing Context — the same
    // entry point sessions use — so this measures the migrated path.
    obs::Registry registry;
    const runtime::Context ctx(util::ThreadPool::global(), registry);
    timer.reset();
    const link::DatasetEvalResult observed =
        link::evaluate_dataset(traces, config, ctx);
    best_on_ms = std::min(best_on_ms, timer.elapsed_ms());

    if (observed.pooled.off_slots != plain.pooled.off_slots ||
        observed.events != plain.events) {
      std::fprintf(stderr, "FATAL: instrumentation changed the sim output\n");
      return 1;
    }
    events = observed.events;
  }

  const double overhead = best_on_ms / best_off_ms - 1.0;
  util::write_bench_json("obs_overhead",
                         {{"obs_enabled", obs::kEnabled ? 1.0 : 0.0},
                          {"uninstrumented_ms", best_off_ms},
                          {"instrumented_ms", best_on_ms},
                          {"overhead_fraction", overhead},
                          {"events", static_cast<double>(events)}});
  std::printf("uninstrumented %.1f ms, instrumented %.1f ms "
              "(%+.2f%% overhead, best of %d)\n",
              best_off_ms, best_on_ms, 100.0 * overhead, kReps);

  if constexpr (!obs::kEnabled) {
    // Both paths run identical code in OFF builds; allow 10% for timer
    // noise on a shared machine.
    if (overhead > 0.10) {
      std::fprintf(stderr,
                   "FATAL: OBS=OFF build shows measurable overhead "
                   "(%.1f%%) — the no-op gating regressed\n",
                   100.0 * overhead);
      return 1;
    }
    std::printf("OFF build: overhead within noise, gating intact\n");
  }
  return 0;
}

// Reproduces Fig 14: 10G throughput and received power under arbitrary
// (hand-held) user motion — simultaneous linear + angular movement.
//
// Paper anchor: optimal throughput is maintained for motions undergoing
// simultaneous linear and angular speeds below ~30 cm/s and ~16-18 deg/s;
// received power stays above -40 dBm up to 100 deg/s with 30 cm/s.
//
// Methodology: one long hand-held run; windows are bucketed by their
// measured speeds and a window counts as "aligned" when its worst-slot
// power stays above the SFP sensitivity (this separates alignment
// capability from the 2 s SFP re-acquisition tail that follows any drop).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {
constexpr int kTimingReps = 2;
}  // namespace

int main() {
  std::printf("== Fig 14: 10G under arbitrary (mixed) motions ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());

  const double ang_limit = util::deg_to_rad(14.0);
  const double lin_limit = 0.25;
  // Best-of-2 wall time over the full characterization (the fig13/fig16
  // protocol: the min discards one-off scheduler hiccups); the reported
  // rows are rep 0's, so the result fields stay comparable across runs.
  bench::MixedCharacterization mixed;
  double characterize_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    bench::Timer timer;
    auto rep_mixed = bench::characterize_mixed(
        rig, /*cap_linear=*/0.60, /*cap_angular=*/util::deg_to_rad(40.0),
        lin_limit, ang_limit, /*duration_s=*/300.0, /*seed=*/99);
    const double rep_ms = timer.elapsed_ms();
    if (rep == 0) {
      mixed = std::move(rep_mixed);
      characterize_ms = rep_ms;
    } else {
      characterize_ms = std::min(characterize_ms, rep_ms);
    }
  }

  std::printf("windows with angular < 14 deg/s, bucketed by linear speed:\n");
  std::printf("linear_bucket_cm_s, windows, aligned_fraction\n");
  for (const auto& b : mixed.by_linear) {
    if (b.windows == 0) continue;
    std::printf("%.0f-%.0f, %d, %.2f\n", b.speed_lo * 100.0,
                b.speed_lo * 100.0 + 6.0, b.windows, b.aligned_fraction());
  }

  std::printf("\nwindows with linear < 25 cm/s, bucketed by angular speed:\n");
  std::printf("angular_bucket_deg_s, windows, aligned_fraction\n");
  for (const auto& b : mixed.by_angular) {
    if (b.windows == 0) continue;
    std::printf("%.0f-%.0f, %d, %.2f\n", util::rad_to_deg(b.speed_lo),
                util::rad_to_deg(b.speed_lo) + 4.0, b.windows,
                b.aligned_fraction());
  }

  std::printf("\nsimultaneous speeds sustained with aligned link: "
              "~%.0f cm/s and ~%.0f deg/s (paper: ~30 cm/s and 16-18 "
              "deg/s)\n",
              mixed.sustained_linear_mps * 100.0,
              util::rad_to_deg(mixed.sustained_angular_rps));
  std::printf("characterization: %.0f ms (best of %d)\n", characterize_ms,
              kTimingReps);
  bench::write_bench_json(
      "fig14",
      {{"sustained_linear_cm_s", mixed.sustained_linear_mps * 100.0},
       {"sustained_angular_deg_s",
        util::rad_to_deg(mixed.sustained_angular_rps)},
       {"characterize_ms", characterize_ms},
       {"timing_reps", static_cast<double>(kTimingReps)}});
  return 0;
}

// Reproduces §5.2's TP evaluation:
//   * VRH-T report cadence (12-13 ms, ~0.7 % at 14-15 ms);
//   * TP latency budget (pointing ~1-2 ms, dominated by the DAQ);
//   * the 10 "lock tests": move the rig, lock it, run TP once, compare
//     against an optimally (exhaustively) aligned link.  The paper sees
//     optimal throughput in 10/10 tests with power only 3-4 dB below peak.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluation.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== §5.2: tracking frequency, TP latency, TP accuracy ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());

  // --- tracking cadence ---
  util::RunningStats gaps;
  int outliers = 0;
  util::SimTimeUs now = 0;
  for (int i = 0; i < 10000; ++i) {
    const util::SimTimeUs next = rig.proto.tracker.next_capture_time(now);
    const double gap = util::us_to_ms(next - now);
    gaps.add(gap);
    if (gap > 13.5) ++outliers;
    rig.proto.tracker.report(next, rig.proto.nominal_rig_pose);
    now = next;
  }
  std::printf("VRH-T report gap: mean %.2f ms, min %.2f, max %.2f; "
              ">13.5 ms in %.2f%% of gaps (paper: 12-13 ms, 0.7%% at "
              "14-15 ms)\n",
              gaps.mean(), gaps.min(), gaps.max(),
              100.0 * outliers / gaps.count());

  // --- latency budget ---
  const core::TpConfig tp_config;
  std::printf("pointing latency: %.2f ms = DAQ %.2f + GM settle %.2f + "
              "compute %.3f (paper: 1-2 ms)\n",
              tp_config.pointing_latency_s() * 1e3,
              tp_config.daq.conversion_latency_s * 1e3,
              tp_config.gm_settle_s * 1e3, tp_config.compute_s * 1e3);

  // --- lock tests ---
  util::Rng rng(23);
  const core::PointingSolver solver = rig.calib.make_pointing_solver();
  const auto samples =
      core::run_lock_tests(rig.proto, solver, 10, 0.12, 0.08, rng);

  std::printf("\nlock tests (TP vs exhaustive optimum):\n");
  std::printf("test, tp_power_dbm, optimal_power_dbm, optimal_throughput\n");
  int up = 0;
  util::RunningStats gap_db;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (s.link_up) ++up;
    gap_db.add(s.optimal_power_dbm - s.power_dbm);
    std::printf("%zu, %.1f, %.1f, %s\n", i + 1, s.power_dbm,
                s.optimal_power_dbm, s.link_up ? "yes" : "no");
  }
  std::printf("\noptimal throughput restored in %d/10 tests (paper: 10/10); "
              "power %.1f dB below peak on average (paper: ~3-4 dB)\n",
              up, gap_db.mean());
  return 0;
}

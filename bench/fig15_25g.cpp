// Reproduces Fig 15: 25G prototype throughput for purely linear, purely
// angular, and arbitrary (mixed) motions.
//
// Paper anchors: optimal ~23.5 Gbps below 25 cm/s or 25 deg/s (pure), and
// below ~15 cm/s with 15-20 deg/s simultaneously.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {
constexpr int kTimingReps = 2;
}  // namespace

int main() {
  std::printf("== Fig 15: 25G prototype under pure and mixed motions ==\n\n");

  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_25g_config());
  const double goodput = rig.proto.scene.config().sfp.goodput_gbps;

  std::vector<double> linear_speeds;
  for (double v = 0.05; v <= 0.45 + 1e-9; v += 0.05) linear_speeds.push_back(v);
  std::vector<double> angular_speeds;
  for (double w = 5.0; w <= 45.0 + 1e-9; w += 5.0) {
    angular_speeds.push_back(util::deg_to_rad(w));
  }

  // Best-of-2 wall time over the full pass (linear + angular + mixed, the
  // fig13/fig16 protocol); the reported rows are rep 0's.
  std::vector<bench::SpeedSweepRow> linear_rows, angular_rows;
  bench::MixedCharacterization mixed;
  double sweep_ms = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    bench::Timer timer;
    auto rep_linear = bench::stroke_speed_sweep(
        rig, bench::StrokeKind::kLinear, linear_speeds);
    auto rep_angular = bench::stroke_speed_sweep(
        rig, bench::StrokeKind::kAngular, angular_speeds);
    auto rep_mixed = bench::characterize_mixed(
        rig, /*cap_linear=*/0.45, /*cap_angular=*/util::deg_to_rad(40.0),
        /*lin_limit=*/0.18, /*ang_limit=*/util::deg_to_rad(22.0),
        /*duration_s=*/120.0, /*seed=*/77);
    const double rep_ms = timer.elapsed_ms();
    if (rep == 0) {
      linear_rows = std::move(rep_linear);
      angular_rows = std::move(rep_angular);
      mixed = std::move(rep_mixed);
      sweep_ms = rep_ms;
    } else {
      sweep_ms = std::min(sweep_ms, rep_ms);
    }
  }

  // --- purely linear ---
  std::printf("linear_speed_cm_s, throughput_gbps, power_dbm\n");
  for (const auto& row : linear_rows) {
    std::printf("%.0f, %.2f, %.1f\n", row.speed * 100.0, row.throughput_gbps,
                row.power_dbm);
  }
  const double max_linear = bench::max_optimal_speed(linear_rows, goodput);
  std::printf("max linear speed with optimal throughput: %.0f cm/s "
              "(paper: ~25 cm/s)\n\n",
              max_linear * 100.0);

  // --- purely angular ---
  std::printf("angular_speed_deg_s, throughput_gbps, power_dbm\n");
  for (const auto& row : angular_rows) {
    std::printf("%.0f, %.2f, %.1f\n", util::rad_to_deg(row.speed),
                row.throughput_gbps, row.power_dbm);
  }
  const double max_angular = bench::max_optimal_speed(angular_rows, goodput);
  std::printf("max angular speed with optimal throughput: %.0f deg/s "
              "(paper: ~25 deg/s)\n\n",
              util::rad_to_deg(max_angular));

  // --- mixed (same bucketed methodology as Fig 14) ---
  std::printf("windows with angular < 22 deg/s, bucketed by linear speed:\n");
  std::printf("linear_bucket_cm_s, windows, aligned_fraction\n");
  for (const auto& b : mixed.by_linear) {
    if (b.windows == 0) continue;
    std::printf("%.1f-%.1f, %d, %.2f\n", b.speed_lo * 100.0,
                b.speed_lo * 100.0 + 4.5, b.windows, b.aligned_fraction());
  }
  std::printf("\nwindows with linear < 18 cm/s, bucketed by angular speed:\n");
  std::printf("angular_bucket_deg_s, windows, aligned_fraction\n");
  for (const auto& b : mixed.by_angular) {
    if (b.windows == 0) continue;
    std::printf("%.0f-%.0f, %d, %.2f\n", util::rad_to_deg(b.speed_lo),
                util::rad_to_deg(b.speed_lo) + 4.0, b.windows,
                b.aligned_fraction());
  }
  std::printf("\nmixed motions: sustained up to ~%.0f cm/s with ~%.0f deg/s "
              "(paper: ~15 cm/s and 15-20 deg/s)\n",
              mixed.sustained_linear_mps * 100.0,
              util::rad_to_deg(mixed.sustained_angular_rps));
  std::printf("full pass: %.0f ms (best of %d)\n", sweep_ms, kTimingReps);
  bench::write_bench_json(
      "fig15",
      {{"max_linear_cm_s", max_linear * 100.0},
       {"max_angular_deg_s", util::rad_to_deg(max_angular)},
       {"sustained_linear_cm_s", mixed.sustained_linear_mps * 100.0},
       {"sustained_angular_deg_s",
        util::rad_to_deg(mixed.sustained_angular_rps)},
       {"sweep_ms", sweep_ms},
       {"timing_reps", static_cast<double>(kTimingReps)}});
  return 0;
}

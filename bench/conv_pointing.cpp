// Reproduces the §4.3 convergence claims:
//   * the G' iteration converges in 2-4 iterations;
//   * the pointing mechanism P converges in 2-5 iterations.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/gprime.hpp"
#include "core/pointing.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace cyclops;

int main() {
  std::printf("== §4.3 convergence: G' and P iteration counts ==\n\n");

  // The calibration behind the solver is the hot path here (LM Jacobians +
  // exhaustive-aligner sweeps); time it serial vs pooled.
  bench::Timer timer;
  double serial_ms = 0.0;
  {
    util::ThreadPool::SerialScope force_serial;
    const bench::CalibratedRig serial_rig =
        bench::make_calibrated_rig(42, sim::prototype_10g_config());
    serial_ms = timer.elapsed_ms();
    (void)serial_rig;
  }
  timer.reset();
  bench::CalibratedRig rig =
      bench::make_calibrated_rig(42, sim::prototype_10g_config());
  const double parallel_ms = timer.elapsed_ms();
  bench::write_bench_json(
      "conv_pointing",
      {{"serial_ms", serial_ms},
       {"parallel_ms", parallel_ms},
       {"speedup", serial_ms / parallel_ms},
       {"serial_threads", 1.0},
       {"parallel_threads",
        static_cast<double>(util::ThreadPool::global().thread_count())}});

  const core::PointingSolver solver = rig.calib.make_pointing_solver();

  // --- G' over random targets in the coverage cone. ---
  util::Rng rng(5);
  util::RunningStats gprime_iters;
  const core::GPrimeSolver gprime;
  const core::GmaModel& tx = solver.tx_vr();
  for (int i = 0; i < 500; ++i) {
    const auto boresight = tx.trace(0.0, 0.0);
    const geom::Vec3 target = boresight->at(rng.uniform(1.2, 2.2)) +
                              geom::Vec3{rng.uniform(-0.3, 0.3),
                                         rng.uniform(-0.3, 0.3),
                                         rng.uniform(-0.1, 0.1)};
    const core::GPrimeResult r = gprime.solve(tx, target);
    if (r.converged) gprime_iters.add(r.iterations);
  }
  std::printf("G' iterations: mean %.2f, min %.0f, max %.0f over %zu targets "
              "(paper: 2-4)\n",
              gprime_iters.mean(), gprime_iters.min(), gprime_iters.max(),
              gprime_iters.count());

  // --- P over random rig poses, cold and warm started. ---
  util::RunningStats p_cold, p_warm;
  sim::Voltages last{};
  for (int i = 0; i < 200; ++i) {
    const geom::Pose pose = core::random_rig_pose(
        rig.proto.nominal_rig_pose, 0.15, 0.10, rng);
    rig.proto.scene.set_rig_pose(pose);
    const geom::Pose psi = rig.proto.tracker.report(0, pose).pose;
    const core::PointingResult cold = solver.solve(psi, {});
    if (cold.converged) p_cold.add(cold.iterations);
    const core::PointingResult warm = solver.solve(psi, last);
    if (warm.converged) {
      p_warm.add(warm.iterations);
      last = warm.voltages;
    }
  }
  std::printf("P iterations (cold start): mean %.2f, min %.0f, max %.0f "
              "(paper: 2-5)\n",
              p_cold.mean(), p_cold.min(), p_cold.max());
  std::printf("P iterations (warm start): mean %.2f, min %.0f, max %.0f\n",
              p_warm.mean(), p_warm.min(), p_warm.max());
  return 0;
}

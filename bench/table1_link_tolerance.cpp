// Reproduces Table 1: angular movement tolerances and peak received power
// of the 10G link with a collimated vs a diverging beam (20 mm diameter at
// the RX, 1.5 m link).
//
// Paper anchors:              Collimated   Diverging
//   TX angular tolerance      2.00 mrad    15.81 mrad
//   RX angular tolerance      2.28 mrad    5.77 mrad
//   Peak received power       +15 dBm      -10 dBm
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "optics/coupling.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

struct DesignResult {
  double tx_tol_mrad;
  double rx_tol_mrad;
  double peak_dbm;
};

DesignResult measure(const optics::LinkDesign& design) {
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.design = design;
  sim::Prototype proto = sim::make_prototype(42, config);
  DesignResult r{};
  r.peak_dbm = bench::aligned_peak_power_dbm(proto);
  r.tx_tol_mrad = util::rad_to_mrad(bench::tx_angular_tolerance(proto));
  r.rx_tol_mrad = util::rad_to_mrad(bench::rx_angular_tolerance(proto));
  return r;
}

}  // namespace

int main() {
  std::printf("== Table 1: link angular tolerances and peak received power "
              "(10G, 20 mm beam at RX) ==\n\n");

  const DesignResult collimated = measure(optics::collimated_10g(20e-3));
  const DesignResult diverging = measure(optics::diverging_10g(20e-3, 1.5));

  util::TextTable table({"", "Collimated", "Diverging", "paper-C", "paper-D"});
  table.add_row({"TX Angular Tolerance (mrad)",
                 util::TextTable::num(collimated.tx_tol_mrad),
                 util::TextTable::num(diverging.tx_tol_mrad), "2.00",
                 "15.81"});
  table.add_row({"RX Angular Tolerance (mrad)",
                 util::TextTable::num(collimated.rx_tol_mrad),
                 util::TextTable::num(diverging.rx_tol_mrad), "2.28", "5.77"});
  table.add_row({"Peak Received Power (dBm)",
                 util::TextTable::num(collimated.peak_dbm, 1),
                 util::TextTable::num(diverging.peak_dbm, 1), "15", "-10"});
  table.print(std::cout);

  std::printf("\nshape checks: diverging TX tolerance %.1fx collimated "
              "(paper ~7.9x); diverging RX tolerance %.1fx collimated "
              "(paper ~2.5x); power penalty %.0f dB (paper ~25 dB)\n",
              diverging.tx_tol_mrad / collimated.tx_tol_mrad,
              diverging.rx_tol_mrad / collimated.rx_tol_mrad,
              collimated.peak_dbm - diverging.peak_dbm);
  return 0;
}

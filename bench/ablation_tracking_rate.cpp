// Ablation: tracking frequency vs tolerated movement speed.
//
// §5.2's conclusion: "a custom VRH-T with much higher tracking frequency
// will improve Cyclops's performance significantly."  This bench sweeps
// the tracker report period and measures the maximum angular stroke speed
// that keeps throughput optimal on the 10G prototype.
#include <cstdio>

#include "bench_common.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Ablation: tracker report period vs tolerated angular "
              "speed (10G) ==\n\n");
  std::printf("period_ms, max_angular_deg_s, max_linear_cm_s\n");

  for (double period_ms : {2.0, 4.0, 8.0, 12.5, 20.0, 30.0}) {
    sim::PrototypeConfig config = sim::prototype_10g_config();
    config.tracker.period_ms = period_ms;
    config.tracker.period_jitter_ms = std::min(0.5, period_ms * 0.04);
    // A faster tracker implies a fresher fused position too.
    config.tracker.position_lag_ms = std::min(8.0, period_ms * 0.64);
    bench::CalibratedRig rig = bench::make_calibrated_rig(42, config);

    std::vector<double> ang;
    for (double w = 4.0; w <= 80.0 + 1e-9; w += 4.0) {
      ang.push_back(util::deg_to_rad(w));
    }
    const double max_ang = util::rad_to_deg(bench::max_optimal_speed(
        bench::stroke_speed_sweep(rig, bench::StrokeKind::kAngular, ang),
        rig.proto.scene.config().sfp.goodput_gbps));

    std::vector<double> lin;
    for (double v = 0.10; v <= 1.50 + 1e-9; v += 0.10) lin.push_back(v);
    const double max_lin =
        bench::max_optimal_speed(
            bench::stroke_speed_sweep(rig, bench::StrokeKind::kLinear, lin),
            rig.proto.scene.config().sfp.goodput_gbps) *
        100.0;

    std::printf("%.1f, %.0f, %.0f\n", period_ms, max_ang, max_lin);
  }

  std::printf("\nexpectation: tolerated speeds scale roughly inversely "
              "with the report period — the paper's case for a faster "
              "VRH-T.\n");
  return 0;
}

// Reproduces Fig 3: CDFs of VRH linear and angular speeds during 360°
// video viewing (the characterization that sets Cyclops's speed
// requirements: at most ~14 cm/s and ~19 deg/s in normal use).
//
// Uses the synthetic 500-trace dataset standing in for the public
// dataset of [47] (see DESIGN.md substitutions).
#include <cstdio>

#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace cyclops;

int main() {
  std::printf("== Fig 3: CDFs of VRH linear and angular speeds "
              "(500 synthetic 1-min viewing traces) ==\n\n");

  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  const auto traces = motion::generate_dataset(base, 500, {}, rng);

  std::vector<double> linear_cms, angular_degs;
  for (const auto& trace : traces) {
    const motion::TraceSpeeds speeds = motion::compute_speeds(trace);
    for (double v : speeds.linear_mps) linear_cms.push_back(v * 100.0);
    for (double w : speeds.angular_rps)
      angular_degs.push_back(util::rad_to_deg(w));
  }

  const util::Cdf lin(linear_cms);
  const util::Cdf ang(angular_degs);

  std::printf("cdf_fraction, linear_speed_cm_s, angular_speed_deg_s\n");
  for (int i = 1; i <= 20; ++i) {
    const double q = i / 20.0;
    std::printf("%.2f, %.3f, %.3f\n", q, lin.quantile(q), ang.quantile(q));
  }

  std::printf("\nmax linear speed:  %.2f cm/s   (paper: at most ~14 cm/s)\n",
              lin.max());
  std::printf("max angular speed: %.2f deg/s  (paper: at most ~19 deg/s)\n",
              ang.max());
  std::printf("medians: %.2f cm/s, %.2f deg/s\n", lin.quantile(0.5),
              ang.quantile(0.5));
  return 0;
}

// Reproduces Fig 16 (§5.4): trace-driven connectivity of the 25G
// prototype over 500 one-minute head traces, simulated in 1 ms slots.
//
// Paper anchors: operational in 98.6 % of slots on average (per-trace
// range ~95-99.98 %), effective bandwidth ~23 Gbps, and >60 % of
// off-slots falling in 30-slot frames with fewer than 10 off-slots.
//
// Runs the study on both engines — the legacy fixed-step loop and the
// discrete-event engine (the default) — checks them bit-identical, and
// reports the event engine's throughput and speedup.
//
// Usage: fig16_trace_cdf [n_traces]
//   n_traces < 500 is the smoke-gate subset (scripts/check.sh runs 50);
//   subset runs write BENCH_fig16_smoke.json so the committed full-run
//   BENCH_fig16.json is never clobbered by a quick gate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

constexpr int kFullTraces = 500;

std::vector<motion::Trace> make_dataset(int n, util::ThreadPool& pool) {
  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  // The §5.4 dataset (Lo et al. 360° viewers) is a different population
  // than the paper's own Fig-3 speed study: it includes more vigorous
  // posture shifts, occasionally exceeding the Fig-3 "normal use" maxima.
  motion::TraceGeneratorConfig gen_config;
  gen_config.max_linear_mps = 0.19;
  gen_config.shift_peak_mps = 0.17;
  gen_config.shift_rate_hz = 0.22;
  return motion::generate_dataset(base, n, gen_config, rng, pool);
}

/// Best-of-2 wall time for a phase (re-running is safe: both engines are
/// pure functions of the dataset).  The min discards one-off scheduler
/// hiccups, so the speedup ratio the smoke gate checks is stable enough
/// to hold a floor against ±20% single-shot noise.
template <typename Phase>
double timed_best_of_2(const Phase& phase) {
  bench::Timer timer;
  phase();
  double best = timer.elapsed_ms();
  timer.reset();
  phase();
  best = std::min(best, timer.elapsed_ms());
  return best;
}

bool same_results(const link::DatasetEvalResult& a,
                  const link::DatasetEvalResult& b) {
  return a.per_trace_off_fraction == b.per_trace_off_fraction &&
         a.pooled.off_per_dirty_frame == b.pooled.off_per_dirty_frame &&
         a.pooled.total_slots == b.pooled.total_slots &&
         a.pooled.off_slots == b.pooled.off_slots;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_traces =
      argc > 1 ? std::max(1, std::atoi(argv[1])) : kFullTraces;
  std::printf("== Fig 16: CDF of per-trace disconnected-slot fraction "
              "(25G, %d traces, 1 ms slots) ==\n\n",
              n_traces);

  const auto traces = make_dataset(n_traces, util::ThreadPool::global());

  link::SlotEvalConfig legacy_config;  // §5.4 constants (25G tolerances)
  legacy_config.engine = link::EvalEngine::kFixedStep;
  link::SlotEvalConfig event_config;
  event_config.engine = link::EvalEngine::kEvent;

  // Legacy fixed-step oracle, serial: the pre-event-engine baseline.
  link::DatasetEvalResult legacy;
  const double legacy_ms = timed_best_of_2([&] {
    legacy = link::evaluate_dataset(traces, legacy_config,
                                    util::ThreadPool::serial());
  });

  // Event engine, serial then parallel — all three must agree exactly.
  link::DatasetEvalResult event_serial;
  const double event_serial_ms = timed_best_of_2([&] {
    event_serial = link::evaluate_dataset(traces, event_config,
                                          util::ThreadPool::serial());
  });

  link::DatasetEvalResult event_parallel;
  const double event_parallel_ms = timed_best_of_2([&] {
    event_parallel = link::evaluate_dataset(traces, event_config,
                                            util::ThreadPool::global());
  });

  if (!same_results(legacy, event_serial)) {
    std::fprintf(stderr, "FATAL: event engine differs from fixed-step\n");
    return 1;
  }
  if (!same_results(event_serial, event_parallel) ||
      event_serial.events != event_parallel.events) {
    std::fprintf(stderr, "FATAL: parallel result differs from serial\n");
    return 1;
  }
  const link::DatasetEvalResult& result = event_parallel;

  const double threads =
      static_cast<double>(util::ThreadPool::global().thread_count());
  const double events_per_sec =
      static_cast<double>(result.events) / (event_parallel_ms * 1e-3);
  // Per-phase worker counts: the serial phases pin 1 executor by
  // construction; the parallel phase gets whatever CYCLOPS_THREADS /
  // hardware concurrency resolved to.  Recorded so a JSON diff across
  // machines is interpretable.
  bench::write_bench_json(
      n_traces == kFullTraces ? "fig16" : "fig16_smoke",
      {{"legacy_fixed_step_ms", legacy_ms},
       {"event_serial_ms", event_serial_ms},
       {"event_parallel_ms", event_parallel_ms},
       {"legacy_vs_event_speedup", legacy_ms / event_serial_ms},
       {"parallel_speedup", event_serial_ms / event_parallel_ms},
       {"legacy_threads", 1.0},
       {"event_serial_threads", 1.0},
       {"event_parallel_threads", threads},
       {"timing_reps", 2.0},
       {"events", static_cast<double>(result.events)},
       {"events_per_sec", events_per_sec},
       {"traces", static_cast<double>(traces.size())}});
  std::printf("fixed-step serial %.0f ms; event engine %.0f ms serial "
              "(%.2fx), %.0f ms on %d threads (%.2fx more)\n",
              legacy_ms, event_serial_ms, legacy_ms / event_serial_ms,
              event_parallel_ms, static_cast<int>(threads),
              event_serial_ms / event_parallel_ms);
  std::printf("%llu events dispatched (%.1f M events/s), outputs "
              "bit-identical across engines and thread counts\n\n",
              static_cast<unsigned long long>(result.events),
              events_per_sec / 1e6);

  const util::Cdf cdf(result.per_trace_off_fraction);
  std::printf("cdf_fraction, disconnected_slot_percent\n");
  for (int i = 1; i <= 20; ++i) {
    const double q = i / 20.0;
    std::printf("%.2f, %.3f\n", q, 100.0 * cdf.quantile(q));
  }

  const double operational = 1.0 - result.pooled.off_fraction();
  std::printf("\noverall operational slots: %.2f%% (paper: 98.6%%)\n",
              100.0 * operational);
  std::printf("per-trace operational range: %.2f%% .. %.2f%% "
              "(paper: 95%% .. 99.98%%)\n",
              100.0 * (1.0 - cdf.max()), 100.0 * (1.0 - cdf.min()));
  std::printf("effective bandwidth: %.1f Gbps of 23.5 (paper: ~23)\n",
              operational * 23.5);
  std::printf("off-slots in lightly-affected frames (<10 off of 30): "
              "%.0f%% (paper: >60%%)\n",
              100.0 * result.pooled.scattered_fraction(10));
  return 0;
}

// Reproduces Fig 16 (§5.4): trace-driven connectivity of the 25G
// prototype over 500 one-minute head traces, simulated in 1 ms slots.
//
// Paper anchors: operational in 98.6 % of slots on average (per-trace
// range ~95-99.98 %), effective bandwidth ~23 Gbps, and >60 % of
// off-slots falling in 30-slot frames with fewer than 10 off-slots.
#include <cstdio>

#include "bench_common.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace cyclops;

namespace {

struct Fig16Run {
  std::vector<motion::Trace> traces;
  link::DatasetEvalResult result;
};

Fig16Run run_fig16(util::ThreadPool& pool) {
  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  // The §5.4 dataset (Lo et al. 360° viewers) is a different population
  // than the paper's own Fig-3 speed study: it includes more vigorous
  // posture shifts, occasionally exceeding the Fig-3 "normal use" maxima.
  motion::TraceGeneratorConfig gen_config;
  gen_config.max_linear_mps = 0.19;
  gen_config.shift_peak_mps = 0.17;
  gen_config.shift_rate_hz = 0.22;
  Fig16Run run;
  run.traces = motion::generate_dataset(base, 500, gen_config, rng, pool);

  const link::SlotEvalConfig config;  // §5.4 constants (25G tolerances)
  run.result = link::evaluate_dataset(run.traces, config, pool);
  return run;
}

}  // namespace

int main() {
  std::printf("== Fig 16: CDF of per-trace disconnected-slot fraction "
              "(25G, 500 traces, 1 ms slots) ==\n\n");

  // Serial baseline, then the pool — same seeds, must agree bit-for-bit.
  bench::Timer timer;
  const Fig16Run serial_run = run_fig16(util::ThreadPool::serial());
  const double serial_ms = timer.elapsed_ms();

  timer.reset();
  const Fig16Run parallel_run = run_fig16(util::ThreadPool::global());
  const double parallel_ms = timer.elapsed_ms();

  if (serial_run.result.per_trace_off_fraction !=
          parallel_run.result.per_trace_off_fraction ||
      serial_run.result.pooled.off_per_dirty_frame !=
          parallel_run.result.pooled.off_per_dirty_frame ||
      serial_run.result.pooled.total_slots !=
          parallel_run.result.pooled.total_slots) {
    std::fprintf(stderr, "FATAL: parallel result differs from serial\n");
    return 1;
  }
  const link::DatasetEvalResult& result = parallel_run.result;

  const double threads =
      static_cast<double>(util::ThreadPool::global().thread_count());
  bench::write_bench_json(
      "fig16", {{"serial_ms", serial_ms},
                {"parallel_ms", parallel_ms},
                {"speedup", serial_ms / parallel_ms},
                {"threads", threads},
                {"traces", static_cast<double>(serial_run.traces.size())}});
  std::printf("serial %.0f ms, parallel %.0f ms (%.2fx, %d threads), "
              "outputs bit-identical\n\n",
              serial_ms, parallel_ms, serial_ms / parallel_ms,
              static_cast<int>(threads));

  const util::Cdf cdf(result.per_trace_off_fraction);
  std::printf("cdf_fraction, disconnected_slot_percent\n");
  for (int i = 1; i <= 20; ++i) {
    const double q = i / 20.0;
    std::printf("%.2f, %.3f\n", q, 100.0 * cdf.quantile(q));
  }

  const double operational = 1.0 - result.pooled.off_fraction();
  std::printf("\noverall operational slots: %.2f%% (paper: 98.6%%)\n",
              100.0 * operational);
  std::printf("per-trace operational range: %.2f%% .. %.2f%% "
              "(paper: 95%% .. 99.98%%)\n",
              100.0 * (1.0 - cdf.max()), 100.0 * (1.0 - cdf.min()));
  std::printf("effective bandwidth: %.1f Gbps of 23.5 (paper: ~23)\n",
              operational * 23.5);
  std::printf("off-slots in lightly-affected frames (<10 off of 30): "
              "%.0f%% (paper: >60%%)\n",
              100.0 * result.pooled.scattered_fraction(10));
  return 0;
}

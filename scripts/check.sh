#!/usr/bin/env bash
# The full local gate, three presets back to back:
#   1. release      — configure, build, and run the whole suite
#                     (fast + ctx + slow labels).
#   2. tsan-fast    — ThreadSanitizer over the quick gate plus the
#                     context/concurrency isolation tests and the phy
#                     layer (fast|ctx|phy) — so the event-engine-vs-
#                     fixed-step equivalence oracle runs under both
#                     release AND tsan.
#   3. obs-off-fast — the CYCLOPS_OBS=OFF build of the same quick gate,
#                     proving the telemetry compile-out keeps everything
#                     green.
# Any failure stops the script (set -e); a clean exit means all three
# gates passed.  Run from the repository root:  ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/3] release: configure + build + full test suite =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== [2/3] tsan-fast: ThreadSanitizer, fast + ctx + phy labels =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan-fast

echo "== [3/3] obs-off-fast: telemetry compiled out, fast + ctx + phy labels =="
cmake --preset obs-off
cmake --build --preset obs-off -j "$(nproc)"
ctest --preset obs-off-fast

echo "== all gates passed =="

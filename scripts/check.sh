#!/usr/bin/env bash
# The full local gate, five stages back to back:
#   1. release      — configure, build, and run the whole suite
#                     (fast + ctx + slow labels).
#   2. perf smoke   — fig16 on a 50-trace subset; fails if the event
#                     engine's speedup over the legacy fixed-step loop
#                     drops below the committed floor (ISSUE-6 exit
#                     criterion: the DES engine must beat the loop).
#   3. stream smoke — bench/stream_pipeline on a 50-trace subset; the
#                     binary hard-gates zero torn frames / zero arena
#                     copies / >= 1 Gbps through flaps, and this stage
#                     additionally holds the adaptive policy's freeze
#                     rate under a fixed ceiling.
#   4. tsan-fast    — ThreadSanitizer over the quick gate plus the
#                     context/concurrency isolation tests, the phy
#                     layer, and the streaming plane (fast|ctx|phy|
#                     stream) — so the engine-equivalence and ABR
#                     bit-exactness oracles run under both release AND
#                     tsan.
#   5. obs-off-fast — the CYCLOPS_OBS=OFF build of the same quick gate,
#                     proving the telemetry compile-out keeps everything
#                     green.
# Any failure stops the script (set -e); a clean exit means all five
# gates passed.  Run from the repository root:  ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Floor for the fig16 legacy_vs_event_speedup smoke check.  The full run
# sits around 1.12x on the reference box (BENCH_fig16.json); the floor
# leaves headroom for machine noise while still catching a regression
# back to event-slower-than-legacy.  Timing phases inside fig16 are
# best-of-2 precisely so this single-shot gate is stable.
PERF_SPEEDUP_FLOOR="1.0"

echo "== [1/5] release: configure + build + full test suite =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== [2/5] perf smoke: fig16 50-trace subset, speedup floor ${PERF_SPEEDUP_FLOOR} =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/fig16_trace_cdf" 50 > fig16_smoke.log)
speedup="$(sed -n 's/.*"legacy_vs_event_speedup": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_fig16_smoke.json")"
echo "fig16 smoke speedup: ${speedup} (floor ${PERF_SPEEDUP_FLOOR})"
awk -v s="${speedup}" -v floor="${PERF_SPEEDUP_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: event engine speedup ${speedup} below floor ${PERF_SPEEDUP_FLOOR}" >&2
  exit 1
}

echo "== [3/5] stream smoke: 50-trace subset, torn frames + freeze-rate gates =="
# The adaptive controller's freeze rate on the trace library must stay
# under this ceiling (freezes per minute; the full run sits around 6 —
# see BENCH_stream.json).  The binary itself additionally hard-fails on
# torn frames, arena copies, or < 1 Gbps goodput through flaps.
STREAM_FREEZE_CEILING="10.0"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/stream_pipeline" 50 > stream_smoke.log)
torn="$(sed -n 's/.*"torn_frames": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
freeze="$(sed -n 's/.*"abr_adaptive_freeze_per_min": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
echo "stream smoke: torn_frames=${torn}, adaptive freezes/min=${freeze} (ceiling ${STREAM_FREEZE_CEILING})"
awk -v t="${torn}" 'BEGIN { exit !(t + 0 == 0) }' || {
  echo "FAIL: stream smoke reported torn frames" >&2
  exit 1
}
awk -v f="${freeze}" -v c="${STREAM_FREEZE_CEILING}"   'BEGIN { exit !(f + 0 <= c + 0) }' || {
  echo "FAIL: adaptive freeze rate ${freeze}/min above ceiling ${STREAM_FREEZE_CEILING}" >&2
  exit 1
}

echo "== [4/5] tsan-fast: ThreadSanitizer, fast + ctx + phy + stream labels =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan-fast

echo "== [5/5] obs-off-fast: telemetry compiled out, fast + ctx + phy + stream labels =="
cmake --preset obs-off
cmake --build --preset obs-off -j "$(nproc)"
ctest --preset obs-off-fast

echo "== all gates passed =="

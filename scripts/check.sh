#!/usr/bin/env bash
# The full local gate, six stages back to back:
#   1. release      — configure, build, and run the whole suite
#                     (fast + ctx + slow labels).
#   2. perf smoke   — fig16 on a 50-trace subset; fails if the event
#                     engine's speedup over the legacy fixed-step loop
#                     drops below the committed floor (ISSUE-6 exit
#                     criterion: the DES engine must beat the loop).
#   3. stream smoke — bench/stream_pipeline on a 50-trace subset; the
#                     binary hard-gates zero torn frames / zero arena
#                     copies / >= 1 Gbps through flaps, and this stage
#                     additionally holds the adaptive policy's freeze
#                     rate under a fixed ceiling.
#   4. arena smoke  — bench/arena_capacity on a 6-second subset; the
#                     binary hard-gates zero duty violations, >= 1
#                     TX-failure migration, and the uniform 4-TX SLA
#                     floor, and this stage re-checks the same three
#                     out of the smoke JSON.
#   5. tsan-fast    — ThreadSanitizer over the quick gate plus the
#                     context/concurrency isolation tests, the phy
#                     layer, the streaming plane, and the multi-TX
#                     arena (fast|ctx|phy|stream|arena) — so the
#                     engine-equivalence and ABR bit-exactness oracles
#                     and the arena determinism tests run under both
#                     release AND tsan.
#   6. obs-off-fast — the CYCLOPS_OBS=OFF build of the same quick gate,
#                     proving the telemetry compile-out keeps everything
#                     green.
# Any failure stops the script (set -e); a clean exit means all six
# gates passed.  Run from the repository root:  ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Floor for the fig16 legacy_vs_event_speedup smoke check.  The full run
# sits around 1.12x on the reference box (BENCH_fig16.json); the floor
# leaves headroom for machine noise while still catching a regression
# back to event-slower-than-legacy.  Timing phases inside fig16 are
# best-of-2 precisely so this single-shot gate is stable.
PERF_SPEEDUP_FLOOR="1.0"

echo "== [1/6] release: configure + build + full test suite =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== [2/6] perf smoke: fig16 50-trace subset, speedup floor ${PERF_SPEEDUP_FLOOR} =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/fig16_trace_cdf" 50 > fig16_smoke.log)
speedup="$(sed -n 's/.*"legacy_vs_event_speedup": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_fig16_smoke.json")"
echo "fig16 smoke speedup: ${speedup} (floor ${PERF_SPEEDUP_FLOOR})"
awk -v s="${speedup}" -v floor="${PERF_SPEEDUP_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: event engine speedup ${speedup} below floor ${PERF_SPEEDUP_FLOOR}" >&2
  exit 1
}

echo "== [3/6] stream smoke: 50-trace subset, torn frames + freeze-rate gates =="
# The adaptive controller's freeze rate on the trace library must stay
# under this ceiling (freezes per minute; the full run sits around 6 —
# see BENCH_stream.json).  The binary itself additionally hard-fails on
# torn frames, arena copies, or < 1 Gbps goodput through flaps.
STREAM_FREEZE_CEILING="10.0"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/stream_pipeline" 50 > stream_smoke.log)
torn="$(sed -n 's/.*"torn_frames": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
freeze="$(sed -n 's/.*"abr_adaptive_freeze_per_min": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
echo "stream smoke: torn_frames=${torn}, adaptive freezes/min=${freeze} (ceiling ${STREAM_FREEZE_CEILING})"
awk -v t="${torn}" 'BEGIN { exit !(t + 0 == 0) }' || {
  echo "FAIL: stream smoke reported torn frames" >&2
  exit 1
}
awk -v f="${freeze}" -v c="${STREAM_FREEZE_CEILING}"   'BEGIN { exit !(f + 0 <= c + 0) }' || {
  echo "FAIL: adaptive freeze rate ${freeze}/min above ceiling ${STREAM_FREEZE_CEILING}" >&2
  exit 1
}

echo "== [4/6] arena smoke: 6-second subset, duty + migration + SLA gates =="
# Capacity floor for the predictive policy at 4 TXs on the 6 s smoke run
# (fraction of the 16 offered headsets meeting their SLA; the full 30 s
# run sits higher — see BENCH_arena.json).  The binary exits non-zero on
# any gate breach; re-reading the JSON here keeps the gate explicit.
ARENA_SLA_FLOOR="0.75"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/arena_capacity" 6 > arena_smoke.log)
duty="$(sed -n 's/.*"duty_violations": \([0-9.eE+-]*\).*//p'   "${smoke_dir}/BENCH_arena_smoke.json")"
failmig="$(sed -n 's/.*"failure_migrations": \([0-9.eE+-]*\).*//p'   "${smoke_dir}/BENCH_arena_smoke.json")"
sla="$(sed -n 's/.*"uniform_tx4_sla_fraction": \([0-9.eE+-]*\).*//p'   "${smoke_dir}/BENCH_arena_smoke.json")"
echo "arena smoke: duty_violations=${duty}, failure_migrations=${failmig}, uniform_tx4_sla=${sla} (floor ${ARENA_SLA_FLOOR})"
awk -v d="${duty}" 'BEGIN { exit !(d + 0 == 0) }' || {
  echo "FAIL: arena smoke reported duty-budget violations" >&2
  exit 1
}
awk -v m="${failmig}" 'BEGIN { exit !(m + 0 >= 1) }' || {
  echo "FAIL: TX-failure scenario produced no migrations" >&2
  exit 1
}
awk -v s="${sla}" -v floor="${ARENA_SLA_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: arena SLA fraction ${sla} below floor ${ARENA_SLA_FLOOR}" >&2
  exit 1
}

echo "== [5/6] tsan-fast: ThreadSanitizer, fast + ctx + phy + stream + arena labels =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan-fast

echo "== [6/6] obs-off-fast: telemetry compiled out, fast + ctx + phy + stream + arena labels =="
cmake --preset obs-off
cmake --build --preset obs-off -j "$(nproc)"
ctest --preset obs-off-fast

echo "== all gates passed =="

#!/usr/bin/env bash
# The full local gate, nine stages back to back:
#   1. release       — configure, build, and run the whole suite
#                      (fast + ctx + slow + session + fleet labels).
#   2. perf smoke    — fig16 on a 50-trace subset; fails if the event
#                      engine's speedup over the legacy fixed-step loop
#                      drops below the committed floor (ISSUE-6 exit
#                      criterion: the DES engine must beat the loop).
#   3. parallel scaling — the same fig16 smoke with the driver pool at
#                      $(nproc); fails if the parallel fan-out speedup
#                      over the serial event walk drops below 2x.  Only
#                      meaningful with >= 4 cores; skipped (visibly) on
#                      smaller boxes.
#   4. stream smoke  — bench/stream_pipeline on a 50-trace subset; the
#                      binary hard-gates zero torn frames / zero arena
#                      copies / >= 1 Gbps through flaps, and this stage
#                      additionally holds the adaptive policy's freeze
#                      rate under a fixed ceiling.
#   5. arena smoke   — bench/arena_capacity on a 6-second subset; the
#                      binary hard-gates zero duty violations, >= 1
#                      TX-failure migration, and the uniform 4-TX SLA
#                      floor, and this stage re-checks the same three
#                      out of the smoke JSON.
#   6. fleet smoke   — bench/fleet_sim on 1000 sessions; the binary
#                      hard-gates rollup-vs-per-session-sum
#                      reconciliation and zero empty sessions, and this
#                      stage additionally holds a sessions/sec floor.
#   7. recal smoke   — bench/online_recal on a 1-second drift session;
#                      the binary hard-gates >= 1 drift-triggered refit,
#                      zero refit-attributable down windows, and >= 90 %
#                      margin recovery over the frozen-calibration twin
#                      (ISSUE-10 exit criterion: refit without outage).
#   8. tsan-fast     — ThreadSanitizer over the quick gate plus the
#                      context/concurrency isolation tests, the phy
#                      layer, the streaming plane, the multi-TX arena,
#                      the session layer, and the calibration plane
#                      (fast|ctx|phy|stream|arena|session|cal), then the
#                      fleet determinism suite (tsan-fleet) — so the
#                      engine-equivalence and ABR bit-exactness oracles,
#                      the arena determinism tests, the LM checkpoint
#                      resume sweeps, and the fleet==alone byte-equality
#                      run under both release AND tsan.
#   9. obs-off-fast  — the CYCLOPS_OBS=OFF build of the same quick gate,
#                      proving the telemetry compile-out keeps everything
#                      green.
# Any failure stops the script (set -e); a clean exit means all nine
# gates passed.  Run from the repository root:  ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Floor for the fig16 legacy_vs_event_speedup smoke check.  The full run
# sits around 1.12x on the reference box (BENCH_fig16.json); the floor
# leaves headroom for machine noise while still catching a regression
# back to event-slower-than-legacy.  Timing phases inside fig16 are
# best-of-2 precisely so this single-shot gate is stable.
PERF_SPEEDUP_FLOOR="1.0"

echo "== [1/9] release: configure + build + full test suite =="
cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== [2/9] perf smoke: fig16 50-trace subset, speedup floor ${PERF_SPEEDUP_FLOOR} =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/fig16_trace_cdf" 50 > fig16_smoke.log)
speedup="$(sed -n 's/.*"legacy_vs_event_speedup": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_fig16_smoke.json")"
echo "fig16 smoke speedup: ${speedup} (floor ${PERF_SPEEDUP_FLOOR})"
awk -v s="${speedup}" -v floor="${PERF_SPEEDUP_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: event engine speedup ${speedup} below floor ${PERF_SPEEDUP_FLOOR}" >&2
  exit 1
}

# Floor for the per-trace fan-out's parallel speedup over the serial
# event walk.  Static chunking over independent traces should scale
# nearly linearly; 2x at >= 4 cores leaves generous headroom.
PARALLEL_SPEEDUP_FLOOR="2.0"
if [ "$(nproc)" -ge 4 ]; then
  echo "== [3/9] parallel scaling: fig16 smoke on $(nproc) threads, speedup floor ${PARALLEL_SPEEDUP_FLOOR} =="
  (cd "${smoke_dir}" && CYCLOPS_THREADS="$(nproc)" \
    "${OLDPWD}/build/bench/fig16_trace_cdf" 50 > fig16_parallel.log)
  par="$(sed -n 's/.*"parallel_speedup": \([0-9.eE+-]*\).*/\1/p' \
    "${smoke_dir}/BENCH_fig16_smoke.json")"
  echo "fig16 parallel speedup: ${par} on $(nproc) threads (floor ${PARALLEL_SPEEDUP_FLOOR})"
  awk -v s="${par}" -v floor="${PARALLEL_SPEEDUP_FLOOR}" \
    'BEGIN { exit !(s + 0 >= floor + 0) }' || {
    echo "FAIL: parallel speedup ${par} below floor ${PARALLEL_SPEEDUP_FLOOR}" >&2
    exit 1
  }
else
  echo "== [3/9] parallel scaling: SKIPPED ($(nproc) core(s) < 4 — the 2x floor needs >= 4) =="
fi

echo "== [4/9] stream smoke: 50-trace subset, torn frames + freeze-rate gates =="
# The adaptive controller's freeze rate on the trace library must stay
# under this ceiling (freezes per minute; the full run sits around 6 —
# see BENCH_stream.json).  The binary itself additionally hard-fails on
# torn frames, arena copies, or < 1 Gbps goodput through flaps.
STREAM_FREEZE_CEILING="10.0"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/stream_pipeline" 50 > stream_smoke.log)
torn="$(sed -n 's/.*"torn_frames": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
freeze="$(sed -n 's/.*"abr_adaptive_freeze_per_min": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_stream_smoke.json")"
echo "stream smoke: torn_frames=${torn}, adaptive freezes/min=${freeze} (ceiling ${STREAM_FREEZE_CEILING})"
awk -v t="${torn}" 'BEGIN { exit !(t + 0 == 0) }' || {
  echo "FAIL: stream smoke reported torn frames" >&2
  exit 1
}
awk -v f="${freeze}" -v c="${STREAM_FREEZE_CEILING}"   'BEGIN { exit !(f + 0 <= c + 0) }' || {
  echo "FAIL: adaptive freeze rate ${freeze}/min above ceiling ${STREAM_FREEZE_CEILING}" >&2
  exit 1
}

echo "== [5/9] arena smoke: 6-second subset, duty + migration + SLA gates =="
# Capacity floor for the predictive policy at 4 TXs on the 6 s smoke run
# (fraction of the 16 offered headsets meeting their SLA; the full 30 s
# run sits higher — see BENCH_arena.json).  The binary exits non-zero on
# any gate breach; re-reading the JSON here keeps the gate explicit.
ARENA_SLA_FLOOR="0.75"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/arena_capacity" 6 > arena_smoke.log)
duty="$(sed -n 's/.*"duty_violations": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_arena_smoke.json")"
failmig="$(sed -n 's/.*"failure_migrations": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_arena_smoke.json")"
sla="$(sed -n 's/.*"uniform_tx4_sla_fraction": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_arena_smoke.json")"
echo "arena smoke: duty_violations=${duty}, failure_migrations=${failmig}, uniform_tx4_sla=${sla} (floor ${ARENA_SLA_FLOOR})"
awk -v d="${duty}" 'BEGIN { exit !(d + 0 == 0) }' || {
  echo "FAIL: arena smoke reported duty-budget violations" >&2
  exit 1
}
awk -v m="${failmig}" 'BEGIN { exit !(m + 0 >= 1) }' || {
  echo "FAIL: TX-failure scenario produced no migrations" >&2
  exit 1
}
awk -v s="${sla}" -v floor="${ARENA_SLA_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: arena SLA fraction ${sla} below floor ${ARENA_SLA_FLOOR}" >&2
  exit 1
}

echo "== [6/9] fleet smoke: 1000 mixed sessions, reconciliation + throughput gates =="
# Sessions/sec floor for the 1k-session smoke fleet.  The reference
# 1-core box sustains ~1500 sessions/s on the catalog mix
# (BENCH_fleet.json); the floor catches an order-of-magnitude
# per-session lifecycle regression (context setup, scheduler reuse)
# while staying far from machine noise.  The binary itself hard-fails
# if the rollup does not reconcile exactly against the per-session sums
# or any session dispatched zero events.
FLEET_SESSIONS_PER_SEC_FLOOR="300"
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/fleet_sim" 1000 > fleet_smoke.log)
sps="$(sed -n 's/.*"sessions_per_sec": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_fleet_smoke.json")"
reconciled="$(sed -n 's/.*"reconciled": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_fleet_smoke.json")"
echo "fleet smoke: ${sps} sessions/s (floor ${FLEET_SESSIONS_PER_SEC_FLOOR}), reconciled=${reconciled}"
awk -v r="${reconciled}" 'BEGIN { exit !(r + 0 == 1) }' || {
  echo "FAIL: fleet rollup did not reconcile against per-session sums" >&2
  exit 1
}
awk -v s="${sps}" -v floor="${FLEET_SESSIONS_PER_SEC_FLOOR}" \
  'BEGIN { exit !(s + 0 >= floor + 0) }' || {
  echo "FAIL: fleet throughput ${sps} sessions/s below floor ${FLEET_SESSIONS_PER_SEC_FLOOR}" >&2
  exit 1
}

echo "== [7/9] recal smoke: 1-second drift session, refit-without-outage gates =="
# bench/online_recal self-gates: >= 1 refit, refit_down_windows == 0,
# margin_recovered >= 0.9 (the full 2 s run sits around 0.97 — see
# BENCH_recal.json).  Re-reading the JSON keeps the recovery number
# visible in the gate log.
(cd "${smoke_dir}" && "${OLDPWD}/build/bench/online_recal" 1.0 > recal_smoke.log)
recovered="$(sed -n 's/.*"margin_recovered": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_recal_smoke.json")"
refit_down="$(sed -n 's/.*"refit_down_windows": \([0-9.eE+-]*\).*/\1/p' \
  "${smoke_dir}/BENCH_recal_smoke.json")"
echo "recal smoke: margin_recovered=${recovered}, refit_down_windows=${refit_down}"

echo "== [8/9] tsan: quick gate (fast|ctx|phy|stream|arena|session|cal) + fleet determinism =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan-fast
ctest --preset tsan-fleet

echo "== [9/9] obs-off-fast: telemetry compiled out, quick-gate labels =="
cmake --preset obs-off
cmake --build --preset obs-off -j "$(nproc)"
ctest --preset obs-off-fast

echo "== all gates passed =="

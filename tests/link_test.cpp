#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "link/fso_link.hpp"
#include "link/handover.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/units.hpp"

namespace cyclops::link {
namespace {

// ---- LinkStateMachine ----

TEST(LinkStateTest, StartsDownUntilDelayElapses) {
  LinkStateMachine sm(-25.0, util::us_from_s(2.0));
  EXPECT_FALSE(sm.step(0, -10.0));
  EXPECT_FALSE(sm.step(util::us_from_s(1.9), -10.0));
  EXPECT_TRUE(sm.step(util::us_from_s(2.0), -10.0));
}

TEST(LinkStateTest, DropResetsAcquisition) {
  LinkStateMachine sm(-25.0, util::us_from_s(2.0));
  sm.force_up();
  EXPECT_TRUE(sm.step(0, -10.0));
  EXPECT_FALSE(sm.step(1000, -40.0));  // light lost
  // Light back: still needs the full delay again.
  EXPECT_FALSE(sm.step(2000, -10.0));
  EXPECT_FALSE(sm.step(2000 + util::us_from_s(1.0), -10.0));
  EXPECT_TRUE(sm.step(2000 + util::us_from_s(2.0), -10.0));
}

TEST(LinkStateTest, SensitivityThresholdExact) {
  LinkStateMachine sm(-25.0, 0);
  EXPECT_TRUE(sm.step(0, -25.0));
  EXPECT_FALSE(sm.step(1, -25.0001));
}

TEST(LinkStateTest, InfinitePowerLossIsDown) {
  LinkStateMachine sm(-25.0, 0);
  sm.force_up();
  EXPECT_FALSE(
      sm.step(0, -std::numeric_limits<double>::infinity()));
}

// ---- slot evaluation (§5.4) ----

motion::Trace constant_rate_trace(double linear_mps, double angular_rps,
                                  double duration_s = 10.0) {
  motion::Trace trace;
  for (int i = 0; i * 10 <= duration_s * 1000; ++i) {
    const double t_s = i * 0.01;
    trace.samples.push_back(
        {util::us_from_ms(i * 10.0),
         geom::Pose{geom::Mat3::rotation({0, 1, 0}, angular_rps * t_s),
                    {linear_mps * t_s, 0.0, 0.0}}});
  }
  return trace;
}

TEST(SlotEvalTest, StationaryTraceNeverDisconnects) {
  const SlotEvalResult r =
      evaluate_trace(constant_rate_trace(0.0, 0.0), SlotEvalConfig{});
  EXPECT_GT(r.total_slots, 0);
  EXPECT_EQ(r.off_slots, 0);
}

TEST(SlotEvalTest, SlowMotionStaysConnected) {
  // 5 cm/s and 5 deg/s: drift per 10 ms is 0.5 mm / 0.87 mrad on top of
  // the residual 4.54 mm / 2.59 mrad — inside the 6 mm / 8.73 mrad budget.
  const SlotEvalResult r = evaluate_trace(
      constant_rate_trace(0.05, util::deg_to_rad(5.0)), SlotEvalConfig{});
  EXPECT_EQ(r.off_slots, 0);
}

TEST(SlotEvalTest, FastLinearMotionDisconnects) {
  // 30 cm/s: 3 mm drift per 10 ms + 4.54 mm residual > 6 mm tolerance.
  const SlotEvalResult r =
      evaluate_trace(constant_rate_trace(0.30, 0.0), SlotEvalConfig{});
  EXPECT_GT(r.off_fraction(), 0.2);
}

TEST(SlotEvalTest, FastAngularMotionDisconnects) {
  // 60 deg/s = 10.5 mrad per 10 ms on top of 2.59 residual > 8.73 budget.
  const SlotEvalResult r = evaluate_trace(
      constant_rate_trace(0.0, util::deg_to_rad(60.0)), SlotEvalConfig{});
  EXPECT_GT(r.off_fraction(), 0.3);
}

TEST(SlotEvalTest, TighterToleranceDisconnectsMore) {
  const motion::Trace trace = constant_rate_trace(0.12, 0.0);
  SlotEvalConfig loose;
  SlotEvalConfig tight;
  tight.lateral_tolerance_m = 5e-3;
  const double f_loose = evaluate_trace(trace, loose).off_fraction();
  const double f_tight = evaluate_trace(trace, tight).off_fraction();
  EXPECT_GE(f_tight, f_loose);
}

TEST(SlotEvalTest, LargerResidualErrorHurts) {
  const motion::Trace trace = constant_rate_trace(0.10, 0.0);
  SlotEvalConfig good;
  SlotEvalConfig bad;
  bad.residual_lateral_m = 5.5e-3;
  EXPECT_GE(evaluate_trace(trace, bad).off_fraction(),
            evaluate_trace(trace, good).off_fraction());
}

TEST(SlotEvalTest, DatasetAggregation) {
  std::vector<motion::Trace> traces{constant_rate_trace(0.0, 0.0),
                                    constant_rate_trace(0.30, 0.0)};
  const DatasetEvalResult r = evaluate_dataset(traces, SlotEvalConfig{});
  ASSERT_EQ(r.per_trace_off_fraction.size(), 2u);
  EXPECT_EQ(r.per_trace_off_fraction[0], 0.0);
  EXPECT_GT(r.per_trace_off_fraction[1], 0.0);
  EXPECT_EQ(r.pooled.total_slots,
            evaluate_trace(traces[0], {}).total_slots +
                evaluate_trace(traces[1], {}).total_slots);
}

TEST(SlotEvalTest, ScatteredFraction) {
  SlotEvalResult r;
  r.off_per_dirty_frame = {2, 3, 15};  // 5 scattered, 15 clustered
  EXPECT_NEAR(r.scattered_fraction(10), 0.25, 1e-12);
  EXPECT_NEAR(r.scattered_fraction(20), 1.0, 1e-12);
}

TEST(SlotEvalTest, ScatteredFractionWithNoOffSlotsIsZero) {
  // No dirty frames -> no off-slots -> nothing is "scattered".
  const SlotEvalResult r;
  EXPECT_EQ(r.scattered_fraction(10), 0.0);
}

TEST(SlotEvalTest, SyntheticViewingTraceMostlyConnected) {
  // A generated §5.4-style trace should be operational ~95-100 % of slots
  // (the paper reports 98.6 % on average).
  util::Rng rng(3);
  const geom::Pose base{geom::Mat3::identity(), {0, 0.8, 1.2}};
  const motion::Trace trace =
      motion::generate_viewing_trace(base, {}, rng);
  const SlotEvalResult r = evaluate_trace(trace, SlotEvalConfig{});
  EXPECT_LT(r.off_fraction(), 0.08);
}

// ---- handover ----

TEST(HandoverTest, StaysOnActiveWithHysteresis) {
  HandoverManager manager(2, {});
  // TX1 slightly better but within hysteresis: no switch.
  EXPECT_EQ(manager.step(0, std::vector<double>{-10.0, -9.0}), 0);
  EXPECT_EQ(manager.switches(), 0);
}

TEST(HandoverTest, SwitchesWhenClearlyBetter) {
  HandoverConfig config;
  config.switch_delay_s = 0.0;
  HandoverManager manager(2, config);
  EXPECT_EQ(manager.step(0, std::vector<double>{-10.0, -5.0}), 1);
  EXPECT_EQ(manager.switches(), 1);
}

TEST(HandoverTest, SwitchesImmediatelyOnDrop) {
  HandoverConfig config;
  config.switch_delay_s = 0.0;
  HandoverManager manager(2, config);
  // Active occluded: -inf power, backup barely within hysteresis — the
  // drop path must still switch.
  EXPECT_EQ(manager.step(0,
                         std::vector<double>{
                             -std::numeric_limits<double>::infinity(), -24.0}),
            1);
}

TEST(HandoverTest, SwitchDelayBlocksService) {
  HandoverConfig config;
  config.switch_delay_s = 0.2;
  HandoverManager manager(2, config);
  EXPECT_EQ(manager.step(0, std::vector<double>{-40.0, -5.0}), -1);
  EXPECT_TRUE(manager.switching(util::us_from_s(0.1)));
  EXPECT_EQ(manager.step(util::us_from_s(0.25),
                         std::vector<double>{-40.0, -5.0}),
            1);
}

TEST(HandoverTest, NoFlappingBetweenEqualTx) {
  HandoverConfig config;
  config.switch_delay_s = 0.0;
  HandoverManager manager(2, config);
  for (int i = 0; i < 50; ++i) {
    manager.step(i, std::vector<double>{-10.0 + 0.5 * (i % 2),
                                        -10.0 - 0.5 * (i % 2)});
  }
  EXPECT_EQ(manager.switches(), 0);
}

// ---- closed loop (short smoke; the full sweeps live in bench/) ----

class ClosedLoopFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(
        sim::make_prototype(42, sim::prototype_10g_config()));
    util::Rng rng(7);
    calib_ = new core::CalibrationResult(
        core::calibrate_prototype(*proto_, core::CalibrationConfig{}, rng));
  }
  static void TearDownTestSuite() {
    delete calib_;
    delete proto_;
    proto_ = nullptr;
    calib_ = nullptr;
  }
  static sim::Prototype* proto_;
  static core::CalibrationResult* calib_;
};

sim::Prototype* ClosedLoopFixture::proto_ = nullptr;
core::CalibrationResult* ClosedLoopFixture::calib_ = nullptr;

TEST_F(ClosedLoopFixture, SlowLinearMotionKeepsOptimalThroughput) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  const motion::LinearStrokeMotion profile(proto_->nominal_rig_pose,
                                           {1, 0, 0}, 0.15, {0.10});
  const RunResult r = run_link_simulation(*proto_, controller, profile);
  EXPECT_GT(r.total_up_fraction, 0.999);
  EXPECT_GT(r.realignments, 50);
}

TEST_F(ClosedLoopFixture, ExcessiveLinearSpeedBreaksLink) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  const motion::LinearStrokeMotion profile(proto_->nominal_rig_pose,
                                           {1, 0, 0}, 0.15, {1.5});
  const RunResult r = run_link_simulation(*proto_, controller, profile);
  EXPECT_LT(r.total_up_fraction, 0.9);
}

TEST_F(ClosedLoopFixture, SlowAngularMotionKeepsOptimalThroughput) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  const motion::AngularStrokeMotion profile(
      proto_->nominal_rig_pose, {0, 1, 0}, util::deg_to_rad(10.0),
      {util::deg_to_rad(8.0)});
  const RunResult r = run_link_simulation(*proto_, controller, profile);
  EXPECT_GT(r.total_up_fraction, 0.995);
}

TEST_F(ClosedLoopFixture, WindowsCarrySpeedAnnotations) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  const motion::LinearStrokeMotion profile(proto_->nominal_rig_pose,
                                           {1, 0, 0}, 0.1, {0.08});
  const RunResult r = run_link_simulation(*proto_, controller, profile);
  ASSERT_GT(r.windows.size(), 10u);
  bool saw_speed = false;
  for (const auto& w : r.windows) {
    EXPECT_GE(w.up_fraction, 0.0);
    EXPECT_LE(w.up_fraction, 1.0);
    if (w.linear_speed_mps > 0.05) saw_speed = true;
  }
  EXPECT_TRUE(saw_speed);
}

TEST_F(ClosedLoopFixture, ThroughputIsUpFractionTimesGoodput) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  const motion::StillMotion profile(proto_->nominal_rig_pose, 2.0);
  const RunResult r = run_link_simulation(*proto_, controller, profile);
  for (const auto& w : r.windows) {
    EXPECT_NEAR(w.throughput_gbps,
                w.up_fraction * proto_->scene.config().sfp.goodput_gbps,
                1e-9);
  }
}

}  // namespace
}  // namespace cyclops::link

#include <gtest/gtest.h>

#include <cmath>

#include "opt/levmar.hpp"
#include "opt/linalg.hpp"
#include "opt/nelder_mead.hpp"
#include "util/rng.hpp"

namespace cyclops::opt {
namespace {

// ---- linalg ----

TEST(LinAlgTest, NormalMatrix) {
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  a(2, 0) = 5; a(2, 1) = 6;
  const Matrix n = normal_matrix(a);
  EXPECT_DOUBLE_EQ(n(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(n(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(n(1, 0), 44.0);
  EXPECT_DOUBLE_EQ(n(1, 1), 56.0);
}

TEST(LinAlgTest, TransposeTimes) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  const std::vector<double> b{5.0, 6.0};
  const auto r = transpose_times(a, b);
  EXPECT_DOUBLE_EQ(r[0], 23.0);
  EXPECT_DOUBLE_EQ(r[1], 34.0);
}

TEST(LinAlgTest, SolveSpd) {
  Matrix m(2, 2);
  m(0, 0) = 4; m(0, 1) = 1;
  m(1, 0) = 1; m(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(solve_spd(m, std::vector<double>{1.0, 2.0}, x));
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(LinAlgTest, SolveSpdRejectsIndefinite) {
  Matrix m(2, 2);
  m(0, 0) = 1; m(0, 1) = 2;
  m(1, 0) = 2; m(1, 1) = 1;  // eigenvalues 3, -1
  std::vector<double> x;
  EXPECT_FALSE(solve_spd(m, std::vector<double>{1.0, 1.0}, x));
}

TEST(LinAlgTest, SolveGeneralWithPivoting) {
  Matrix m(3, 3);
  m(0, 0) = 0; m(0, 1) = 2; m(0, 2) = 1;   // zero pivot forces a swap
  m(1, 0) = 1; m(1, 1) = 1; m(1, 2) = 1;
  m(2, 0) = 2; m(2, 1) = 0; m(2, 2) = -1;
  const std::vector<double> b{4.0, 3.0, 1.0};
  std::vector<double> x;
  ASSERT_TRUE(solve_general(m, b, x));
  EXPECT_NEAR(0 * x[0] + 2 * x[1] + 1 * x[2], 4.0, 1e-12);
  EXPECT_NEAR(1 * x[0] + 1 * x[1] + 1 * x[2], 3.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 0 * x[1] - 1 * x[2], 1.0, 1e-12);
}

TEST(LinAlgTest, SolveGeneralSingularFails) {
  Matrix m(2, 2);
  m(0, 0) = 1; m(0, 1) = 2;
  m(1, 0) = 2; m(1, 1) = 4;
  std::vector<double> x;
  EXPECT_FALSE(solve_general(m, {1.0, 2.0}, x));
}

TEST(LinAlgTest, RandomSpdSystems) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(8);
    Matrix a(n + 2, n);
    for (std::size_t i = 0; i < n + 2; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    Matrix m = normal_matrix(a);
    for (std::size_t d = 0; d < n; ++d) m(d, d) += 0.5;  // ensure PD
    std::vector<double> b(n);
    for (auto& v : b) v = rng.normal();
    std::vector<double> x;
    ASSERT_TRUE(solve_spd(m, b, x));
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) sum += m(i, j) * x[j];
      EXPECT_NEAR(sum, b[i], 1e-9);
    }
  }
}

// ---- numeric jacobian ----

TEST(JacobianTest, MatchesAnalytic) {
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {p[0] * p[0] + 3.0 * p[1], std::sin(p[0])};
  };
  Matrix jac;
  const std::vector<double> at{2.0, -1.0};
  numeric_jacobian(fn, at, 1e-7, jac);
  ASSERT_EQ(jac.rows(), 2u);
  ASSERT_EQ(jac.cols(), 2u);
  EXPECT_NEAR(jac(0, 0), 4.0, 1e-5);
  EXPECT_NEAR(jac(0, 1), 3.0, 1e-5);
  EXPECT_NEAR(jac(1, 0), std::cos(2.0), 1e-5);
  EXPECT_NEAR(jac(1, 1), 0.0, 1e-5);
}

// ---- Levenberg-Marquardt ----

TEST(LevMarTest, LinearLeastSquaresExact) {
  // Fit y = a x + b to exact data.
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const ResidualFn fn = [&](std::span<const double> p,
                            std::vector<double>& r) {
    r.resize(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double y = 2.5 * xs[i] - 1.0;
      r[i] = p[0] * xs[i] + p[1] - y;
    }
  };
  const auto result = levenberg_marquardt(fn, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.params[0], 2.5, 1e-6);
  EXPECT_NEAR(result.params[1], -1.0, 1e-6);
  EXPECT_LT(result.final_cost, 1e-12);
}

TEST(LevMarTest, ExponentialFit) {
  // y = a * exp(b x): a classic nonlinear benchmark.
  util::Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(3.0 * std::exp(-1.2 * x) + rng.normal(0.0, 1e-4));
  }
  const ResidualFn fn = [&](std::span<const double> p,
                            std::vector<double>& r) {
    r.resize(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * std::exp(p[1] * xs[i]) - ys[i];
    }
  };
  const auto result = levenberg_marquardt(fn, {1.0, 0.0});
  EXPECT_NEAR(result.params[0], 3.0, 1e-2);
  EXPECT_NEAR(result.params[1], -1.2, 1e-2);
}

TEST(LevMarTest, RosenbrockAsResiduals) {
  // Rosenbrock = (1-x)^2 + 100 (y - x^2)^2, as two residuals.
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])};
  };
  const auto result = levenberg_marquardt(fn, {-1.2, 1.0});
  EXPECT_NEAR(result.params[0], 1.0, 1e-5);
  EXPECT_NEAR(result.params[1], 1.0, 1e-5);
}

TEST(LevMarTest, ReducesCostMonotonically) {
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {p[0] - 4.0, 2.0 * (p[1] + 3.0), p[0] * p[1] + 12.0};
  };
  const auto result = levenberg_marquardt(fn, {0.0, 0.0});
  EXPECT_LE(result.final_cost, result.initial_cost);
}

TEST(LevMarTest, HandlesOverparameterizedProblem) {
  // Only the sum p0+p1 is observable; LM must still converge (damping
  // handles the singular JtJ) — the same situation as the 25-parameter
  // GMA fit.
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {p[0] + p[1] - 5.0};
  };
  const auto result = levenberg_marquardt(fn, {0.0, 0.0});
  EXPECT_NEAR(result.params[0] + result.params[1], 5.0, 1e-6);
}

TEST(LevMarTest, RespectsMaxIterations) {
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {std::sin(p[0]) + 2.0};  // unreachable zero
  };
  LevMarOptions options;
  options.max_iterations = 3;
  const auto result = levenberg_marquardt(fn, {0.0}, options);
  EXPECT_LE(result.iterations, 3);
}

// ---- Nelder-Mead ----

TEST(NelderMeadTest, QuadraticBowl) {
  const ScalarFn fn = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto result = nelder_mead(fn, {0.0, 0.0});
  EXPECT_NEAR(result.params[0], 3.0, 1e-4);
  EXPECT_NEAR(result.params[1], -2.0, 1e-4);
  EXPECT_TRUE(result.converged);
}

TEST(NelderMeadTest, Rosenbrock2D) {
  const ScalarFn fn = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_evaluations = 10000;
  const auto result = nelder_mead(fn, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.params[0], 1.0, 1e-2);
  EXPECT_NEAR(result.params[1], 1.0, 1e-2);
}

TEST(NelderMeadTest, FourDimensional) {
  const ScalarFn fn = [](std::span<const double> x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += d * d;
    }
    return s;
  };
  const auto result = nelder_mead(fn, {5.0, 5.0, 5.0, 5.0});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.params[i], static_cast<double>(i), 1e-3);
  }
}

TEST(NelderMeadTest, RespectsEvaluationBudget) {
  int calls = 0;
  const ScalarFn fn = [&calls](std::span<const double> x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions options;
  options.max_evaluations = 50;
  nelder_mead(fn, {100.0}, options);
  EXPECT_LE(calls, 55);  // small overshoot allowed for the final shrink
}

TEST(NelderMeadTest, StartingAtOptimumStaysThere) {
  const ScalarFn fn = [](std::span<const double> x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  const auto result = nelder_mead(fn, {0.0, 0.0});
  EXPECT_NEAR(result.value, 0.0, 1e-8);
}

// Parameterized: LM converges from a sweep of starting points.
class LevMarStartSweep : public ::testing::TestWithParam<double> {};

TEST_P(LevMarStartSweep, ConvergesToSameMinimum) {
  const ResidualFn fn = [](std::span<const double> p,
                           std::vector<double>& r) {
    r = {p[0] * p[0] - 4.0, p[0] - 2.0};  // root at p0 = 2
  };
  const auto result = levenberg_marquardt(fn, {GetParam()});
  EXPECT_NEAR(result.params[0], 2.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Starts, LevMarStartSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 5.0, 10.0));

}  // namespace
}  // namespace cyclops::opt

// Closed-loop event engine vs the legacy fixed-step simulator.  The two
// are not bit-identical by design (reports fire at exact capture times
// instead of the next physics step), but on the same rig and motion they
// must tell the same story — and the event path must report exact-time
// realignment events through the SessionLog.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "link/event_session.hpp"
#include "link/fso_link.hpp"
#include "link/multi_tx.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "util/units.hpp"

namespace cyclops::link {
namespace {

struct Rig {
  sim::Prototype proto;
  core::CalibrationResult calib;
};

Rig make_rig(std::uint64_t seed) {
  sim::Prototype proto = sim::make_prototype(seed, sim::prototype_10g_config());
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
  return {std::move(proto), std::move(calib)};
}

motion::MixedRandomMotion test_profile(const geom::Pose& base) {
  motion::MixedRandomMotion::Config config;
  config.duration_s = 5.0;
  config.max_linear_speed = 0.15;
  config.max_angular_speed = util::deg_to_rad(20.0);
  return motion::MixedRandomMotion(base, config, util::Rng(99));
}

TEST(EventSessionTest, MatchesLegacySimulationClosely) {
  // Two identically-seeded rigs: the legacy loop and the event engine
  // both consume tracker randomness, so they cannot share one prototype.
  Rig legacy_rig = make_rig(42);
  Rig event_rig = make_rig(42);
  const auto profile = test_profile(legacy_rig.proto.nominal_rig_pose);

  core::TpController legacy_ctl(legacy_rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  const RunResult legacy =
      run_link_simulation(legacy_rig.proto, legacy_ctl, profile);

  core::TpController event_ctl(event_rig.calib.make_pointing_solver(),
                               core::TpConfig{});
  SessionLog log;
  EventSessionStats stats;
  const RunResult event = run_link_session_events(
      event_rig.proto, event_ctl, profile, SimOptions{}, &log, &stats);

  EXPECT_NEAR(event.total_up_fraction, legacy.total_up_fraction, 0.05);
  EXPECT_EQ(event.windows.size(), legacy.windows.size());
  // Report cadence is the same 12-13 ms, so realignment counts are close
  // (the event path also counts commands still pending at session end).
  EXPECT_NEAR(event.realignments, legacy.realignments,
              0.1 * legacy.realignments + 5.0);
  EXPECT_GT(stats.events, 0u);
  EXPECT_EQ(stats.events, stats.scheduled);

  // Every realignment the log saw landed at its exact apply instant; with
  // a ~1.85 ms pointing latency over jittered capture times these do not
  // sit on the 0.5 ms physics grid.
  const int logged = log.count(SessionEventKind::kRealignment);
  EXPECT_GT(logged, 0);
  EXPECT_LE(logged, event.realignments);
  bool any_off_grid = false;
  for (const auto& entry : log.events()) {
    if (entry.kind == SessionEventKind::kRealignment &&
        entry.time % 500 != 0) {
      any_off_grid = true;
      break;
    }
  }
  EXPECT_TRUE(any_off_grid);
}

TEST(EventSessionTest, WindowsCarrySpeedAndPower) {
  Rig rig = make_rig(7);
  const auto profile = test_profile(rig.proto.nominal_rig_pose);
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  const RunResult run =
      run_link_session_events(rig.proto, controller, profile);
  ASSERT_FALSE(run.windows.empty());
  // 5 s / 50 ms windows.
  EXPECT_EQ(run.windows.size(), 100u);
  for (const auto& w : run.windows) {
    EXPECT_GE(w.up_fraction, 0.0);
    EXPECT_LE(w.up_fraction, 1.0);
    EXPECT_GE(w.power_ok_fraction, 0.0);
    EXPECT_LE(w.power_ok_fraction, 1.0);
  }
  EXPECT_GT(run.total_up_fraction, 0.5);
}

TEST(EventSessionTest, ZeroDurationIsSafe) {
  Rig rig = make_rig(7);
  const motion::StillMotion profile(rig.proto.nominal_rig_pose, 0.0);
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  EventSessionStats stats;
  const RunResult run = run_link_session_events(
      rig.proto, controller, profile, SimOptions{}, nullptr, &stats);
  EXPECT_TRUE(run.windows.empty());
  EXPECT_DOUBLE_EQ(run.total_up_fraction, 0.0);
  EXPECT_EQ(stats.events, 0u);
}

}  // namespace
}  // namespace cyclops::link

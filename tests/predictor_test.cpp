#include <gtest/gtest.h>

#include <cmath>

#include "tracking/predictor.hpp"
#include "util/units.hpp"

namespace cyclops::tracking {
namespace {

PoseReport report_at(double t_ms, const geom::Pose& pose) {
  PoseReport r;
  r.capture_time = util::us_from_ms(t_ms);
  r.delivery_time = r.capture_time + 500;
  r.pose = pose;
  return r;
}

TEST(ScalarKalmanTest, ConvergesToConstantVelocity) {
  ScalarCvKalman kalman{PredictorConfig{}};
  const double v = 0.25;  // m/s
  for (int i = 0; i < 40; ++i) {
    const double t = 0.0125 * i;
    kalman.update(t, v * t);
  }
  EXPECT_NEAR(kalman.velocity(), v, 0.01);
  // Extrapolate 15 ms ahead.
  const double t_pred = 0.0125 * 39 + 0.015;
  EXPECT_NEAR(kalman.predict(t_pred), v * t_pred, 0.5e-3);
}

TEST(ScalarKalmanTest, StationarySignalStaysPut) {
  ScalarCvKalman kalman{PredictorConfig{}};
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    kalman.update(0.0125 * i, 1.0 + rng.normal(0.0, 0.2e-3));
  }
  EXPECT_NEAR(kalman.velocity(), 0.0, 0.02);
  EXPECT_NEAR(kalman.predict(0.0125 * 99 + 0.02), 1.0, 1e-3);
}

TEST(ScalarKalmanTest, AdaptsAfterVelocityChange) {
  ScalarCvKalman kalman{PredictorConfig{}};
  double x = 0.0;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 0.0125;
    x += 0.2 * 0.0125;
    kalman.update(t, x);
  }
  // Reverse direction; within ~10 reports the velocity should flip.
  for (int i = 0; i < 12; ++i) {
    t += 0.0125;
    x -= 0.2 * 0.0125;
    kalman.update(t, x);
  }
  EXPECT_LT(kalman.velocity(), -0.1);
}

TEST(PosePredictorTest, NeedsTwoReports) {
  PosePredictor predictor;
  EXPECT_FALSE(predictor.predict(util::us_from_ms(20)).has_value());
  predictor.update(report_at(0.0, geom::Pose::identity()));
  EXPECT_FALSE(predictor.predict(util::us_from_ms(20)).has_value());
  predictor.update(report_at(12.5, geom::Pose::identity()));
  EXPECT_TRUE(predictor.predict(util::us_from_ms(20)).has_value());
}

TEST(PosePredictorTest, ExtrapolatesLinearMotion) {
  PosePredictor predictor;
  const geom::Vec3 v{0.3, 0.0, 0.1};  // m/s
  for (int i = 0; i < 30; ++i) {
    const double t_ms = 12.5 * i;
    predictor.update(report_at(
        t_ms, geom::Pose{geom::Mat3::identity(), v * (t_ms * 1e-3)}));
  }
  const double t_pred_ms = 12.5 * 29 + 14.0;
  const auto predicted = predictor.predict(util::us_from_ms(t_pred_ms));
  ASSERT_TRUE(predicted.has_value());
  const geom::Vec3 expected = v * (t_pred_ms * 1e-3);
  EXPECT_LT(geom::distance(predicted->translation(), expected), 1.5e-3);
}

TEST(PosePredictorTest, ExtrapolatesRotation) {
  PosePredictor predictor;
  const double rate = util::deg_to_rad(20.0);  // rad/s about y
  for (int i = 0; i < 30; ++i) {
    const double t_ms = 12.5 * i;
    predictor.update(report_at(
        t_ms, geom::Pose{geom::Mat3::rotation({0, 1, 0}, rate * t_ms * 1e-3),
                         {0, 0, 0}}));
  }
  const double t_pred_ms = 12.5 * 29 + 14.0;
  const auto predicted = predictor.predict(util::us_from_ms(t_pred_ms));
  ASSERT_TRUE(predicted.has_value());
  const geom::Pose expected{
      geom::Mat3::rotation({0, 1, 0}, rate * t_pred_ms * 1e-3), {0, 0, 0}};
  EXPECT_LT(geom::rotation_distance(*predicted, expected), 2e-3);
}

TEST(PosePredictorTest, HorizonIsCapped) {
  PredictorConfig config;
  config.max_horizon_ms = 10.0;
  PosePredictor predictor(config);
  const geom::Vec3 v{1.0, 0.0, 0.0};
  for (int i = 0; i < 20; ++i) {
    const double t_ms = 12.5 * i;
    predictor.update(report_at(
        t_ms, geom::Pose{geom::Mat3::identity(), v * (t_ms * 1e-3)}));
  }
  const double last_ms = 12.5 * 19;
  // Ask 100 ms ahead: must extrapolate only 10 ms.
  const auto predicted = predictor.predict(util::us_from_ms(last_ms + 100.0));
  ASSERT_TRUE(predicted.has_value());
  const double expected_x = (last_ms + 10.0) * 1e-3;
  EXPECT_NEAR(predicted->translation().x, expected_x, 2e-3);
}

TEST(PosePredictorTest, PredictionBeatsStaleReportOnMovingTarget) {
  // The whole point: against a constant-velocity target, the predicted
  // pose at apply time is closer to truth than the raw (last) report.
  PosePredictor predictor;
  const geom::Vec3 v{0.3, 0.0, 0.0};
  double last_ms = 0.0;
  for (int i = 0; i < 30; ++i) {
    last_ms = 12.5 * i;
    predictor.update(report_at(
        last_ms, geom::Pose{geom::Mat3::identity(), v * (last_ms * 1e-3)}));
  }
  const double apply_ms = last_ms + 14.0;
  const geom::Vec3 truth = v * (apply_ms * 1e-3);
  const geom::Vec3 stale = v * (last_ms * 1e-3);
  const auto predicted = predictor.predict(util::us_from_ms(apply_ms));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_LT(geom::distance(predicted->translation(), truth),
            geom::distance(stale, truth) * 0.3);
}

}  // namespace
}  // namespace cyclops::tracking

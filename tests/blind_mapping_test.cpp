#include <gtest/gtest.h>
#include "core/calibration.hpp"
#include "core/evaluation.hpp"
namespace cyclops::core {
namespace {

TEST(BlindMappingTest, SelfCalibratesWithoutManualMeasurement) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);

  // Stage 1 as usual.
  const galvo::GalvoSpec spec = galvo::gvs102_spec();
  const GmaModel guess = nominal_kspace_guess(proto.config.board_distance);
  const auto tx_samples = collect_board_samples(
      galvo::GalvoMirror(proto.tx_galvo_truth, spec), proto.k_from_tx_gma,
      BoardConfig{}, rng);
  const auto rx_samples = collect_board_samples(
      galvo::GalvoMirror(proto.rx_galvo_truth, spec), proto.k_from_rx_gma,
      BoardConfig{}, rng);
  const auto tx_fit = fit_kspace_model(tx_samples, guess);
  const auto rx_fit = fit_kspace_model(rx_samples, guess);

  // Stage-2 tuples as usual.
  ExhaustiveAligner aligner;
  std::vector<AlignedSample> tuples;
  sim::Voltages hint{};
  for (int i = 0; i < 25; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto.nominal_rig_pose, 0.18, 0.10, rng);
    proto.scene.set_rig_pose(pose);
    const AlignResult aligned = aligner.align(proto.scene, hint);
    if (!aligned.converged()) continue;
    hint = aligned.voltages;
    tuples.push_back({aligned.voltages, proto.tracker.report(0, pose).pose});
  }
  ASSERT_GE(tuples.size(), 20u);

  // Blind fit: NO manual guesses at all.
  const MappingFitReport mapping =
      fit_mapping_blind(tx_fit.model, rx_fit.model, tuples, rng);
  EXPECT_LT(mapping.avg_coincidence_m, 20e-3);

  // The resulting pointing must bring the link up at a fresh pose.
  PointingSolver solver(tx_fit.model, rx_fit.model, mapping.map_tx,
                        mapping.map_rx, PointingOptions{});
  proto.scene.set_rig_pose(proto.nominal_rig_pose);
  const geom::Pose psi =
      proto.tracker.report(0, proto.nominal_rig_pose).pose;
  const PointingResult p = solver.solve(psi, {});
  ASSERT_TRUE(p.converged);
  EXPECT_GE(proto.scene.received_power_dbm(p.voltages),
            proto.scene.config().sfp.rx_sensitivity_dbm);
}

}  // namespace
}  // namespace cyclops::core

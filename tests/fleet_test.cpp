// session::Fleet determinism contract: a fleet run is byte-identical to
// running every session alone — Report fields compared with ==, doubles
// included, plus the JSONL metric exports — at ANY driver-pool width,
// chunk count, or workspace-reuse setting; and the shard rollup is a
// pure merge: order-independent, reconciling exactly against the
// per-session sums.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "obs/config.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "session/catalog.hpp"
#include "session/fleet.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

/// A small mixed fleet: every catalog variant, several seeds each.
std::vector<session::SessionSpec> mixed_specs(std::size_t n) {
  std::vector<session::SessionSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    session::SessionSpec spec;
    spec.variant = static_cast<session::Variant>(i % session::kVariantCount);
    spec.seed = 1000 + i;
    spec.duration_s = 0.1;
    spec.motion = static_cast<std::uint32_t>(i % 3);
    specs.push_back(spec);
  }
  return specs;
}

void expect_reports_identical(const session::Report& a,
                              const session::Report& b, std::size_t i) {
  EXPECT_EQ(a.variant, b.variant) << "spec " << i;
  EXPECT_EQ(a.seed, b.seed) << "spec " << i;
  EXPECT_EQ(a.events, b.events) << "spec " << i;
  EXPECT_EQ(a.slots, b.slots) << "spec " << i;
  // Bit-exact, not approximate: the whole point of the contract.
  EXPECT_EQ(a.served_fraction, b.served_fraction) << "spec " << i;
  EXPECT_EQ(a.avg_rate_gbps, b.avg_rate_gbps) << "spec " << i;
  EXPECT_EQ(a.switches, b.switches) << "spec " << i;
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl) << "spec " << i;
}

TEST(FleetTest, FleetMatchesAloneRunsAtAnyDriverWidth) {
  const std::vector<session::SessionSpec> specs = mixed_specs(24);
  const session::RunnerFactory factory = session::catalog_factory();

  // Baseline: every session alone, no fleet machinery at all.
  session::SessionExecution alone;
  alone.capture_metrics = true;
  std::vector<session::Report> baseline;
  baseline.reserve(specs.size());
  for (const session::SessionSpec& spec : specs) {
    baseline.push_back(session::run_session(spec, factory, alone));
  }

  std::string rollup_baseline;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    util::ThreadPool pool(width);
    session::FleetConfig config;
    config.capture_metrics = true;
    const session::FleetResult fleet =
        session::run_fleet(specs, factory, config, &pool);
    ASSERT_EQ(fleet.reports.size(), specs.size()) << "width " << width;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      expect_reports_identical(fleet.reports[i], baseline[i], i);
    }
    EXPECT_TRUE(fleet.reconciled) << "width " << width;
    // The rolled-up registry must also be byte-stable across widths.
    const std::string rollup = obs::to_jsonl(*fleet.rollup);
    if (rollup_baseline.empty()) {
      rollup_baseline = rollup;
    } else {
      EXPECT_EQ(rollup, rollup_baseline) << "width " << width;
    }
  }
}

TEST(FleetTest, ChunkingAndWorkspaceReuseDoNotChangeBytes) {
  const std::vector<session::SessionSpec> specs = mixed_specs(18);
  const session::RunnerFactory factory = session::catalog_factory();
  util::ThreadPool pool(2);

  std::vector<session::Report> baseline;
  std::string rollup_baseline;
  for (const bool reuse : {true, false}) {
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{5},
                                     std::size_t{18}}) {
      session::FleetConfig config;
      config.chunks = chunks;
      config.capture_metrics = true;
      config.reuse_workspace = reuse;
      const session::FleetResult fleet =
          session::run_fleet(specs, factory, config, &pool);
      ASSERT_EQ(fleet.reports.size(), specs.size());
      const std::string rollup = obs::to_jsonl(*fleet.rollup);
      if (baseline.empty()) {
        baseline = fleet.reports;
        rollup_baseline = rollup;
        continue;
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        expect_reports_identical(fleet.reports[i], baseline[i], i);
      }
      EXPECT_EQ(rollup, rollup_baseline)
          << "reuse=" << reuse << " chunks=" << chunks;
    }
  }
}

TEST(FleetTest, RollupReconcilesAgainstPerSessionSums) {
  const std::vector<session::SessionSpec> specs = mixed_specs(12);
  const session::FleetResult fleet =
      session::run_fleet(specs, session::catalog_factory());
  EXPECT_TRUE(fleet.reconciled);

  std::uint64_t events = 0, slots = 0;
  for (const session::Report& report : fleet.reports) {
    events += report.events;
    slots += report.slots;
  }
  EXPECT_EQ(fleet.totals.sessions, specs.size());
  EXPECT_EQ(fleet.totals.events, events);
  EXPECT_EQ(fleet.totals.slots, slots);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(fleet.rollup->counter("fleet_sessions_total").value(),
              specs.size());
    EXPECT_EQ(fleet.rollup->counter("fleet_events_total").value(), events);
    EXPECT_EQ(fleet.rollup->counter("fleet_slots_total").value(), slots);
  }
}

TEST(FleetTest, ShardRollupIsOrderIndependent) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  // One registry per session, captured the same way fleet shards are.
  const std::vector<session::SessionSpec> specs = mixed_specs(48);
  const session::RunnerFactory factory = session::catalog_factory();
  std::vector<std::unique_ptr<obs::Registry>> per_session;
  per_session.reserve(specs.size());
  for (const session::SessionSpec& spec : specs) {
    auto registry = std::make_unique<obs::Registry>();
    session::SessionExecution exec;
    exec.rollup = registry.get();
    session::run_session(spec, factory, exec);
    per_session.push_back(std::move(registry));
  }

  std::vector<std::size_t> order(per_session.size());
  std::iota(order.begin(), order.end(), 0);
  std::string baseline;
  util::Rng rng(99);
  for (int round = 0; round < 4; ++round) {
    obs::Registry rollup;
    for (const std::size_t i : order) rollup.merge_from(*per_session[i]);
    const std::string jsonl = obs::to_jsonl(rollup);
    if (round == 0) {
      baseline = jsonl;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(jsonl, baseline) << "merge order changed the rollup bytes";
    }
    if (round == 0) {
      std::reverse(order.begin(), order.end());
    } else {
      // Deterministic shuffle for the later rounds.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.uniform_index(
                                    static_cast<std::uint32_t>(i))]);
      }
    }
  }
}

}  // namespace
}  // namespace cyclops

// The deterministic parallel runtime: ThreadPool/parallel_for semantics
// plus the bit-identical-at-any-thread-count contract for the hot paths
// that dispatch to it (dataset eval, trace generation, LM Jacobians).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "opt/levmar.hpp"
#include "opt/linalg.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

// ---- ThreadPool / parallel_for semantics ----

TEST(ThreadPoolTest, ChunkRangesPartitionExactly) {
  for (std::size_t n : {1u, 2u, 7u, 30u, 101u}) {
    for (std::size_t chunks : {1u, 2u, 3u, 7u}) {
      if (chunks > n) continue;
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = util::ThreadPool::chunk_range(n, chunks, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GE(end, begin);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 2u, 5u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(1000);
    util::parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroAndOneItemRanges) {
  util::ThreadPool pool(4);
  int calls = 0;
  util::parallel_for(0, [&](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 0);
  util::parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; },
                     pool);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for(
      8,
      [&](std::size_t outer) {
        // Nested dispatch on the same pool must not deadlock the fixed
        // worker set; it runs inline on the executing thread.
        util::parallel_for(
            8,
            [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); },
            pool);
      },
      pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapOrdersResults) {
  util::ThreadPool pool(4);
  const std::vector<int> out = util::parallel_map<int>(
      257, [](std::size_t i) { return static_cast<int>(i * i); }, pool);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, SerialScopeForcesInline) {
  util::ThreadPool pool(4);
  util::ThreadPool::SerialScope scope;
  // Under the scope everything runs on this thread: a plain (unsynchronized)
  // counter is safe, and under TSan this would flag any stray worker.
  int count = 0;
  util::parallel_for(100, [&](std::size_t) { ++count; }, pool);
  EXPECT_EQ(count, 100);
}

TEST(ThreadPoolTest, ParseThreadCount) {
  // The pure parser behind CYCLOPS_THREADS resolution.
  EXPECT_EQ(util::ThreadPool::parse_thread_count("3", 8), 3u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("1", 8), 1u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count(nullptr, 8), 8u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("garbage", 8), 8u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("", 8), 8u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("0", 8), 8u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("-2", 8), 8u);
  EXPECT_EQ(util::ThreadPool::parse_thread_count("3x", 8), 8u);
}

TEST(ThreadPoolTest, RequestedThreadsIsResolvedOnce) {
  // The env var is read exactly once per process; later changes must not
  // move the cached value (single source of truth for every default pool).
  const std::size_t resolved = util::ThreadPool::requested_threads();
  EXPECT_GE(resolved, 1u);
  setenv("CYCLOPS_THREADS", "1234", 1);
  EXPECT_EQ(util::ThreadPool::requested_threads(), resolved);
  unsetenv("CYCLOPS_THREADS");
  util::ThreadPool pool;  // default construction uses the cached value
  EXPECT_EQ(pool.thread_count(), resolved);
}

// ---- keyed RNG split ----

TEST(RngSplitTest, KeyedSplitIsPureAndOrderIndependent) {
  util::Rng parent(99);
  const util::Rng snapshot = parent;
  util::Rng a0 = snapshot.split(0);
  util::Rng a7 = snapshot.split(7);
  util::Rng b7 = snapshot.split(7);  // same key, any order -> same stream
  util::Rng b0 = snapshot.split(0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a0.next_u64(), b0.next_u64());
    EXPECT_EQ(a7.next_u64(), b7.next_u64());
  }
  // Different keys give different streams; keyed split leaves the parent
  // untouched.
  EXPECT_NE(util::Rng(99).split(0).next_u64(),
            util::Rng(99).split(1).next_u64());
  util::Rng untouched(99);
  EXPECT_EQ(parent.next_u64(), untouched.next_u64());
}

// ---- bit-identical hot paths at 1, 2, N threads ----

motion::Trace off_axis_trace(double mps) {
  // Constant-rate translation fast enough to produce off-slots.
  motion::Trace trace;
  for (int i = 0; i <= 300; ++i) {
    const double t_s = i * 0.01;
    trace.samples.push_back(
        {static_cast<util::SimTimeUs>(t_s * 1e6),
         geom::Pose{geom::Mat3::identity(), {mps * t_s, 0.0, 0.0}}});
  }
  return trace;
}

TEST(ParallelEquivalenceTest, EvaluateDatasetMatchesSerial) {
  std::vector<motion::Trace> traces;
  for (int i = 0; i < 7; ++i) traces.push_back(off_axis_trace(0.05 * i));

  const link::SlotEvalConfig config;
  const link::DatasetEvalResult serial =
      link::evaluate_dataset(traces, config, util::ThreadPool::serial());
  EXPECT_GT(serial.pooled.off_slots, 0);

  for (std::size_t threads : {2u, 5u, 16u}) {
    util::ThreadPool pool(threads);
    const link::DatasetEvalResult parallel =
        link::evaluate_dataset(traces, config, pool);
    EXPECT_EQ(parallel.per_trace_off_fraction, serial.per_trace_off_fraction);
    EXPECT_EQ(parallel.pooled.total_slots, serial.pooled.total_slots);
    EXPECT_EQ(parallel.pooled.off_slots, serial.pooled.off_slots);
    EXPECT_EQ(parallel.pooled.off_per_dirty_frame,
              serial.pooled.off_per_dirty_frame);
  }
}

TEST(ParallelEquivalenceTest, GenerateDatasetMatchesSerial) {
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig config;
  config.duration_s = 5.0;

  util::Rng serial_rng(2022);
  const auto serial = motion::generate_dataset(base, 9, config, serial_rng,
                                               util::ThreadPool::serial());
  ASSERT_EQ(serial.size(), 9u);
  const std::uint64_t expected_next_draw = serial_rng.next_u64();

  for (std::size_t threads : {2u, 4u, 16u}) {
    util::ThreadPool pool(threads);
    util::Rng rng(2022);
    const auto parallel = motion::generate_dataset(base, 9, config, rng, pool);
    // The caller's stream must advance identically too.
    EXPECT_EQ(rng.next_u64(), expected_next_draw);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t t = 0; t < serial.size(); ++t) {
      ASSERT_EQ(parallel[t].samples.size(), serial[t].samples.size());
      for (std::size_t s = 0; s < serial[t].samples.size(); ++s) {
        const auto& ps = parallel[t].samples[s];
        const auto& ss = serial[t].samples[s];
        ASSERT_EQ(ps.time, ss.time);
        const geom::Vec3 dp = ps.pose.translation() - ss.pose.translation();
        ASSERT_EQ(dp.norm(), 0.0);
        for (int r = 0; r < 3; ++r) {
          for (int c = 0; c < 3; ++c) {
            ASSERT_EQ(ps.pose.rotation().m[r][c], ss.pose.rotation().m[r][c]);
          }
        }
      }
    }
  }
}

TEST(ParallelEquivalenceTest, NumericJacobianMatchesSerial) {
  // A dense nonlinear residual with enough parameters to chunk.
  constexpr std::size_t kParams = 11;
  constexpr std::size_t kResiduals = 23;
  const opt::ResidualFn fn = [](std::span<const double> p,
                                std::vector<double>& r) {
    r.resize(kResiduals);
    for (std::size_t i = 0; i < kResiduals; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < p.size(); ++j) {
        acc += std::sin(p[j] * (i + 1)) + p[j] * p[j] * (j + 1);
      }
      r[i] = acc;
    }
  };
  std::vector<double> at(kParams);
  for (std::size_t j = 0; j < kParams; ++j) at[j] = 0.1 * (j + 1);

  opt::Matrix serial;
  opt::JacobianScratch serial_scratch;
  opt::numeric_jacobian(fn, at, 1e-7, kResiduals, serial,
                        serial_scratch, util::ThreadPool::serial());

  // The probing overload agrees with the sized overload.
  opt::Matrix probed;
  opt::numeric_jacobian(fn, at, 1e-7, probed);
  ASSERT_EQ(probed.rows(), serial.rows());
  ASSERT_EQ(probed.cols(), serial.cols());

  for (std::size_t threads : {2u, 3u, 16u}) {
    util::ThreadPool pool(threads);
    opt::Matrix parallel;
    opt::JacobianScratch scratch;
    // Two evaluations through the same scratch: reuse must not leak state.
    for (int pass = 0; pass < 2; ++pass) {
      opt::numeric_jacobian(fn, at, 1e-7, kResiduals, parallel, scratch, pool);
      ASSERT_EQ(parallel.rows(), serial.rows());
      ASSERT_EQ(parallel.cols(), serial.cols());
      for (std::size_t i = 0; i < serial.rows(); ++i) {
        for (std::size_t j = 0; j < serial.cols(); ++j) {
          ASSERT_EQ(parallel(i, j), serial(i, j)) << i << "," << j;
          ASSERT_EQ(probed(i, j), serial(i, j));
        }
      }
    }
  }
}

}  // namespace
}  // namespace cyclops

// Wave-optics cross-validation: the FFT substrate, scalar-field
// propagation against the analytic Gaussian-beam law, and overlap-integral
// coupling against the Gaussian misalignment penalties that the calibrated
// parametric model (optics/coupling.hpp) assumes.
#include <gtest/gtest.h>

#include <cmath>

#include "optics/field.hpp"
#include "optics/gaussian_beam.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cyclops {
namespace {

// ---- FFT ----

TEST(FftTest, DeltaTransformsToFlat) {
  std::vector<util::Complex> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  util::fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<util::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * util::kPi * 5.0 * static_cast<double>(i) /
                         static_cast<double>(n);
    data[i] = {std::cos(phase), std::sin(phase)};
  }
  util::fft(data);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 5) {
      EXPECT_NEAR(std::abs(data[i]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
    }
  }
}

TEST(FftTest, InverseRoundTrip) {
  util::Rng rng(1);
  std::vector<util::Complex> data(128);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  util::fft(data, false);
  util::fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftTest, ParsevalHolds) {
  util::Rng rng(2);
  std::vector<util::Complex> data(256);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), rng.normal()};
    time_energy += std::norm(x);
  }
  util::fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / data.size(), time_energy,
              1e-9 * time_energy);
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<util::Complex> data(6);
  EXPECT_THROW(util::fft(data), std::invalid_argument);
}

TEST(Fft2Test, RoundTrip2d) {
  util::Rng rng(3);
  const std::size_t n = 16;
  std::vector<util::Complex> data(n * n);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  util::fft2(data, n, false);
  util::fft2(data, n, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
  }
}

// ---- Field propagation vs analytic Gaussian-beam law ----

constexpr double kWavelength = 1550e-9;

TEST(FieldTest, GaussianSecondMomentMatchesWaist) {
  const double w0 = 1.0e-3;
  const optics::Field field =
      optics::Field::gaussian(256, 40e-6, kWavelength, w0);
  EXPECT_NEAR(field.second_moment_radius(), w0, w0 * 0.02);
}

TEST(FieldTest, PropagationConservesPower) {
  const optics::Field initial =
      optics::Field::gaussian(256, 40e-6, kWavelength, 1.0e-3);
  optics::Field field = initial;
  field.propagate(2.0);
  EXPECT_NEAR(field.power(), initial.power(), initial.power() * 1e-9);
}

TEST(FieldTest, SpreadingMatchesGaussianBeamFormula) {
  // The wave-optics check of optics/gaussian_beam.cpp: propagate a small
  // waist far enough to diverge measurably and compare w(z).
  const double w0 = 0.5e-3;
  const optics::GaussianBeam analytic(w0, kWavelength);
  for (double z : {0.5, 1.0, 2.0}) {
    optics::Field field =
        optics::Field::gaussian(512, 30e-6, kWavelength, w0);
    field.propagate(z);
    const double expected = analytic.radius_at(z);
    EXPECT_NEAR(field.second_moment_radius(), expected, expected * 0.05)
        << "z = " << z;
  }
}

TEST(FieldTest, CollimatedDesignBarelySpreads) {
  // The justification for the constant-diameter collimated envelope: a
  // 5 mm waist spreads < 1 % over the 2 m link.
  optics::Field field = optics::Field::gaussian(256, 120e-6, kWavelength,
                                                5.0e-3);
  const double before = field.second_moment_radius();
  field.propagate(2.0);
  EXPECT_NEAR(field.second_moment_radius(), before, before * 0.01);
}

// ---- Overlap coupling vs the parametric model's Gaussian penalties ----

TEST(OverlapTest, PerfectModeMatchIsUnity) {
  const auto a = optics::Field::gaussian(128, 40e-6, kWavelength, 1.0e-3);
  EXPECT_NEAR(optics::overlap_coupling(a, a), 1.0, 1e-12);
}

TEST(OverlapTest, LateralOffsetPenaltyIsGaussian) {
  // Analytic: eta = exp(-d^2 / w0^2) for two equal Gaussians offset by d.
  const double w0 = 1.0e-3;
  const auto reference =
      optics::Field::gaussian(128, 40e-6, kWavelength, w0);
  for (double d : {0.2e-3, 0.5e-3, 1.0e-3}) {
    const auto shifted =
        optics::Field::gaussian(128, 40e-6, kWavelength, w0, d, 0.0);
    const double expected = std::exp(-d * d / (w0 * w0));
    EXPECT_NEAR(optics::overlap_coupling(reference, shifted), expected,
                0.02 * expected)
        << "d = " << d;
  }
}

TEST(OverlapTest, TiltPenaltyIsGaussian) {
  // Analytic: eta = exp(-(theta / theta_div)^2), theta_div = lambda/(pi w0).
  const double w0 = 1.0e-3;
  const double theta_div = kWavelength / (util::kPi * w0);
  const auto reference =
      optics::Field::gaussian(256, 20e-6, kWavelength, w0);
  for (double theta : {0.3 * theta_div, 0.7 * theta_div, 1.2 * theta_div}) {
    const auto tilted = optics::Field::gaussian(256, 20e-6, kWavelength, w0,
                                                0.0, 0.0, theta, 0.0);
    const double expected =
        std::exp(-(theta * theta) / (theta_div * theta_div));
    EXPECT_NEAR(optics::overlap_coupling(reference, tilted), expected,
                0.03 * expected)
        << "theta = " << theta;
  }
}

TEST(OverlapTest, ModeSizeMismatchPenalty) {
  // Analytic: eta = (2 w1 w2 / (w1^2 + w2^2))^2.
  const double w1 = 1.0e-3, w2 = 1.8e-3;
  const auto a = optics::Field::gaussian(128, 60e-6, kWavelength, w1);
  const auto b = optics::Field::gaussian(128, 60e-6, kWavelength, w2);
  const double expected =
      std::pow(2.0 * w1 * w2 / (w1 * w1 + w2 * w2), 2.0);
  EXPECT_NEAR(optics::overlap_coupling(a, b), expected, 0.02 * expected);
}

TEST(OverlapTest, ParametricModelShapeIsConsistent) {
  // The calibrated coupling model penalizes misalignment as
  // exp(-2 (d/w_lat)^2): i.e. Gaussian in d — the same *form* wave optics
  // gives (with a scale the calibration absorbs).  Verify log-linearity in
  // d^2 for the wave-optics result.
  const double w0 = 1.0e-3;
  const auto reference =
      optics::Field::gaussian(128, 40e-6, kWavelength, w0);
  const auto eta = [&](double d) {
    const auto shifted =
        optics::Field::gaussian(128, 40e-6, kWavelength, w0, d, 0.0);
    return optics::overlap_coupling(reference, shifted);
  };
  const double r1 = -std::log(eta(0.4e-3)) / (0.4e-3 * 0.4e-3);
  const double r2 = -std::log(eta(0.8e-3)) / (0.8e-3 * 0.8e-3);
  EXPECT_NEAR(r1, r2, 0.05 * r1);
}

}  // namespace
}  // namespace cyclops

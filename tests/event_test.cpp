// Tests for the discrete-event engine (src/event) and the event-driven
// §5.4 trace evaluator: queue ordering and FIFO ties, timer cancellation,
// trace hooks, bit-identity with the fixed-step oracle, determinism
// across thread counts, and the handover edge cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "event/event_queue.hpp"
#include "event/scheduler.hpp"
#include "event/trace_hook.hpp"
#include "link/event_eval.hpp"
#include "link/event_session.hpp"
#include "link/handover.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

// ---- EventQueue ----

event::Event make_event(util::SimTimeUs time, std::int64_t payload = 0) {
  event::Event ev;
  ev.time = time;
  ev.type = 1;
  ev.target = 0;
  ev.i64 = payload;
  return ev;
}

TEST(EventQueueTest, PopsInTimeOrder) {
  event::EventQueue queue;
  queue.push(make_event(3000));
  queue.push(make_event(1000));
  queue.push(make_event(2000));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().time, 1000);
  EXPECT_EQ(queue.pop().time, 2000);
  EXPECT_EQ(queue.pop().time, 3000);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, EqualTimesPopFifo) {
  event::EventQueue queue;
  queue.push(make_event(500, 0));
  queue.push(make_event(500, 1));
  queue.push(make_event(100, -1));
  queue.push(make_event(500, 2));
  EXPECT_EQ(queue.pop().i64, -1);
  // The three t=500 events come back in push order, not heap order.
  EXPECT_EQ(queue.pop().i64, 0);
  EXPECT_EQ(queue.pop().i64, 1);
  EXPECT_EQ(queue.pop().i64, 2);
}

TEST(EventQueueTest, CancelSkipsEntry) {
  event::EventQueue queue;
  queue.push(make_event(1000, 1));
  const event::EventQueue::Id mid = queue.push(make_event(2000, 2));
  queue.push(make_event(3000, 3));
  EXPECT_TRUE(queue.cancel(mid));
  EXPECT_FALSE(queue.cancel(mid));  // double-cancel is a no-op
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().i64, 1);
  EXPECT_EQ(queue.pop().i64, 3);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.cancel(0));  // the reserved invalid id
}

TEST(EventQueueTest, CancelHeadBeforePeek) {
  event::EventQueue queue;
  const event::EventQueue::Id head = queue.push(make_event(100));
  queue.push(make_event(200, 7));
  EXPECT_TRUE(queue.cancel(head));
  ASSERT_NE(queue.peek(), nullptr);
  EXPECT_EQ(queue.peek()->i64, 7);
}

// ---- Scheduler ----

/// Records every event it handles (time + payload).
class RecorderProcess final : public event::Process {
 public:
  void handle(event::Scheduler& sched, const event::Event& ev) override {
    times.push_back(sched.now());
    payloads.push_back(ev.i64);
  }
  const char* name() const noexcept override { return "recorder"; }

  std::vector<util::SimTimeUs> times;
  std::vector<std::int64_t> payloads;
};

TEST(SchedulerTest, DispatchesInOrderAndAdvancesClock) {
  event::Scheduler sched;
  RecorderProcess recorder;
  const event::ProcessId id = sched.add_process(&recorder);

  event::Event ev = make_event(2000, 2);
  ev.target = id;
  sched.schedule(ev);
  ev.time = 1000;
  ev.i64 = 1;
  sched.schedule(ev);

  EXPECT_EQ(sched.run(), 2u);
  EXPECT_EQ(recorder.payloads, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(recorder.times, (std::vector<util::SimTimeUs>{1000, 2000}));
  EXPECT_EQ(sched.now(), 2000);
  EXPECT_EQ(sched.dispatched(), 2u);
  EXPECT_EQ(sched.scheduled(), 2u);
}

TEST(SchedulerTest, CancelledTimerNeverFires) {
  event::Scheduler sched;
  RecorderProcess recorder;
  const event::ProcessId id = sched.add_process(&recorder);

  event::Event ev = make_event(0, 1);
  ev.target = id;
  const event::Timer timer = sched.schedule_after(5000, ev);
  EXPECT_TRUE(timer.valid());
  ev.i64 = 2;
  sched.schedule_after(7000, ev);

  EXPECT_TRUE(sched.cancel(timer));
  EXPECT_FALSE(sched.cancel(timer));  // already cancelled
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(recorder.payloads, (std::vector<std::int64_t>{2}));
  EXPECT_FALSE(sched.cancel(timer));  // already popped: harmless
  EXPECT_FALSE(sched.cancel(event::Timer{}));  // never scheduled
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  event::Scheduler sched;
  RecorderProcess recorder;
  const event::ProcessId id = sched.add_process(&recorder);
  for (int i = 1; i <= 4; ++i) {
    event::Event ev = make_event(i * 1000, i);
    ev.target = id;
    sched.schedule(ev);
  }
  EXPECT_EQ(sched.run_until(2500), 2u);
  EXPECT_EQ(sched.now(), 2500);  // clock lands on the boundary, not 2000
  EXPECT_EQ(recorder.payloads, (std::vector<std::int64_t>{1, 2}));
  // An event exactly at the boundary is included by the next call.
  EXPECT_EQ(sched.run_until(3000), 1u);
  EXPECT_EQ(sched.now(), 3000);
  EXPECT_EQ(sched.run(), 1u);
}

TEST(SchedulerTest, ChainedEventsKeepFifoWithinTime) {
  // A process that, when handling payload 0 at time t, schedules payloads
  // 1 and 2 at the same t: they must dispatch after any event already
  // queued for t (FIFO by schedule order).
  class Chainer final : public event::Process {
   public:
    void handle(event::Scheduler& sched, const event::Event& ev) override {
      order.push_back(ev.i64);
      if (ev.i64 == 0) {
        event::Event next = ev;
        next.i64 = 10;
        sched.schedule(next);
        next.i64 = 11;
        sched.schedule(next);
      }
    }
    const char* name() const noexcept override { return "chainer"; }
    std::vector<std::int64_t> order;
  };

  event::Scheduler sched;
  Chainer chainer;
  const event::ProcessId id = sched.add_process(&chainer);
  event::Event ev = make_event(1000, 0);
  ev.target = id;
  sched.schedule(ev);
  ev.i64 = 5;  // queued before the chained ones exist
  sched.schedule(ev);
  sched.run();
  EXPECT_EQ(chainer.order, (std::vector<std::int64_t>{0, 5, 10, 11}));
}

TEST(TraceHookTest, CounterSeesAllTraffic) {
  event::Scheduler sched;
  event::EventCounter counter;
  sched.add_hook(&counter);
  RecorderProcess recorder;
  const event::ProcessId id = sched.add_process(&recorder);

  event::Event a = make_event(1000);
  a.type = 7;
  a.target = id;
  sched.schedule(a);
  event::Event b = make_event(2000);
  b.type = 9;
  b.target = id;
  sched.schedule(b);
  b.time = 3000;
  const event::Timer timer = sched.schedule(b);
  sched.cancel(timer);
  sched.run();

  EXPECT_EQ(counter.scheduled(), 3u);
  EXPECT_EQ(counter.cancelled(), 1u);
  EXPECT_EQ(counter.dispatched(), 2u);
  EXPECT_EQ(counter.dispatched(7), 1u);
  EXPECT_EQ(counter.dispatched(9), 1u);
  ASSERT_EQ(counter.histogram().size(), 2u);
}

TEST(TraceHookTest, JsonlWriterEmitsOneLinePerDispatch) {
  const auto path =
      std::filesystem::temp_directory_path() / "cyclops_event_trace.jsonl";
  {
    event::Scheduler sched;
    event::JsonlTraceWriter writer(path);
    ASSERT_TRUE(writer.ok());
    sched.add_hook(&writer);
    RecorderProcess recorder;
    const event::ProcessId id = sched.add_process(&recorder);
    event::Event ev = make_event(1250, 42);
    ev.target = id;
    sched.schedule(ev);
    ev.time = 2250;
    sched.schedule(ev);
    sched.run();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"t_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"target\":\"recorder\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::filesystem::remove(path);
}

// ---- Event-driven §5.4 evaluator ----

std::vector<motion::Trace> small_fig16_dataset(int count) {
  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig gen_config;  // fig16 population
  gen_config.max_linear_mps = 0.19;
  gen_config.shift_peak_mps = 0.17;
  gen_config.shift_rate_hz = 0.22;
  return motion::generate_dataset(base, count, gen_config, rng,
                                  util::ThreadPool::serial());
}

TEST(EventEvalTest, MatchesFixedStepExactlyPerTrace) {
  const auto traces = small_fig16_dataset(25);
  link::SlotEvalConfig event_config;  // engine defaults to kEvent
  ASSERT_EQ(event_config.engine, link::EvalEngine::kEvent);
  link::SlotEvalConfig legacy_config;
  legacy_config.engine = link::EvalEngine::kFixedStep;

  std::uint64_t total_dispatched = 0;
  int total_slots = 0;
  for (const auto& trace : traces) {
    link::EventEvalStats stats;
    const link::SlotEvalResult ev =
        link::evaluate_trace_events(trace, event_config, &stats);
    const link::SlotEvalResult fs =
        link::evaluate_trace_fixed_step(trace, legacy_config);
    // Bit-identical: same slot counts AND the same §5.4 frame clustering.
    ASSERT_EQ(ev.total_slots, fs.total_slots);
    ASSERT_EQ(ev.off_slots, fs.off_slots);
    ASSERT_EQ(ev.off_per_dirty_frame, fs.off_per_dirty_frame);
    EXPECT_EQ(stats.dispatched, stats.scheduled);
    total_dispatched += stats.dispatched;
    total_slots += fs.total_slots;
  }
  // The point of the engine: fewer events than slots.  Each 10 ms report
  // interval (~10 slots) costs one report event plus at most a few run
  // events, so the ratio sits near 0.3 — assert it stays well below 1.
  EXPECT_GT(total_dispatched, 0u);
  EXPECT_LT(total_dispatched, static_cast<std::uint64_t>(total_slots) / 2);
}

TEST(EventEvalTest, DispatchThroughEvaluateTraceMatches) {
  const auto traces = small_fig16_dataset(3);
  link::SlotEvalConfig config;
  config.engine = link::EvalEngine::kEvent;
  const link::SlotEvalResult ev = link::evaluate_trace(traces[0], config);
  config.engine = link::EvalEngine::kFixedStep;
  const link::SlotEvalResult fs = link::evaluate_trace(traces[0], config);
  EXPECT_EQ(ev.off_slots, fs.off_slots);
  EXPECT_EQ(ev.total_slots, fs.total_slots);
  EXPECT_EQ(ev.off_per_dirty_frame, fs.off_per_dirty_frame);
}

TEST(EventEvalTest, DatasetPooledResultsMatchAcrossEngines) {
  const auto traces = small_fig16_dataset(25);
  link::SlotEvalConfig event_config;
  link::SlotEvalConfig legacy_config;
  legacy_config.engine = link::EvalEngine::kFixedStep;

  const link::DatasetEvalResult ev = link::evaluate_dataset(
      traces, event_config, util::ThreadPool::serial());
  const link::DatasetEvalResult fs = link::evaluate_dataset(
      traces, legacy_config, util::ThreadPool::serial());
  EXPECT_EQ(ev.per_trace_off_fraction, fs.per_trace_off_fraction);
  EXPECT_EQ(ev.pooled.total_slots, fs.pooled.total_slots);
  EXPECT_EQ(ev.pooled.off_slots, fs.pooled.off_slots);
  EXPECT_EQ(ev.pooled.off_per_dirty_frame, fs.pooled.off_per_dirty_frame);
  EXPECT_GT(ev.events, 0u);
  EXPECT_EQ(fs.events, 0u);
}

TEST(EventEvalTest, DatasetDeterministicAcrossThreadCounts) {
  const auto traces = small_fig16_dataset(25);
  const link::SlotEvalConfig config;  // event engine

  util::ThreadPool one(1), two(2), def(0);
  const link::DatasetEvalResult r1 =
      link::evaluate_dataset(traces, config, one);
  const link::DatasetEvalResult r2 =
      link::evaluate_dataset(traces, config, two);
  const link::DatasetEvalResult rn =
      link::evaluate_dataset(traces, config, def);

  EXPECT_EQ(r1.per_trace_off_fraction, r2.per_trace_off_fraction);
  EXPECT_EQ(r1.per_trace_off_fraction, rn.per_trace_off_fraction);
  EXPECT_EQ(r1.pooled.off_per_dirty_frame, r2.pooled.off_per_dirty_frame);
  EXPECT_EQ(r1.pooled.off_per_dirty_frame, rn.pooled.off_per_dirty_frame);
  EXPECT_EQ(r1.pooled.off_slots, rn.pooled.off_slots);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.events, rn.events);
}

TEST(EventEvalTest, EmptyAndTinyTracesAreSafe) {
  const link::SlotEvalConfig config;
  motion::Trace empty;
  const link::SlotEvalResult r0 = link::evaluate_trace(empty, config);
  EXPECT_EQ(r0.total_slots, 0);
  EXPECT_EQ(r0.off_slots, 0);

  motion::Trace one;
  one.samples.push_back({});
  const link::SlotEvalResult r1 = link::evaluate_trace(one, config);
  const link::SlotEvalResult r1f = link::evaluate_trace_fixed_step(one, config);
  EXPECT_EQ(r1.total_slots, r1f.total_slots);
  EXPECT_EQ(r1.off_slots, r1f.off_slots);
}

// ---- HandoverManager edge cases (legacy slot-polled manager) ----

TEST(HandoverManagerEdgeTest, ZeroTxConfigIsSafe) {
  link::HandoverManager manager(0, link::HandoverConfig{});
  const std::vector<double> none;
  EXPECT_EQ(manager.step(0, none), -1);
  EXPECT_EQ(manager.step(1000, none), -1);
  EXPECT_EQ(manager.switches(), 0);
}

TEST(HandoverManagerEdgeTest, BackToBackHandoversInsideOneSlot) {
  // With zero switch delay the manager can hand over twice at the same
  // instant: 0 -> 2 (best), then 2 -> 1 when the powers flip within the
  // same 1 ms slot.
  link::HandoverConfig config;
  config.switch_delay_s = 0.0;
  config.hysteresis_db = 3.0;
  link::HandoverManager manager(3, config);
  EXPECT_EQ(manager.step(0, std::vector<double>{-10.0, -12.0, -5.0}), 2);
  EXPECT_EQ(manager.step(0, std::vector<double>{-10.0, -1.0, -25.0}), 1);
  EXPECT_EQ(manager.switches(), 2);
}

TEST(HandoverManagerEdgeTest, SwitchDelayBlocksSecondHandover) {
  link::HandoverConfig config;
  config.switch_delay_s = 0.2;
  link::HandoverManager manager(2, config);
  EXPECT_EQ(manager.step(0, std::vector<double>{-30.0, -10.0}), -1);
  // Mid-switch: even a huge reversal cannot trigger another handover.
  EXPECT_EQ(manager.step(1000, std::vector<double>{-1.0, -40.0}), -1);
  EXPECT_EQ(manager.switches(), 1);
  EXPECT_EQ(manager.step(200000, std::vector<double>{-40.0, -10.0}), 1);
}

// ---- HandoverProcess (event-driven, cancellable switch timer) ----

TEST(HandoverProcessTest, ZeroTxConfigIsSafe) {
  event::Scheduler sched;
  link::HandoverProcess handover(0, link::HandoverConfig{}, sched);
  const std::vector<double> none;
  EXPECT_EQ(handover.on_powers(none), -1);
  sched.run();
  EXPECT_EQ(handover.switches(), 0);
}

TEST(HandoverProcessTest, CommitsAtExactTimerTime) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.switch_delay_s = 0.05;
  link::SessionLog log;
  link::HandoverProcess handover(2, config, sched, &log);

  const std::vector<double> flipped{-30.0, -10.0};
  EXPECT_EQ(handover.on_powers(flipped), -1);  // switch started at t=0
  EXPECT_TRUE(handover.switching());
  EXPECT_EQ(handover.active(), 0);  // not committed yet

  sched.run();  // fires the switch-done timer
  EXPECT_EQ(sched.now(), util::us_from_s(0.05));
  EXPECT_EQ(handover.active(), 1);
  EXPECT_FALSE(handover.switching());
  EXPECT_EQ(handover.switches(), 1);
  ASSERT_EQ(log.count(link::SessionEventKind::kHandover), 1);
  EXPECT_EQ(log.events().front().time, util::us_from_s(0.05));
}

TEST(HandoverProcessTest, BackToBackHandoversInsideOneSlot) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.switch_delay_s = 0.0;  // instant, as in the legacy manager
  link::SessionLog log;
  link::HandoverProcess handover(3, config, sched, &log);

  EXPECT_EQ(handover.on_powers(std::vector<double>{-10.0, -12.0, -5.0}), 2);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-10.0, -1.0, -25.0}), 1);
  EXPECT_EQ(handover.switches(), 2);
  EXPECT_EQ(log.count(link::SessionEventKind::kHandover), 2);
  EXPECT_EQ(log.events()[0].time, log.events()[1].time);  // same slot
}

TEST(HandoverProcessTest, ReacquisitionCancelsPendingSwitch) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.switch_delay_s = 0.2;
  config.cancel_on_reacquire = true;
  link::SessionLog log;
  link::HandoverProcess handover(2, config, sched, &log);

  // TX0 drops below the threshold: a drop-triggered switch starts.
  EXPECT_EQ(handover.on_powers(std::vector<double>{-40.0, -20.0}), -1);
  EXPECT_TRUE(handover.switching());
  EXPECT_EQ(handover.started(), 1);

  // 50 ms later (before the 200 ms timer) TX0 recovers: switch abandoned.
  sched.run_until(util::us_from_ms(50.0));
  EXPECT_EQ(handover.on_powers(std::vector<double>{-12.0, -20.0}), 0);
  EXPECT_FALSE(handover.switching());
  EXPECT_EQ(handover.cancelled_switches(), 1);
  EXPECT_EQ(handover.switches(), 0);
  EXPECT_EQ(handover.active(), 0);  // still serving from the old TX

  sched.run();  // the cancelled timer must never fire
  EXPECT_EQ(handover.active(), 0);
  EXPECT_EQ(log.count(link::SessionEventKind::kHandover), 0);
  ASSERT_EQ(log.count(link::SessionEventKind::kReacquisition), 1);
  EXPECT_EQ(log.events().front().time, util::us_from_ms(50.0));
}

TEST(HandoverProcessTest, NoCancelWithoutOptIn) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.switch_delay_s = 0.2;
  config.cancel_on_reacquire = false;  // legacy-equivalent mode
  link::HandoverProcess handover(2, config, sched);

  EXPECT_EQ(handover.on_powers(std::vector<double>{-40.0, -20.0}), -1);
  sched.run_until(util::us_from_ms(50.0));
  // Old TX recovered, but without the opt-in the switch completes anyway.
  EXPECT_EQ(handover.on_powers(std::vector<double>{-12.0, -20.0}), -1);
  sched.run();
  EXPECT_EQ(handover.active(), 1);
  EXPECT_EQ(handover.switches(), 1);
}

TEST(HandoverProcessTest, MatchesLegacyManagerOnSlotSequence) {
  // Drive the legacy manager and the event process with the identical
  // 1 ms-slot power sequence (cancel_on_reacquire off): every serving
  // decision and the final switch count must agree.
  link::HandoverConfig config;
  config.switch_delay_s = 0.021;  // lands mid-slot and on boundaries
  link::HandoverManager manager(2, config);
  event::Scheduler sched;
  link::HandoverProcess process(2, config, sched);

  util::Rng rng(7);
  std::vector<double> powers(2);
  for (int slot = 0; slot < 400; ++slot) {
    const util::SimTimeUs now = slot * 1000;
    // Piecewise scene: TX0 strong, then occluded, then back; TX1 noisy.
    powers[0] = (slot >= 120 && slot < 200) ? -60.0 : -10.0 + rng.uniform();
    powers[1] = -16.0 + 3.0 * rng.uniform();
    const int legacy = manager.step(now, powers);
    sched.run_until(now);
    const int event_serving = process.on_powers(powers);
    ASSERT_EQ(event_serving, legacy) << "slot " << slot;
  }
  EXPECT_EQ(process.switches(), manager.switches());
  EXPECT_GE(process.switches(), 2);  // the scenario actually hands over
}

}  // namespace
}  // namespace cyclops

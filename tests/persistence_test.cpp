// Calibration persistence: v2 header, v1 compatibility, and the
// malformed-file rejections (truncation, wrong value counts, non-finite
// fields) with line/field-numbered errors.  Uses a synthetic
// CalibrationResult so no (slow) calibration runs.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/persistence.hpp"

namespace cyclops::core {
namespace {

CalibrationResult make_synthetic() {
  std::array<double, galvo::GalvoParams::kParamCount> tx_packed{};
  std::array<double, galvo::GalvoParams::kParamCount> rx_packed{};
  for (std::size_t i = 0; i < tx_packed.size(); ++i) {
    tx_packed[i] = 0.013 * static_cast<double>(i + 1);
    rx_packed[i] = -0.007 * static_cast<double>(i + 1);
  }
  const std::array<double, 6> tx_map{0.1, -0.2, 0.3, 0.01, -0.02, 0.03};
  const std::array<double, 6> rx_map{-0.4, 0.5, -0.6, 0.04, -0.05, 0.06};
  return CalibrationResult{
      KSpaceFitReport{GmaModel(galvo::GalvoParams::unpack(tx_packed)),
                      1.2e-3, 3.4e-3, 0, true},
      KSpaceFitReport{GmaModel(galvo::GalvoParams::unpack(rx_packed)),
                      2.3e-3, 4.5e-3, 0, true},
      MappingFitReport{geom::Pose::from_params(tx_map),
                       geom::Pose::from_params(rx_map), 5.6e-3, 7.8e-3, 0,
                       true},
      {}};
}

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::filesystem::path& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const auto& line : lines) out << line << '\n';
}

/// Runs load_calibration and returns the thrown message ("" if none).
std::string load_error(const std::filesystem::path& path) {
  try {
    load_calibration(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(PersistenceV2Test, SavesV2HeaderAndRoundTrips) {
  const auto path = temp_file("cyclops_persist_v2.txt");
  const CalibrationResult calib = make_synthetic();
  save_calibration(path, calib);

  const auto lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "cyclops-calibration v2");

  const CalibrationResult loaded = load_calibration(path);
  const auto a = calib.tx_stage1.model.params().pack();
  const auto b = loaded.tx_stage1.model.params().pack();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
  EXPECT_NEAR(loaded.mapping.max_coincidence_m,
              calib.mapping.max_coincidence_m, 1e-15);
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, StillLoadsV1Files) {
  const auto path = temp_file("cyclops_persist_v1.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines[0] = "cyclops-calibration v1";
  write_lines(path, lines);

  const CalibrationResult loaded = load_calibration(path);
  EXPECT_NEAR(loaded.tx_stage1.avg_error_m, 1.2e-3, 1e-15);
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, RejectsUnknownHeaderNamingIt) {
  const auto path = temp_file("cyclops_persist_badmagic.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines[0] = "cyclops-calibration v3";
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  EXPECT_NE(what.find("cyclops-calibration v3"), std::string::npos) << what;
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, TruncatedFileNamesMissingRecord) {
  const auto path = temp_file("cyclops_persist_trunc.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines.resize(3);  // header + tx_model + rx_model; map_tx onwards gone
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("map_tx"), std::string::npos) << what;
  EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, WrongValueCountNamesLineAndCounts) {
  const auto path = temp_file("cyclops_persist_arity.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines[1] = "tx_model 1 2 3";  // 25 expected
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("expected 25"), std::string::npos) << what;
  EXPECT_NE(what.find("got 3"), std::string::npos) << what;
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, NonFiniteFieldNamesLineAndField) {
  const auto path = temp_file("cyclops_persist_nan.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  // Replace rx_model's third value with NaN (line 3, field 3).
  std::istringstream ss(lines[2]);
  std::string token;
  std::vector<std::string> tokens;
  while (ss >> token) tokens.push_back(token);
  tokens[3] = "nan";  // tokens[0] is the key
  std::string rebuilt;
  for (const auto& t : tokens) rebuilt += t + " ";
  lines[2] = rebuilt;
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  EXPECT_NE(what.find("field 3 of rx_model"), std::string::npos) << what;
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, NonNumericFieldNamesLineAndField) {
  const auto path = temp_file("cyclops_persist_text.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines[4] = "map_rx 0.1 0.2 bogus 0.4 0.5 0.6";
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("line 5"), std::string::npos) << what;
  EXPECT_NE(what.find("of map_rx"), std::string::npos) << what;
  std::filesystem::remove(path);
}

TEST(PersistenceV2Test, WrongRecordKeyNamesBoth) {
  const auto path = temp_file("cyclops_persist_key.txt");
  save_calibration(path, make_synthetic());
  auto lines = read_lines(path);
  lines[1].replace(0, 8, "ty_model");
  write_lines(path, lines);

  const std::string what = load_error(path);
  EXPECT_NE(what.find("tx_model"), std::string::npos) << what;
  EXPECT_NE(what.find("ty_model"), std::string::npos) << what;
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cyclops::core

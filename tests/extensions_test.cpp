// Tests for the extension modules: calibration persistence, eye safety,
// the mmWave and probe-TP baselines, and the multi-TX coverage planner.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "baseline/mmwave.hpp"
#include "core/persistence.hpp"
#include "core/probe_tracker.hpp"
#include "link/coverage.hpp"
#include "optics/eye_safety.hpp"
#include "util/units.hpp"

namespace cyclops {
namespace {

// ---- persistence ----

class PersistenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(
        sim::make_prototype(55, sim::prototype_10g_config()));
    util::Rng rng(3);
    calib_ = new core::CalibrationResult(core::calibrate_prototype(
        *proto_, core::CalibrationConfig{}, rng));
  }
  static void TearDownTestSuite() {
    delete calib_;
    delete proto_;
    proto_ = nullptr;
    calib_ = nullptr;
  }
  static sim::Prototype* proto_;
  static core::CalibrationResult* calib_;
};

sim::Prototype* PersistenceFixture::proto_ = nullptr;
core::CalibrationResult* PersistenceFixture::calib_ = nullptr;

TEST_F(PersistenceFixture, RoundTripPreservesModels) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cyclops_calib_test.txt";
  core::save_calibration(path, *calib_);
  const core::CalibrationResult loaded = core::load_calibration(path);
  std::filesystem::remove(path);

  // Model parameters survive bit-for-bit (within text round-trip).
  const auto a = calib_->tx_stage1.model.params().pack();
  const auto b = loaded.tx_stage1.model.params().pack();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);

  EXPECT_NEAR(geom::translation_distance(loaded.mapping.map_rx,
                                         calib_->mapping.map_rx),
              0.0, 1e-12);
  EXPECT_NEAR(loaded.mapping.avg_coincidence_m,
              calib_->mapping.avg_coincidence_m, 1e-15);
}

TEST_F(PersistenceFixture, LoadedCalibrationPointsIdentically) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cyclops_calib_test2.txt";
  core::save_calibration(path, *calib_);
  const core::CalibrationResult loaded = core::load_calibration(path);
  std::filesystem::remove(path);

  const core::PointingSolver original = calib_->make_pointing_solver();
  const core::PointingSolver restored = loaded.make_pointing_solver();
  const geom::Pose psi =
      proto_->tracker.ideal_report(proto_->nominal_rig_pose);
  const auto a = original.solve(psi, {});
  const auto b = restored.solve(psi, {});
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_NEAR(a.voltages.tx1, b.voltages.tx1, 1e-9);
  EXPECT_NEAR(a.voltages.rx2, b.voltages.rx2, 1e-9);
}

TEST(PersistenceErrors, MissingFileThrows) {
  EXPECT_THROW(core::load_calibration("/nonexistent/calib.txt"),
               std::runtime_error);
}

TEST(PersistenceErrors, WrongMagicThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "cyclops_bad_calib.txt";
  {
    std::ofstream out(path);
    out << "something else\n";
  }
  EXPECT_THROW(core::load_calibration(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(PersistenceErrors, TruncatedFileThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "cyclops_trunc_calib.txt";
  {
    std::ofstream out(path);
    out << "cyclops-calibration v1\n";
    out << "tx_model 1 2 3\n";  // wrong arity
  }
  EXPECT_THROW(core::load_calibration(path), std::runtime_error);
  std::filesystem::remove(path);
}

// ---- eye safety ----

TEST(EyeSafetyTest, BareSfpIsClass1) {
  // §2.2: "SFPs are Class 1 safe" — 0-4 dBm at 1550 nm vs 10 mW AEL.
  const optics::EyeSafetyReport report = optics::evaluate_eye_safety(
      optics::sfp_10g_zr(), optics::Edfa{.gain_db = 0.0},
      optics::BeamSpec::diverging_for(20e-3, 1.5), 0.5);
  EXPECT_TRUE(report.class1_at_aperture);
  EXPECT_TRUE(report.class1_at_access);
}

TEST(EyeSafetyTest, AmplifiedLaunchNeedsStandoff) {
  // +17 dB EDFA -> 50 mW launch: not Class 1 at the lens, safe beyond a
  // standoff the ceiling mount provides.
  const optics::EyeSafetyReport report = optics::evaluate_eye_safety(
      optics::sfp_10g_zr(), optics::Edfa{.gain_db = 17.0},
      optics::BeamSpec::diverging_for(20e-3, 1.5), 0.5);
  EXPECT_NEAR(report.launch_power_mw, 50.0, 1.0);
  EXPECT_FALSE(report.class1_at_aperture);
  EXPECT_GT(report.safe_standoff_m, 0.0);
  EXPECT_LT(report.safe_standoff_m, 2.0);
}

TEST(EyeSafetyTest, DivergenceCreatesSafety) {
  // The same amplified power stays unsafe much further out if collimated.
  const optics::EyeSafetyReport diverging = optics::evaluate_eye_safety(
      optics::sfp_10g_zr(), optics::Edfa{.gain_db = 17.0},
      optics::BeamSpec::diverging_for(20e-3, 1.5), 0.5);
  const optics::EyeSafetyReport collimated = optics::evaluate_eye_safety(
      optics::sfp_10g_zr(), optics::Edfa{.gain_db = 17.0},
      optics::BeamSpec::collimated(5e-3), 0.5);
  EXPECT_GT(collimated.safe_standoff_m, diverging.safe_standoff_m * 5.0);
}

TEST(EyeSafetyTest, RetinaSafeBandHasHigherLimit) {
  EXPECT_GT(optics::class1_ael_mw(1550.0), optics::class1_ael_mw(1310.0));
  EXPECT_GT(optics::class1_ael_mw(1310.0), optics::class1_ael_mw(850.0));
}

TEST(EyeSafetyTest, PupilPowerDropsWithDistance) {
  const optics::BeamSpec beam = optics::BeamSpec::diverging_for(20e-3, 1.5);
  const double near = optics::pupil_power_mw(17.0, beam, 0.1);
  const double far = optics::pupil_power_mw(17.0, beam, 2.0);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

// ---- mmWave baseline ----

TEST(MmWaveTest, ShortRangeReachesTopMcs) {
  const baseline::MmWaveLink link{baseline::MmWaveConfig{}};
  const double snr = link.snr_db(2.0, false);
  EXPECT_GT(snr, 17.5);  // top MCS threshold
  EXPECT_NEAR(link.phy_rate_gbps(snr), 6.7565, 1e-6);
}

TEST(MmWaveTest, GoodputCapsAtAFewGbps) {
  // The paper's headline point: even ideal 802.11ad stays under ~4.5 Gbps
  // goodput — an order of magnitude below the raw-video requirement.
  const baseline::MmWaveLink link{baseline::MmWaveConfig{}};
  EXPECT_LT(link.goodput_gbps(1.5, false, false), 5.0);
  EXPECT_GT(link.goodput_gbps(1.5, false, false), 3.0);
}

TEST(MmWaveTest, BlockageDegradesRate) {
  const baseline::MmWaveLink link{baseline::MmWaveConfig{}};
  EXPECT_LT(link.goodput_gbps(2.0, true, false),
            link.goodput_gbps(2.0, false, false));
}

TEST(MmWaveTest, RateMonotoneInRange) {
  const baseline::MmWaveLink link{baseline::MmWaveConfig{}};
  double prev = 1e9;
  for (double d = 1.0; d < 30.0; d *= 1.6) {
    const double rate = link.goodput_gbps(d, false, false);
    EXPECT_LE(rate, prev);
    prev = rate;
  }
  EXPECT_EQ(link.phy_rate_gbps(link.snr_db(500.0, false)), 0.0);
}

TEST(MmWaveTest, BeamTrainingTriggersOnRotation) {
  baseline::BeamTrainingState state{baseline::MmWaveConfig{}};
  EXPECT_FALSE(state.step(0, 0.0));
  // Rotate past half the 12-degree beamwidth.
  EXPECT_TRUE(state.step(1000, util::deg_to_rad(10.0)));
  EXPECT_EQ(state.retrains(), 1);
  // Still retraining for 10 ms.
  EXPECT_TRUE(state.step(5000, util::deg_to_rad(10.0)));
  // Done afterwards.
  EXPECT_FALSE(state.step(12000, util::deg_to_rad(10.0)));
}

// ---- probe-TP baseline ----

TEST(ProbeTrackerTest, ClimbsTowardAlignmentOnStaticRig) {
  sim::Prototype proto =
      sim::make_prototype(42, sim::prototype_10g_config());
  core::ExhaustiveAligner aligner;
  const core::AlignResult optimal = aligner.align(proto.scene, {});

  // Start slightly misaligned; static rig; the dither-climber must
  // recover most of the power over a few rounds.
  sim::Voltages v = optimal.voltages;
  v.tx1 += 0.15;
  v.rx2 -= 0.15;
  const double start_power = proto.scene.received_power_dbm(v);

  const core::ProbeTracker tracker{core::ProbeTpConfig{}};
  const auto observe = [&](const sim::Voltages& probe) {
    return proto.scene.received_power_dbm(probe);
  };
  for (int round = 0; round < 60; ++round) v = tracker.round(v, observe);
  const double end_power = proto.scene.received_power_dbm(v);
  EXPECT_GT(end_power, start_power + 3.0);
  EXPECT_GT(end_power, optimal.power_dbm - 3.0);
}

TEST(ProbeTrackerTest, RoundCostReflectsDaqLatency) {
  const core::ProbeTracker tracker{core::ProbeTpConfig{}};
  // 8 probes x 1.8 ms: slower than one VRH-T period — the §3 argument.
  EXPECT_GE(tracker.round_duration(), util::us_from_ms(12.0));
}

// ---- coverage planner ----

TEST(CoverageTest, TxCoversDirectlyBelow) {
  link::RoomConfig room;
  EXPECT_TRUE(link::tx_covers({2.0, 2.6, 2.0}, {2.0, 1.5, 2.0}, room));
}

TEST(CoverageTest, ConeBoundsRespected) {
  link::RoomConfig room;
  // ~20 deg cone, 1.1 m below: lateral reach ~0.4 m.
  EXPECT_TRUE(link::tx_covers({2.0, 2.6, 2.0}, {2.3, 1.5, 2.0}, room));
  EXPECT_FALSE(link::tx_covers({2.0, 2.6, 2.0}, {3.2, 1.5, 2.0}, room));
}

TEST(CoverageTest, RangeLimitRespected) {
  link::RoomConfig room;
  room.max_range = 1.0;
  EXPECT_FALSE(link::tx_covers({2.0, 2.6, 2.0}, {2.0, 1.0, 2.0}, room));
}

TEST(CoverageTest, PlanAchievesFullCoverage) {
  link::RoomConfig room;
  const link::CoveragePlan plan = link::plan_coverage(room);
  EXPECT_GT(plan.tx_positions.size(), 1u);
  // The GVS102's +/-20 deg cone covers only a ~0.3 m radius at standing
  // head height: a 4x4 m room honestly needs dozens of TXs — exactly the
  // "limited field-of-view coverage of the GMs" challenge §3 raises.
  EXPECT_LT(plan.tx_positions.size(), 150u);
  EXPECT_DOUBLE_EQ(plan.covered_fraction, 1.0);
}

TEST(CoverageTest, RedundancyNeedsMoreTx) {
  link::RoomConfig room;
  const auto single = link::plan_coverage(room);
  room.min_coverage = 2;
  const auto redundant = link::plan_coverage(room);
  EXPECT_GT(redundant.tx_positions.size(), single.tx_positions.size());
  EXPECT_DOUBLE_EQ(redundant.covered_fraction, 1.0);
}

TEST(CoverageTest, BiggerRoomNeedsMoreTx) {
  link::RoomConfig small;
  small.width = 3.0;
  small.depth = 3.0;
  link::RoomConfig big;
  big.width = 6.0;
  big.depth = 6.0;
  EXPECT_GE(link::plan_coverage(big).tx_positions.size(),
            link::plan_coverage(small).tx_positions.size());
}

TEST(CoverageTest, WiderConeNeedsFewerTx) {
  link::RoomConfig narrow;
  narrow.tx_cone_half_angle = 0.25;
  link::RoomConfig wide;
  wide.tx_cone_half_angle = 0.6;
  wide.max_range = 3.5;
  EXPECT_LE(link::plan_coverage(wide).tx_positions.size(),
            link::plan_coverage(narrow).tx_positions.size());
}

}  // namespace
}  // namespace cyclops

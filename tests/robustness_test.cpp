// Failure injection and cross-seed property sweeps: control-channel loss,
// mid-stream occlusion with re-acquisition, voltage saturation outside
// the coverage cone, WDM chromatic penalties, and stage-1/Lemma-1
// properties across manufactured units.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "link/fso_link.hpp"
#include "motion/profile.hpp"
#include "optics/wdm.hpp"
#include "util/units.hpp"

namespace cyclops {
namespace {

core::CalibrationResult calibrate(sim::Prototype& proto, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
}

// ---- control-channel loss ----

TEST(ControlChannelLoss, ModerateLossSurvivesSlowMotion) {
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.tracker.report_loss_prob = 0.3;
  sim::Prototype proto = sim::make_prototype(42, config);
  const core::CalibrationResult calib = calibrate(proto, 7);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  const motion::LinearStrokeMotion profile(proto.nominal_rig_pose, {1, 0, 0},
                                           0.12, {0.08});
  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile);
  EXPECT_GT(run.total_up_fraction, 0.99);
}

TEST(ControlChannelLoss, LossReducesRealignments) {
  sim::PrototypeConfig lossy_config = sim::prototype_10g_config();
  lossy_config.tracker.report_loss_prob = 0.5;
  sim::Prototype lossy = sim::make_prototype(42, lossy_config);
  sim::Prototype clean = sim::make_prototype(42, sim::prototype_10g_config());

  const core::CalibrationResult calib_lossy = calibrate(lossy, 7);
  const core::CalibrationResult calib_clean = calibrate(clean, 7);

  const motion::LinearStrokeMotion profile(clean.nominal_rig_pose, {1, 0, 0},
                                           0.12, {0.10});
  core::TpController c1(calib_lossy.make_pointing_solver(), core::TpConfig{});
  core::TpController c2(calib_clean.make_pointing_solver(), core::TpConfig{});
  const link::RunResult lossy_run =
      link::run_link_simulation(lossy, c1, profile);
  const link::RunResult clean_run =
      link::run_link_simulation(clean, c2, profile);
  EXPECT_LT(lossy_run.realignments, clean_run.realignments * 0.75);
}

TEST(ControlChannelLoss, HeavyLossBreaksFastMotion) {
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.tracker.report_loss_prob = 0.85;
  sim::Prototype proto = sim::make_prototype(42, config);
  const core::CalibrationResult calib = calibrate(proto, 7);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  // 25 cm/s is fine with a healthy channel but not when ~6 of 7 reports
  // vanish (effective update period ~85 ms).
  const motion::LinearStrokeMotion profile(proto.nominal_rig_pose, {1, 0, 0},
                                           0.12, {0.25});
  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile);
  EXPECT_LT(run.total_up_fraction, 0.9);
}

// ---- occlusion / re-acquisition ----

TEST(OcclusionRecovery, LinkReacquiresAfterBlockerLeaves) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  const core::CalibrationResult calib = calibrate(proto, 7);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});

  // Occlude the path between t = 2 s and t = 3 s via the slot callback.
  const geom::Vec3 mid = (proto.scene.tx().mount().translation() +
                          proto.nominal_rig_pose.translation()) *
                         0.5;
  link::SimOptions options;
  bool occluded = false;
  options.on_slot = [&](util::SimTimeUs now, bool, double) {
    const bool should_block =
        now > util::us_from_s(2.0) && now < util::us_from_s(3.0);
    if (should_block && !occluded) {
      proto.scene.add_occluder({mid, 0.2});
      occluded = true;
    } else if (!should_block && occluded) {
      proto.scene.clear_occluders();
      occluded = false;
    }
  };

  const motion::StillMotion profile(proto.nominal_rig_pose, 8.0);
  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile, options);

  // Down for the 1 s occlusion + ~2 s SFP re-acquisition out of 8 s.
  EXPECT_LT(run.total_up_fraction, 0.8);
  EXPECT_GT(run.total_up_fraction, 0.5);
  // The tail windows must be back at full throughput.
  const auto& last = run.windows.back();
  EXPECT_GT(last.up_fraction, 0.99);
}

// ---- saturation / out-of-coverage ----

TEST(Saturation, PoseOutsideConeFailsGracefully) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  const core::CalibrationResult calib = calibrate(proto, 7);
  const core::PointingSolver solver = calib.make_pointing_solver();

  // Rotate the rig 60 degrees away: far beyond the RX GM's cone.
  const geom::Pose away{
      geom::Mat3::rotation({0, 1, 0}, util::deg_to_rad(60.0)) *
          proto.nominal_rig_pose.rotation(),
      proto.nominal_rig_pose.translation()};
  proto.scene.set_rig_pose(away);
  const geom::Pose psi = proto.tracker.report(0, away).pose;
  const core::PointingResult r = solver.solve(psi, {});
  // The solver may "converge" to an extrapolated solution; the physical
  // link must simply be down, with no crash or NaN voltages.
  EXPECT_TRUE(std::isfinite(r.voltages.rx1));
  EXPECT_LT(proto.scene.received_power_dbm(r.voltages),
            proto.scene.config().sfp.rx_sensitivity_dbm);
}

TEST(Saturation, ControllerCountsFailuresNotCrashes) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  const core::CalibrationResult calib = calibrate(proto, 7);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  tracking::PoseReport report;
  // A nonsense report (VR-space origin): P must either converge to
  // something finite or count a failure — never throw.
  report.pose = geom::Pose::identity();
  const auto cmd = controller.on_report(report);
  if (cmd) {
    EXPECT_TRUE(std::isfinite(cmd->voltages.tx1));
  } else {
    EXPECT_EQ(controller.failures(), 1);
  }
}

// ---- WDM ----

TEST(WdmTest, PenaltySymmetricAroundDesignWavelength) {
  const optics::CollimatorChromatics c = optics::commodity_collimator();
  EXPECT_NEAR(c.penalty_db(c.design_wavelength_nm), 0.0, 1e-12);
  EXPECT_NEAR(c.penalty_db(c.design_wavelength_nm + 30.0),
              c.penalty_db(c.design_wavelength_nm - 30.0), 1e-12);
  EXPECT_GT(c.penalty_db(c.design_wavelength_nm + 60.0),
            c.penalty_db(c.design_wavelength_nm + 30.0));
}

TEST(WdmTest, TransceiverRates) {
  EXPECT_NEAR(optics::qsfp_lr4().total_rate_gbps(), 41.2, 1e-9);
  EXPECT_NEAR(optics::qsfp28_lr4().total_rate_gbps(), 103.2, 1e-9);
}

TEST(WdmTest, AchromatNeverWorseThanCommodity) {
  for (double loss = 5.0; loss <= 20.0; loss += 1.0) {
    const auto commodity = optics::evaluate_wdm_link(
        optics::qsfp28_lr4(), optics::commodity_collimator(), loss);
    const auto custom = optics::evaluate_wdm_link(
        optics::qsfp28_lr4(), optics::custom_achromatic_collimator(), loss);
    EXPECT_GE(custom.aggregate_rate_gbps, commodity.aggregate_rate_gbps);
  }
}

TEST(WdmTest, OuterLanesDieFirst) {
  // Find a loss where the commodity link is partially up: outer lanes
  // (1271/1331) must be the dead ones.
  for (double loss = 5.0; loss <= 20.0; loss += 0.25) {
    const auto r = optics::evaluate_wdm_link(
        optics::qsfp28_lr4(), optics::commodity_collimator(), loss);
    if (r.lanes_up > 0 && r.lanes_up < 4) {
      EXPECT_FALSE(r.lanes.front().up);
      EXPECT_FALSE(r.lanes.back().up);
      EXPECT_TRUE(r.lanes[1].up);
      return;
    }
  }
  FAIL() << "no partial-up operating point found";
}

// ---- cross-seed properties ----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, Stage1RecoversManufacturedUnit) {
  sim::Prototype proto =
      sim::make_prototype(GetParam(), sim::prototype_10g_config());
  util::Rng rng(GetParam() + 1);
  const galvo::GalvoMirror gm(proto.tx_galvo_truth, galvo::gvs102_spec());
  const auto samples = core::collect_board_samples(
      gm, proto.k_from_tx_gma, core::BoardConfig{}, rng);
  const auto fit = core::fit_kspace_model(
      samples, core::nominal_kspace_guess(proto.config.board_distance));
  EXPECT_LT(fit.avg_error_m, 2.5e-3);
}

TEST_P(SeedSweep, TruthModelPointingNearExhaustiveOptimum) {
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.tracker.position_noise_m = 0.0;
  config.tracker.orientation_noise_rad = 0.0;
  sim::Prototype proto = sim::make_prototype(GetParam(), config);
  const core::PointingSolver solver(
      core::GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      core::GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx);
  const core::PointingResult r = solver.solve(
      proto.tracker.ideal_report(proto.nominal_rig_pose), {});
  ASSERT_TRUE(r.converged);
  core::ExhaustiveAligner aligner;
  const core::AlignResult optimal = aligner.align(proto.scene, r.voltages);
  EXPECT_GT(proto.scene.received_power_dbm(r.voltages),
            optimal.power_dbm - 0.5);
}

INSTANTIATE_TEST_SUITE_P(Units, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace cyclops

// JitterBuffer: in-order playout, the exact playout-deadline boundary,
// gap/freeze accounting through the shared FreezeLedger, re-show
// counting, and the fill() backpressure signal.
#include <gtest/gtest.h>

#include "stream/frame_arena.hpp"
#include "stream/jitter_buffer.hpp"

namespace cyclops::stream {
namespace {

struct Rig {
  FrameArena arena;
  FreezeLedger ledger;
  JitterBuffer buffer;

  explicit Rig(JitterConfig config = {})
      : buffer(config, arena, ledger) {}

  FrameDesc frame(std::int64_t id, util::SimTimeUs render_time) {
    FrameDesc f;
    f.id = id;
    f.render_time = render_time;
    f.bits = 1000.0;
    f.payload = arena.acquire(16);
    EXPECT_TRUE(f.payload.valid());
    return f;
  }

  /// Offer + push: ledger offered accounting plus buffer insert, then
  /// drop the producer's reference (the buffer pinned its own).
  void feed(std::int64_t id, util::SimTimeUs render_time) {
    ledger.on_offered();
    FrameDesc f = frame(id, render_time);
    buffer.push(f);
    arena.release(f.payload);
  }
};

TEST(StreamJitterTest, DisplaysInOrderEvenWhenArrivalIsNot) {
  Rig rig;
  rig.feed(2, 200);
  rig.feed(0, 0);
  rig.feed(1, 100);
  rig.buffer.on_vsync(1000);
  rig.buffer.on_vsync(2000);
  rig.buffer.on_vsync(3000);
  EXPECT_EQ(rig.ledger.stats().frames_delivered, 3);
  EXPECT_EQ(rig.ledger.stats().frames_dropped, 0);
  EXPECT_EQ(rig.ledger.stats().last_delivered_id, 2);
  // Latency is vsync - render: (1000-0), (2000-100), (3000-200).
  EXPECT_DOUBLE_EQ(rig.ledger.stats().max_delivery_latency_ms, 2.8);
}

TEST(StreamJitterTest, PlayoutDeadlineBoundaryIsExact) {
  // A frame is displayable AT render_time + playout_deadline and dropped
  // one microsecond past it — the same `now > deadline` predicate as the
  // wire queue (net_test.DeadlineBoundaryIsExact pins that side).
  const JitterConfig config{.playout_deadline = 22000};
  {
    Rig rig(config);
    rig.feed(0, 1000);
    rig.buffer.on_vsync(23000);  // == render + deadline: on time
    EXPECT_EQ(rig.ledger.stats().frames_delivered, 1);
    EXPECT_EQ(rig.buffer.stats().late_drops, 0);
  }
  {
    Rig rig(config);
    rig.feed(0, 1000);
    rig.buffer.on_vsync(23001);  // one microsecond past: dropped
    EXPECT_EQ(rig.ledger.stats().frames_delivered, 0);
    EXPECT_EQ(rig.buffer.stats().late_drops, 1);
    EXPECT_EQ(rig.buffer.stats().re_shows, 1);  // nothing else to show
    rig.buffer.finalize(0);
    EXPECT_EQ(rig.ledger.stats().frames_dropped, 1);
  }
}

TEST(StreamJitterTest, GapsAccountAsDropsInFrameIdOrder) {
  Rig rig;
  rig.feed(0, 0);
  // Frames 1 and 2 never arrive (lost upstream); 3 does.
  rig.ledger.on_offered();
  rig.ledger.on_offered();
  rig.feed(3, 300);
  rig.buffer.on_vsync(1000);  // displays 0
  rig.buffer.on_vsync(2000);  // displays 3, accounting 1 and 2 as drops
  const LedgerStats& stats = rig.ledger.stats();
  EXPECT_EQ(stats.frames_delivered, 2);
  EXPECT_EQ(stats.frames_dropped, 2);
  // The 2-frame drop run between deliveries is one freeze event.
  EXPECT_EQ(stats.freeze_events, 1);
  EXPECT_EQ(stats.longest_freeze_frames, 2);
  EXPECT_EQ(stats.last_delivered_id, 3);
}

TEST(StreamJitterTest, ReShowsCountWhenNothingIsDisplayable) {
  Rig rig;
  rig.buffer.on_vsync(1000);
  rig.buffer.on_vsync(2000);
  EXPECT_EQ(rig.buffer.stats().re_shows, 2);
  EXPECT_EQ(rig.ledger.stats().frames_delivered, 0);
  rig.feed(0, 2500);
  rig.buffer.on_vsync(3000);
  EXPECT_EQ(rig.buffer.stats().re_shows, 2);
  EXPECT_EQ(rig.ledger.stats().frames_delivered, 1);
}

TEST(StreamJitterTest, StaleArrivalBehindPlayheadIsIgnored) {
  Rig rig;
  rig.feed(0, 0);
  rig.feed(1, 100);
  rig.buffer.on_vsync(1000);
  rig.buffer.on_vsync(2000);
  // Frame 1 arrives again (duplicate path) after being displayed.
  rig.ledger.on_offered();
  FrameDesc dup = rig.frame(1, 100);
  rig.buffer.push(dup);
  rig.arena.release(dup.payload);
  EXPECT_EQ(rig.buffer.stats().stale_arrivals, 1);
  EXPECT_EQ(rig.buffer.depth(), 0u);
  // Nothing double-pinned: all slabs came back.
  EXPECT_EQ(rig.arena.stats().in_use, 0u);
}

TEST(StreamJitterTest, FillSignalsBackpressureAndSaturates) {
  Rig rig({.playout_deadline = 1000000, .depth_limit = 4});
  EXPECT_DOUBLE_EQ(rig.buffer.fill(), 0.0);
  for (int i = 0; i < 2; ++i) rig.feed(i, 0);
  EXPECT_DOUBLE_EQ(rig.buffer.fill(), 0.5);
  for (int i = 2; i < 6; ++i) rig.feed(i, 0);
  EXPECT_DOUBLE_EQ(rig.buffer.fill(), 1.0);  // clamped past depth_limit
  rig.buffer.on_vsync(100);
  EXPECT_EQ(rig.buffer.depth(), 5u);
}

TEST(StreamJitterTest, FinalizeAccountsUndisplayedTail) {
  Rig rig;
  rig.feed(0, 0);
  rig.buffer.on_vsync(1000);
  // Frames 1..3 offered; 2 sits undisplayed in the buffer, 1 and 3 never
  // arrived.
  rig.ledger.on_offered();
  rig.feed(2, 200);
  rig.ledger.on_offered();
  rig.buffer.finalize(3);
  const LedgerStats& stats = rig.ledger.stats();
  EXPECT_EQ(stats.frames_offered, 4);
  EXPECT_EQ(stats.frames_delivered, 1);
  EXPECT_EQ(stats.frames_dropped, 3);
  EXPECT_EQ(stats.freeze_events, 1);
  EXPECT_EQ(stats.longest_freeze_frames, 3);
  EXPECT_EQ(rig.arena.stats().in_use, 0u);  // buffered ref released
}

}  // namespace
}  // namespace cyclops::stream

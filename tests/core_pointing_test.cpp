#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/evaluation.hpp"
#include "core/exhaustive_aligner.hpp"
#include "core/pointing.hpp"
#include "core/tp_controller.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

/// A pointing solver built from ground truth (no learning noise): isolates
/// the P algorithm itself from calibration quality.
PointingSolver truth_solver(const sim::Prototype& proto) {
  return PointingSolver(
      GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx);
}

class PointingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PrototypeConfig config = sim::prototype_10g_config();
    // Noise-free tracker isolates the algorithmic properties.
    config.tracker.position_noise_m = 0.0;
    config.tracker.orientation_noise_rad = 0.0;
    config.rig_flex_position_sigma = 0.0;
    config.rig_flex_angle_sigma = 0.0;
    proto_ = new sim::Prototype(sim::make_prototype(42, config));
    solver_ = new PointingSolver(truth_solver(*proto_));
  }
  static void TearDownTestSuite() {
    delete solver_;
    delete proto_;
    solver_ = nullptr;
    proto_ = nullptr;
  }
  static sim::Prototype* proto_;
  static PointingSolver* solver_;
};

sim::Prototype* PointingFixture::proto_ = nullptr;
PointingSolver* PointingFixture::solver_ = nullptr;

TEST_F(PointingFixture, ConvergesInTwoToFiveIterations) {
  // §4.3: "the above converged in 2-5 iterations".
  util::Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto_->nominal_rig_pose, 0.15, 0.1, rng);
    proto_->scene.set_rig_pose(pose);
    const geom::Pose psi = proto_->tracker.ideal_report(pose);
    const PointingResult r = solver_->solve(psi, {});
    ASSERT_TRUE(r.converged);
    EXPECT_GE(r.iterations, 1);
    EXPECT_LE(r.iterations, 6);
  }
}

TEST_F(PointingFixture, TruthModelsReachNearPeakPower) {
  // With perfect models and tracking, P must align essentially optimally.
  util::Rng rng(2);
  ExhaustiveAligner aligner;
  for (int i = 0; i < 8; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto_->nominal_rig_pose, 0.12, 0.08, rng);
    proto_->scene.set_rig_pose(pose);
    const PointingResult r =
        solver_->solve(proto_->tracker.ideal_report(pose), {});
    ASSERT_TRUE(r.converged);
    const double tp_power = proto_->scene.received_power_dbm(r.voltages);
    const AlignResult optimal = aligner.align(proto_->scene, r.voltages);
    EXPECT_GT(tp_power, optimal.power_dbm - 1.0);
  }
  proto_->scene.set_rig_pose(proto_->nominal_rig_pose);
}

TEST_F(PointingFixture, LemmaOneFixedPointMaximizesPower) {
  // Lemma 1 as a property: perturbing any single voltage away from the
  // P fixed point can only lose power.
  proto_->scene.set_rig_pose(proto_->nominal_rig_pose);
  const PointingResult r = solver_->solve(
      proto_->tracker.ideal_report(proto_->nominal_rig_pose), {});
  ASSERT_TRUE(r.converged);
  const double at_fixed_point =
      proto_->scene.received_power_dbm(r.voltages);

  for (const double delta : {-0.1, 0.1}) {
    for (int axis = 0; axis < 4; ++axis) {
      sim::Voltages v = r.voltages;
      (axis == 0   ? v.tx1
       : axis == 1 ? v.tx2
       : axis == 2 ? v.rx1
                   : v.rx2) += delta;
      EXPECT_LT(proto_->scene.received_power_dbm(v), at_fixed_point + 0.05);
    }
  }
}

TEST_F(PointingFixture, ModelResidualTinyWithTruthModels) {
  const PointingResult r = solver_->solve(
      proto_->tracker.ideal_report(proto_->nominal_rig_pose), {});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.model_residual_m, 1e-4);
}

TEST_F(PointingFixture, WarmStartSpeedsConvergence) {
  const geom::Pose psi =
      proto_->tracker.ideal_report(proto_->nominal_rig_pose);
  const PointingResult cold = solver_->solve(psi, {});
  const PointingResult warm = solver_->solve(psi, cold.voltages);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST_F(PointingFixture, TracksSmallPoseChanges) {
  // Small rig motion -> small voltage updates (continuity of P).
  const geom::Pose a = proto_->nominal_rig_pose;
  const geom::Pose b{
      geom::Mat3::rotation({1, 0, 0}, 2e-3) * a.rotation(),
      a.translation() + geom::Vec3{1e-3, 0, 0}};
  const PointingResult ra = solver_->solve(proto_->tracker.ideal_report(a), {});
  const PointingResult rb =
      solver_->solve(proto_->tracker.ideal_report(b), ra.voltages);
  ASSERT_TRUE(ra.converged && rb.converged);
  EXPECT_LT(std::abs(ra.voltages.tx1 - rb.voltages.tx1), 0.3);
  EXPECT_LT(std::abs(ra.voltages.rx1 - rb.voltages.rx1), 0.3);
}

// ---- TpController ----

TEST_F(PointingFixture, ControllerSchedulesWithLatency) {
  TpConfig config;
  TpController controller(*solver_, config);
  tracking::PoseReport report;
  report.capture_time = 100000;
  report.delivery_time = 100500;
  report.pose = proto_->tracker.ideal_report(proto_->nominal_rig_pose);
  const auto cmd = controller.on_report(report);
  ASSERT_TRUE(cmd.has_value());
  // Applied after delivery + DAQ latency + settle + compute: ~1.85 ms.
  const double latency_ms = util::us_to_ms(cmd->apply_time - 100500);
  EXPECT_GT(latency_ms, 1.0);
  EXPECT_LT(latency_ms, 2.5);
}

TEST_F(PointingFixture, ControllerQuantizesVoltages) {
  TpConfig config;
  TpController controller(*solver_, config);
  tracking::PoseReport report;
  report.pose = proto_->tracker.ideal_report(proto_->nominal_rig_pose);
  const auto cmd = controller.on_report(report);
  ASSERT_TRUE(cmd.has_value());
  const double step = config.daq.quantization_step;
  EXPECT_NEAR(std::fmod(std::abs(cmd->voltages.tx1), step), 0.0, 1e-9);
  EXPECT_NEAR(std::fmod(std::abs(cmd->voltages.rx2), step), 0.0, 1e-9);
}

TEST_F(PointingFixture, ControllerCountsReportsAndIterations) {
  TpController controller(*solver_, TpConfig{});
  tracking::PoseReport report;
  report.pose = proto_->tracker.ideal_report(proto_->nominal_rig_pose);
  for (int i = 0; i < 5; ++i) controller.on_report(report);
  EXPECT_EQ(controller.reports_handled(), 5);
  EXPECT_EQ(controller.failures(), 0);
  EXPECT_GT(controller.avg_pointing_iterations(), 0.9);
  EXPECT_LT(controller.avg_pointing_iterations(), 6.0);
}

TEST(TpConfigTest, PointingLatencyInPaperBand) {
  // §5.2: pointing latency ~1-2 ms, dominated by the DAQ.
  const TpConfig config;
  EXPECT_GT(config.pointing_latency_s(), 1e-3);
  EXPECT_LT(config.pointing_latency_s(), 2.5e-3);
}

// ---- learned-pipeline pointing accuracy (§5.2 lock tests) ----

TEST(LockTest, LearnedPipelineAchievesOptimalThroughputPower) {
  // The §5.2 experiment: 10 random lock tests; TP must restore optimal
  // throughput with power a few dB below the exhaustive optimum.
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);
  const CalibrationResult calib =
      calibrate_prototype(proto, CalibrationConfig{}, rng);
  const PointingSolver solver = calib.make_pointing_solver();

  const auto samples = run_lock_tests(proto, solver, 10, 0.12, 0.08, rng);
  ASSERT_EQ(samples.size(), 10u);
  int up = 0;
  for (const auto& s : samples) {
    if (s.link_up) ++up;
    // Power within a few dB of optimal (the paper saw -13/-14 vs -10).
    EXPECT_GT(s.power_dbm, s.optimal_power_dbm - 8.0);
  }
  EXPECT_EQ(up, 10);  // all 10 tests restore the link
}

}  // namespace
}  // namespace cyclops::core

// SequencedTransport: packetization math, tier-priority draining with
// peripheral-first eviction, refcount-only fan-out, and the randomized
// packetize -> lossy-reorder-dup wire -> reassemble property test — a
// frame surfaces byte-exact or is cleanly dropped, never torn
// (mirrors the equivalence-script pattern of event_queue_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "stream/frame_arena.hpp"
#include "stream/packet.hpp"
#include "stream/transport.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cyclops::stream {
namespace {

constexpr util::SimTimeUs kSlot = 1000;

FrameDesc make_frame(FrameArena& arena, std::int64_t id,
                     util::SimTimeUs render_time, double bits,
                     std::size_t stored_bytes,
                     Tier tier = Tier::kPeripheral) {
  FrameDesc frame;
  frame.id = id;
  frame.render_time = render_time;
  frame.bits = bits;
  frame.tier = tier;
  frame.payload = arena.acquire(stored_bytes);
  EXPECT_TRUE(frame.payload.valid());
  std::byte* p = arena.data(frame.payload);
  for (std::size_t j = 0; j < stored_bytes; ++j) {
    p[j] = static_cast<std::byte>(static_cast<std::uint64_t>(id) * 131 +
                                  j * 31);
  }
  return frame;
}

TEST(StreamTransportTest, PacketizeSplitsByMtuAndTilesStoredBytes) {
  FrameArena arena;
  util::Rng rng(1);
  TransportConfig config;
  config.max_fragment_bytes = 1000;  // 8000-bit MTU
  SequencedTransport transport(config, arena, rng);

  std::vector<Packet> seen;
  transport.add_receiver({}, nullptr);
  // 33 kbit frame over an 8 kbit MTU -> ceil = 5 fragments.
  FrameDesc frame = make_frame(arena, 7, 0, 33000.0, 512);
  EXPECT_EQ(transport.offer(frame), 5);
  // Queue holds one arena reference per fragment plus the caller's.
  EXPECT_EQ(arena.ref_count(frame.payload), 6u);
  arena.release(frame.payload);
  // Drain everything in one fat slot; the lossless receiver reassembles.
  transport.step(0, kSlot, 1.0);
  EXPECT_EQ(transport.stats().packets_sent, 5);
  EXPECT_EQ(transport.reassembly_stats(0).frames_completed, 1);
  EXPECT_EQ(transport.reassembly_stats(0).frames_torn, 0);
  EXPECT_EQ(arena.stats().copies, 0u);
}

TEST(StreamTransportTest, ReassembledFrameIsByteExactAndRefcountOnly) {
  FrameArena arena;
  util::Rng rng(2);
  TransportConfig config;
  config.max_fragment_bytes = 100;
  SequencedTransport transport(config, arena, rng);

  std::vector<std::byte> received;
  transport.add_receiver(
      {}, [&](util::SimTimeUs, const FrameDesc& f) {
        const std::byte* p = arena.data(f.payload);
        received.assign(p, p + arena.size(f.payload));
      });
  FrameDesc frame = make_frame(arena, 42, 0, 5000.0, 333);
  transport.offer(frame);
  std::vector<std::byte> original(arena.data(frame.payload),
                                  arena.data(frame.payload) + 333);
  arena.release(frame.payload);
  transport.step(0, kSlot, 1.0);
  ASSERT_EQ(received.size(), original.size());
  EXPECT_EQ(std::memcmp(received.data(), original.data(), original.size()),
            0);
  EXPECT_EQ(arena.stats().copies, 0u);   // zero-copy end to end
  EXPECT_EQ(arena.stats().in_use, 0u);   // every reference returned
}

TEST(StreamTransportTest, BacklogEvictsPeripheralBeforeFovealBeforeIntra) {
  FrameArena arena;
  util::Rng rng(3);
  TransportConfig config;
  config.max_fragment_bytes = 1000;
  config.max_backlog_bits = 24000.0;  // room for 3 x 8000-bit fragments
  config.foveal_fraction = 0.0;
  SequencedTransport transport(config, arena, rng);

  auto offer_one = [&](std::int64_t id, Tier tier) {
    FrameDesc f = make_frame(arena, id, 0, 8000.0, 16, tier);
    transport.offer(f);
    arena.release(f.payload);
  };
  offer_one(0, Tier::kIntra);
  offer_one(1, Tier::kPeripheral);
  offer_one(2, Tier::kPeripheral);
  EXPECT_EQ(transport.stats().packets_evicted[2], 0);
  // Fourth fragment pushes past the cap: the OLDEST PERIPHERAL packet
  // goes first, never the intra packet.
  offer_one(3, Tier::kIntra);
  EXPECT_EQ(transport.stats().packets_evicted[2], 1);
  EXPECT_EQ(transport.stats().packets_evicted[0], 0);
  offer_one(4, Tier::kIntra);
  EXPECT_EQ(transport.stats().packets_evicted[2], 2);
  // Only intra packets remain; now the cap has to evict intra.
  offer_one(5, Tier::kIntra);
  EXPECT_EQ(transport.stats().packets_evicted[0], 1);
  EXPECT_EQ(arena.stats().in_use, 3u);  // evicted packets released slabs
}

TEST(StreamTransportTest, StrictTierPriorityOnTheWire) {
  FrameArena arena;
  util::Rng rng(4);
  TransportConfig config;
  config.max_fragment_bytes = 1000;
  config.foveal_fraction = 0.0;
  SequencedTransport transport(config, arena, rng);

  std::vector<std::int64_t> order;
  transport.add_receiver(
      {}, [&](util::SimTimeUs, const FrameDesc& f) {
        order.push_back(f.id);
      });
  auto offer_one = [&](std::int64_t id, Tier tier) {
    FrameDesc f = make_frame(arena, id, 0, 8000.0, 16, tier);
    transport.offer(f);
    arena.release(f.payload);
  };
  offer_one(10, Tier::kPeripheral);
  offer_one(11, Tier::kFoveal);
  offer_one(12, Tier::kIntra);
  // One slot with budget for exactly one packet (8000 bits * 1.05
  // overhead = 8400; 0.0084 Gbps * 1 ms = 8400 bits): the intra frame
  // jumps the whole queue.
  transport.step(0, kSlot, 0.0084);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 12);
  transport.step(kSlot, kSlot, 0.0084);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 11);
  transport.step(2 * kSlot, kSlot, 0.0084);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 10);
}

TEST(StreamTransportTest, FanOutSharesOneSlabAcrossReceivers) {
  FrameArena arena;
  util::Rng rng(5);
  TransportConfig config;
  config.max_fragment_bytes = 1000;
  SequencedTransport transport(config, arena, rng);

  const std::byte* slab = nullptr;
  int surfaced = 0;
  for (int i = 0; i < 16; ++i) {
    transport.add_receiver(
        {}, [&](util::SimTimeUs, const FrameDesc& f) {
          ++surfaced;
          if (slab == nullptr) slab = arena.data(f.payload);
          // Every receiver reads the SAME slab bytes — no copies.
          EXPECT_EQ(arena.data(f.payload), slab);
        });
  }
  FrameDesc frame = make_frame(arena, 1, 0, 4000.0, 64);
  transport.offer(frame);
  arena.release(frame.payload);
  transport.step(0, kSlot, 1.0);
  EXPECT_EQ(surfaced, 16);
  EXPECT_EQ(arena.stats().copies, 0u);
  EXPECT_EQ(arena.stats().in_use, 0u);
}

TEST(StreamTransportTest, IncompletePartialExpiresCleanly) {
  FrameArena arena;
  util::Rng rng(6);
  TransportConfig config;
  config.max_fragment_bytes = 1000;
  config.reassembly_timeout = 5000;
  SequencedTransport transport(config, arena, rng);

  int surfaced = 0;
  transport.add_receiver({.loss = 1.0},
                         [&](util::SimTimeUs, const FrameDesc&) {
                           ++surfaced;
                         });
  int delivered_one = transport.add_receiver(
      {}, [&](util::SimTimeUs, const FrameDesc&) { ++surfaced; });
  (void)delivered_one;
  FrameDesc frame = make_frame(arena, 9, 0, 24000.0, 96);
  transport.offer(frame);
  arena.release(frame.payload);
  transport.step(0, kSlot, 1.0);
  EXPECT_EQ(surfaced, 1);  // the lossless receiver only
  // The all-loss receiver never accumulates partials; run empty slots
  // past the timeout to prove nothing lingers or leaks.
  for (int s = 1; s <= 10; ++s) transport.step(s * kSlot, kSlot, 1.0);
  EXPECT_EQ(arena.stats().in_use, 0u);
  EXPECT_EQ(transport.reassembly_stats(0).frames_completed, 0);
  EXPECT_EQ(transport.reassembly_stats(0).frames_torn, 0);
}

// The property test: randomized frame sizes through a lossy, reordering,
// duplicating wire, across three receivers with different impairments.
// Invariant: every frame a receiver surfaces is byte-exact; every other
// frame is cleanly dropped; no frame is ever torn; all arena references
// return when the transport drains.
TEST(StreamTransportTest, RandomizedLossyWireNeverTearsFrames) {
  FrameArena arena({.slab_bytes = 1 << 12});
  util::Rng rng(2022);
  TransportConfig config;
  config.max_fragment_bytes = 500;
  config.reassembly_timeout = 8000;
  SequencedTransport transport(config, arena, rng.split());

  const Impairments imps[3] = {
      {},                                          // clean
      {.loss = 0.3, .dup = 0.1, .reorder = 0.2},   // rough
      {.loss = 0.05, .dup = 0.3, .reorder = 0.4},  // jittery
  };
  struct Seen {
    std::vector<std::int64_t> ids;
    bool all_exact = true;
  };
  Seen seen[3];
  std::map<std::int64_t, std::vector<std::byte>> originals;
  for (int i = 0; i < 3; ++i) {
    transport.add_receiver(
        imps[i], [&, i](util::SimTimeUs, const FrameDesc& f) {
          seen[i].ids.push_back(f.id);
          const std::byte* p = arena.data(f.payload);
          const auto& want = originals.at(f.id);
          seen[i].all_exact =
              seen[i].all_exact && arena.size(f.payload) == want.size() &&
              std::memcmp(p, want.data(), want.size()) == 0;
        });
  }

  util::SimTimeUs now = 0;
  std::int64_t next_id = 0;
  for (int round = 0; round < 400; ++round) {
    const int frames = static_cast<int>(rng.uniform_index(3));
    for (int k = 0; k < frames; ++k) {
      const auto stored = static_cast<std::size_t>(
          64 + rng.uniform_index(3000));
      const double bits = 2000.0 + rng.uniform() * 30000.0;
      const Tier tier = next_id % 8 == 0 ? Tier::kIntra : Tier::kPeripheral;
      FrameDesc f = make_frame(arena, next_id, now, bits, stored, tier);
      originals[next_id] =
          std::vector<std::byte>(arena.data(f.payload),
                                 arena.data(f.payload) + stored);
      ++next_id;
      transport.offer(f);
      arena.release(f.payload);
    }
    transport.step(now, kSlot, 0.02 + rng.uniform() * 0.05);
    now += kSlot;
  }
  // Drain: generous capacity plus quiet slots past the reassembly timeout.
  for (int s = 0; s < 20; ++s) {
    transport.step(now, kSlot, 1.0);
    now += kSlot;
  }

  ASSERT_GT(next_id, 100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(seen[i].all_exact) << "receiver " << i;
    EXPECT_EQ(transport.reassembly_stats(i).frames_torn, 0)
        << "receiver " << i;
    // Surfaced ids are unique (dups collapse in reassembly).
    std::vector<std::int64_t> ids = seen[i].ids;
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
  // The clean receiver got every frame the wire actually carried.
  EXPECT_EQ(seen[0].ids.size(),
            static_cast<std::size_t>(
                transport.reassembly_stats(0).frames_completed));
  // The rough receivers lost some frames but surfaced plenty.
  EXPECT_GT(seen[1].ids.size(), originals.size() / 8);
  EXPECT_LT(seen[1].ids.size(), seen[0].ids.size());
  // Refcount hygiene: with queues drained, every slab came back.
  EXPECT_EQ(arena.stats().in_use, 0u);
  EXPECT_EQ(arena.stats().copies, 0u);
}

}  // namespace
}  // namespace cyclops::stream

// DriftMonitor boundary semantics (the recalibration trigger) and the
// online recalibration plane end-to-end (cal/online.hpp): under injected
// drift the frozen twin loses link margin, the online twin refits the
// Stage-2 mapping in flight, recovers >= 90 % of the loss, and never has
// a down slot while a refit is active.
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "cal/online.hpp"
#include "core/calibration.hpp"
#include "core/drift_monitor.hpp"
#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "sim/prototype.hpp"

using namespace cyclops;

namespace {

// A constant input makes the EMA exact: the first sample sets it, later
// identical samples leave it unchanged — so threshold boundaries can be
// probed without tolerance games.
core::DriftMonitorConfig boundary_config() {
  core::DriftMonitorConfig config;
  config.healthy_power_dbm = -10.0;
  config.drift_threshold_db = 2.0;
  config.window_samples = 8;
  config.min_samples = 4;
  return config;
}

TEST(DriftMonitorBoundaryTest, ExactThresholdDoesNotFlag) {
  core::DriftMonitor monitor(boundary_config());
  // EMA pinned exactly AT healthy - threshold: strictly-below contract
  // says no flag, ever.
  for (int i = 0; i < 100; ++i) monitor.on_post_realignment_power(-12.0);
  EXPECT_EQ(monitor.smoothed_power_dbm(), -12.0);
  EXPECT_FALSE(monitor.recalibration_needed());
}

TEST(DriftMonitorBoundaryTest, JustBelowThresholdFlagsAtMinSamples) {
  core::DriftMonitor monitor(boundary_config());
  const double below = std::nextafter(-12.0, -13.0);
  for (int i = 0; i < 3; ++i) {
    monitor.on_post_realignment_power(below);
    EXPECT_FALSE(monitor.recalibration_needed())
        << "flagged on sample " << i + 1 << " before min_samples";
  }
  monitor.on_post_realignment_power(below);  // Sample 4 == min_samples.
  EXPECT_TRUE(monitor.recalibration_needed());
}

TEST(DriftMonitorBoundaryTest, LatchHoldsThroughRecovery) {
  core::DriftMonitor monitor(boundary_config());
  for (int i = 0; i < 8; ++i) monitor.on_post_realignment_power(-15.0);
  ASSERT_TRUE(monitor.recalibration_needed());
  // The EMA wobbling back over the line must NOT cancel an in-flight
  // refit: the flag latches until reset().
  for (int i = 0; i < 200; ++i) monitor.on_post_realignment_power(-10.0);
  EXPECT_GT(monitor.smoothed_power_dbm(), -12.0);
  EXPECT_TRUE(monitor.recalibration_needed());
}

TEST(DriftMonitorBoundaryTest, ResetIsTheHysteresisRelease) {
  core::DriftMonitor monitor(boundary_config());
  for (int i = 0; i < 8; ++i) monitor.on_post_realignment_power(-15.0);
  ASSERT_TRUE(monitor.recalibration_needed());
  monitor.reset();
  EXPECT_FALSE(monitor.recalibration_needed());
  EXPECT_EQ(monitor.samples(), 0);
  // Fresh evidence is required from scratch after a refit.
  for (int i = 0; i < 3; ++i) monitor.on_post_realignment_power(-15.0);
  EXPECT_FALSE(monitor.recalibration_needed());
  monitor.on_post_realignment_power(-15.0);
  EXPECT_TRUE(monitor.recalibration_needed());
}

TEST(DriftMonitorBoundaryTest, BlackoutsDoNotMoveTheBoundary) {
  core::DriftMonitor monitor(boundary_config());
  const double below = std::nextafter(-12.0, -13.0);
  for (int i = 0; i < 3; ++i) monitor.on_post_realignment_power(below);
  // -inf (occlusion) must neither flag nor count as the 4th sample.
  monitor.on_post_realignment_power(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(monitor.samples(), 3);
  EXPECT_FALSE(monitor.recalibration_needed());
  monitor.on_post_realignment_power(below);
  EXPECT_TRUE(monitor.recalibration_needed());
}

TEST(DriftMonitorBoundaryTest, PublishExportsStateGauges) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  core::DriftMonitor monitor(boundary_config());
  for (int i = 0; i < 8; ++i) monitor.on_post_realignment_power(-15.0);
  obs::Registry registry;
  monitor.publish(registry);
  EXPECT_EQ(registry.gauge("drift_monitor_ema_dbm").value(), -15.0);
  EXPECT_EQ(registry.gauge("drift_monitor_samples").value(), 8.0);
  EXPECT_EQ(registry.gauge("drift_monitor_recal_needed").value(), 1.0);
  monitor.reset();
  monitor.publish(registry);
  EXPECT_EQ(registry.gauge("drift_monitor_samples").value(), 0.0);
  EXPECT_EQ(registry.gauge("drift_monitor_recal_needed").value(), 0.0);
}

// ---- The online recalibration scenario (ROADMAP item 3) ----

core::CalibrationResult truth_calibration(const sim::Prototype& proto) {
  return core::CalibrationResult{
      core::KSpaceFitReport{core::GmaModel(proto.tx_galvo_truth)
                                .transformed(proto.k_from_tx_gma),
                            0.0, 0.0, 0, true},
      core::KSpaceFitReport{core::GmaModel(proto.rx_galvo_truth)
                                .transformed(proto.k_from_rx_gma),
                            0.0, 0.0, 0, true},
      core::MappingFitReport{proto.true_map_tx, proto.true_map_rx, 0.0, 0.0, 0,
                             true},
      {}};
}

cal::OnlineRecalResult run_scenario(bool online) {
  sim::Prototype proto = sim::make_prototype(211, sim::prototype_25g_config());
  const core::CalibrationResult calibration = truth_calibration(proto);
  cal::OnlineRecalConfig config;
  config.duration_s = 1.0;
  config.online = online;
  config.seed = 7;
  return cal::run_online_recal_session(proto, calibration, config);
}

class OnlineRecalScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    frozen_ = new cal::OnlineRecalResult(run_scenario(/*online=*/false));
    online_ = new cal::OnlineRecalResult(run_scenario(/*online=*/true));
  }
  static void TearDownTestSuite() {
    delete online_;
    delete frozen_;
    online_ = nullptr;
    frozen_ = nullptr;
  }
  static cal::OnlineRecalResult* frozen_;
  static cal::OnlineRecalResult* online_;
};

cal::OnlineRecalResult* OnlineRecalScenarioTest::frozen_ = nullptr;
cal::OnlineRecalResult* OnlineRecalScenarioTest::online_ = nullptr;

TEST_F(OnlineRecalScenarioTest, FrozenCalibrationDiesOffUnderDrift) {
  EXPECT_EQ(frozen_->refits, 0);
  EXPECT_GT(frozen_->early_margin_db, 2.0);
  EXPECT_LT(frozen_->tail_margin_db, -5.0);
  EXPECT_LT(frozen_->up_fraction, 0.8);
}

TEST_F(OnlineRecalScenarioTest, OnlineRefitTriggersViaDriftMonitor) {
  EXPECT_GE(online_->refits, 1);
  EXPECT_GE(online_->refit_windows, 1u);
}

TEST_F(OnlineRecalScenarioTest, RefitsCauseNoOutage) {
  EXPECT_EQ(online_->refit_down_windows, 0u);
  EXPECT_GT(online_->up_fraction, 0.99);
}

TEST_F(OnlineRecalScenarioTest, OnlineRecoversAtLeast90PercentOfLostMargin) {
  const double lost = frozen_->early_margin_db - frozen_->tail_margin_db;
  ASSERT_GT(lost, 3.0) << "drift injection is not biting";
  const double recovered =
      (online_->tail_margin_db - frozen_->tail_margin_db) / lost;
  EXPECT_GE(recovered, 0.9);
}

TEST_F(OnlineRecalScenarioTest, TwinsAreIdenticalBeforeTheFirstRefit) {
  // The frozen baseline sees the identical slot stream: window margins
  // must match BITWISE until the first refit swaps the mapping.
  ASSERT_EQ(frozen_->window_stats.size(), online_->window_stats.size());
  std::size_t first_refit = online_->window_stats.size();
  for (std::size_t i = 0; i < online_->window_stats.size(); ++i) {
    if (online_->window_stats[i].refit_active) {
      first_refit = i;
      break;
    }
  }
  ASSERT_GT(first_refit, 0u);
  ASSERT_LT(first_refit, online_->window_stats.size());
  for (std::size_t i = 0; i < first_refit; ++i) {
    EXPECT_EQ(frozen_->window_stats[i].avg_margin_db,
              online_->window_stats[i].avg_margin_db)
        << "window " << i;
    EXPECT_EQ(frozen_->window_stats[i].up_fraction,
              online_->window_stats[i].up_fraction);
  }
}

TEST_F(OnlineRecalScenarioTest, ScenarioIsDeterministic) {
  const cal::OnlineRecalResult again = run_scenario(/*online=*/true);
  EXPECT_EQ(again.refits, online_->refits);
  EXPECT_EQ(again.slots, online_->slots);
  EXPECT_EQ(again.events, online_->events);
  EXPECT_EQ(again.avg_margin_db, online_->avg_margin_db);
  EXPECT_EQ(again.tail_margin_db, online_->tail_margin_db);
}

TEST(OnlineRecalibratorTest, RefitPendingNeedsLatchAndSamples) {
  sim::Prototype proto = sim::make_prototype(31, sim::prototype_10g_config());
  core::DriftMonitorConfig monitor = boundary_config();
  cal::OnlineRefitOptions options;
  options.min_samples = 3;
  cal::OnlineRecalibrator recal(
      core::GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      core::GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx, monitor, options);
  recal.arm(-10.0);

  // Latched but empty buffer: not pending.
  for (int i = 0; i < 8; ++i) recal.on_power(-15.0);
  ASSERT_TRUE(recal.monitor().recalibration_needed());
  EXPECT_FALSE(recal.refit_pending());

  // Buffer filled but (after reset) not latched: not pending either.
  const core::AlignedSample sample{{0.1, 0.2, 0.3, 0.4},
                                   proto.nominal_rig_pose};
  for (int i = 0; i < 3; ++i) recal.admit(sample);
  EXPECT_TRUE(recal.refit_pending());
  recal.monitor().reset();
  EXPECT_FALSE(recal.refit_pending());
}

}  // namespace

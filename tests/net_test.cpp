#include <gtest/gtest.h>

#include <cmath>

#include "net/frame_source.hpp"
#include "net/streamer.hpp"
#include "obs/obs.hpp"
#include "util/units.hpp"

namespace cyclops::net {
namespace {

constexpr util::SimTimeUs kSlot = 1000;  // 1 ms

/// Drives source + streamer for `duration` with a capacity function.
template <typename CapacityFn>
StreamStats drive(FrameSource& source, FrameStreamer& streamer,
                  util::SimTimeUs duration, const CapacityFn& capacity) {
  for (util::SimTimeUs now = 0; now < duration; now += kSlot) {
    while (const auto frame = source.poll(now)) streamer.offer(*frame);
    streamer.step(now, kSlot, capacity(now));
  }
  return streamer.stats();
}

// ---- FrameSource ----

TEST(FrameSourceTest, EmitsAtConfiguredRate) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(1));
  int frames = 0;
  for (util::SimTimeUs now = 0; now < util::us_from_s(1.0); now += kSlot) {
    while (source.poll(now)) ++frames;
  }
  EXPECT_NEAR(frames, 90, 2);
}

TEST(FrameSourceTest, FrameSizeMatchesBitrate) {
  FrameSourceConfig config{.fps = 90.0, .stream_rate_gbps = 20.0};
  EXPECT_NEAR(config.mean_frame_bits(), 20e9 / 90.0, 1.0);
  FrameSource source(config, util::Rng(1));
  const auto frame = source.poll(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_DOUBLE_EQ(frame->bits, config.mean_frame_bits());
}

TEST(FrameSourceTest, JitterVariesSizes) {
  FrameSource source(
      {.fps = 90.0, .stream_rate_gbps = 20.0, .size_jitter = 0.05},
      util::Rng(2));
  const auto a = source.poll(0);
  const auto b = source.poll(util::us_from_s(1.0));
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->bits, b->bits);
  EXPECT_GT(a->bits, 0.0);
}

TEST(FrameSourceTest, MonotoneIdsAndTimes) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(3));
  util::SimTimeUs prev_time = -1;
  std::int64_t prev_id = -1;
  for (util::SimTimeUs now = 0; now < util::us_from_s(0.5); now += kSlot) {
    while (const auto f = source.poll(now)) {
      EXPECT_GT(f->id, prev_id);
      EXPECT_GT(f->render_time, prev_time);
      prev_id = f->id;
      prev_time = f->render_time;
    }
  }
}

TEST(FrameSourceTest, NotDueReturnsNull) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(4));
  ASSERT_TRUE(source.poll(0).has_value());
  EXPECT_FALSE(source.poll(1).has_value());  // next frame ~11.1 ms away
}

// ---- FrameStreamer ----

TEST(StreamerTest, AmpleCapacityDeliversEverything) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(5));
  FrameStreamer streamer({});
  const auto stats = drive(source, streamer, util::us_from_s(2.0),
                           [](util::SimTimeUs) { return 23.5; });
  EXPECT_GT(stats.frames_offered, 170);
  EXPECT_EQ(stats.frames_dropped, 0);
  EXPECT_NEAR(stats.delivery_rate(), 1.0, 0.02);
  EXPECT_EQ(stats.freeze_events, 0);
}

TEST(StreamerTest, DeliveryLatencyReflectsServiceTime) {
  // 222 Mbit frame at 23.5 Gbps ~ 9.4 ms on the wire (+overhead).
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(6));
  FrameStreamer streamer({});
  const auto stats = drive(source, streamer, util::us_from_s(2.0),
                           [](util::SimTimeUs) { return 23.5; });
  EXPECT_GT(stats.avg_delivery_latency_ms, 5.0);
  EXPECT_LT(stats.avg_delivery_latency_ms, 15.0);
}

TEST(StreamerTest, DeadLinkDropsEverything) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(7));
  FrameStreamer streamer({});
  const auto stats = drive(source, streamer, util::us_from_s(1.0),
                           [](util::SimTimeUs) { return 0.0; });
  EXPECT_EQ(stats.frames_delivered, 0);
  EXPECT_GT(stats.frames_dropped, 70);
  EXPECT_EQ(stats.freeze_events, 1);
  EXPECT_GT(stats.longest_freeze_frames, 70);
}

TEST(StreamerTest, OutageCausesOneFreezeThenRecovers) {
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 20.0},
                     util::Rng(8));
  FrameStreamer streamer({});
  // 0.3 s outage in the middle of 2 s.
  const auto capacity = [](util::SimTimeUs now) {
    const bool out = now > util::us_from_s(1.0) &&
                     now < util::us_from_s(1.3);
    return out ? 0.0 : 23.5;
  };
  const auto stats =
      drive(source, streamer, util::us_from_s(2.0), capacity);
  EXPECT_EQ(stats.freeze_events, 1);
  EXPECT_GT(stats.frames_dropped, 15);
  EXPECT_LT(stats.frames_dropped, 45);
  EXPECT_GT(stats.delivery_rate(), 0.7);
}

TEST(StreamerTest, OverSubscribedLinkDegrades) {
  // Stream faster than the link: some frames must miss deadlines.
  FrameSource source({.fps = 90.0, .stream_rate_gbps = 30.0},
                     util::Rng(9));
  FrameStreamer streamer({});
  const auto stats = drive(source, streamer, util::us_from_s(2.0),
                           [](util::SimTimeUs) { return 23.5; });
  EXPECT_LT(stats.delivery_rate(), 0.95);
  EXPECT_GT(stats.frames_dropped, 0);
}

TEST(StreamerTest, DeadlineEnforced) {
  FrameSourceConfig config{.fps = 90.0, .stream_rate_gbps = 20.0};
  FrameSource source(config, util::Rng(10));
  StreamerConfig sc;
  sc.deadline = util::us_from_ms(5.0);  // tighter than the service time
  FrameStreamer streamer(sc);
  const auto stats = drive(source, streamer, util::us_from_s(1.0),
                           [](util::SimTimeUs) { return 23.5; });
  // ~9.4 ms service > 5 ms deadline: nothing can make it.
  EXPECT_EQ(stats.frames_delivered, 0);
}

TEST(StreamerTest, DeadlineBoundaryIsExact) {
  // Pins the exact expiry predicate `now > render_time + deadline`
  // (documented in net/streamer.hpp): a step landing AT the deadline
  // still delivers; one microsecond past it drops.  With the default
  // 22000 µs deadline, a frame rendered at 0 is droppable from 22001.
  {
    FrameStreamer streamer({});
    streamer.offer(Frame{0, 0, 1e6});
    streamer.step(22000, kSlot, 1.05);  // == render + deadline: serves
    EXPECT_EQ(streamer.stats().frames_delivered, 1);
    EXPECT_EQ(streamer.stats().frames_dropped, 0);
  }
  {
    FrameStreamer streamer({});
    streamer.offer(Frame{0, 0, 1e6});
    streamer.step(22001, kSlot, 1.05);  // one microsecond past: expired
    EXPECT_EQ(streamer.stats().frames_delivered, 0);
    EXPECT_EQ(streamer.stats().frames_dropped, 1);
  }
}

TEST(StreamerTest, DeadlineDropReShowsLastDeliveredFrame) {
  // The display keeps re-showing the last delivered frame while later
  // frames miss their deadline: last_delivered_id must not advance on
  // drops.
  FrameStreamer streamer({});
  EXPECT_EQ(streamer.stats().last_delivered_id, -1);
  streamer.offer(Frame{0, 0, 1e6});
  streamer.step(0, kSlot, 1.05);  // exactly one frame (incl. overhead)
  ASSERT_EQ(streamer.stats().frames_delivered, 1);
  EXPECT_EQ(streamer.stats().last_delivered_id, 0);

  // Two more frames rendered at t=0; by t=30 ms both are past the 22 ms
  // deadline and the link is down anyway.
  streamer.offer(Frame{1, 0, 1e6});
  streamer.offer(Frame{2, 0, 1e6});
  streamer.step(30000, kSlot, 0.0);
  EXPECT_EQ(streamer.stats().frames_dropped, 2);
  EXPECT_EQ(streamer.stats().last_delivered_id, 0);  // still re-shown
  // A run of two consecutive drops is exactly one freeze event.
  EXPECT_EQ(streamer.stats().freeze_events, 1);
  EXPECT_EQ(streamer.stats().longest_freeze_frames, 2);
}

TEST(StreamerTest, LinkOffBurstDropsFifoAndResumesInOrder) {
  obs::Registry registry;
  FrameStreamer streamer({});
  streamer.set_obs(&registry);

  // Three frames in flight when the link dies; the two oldest expire (in
  // FIFO order, from the queue front), the newest survives the outage.
  streamer.offer(Frame{0, 0, 1e6});
  streamer.offer(Frame{1, 5000, 1e6});
  streamer.offer(Frame{2, 40000, 1e6});
  streamer.step(30000, kSlot, 0.0);
  EXPECT_EQ(streamer.stats().frames_dropped, 2);
  EXPECT_EQ(streamer.queue_depth(), 1u);

  // Link restored: the surviving frame delivers, then a later one — ids
  // stay strictly increasing across the outage.
  streamer.step(41000, kSlot, 2.1);
  EXPECT_EQ(streamer.stats().last_delivered_id, 2);
  streamer.offer(Frame{3, 50000, 1e6});
  streamer.step(51000, kSlot, 2.1);
  EXPECT_EQ(streamer.stats().last_delivered_id, 3);
  EXPECT_EQ(streamer.stats().frames_delivered, 2);
  EXPECT_EQ(streamer.stats().freeze_events, 1);

  // The obs counters mirror the legacy stats struct exactly (in OFF
  // builds set_obs is a no-op and nothing is recorded).
  if constexpr (obs::kEnabled) {
    const StreamStats& stats = streamer.stats();
    EXPECT_EQ(registry.counter("stream_frames_offered_total").value(),
              static_cast<std::uint64_t>(stats.frames_offered));
    EXPECT_EQ(registry.counter("stream_frames_delivered_total").value(),
              static_cast<std::uint64_t>(stats.frames_delivered));
    EXPECT_EQ(registry.counter("stream_frames_dropped_total").value(),
              static_cast<std::uint64_t>(stats.frames_dropped));
    EXPECT_EQ(registry.counter("stream_freezes_total").value(),
              static_cast<std::uint64_t>(stats.freeze_events));
    EXPECT_EQ(registry
                  .histogram("stream_delivery_latency_us",
                             obs::HistogramSpec::duration_us())
                  .count(),
              static_cast<std::uint64_t>(stats.frames_delivered));
  }
}

TEST(StreamerTest, QueueDrainsInOrder) {
  FrameStreamer streamer({});
  Frame a{0, 0, 1e6};
  Frame b{1, 0, 1e6};
  streamer.offer(a);
  streamer.offer(b);
  EXPECT_EQ(streamer.queue_depth(), 2u);
  // Per slot: 1.05 Gbps * 1 ms = 1.05 Mbit = exactly one frame including
  // its 5 % overhead.
  streamer.step(0, kSlot, 1.05);
  EXPECT_EQ(streamer.queue_depth(), 1u);
  streamer.step(kSlot, kSlot, 1.05);
  EXPECT_EQ(streamer.queue_depth(), 0u);
  EXPECT_EQ(streamer.stats().frames_delivered, 2);
}

}  // namespace
}  // namespace cyclops::net

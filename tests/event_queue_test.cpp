// EventQueue discipline equivalence + slab-pool recycling (ISSUE 6).
//
// The calendar queue is only allowed to exist because it is
// observationally identical to the binary heap: same (time, FIFO) pop
// order under any interleaving of push / cancel / reschedule / pop.
// These tests drive both disciplines through the same randomized
// scripts and demand identical event streams, then pin the pool-slot
// recycling rules (bounded slab, generation-guarded ids) directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "event/event_queue.hpp"
#include "event/scheduler.hpp"
#include "util/rng.hpp"

namespace cyclops {
namespace {

using event::Event;
using event::EventQueue;
using Id = EventQueue::Id;
using Discipline = EventQueue::Discipline;

Event make_event(util::SimTimeUs time, std::int64_t tag) {
  Event ev;
  ev.time = time;
  ev.type = 7;
  ev.i64 = tag;
  return ev;
}

/// Runs the same randomized op script against both disciplines and
/// checks the popped streams match exactly.  Ids differ between the two
/// queues (the pool recycles slots in allocation order, the heap in its
/// own), so the script tracks paired ids and always cancels/reschedules
/// the SAME logical event in both.
void run_equivalence_script(std::uint64_t seed, double cancel_bias) {
  util::Rng rng(seed);
  EventQueue heap(Discipline::kBinaryHeap);
  // Narrow buckets + a small ring so the script crosses bucket windows
  // and the overflow ladder constantly, not just in the far tail.
  EventQueue cal(Discipline::kCalendar,
                 EventQueue::CalendarConfig{/*bucket_width_log2=*/4,
                                            /*bucket_count_log2=*/3});
  std::vector<std::pair<Id, Id>> live;  // (heap id, calendar id)
  util::SimTimeUs now = 0;
  std::int64_t next_tag = 0;
  std::vector<std::int64_t> heap_tags, cal_tags;
  std::vector<util::SimTimeUs> heap_times, cal_times;

  for (int op = 0; op < 4000; ++op) {
    const double r = rng.uniform();
    if (r < 0.45 || live.empty()) {
      // Push: mixed near/far offsets; duplicate times are common (the
      // FIFO tie-break is the property most worth hammering).
      const util::SimTimeUs t =
          now + static_cast<util::SimTimeUs>(rng.uniform_index(48));
      const Event ev = make_event(t, next_tag++);
      live.emplace_back(heap.push(ev), cal.push(ev));
    } else if (r < 0.45 + cancel_bias) {
      const std::size_t pick = rng.uniform_index(live.size());
      const bool a = heap.cancel(live[pick].first);
      const bool b = cal.cancel(live[pick].second);
      ASSERT_EQ(a, b);
      ASSERT_TRUE(a);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (r < 0.45 + cancel_bias + 0.15) {
      // Reschedule a random pending event to a fresh future time.
      const std::size_t pick = rng.uniform_index(live.size());
      const util::SimTimeUs t =
          now + static_cast<util::SimTimeUs>(rng.uniform_index(96));
      const Event ev = make_event(t, next_tag++);
      live[pick].first = heap.reschedule(live[pick].first, ev);
      live[pick].second = cal.reschedule(live[pick].second, ev);
      ASSERT_NE(live[pick].first, 0u);
      ASSERT_NE(live[pick].second, 0u);
    } else {
      Event ha, ca;
      ASSERT_EQ(heap.pop_next(ha), cal.pop_next(ca));
      ASSERT_EQ(ha.time, ca.time);
      ASSERT_EQ(ha.i64, ca.i64);
      heap_tags.push_back(ha.i64);
      cal_tags.push_back(ca.i64);
      heap_times.push_back(ha.time);
      cal_times.push_back(ca.time);
      ASSERT_GE(ha.time, now);  // pops are monotone
      now = ha.time;
      // The popped event is no longer cancellable; drop it from `live`
      // by matching either id.
      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const std::pair<Id, Id>& p) {
                                  return !heap.pending(p.first);
                                }),
                 live.end());
    }
    ASSERT_EQ(heap.size(), cal.size());
    ASSERT_EQ(heap.empty(), cal.empty());
  }

  // Drain both and compare the full remaining stream.
  Event ha, ca;
  while (heap.pop_next(ha)) {
    ASSERT_TRUE(cal.pop_next(ca));
    ASSERT_EQ(ha.time, ca.time);
    ASSERT_EQ(ha.i64, ca.i64);
  }
  ASSERT_FALSE(cal.pop_next(ca));
  EXPECT_EQ(heap_tags, cal_tags);
  EXPECT_EQ(heap_times, cal_times);
}

TEST(EventQueueEquivalence, RandomizedScriptsMatchHeap) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_equivalence_script(seed, /*cancel_bias=*/0.10);
  }
}

TEST(EventQueueEquivalence, CancelHeavyScriptsMatchHeap) {
  for (std::uint64_t seed = 100; seed <= 104; ++seed) {
    run_equivalence_script(seed, /*cancel_bias=*/0.30);
  }
}

TEST(EventQueueEquivalence, FifoOrderPreservedForEqualTimes) {
  for (const Discipline disc :
       {Discipline::kBinaryHeap, Discipline::kCalendar}) {
    EventQueue q(disc);
    for (std::int64_t i = 0; i < 64; ++i) q.push(make_event(10, i));
    Event ev;
    for (std::int64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(q.pop_next(ev));
      EXPECT_EQ(ev.i64, i) << "discipline broke FIFO among equal times";
    }
  }
}

TEST(EventQueueEquivalence, EmptyQueueJumpAcrossWindows) {
  // Single-pending-timer chains (the event_eval shape): each push lands
  // in an empty queue at a time arbitrarily far past the calendar
  // window.  Pops must track exactly.
  EventQueue q(Discipline::kCalendar,
               EventQueue::CalendarConfig{4, 3});
  util::SimTimeUs t = 0;
  util::Rng rng(9);
  Event ev;
  for (int i = 0; i < 1000; ++i) {
    t += static_cast<util::SimTimeUs>(1 + rng.uniform_index(1u << 14));
    q.push(make_event(t, i));
    ASSERT_TRUE(q.pop_next(ev));
    EXPECT_EQ(ev.time, t);
    EXPECT_EQ(ev.i64, i);
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueuePool, SlabStaysBoundedUnderChurn) {
  for (const Discipline disc :
       {Discipline::kBinaryHeap, Discipline::kCalendar}) {
    EventQueue q(disc);
    Event ev;
    util::SimTimeUs t = 0;
    for (int i = 0; i < 64; ++i) q.push(make_event(t + i, i));
    // Steady-state churn recycles freed slots; the slab must not grow
    // past the high-water mark of concurrently-live events.
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE(q.pop_next(ev));
      q.push(make_event(ev.time + 64, ev.i64));
    }
    EXPECT_LE(q.pool_slots(), 64u) << "pool leaked slots under churn";
  }
}

TEST(EventQueuePool, StaleIdNeverResurrectsRecycledSlot) {
  for (const Discipline disc :
       {Discipline::kBinaryHeap, Discipline::kCalendar}) {
    EventQueue q(disc);
    const Id dead = q.push(make_event(5, 1));
    ASSERT_TRUE(q.cancel(dead));
    // The freed slot is recycled by the next push; the old id's
    // generation no longer matches.
    const Id heir = q.push(make_event(6, 2));
    ASSERT_NE(dead, heir);
    EXPECT_FALSE(q.pending(dead));
    EXPECT_FALSE(q.cancel(dead)) << "stale id cancelled the new occupant";
    EXPECT_TRUE(q.pending(heir));
    Event ev;
    ASSERT_TRUE(q.pop_next(ev));
    EXPECT_EQ(ev.i64, 2);
    // Popped ids go stale the same way cancelled ones do.
    EXPECT_FALSE(q.cancel(heir));
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueuePool, GenerationSurvivesManyRecycles) {
  EventQueue q;
  std::vector<Id> history;
  for (int i = 0; i < 256; ++i) {
    const Id id = q.push(make_event(i, i));
    history.push_back(id);
    ASSERT_TRUE(q.cancel(id));
  }
  // One slot, recycled 256 times: every historical id must now be dead.
  EXPECT_EQ(q.pool_slots(), 1u);
  for (const Id id : history) EXPECT_FALSE(q.pending(id));
}

TEST(EventQueuePool, ClearKeepsSlabAndRestartsLikeFresh) {
  for (const Discipline disc :
       {Discipline::kBinaryHeap, Discipline::kCalendar}) {
    EventQueue q(disc);
    std::vector<Id> ids;
    for (int i = 0; i < 48; ++i) ids.push_back(q.push(make_event(i * 3, i)));
    const std::size_t slab = q.pool_slots();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.pool_slots(), slab) << "clear() must keep the slab";
    // Every pre-clear id is dead: no pending hits, no cancels of the
    // slots' new occupants.
    for (const Id id : ids) EXPECT_FALSE(q.pending(id));
    for (const Id id : ids) EXPECT_FALSE(q.cancel(id));
    // The reused queue is observationally a fresh one: same (time, FIFO)
    // pop order for the same pushes, including equal-time ties.
    EventQueue fresh(disc);
    for (int i = 0; i < 48; ++i) {
      const util::SimTimeUs t = 1000 + (i % 4) * 10;
      q.push(make_event(t, i));
      fresh.push(make_event(t, i));
    }
    Event a, b;
    while (fresh.pop_next(b)) {
      ASSERT_TRUE(q.pop_next(a));
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.i64, b.i64);
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(SchedulerReschedule, MutatesTimerInPlaceOrSchedulesFresh) {
  event::Scheduler sched;
  event::Timer timer;
  Event ev = make_event(10, 1);
  // Invalid timer: reschedule degrades to a fresh schedule.
  EXPECT_FALSE(sched.reschedule(timer, ev));
  EXPECT_TRUE(timer.valid());
  EXPECT_EQ(sched.scheduled(), 1u);
  // Live timer: superseded in place — still exactly one pending event.
  ev = make_event(4, 2);
  EXPECT_TRUE(sched.reschedule(timer, ev));
  EXPECT_TRUE(timer.valid());
  EXPECT_EQ(sched.scheduled(), 2u);
  EXPECT_FALSE(sched.empty());
  EXPECT_TRUE(sched.cancel(timer));
  EXPECT_TRUE(sched.empty());
}

}  // namespace
}  // namespace cyclops

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tracking/vrh_tracker.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cyclops::tracking {
namespace {

VrhTracker make_tracker(TrackerConfig config = {},
                        geom::Pose vr = geom::Pose::identity(),
                        geom::Pose x = geom::Pose::identity(),
                        std::uint64_t seed = 1) {
  return VrhTracker(config, vr, x, util::Rng(seed));
}

TEST(TrackerScheduleTest, PeriodNear12To13Ms) {
  VrhTracker tracker = make_tracker();
  util::SimTimeUs now = 0;
  util::RunningStats gaps;
  int outliers = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const util::SimTimeUs next = tracker.next_capture_time(now);
    const double gap_ms = util::us_to_ms(next - now);
    gaps.add(gap_ms);
    if (gap_ms > 13.5) ++outliers;
    tracker.report(next, geom::Pose::identity());  // consume the slot
    now = next;
  }
  // §5.2: every 12-13 ms except ~0.7 % at 14-15 ms.
  EXPECT_GT(gaps.mean(), 12.0);
  EXPECT_LT(gaps.mean(), 13.1);
  const double outlier_fraction = static_cast<double>(outliers) / n;
  EXPECT_GT(outlier_fraction, 0.002);
  EXPECT_LT(outlier_fraction, 0.02);
}

TEST(TrackerScheduleTest, NextCaptureIsStableUntilConsumed) {
  VrhTracker tracker = make_tracker();
  const util::SimTimeUs a = tracker.next_capture_time(0);
  const util::SimTimeUs b = tracker.next_capture_time(0);
  EXPECT_EQ(a, b);
}

TEST(TrackerScheduleTest, DeliveryIncludesControlChannel) {
  TrackerConfig config;
  config.report_latency_ms = 0.5;
  VrhTracker tracker = make_tracker(config);
  const PoseReport report = tracker.report(10000, geom::Pose::identity());
  EXPECT_EQ(report.delivery_time - report.capture_time, 500);
}

TEST(TrackerNoiseTest, StationarySpreadMatchesPaper) {
  // §5.2: stationary VRH over 30 min wandered <= 1.79 mm and 0.41 mrad.
  VrhTracker tracker = make_tracker();
  const geom::Pose rig = geom::Pose::identity();
  util::RunningStats x, y, z;
  double max_angle = 0.0;
  for (int i = 0; i < 144000; ++i) {  // 30 min at 12.5 ms
    const PoseReport report = tracker.report(i, rig);
    const geom::Vec3& t = report.pose.translation();
    x.add(t.x);
    y.add(t.y);
    z.add(t.z);
    max_angle =
        std::max(max_angle, geom::rotation_distance(rig, report.pose));
  }
  const double spread =
      std::max({x.max() - x.min(), y.max() - y.min(), z.max() - z.min()});
  EXPECT_GT(spread, 0.5e-3);
  EXPECT_LT(spread, 2.5e-3);
  EXPECT_GT(max_angle, 0.05e-3);
  EXPECT_LT(max_angle, 0.6e-3);
}

TEST(TrackerFrameTest, IdealReportComposesFrames) {
  const geom::Pose vr{geom::Mat3::rotation({0, 0, 1}, 0.3), {1, 2, 3}};
  const geom::Pose x{geom::Mat3::rotation({1, 0, 0}, -0.2), {0.1, 0.05, 0.0}};
  VrhTracker tracker = make_tracker({}, vr, x);
  const geom::Pose rig{geom::Mat3::rotation({0, 1, 0}, 0.7), {-0.5, 0.8, 1.2}};
  const geom::Pose ideal = tracker.ideal_report(rig);
  const geom::Pose expected = vr * rig * x;
  EXPECT_NEAR(geom::translation_distance(ideal, expected), 0.0, 1e-12);
  EXPECT_NEAR(geom::rotation_distance(ideal, expected), 0.0, 1e-12);
}

TEST(TrackerFrameTest, ReportedPoseIsNotWorldPose) {
  // The whole Stage-2 problem: the report differs from the rig's world
  // pose by the two hidden frames.
  const geom::Pose vr{geom::Mat3::rotation({0, 1, 0}, 1.0), {2, 0, 0}};
  const geom::Pose x{geom::Mat3::identity(), {0, 0.12, 0.08}};
  VrhTracker tracker = make_tracker({}, vr, x);
  const geom::Pose rig = geom::Pose::identity();
  const geom::Pose ideal = tracker.ideal_report(rig);
  EXPECT_GT(geom::translation_distance(ideal, rig), 0.1);
}

TEST(TrackerNoiseTest, NoiseIsCenteredOnIdeal) {
  VrhTracker tracker = make_tracker();
  const geom::Pose rig{geom::Mat3::rotation({0, 0, 1}, 0.4), {0.3, 0.9, 1.1}};
  geom::Vec3 sum{};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const PoseReport report = tracker.report(i, rig);
    sum += report.pose.translation() - tracker.ideal_report(rig).translation();
  }
  EXPECT_LT((sum / n).norm(), 0.05e-3);
}

TEST(TrackerNoiseTest, DistinctSeedsGiveDistinctNoise) {
  VrhTracker a = make_tracker({}, geom::Pose::identity(),
                              geom::Pose::identity(), 1);
  VrhTracker b = make_tracker({}, geom::Pose::identity(),
                              geom::Pose::identity(), 2);
  const geom::Pose rig = geom::Pose::identity();
  const auto ra = a.report(0, rig);
  const auto rb = b.report(0, rig);
  EXPECT_GT(geom::translation_distance(ra.pose, rb.pose), 0.0);
}

}  // namespace
}  // namespace cyclops::tracking

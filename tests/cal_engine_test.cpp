// The resumable calibration engine's equivalence contracts
// (cal/engine.hpp): however the steps are sliced — one-shot adapter,
// direct while(step()), chunked stepping, event-driven
// cal::CalibrationProcess, or a checkpoint/file/restore cycle mid-flight —
// the CalibrationResult and the caller-visible RNG stream are
// bit-identical.  Twin prototypes from the same seed make the runs
// independent while keeping every draw comparable.
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "cal/checkpoint.hpp"
#include "cal/engine.hpp"
#include "cal/process.hpp"
#include "core/calibration.hpp"
#include "event/scheduler.hpp"
#include "sim/prototype.hpp"
#include "util/rng.hpp"

using namespace cyclops;

namespace {

constexpr std::uint64_t kSeed = 777;

/// Small but complete pipeline: a reduced board grid and Stage-2 sample
/// count keep the full calibration in test-suite time while still
/// crossing every phase boundary.
core::CalibrationConfig small_config() {
  core::CalibrationConfig config;
  config.board.cells_x = 8;
  config.board.cells_y = 6;
  config.stage2_samples = 6;
  // The reduced board rarely reaches the 1e-12 relative-cost tolerance;
  // cap the iteration budget — equivalence, not convergence, is under
  // test, and a bounded budget keeps every twin run fast.
  config.stage1_options.max_iterations = 60;
  return config;
}

sim::Prototype make_proto() {
  return sim::make_prototype(kSeed, sim::prototype_10g_config());
}

void expect_pose_eq(const geom::Pose& a, const geom::Pose& b) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(a.rotation().m[i][j], b.rotation().m[i][j]);
    }
  }
  EXPECT_EQ(a.translation().x, b.translation().x);
  EXPECT_EQ(a.translation().y, b.translation().y);
  EXPECT_EQ(a.translation().z, b.translation().z);
}

void expect_calibration_eq(const core::CalibrationResult& a,
                           const core::CalibrationResult& b) {
  const auto tx_a = a.tx_stage1.model.params().pack();
  const auto tx_b = b.tx_stage1.model.params().pack();
  for (std::size_t i = 0; i < tx_a.size(); ++i) EXPECT_EQ(tx_a[i], tx_b[i]);
  const auto rx_a = a.rx_stage1.model.params().pack();
  const auto rx_b = b.rx_stage1.model.params().pack();
  for (std::size_t i = 0; i < rx_a.size(); ++i) EXPECT_EQ(rx_a[i], rx_b[i]);
  EXPECT_EQ(a.tx_stage1.avg_error_m, b.tx_stage1.avg_error_m);
  EXPECT_EQ(a.rx_stage1.avg_error_m, b.rx_stage1.avg_error_m);
  EXPECT_EQ(a.tx_stage1.optimizer_iterations, b.tx_stage1.optimizer_iterations);
  EXPECT_EQ(a.rx_stage1.optimizer_iterations, b.rx_stage1.optimizer_iterations);

  expect_pose_eq(a.mapping.map_tx, b.mapping.map_tx);
  expect_pose_eq(a.mapping.map_rx, b.mapping.map_rx);
  EXPECT_EQ(a.mapping.avg_coincidence_m, b.mapping.avg_coincidence_m);
  EXPECT_EQ(a.mapping.max_coincidence_m, b.mapping.max_coincidence_m);
  EXPECT_EQ(a.mapping.optimizer_iterations, b.mapping.optimizer_iterations);
  EXPECT_EQ(a.mapping.converged, b.mapping.converged);

  ASSERT_EQ(a.stage2_samples.size(), b.stage2_samples.size());
  for (std::size_t i = 0; i < a.stage2_samples.size(); ++i) {
    EXPECT_EQ(a.stage2_samples[i].voltages.tx1, b.stage2_samples[i].voltages.tx1);
    EXPECT_EQ(a.stage2_samples[i].voltages.rx2, b.stage2_samples[i].voltages.rx2);
    expect_pose_eq(a.stage2_samples[i].psi, b.stage2_samples[i].psi);
  }
}

void expect_rng_eq(const util::RngState& a, const util::RngState& b) {
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.s[i], b.s[i]);
  EXPECT_EQ(a.cached_normal, b.cached_normal);
  EXPECT_EQ(a.has_cached_normal, b.has_cached_normal);
}

class CalEngineTest : public ::testing::Test {
 protected:
  // One reference one-shot run for the whole suite (the adapter itself is
  // engine-driven, so this doubles as the adapter equivalence baseline).
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(make_proto());
    util::Rng rng(kSeed);
    reference_ = new core::CalibrationResult(
        core::calibrate_prototype(*proto_, small_config(), rng));
    reference_rng_ = new util::RngState(rng.state());
  }
  static void TearDownTestSuite() {
    delete reference_rng_;
    delete reference_;
    delete proto_;
    reference_rng_ = nullptr;
    reference_ = nullptr;
    proto_ = nullptr;
  }

  static sim::Prototype* proto_;
  static core::CalibrationResult* reference_;
  static util::RngState* reference_rng_;
};

sim::Prototype* CalEngineTest::proto_ = nullptr;
core::CalibrationResult* CalEngineTest::reference_ = nullptr;
util::RngState* CalEngineTest::reference_rng_ = nullptr;

TEST_F(CalEngineTest, ReferenceCalibrationIsUsable) {
  // The capped Stage-1 budget may stop short of the convergence flag;
  // board accuracy is what the pipeline actually needs.
  EXPECT_LT(reference_->tx_stage1.avg_error_m, 2e-3);
  EXPECT_LT(reference_->rx_stage1.avg_error_m, 2e-3);
  EXPECT_TRUE(reference_->mapping.converged);
  EXPECT_LT(reference_->mapping.avg_coincidence_m, 0.02);
  EXPECT_EQ(reference_->stage2_samples.size(), 6u);
}

TEST_F(CalEngineTest, DirectSteppingMatchesOneShotAdapter) {
  sim::Prototype proto = make_proto();
  cal::CalibrationEngine engine(proto, small_config(), util::Rng(kSeed));
  std::uint64_t steps = 0;
  while (engine.step()) ++steps;
  EXPECT_EQ(engine.steps(), steps + 1);
  EXPECT_EQ(engine.phase(), cal::Phase::kDone);
  expect_calibration_eq(*reference_, engine.result());
  expect_rng_eq(*reference_rng_, engine.rng_state());
}

TEST_F(CalEngineTest, ChunkedSteppingMatchesOneShot) {
  // Odd-sized batches land mid-phase constantly — slicing must not matter.
  sim::Prototype proto = make_proto();
  cal::CalibrationEngine engine(proto, small_config(), util::Rng(kSeed));
  while (!engine.done()) {
    for (int i = 0; i < 7 && engine.step(); ++i) {
    }
  }
  expect_calibration_eq(*reference_, engine.result());
  expect_rng_eq(*reference_rng_, engine.rng_state());
}

TEST_F(CalEngineTest, EventDrivenProcessMatchesOneShot) {
  sim::Prototype proto = make_proto();
  cal::CalibrationEngine engine(proto, small_config(), util::Rng(kSeed));
  event::Scheduler sched;
  cal::CalibrationProcess process(engine);
  process.start(sched);
  const std::uint64_t dispatched = sched.run();
  EXPECT_TRUE(process.done());
  EXPECT_EQ(process.events(), dispatched);
  EXPECT_GT(process.events(), 0u);
  // Collection ticks at sample_interval_us, fits at fit_interval_us —
  // simulated bench time must have advanced.
  EXPECT_GT(sched.now(), 0);
  expect_calibration_eq(*reference_, engine.result());
  expect_rng_eq(*reference_rng_, engine.rng_state());
}

TEST_F(CalEngineTest, CheckpointFileRestoreContinuesBitExactly) {
  // Run twin A to a mid-Stage-1-fit boundary and checkpoint through the
  // text format — the power-cycle scenario: restore into a COMPLETELY
  // fresh engine (different rng seed, no pre-stepping) on a fresh twin
  // prototype.  Any field the format fails to round-trip diverges the
  // continuation.
  sim::Prototype proto_a = make_proto();
  cal::CalibrationEngine a(proto_a, small_config(), util::Rng(kSeed));
  while (a.phase() != cal::Phase::kStage1TxFit) a.step();
  for (int i = 0; i < 3; ++i) a.step();

  std::ostringstream out;
  cal::write_engine_checkpoint(out, a.checkpoint());
  std::istringstream in(out.str());
  const cal::EngineCheckpoint parsed = cal::read_engine_checkpoint(in);

  sim::Prototype proto_b = make_proto();
  cal::CalibrationEngine b(proto_b, small_config(), util::Rng(kSeed + 99));
  b.restore(parsed);
  EXPECT_EQ(b.phase(), a.phase());
  EXPECT_EQ(b.steps(), a.steps());

  while (b.step()) {
  }
  expect_calibration_eq(*reference_, b.result());
  expect_rng_eq(*reference_rng_, b.rng_state());
}

TEST_F(CalEngineTest, CheckpointAtStage2BoundaryContinues) {
  // Stage-2 collection mutates the rig, so the restore target must be at
  // the same boundary (live rig state is deliberately not engine state).
  sim::Prototype proto_a = make_proto();
  cal::CalibrationEngine a(proto_a, small_config(), util::Rng(kSeed));
  while (a.phase() != cal::Phase::kStage2Collect) a.step();
  for (int i = 0; i < 2; ++i) a.step();

  std::ostringstream out;
  cal::write_engine_checkpoint(out, a.checkpoint());
  std::istringstream in(out.str());

  sim::Prototype proto_b = make_proto();
  cal::CalibrationEngine b(proto_b, small_config(), util::Rng(kSeed));
  while (b.steps() < a.steps()) b.step();
  b.restore(cal::read_engine_checkpoint(in));
  while (b.step()) {
  }
  expect_calibration_eq(*reference_, b.result());
  expect_rng_eq(*reference_rng_, b.rng_state());
}

TEST_F(CalEngineTest, RestoreRejectsOutOfRangePhase) {
  sim::Prototype proto = make_proto();
  cal::CalibrationEngine engine(proto, small_config(), util::Rng(kSeed));
  cal::EngineCheckpoint cp = engine.checkpoint();
  cp.phase = 42;
  EXPECT_THROW(engine.restore(cp), std::runtime_error);
}

}  // namespace

// End-to-end arena session tests: TX failure migration, the
// no-silent-drop accountability invariant, duty violations under fuzzed
// configurations, determinism across driver-pool thread counts, and the
// obs counter contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arena/session.hpp"
#include "arena/topology.hpp"
#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::arena {
namespace {

ArenaTopology small_arena(std::size_t num_tx, std::size_t players,
                          Scenario scenario, double duration_s,
                          std::uint64_t seed) {
  const ArenaConfig config;
  return ArenaTopology(config, num_tx,
                       ArenaTopology::make_tracks(config, players, scenario,
                                                  duration_s, seed));
}

int count_kind(const ArenaResult& result, ArenaEventKind kind,
               int headset = -2) {
  int n = 0;
  for (const ArenaEvent& ev : result.log) {
    if (ev.kind == kind && (headset == -2 || ev.headset == headset)) ++n;
  }
  return n;
}

// The accountability trail must reconcile with the aggregate counters and
// per-headset QoE exactly: every admission, migration, and eviction is in
// the log, and an admitted headset never vanishes without one.
void check_log_invariants(const ArenaResult& result) {
  EXPECT_EQ(count_kind(result, ArenaEventKind::kAdmitted),
            result.admissions);
  EXPECT_EQ(count_kind(result, ArenaEventKind::kQueued), result.queued);
  EXPECT_EQ(count_kind(result, ArenaEventKind::kRejected),
            result.rejections);
  EXPECT_EQ(count_kind(result, ArenaEventKind::kMigrated),
            result.migrations);
  EXPECT_EQ(count_kind(result, ArenaEventKind::kEvicted), result.evictions);

  for (std::size_t h = 0; h < result.headsets.size(); ++h) {
    const HeadsetQoE& q = result.headsets[h];
    const int id = static_cast<int>(h);
    EXPECT_EQ(count_kind(result, ArenaEventKind::kMigrated, id),
              q.migrations);
    const int admits = count_kind(result, ArenaEventKind::kAdmitted, id);
    const int evicts = count_kind(result, ArenaEventKind::kEvicted, id);
    if (q.admitted) {
      EXPECT_GE(admits, 1);
      // No silent drop: a headset that held a roster slot but holds none
      // at session end must show the eviction in the log.
      if (q.final_tx < 0) {
        EXPECT_GE(evicts, 1)
            << "headset " << h << " lost its slot with no eviction logged";
      }
      // Slot churn balances: you can only be evicted once per admission.
      EXPECT_GE(admits, evicts);
      EXPECT_LE(admits, evicts + 1);
    } else {
      EXPECT_EQ(admits, 0);
      EXPECT_EQ(q.migrations, 0);
      EXPECT_EQ(q.final_tx, -1);
    }
  }

  // Timestamps are in tick order.
  for (std::size_t i = 1; i < result.log.size(); ++i) {
    EXPECT_LE(result.log[i - 1].time, result.log[i].time);
  }
}

TEST(ArenaSessionTest, TxFailureForcesLoggedMigrations) {
  const ArenaTopology topo =
      small_arena(2, 3, Scenario::kUniform, 6.0, 11);
  ArenaOptions options;
  options.duration_s = 6.0;
  options.tx_failed = [](util::SimTimeUs t, std::size_t tx) {
    return tx == 0 && t >= util::us_from_s(2.0);
  };
  const ArenaResult result = run_arena_session(topo, options);

  EXPECT_GE(result.admissions, 1);
  EXPECT_EQ(count_kind(result, ArenaEventKind::kTxFailed), 1);
  // Anyone on TX0 at t=2 either migrates to TX1 or is evicted — and
  // nobody ends the session assigned to the dead TX.
  EXPECT_GE(result.migrations + result.evictions, 1);
  for (const HeadsetQoE& q : result.headsets) {
    EXPECT_NE(q.final_tx, 0);
  }
  check_log_invariants(result);
}

TEST(ArenaSessionTest, DutyRespectedAndLogConsistentAcrossFuzzedRuns) {
  util::Rng rng(0xBEEF);
  const Scenario scenarios[] = {Scenario::kUniform,
                               Scenario::kClusteredCorner,
                               Scenario::kSyncFastMotion};
  const SchedulePolicy policies[] = {SchedulePolicy::kRoundRobin,
                                     SchedulePolicy::kMarginWeighted,
                                     SchedulePolicy::kPredictive};
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t num_tx = 1 + rng.uniform_index(4);
    const std::size_t players = 2 + rng.uniform_index(7);
    const double duration_s = 3.0;
    const ArenaTopology topo =
        small_arena(num_tx, players, scenarios[rng.uniform_index(3)],
                    duration_s, 100 + static_cast<std::uint64_t>(trial));
    ArenaOptions options;
    options.duration_s = duration_s;
    options.scheduler.policy = policies[rng.uniform_index(3)];
    options.scheduler.duty_budget = rng.uniform(0.3, 1.0);
    const ArenaResult result = run_arena_session(topo, options);

    ASSERT_EQ(result.duty_violations, 0) << "trial " << trial;
    for (const double duty : result.per_tx_duty) {
      // Frame-budget enforcement bounds long-run duty by the budget
      // (floor rounding can only lower it; +1-slot slack for the
      // at-least-one clamp on tiny budgets).
      EXPECT_LE(duty, std::max(options.scheduler.duty_budget,
                               1.0 / options.scheduler.frame_slots) + 1e-9)
          << "trial " << trial;
    }
    check_log_invariants(result);
  }
}

TEST(ArenaSessionTest, OversubscribedRoomQueuesAndRejects) {
  // One TX, a crowd far beyond one galvo's capacity: admission control
  // must queue up to its bound and reject the rest — all logged.
  const ArenaTopology topo =
      small_arena(1, 18, Scenario::kClusteredCorner, 2.0, 21);
  ArenaOptions options;
  options.duration_s = 2.0;
  options.sla.queue_capacity = 4;
  const ArenaResult result = run_arena_session(topo, options);
  EXPECT_GT(result.queued, 0);
  EXPECT_GT(result.rejections, 0);
  check_log_invariants(result);
}

TEST(ArenaSessionTest, ByteIdenticalAcrossDriverPoolThreadCounts) {
  const ArenaTopology topo =
      small_arena(4, 6, Scenario::kUniform, 5.0, 42);
  ArenaOptions options;
  options.duration_s = 5.0;
  options.scheduler.policy = SchedulePolicy::kPredictive;
  options.tx_failed = [](util::SimTimeUs t, std::size_t tx) {
    return tx == 1 && t >= util::us_from_s(2.5);
  };

  const ArenaResult plain = run_arena_session(topo, options);
  std::vector<ArenaResult> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::Context ctx =
        runtime::Context::isolated({.threads = threads});
    runs.push_back(run_arena_session(topo, options, ctx));
  }

  for (const ArenaResult& r : runs) {
    EXPECT_EQ(r.admissions, plain.admissions);
    EXPECT_EQ(r.queued, plain.queued);
    EXPECT_EQ(r.rejections, plain.rejections);
    EXPECT_EQ(r.migrations, plain.migrations);
    EXPECT_EQ(r.cancelled_migrations, plain.cancelled_migrations);
    EXPECT_EQ(r.evictions, plain.evictions);
    EXPECT_EQ(r.duty_violations, plain.duty_violations);
    EXPECT_EQ(r.events, plain.events);
    EXPECT_EQ(r.schedule_efficiency, plain.schedule_efficiency);
    ASSERT_EQ(r.per_tx_duty.size(), plain.per_tx_duty.size());
    for (std::size_t tx = 0; tx < r.per_tx_duty.size(); ++tx) {
      EXPECT_EQ(r.per_tx_duty[tx], plain.per_tx_duty[tx]);
    }
    ASSERT_EQ(r.headsets.size(), plain.headsets.size());
    for (std::size_t h = 0; h < r.headsets.size(); ++h) {
      const HeadsetQoE &a = r.headsets[h], &b = plain.headsets[h];
      EXPECT_EQ(a.admitted, b.admitted);
      EXPECT_EQ(a.final_tx, b.final_tx);
      EXPECT_EQ(a.avg_rate_gbps, b.avg_rate_gbps);       // bit-exact
      EXPECT_EQ(a.served_fraction, b.served_fraction);
      EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
      EXPECT_EQ(a.occluded_fraction, b.occluded_fraction);
      EXPECT_EQ(a.longest_outage_s, b.longest_outage_s);
      EXPECT_EQ(a.migrations, b.migrations);
      EXPECT_EQ(a.sla_met, b.sla_met);
    }
    ASSERT_EQ(r.log.size(), plain.log.size());
    for (std::size_t i = 0; i < r.log.size(); ++i) {
      EXPECT_EQ(r.log[i].time, plain.log[i].time);
      EXPECT_EQ(r.log[i].kind, plain.log[i].kind);
      EXPECT_EQ(r.log[i].headset, plain.log[i].headset);
      EXPECT_EQ(r.log[i].tx, plain.log[i].tx);
    }
  }
}

TEST(ArenaSessionTest, ObsCountersMatchResult) {
  const ArenaTopology topo =
      small_arena(2, 4, Scenario::kUniform, 4.0, 17);
  ArenaOptions options;
  options.duration_s = 4.0;
  options.tx_failed = [](util::SimTimeUs t, std::size_t tx) {
    return tx == 0 && t >= util::us_from_s(1.5);
  };
  obs::Registry registry;
  const ArenaResult result = run_arena_session(topo, options, &registry);

  const auto value = [&](const char* name) {
    return registry.counter(name).value();
  };
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(value("arena_admissions_total"),
              static_cast<std::uint64_t>(result.admissions));
    EXPECT_EQ(value("arena_migrations_total"),
              static_cast<std::uint64_t>(result.migrations));
    EXPECT_EQ(value("arena_evictions_total"),
              static_cast<std::uint64_t>(result.evictions));
    EXPECT_EQ(value("arena_duty_violations_total"), 0u);
    EXPECT_EQ(value("arena_tx_failures_total"), 1u);
    EXPECT_GT(value("arena_slots_total"), 0u);
    EXPECT_GE(value("arena_slots_total"), value("arena_delivered_slots_total"));
  } else {
    EXPECT_EQ(value("arena_admissions_total"), 0u);  // OFF build: no-op
  }
  // And the registry-free overload must behave identically.
  const ArenaResult bare = run_arena_session(topo, options, nullptr);
  EXPECT_EQ(bare.admissions, result.admissions);
  EXPECT_EQ(bare.migrations, result.migrations);
  EXPECT_EQ(bare.events, result.events);
}

TEST(ArenaSessionTest, SlaMetCountMatchesHeadsets) {
  const ArenaTopology topo =
      small_arena(2, 4, Scenario::kUniform, 3.0, 5);
  ArenaOptions options;
  options.duration_s = 3.0;
  const ArenaResult result = run_arena_session(topo, options);
  int n = 0;
  for (const HeadsetQoE& q : result.headsets) n += q.sla_met ? 1 : 0;
  EXPECT_EQ(result.sla_met_count(), n);
}

}  // namespace
}  // namespace cyclops::arena

#include <gtest/gtest.h>

#include <cmath>

#include "optics/beam.hpp"
#include "optics/coupling.hpp"
#include "optics/gaussian_beam.hpp"
#include "optics/link_budget.hpp"
#include "optics/photodiode.hpp"
#include "optics/sfp.hpp"
#include "util/units.hpp"

namespace cyclops::optics {
namespace {

// ---- GaussianBeam ----

TEST(GaussianBeamTest, WaistIsMinimum) {
  const GaussianBeam beam(2e-3, 1550e-9);
  EXPECT_DOUBLE_EQ(beam.radius_at(0.0), 2e-3);
  EXPECT_GT(beam.radius_at(1.0), 2e-3);
  EXPECT_GT(beam.radius_at(10.0), beam.radius_at(1.0));
}

TEST(GaussianBeamTest, RayleighRange) {
  const GaussianBeam beam(2e-3, 1550e-9);
  const double zr = util::kPi * 4e-6 / 1550e-9;
  EXPECT_NEAR(beam.rayleigh_range(), zr, 1e-9);
  EXPECT_NEAR(beam.radius_at(zr), 2e-3 * std::numbers::sqrt2, 1e-9);
}

TEST(GaussianBeamTest, CollimatedDesignHasNegligibleSpreadOverLink) {
  // A 10 mm 1550 nm beam grows imperceptibly over 2 m — this justifies the
  // constant-diameter envelope for the collimated design.
  const GaussianBeam beam(5e-3, 1550e-9);
  EXPECT_LT(beam.radius_at(2.0) / beam.radius_at(0.0), 1.001);
}

TEST(GaussianBeamTest, DivergenceHalfAngle) {
  const GaussianBeam beam(1e-3, 1550e-9);
  EXPECT_NEAR(beam.divergence_half_angle(), 1550e-9 / (util::kPi * 1e-3),
              1e-12);
}

TEST(GaussianBeamTest, PowerFractionProperties) {
  const GaussianBeam beam(2e-3, 1550e-9);
  EXPECT_NEAR(beam.power_fraction_within(1e9, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(beam.power_fraction_within(0.0, 0.0), 0.0, 1e-12);
  // Within one waist radius: 1 - e^-2 ≈ 86.5 %.
  EXPECT_NEAR(beam.power_fraction_within(2e-3, 0.0), 1.0 - std::exp(-2.0),
              1e-9);
}

TEST(GaussianBeamTest, IntensityFallsOffAxis) {
  const GaussianBeam beam(2e-3, 1550e-9);
  EXPECT_GT(beam.relative_intensity(0.0, 1.0),
            beam.relative_intensity(1e-3, 1.0));
}

// ---- BeamSpec / TracedBeam ----

TEST(BeamSpecTest, DivergingForReachesTarget) {
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const TracedBeam beam = launch_beam({{0, 0, 0}, {0, 0, 1}}, spec);
  const double d = beam.envelope_diameter_at({0, 0, 1.5});
  EXPECT_NEAR(d, 20e-3, 0.5e-3);
}

TEST(BeamSpecTest, LaunchDiameterAtOrigin) {
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const TracedBeam beam = launch_beam({{0, 0, 0}, {0, 0, 1}}, spec);
  EXPECT_NEAR(beam.envelope_diameter_at({0, 0, 0}), 2e-3, 1e-6);
}

TEST(BeamSpecTest, CollimatedConstantDiameter) {
  const TracedBeam beam =
      launch_beam({{0, 0, 0}, {0, 0, 1}}, BeamSpec::collimated(20e-3));
  EXPECT_DOUBLE_EQ(beam.envelope_diameter_at({0, 0, 0.1}), 20e-3);
  EXPECT_DOUBLE_EQ(beam.envelope_diameter_at({0, 0, 5.0}), 20e-3);
}

TEST(TracedBeamTest, ArrivingDirCollimatedIsChief) {
  const TracedBeam beam =
      launch_beam({{0, 0, 0}, {0, 0, 1}}, BeamSpec::collimated(20e-3));
  const geom::Vec3 dir = beam.arriving_dir_at({0.05, 0, 1.0});
  EXPECT_NEAR(dir.z, 1.0, 1e-12);
}

TEST(TracedBeamTest, ArrivingDirDivergingPointsFromApex) {
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const TracedBeam beam = launch_beam({{0, 0, 0}, {0, 0, 1}}, spec);
  // Off-axis point: the arriving ray is tilted away from the chief.
  const geom::Vec3 p{0.05, 0, 1.5};
  const geom::Vec3 dir = beam.arriving_dir_at(p);
  EXPECT_GT(dir.x, 0.0);
  // And it must point from the apex through p.
  const geom::Vec3 expected = (p - beam.apex).normalized();
  EXPECT_NEAR(dir.x, expected.x, 1e-12);
  EXPECT_NEAR(dir.z, expected.z, 1e-12);
}

TEST(TracedBeamTest, KeyTxTiltInvariance) {
  // THE diverging-beam property behind Table 1: rotating the TX slides the
  // envelope but the ray arriving at a fixed point keeps (nearly) the same
  // direction, because it still emanates from (nearly) the same apex.
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const geom::Vec3 p{0.0, 0.0, 1.5};

  const TracedBeam straight = launch_beam({{0, 0, 0}, {0, 0, 1}}, spec);
  const geom::Mat3 tilt = geom::Mat3::rotation({1, 0, 0}, 10e-3);
  const TracedBeam tilted =
      launch_beam({{0, 0, 0}, tilt * geom::Vec3{0, 0, 1}}, spec);

  const double dir_change = geom::angle_between(straight.arriving_dir_at(p),
                                                tilted.arriving_dir_at(p));
  // The apex sits ~0.17 m behind the launch point, so a 10 mrad tilt moves
  // it ~1.7 mm laterally; the arriving direction changes by ~1 mrad, an
  // order of magnitude less than the tilt itself.
  EXPECT_LT(dir_change, 2.5e-3);
  // The envelope, by contrast, moved by roughly tilt * range.
  EXPECT_GT(tilted.envelope_offset(p), 10e-3);
}

TEST(TracedBeamTest, ReflectionPreservesEnvelope) {
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const TracedBeam beam = launch_beam({{0, 0, -0.5}, {0, 0, 1}}, spec);
  const geom::Plane mirror{{0, 0, 0}, geom::Vec3{0, 1, -1}.normalized()};
  const auto reflected = beam.reflected(mirror);
  ASSERT_TRUE(reflected.has_value());
  // Beam turns from +z to +y; diameter at equal path length is unchanged.
  const double d_direct = beam.envelope_diameter_at({0, 0, 1.0});
  const double d_reflected = reflected->envelope_diameter_at({0, 1.0, 0});
  EXPECT_NEAR(d_direct, d_reflected, 1e-9);
}

TEST(TracedBeamTest, ReflectedApexIsMirrorImage) {
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const TracedBeam beam = launch_beam({{0, 0, -0.5}, {0, 0, 1}}, spec);
  const geom::Plane mirror{{0, 0, 0}, {0, 0, 1}};
  const auto reflected = beam.reflected(mirror);
  ASSERT_TRUE(reflected.has_value());
  EXPECT_NEAR(reflected->apex.z, -beam.apex.z, 1e-12);
}

TEST(TracedBeamTest, EnvelopeOffsetIsPerpendicularDistance) {
  const TracedBeam beam =
      launch_beam({{0, 0, 0}, {0, 0, 1}}, BeamSpec::collimated(10e-3));
  EXPECT_NEAR(beam.envelope_offset({3e-3, 4e-3, 2.0}), 5e-3, 1e-12);
}

// ---- SFP catalog ----

TEST(SfpTest, CatalogSanity) {
  const SfpSpec zr = sfp_10g_zr();
  EXPECT_DOUBLE_EQ(zr.link_budget_db(), 25.0);
  EXPECT_DOUBLE_EQ(zr.goodput_gbps, 9.4);

  const SfpSpec lr = sfp28_lr();
  EXPECT_GT(lr.line_rate_gbps, zr.line_rate_gbps);
  // The paper: SFP28 budgets (12-18 dB) are far below the ZR's 25 dB.
  EXPECT_LT(lr.link_budget_db(), zr.link_budget_db());

  const SfpSpec er = sfp28_er();
  EXPECT_GT(er.link_budget_db(), lr.link_budget_db());
}

TEST(EdfaTest, OnlyAmplifiesCBand) {
  const Edfa amp{.gain_db = 17.0};
  EXPECT_DOUBLE_EQ(amp.gain_for(1550.0), 17.0);
  EXPECT_DOUBLE_EQ(amp.gain_for(1310.0), 0.0);  // the 25G LR predicament
}

// ---- coupling ----

TEST(CouplingTest, PerfectAlignmentHasNoMisalignmentLoss) {
  const LinkDesign design = diverging_10g();
  const CouplingResult r = coupling_loss_from_errors(
      design.receiver, 20e-3, 6e-3, design.beam.tail_factor, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(r.lateral_db, 0.0);
  EXPECT_DOUBLE_EQ(r.angular_db, 0.0);
  EXPECT_GT(r.geometric_db, 0.0);
  EXPECT_GT(r.fixed_db, 0.0);
}

TEST(CouplingTest, LossMonotoneInLateralOffset) {
  const LinkDesign design = diverging_10g();
  double prev = -1.0;
  for (double dr = 0.0; dr <= 30e-3; dr += 2e-3) {
    const double total =
        coupling_loss_from_errors(design.receiver, 20e-3, 6e-3,
                                  design.beam.tail_factor, dr, 0.0)
            .total_db();
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(CouplingTest, LossMonotoneInAngle) {
  const LinkDesign design = diverging_10g();
  double prev = -1.0;
  for (double psi = 0.0; psi <= 15e-3; psi += 1e-3) {
    const double total =
        coupling_loss_from_errors(design.receiver, 20e-3, 6e-3,
                                  design.beam.tail_factor, 0.0, psi)
            .total_db();
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(CouplingTest, WiderBeamForgivesLateralError) {
  const LinkDesign design = diverging_10g();
  const double narrow =
      coupling_loss_from_errors(design.receiver, 10e-3, 3e-3,
                                design.beam.tail_factor, 5e-3, 0.0)
          .lateral_db;
  const double wide =
      coupling_loss_from_errors(design.receiver, 30e-3, 9e-3,
                                design.beam.tail_factor, 5e-3, 0.0)
          .lateral_db;
  EXPECT_GT(narrow, wide);
}

TEST(CouplingTest, GeometricLossGrowsWithDiameter) {
  const LinkDesign design = diverging_10g();
  double prev = -1.0;
  for (double d = 8e-3; d <= 40e-3; d += 4e-3) {
    const double g = coupling_loss_from_errors(design.receiver, d, 6e-3,
                                               design.beam.tail_factor, 0.0,
                                               0.0)
                         .geometric_db;
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(CouplingTest, EffectiveThetaAccSaturates) {
  const ReceiverDesign rx = diverging_10g().receiver;
  EXPECT_LT(effective_theta_acc(rx, 50e-3), rx.theta_sat * 1.0001);
  EXPECT_GT(effective_theta_acc(rx, 8e-3), effective_theta_acc(rx, 2e-3));
}

TEST(CouplingTest, DivergenceWidensAcceptance) {
  const ReceiverDesign rx = diverging_10g().receiver;
  EXPECT_GT(effective_theta_acc(rx, 6e-3), effective_theta_acc(rx, 0.0));
}

// ---- link budget ----

TEST(LinkBudgetTest, PowerArithmetic) {
  CouplingResult coupling;
  coupling.fixed_db = 10.0;
  const PowerReport report =
      compute_power(sfp_10g_zr(), Edfa{.gain_db = 17.0}, coupling, false);
  EXPECT_DOUBLE_EQ(report.rx_power_dbm, 0.0 + 17.0 - 10.0);
  EXPECT_TRUE(link_usable(report, sfp_10g_zr()));
}

TEST(LinkBudgetTest, BlockedPathIsUnusable) {
  const PowerReport report =
      compute_power(sfp_10g_zr(), Edfa{}, CouplingResult{}, true);
  EXPECT_TRUE(std::isinf(report.rx_power_dbm));
  EXPECT_FALSE(link_usable(report, sfp_10g_zr()));
}

TEST(LinkBudgetTest, MarginAgainstSensitivity) {
  CouplingResult coupling;
  coupling.fixed_db = 27.0;
  const PowerReport report =
      compute_power(sfp_10g_zr(), Edfa{.gain_db = 17.0}, coupling, false);
  EXPECT_DOUBLE_EQ(report.rx_power_dbm, -10.0);
  EXPECT_DOUBLE_EQ(report.margin_db(sfp_10g_zr()), 15.0);
}

// ---- calibrated presets vs Table 1 anchors ----

TEST(PresetTest, DivergingPeakPowerNearMinus10Dbm) {
  const LinkDesign design = diverging_10g(20e-3, 1.5);
  const CouplingResult c = coupling_loss_from_errors(
      design.receiver, 20e-3, design.beam.divergence_half_angle,
      design.beam.tail_factor, 0.0, 0.0);
  const PowerReport report =
      compute_power(sfp_10g_zr(), Edfa{.gain_db = 17.0}, c, false);
  EXPECT_NEAR(report.rx_power_dbm, -10.0, 1.0);
}

TEST(PresetTest, CollimatedPeakPowerNearPlus15Dbm) {
  const LinkDesign design = collimated_10g(20e-3);
  const CouplingResult c = coupling_loss_from_errors(
      design.receiver, 20e-3, 0.0, design.beam.tail_factor, 0.0, 0.0);
  const PowerReport report =
      compute_power(sfp_10g_zr(), Edfa{.gain_db = 17.0}, c, false);
  EXPECT_NEAR(report.rx_power_dbm, 15.0, 1.0);
}

TEST(PresetTest, DivergingBeatsCollimatedOnToleranceLosesOnPower) {
  // The Table 1 trade-off, expressed via the model: at equal misalignment
  // the diverging design loses less to misalignment but has a much lower
  // peak.
  const LinkDesign div = diverging_10g(20e-3, 1.5);
  const LinkDesign col = collimated_10g(20e-3);

  const double div_peak =
      17.0 - coupling_loss_from_errors(div.receiver, 20e-3,
                                       div.beam.divergence_half_angle,
                                       div.beam.tail_factor, 0.0, 0.0)
                 .total_db();
  const double col_peak =
      17.0 - coupling_loss_from_errors(col.receiver, 20e-3, 0.0,
                                       col.beam.tail_factor, 0.0, 0.0)
                 .total_db();
  EXPECT_GT(col_peak, div_peak + 20.0);

  const double psi = 4e-3;  // 4 mrad incidence error
  const double div_ang = coupling_loss_from_errors(
                             div.receiver, 20e-3,
                             div.beam.divergence_half_angle,
                             div.beam.tail_factor, 0.0, psi)
                             .angular_db;
  const double col_ang =
      coupling_loss_from_errors(col.receiver, 20e-3, 0.0,
                                col.beam.tail_factor, 0.0, psi)
          .angular_db;
  EXPECT_LT(div_ang, col_ang / 4.0);
}

// ---- photodiode ----

TEST(PhotodiodeTest, CenteredBeamBalancesDiodes) {
  const TracedBeam beam =
      launch_beam({{0, 0, -1.5}, {0, 0, 1}},
                  BeamSpec::diverging_for(20e-3, 1.5, 2e-3));
  const QuadPhotodiode quad(geom::Pose::identity(), 15e-3);
  const QuadReading r = quad.read(beam);
  EXPECT_GT(r.sum(), 0.0);
  EXPECT_NEAR(r.error_x(), 0.0, 1e-9);
  EXPECT_NEAR(r.error_y(), 0.0, 1e-9);
}

TEST(PhotodiodeTest, OffsetBeamShowsSignedError) {
  const TracedBeam beam =
      launch_beam({{5e-3, 0, -1.5}, {0, 0, 1}},
                  BeamSpec::diverging_for(20e-3, 1.5, 2e-3));
  const QuadPhotodiode quad(geom::Pose::identity(), 15e-3);
  const QuadReading r = quad.read(beam);
  EXPECT_GT(r.error_x(), 0.0);  // beam center is toward +x diode
  EXPECT_NEAR(r.error_y(), 0.0, 1e-9);
}

TEST(PhotodiodeTest, SumDropsWhenBeamWalksAway) {
  const QuadPhotodiode quad(geom::Pose::identity(), 15e-3);
  const BeamSpec spec = BeamSpec::diverging_for(20e-3, 1.5, 2e-3);
  const double centered =
      quad.read(launch_beam({{0, 0, -1.5}, {0, 0, 1}}, spec)).sum();
  const double offset =
      quad.read(launch_beam({{40e-3, 0, -1.5}, {0, 0, 1}}, spec)).sum();
  EXPECT_GT(centered, offset);
}

// Parameterized: the Fig 11 qualitative shape — RX tolerance has an
// interior optimum; TX tolerance keeps growing with diameter.
struct DiameterCase {
  double diameter;
};

class ToleranceShape : public ::testing::TestWithParam<double> {};

double rx_tolerance_mrad(double diameter) {
  const LinkDesign design = diverging_10g(diameter, 1.5);
  const double delta = design.beam.divergence_half_angle;
  const CouplingResult at_peak = coupling_loss_from_errors(
      design.receiver, diameter, delta, design.beam.tail_factor, 0.0, 0.0);
  const double peak = 17.0 + sfp_10g_zr().tx_power_dbm - at_peak.total_db();
  const double margin = peak - sfp_10g_zr().rx_sensitivity_dbm;
  if (margin <= 0.0) return 0.0;
  const double theta = effective_theta_acc(design.receiver, delta);
  return util::rad_to_mrad(theta * std::sqrt(margin / 8.686));
}

TEST(ToleranceShapeTest, RxToleranceHasInteriorPeak) {
  const double at_8 = rx_tolerance_mrad(8e-3);
  const double at_16 = rx_tolerance_mrad(16e-3);
  const double at_40 = rx_tolerance_mrad(40e-3);
  EXPECT_GT(at_16, at_8);
  EXPECT_GT(at_16, at_40);
  // Peak value in the Table 1 / Fig 11 ballpark (5.77 mrad).
  EXPECT_GT(at_16, 4.5);
  EXPECT_LT(at_16, 7.5);
}

TEST_P(ToleranceShape, MarginStaysPositiveAcrossSweep) {
  EXPECT_GT(rx_tolerance_mrad(GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Diameters, ToleranceShape,
                         ::testing::Values(8e-3, 12e-3, 16e-3, 20e-3, 24e-3,
                                           28e-3, 32e-3, 40e-3));

}  // namespace
}  // namespace cyclops::optics

// runtime::Context: ownership, default-context equivalence with the old
// globals, keyed RNG purity, and metric routing — every plane records
// into the context's registry, never the process-wide one.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "core/gprime.hpp"
#include "event/scheduler.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "opt/levmar.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

TEST(ContextTest, DefaultCtxBorrowsProcessGlobals) {
  runtime::Context& ctx = runtime::Context::default_ctx();
  EXPECT_EQ(&ctx.pool(), &util::ThreadPool::global());
  EXPECT_EQ(&ctx.registry(), &obs::Registry::global());
  EXPECT_FALSE(ctx.owns_pool());
  EXPECT_FALSE(ctx.owns_registry());
  EXPECT_EQ(ctx.seed(), runtime::Context::kDefaultSeed);
  // One shared instance.
  EXPECT_EQ(&ctx, &runtime::Context::default_ctx());
}

TEST(ContextTest, IsolatedContextsShareNothing) {
  runtime::Context a = runtime::Context::isolated();
  runtime::Context b = runtime::Context::isolated();
  EXPECT_TRUE(a.owns_pool());
  EXPECT_TRUE(a.owns_registry());
  EXPECT_NE(&a.pool(), &b.pool());
  EXPECT_NE(&a.registry(), &b.registry());
  EXPECT_NE(&a.clock(), &b.clock());
  EXPECT_NE(&a.pool(), &util::ThreadPool::global());
  EXPECT_NE(&a.registry(), &obs::Registry::global());
  // Default isolated pool is inline (safe under a parallel session fan-out).
  EXPECT_EQ(a.pool().thread_count(), 1u);
}

TEST(ContextTest, IsolatedOptionsControlSeedAndThreads) {
  runtime::Context::Options opts;
  opts.seed = 7;
  opts.threads = 3;
  runtime::Context ctx = runtime::Context::isolated(opts);
  EXPECT_EQ(ctx.seed(), 7u);
  EXPECT_EQ(ctx.pool().thread_count(), 3u);
}

TEST(ContextTest, MoveKeepsHandedOutReferencesValid) {
  runtime::Context a = runtime::Context::isolated();
  obs::Registry* registry = &a.registry();
  util::SimClock* clock = &a.clock();
  runtime::Context b = std::move(a);
  EXPECT_EQ(&b.registry(), registry);
  EXPECT_EQ(&b.clock(), clock);
}

TEST(ContextTest, KeyedRngIsPureAndKeySeparated) {
  runtime::Context ctx = runtime::Context::isolated();
  util::Rng r1 = ctx.rng(4);
  util::Rng r2 = ctx.rng(4);  // same key, later call -> same stream
  EXPECT_EQ(r1.next_u64(), r2.next_u64());
  util::Rng other = ctx.rng(5);
  EXPECT_NE(ctx.rng(4).next_u64(), other.next_u64());
  // Same key, different base seed -> different stream.
  runtime::Context::Options opts;
  opts.seed = runtime::Context::kDefaultSeed + 1;
  runtime::Context reseeded = runtime::Context::isolated(opts);
  EXPECT_NE(ctx.rng(4).next_u64(), reseeded.rng(4).next_u64());
}

TEST(ContextTest, ClockIsPerContextAndResettable) {
  runtime::Context ctx = runtime::Context::isolated();
  EXPECT_EQ(ctx.clock().now(), 0);
  ctx.clock().advance(250);
  EXPECT_EQ(ctx.clock().now(), 250);
  ctx.clock().reset();
  EXPECT_EQ(ctx.clock().now(), 0);
  EXPECT_GE(ctx.wall_elapsed_us(), 0.0);
}

TEST(ContextTest, SchedulerRidesContextClock) {
  runtime::Context ctx = runtime::Context::isolated();
  event::Scheduler sched(ctx.clock());
  struct Sink final : event::Process {
    util::SimTimeUs seen = -1;
    void handle(event::Scheduler&, const event::Event& ev) override {
      seen = ev.time;
    }
    const char* name() const noexcept override { return "sink"; }
  } sink;
  event::Event ev;
  ev.time = 777;
  ev.target = sched.add_process(&sink);
  sched.schedule(ev);
  sched.run();
  EXPECT_EQ(sink.seen, 777);
  // The scheduler advanced the *context* clock in place.
  EXPECT_EQ(ctx.clock().now(), 777);
}

// ---- metric routing: planes record into ctx.registry(), not the global ----

void quadratic_residual(std::span<const double> p, std::vector<double>& out) {
  out.assign(1, p[0] - 3.0);
}

TEST(ContextTest, LevMarRecordsIntoContextRegistryOnly) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "OBS=OFF build";
  const std::uint64_t global_before =
      obs::Registry::global().counter("lm_solves_total").value();

  runtime::Context ctx = runtime::Context::isolated();
  const opt::LevMarResult result = opt::levenberg_marquardt(
      quadratic_residual, {0.0}, opt::LevMarOptions{}, ctx);
  EXPECT_TRUE(result.converged);

  EXPECT_EQ(ctx.registry().counter("lm_solves_total").value(), 1u);
  EXPECT_EQ(obs::Registry::global().counter("lm_solves_total").value(),
            global_before);
}

TEST(ContextTest, GPrimeSolverHoistsHandlesFromContextRegistry) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "OBS=OFF build";
  runtime::Context ctx = runtime::Context::isolated();
  const core::GPrimeSolver solver(core::GPrimeOptions{}, ctx);
  // Handle hoisting at construction creates the series in ctx's registry.
  EXPECT_EQ(ctx.registry().counter("gprime_solves_total").value(), 0u);
  EXPECT_FALSE(ctx.registry().empty());
}

TEST(ContextTest, EvaluateDatasetContextOverloadMatchesExplicitArgs) {
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig config;
  config.duration_s = 4.0;
  util::Rng rng(77);
  const std::vector<motion::Trace> traces =
      motion::generate_dataset(base, 8, config, rng, util::ThreadPool::serial());
  const link::SlotEvalConfig eval_config;

  runtime::Context ctx = runtime::Context::isolated();
  const link::DatasetEvalResult via_ctx =
      link::evaluate_dataset(traces, eval_config, ctx);

  obs::Registry registry;
  const link::DatasetEvalResult explicit_args = link::evaluate_dataset(
      traces, eval_config, util::ThreadPool::serial(), &registry);

  EXPECT_EQ(via_ctx.pooled.total_slots, explicit_args.pooled.total_slots);
  EXPECT_EQ(via_ctx.pooled.off_slots, explicit_args.pooled.off_slots);
  EXPECT_EQ(via_ctx.events, explicit_args.events);
  EXPECT_EQ(via_ctx.per_trace_off_fraction,
            explicit_args.per_trace_off_fraction);
  // Byte-identical metric exports, pool-vs-serial and ctx-vs-explicit.
  EXPECT_EQ(obs::to_jsonl(ctx.registry()), obs::to_jsonl(registry));
}

TEST(ContextTest, TracerBindsContextRegistry) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "OBS=OFF build";
  runtime::Context ctx = runtime::Context::isolated();
  ctx.tracer().sim("op_us", 0).end(5);
  const auto histograms = ctx.registry().histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].first.name, "op_us");
  EXPECT_EQ(histograms[0].second->count(), 1u);
}

}  // namespace
}  // namespace cyclops

#include <gtest/gtest.h>

#include "net/adaptive_stream.hpp"
#include "obs/obs.hpp"

namespace cyclops::net {
namespace {

constexpr util::SimTimeUs kSlot = 1000;

AdaptiveConfig fast_config() {
  AdaptiveConfig config;
  config.window = 100000;    // 0.1 s for snappy tests
  config.min_dwell = 200000;  // 0.2 s
  return config;
}

TEST(AdaptiveStreamTest, StaysRawOnHealthyLink) {
  AdaptiveStreamController controller(fast_config());
  for (util::SimTimeUs t = kSlot; t < 2000000; t += kSlot) {
    EXPECT_EQ(controller.step(t, 23.5), StreamMode::kRaw);
  }
  EXPECT_EQ(controller.mode_switches(), 0);
}

TEST(AdaptiveStreamTest, DowngradesOnOutage) {
  AdaptiveStreamController controller(fast_config());
  util::SimTimeUs t = kSlot;
  for (; t < 500000; t += kSlot) controller.step(t, 23.5);
  // Link dies.
  for (; t < 1500000; t += kSlot) controller.step(t, 0.0);
  EXPECT_EQ(controller.mode(), StreamMode::kCompressed);
  EXPECT_DOUBLE_EQ(controller.current_rate_gbps(), 0.4);
  EXPECT_GT(controller.current_decode_latency_ms(), 0.0);
}

TEST(AdaptiveStreamTest, UpgradesAfterRecovery) {
  AdaptiveStreamController controller(fast_config());
  util::SimTimeUs t = kSlot;
  for (; t < 500000; t += kSlot) controller.step(t, 23.5);
  for (; t < 1200000; t += kSlot) controller.step(t, 0.0);
  ASSERT_EQ(controller.mode(), StreamMode::kCompressed);
  for (; t < 3000000; t += kSlot) controller.step(t, 23.5);
  EXPECT_EQ(controller.mode(), StreamMode::kRaw);
  EXPECT_EQ(controller.mode_switches(), 2);
}

TEST(AdaptiveStreamTest, DwellPreventsFlapping) {
  AdaptiveConfig config = fast_config();
  config.min_dwell = 5000000;  // 5 s
  AdaptiveStreamController controller(config);
  // Alternate good/bad every 0.3 s for 4 s: at most one switch can fire.
  util::SimTimeUs t = kSlot;
  bool good = true;
  util::SimTimeUs phase_start = 0;
  for (; t < 4000000; t += kSlot) {
    if (t - phase_start > 300000) {
      good = !good;
      phase_start = t;
    }
    controller.step(t, good ? 23.5 : 0.0);
  }
  EXPECT_LE(controller.mode_switches(), 1);
}

TEST(AdaptiveStreamTest, MinDwellBoundaryIsExact) {
  // The anti-flap guard is `now - last_switch >= min_dwell`: a switch is
  // blocked one microsecond before the dwell elapses and fires at exactly
  // min_dwell.
  AdaptiveConfig config;
  config.window = 1000;       // 1 ms window: the EMA reacts within a slot
  config.min_dwell = 200000;  // 0.2 s
  AdaptiveStreamController controller(config);
  obs::Registry registry;
  controller.set_obs(&registry);

  // Dead link from t=0: the EMA is below the downgrade threshold almost
  // immediately, so the dwell guard is the only thing holding raw mode.
  for (util::SimTimeUs t = kSlot; t < 199000; t += kSlot) {
    EXPECT_EQ(controller.step(t, 0.0), StreamMode::kRaw);
  }
  EXPECT_EQ(controller.step(199999, 0.0), StreamMode::kRaw);  // dwell - 1
  EXPECT_EQ(controller.step(200000, 0.0), StreamMode::kCompressed);
  EXPECT_EQ(controller.mode_switches(), 1);

  // Same boundary on the way back up: full capacity saturates the EMA
  // fast, and the upgrade fires exactly one dwell after the downgrade.
  for (util::SimTimeUs t = 201000; t < 399000; t += kSlot) {
    EXPECT_EQ(controller.step(t, config.raw_rate_gbps),
              StreamMode::kCompressed);
  }
  EXPECT_EQ(controller.step(399999, config.raw_rate_gbps),
            StreamMode::kCompressed);
  EXPECT_EQ(controller.step(400000, config.raw_rate_gbps), StreamMode::kRaw);
  EXPECT_EQ(controller.mode_switches(), 2);

  // The dwell histograms saw exactly the min-dwell durations (no-op in
  // OFF builds: set_obs detaches).
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(
        registry.counter("adaptive_switches_total", {{"to", "compressed"}})
            .value(),
        1u);
    EXPECT_EQ(
        registry.counter("adaptive_switches_total", {{"to", "raw"}}).value(),
        1u);
    EXPECT_DOUBLE_EQ(registry
                         .histogram("adaptive_mode_dwell_us",
                                    obs::HistogramSpec::duration_us(),
                                    {{"mode", "raw"}})
                         .min(),
                     200000.0);
    EXPECT_DOUBLE_EQ(registry
                         .histogram("adaptive_mode_dwell_us",
                                    obs::HistogramSpec::duration_us(),
                                    {{"mode", "compressed"}})
                         .min(),
                     200000.0);
  }
}

TEST(AdaptiveStreamTest, PartialCapacityCountsProportionally) {
  // A link at 50 % of the raw demand must trigger the downgrade.
  AdaptiveStreamController controller(fast_config());
  util::SimTimeUs t = kSlot;
  for (; t < 2000000; t += kSlot) controller.step(t, 10.0);
  EXPECT_EQ(controller.mode(), StreamMode::kCompressed);
}

}  // namespace
}  // namespace cyclops::net

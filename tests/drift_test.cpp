// Tests for drift detection + mapping refresh and the servo settle model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/drift_monitor.hpp"
#include "core/evaluation.hpp"
#include "core/tp_controller.hpp"
#include "galvo/galvo_mirror.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

// ---- DriftMonitor unit behavior ----

TEST(DriftMonitorTest, HealthyLinkNeverFlags) {
  DriftMonitor monitor{DriftMonitorConfig{}};
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    monitor.on_post_realignment_power(-10.5 + rng.normal(0.0, 0.8));
  }
  EXPECT_FALSE(monitor.recalibration_needed());
  EXPECT_NEAR(monitor.smoothed_power_dbm(), -10.5, 0.5);
}

TEST(DriftMonitorTest, PersistentShortfallFlags) {
  DriftMonitor monitor{DriftMonitorConfig{}};
  for (int i = 0; i < 200; ++i) {
    monitor.on_post_realignment_power(-18.0);
  }
  EXPECT_TRUE(monitor.recalibration_needed());
}

TEST(DriftMonitorTest, NeedsMinimumEvidence) {
  DriftMonitorConfig config;
  config.min_samples = 32;
  DriftMonitor monitor{config};
  for (int i = 0; i < 10; ++i) monitor.on_post_realignment_power(-25.0);
  EXPECT_FALSE(monitor.recalibration_needed());  // too few samples yet
}

TEST(DriftMonitorTest, BlackoutsAreNotDriftEvidence) {
  DriftMonitor monitor{DriftMonitorConfig{}};
  for (int i = 0; i < 100; ++i) {
    monitor.on_post_realignment_power(-10.5);
    monitor.on_post_realignment_power(
        -std::numeric_limits<double>::infinity());  // occlusion
  }
  EXPECT_FALSE(monitor.recalibration_needed());
}

TEST(DriftMonitorTest, ResetClearsState) {
  DriftMonitor monitor{DriftMonitorConfig{}};
  for (int i = 0; i < 100; ++i) monitor.on_post_realignment_power(-20.0);
  ASSERT_TRUE(monitor.recalibration_needed());
  monitor.reset();
  EXPECT_FALSE(monitor.recalibration_needed());
  EXPECT_EQ(monitor.samples(), 0);
}

// ---- end-to-end: drift happens, monitor flags, mapping refresh fixes ----

TEST(DriftRecoveryTest, MappingRefreshRestoresPower) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);
  const CalibrationResult calib =
      calibrate_prototype(proto, CalibrationConfig{}, rng);
  const PointingSolver solver = calib.make_pointing_solver();

  // Simulate VRH-T drift: the hidden VR frame shifts (a re-deployment /
  // tracking-origin jump) by recreating the tracker with a nudged frame.
  const geom::Pose drift{geom::Mat3::rotation({0, 1, 0}, 10e-3),
                         {15e-3, -10e-3, 12e-3}};
  tracking::VrhTracker drifted(proto.config.tracker,
                               drift * proto.vr_from_world,
                               proto.x_from_rig, util::Rng(99));

  // Post-realignment powers under the old mapping: consistently short.
  DriftMonitor monitor{DriftMonitorConfig{}};
  ExhaustiveAligner aligner;
  std::vector<AlignedSample> fresh_tuples;
  sim::Voltages hint{};
  for (int i = 0; i < 40; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto.nominal_rig_pose, 0.12, 0.08, rng);
    proto.scene.set_rig_pose(pose);
    const geom::Pose psi = drifted.report(0, pose).pose;
    const PointingResult p = solver.solve(psi, hint);
    if (p.converged) {
      monitor.on_post_realignment_power(
          proto.scene.received_power_dbm(p.voltages));
      hint = p.voltages;
    }
    // Meanwhile collect fresh aligned tuples for the refresh.
    if (fresh_tuples.size() < 25) {
      const AlignResult aligned = aligner.align(proto.scene, hint);
      if (aligned.converged()) {
        fresh_tuples.push_back({aligned.voltages, drifted.report(0, pose).pose});
      }
    }
  }
  ASSERT_TRUE(monitor.recalibration_needed());
  const double degraded = monitor.smoothed_power_dbm();

  // §4's prescription: redo only the mapping step with the fresh tuples.
  const MappingFitReport refreshed =
      fit_mapping(calib.tx_stage1.model, calib.rx_stage1.model, fresh_tuples,
                  calib.mapping.map_tx, calib.mapping.map_rx);
  const PointingSolver refreshed_solver(calib.tx_stage1.model,
                                        calib.rx_stage1.model,
                                        refreshed.map_tx, refreshed.map_rx,
                                        PointingOptions{});
  monitor.reset();
  for (int i = 0; i < 40; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto.nominal_rig_pose, 0.12, 0.08, rng);
    proto.scene.set_rig_pose(pose);
    const PointingResult p =
        refreshed_solver.solve(drifted.report(0, pose).pose, hint);
    if (p.converged) {
      monitor.on_post_realignment_power(
          proto.scene.received_power_dbm(p.voltages));
      hint = p.voltages;
    }
  }
  EXPECT_FALSE(monitor.recalibration_needed());
  EXPECT_GT(monitor.smoothed_power_dbm(), degraded + 3.0);
  proto.scene.set_rig_pose(proto.nominal_rig_pose);
}

// ---- ServoDynamics ----

TEST(ServoDynamicsTest, SmallAngleFloorAndLinearGrowth) {
  const galvo::ServoDynamics servo;
  EXPECT_DOUBLE_EQ(servo.settle_time_s(0.0), 300e-6);
  EXPECT_NEAR(servo.settle_time_s(1.0), 360e-6, 1e-9);
  EXPECT_NEAR(servo.settle_time_s(-1.0), 360e-6, 1e-9);
  EXPECT_GT(servo.settle_time_s(10.0), servo.settle_time_s(1.0));
}

TEST(ServoDynamicsTest, ControllerDelaysLargeSteps) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);
  const CalibrationResult calib =
      calibrate_prototype(proto, CalibrationConfig{}, rng);

  TpController controller(calib.make_pointing_solver(), TpConfig{});
  tracking::PoseReport report;
  report.delivery_time = 1000;
  report.pose = proto.tracker.ideal_report(proto.nominal_rig_pose);
  // First command from zero voltages: a large step.
  const auto first = controller.on_report(report);
  ASSERT_TRUE(first.has_value());
  // Repeat of the same pose: a ~zero step.
  const auto second = controller.on_report(report);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(first->apply_time, second->apply_time);
}

}  // namespace
}  // namespace cyclops::core

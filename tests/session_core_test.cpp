// The unified session core's load-bearing guarantee: the event engine's
// per-window output is EXACTLY equal to the retained fixed-step oracle —
// every WindowSample field, bit for bit, across linear, angular, and
// mixed-random motion.  Plus smoke coverage for run_channel_session (a
// non-FSO phy::Channel on the same core) and run_hetero_session
// (FSO + mmWave fallback in one scheduler).
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "link/fso_link.hpp"
#include "link/hetero_session.hpp"
#include "link/session_core.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "phy/mmwave_channel.hpp"
#include "phy/wdm_channel.hpp"
#include "util/units.hpp"

namespace cyclops::link {
namespace {

struct Rig {
  sim::Prototype proto;
  core::CalibrationResult calib;
};

Rig make_rig(std::uint64_t seed) {
  sim::Prototype proto = sim::make_prototype(seed, sim::prototype_10g_config());
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
  return {std::move(proto), std::move(calib)};
}

/// EXPECT_EQ compares doubles with ==, which is exactly what "bit-exact
/// oracle" means here (and -inf == -inf holds for the empty-window power
/// fields).
void expect_identical(const RunResult& event, const RunResult& oracle,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(event.realignments, oracle.realignments);
  EXPECT_EQ(event.tp_failures, oracle.tp_failures);
  EXPECT_EQ(event.total_up_fraction, oracle.total_up_fraction);
  EXPECT_EQ(event.avg_rate_gbps, oracle.avg_rate_gbps);
  EXPECT_EQ(event.avg_pointing_iterations, oracle.avg_pointing_iterations);
  ASSERT_EQ(event.windows.size(), oracle.windows.size());
  for (std::size_t i = 0; i < event.windows.size(); ++i) {
    SCOPED_TRACE(i);
    const WindowSample& a = event.windows[i];
    const WindowSample& b = oracle.windows[i];
    EXPECT_EQ(a.t_s, b.t_s);
    EXPECT_EQ(a.throughput_gbps, b.throughput_gbps);
    EXPECT_EQ(a.avg_power_dbm, b.avg_power_dbm);
    EXPECT_EQ(a.min_power_dbm, b.min_power_dbm);
    EXPECT_EQ(a.min_power_all_dbm, b.min_power_all_dbm);
    EXPECT_EQ(a.power_ok_fraction, b.power_ok_fraction);
    EXPECT_EQ(a.linear_speed_mps, b.linear_speed_mps);
    EXPECT_EQ(a.angular_speed_rps, b.angular_speed_rps);
    EXPECT_EQ(a.up_fraction, b.up_fraction);
  }
}

/// Runs the same profile on both engines — each on its own identically
/// seeded rig, since both consume tracker randomness — and demands
/// bit-equality.  The rigs are reused across profiles: staying in
/// lockstep *requires* the engines to draw identical randomness, which is
/// itself part of the equivalence claim.
class SessionCoreEquivalence : public ::testing::Test {
 protected:
  void run_and_compare(const motion::MotionProfile& profile,
                       const char* what) {
    core::TpController event_ctl(event_rig_.calib.make_pointing_solver(),
                                 core::TpConfig{});
    SimOptions event_opts;
    event_opts.engine = SessionEngine::kEvent;
    const RunResult event =
        run_link_simulation(event_rig_.proto, event_ctl, profile, event_opts);

    core::TpController oracle_ctl(oracle_rig_.calib.make_pointing_solver(),
                                  core::TpConfig{});
    SimOptions oracle_opts;
    oracle_opts.engine = SessionEngine::kFixedStep;
    const RunResult oracle = run_link_simulation(oracle_rig_.proto,
                                                 oracle_ctl, profile,
                                                 oracle_opts);

    ASSERT_GT(oracle.windows.size(), 10u) << what;
    expect_identical(event, oracle, what);
  }

  Rig event_rig_ = make_rig(42);
  Rig oracle_rig_ = make_rig(42);
};

TEST_F(SessionCoreEquivalence, AllThreeMotionProfilesBitExact) {
  const geom::Pose base = event_rig_.proto.nominal_rig_pose;

  run_and_compare(
      motion::LinearStrokeMotion(base, {1.0, 0.0, 0.0}, 0.10, {0.2, 0.3}),
      "linear strokes 0.2-0.3 m/s");

  run_and_compare(
      motion::AngularStrokeMotion(base, {0.0, 1.0, 0.0},
                                  util::deg_to_rad(15.0),
                                  {util::deg_to_rad(20.0)}),
      "angular strokes 20 deg/s");

  motion::MixedRandomMotion::Config mixed;
  mixed.duration_s = 5.0;
  mixed.max_linear_speed = 0.15;
  mixed.max_angular_speed = util::deg_to_rad(20.0);
  run_and_compare(motion::MixedRandomMotion(base, mixed, util::Rng(99)),
                  "mixed random 5 s");
}

// ---- run_channel_session: a non-FSO channel on the same core ----

TEST(ChannelSessionTest, MmWaveStillSessionDeliversPeakRate) {
  obs::Registry registry;
  phy::MmWaveChannelConfig config;  // AP at (0, 2.2, 0)
  phy::MmWaveChannel channel(config, &registry);

  // A still headset ~1 m under the AP: no rotation, no retrain, top MCS.
  const motion::StillMotion profile(
      geom::Pose{geom::Mat3::identity(), {0.0, 1.2, 0.0}}, 1.0);
  ChannelSessionOptions options;
  options.step = 1000;
  const RunResult result =
      run_channel_session(channel, profile, options, &registry);

  EXPECT_DOUBLE_EQ(result.total_up_fraction, 1.0);
  // NEAR, not EQ: avg_rate is an O(slots) float accumulation.
  EXPECT_NEAR(result.avg_rate_gbps, channel.info().peak_rate_gbps, 1e-9);
  EXPECT_EQ(result.windows.size(), 20u);  // 1 s / 50 ms
  for (const WindowSample& w : result.windows) {
    EXPECT_DOUBLE_EQ(w.up_fraction, 1.0);
    // Rate-adaptive channel: throughput is the mean delivered rate.
    EXPECT_NEAR(w.throughput_gbps, channel.info().peak_rate_gbps, 1e-9);
  }
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry
                  .counter("channel_session_slots_total",
                           {{"channel", "mmwave-60ghz"}})
                  .value(),
              1000u);
  }
}

TEST(ChannelSessionTest, WdmLaneDropoutShowsInWindows) {
  // Shared loss ramps 0 -> 16 dB over 2 s — through the lane thresholds
  // (-10.5 / -12.3 dB margin for QSFP28 + commodity collimator) — so
  // lanes drop out and per-window throughput is monotonically
  // non-increasing, ending at zero.
  phy::WdmChannel channel(
      optics::qsfp28_lr4(), optics::commodity_collimator(),
      [](const geom::Pose&, util::SimTimeUs t) {
        return 16.0 * util::us_to_s(t) / 2.0;
      });
  const motion::StillMotion profile(geom::Pose{}, 2.0);
  ChannelSessionOptions options;
  options.step = 1000;
  const RunResult result = run_channel_session(channel, profile, options);

  ASSERT_EQ(result.windows.size(), 40u);
  EXPECT_NEAR(result.windows.front().throughput_gbps,
              channel.info().peak_rate_gbps, 1e-9);
  for (std::size_t i = 1; i < result.windows.size(); ++i) {
    EXPECT_LE(result.windows[i].throughput_gbps,
              result.windows[i - 1].throughput_gbps);
  }
  EXPECT_LT(result.windows.back().throughput_gbps,
            channel.info().peak_rate_gbps);
  EXPECT_GT(result.avg_rate_gbps, 0.0);
  EXPECT_LT(result.avg_rate_gbps, channel.info().peak_rate_gbps);
}

// ---- run_hetero_session: FSO + mmWave fallback in one scheduler ----

TEST(HeteroSessionTest, OcclusionFailsOverToMmWaveAndBack) {
  Rig rig = make_rig(42);
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  phy::MmWaveChannelConfig mm_config;
  mm_config.ap_position =
      rig.proto.nominal_rig_pose.translation() + geom::Vec3{0.0, 1.0, 0.0};
  obs::Registry registry;
  phy::MmWaveChannel fallback(mm_config, &registry);

  const motion::StillMotion profile(rig.proto.nominal_rig_pose, 4.0);
  HeteroConfig config;
  // Block the FSO LOS for one second mid-session.
  config.fso_occlusion = [](util::SimTimeUs t) {
    return t >= util::us_from_s(1.0) && t < util::us_from_s(2.0);
  };
  SessionLog log;
  const HeteroResult result = run_hetero_session(
      rig.proto, controller, fallback, profile, config, &log, &registry);

  ASSERT_EQ(result.channels.size(), 2u);
  EXPECT_EQ(result.channels[1].name, "mmwave-60ghz");
  // FSO served before and after the blockage, mmWave during it.
  EXPECT_GE(result.switches, 2);
  EXPECT_GT(result.channels[0].serving_fraction, 0.5);
  EXPECT_GT(result.channels[1].serving_fraction, 0.1);
  // The fallback radio is usable throughout; FSO loses ~1 s of 4.
  EXPECT_DOUBLE_EQ(result.channels[1].usable_fraction, 1.0);
  EXPECT_LT(result.channels[0].usable_fraction, 0.80);
  EXPECT_GT(result.channels[0].usable_fraction, 0.60);
  // Traffic kept flowing through the blockage, minus the switch delays.
  EXPECT_GT(result.served_fraction, 0.85);
  EXPECT_GT(result.avg_rate_gbps, 1.0);
  EXPECT_GT(result.events, 0u);
  EXPECT_FALSE(log.events().empty());
}

TEST(HeteroSessionTest, CleanRunStaysOnFso) {
  Rig rig = make_rig(43);
  core::TpController controller(rig.calib.make_pointing_solver(),
                                core::TpConfig{});
  phy::MmWaveChannel fallback{phy::MmWaveChannelConfig{}};

  const motion::StillMotion profile(rig.proto.nominal_rig_pose, 1.0);
  const HeteroResult result =
      run_hetero_session(rig.proto, controller, fallback, profile);

  EXPECT_EQ(result.switches, 0);
  EXPECT_DOUBLE_EQ(result.channels[0].serving_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.channels[1].serving_fraction, 0.0);
  EXPECT_GT(result.served_fraction, 0.99);
  // FSO at 9.4 Gbps beats the mmWave ceiling the whole way.
  EXPECT_GT(result.avg_rate_gbps, 9.0);
}

}  // namespace
}  // namespace cyclops::link

// Focused tests for the exhaustive-search aligner (§4.2's data-collection
// workhorse) and for the speed-sweep machinery's building blocks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/exhaustive_aligner.hpp"
#include "sim/prototype.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

sim::Prototype make_proto(std::uint64_t seed = 42) {
  return sim::make_prototype(seed, sim::prototype_10g_config());
}

TEST(AlignerTest, ColdStartFindsLink) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.status, AlignStatus::kConverged);
  EXPECT_GT(r.power_dbm, proto.scene.config().sfp.rx_sensitivity_dbm + 10.0);
}

TEST(AlignerTest, WarmStartUsesFewerEvaluations) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult cold = aligner.align(proto.scene, {});
  // Small hint-extent options simulate the warm-start configuration the
  // calibration loop uses between nearby poses.
  AlignerOptions narrow;
  narrow.tx_scan_half_extent = 0.5;
  narrow.rx_scan_half_extent = 0.5;
  narrow.tx_scan_step = 0.1;
  narrow.rx_scan_step = 0.1;
  const AlignResult warm =
      ExhaustiveAligner(narrow).align(proto.scene, cold.voltages);
  EXPECT_TRUE(warm.converged());
  EXPECT_LT(warm.evaluations, cold.evaluations);
  EXPECT_NEAR(warm.power_dbm, cold.power_dbm, 1.0);
}

TEST(AlignerTest, ResultWithinGmRange) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  const double vmax = proto.scene.tx().galvo().spec().max_voltage;
  EXPECT_LE(std::abs(r.voltages.tx1), vmax);
  EXPECT_LE(std::abs(r.voltages.tx2), vmax);
  EXPECT_LE(std::abs(r.voltages.rx1), vmax);
  EXPECT_LE(std::abs(r.voltages.rx2), vmax);
}

TEST(AlignerTest, FailsHonestlyWhenOccluded) {
  sim::Prototype proto = make_proto();
  const geom::Vec3 mid = (proto.scene.tx().mount().translation() +
                          proto.nominal_rig_pose.translation()) *
                         0.5;
  proto.scene.add_occluder({mid, 0.5});
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  EXPECT_FALSE(r.converged());
  // A fully occluded path yields no finite power anywhere: the aligner
  // must name the geometry, not its own search budget.
  EXPECT_EQ(r.status, AlignStatus::kDegenerateGeometry);
  EXPECT_STREQ(to_string(r.status), "degenerate-geometry");
}

TEST(AlignerTest, AlignedVoltagesNearLocalOptimum) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  // Any single-axis nudge by 50 mV must not improve the power by > 0.2 dB.
  const sim::Voltages& v = r.voltages;
  const double base = proto.scene.received_power_dbm(v);
  for (const double delta : {-0.05, 0.05}) {
    for (int axis = 0; axis < 4; ++axis) {
      sim::Voltages probe = v;
      (axis == 0   ? probe.tx1
       : axis == 1 ? probe.tx2
       : axis == 2 ? probe.rx1
                   : probe.rx2) += delta;
      EXPECT_LT(proto.scene.received_power_dbm(probe), base + 0.2);
    }
  }
}

TEST(AlignerTest, ConsistentAcrossRepeats) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult a = aligner.align(proto.scene, {});
  const AlignResult b = aligner.align(proto.scene, {});
  // Deterministic procedure on a static scene.
  EXPECT_DOUBLE_EQ(a.power_dbm, b.power_dbm);
  EXPECT_DOUBLE_EQ(a.voltages.tx1, b.voltages.tx1);
}

TEST(AlignerTest, EvaluationBudgetIsBounded) {
  sim::Prototype proto = make_proto();
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  // Two 31x31 rasters + polish, plus slack for the fallback path.
  EXPECT_LT(r.evaluations, 20000);
}

// Across rig poses in the stage-2 box, alignment succeeds from warm hints.
class AlignerPoseSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlignerPoseSweep, AlignsAtExcursion) {
  sim::Prototype proto = make_proto();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const geom::Pose pose = random_rig_pose(proto.nominal_rig_pose, 0.18,
                                          0.10, rng);
  proto.scene.set_rig_pose(pose);
  ExhaustiveAligner aligner;
  const AlignResult r = aligner.align(proto.scene, {});
  EXPECT_TRUE(r.converged()) << to_string(r.status);
}

INSTANTIATE_TEST_SUITE_P(Poses, AlignerPoseSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cyclops::core

// Bit-exactness of the iteration-granular LM stepper (opt::LmStepper)
// against the one-shot levenberg_marquardt adapter, on the two real fit
// problems of the calibration pipeline (the conv_pointing rig, seed 42):
//
//   * Stage-1 K-space fit (25 GalvoParams from board samples);
//   * Stage-2 mapping fit (12 pose parameters from aligned tuples).
//
// The contract under test (cal/engine.hpp's determinism contract):
// interrupting the solve at ANY iteration boundary, checkpointing, and
// resuming in a fresh stepper produces bit-identical parameters, costs,
// and iteration counts — at driver pools of 1, 2, and 8 threads (the
// column-parallel Jacobian is bit-identical at any width).
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cal/checkpoint.hpp"
#include "core/calibration.hpp"
#include "core/kspace_calibration.hpp"
#include "core/mapping_calibration.hpp"
#include "core/pointing.hpp"
#include "galvo/galvo_mirror.hpp"
#include "opt/levmar.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"
#include "util/rng.hpp"

using namespace cyclops;

namespace {

constexpr std::uint64_t kRigSeed = 42;  // conv_pointing's rig seed.

opt::LevMarOptions tight_options() {
  opt::LevMarOptions options;
  options.max_iterations = 25;  // Bounds the O(iters^2) resume sweep.
  return options;
}

void expect_result_eq(const opt::LevMarResult& a, const opt::LevMarResult& b) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i], b.params[i]) << "param " << i;
  }
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

/// A small (but real) Stage-1 problem: board collection against the truth
/// TX galvo on a reduced grid.  The samples are owned by the fixture
/// because the problem's residual fn captures them by reference.
struct Stage1Problem {
  std::vector<core::BoardSample> samples;
  core::GmaModel guess;

  explicit Stage1Problem(const sim::Prototype& proto)
      : guess(core::nominal_kspace_guess(proto.config.board_distance)) {
    core::BoardConfig board;
    board.cells_x = 8;
    board.cells_y = 6;
    util::Rng rng(kRigSeed);
    const galvo::GalvoMirror gm(proto.tx_galvo_truth, galvo::gvs102_spec());
    samples = core::collect_board_samples(gm, proto.k_from_tx_gma, board, rng);
  }

  core::KSpaceFitProblem make() const {
    return core::make_kspace_problem(samples, guess);
  }
};

/// A small Stage-2 problem: aligned tuples synthesized from the truth
/// calibration (the pointing solver at a known pose yields the aligned
/// voltages), fit from deliberately-perturbed guesses.
struct Stage2Problem {
  core::GmaModel tx_kspace, rx_kspace;
  std::vector<core::AlignedSample> samples;
  geom::Pose tx_guess, rx_guess;

  explicit Stage2Problem(sim::Prototype& proto)
      : tx_kspace(core::GmaModel(proto.tx_galvo_truth)
                      .transformed(proto.k_from_tx_gma)),
        rx_kspace(core::GmaModel(proto.rx_galvo_truth)
                      .transformed(proto.k_from_rx_gma)) {
    // Perfectly-aligned tuples by construction: P(psi) under the truth
    // models/maps IS the aligned voltage set for report psi — no scene or
    // aligner needed.
    const core::PointingSolver solver(tx_kspace, rx_kspace, proto.true_map_tx,
                                      proto.true_map_rx, {});
    util::Rng rng(kRigSeed + 1);
    for (int i = 0; i < 10; ++i) {
      const geom::Pose psi =
          core::random_rig_pose(proto.nominal_rig_pose, 0.15, 0.08, rng);
      const core::PointingResult aligned = solver.solve(psi, {});
      if (!aligned.converged) continue;
      samples.push_back({aligned.voltages, psi});
    }
    tx_guess = core::random_pose_error(rng, 0.03, 0.05) * proto.true_map_tx;
    rx_guess = core::random_pose_error(rng, 0.03, 0.05) * proto.true_map_rx;
  }

  core::MappingFitProblem make() const {
    return core::make_mapping_problem(tx_kspace, rx_kspace, samples, tx_guess,
                                      rx_guess);
  }
};

/// The sweep under test: for every iteration boundary k of the one-shot
/// solve, run a stepper k iterations, checkpoint, resume a FRESH stepper
/// from the checkpoint, finish, and compare bitwise with the reference.
void sweep_every_boundary(const opt::ResidualFn& fn,
                          const std::vector<double>& initial,
                          const runtime::Context& ctx) {
  const opt::LevMarOptions options = tight_options();
  const opt::LevMarResult reference =
      opt::levenberg_marquardt(fn, initial, options, ctx);
  ASSERT_GT(reference.iterations, 2) << "problem too easy to exercise resume";

  for (int k = 0; k <= reference.iterations; ++k) {
    SCOPED_TRACE("interrupt after iteration " + std::to_string(k));
    opt::LmStepper first(fn, initial, options, ctx);
    for (int i = 0; i < k; ++i) first.step();
    const opt::LmCheckpoint cp = first.checkpoint();
    EXPECT_EQ(cp.iterations, k);

    opt::LmStepper resumed(fn, cp, options, ctx);
    while (resumed.step()) {
    }
    expect_result_eq(reference, resumed.result());
  }
}

class CalLmResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(
        sim::make_prototype(kRigSeed, sim::prototype_10g_config()));
    stage1_ = new Stage1Problem(*proto_);
    stage2_ = new Stage2Problem(*proto_);
  }
  static void TearDownTestSuite() {
    delete stage2_;
    delete stage1_;
    delete proto_;
    stage2_ = nullptr;
    stage1_ = nullptr;
    proto_ = nullptr;
  }

  static sim::Prototype* proto_;
  static Stage1Problem* stage1_;
  static Stage2Problem* stage2_;
};

sim::Prototype* CalLmResumeTest::proto_ = nullptr;
Stage1Problem* CalLmResumeTest::stage1_ = nullptr;
Stage2Problem* CalLmResumeTest::stage2_ = nullptr;

TEST_F(CalLmResumeTest, Stage1ResumesBitExactAtEveryBoundary) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("pool " + std::to_string(threads));
    const runtime::Context ctx =
        runtime::Context::isolated({runtime::Context::kDefaultSeed, threads});
    const core::KSpaceFitProblem problem = stage1_->make();
    sweep_every_boundary(problem.residuals, problem.initial, ctx);
  }
}

TEST_F(CalLmResumeTest, Stage2ResumesBitExactAtEveryBoundary) {
  ASSERT_GE(stage2_->samples.size(), 6u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("pool " + std::to_string(threads));
    const runtime::Context ctx =
        runtime::Context::isolated({runtime::Context::kDefaultSeed, threads});
    const core::MappingFitProblem problem = stage2_->make();
    sweep_every_boundary(problem.residuals, problem.initial, ctx);
  }
}

TEST_F(CalLmResumeTest, ResultIsPoolWidthInvariant) {
  // The column-parallel Jacobian chunks statically, so the fit is
  // bit-identical at any pool width — 1, 2, and 8 must agree exactly.
  const core::KSpaceFitProblem problem = stage1_->make();
  const runtime::Context ctx1 =
      runtime::Context::isolated({runtime::Context::kDefaultSeed, 1});
  const opt::LevMarResult reference =
      opt::levenberg_marquardt(problem.residuals, problem.initial,
                               tight_options(), ctx1);
  for (const std::size_t threads : {2u, 8u}) {
    const runtime::Context ctx =
        runtime::Context::isolated({runtime::Context::kDefaultSeed, threads});
    expect_result_eq(reference,
                     opt::levenberg_marquardt(problem.residuals,
                                              problem.initial, tight_options(),
                                              ctx));
  }
}

TEST_F(CalLmResumeTest, CheckpointSurvivesFileRoundTrip) {
  // The LM state rides inside the engine checkpoint file; an interrupted
  // fit must continue bit-exactly from the parsed-back text form.
  const runtime::Context ctx =
      runtime::Context::isolated({runtime::Context::kDefaultSeed, 2});
  const core::KSpaceFitProblem problem = stage1_->make();
  const opt::LevMarResult reference = opt::levenberg_marquardt(
      problem.residuals, problem.initial, tight_options(), ctx);

  opt::LmStepper first(problem.residuals, problem.initial, tight_options(),
                       ctx);
  for (int i = 0; i < reference.iterations / 2; ++i) first.step();

  cal::EngineCheckpoint carrier;
  carrier.lm_active = true;
  carrier.lm = first.checkpoint();
  std::ostringstream out;
  cal::write_engine_checkpoint(out, carrier);
  std::istringstream in(out.str());
  const cal::EngineCheckpoint back = cal::read_engine_checkpoint(in);

  opt::LmStepper resumed(problem.residuals, back.lm, tight_options(), ctx);
  while (resumed.step()) {
  }
  expect_result_eq(reference, resumed.result());
}

}  // namespace

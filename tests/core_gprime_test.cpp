#include <gtest/gtest.h>

#include <cmath>

#include "core/gma_model.hpp"
#include "core/gprime.hpp"
#include "galvo/factory.hpp"
#include "util/rng.hpp"

namespace cyclops::core {
namespace {

GmaModel nominal_model() { return GmaModel(galvo::nominal_params()); }

GmaModel perturbed_model(std::uint64_t seed) {
  util::Rng rng(seed);
  return GmaModel(
      galvo::perturbed_params(galvo::nominal_params(), {}, rng));
}

TEST(GmaModelTest, TraceMatchesIdeal) {
  const GmaModel model = nominal_model();
  const auto a = model.trace(1.5, -2.0);
  const auto b = galvo::trace_ideal(galvo::nominal_params(), 1.5, -2.0);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(geom::distance(a->origin, b->origin), 0.0, 1e-15);
}

TEST(GmaModelTest, TransformedModelTracesTransformedBeam) {
  const GmaModel model = nominal_model();
  const geom::Pose map{geom::Mat3::rotation({0, 1, 0}, 0.8), {1, -2, 3}};
  const GmaModel moved = model.transformed(map);
  const auto local = model.trace(2.0, 1.0);
  const auto world = moved.trace(2.0, 1.0);
  ASSERT_TRUE(local && world);
  EXPECT_NEAR(geom::distance(world->origin, map.apply(local->origin)), 0.0,
              1e-12);
  // angle_between via acos loses precision near 0; 1e-7 rad is numerically
  // zero here.
  EXPECT_NEAR(geom::angle_between(world->dir, map.apply_dir(local->dir)), 0.0,
              1e-7);
}

TEST(GmaModelTest, TransformComposes) {
  const GmaModel model = nominal_model();
  const geom::Pose a{geom::Mat3::rotation({1, 0, 0}, 0.3), {0.1, 0, 0}};
  const geom::Pose b{geom::Mat3::rotation({0, 0, 1}, -0.6), {0, 2, 1}};
  const auto via_two = model.transformed(a).transformed(b).trace(1.0, 1.0);
  const auto via_one = model.transformed(b * a).trace(1.0, 1.0);
  ASSERT_TRUE(via_two && via_one);
  EXPECT_NEAR(geom::distance(via_two->origin, via_one->origin), 0.0, 1e-12);
}

TEST(GmaModelTest, Mirror2PlaneContainsOrigin) {
  const GmaModel model = perturbed_model(3);
  for (double v2 : {-4.0, -1.0, 0.0, 2.0, 5.0}) {
    const auto ray = model.trace(1.0, v2);
    ASSERT_TRUE(ray.has_value());
    EXPECT_NEAR(model.mirror2_plane(v2).signed_distance(ray->origin), 0.0,
                1e-10);
  }
}

TEST(GPrimeTest, HitsTargetOnBoresight) {
  const GmaModel model = nominal_model();
  const geom::Vec3 target{0.0, 0.0, -1.5};
  const GPrimeSolver solver;
  const GPrimeResult r = solver.solve(model, target);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.miss_distance, 1e-4);
  EXPECT_NEAR(r.v1, 0.0, 0.05);
  EXPECT_NEAR(r.v2, 0.0, 0.05);
}

TEST(GPrimeTest, ConvergesInTwoToFourIterations) {
  // §4.3: "the above converged in 2-4 iterations".
  const GmaModel model = perturbed_model(7);
  util::Rng rng(11);
  int worst = 0;
  for (int i = 0; i < 200; ++i) {
    const geom::Vec3 target{rng.uniform(-0.4, 0.4), rng.uniform(-0.3, 0.3),
                            rng.uniform(-2.0, -1.2)};
    const GPrimeResult r = GPrimeSolver().solve(model, target);
    ASSERT_TRUE(r.converged);
    worst = std::max(worst, r.iterations);
    EXPECT_LT(r.miss_distance, 1e-3);
  }
  EXPECT_LE(worst, 5);
}

TEST(GPrimeTest, WarmStartConvergesFaster) {
  const GmaModel model = perturbed_model(9);
  const geom::Vec3 target{0.2, 0.1, -1.6};
  const GPrimeResult cold = GPrimeSolver().solve(model, target);
  const GPrimeResult warm =
      GPrimeSolver().solve(model, target, cold.v1, cold.v2);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.iterations, 1);
}

TEST(GPrimeTest, BeamActuallyPassesThroughTarget) {
  const GmaModel model = perturbed_model(13);
  const geom::Vec3 target{-0.25, 0.15, -1.8};
  const GPrimeResult r = GPrimeSolver().solve(model, target);
  ASSERT_TRUE(r.converged);
  const auto ray = model.trace(r.v1, r.v2);
  ASSERT_TRUE(ray.has_value());
  EXPECT_LT(geom::line_point_distance(*ray, target), 0.3e-3);
}

TEST(GPrimeTest, ToleranceControlsPrecision) {
  const GmaModel model = perturbed_model(17);
  const geom::Vec3 target{0.3, -0.2, -1.5};
  GPrimeOptions tight;
  tight.tolerance_volts = 1e-5;
  tight.max_iterations = 30;
  const GPrimeResult r = GPrimeSolver(tight).solve(model, target);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.miss_distance, 1e-5);
}

TEST(GPrimeTest, TransformedModelStillInvertible) {
  const geom::Pose map{geom::Mat3::rotation({0, 1, 0}, 2.5), {0.5, 2.0, -1.0}};
  const GmaModel model = perturbed_model(19).transformed(map);
  // Target roughly along the transformed boresight.
  const auto boresight = model.trace(0.0, 0.0);
  ASSERT_TRUE(boresight.has_value());
  const geom::Vec3 target = boresight->at(1.7) + geom::Vec3{0.05, -0.08, 0.02};
  const GPrimeResult r = GPrimeSolver().solve(model, target);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.miss_distance, 1e-3);
}

// Parameterized sweep over target positions (a grid within the coverage
// cone) — the G' iteration must converge everywhere.
class GPrimeTargetSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GPrimeTargetSweep, Converges) {
  const auto [x, y] = GetParam();
  const GmaModel model = perturbed_model(23);
  const GPrimeResult r = GPrimeSolver().solve(model, {x, y, -1.5});
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 6);
  EXPECT_LT(r.miss_distance, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GPrimeTargetSweep,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.3, 0.0},
                      std::pair{-0.3, 0.0}, std::pair{0.0, 0.25},
                      std::pair{0.0, -0.25}, std::pair{0.35, 0.25},
                      std::pair{-0.35, -0.25}, std::pair{0.2, -0.3},
                      std::pair{-0.15, 0.3}));

}  // namespace
}  // namespace cyclops::core

// Tests for the §5.1 tolerance-measurement API (core/tolerance.hpp) and
// the TP controller's prediction path under motion.
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/tolerance.hpp"
#include "link/fso_link.hpp"
#include "motion/profile.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

TEST(ToleranceTest, DivergingDesignAnchors) {
  // The Table 1 anchors as unit assertions on the library API.
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.design = optics::diverging_10g(20e-3, 1.5);
  sim::Prototype proto = sim::make_prototype(42, config);

  const double peak = aligned_peak_power_dbm(proto);
  EXPECT_NEAR(peak, -10.0, 2.5);

  const double tx = util::rad_to_mrad(tx_angular_tolerance(proto));
  const double rx = util::rad_to_mrad(rx_angular_tolerance(proto));
  EXPECT_NEAR(tx, 15.81, 4.0);
  EXPECT_NEAR(rx, 5.77, 1.5);
  EXPECT_GT(tx, rx);  // the diverging design's signature asymmetry
}

TEST(ToleranceTest, CollimatedDesignAnchors) {
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.design = optics::collimated_10g(20e-3);
  sim::Prototype proto = sim::make_prototype(42, config);
  EXPECT_NEAR(aligned_peak_power_dbm(proto), 15.0, 2.0);
  EXPECT_NEAR(util::rad_to_mrad(tx_angular_tolerance(proto)), 2.0, 1.0);
  EXPECT_NEAR(util::rad_to_mrad(rx_angular_tolerance(proto)), 2.28, 1.0);
}

TEST(ToleranceTest, LateralToleranceIsMillimetric) {
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  const double lateral = rx_lateral_tolerance(proto);
  EXPECT_GT(lateral, 2e-3);
  EXPECT_LT(lateral, 25e-3);
}

TEST(ToleranceTest, MeasurementRestoresScene) {
  // The procedures perturb the scene; they must leave it where they found
  // it (other experiments run on the same prototype afterwards).
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  const geom::Pose rig_before = proto.scene.rig_pose();
  const geom::Pose tx_before = proto.scene.tx().mount();
  tx_angular_tolerance(proto);
  rx_angular_tolerance(proto);
  rx_lateral_tolerance(proto);
  EXPECT_NEAR(geom::translation_distance(proto.scene.rig_pose(), rig_before),
              0.0, 1e-12);
  EXPECT_NEAR(geom::rotation_distance(proto.scene.tx().mount(), tx_before),
              0.0, 1e-12);
}

TEST(PredictionUnderMotion, PredictedControllerTracksBetter) {
  // At a speed past the react-only envelope, the predicting controller
  // keeps more windows aligned on a constant-velocity stroke.
  sim::Prototype proto = sim::make_prototype(42, sim::prototype_10g_config());
  util::Rng rng(7);
  const CalibrationResult calib =
      calibrate_prototype(proto, CalibrationConfig{}, rng);

  const auto aligned_fraction = [&](bool predict) {
    TpConfig tp;
    tp.predict_pose = predict;
    TpController controller(calib.make_pointing_solver(), tp);
    const motion::LinearStrokeMotion profile(proto.nominal_rig_pose,
                                             {1, 0, 0}, 0.15, {0.55});
    const link::RunResult run =
        link::run_link_simulation(proto, controller, profile);
    int aligned = 0;
    for (const auto& w : run.windows) {
      if (w.power_ok_fraction >= 0.95) ++aligned;
    }
    return run.windows.empty()
               ? 0.0
               : static_cast<double>(aligned) / run.windows.size();
  };

  const double react = aligned_fraction(false);
  const double predicted = aligned_fraction(true);
  EXPECT_GT(predicted, react + 0.1);
}

}  // namespace
}  // namespace cyclops::core

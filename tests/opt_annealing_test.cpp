#include <gtest/gtest.h>

#include <cmath>

#include "opt/annealing.hpp"
#include "opt/levmar.hpp"
#include "util/units.hpp"

namespace cyclops::opt {
namespace {

TEST(AnnealingTest, FindsQuadraticMinimum) {
  util::Rng rng(1);
  const auto fn = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  AnnealingOptions options;
  options.iterations = 30000;
  const auto result = simulated_annealing(fn, {10.0, 10.0}, options, rng);
  EXPECT_NEAR(result.params[0], 3.0, 0.1);
  EXPECT_NEAR(result.params[1], -1.0, 0.1);
}

TEST(AnnealingTest, EscapesLocalMinimum) {
  // Double well: local minimum at x = -1 (value 0.5), global at x = +2
  // (value 0).  Gradient descent from -1.2 stays trapped; annealing must
  // cross the barrier.
  util::Rng rng(2);
  const auto fn = [](std::span<const double> x) {
    const double a = (x[0] + 1.0);
    const double b = (x[0] - 2.0);
    return std::min(0.5 + a * a, b * b);
  };
  AnnealingOptions options;
  options.iterations = 40000;
  options.default_step = 0.8;
  const auto result = simulated_annealing(fn, {-1.2}, options, rng);
  EXPECT_NEAR(result.params[0], 2.0, 0.2);
  EXPECT_LT(result.value, 0.1);
}

TEST(AnnealingTest, MultiModalRastrigin2d) {
  util::Rng rng(3);
  const auto fn = [](std::span<const double> x) {
    double s = 20.0;
    for (double xi : x) {
      s += xi * xi - 10.0 * std::cos(2.0 * util::kPi * xi);
    }
    return s;
  };
  AnnealingOptions options;
  options.iterations = 60000;
  options.default_step = 0.5;
  const auto result = simulated_annealing(fn, {3.3, -2.7}, options, rng);
  // Reaching one of the near-origin wells is success for this landscape.
  EXPECT_LT(result.value, 2.5);
}

TEST(AnnealingTest, RespectsEvaluationAccounting) {
  util::Rng rng(4);
  int calls = 0;
  const auto fn = [&calls](std::span<const double> x) {
    ++calls;
    return x[0] * x[0];
  };
  AnnealingOptions options;
  options.iterations = 500;
  const auto result = simulated_annealing(fn, {1.0}, options, rng);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_EQ(result.evaluations, 501);
  EXPECT_GT(result.accepted, 0);
}

TEST(AnnealingTest, AnnealThenPolishBeatsLmAloneFromBadStart) {
  // The intended Stage-2 usage pattern: a rugged residual landscape where
  // LM from a bad start stalls in a side valley.
  const auto rugged = [](std::span<const double> x) {
    const double base = (x[0] - 4.0) * (x[0] - 4.0) +
                        (x[1] - 1.0) * (x[1] - 1.0);
    const double ripple =
        2.0 * std::sin(3.0 * x[0]) * std::sin(3.0 * x[1]);
    return base + ripple + 2.0;
  };
  const ResidualFn residuals = [&](std::span<const double> p,
                                   std::vector<double>& r) {
    r = {std::sqrt(std::max(rugged(p), 0.0))};
  };

  const std::vector<double> bad_start{-4.0, -4.0};
  const auto lm_only = levenberg_marquardt(residuals, bad_start);

  util::Rng rng(5);
  AnnealingOptions options;
  options.iterations = 30000;
  options.default_step = 1.0;
  const auto annealed = simulated_annealing(rugged, bad_start, options, rng);
  const auto polished = levenberg_marquardt(residuals, annealed.params);

  EXPECT_LE(polished.final_cost, lm_only.final_cost + 1e-9);
  EXPECT_LT(polished.final_cost, 1.0);  // near the global basin
}

}  // namespace
}  // namespace cyclops::opt

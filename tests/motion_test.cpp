#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "motion/profile.hpp"
#include "motion/trace.hpp"
#include "motion/trace_generator.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cyclops::motion {
namespace {

const geom::Pose kBase{geom::Mat3::rotation({0, 1, 0}, 0.3), {0.0, 0.8, 1.2}};

// ---- profiles ----

TEST(StillMotionTest, NeverMoves) {
  const StillMotion profile(kBase, 5.0);
  EXPECT_DOUBLE_EQ(profile.duration_s(), 5.0);
  const Speeds s = measure_speeds(profile, util::us_from_s(2.0));
  EXPECT_DOUBLE_EQ(s.linear_mps, 0.0);
  EXPECT_DOUBLE_EQ(s.angular_rps, 0.0);
}

TEST(LinearStrokeTest, TravelsFullStroke) {
  const LinearStrokeMotion profile(kBase, {1, 0, 0}, 0.25, {0.1});
  const geom::Vec3 start = profile.pose_at(0).translation();
  EXPECT_NEAR(start.x, kBase.translation().x - 0.25, 1e-9);
  // Stroke of 0.5 m at 0.1 m/s takes 5 s.
  const geom::Vec3 end = profile.pose_at(util::us_from_s(5.0)).translation();
  EXPECT_NEAR(end.x, kBase.translation().x + 0.25, 1e-6);
}

TEST(LinearStrokeTest, SpeedMatchesSchedule) {
  const LinearStrokeMotion profile(kBase, {1, 0, 0}, 0.25, {0.1, 0.2});
  // Mid-first-stroke.
  const Speeds s1 = measure_speeds(profile, util::us_from_s(2.5));
  EXPECT_NEAR(s1.linear_mps, 0.1, 1e-3);
  EXPECT_NEAR(s1.angular_rps, 0.0, 1e-9);
  // Second stroke starts at 5 + 0.25 rest; takes 2.5 s.
  const Speeds s2 = measure_speeds(profile, util::us_from_s(6.5));
  EXPECT_NEAR(s2.linear_mps, 0.2, 1e-2);
}

TEST(LinearStrokeTest, RestsBetweenStrokes) {
  const LinearStrokeMotion profile(kBase, {1, 0, 0}, 0.25, {0.1, 0.1}, 0.5);
  // Rest window right after the first stroke (5.0 .. 5.5 s).
  const geom::Vec3 a = profile.pose_at(util::us_from_s(5.1)).translation();
  const geom::Vec3 b = profile.pose_at(util::us_from_s(5.4)).translation();
  EXPECT_NEAR(geom::distance(a, b), 0.0, 1e-12);
}

TEST(LinearStrokeTest, OrientationNeverChanges) {
  const LinearStrokeMotion profile(kBase, {0, 0, 1}, 0.2, {0.15, 0.3});
  for (double t : {0.0, 1.0, 3.0, 6.0}) {
    EXPECT_NEAR(geom::rotation_distance(
                    kBase, profile.pose_at(util::us_from_s(t))),
                0.0, 1e-12);
  }
}

TEST(AngularStrokeTest, SpeedMatchesSchedule) {
  const double w = util::deg_to_rad(10.0);
  const AngularStrokeMotion profile(kBase, {0, 1, 0}, util::deg_to_rad(20.0),
                                    {w});
  const Speeds s = measure_speeds(profile, util::us_from_s(1.0));
  EXPECT_NEAR(s.angular_rps, w, w * 0.02);
  EXPECT_NEAR(s.linear_mps, 0.0, 1e-9);
}

TEST(AngularStrokeTest, PositionFixed) {
  const AngularStrokeMotion profile(kBase, {0, 1, 0}, 0.3, {0.2, 0.4});
  for (double t : {0.0, 0.7, 1.9, 3.0}) {
    EXPECT_NEAR(geom::distance(profile.pose_at(util::us_from_s(t)).translation(),
                               kBase.translation()),
                0.0, 1e-12);
  }
}

TEST(AngularStrokeTest, SweepsExpectedAngle) {
  const AngularStrokeMotion profile(kBase, {0, 1, 0}, 0.25, {0.25});
  const geom::Pose start = profile.pose_at(0);
  const geom::Pose end = profile.pose_at(util::us_from_s(2.0));
  EXPECT_NEAR(geom::rotation_distance(start, end), 0.5, 1e-3);
}

TEST(IncreasingSpeedsTest, BuildsSchedule) {
  const auto speeds = increasing_speeds(0.05, 0.05, 0.25);
  ASSERT_EQ(speeds.size(), 5u);
  EXPECT_DOUBLE_EQ(speeds.front(), 0.05);
  EXPECT_DOUBLE_EQ(speeds.back(), 0.25);
}

TEST(MixedRandomTest, RespectsSpeedCaps) {
  MixedRandomMotion::Config config;
  config.duration_s = 20.0;
  config.max_linear_speed = 0.3;
  config.max_angular_speed = 0.4;
  const MixedRandomMotion profile(kBase, config, util::Rng(3));
  for (double t = 0.1; t < 19.9; t += 0.05) {
    const Speeds s = measure_speeds(profile, util::us_from_s(t));
    EXPECT_LT(s.linear_mps, 0.45);   // cap + interpolation slack
    EXPECT_LT(s.angular_rps, 0.6);
  }
}

TEST(MixedRandomTest, StaysNearBase) {
  MixedRandomMotion::Config config;
  config.duration_s = 30.0;
  const MixedRandomMotion profile(kBase, config, util::Rng(5));
  for (double t = 0; t < 30.0; t += 0.5) {
    const double excursion = geom::distance(
        profile.pose_at(util::us_from_s(t)).translation(),
        kBase.translation());
    EXPECT_LT(excursion, 0.6);
  }
}

TEST(MixedRandomTest, ActuallyMoves) {
  MixedRandomMotion::Config config;
  const MixedRandomMotion profile(kBase, config, util::Rng(7));
  util::RunningStats lin;
  for (double t = 0.5; t < 25.0; t += 0.25) {
    lin.add(measure_speeds(profile, util::us_from_s(t)).linear_mps);
  }
  EXPECT_GT(lin.mean(), 0.01);
}

TEST(MixedRandomTest, DeterministicPerSeed) {
  MixedRandomMotion::Config config;
  const MixedRandomMotion a(kBase, config, util::Rng(11));
  const MixedRandomMotion b(kBase, config, util::Rng(11));
  const MixedRandomMotion c(kBase, config, util::Rng(12));
  const auto t = util::us_from_s(3.0);
  EXPECT_DOUBLE_EQ(
      geom::translation_distance(a.pose_at(t), b.pose_at(t)), 0.0);
  EXPECT_GT(geom::translation_distance(a.pose_at(t), c.pose_at(t)), 0.0);
}

// ---- traces ----

Trace tiny_trace() {
  Trace trace;
  for (int i = 0; i <= 10; ++i) {
    const double t_ms = i * 10.0;
    trace.samples.push_back(
        {util::us_from_ms(t_ms),
         geom::Pose{geom::Mat3::rotation({0, 1, 0}, 0.01 * i),
                    {0.001 * i, 0.8, 1.2}}});
  }
  return trace;
}

TEST(TraceTest, PoseAtInterpolates) {
  const Trace trace = tiny_trace();
  const geom::Pose mid = trace.pose_at(util::us_from_ms(5.0));
  EXPECT_NEAR(mid.translation().x, 0.0005, 1e-9);
  EXPECT_NEAR(geom::rotation_distance(trace.samples[0].pose, mid), 0.005,
              1e-6);
}

TEST(TraceTest, PoseAtClampsEnds) {
  const Trace trace = tiny_trace();
  EXPECT_NEAR(geom::translation_distance(trace.pose_at(-5),
                                         trace.samples.front().pose),
              0.0, 1e-12);
  EXPECT_NEAR(
      geom::translation_distance(trace.pose_at(util::us_from_s(100.0)),
                                 trace.samples.back().pose),
      0.0, 1e-12);
}

TEST(TraceTest, CsvRoundTrip) {
  const Trace trace = tiny_trace();
  const auto path =
      std::filesystem::temp_directory_path() / "cyclops_trace_test.csv";
  trace.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  ASSERT_EQ(loaded.samples.size(), trace.samples.size());
  for (std::size_t i = 0; i < trace.samples.size(); ++i) {
    EXPECT_EQ(loaded.samples[i].time, trace.samples[i].time);
    EXPECT_LT(geom::translation_distance(loaded.samples[i].pose,
                                         trace.samples[i].pose),
              1e-9);
    EXPECT_LT(geom::rotation_distance(loaded.samples[i].pose,
                                      trace.samples[i].pose),
              1e-6);
  }
  std::filesystem::remove(path);
}

TEST(TraceTest, ComputeSpeeds) {
  const Trace trace = tiny_trace();
  const TraceSpeeds speeds = compute_speeds(trace);
  ASSERT_EQ(speeds.linear_mps.size(), 10u);
  // 1 mm per 10 ms = 0.1 m/s; 0.01 rad per 10 ms = 1 rad/s.
  EXPECT_NEAR(speeds.linear_mps[3], 0.1, 1e-6);
  EXPECT_NEAR(speeds.angular_rps[3], 1.0, 1e-4);
}

TEST(TraceMotionTest, WrapsTrace) {
  const TraceMotion profile(tiny_trace());
  EXPECT_NEAR(profile.duration_s(), 0.1, 1e-9);
  EXPECT_NEAR(profile.pose_at(util::us_from_ms(10.0)).translation().x, 0.001,
              1e-9);
}

// ---- generator ----

TEST(TraceGeneratorTest, ShapeMatchesDatasetSpec) {
  util::Rng rng(1);
  TraceGeneratorConfig config;
  config.duration_s = 60.0;
  const Trace trace = generate_viewing_trace(kBase, config, rng);
  // 1 min at 10 ms = 6000 samples (+1 fencepost).
  EXPECT_NEAR(static_cast<double>(trace.samples.size()), 6001.0, 2.0);
  EXPECT_NEAR(trace.duration_s(), 60.0, 0.1);
}

TEST(TraceGeneratorTest, SpeedsRespectFig3Caps) {
  util::Rng rng(2);
  TraceGeneratorConfig config;
  const Trace trace = generate_viewing_trace(kBase, config, rng);
  const TraceSpeeds speeds = compute_speeds(trace);
  for (double v : speeds.linear_mps) EXPECT_LE(v, 0.145);
  for (double w : speeds.angular_rps) EXPECT_LE(w, 0.34);
}

TEST(TraceGeneratorTest, SpeedsAreNontrivial) {
  util::Rng rng(3);
  const Trace trace = generate_viewing_trace(kBase, {}, rng);
  const TraceSpeeds speeds = compute_speeds(trace);
  EXPECT_GT(util::mean(speeds.angular_rps), util::deg_to_rad(0.5));
  EXPECT_GT(util::mean(speeds.linear_mps), 0.002);
}

TEST(TraceGeneratorTest, MedianSpeedsInFig3Band) {
  // Fig 3: medians of a seated 360° viewer are a few deg/s and ~1-2 cm/s.
  util::Rng rng(4);
  std::vector<double> lin, ang;
  for (int i = 0; i < 10; ++i) {
    util::Rng trng = rng.split();
    const Trace trace = generate_viewing_trace(kBase, {}, trng);
    const TraceSpeeds speeds = compute_speeds(trace);
    lin.insert(lin.end(), speeds.linear_mps.begin(), speeds.linear_mps.end());
    ang.insert(ang.end(), speeds.angular_rps.begin(),
               speeds.angular_rps.end());
  }
  const double lin_median = util::percentile(lin, 50.0);
  const double ang_median_deg = util::rad_to_deg(util::percentile(ang, 50.0));
  EXPECT_GT(lin_median, 0.002);
  EXPECT_LT(lin_median, 0.05);
  EXPECT_GT(ang_median_deg, 0.5);
  EXPECT_LT(ang_median_deg, 8.0);
}

TEST(TraceGeneratorTest, DatasetHasRequestedCountAndVariety) {
  util::Rng rng(5);
  const auto traces = generate_dataset(kBase, 20, {}, rng);
  ASSERT_EQ(traces.size(), 20u);
  // Different viewers behave differently.
  const TraceSpeeds a = compute_speeds(traces[0]);
  const TraceSpeeds b = compute_speeds(traces[1]);
  EXPECT_NE(util::mean(a.angular_rps), util::mean(b.angular_rps));
}

TEST(TraceGeneratorTest, PitchStaysComfortable) {
  util::Rng rng(6);
  TraceGeneratorConfig config;
  const Trace trace = generate_viewing_trace(kBase, config, rng);
  for (std::size_t i = 0; i < trace.samples.size(); i += 100) {
    EXPECT_LT(geom::rotation_distance(kBase, trace.samples[i].pose), 2.2);
  }
}


// ---- walking generator ----

TEST(WalkingTraceTest, StaysInsideTheBox) {
  util::Rng rng(1);
  motion::WalkingConfig config;
  config.area_half_extent = 0.5;
  const Trace trace = generate_walking_trace(kBase, config, rng);
  for (std::size_t i = 0; i < trace.samples.size(); i += 50) {
    const geom::Vec3 local =
        kBase.rotation().transposed() *
        (trace.samples[i].pose.translation() - kBase.translation());
    EXPECT_LT(std::abs(local.x), 0.56);
    EXPECT_LT(std::abs(local.z), 0.56);
    EXPECT_NEAR(local.y, 0.0, 1e-9);  // walking stays at head height
  }
}

TEST(WalkingTraceTest, WalkSpeedsInConfiguredBand) {
  util::Rng rng(2);
  motion::WalkingConfig config;
  const Trace trace = generate_walking_trace(kBase, config, rng);
  const TraceSpeeds speeds = compute_speeds(trace);
  double max_lin = 0.0;
  for (double v : speeds.linear_mps) max_lin = std::max(max_lin, v);
  EXPECT_GT(max_lin, config.walk_speed_min);
  EXPECT_LT(max_lin, config.walk_speed_max + 0.05);
}

TEST(WalkingTraceTest, ForwardFacingKeepsYawBounded) {
  util::Rng rng(3);
  motion::WalkingConfig config;  // face_walk_direction = false
  const Trace trace = generate_walking_trace(kBase, config, rng);
  for (std::size_t i = 0; i < trace.samples.size(); i += 100) {
    EXPECT_LT(geom::rotation_distance(kBase, trace.samples[i].pose), 0.9);
  }
}

TEST(WalkingTraceTest, FreeRoamingYawsAlongWalk) {
  util::Rng rng(4);
  motion::WalkingConfig config;
  config.face_walk_direction = true;
  config.duration_s = 90.0;
  const Trace trace = generate_walking_trace(kBase, config, rng);
  double max_rotation = 0.0;
  for (const auto& s : trace.samples) {
    max_rotation =
        std::max(max_rotation, geom::rotation_distance(kBase, s.pose));
  }
  // Roaming eventually faces well away from the base forward.
  EXPECT_GT(max_rotation, 1.0);
}

TEST(WalkingTraceTest, AngularSpeedsArePhysical) {
  util::Rng rng(5);
  const Trace trace = generate_walking_trace(kBase, {}, rng);
  const TraceSpeeds speeds = compute_speeds(trace);
  for (double w : speeds.angular_rps) {
    EXPECT_LT(w, util::deg_to_rad(120.0));  // no white-noise head spins
  }
}

}  // namespace
}  // namespace cyclops::motion

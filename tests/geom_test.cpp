#include <gtest/gtest.h>

#include <cmath>

#include "geom/mat3.hpp"
#include "geom/pose.hpp"
#include "geom/quat.hpp"
#include "geom/ray.hpp"
#include "geom/reflect.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cyclops::geom {
namespace {

constexpr double kTol = 1e-10;

void expect_near(const Vec3& a, const Vec3& b, double tol = kTol) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

Vec3 random_unit(util::Rng& rng) {
  return Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
}

Vec3 random_vec(util::Rng& rng, double scale = 1.0) {
  return {rng.normal(0.0, scale), rng.normal(0.0, scale),
          rng.normal(0.0, scale)};
}

// ---- Vec3 ----

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  expect_near(a + b, {5, 7, 9});
  expect_near(b - a, {3, 3, 3});
  expect_near(a * 2.0, {2, 4, 6});
  expect_near(2.0 * a, {2, 4, 6});
  expect_near(a / 2.0, {0.5, 1, 1.5});
  expect_near(-a, {-1, -2, -3});
}

TEST(Vec3Test, DotCrossNorm) {
  const Vec3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  expect_near(a.cross(b), {0, 0, 1});
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm2(), 25.0);
}

TEST(Vec3Test, NormalizedIsUnit) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Vec3 v = random_vec(rng, 10.0);
    if (v.norm() < 1e-9) continue;
    EXPECT_NEAR(v.normalized().norm(), 1.0, kTol);
  }
}

TEST(Vec3Test, AngleBetween) {
  EXPECT_NEAR(angle_between({1, 0, 0}, {0, 1, 0}), util::kPi / 2, kTol);
  EXPECT_NEAR(angle_between({1, 0, 0}, {1, 0, 0}), 0.0, kTol);
  EXPECT_NEAR(angle_between({1, 0, 0}, {-1, 0, 0}), util::kPi, kTol);
  EXPECT_NEAR(angle_between({1, 1, 0}, {1, 0, 0}), util::kPi / 4, kTol);
}

TEST(Vec3Test, AnyOrthogonalIsOrthogonal) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Vec3 v = random_unit(rng);
    const Vec3 o = any_orthogonal(v);
    EXPECT_NEAR(v.dot(o), 0.0, kTol);
    EXPECT_NEAR(o.norm(), 1.0, kTol);
  }
}

// ---- Mat3 / rotations ----

TEST(Mat3Test, IdentityActsTrivially) {
  const Vec3 v{1.5, -2.0, 0.3};
  expect_near(Mat3::identity() * v, v);
}

TEST(Mat3Test, RotationAboutZ) {
  const Mat3 r = Mat3::rotation({0, 0, 1}, util::kPi / 2);
  expect_near(r * Vec3{1, 0, 0}, {0, 1, 0});
  expect_near(r * Vec3{0, 1, 0}, {-1, 0, 0});
}

TEST(Mat3Test, RotationPreservesNormAndAngles) {
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Mat3 r = Mat3::rotation(random_unit(rng), rng.uniform(-3.0, 3.0));
    const Vec3 a = random_vec(rng), b = random_vec(rng);
    EXPECT_NEAR((r * a).norm(), a.norm(), 1e-9);
    EXPECT_NEAR((r * a).dot(r * b), a.dot(b), 1e-9);
  }
}

TEST(Mat3Test, RotationComposesWithAngleSum) {
  const Vec3 axis{0.3, -0.5, 0.81};
  const Mat3 a = Mat3::rotation(axis, 0.4);
  const Mat3 b = Mat3::rotation(axis, 0.7);
  const Mat3 ab = a * b;
  const Mat3 direct = Mat3::rotation(axis, 1.1);
  const Vec3 v{1, 2, 3};
  expect_near(ab * v, direct * v, 1e-9);
}

TEST(Mat3Test, TransposeIsInverseForRotations) {
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Mat3 r = Mat3::rotation(random_unit(rng), rng.uniform(-3.0, 3.0));
    const Vec3 v = random_vec(rng);
    expect_near(r.transposed() * (r * v), v, 1e-9);
  }
}

TEST(Mat3Test, RotationBetweenMapsFromToTo) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Vec3 from = random_unit(rng);
    const Vec3 to = random_unit(rng);
    expect_near(Mat3::rotation_between(from, to) * from, to, 1e-9);
  }
}

TEST(Mat3Test, RotationBetweenAntiparallel) {
  const Vec3 v{0.0, 0.0, 1.0};
  expect_near(Mat3::rotation_between(v, -v) * v, -v, 1e-9);
}

TEST(Mat3Test, RotationVectorRoundTrip) {
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const Vec3 axis = random_unit(rng);
    const double angle = rng.uniform(0.01, 3.1);
    const Mat3 r = Mat3::rotation(axis, angle);
    const Vec3 rv = rotation_vector(r);
    EXPECT_NEAR(rv.norm(), angle, 1e-8);
    expect_near(rv.normalized(), axis, 1e-7);
  }
}

TEST(Mat3Test, RotationVectorNearPi) {
  const Vec3 axis = Vec3{1, 2, -1}.normalized();
  const Mat3 r = Mat3::rotation(axis, util::kPi - 1e-4);
  const Vec3 rv = rotation_vector(r);
  EXPECT_NEAR(rv.norm(), util::kPi - 1e-4, 1e-6);
}

TEST(Mat3Test, RotationVectorIdentityIsZero) {
  expect_near(rotation_vector(Mat3::identity()), {0, 0, 0});
}

// ---- Quat ----

TEST(QuatTest, AxisAngleRotationMatchesMatrix) {
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Vec3 axis = random_unit(rng);
    const double angle = rng.uniform(-3.0, 3.0);
    const Quat q = Quat::from_axis_angle(axis, angle);
    const Mat3 m = Mat3::rotation(axis, angle);
    const Vec3 v = random_vec(rng);
    expect_near(q.rotate(v), m * v, 1e-9);
  }
}

TEST(QuatTest, MatrixRoundTrip) {
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const Quat q = Quat::from_axis_angle(random_unit(rng),
                                         rng.uniform(-3.1, 3.1));
    const Quat q2 = Quat::from_matrix(q.to_matrix());
    // q and -q represent the same rotation.
    const Vec3 v = random_vec(rng);
    expect_near(q.rotate(v), q2.rotate(v), 1e-9);
  }
}

TEST(QuatTest, CompositionMatchesMatrixProduct) {
  util::Rng rng(9);
  const Quat a = Quat::from_axis_angle(random_unit(rng), 0.8);
  const Quat b = Quat::from_axis_angle(random_unit(rng), -1.3);
  const Vec3 v = random_vec(rng);
  expect_near((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-9);
}

TEST(QuatTest, SlerpEndpointsAndMidpoint) {
  const Quat a = Quat::identity();
  const Quat b = Quat::from_axis_angle({0, 0, 1}, 1.0);
  expect_near(slerp(a, b, 0.0).rotate({1, 0, 0}), a.rotate({1, 0, 0}), 1e-9);
  expect_near(slerp(a, b, 1.0).rotate({1, 0, 0}), b.rotate({1, 0, 0}), 1e-9);
  const Quat mid = slerp(a, b, 0.5);
  EXPECT_NEAR(mid.angle(), 0.5, 1e-9);
}

TEST(QuatTest, SlerpShortestPath) {
  const Quat a = Quat::from_axis_angle({0, 1, 0}, 0.1);
  Quat b = Quat::from_axis_angle({0, 1, 0}, 0.3);
  // Negate b: same rotation, opposite sign — slerp must still go short way.
  b = {-b.w, -b.x, -b.y, -b.z};
  const Quat mid = slerp(a, b, 0.5);
  EXPECT_NEAR(angular_distance(a, mid), 0.1, 1e-9);
}

TEST(QuatTest, AngularDistance) {
  const Quat a = Quat::from_axis_angle({1, 0, 0}, 0.2);
  const Quat b = Quat::from_axis_angle({1, 0, 0}, 0.9);
  EXPECT_NEAR(angular_distance(a, b), 0.7, 1e-9);
}

// ---- Ray / Plane ----

TEST(RayTest, IntersectBasic) {
  const Ray ray{{0, 0, -1}, {0, 0, 1}};
  const Plane plane{{0, 0, 1}, {0, 0, 1}};
  const auto t = intersect(ray, plane);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 2.0);
}

TEST(RayTest, IntersectParallelIsNull) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const Plane plane{{0, 0, 1}, {0, 0, 1}};
  EXPECT_FALSE(intersect(ray, plane).has_value());
}

TEST(RayTest, IntersectBehindRespectsForwardOnly) {
  const Ray ray{{0, 0, 2}, {0, 0, 1}};
  const Plane plane{{0, 0, 1}, {0, 0, 1}};
  EXPECT_FALSE(intersect(ray, plane, true).has_value());
  const auto t = intersect(ray, plane, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, -1.0);
}

TEST(RayTest, ClosestPointAndDistance) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  expect_near(closest_point(ray, {5, 3, 0}), {5, 0, 0});
  EXPECT_DOUBLE_EQ(line_point_distance(ray, {5, 3, 4}), 5.0);
}

TEST(PlaneTest, SignedDistance) {
  const Plane plane{{0, 0, 2}, {0, 0, 1}};
  EXPECT_DOUBLE_EQ(plane.signed_distance({0, 0, 5}), 3.0);
  EXPECT_DOUBLE_EQ(plane.signed_distance({1, 1, 0}), -2.0);
}

// ---- reflect ----

TEST(ReflectTest, DirNormalIncidence) {
  expect_near(reflect_dir({0, 0, 1}, {0, 0, 1}), {0, 0, -1});
}

TEST(ReflectTest, Dir45Degrees) {
  const Vec3 in = Vec3{1, 0, -1}.normalized();
  expect_near(reflect_dir(in, {0, 0, 1}), Vec3{1, 0, 1}.normalized());
}

TEST(ReflectTest, PreservesNorm) {
  util::Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const Vec3 d = random_unit(rng);
    const Vec3 n = random_unit(rng);
    EXPECT_NEAR(reflect_dir(d, n).norm(), 1.0, kTol);
  }
}

TEST(ReflectTest, Involution) {
  util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Vec3 d = random_unit(rng);
    const Vec3 n = random_unit(rng);
    expect_near(reflect_dir(reflect_dir(d, n), n), d, 1e-9);
  }
}

TEST(ReflectTest, RayOriginMovesToMirror) {
  const Ray incoming{{0, 0, -2}, {0, 0, 1}};
  const Plane mirror{{0, 0, 0}, Vec3{0, -1, 1}.normalized()};
  const auto out = reflect(incoming, mirror);
  ASSERT_TRUE(out.has_value());
  expect_near(out->origin, {0, 0, 0});
  expect_near(out->dir, {0, 1, 0});
}

TEST(ReflectTest, AngleOfIncidenceEqualsReflection) {
  util::Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const Vec3 n = random_unit(rng);
    Vec3 d = random_unit(rng);
    if (d.dot(n) > -0.05) d = reflect_dir(d, n);  // ensure incoming side
    if (std::abs(d.dot(n)) < 0.05) continue;
    const Vec3 r = reflect_dir(d, n);
    EXPECT_NEAR(std::abs(d.dot(n)), std::abs(r.dot(n)), 1e-9);
  }
}

TEST(ReflectTest, MissesParallelMirror) {
  const Ray incoming{{0, 0, 0}, {1, 0, 0}};
  const Plane mirror{{0, 0, 5}, {0, 0, 1}};
  EXPECT_FALSE(reflect(incoming, mirror).has_value());
}

// ---- Pose ----

TEST(PoseTest, IdentityActsTrivially) {
  const Pose p = Pose::identity();
  expect_near(p.apply({1, 2, 3}), {1, 2, 3});
}

TEST(PoseTest, ApplyRotatesThenTranslates) {
  const Pose p{Mat3::rotation({0, 0, 1}, util::kPi / 2), {10, 0, 0}};
  expect_near(p.apply({1, 0, 0}), {10, 1, 0});
  expect_near(p.apply_dir({1, 0, 0}), {0, 1, 0});
}

TEST(PoseTest, InverseUndoes) {
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const Pose p{Mat3::rotation(random_unit(rng), rng.uniform(-3, 3)),
                 random_vec(rng, 2.0)};
    const Vec3 v = random_vec(rng, 3.0);
    expect_near(p.inverse().apply(p.apply(v)), v, 1e-9);
  }
}

TEST(PoseTest, CompositionAssociative) {
  util::Rng rng(14);
  const auto rand_pose = [&rng] {
    return Pose{Mat3::rotation(random_unit(rng), rng.uniform(-3, 3)),
                random_vec(rng, 2.0)};
  };
  const Pose a = rand_pose(), b = rand_pose(), c = rand_pose();
  const Vec3 v = random_vec(rng);
  expect_near(((a * b) * c).apply(v), (a * (b * c)).apply(v), 1e-9);
  expect_near((a * b).apply(v), a.apply(b.apply(v)), 1e-9);
}

TEST(PoseTest, ParamsRoundTrip) {
  util::Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    const Pose p{Mat3::rotation(random_unit(rng), rng.uniform(0.01, 3.0)),
                 random_vec(rng, 2.0)};
    const Pose q = Pose::from_params(p.params());
    EXPECT_NEAR(translation_distance(p, q), 0.0, 1e-9);
    EXPECT_NEAR(rotation_distance(p, q), 0.0, 1e-7);
  }
}

TEST(PoseTest, ApplyRayAndPlane) {
  const Pose p{Mat3::rotation({0, 1, 0}, util::kPi / 2), {0, 0, 5}};
  const Ray ray{{0, 0, 0}, {0, 0, 1}};
  const Ray moved = p.apply(ray);
  expect_near(moved.origin, {0, 0, 5});
  expect_near(moved.dir, {1, 0, 0});
  const Plane plane{{0, 0, 1}, {0, 0, 1}};
  const Plane moved_plane = p.apply(plane);
  expect_near(moved_plane.normal, {1, 0, 0});
}

TEST(PoseTest, Distances) {
  const Pose a{Mat3::identity(), {0, 0, 0}};
  const Pose b{Mat3::rotation({0, 0, 1}, 0.5), {3, 4, 0}};
  EXPECT_DOUBLE_EQ(translation_distance(a, b), 5.0);
  EXPECT_NEAR(rotation_distance(a, b), 0.5, 1e-9);
}

TEST(PoseTest, FromQuatMatchesMatrix) {
  const Quat q = Quat::from_axis_angle({0, 1, 0}, 0.7);
  const Pose p = Pose::from_quat(q, {1, 2, 3});
  expect_near(p.apply({1, 0, 0}), q.rotate({1, 0, 0}) + Vec3{1, 2, 3}, 1e-9);
  // rotation_quat round-trips (up to sign).
  const Quat q2 = p.rotation_quat();
  expect_near(q2.rotate({0, 0, 1}), q.rotate({0, 0, 1}), 1e-9);
}

// Parameterized sweep: pose round trips across rotation magnitudes.
class PoseParamsSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoseParamsSweep, RoundTripAtAngle) {
  util::Rng rng(16);
  const double angle = GetParam();
  for (int i = 0; i < 10; ++i) {
    const Pose p{Mat3::rotation(random_unit(rng), angle), random_vec(rng)};
    const Pose q = Pose::from_params(p.params());
    EXPECT_NEAR(rotation_distance(p, q), 0.0, 1e-6);
    EXPECT_NEAR(translation_distance(p, q), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, PoseParamsSweep,
                         ::testing::Values(1e-6, 0.01, 0.5, 1.5, 2.8, 3.1,
                                           3.14));

}  // namespace
}  // namespace cyclops::geom

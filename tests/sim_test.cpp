#include <gtest/gtest.h>

#include <cmath>

#include "core/exhaustive_aligner.hpp"
#include "sim/prototype.hpp"
#include "sim/scene.hpp"
#include "util/units.hpp"

namespace cyclops::sim {
namespace {

Prototype make_10g(std::uint64_t seed = 42) {
  return make_prototype(seed, prototype_10g_config());
}

TEST(PrototypeTest, GroundTruthConsistency) {
  Prototype proto = make_10g();
  // true_map_tx must take a K-space point of the TX GMA to its VR-space
  // location: check on the mirror-2 anchor q2.
  const geom::Vec3 q2_local = proto.tx_galvo_truth.q2;
  const geom::Vec3 q2_k = proto.k_from_tx_gma.apply(q2_local);
  const geom::Vec3 q2_world = proto.scene.tx().mount().apply(q2_local);
  const geom::Vec3 via_map = proto.true_map_tx.apply(q2_k);
  const geom::Vec3 via_world = proto.vr_from_world.apply(q2_world);
  EXPECT_NEAR(geom::distance(via_map, via_world), 0.0, 1e-9);
}

TEST(PrototypeTest, RxMappingConsistency) {
  Prototype proto = make_10g();
  const geom::Vec3 q2_local = proto.rx_galvo_truth.q2;
  const geom::Vec3 q2_k = proto.k_from_rx_gma.apply(q2_local);
  // Through the learnable chain: VR = Psi * M_rx * K.
  const geom::Pose psi =
      proto.vr_from_world * proto.nominal_rig_pose * proto.x_from_rig;
  const geom::Vec3 via_map = (psi * proto.true_map_rx).apply(q2_k);
  // Through the physical chain.
  const geom::Vec3 world =
      (proto.nominal_rig_pose * proto.rx_mount_in_rig).apply(q2_local);
  EXPECT_NEAR(geom::distance(via_map, proto.vr_from_world.apply(world)), 0.0,
              1e-9);
}

TEST(PrototypeTest, DeterministicForSeed) {
  Prototype a = make_10g(7);
  Prototype b = make_10g(7);
  EXPECT_NEAR(geom::distance(a.tx_galvo_truth.p0, b.tx_galvo_truth.p0), 0.0,
              0.0);
  Prototype c = make_10g(8);
  EXPECT_GT(geom::distance(a.tx_galvo_truth.p0, c.tx_galvo_truth.p0), 0.0);
}

TEST(PrototypeTest, LinkRangeInPaperBand) {
  Prototype proto = make_10g();
  const double range = geom::distance(
      proto.scene.tx().mount().translation(),
      proto.nominal_rig_pose.translation());
  EXPECT_GT(range, 1.4);
  EXPECT_LT(range, 2.1);
}

TEST(SceneTest, AlignedLinkReachesPeakPower) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  ASSERT_TRUE(r.converged()) << core::to_string(r.status);
  // Table 1: peak received power of the diverging design is ~-10 dBm.
  EXPECT_GT(r.power_dbm, -13.0);
  EXPECT_LT(r.power_dbm, -7.0);
}

TEST(SceneTest, ZeroVoltagesAreNotAligned) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  const double aligned = r.power_dbm;
  const double at_zero = proto.scene.received_power_dbm({});
  EXPECT_LT(at_zero, aligned);
}

TEST(SceneTest, ObservationGeometry) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  const LinkObservation obs = proto.scene.observe(r.voltages);
  EXPECT_TRUE(obs.beam_valid);
  EXPECT_FALSE(obs.occluded);
  EXPECT_LT(obs.delta_r, 2e-3);
  EXPECT_LT(obs.psi, 2e-3);
  EXPECT_NEAR(obs.envelope_diameter, 20e-3, 6e-3);
  EXPECT_GT(obs.range, 1.4);
}

TEST(SceneTest, MisalignmentDropsPower) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  Voltages off = r.voltages;
  off.tx1 += 0.5;  // ~17 mrad beam deflection
  EXPECT_LT(proto.scene.received_power_dbm(off), r.power_dbm - 3.0);
}

TEST(SceneTest, RxRotationDropsPowerFasterThanTxTilt) {
  // The Table-1 asymmetry at the full-scene level: equal-size angular
  // errors hurt much more on the RX side than on the TX side.
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});

  const double angle = util::mrad_to_rad(8.0) / 2.0;  // 4 mrad mirror
  Voltages tx_off = r.voltages;
  tx_off.tx1 += angle / proto.tx_galvo_truth.theta1;  // volts for 4 mrad
  const double tx_power = proto.scene.received_power_dbm(tx_off);

  Voltages rx_off = r.voltages;
  rx_off.rx1 += angle / proto.rx_galvo_truth.theta1;
  const double rx_power = proto.scene.received_power_dbm(rx_off);

  // Steering the RX mirror breaks the incidence angle (tight); steering
  // the TX mirror only slides the wide envelope.
  EXPECT_LT(rx_power, tx_power);
}

TEST(SceneTest, OccluderBlocksLink) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  ASSERT_TRUE(std::isfinite(r.power_dbm));

  // Put a head-sized occluder in the middle of the path.
  const geom::Vec3 mid =
      (proto.scene.tx().mount().translation() +
       proto.nominal_rig_pose.translation()) *
      0.5;
  proto.scene.add_occluder({mid, 0.12});
  const LinkObservation obs = proto.scene.observe(r.voltages);
  EXPECT_TRUE(obs.occluded);
  EXPECT_TRUE(std::isinf(obs.power.rx_power_dbm));

  proto.scene.clear_occluders();
  EXPECT_FALSE(proto.scene.observe(r.voltages).occluded);
}

TEST(SceneTest, SmallOccluderOffPathDoesNotBlock) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  proto.scene.add_occluder({{5.0, 5.0, 5.0}, 0.2});
  EXPECT_FALSE(proto.scene.observe(r.voltages).occluded);
}

TEST(SceneTest, RigPoseMovesRxAssembly) {
  Prototype proto = make_10g();
  const geom::Pose before = proto.scene.rx_world().mount();
  geom::Pose moved = proto.nominal_rig_pose;
  moved = geom::Pose{moved.rotation(),
                     moved.translation() + geom::Vec3{0.1, 0.0, 0.0}};
  proto.scene.set_rig_pose(moved);
  const geom::Pose after = proto.scene.rx_world().mount();
  EXPECT_NEAR(geom::translation_distance(before, after), 0.1, 1e-9);
}

TEST(SceneTest, RigMotionBreaksAlignment) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  // Rotate the rig by ~3x the RX angular tolerance.
  const geom::Pose rotated{
      geom::Mat3::rotation({1, 0, 0}, util::mrad_to_rad(20.0)) *
          proto.nominal_rig_pose.rotation(),
      proto.nominal_rig_pose.translation()};
  proto.scene.set_rig_pose(rotated);
  EXPECT_LT(proto.scene.received_power_dbm(r.voltages),
            proto.scene.config().sfp.rx_sensitivity_dbm);
}

TEST(SceneTest, PhotodiodesSeeAlignedBeam) {
  Prototype proto = make_10g();
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  const optics::QuadReading reading = proto.scene.photodiodes(r.voltages);
  EXPECT_GT(reading.sum(), 0.0);
  // Roughly centered beam: small normalized errors.
  EXPECT_LT(std::abs(reading.error_x()), 0.5);
  EXPECT_LT(std::abs(reading.error_y()), 0.5);
}

TEST(SceneTest, RigFlexPerturbsMountSlightly) {
  Prototype proto = make_10g();
  util::Rng rng(5);
  const geom::Pose before = proto.scene.rx_in_rig().mount();
  proto.apply_rig_flex(rng);
  const geom::Pose after = proto.scene.rx_in_rig().mount();
  const double moved = geom::translation_distance(before, after);
  EXPECT_GT(moved, 0.0);
  EXPECT_LT(moved, 3e-3);
}

TEST(SceneTest, Prototype25gAlignsAboveSensitivity) {
  Prototype proto = make_prototype(42, prototype_25g_config());
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  ASSERT_TRUE(r.converged()) << core::to_string(r.status);
  // The 25G design runs on a deliberately thin margin (~5 dB at peak).
  EXPECT_GT(r.power_dbm, proto.scene.config().sfp.rx_sensitivity_dbm + 3.0);
  EXPECT_LT(r.power_dbm, 0.0);
}

// Aligned power is reproducible across prototypes (different manufactured
// units land near the same design point).
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AlignedPowerNearDesignPoint) {
  Prototype proto = make_10g(GetParam());
  core::ExhaustiveAligner aligner;
  const core::AlignResult r = aligner.align(proto.scene, {});
  ASSERT_TRUE(r.converged()) << core::to_string(r.status);
  EXPECT_GT(r.power_dbm, -14.0);
  EXPECT_LT(r.power_dbm, -6.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace cyclops::sim

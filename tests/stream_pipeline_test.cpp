// StreamPipeline end-to-end: the event-driven frame -> transport ->
// jitter-playout plane over clean and flapping capacity, spectator
// fan-out with the refcount-only (zero-copy) guarantee, ABR downgrade
// under sustained outage, and arena-cap backpressure.
#include <gtest/gtest.h>

#include "runtime/context.hpp"
#include "stream/pipeline.hpp"
#include "util/units.hpp"

namespace cyclops::stream {
namespace {

PipelineConfig base_config() {
  PipelineConfig config;
  config.duration = util::us_from_s(2.0);
  config.stored_payload_bytes = 1024;
  return config;
}

TEST(StreamPipelineTest, CleanLinkDeliversNearlyEveryFrame) {
  runtime::Context ctx = runtime::Context::isolated();
  StreamPipeline pipe(base_config(), ctx);
  PipelineResult result = pipe.run([](util::SimTimeUs) { return 23.5; });

  ASSERT_EQ(result.receivers.size(), 1u);
  const LedgerStats& qoe = result.receivers[0].ledger;
  EXPECT_GT(result.frames_generated, 170);
  EXPECT_EQ(qoe.frames_offered, result.frames_generated);
  // 23.5 Gbps carries the 20 Gbps raw stream: everything but the tail
  // frame in flight at cutoff arrives.
  EXPECT_GE(qoe.delivery_rate(), 0.97);
  EXPECT_EQ(qoe.freeze_events, 0);
  EXPECT_EQ(result.torn_frames, 0);
  EXPECT_EQ(result.arena.copies, 0u);
  EXPECT_EQ(result.mode_switches, 0);
  EXPECT_GT(result.goodput_gbps, 18.0);
  // Ledger balance: every offered frame resolved one way.
  EXPECT_EQ(qoe.frames_delivered + qoe.frames_dropped, qoe.frames_offered);
}

TEST(StreamPipelineTest, DeadLinkFreezesAndDeliversNothing) {
  runtime::Context ctx = runtime::Context::isolated();
  StreamPipeline pipe(base_config(), ctx);
  PipelineResult result = pipe.run([](util::SimTimeUs) { return 0.0; });

  const LedgerStats& qoe = result.receivers[0].ledger;
  EXPECT_EQ(qoe.frames_delivered, 0);
  EXPECT_EQ(qoe.frames_dropped, qoe.frames_offered);
  EXPECT_EQ(qoe.freeze_events, 1);  // one long freeze, not many short ones
  EXPECT_EQ(qoe.longest_freeze_frames, qoe.frames_offered);
  // Packets piled up against the backlog cap and were evicted
  // (peripheral/foveal first, so what survives is the intra tail: ~4 raw
  // + ~12 compressed intra frames under the 1e9-bit cap).  The arena
  // footprint is bounded by the cap, not one slab per stuck frame (180).
  EXPECT_LE(result.arena.in_use, 20u);
}

TEST(StreamPipelineTest, OutageTriggersAbrDowngradeAndRecovery) {
  runtime::Context ctx = runtime::Context::isolated();
  PipelineConfig config = base_config();
  config.duration = util::us_from_s(9.0);
  StreamPipeline pipe(config, ctx);
  // Clean for 2 s, dead for 3 s, clean again: the adapter must downgrade
  // during the outage and upgrade after recovery (the EMA needs ~2.7 s
  // above threshold to re-cross 0.995).
  PipelineResult result = pipe.run([](util::SimTimeUs t) {
    return t < util::us_from_s(2.0)   ? 23.5
           : t < util::us_from_s(5.0) ? 0.0
                                      : 23.5;
  });
  EXPECT_GE(result.mode_switches, 2);
  const LedgerStats& qoe = result.receivers[0].ledger;
  EXPECT_GT(qoe.frames_delivered, 0);
  EXPECT_GT(qoe.freeze_events, 0);
  EXPECT_LT(qoe.delivery_rate(), 1.0);
  EXPECT_EQ(result.torn_frames, 0);
}

TEST(StreamPipelineTest, SpectatorFanOutIsRefcountOnly) {
  runtime::Context ctx = runtime::Context::isolated();
  PipelineConfig config = base_config();
  config.spectators = 4;
  // Loss is per fragment and a raw frame is ~106 fragments, so even
  // 0.2% fragment loss costs a spectator ~19% of frames.
  config.spectator = {.loss = 0.002, .dup = 0.02, .reorder = 0.1};
  StreamPipeline pipe(config, ctx);
  PipelineResult result = pipe.run([](util::SimTimeUs) { return 23.5; });

  ASSERT_EQ(result.receivers.size(), 5u);
  // THE zero-copy claim: 5 receivers, every slab shared refcount-only.
  EXPECT_EQ(result.arena.copies, 0u);
  EXPECT_EQ(result.torn_frames, 0);
  EXPECT_LE(result.arena.in_use, 3u);  // only the cutoff tail in flight
  // The headset (clean) beats the lossy spectators, but spectators still
  // see most frames.
  const double headset_rate = result.receivers[0].ledger.delivery_rate();
  EXPECT_GE(headset_rate, 0.97);
  for (int i = 1; i <= 4; ++i) {
    const LedgerStats& qoe = result.receivers[i].ledger;
    EXPECT_EQ(qoe.frames_offered, result.frames_generated);
    EXPECT_GT(qoe.delivery_rate(), 0.5) << "spectator " << i;
    EXPECT_LE(qoe.delivery_rate(), headset_rate) << "spectator " << i;
    EXPECT_EQ(qoe.frames_delivered + qoe.frames_dropped, qoe.frames_offered);
  }
}

TEST(StreamPipelineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    runtime::Context ctx = runtime::Context::isolated();
    PipelineConfig config;
    config.duration = util::us_from_s(2.0);
    config.stored_payload_bytes = 1024;
    config.spectators = 2;
    config.spectator = {.loss = 0.1, .dup = 0.05, .reorder = 0.2};
    config.size_jitter = 0.05;
    StreamPipeline pipe(config, ctx);
    return pipe.run([](util::SimTimeUs t) {
      return (t / 500000) % 2 == 0 ? 23.5 : 0.3;
    });
  };
  const PipelineResult a = run_once();
  const PipelineResult b = run_once();
  ASSERT_EQ(a.receivers.size(), b.receivers.size());
  EXPECT_EQ(a.frames_generated, b.frames_generated);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.mode_switches, b.mode_switches);
  for (std::size_t i = 0; i < a.receivers.size(); ++i) {
    EXPECT_EQ(a.receivers[i].ledger.frames_delivered,
              b.receivers[i].ledger.frames_delivered);
    EXPECT_EQ(a.receivers[i].ledger.frames_dropped,
              b.receivers[i].ledger.frames_dropped);
    EXPECT_EQ(a.receivers[i].ledger.freeze_events,
              b.receivers[i].ledger.freeze_events);
    EXPECT_EQ(a.receivers[i].transport.packets_lost,
              b.receivers[i].transport.packets_lost);
  }
}

TEST(StreamPipelineTest, ArenaCapBackpressuresInsteadOfGrowing) {
  runtime::Context ctx = runtime::Context::isolated();
  PipelineConfig config = base_config();
  config.arena.max_slabs = 2;
  StreamPipeline pipe(config, ctx);
  // Dead link: frames pile up until the arena cap, then rendering is
  // backpressured (acquire failures), never unbounded growth.
  PipelineResult result = pipe.run([](util::SimTimeUs) { return 0.0; });
  EXPECT_LE(result.arena.slabs_allocated, 2u);
  EXPECT_GT(result.arena.failures, 0u);
  EXPECT_EQ(result.receivers[0].ledger.frames_dropped,
            result.receivers[0].ledger.frames_offered);
}

}  // namespace
}  // namespace cyclops::stream

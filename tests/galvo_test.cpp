#include <gtest/gtest.h>

#include <cmath>

#include "galvo/factory.hpp"
#include "galvo/galvo_mirror.hpp"
#include "galvo/gma.hpp"
#include "optics/beam.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cyclops::galvo {
namespace {

GalvoMirror nominal_galvo() { return {nominal_params(), gvs102_spec()}; }

// ---- GalvoParams ----

TEST(GalvoParamsTest, PackUnpackRoundTrip) {
  const GalvoParams p = nominal_params();
  const GalvoParams q = GalvoParams::unpack(p.pack());
  EXPECT_NEAR(geom::distance(p.p0, q.p0), 0.0, 1e-12);
  EXPECT_NEAR(geom::distance(p.q2, q.q2), 0.0, 1e-12);
  EXPECT_NEAR(geom::angle_between(p.n1, q.n1), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.theta1, q.theta1);
}

TEST(GalvoParamsTest, UnpackNormalizesDirections) {
  auto packed = nominal_params().pack();
  packed[3] *= 7.0;  // scale x0
  packed[4] *= 7.0;
  packed[5] *= 7.0;
  const GalvoParams p = GalvoParams::unpack(packed);
  EXPECT_NEAR(p.x0.norm(), 1.0, 1e-12);
}

// ---- nominal geometry ----

TEST(GalvoMirrorTest, ZeroVoltageBoresight) {
  const auto out = nominal_galvo().trace(0.0, 0.0);
  ASSERT_TRUE(out.has_value());
  // Nominal design: output from the local origin along -z.
  EXPECT_NEAR(geom::distance(out->origin, {0, 0, 0}), 0.0, 1e-9);
  EXPECT_NEAR(geom::angle_between(out->dir, {0, 0, -1}), 0.0, 1e-9);
}

TEST(GalvoMirrorTest, Mirror1ScansX) {
  const GalvoMirror gm = nominal_galvo();
  const auto out = gm.trace(1.0, 0.0);
  ASSERT_TRUE(out.has_value());
  // 1 V = 1 deg mirror = 2 deg beam.
  const double expected = util::deg_to_rad(2.0);
  EXPECT_NEAR(geom::angle_between(out->dir, {0, 0, -1}), expected, 1e-6);
  EXPECT_GT(std::abs(out->dir.x), std::abs(out->dir.y));
}

TEST(GalvoMirrorTest, Mirror2ScansY) {
  const GalvoMirror gm = nominal_galvo();
  const auto out = gm.trace(0.0, 1.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(geom::angle_between(out->dir, {0, 0, -1}),
              util::deg_to_rad(2.0), 1e-6);
  EXPECT_GT(std::abs(out->dir.y), std::abs(out->dir.x));
}

TEST(GalvoMirrorTest, BeamAngleLinearInVoltage) {
  const GalvoMirror gm = nominal_galvo();
  const auto base = gm.trace(0.0, 0.0);
  std::vector<double> angles;
  for (double v : {0.5, 1.0, 2.0, 4.0}) {
    const auto out = gm.trace(v, 0.0);
    ASSERT_TRUE(out.has_value());
    angles.push_back(geom::angle_between(out->dir, base->dir));
  }
  EXPECT_NEAR(angles[1] / angles[0], 2.0, 1e-3);
  EXPECT_NEAR(angles[2] / angles[1], 2.0, 1e-3);
  EXPECT_NEAR(angles[3] / angles[2], 2.0, 1e-3);
}

TEST(GalvoMirrorTest, OutputOriginMovesWithVoltage) {
  // The distortion effect: p depends on the voltages (the paper's reason
  // for not assuming a constant origin).
  const GalvoMirror gm = nominal_galvo();
  const auto a = gm.trace(0.0, 0.0);
  const auto b = gm.trace(3.0, 3.0);
  ASSERT_TRUE(a && b);
  EXPECT_GT(geom::distance(a->origin, b->origin), 0.5e-3);
}

TEST(GalvoMirrorTest, VoltageOutOfRangeRejected) {
  const GalvoMirror gm = nominal_galvo();
  EXPECT_FALSE(gm.trace(10.5, 0.0).has_value());
  EXPECT_FALSE(gm.trace(0.0, -11.0).has_value());
  EXPECT_TRUE(gm.trace(9.9, 9.9).has_value());
}

TEST(GalvoMirrorTest, ClipsOnMirrorEdge) {
  GalvoSpec tiny = gvs102_spec();
  tiny.mirror_radius = 0.5e-3;  // pathologically small mirror
  const GalvoMirror gm(nominal_params(), tiny);
  // At high deflection the hit point on mirror 2 walks off a 0.5 mm mirror.
  EXPECT_FALSE(gm.trace(8.0, 8.0).has_value());
}

TEST(GalvoMirrorTest, TraceIdealMatchesDeviceWithinAperture) {
  const GalvoMirror gm = nominal_galvo();
  for (double v1 : {-4.0, 0.0, 4.0}) {
    for (double v2 : {-3.0, 0.0, 3.0}) {
      const auto dev = gm.trace(v1, v2);
      const auto ideal = trace_ideal(gm.params(), v1, v2);
      ASSERT_TRUE(dev && ideal);
      EXPECT_NEAR(geom::distance(dev->origin, ideal->origin), 0.0, 1e-12);
      EXPECT_NEAR(geom::angle_between(dev->dir, ideal->dir), 0.0, 1e-12);
    }
  }
}

TEST(GalvoMirrorTest, MirrorPlanesRotateWithVoltage) {
  const GalvoMirror gm = nominal_galvo();
  const geom::Plane p0 = gm.mirror1_plane(0.0);
  const geom::Plane p1 = gm.mirror1_plane(2.0);
  EXPECT_NEAR(geom::angle_between(p0.normal, p1.normal),
              util::deg_to_rad(2.0), 1e-9);
  // The anchor point q is on the rotation axis, so it does not move.
  EXPECT_NEAR(geom::distance(p0.point, p1.point), 0.0, 1e-12);
}

// ---- DAQ ----

TEST(DaqTest, QuantizesToStep) {
  const Daq daq;
  const double q = daq.quantize(1.23456);
  EXPECT_NEAR(q, 1.23456, daq.quantization_step);
  EXPECT_NEAR(std::fmod(q, daq.quantization_step), 0.0, 1e-9);
}

TEST(DaqTest, QuantizationErrorBounded) {
  const Daq daq;
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    EXPECT_LE(std::abs(daq.quantize(v) - v), daq.quantization_step / 2 + 1e-12);
  }
}

TEST(DaqTest, SixteenBitStepIsSubMillivolt) {
  const Daq daq;
  EXPECT_LT(daq.quantization_step, 1e-3);
}

// ---- factory ----

TEST(FactoryTest, PerturbationIsSmallButNonzero) {
  util::Rng rng(3);
  const GalvoParams nominal = nominal_params();
  const GalvoParams made = perturbed_params(nominal, {}, rng);
  const double dp = geom::distance(nominal.q2, made.q2);
  EXPECT_GT(dp, 0.0);
  EXPECT_LT(dp, 10e-3);
  const double dn = geom::angle_between(nominal.n2, made.n2);
  EXPECT_GT(dn, 0.0);
  EXPECT_LT(dn, util::deg_to_rad(5.0));
  EXPECT_NE(made.theta1, nominal.theta1);
  EXPECT_NEAR(made.theta1, nominal.theta1, 0.1 * nominal.theta1);
}

TEST(FactoryTest, PerturbedUnitStillTraces) {
  util::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const GalvoMirror gm(perturbed_params(nominal_params(), {}, rng),
                         gvs102_spec());
    EXPECT_TRUE(gm.trace(0.0, 0.0).has_value());
    EXPECT_TRUE(gm.trace(4.0, -4.0).has_value());
  }
}

TEST(FactoryTest, DistinctUnitsDiffer) {
  util::Rng rng(5);
  const GalvoParams a = perturbed_params(nominal_params(), {}, rng);
  const GalvoParams b = perturbed_params(nominal_params(), {}, rng);
  EXPECT_GT(geom::distance(a.p0, b.p0), 0.0);
}

// ---- GMA ----

TEST(GmaTest, MountTransformsOutput) {
  const geom::Pose mount{geom::Mat3::rotation({0, 1, 0}, util::kPi),
                         {1.0, 2.0, 3.0}};
  const GmaPhysical gma(nominal_galvo(), mount);
  const auto out = gma.trace_parent(0.0, 0.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(geom::distance(out->origin, {1, 2, 3}), 0.0, 1e-9);
  // Local -z rotated by pi about y becomes +z.
  EXPECT_NEAR(geom::angle_between(out->dir, {0, 0, 1}), 0.0, 1e-9);
}

TEST(GmaTest, EmitCarriesBeamSpec) {
  const GmaPhysical gma(nominal_galvo(), geom::Pose::identity());
  const auto beam =
      gma.emit(0.0, 0.0, optics::BeamSpec::diverging_for(20e-3, 1.5));
  ASSERT_TRUE(beam.has_value());
  EXPECT_EQ(beam->spec.kind, optics::BeamKind::kDiverging);
  EXPECT_NEAR(beam->envelope_diameter_at(beam->chief.at(1.5)), 20e-3, 1e-3);
}

TEST(GmaTest, Mirror2PlaneContainsBeamOrigin) {
  const GmaPhysical gma(nominal_galvo(), geom::Pose::identity());
  for (double v2 : {-3.0, 0.0, 3.0}) {
    const auto out = gma.trace_parent(1.0, v2);
    const geom::Plane plane = gma.mirror2_plane_parent(v2);
    ASSERT_TRUE(out.has_value());
    EXPECT_NEAR(std::abs(plane.signed_distance(out->origin)), 0.0, 1e-9);
  }
}

TEST(GmaTest, CaptureRayEqualsTraceParent) {
  const GmaPhysical gma(nominal_galvo(), geom::Pose::identity());
  const auto a = gma.trace_parent(2.0, -1.0);
  const auto b = gma.capture_ray(2.0, -1.0);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(geom::distance(a->origin, b->origin), 0.0, 1e-15);
}

// Parameterized coverage sweep: every voltage in the working cone
// produces a valid beam whose deflection matches 2 * theta1 * |v|.
class CoverageSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CoverageSweep, DeflectionMatchesModel) {
  const auto [v1, v2] = GetParam();
  const GalvoMirror gm = nominal_galvo();
  const auto out = gm.trace(v1, v2);
  ASSERT_TRUE(out.has_value());
  const auto base = gm.trace(0.0, 0.0);
  const double angle = geom::angle_between(out->dir, base->dir);
  // Small-angle composition: beam deflection ~ 2*theta1*sqrt(v1^2+v2^2).
  const double expected =
      2.0 * gm.params().theta1 * std::sqrt(v1 * v1 + v2 * v2);
  EXPECT_NEAR(angle, expected, expected * 0.05 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Voltages, CoverageSweep,
    ::testing::Values(std::pair{1.0, 0.0}, std::pair{0.0, 1.0},
                      std::pair{2.0, 2.0}, std::pair{-3.0, 1.0},
                      std::pair{4.0, -4.0}, std::pair{-5.0, -5.0},
                      std::pair{6.0, 2.0}, std::pair{0.5, -0.5}));

}  // namespace
}  // namespace cyclops::galvo

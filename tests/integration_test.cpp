// End-to-end integration tests: the full pipeline from calibration through
// closed-loop streaming, plus regression tests for cross-cutting behaviors
// (tracker schedule reset between runs, DAQ command pipelining, the
// frozen-origin ablation hook, VR-frame streaming over the simulated link).
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "link/fso_link.hpp"
#include "motion/profile.hpp"
#include "motion/trace_generator.hpp"
#include "net/streamer.hpp"
#include "util/units.hpp"

namespace cyclops {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(
        sim::make_prototype(1234, sim::prototype_10g_config()));
    util::Rng rng(99);
    calib_ = new core::CalibrationResult(
        core::calibrate_prototype(*proto_, core::CalibrationConfig{}, rng));
  }
  static void TearDownTestSuite() {
    delete calib_;
    delete proto_;
    proto_ = nullptr;
    calib_ = nullptr;
  }
  static sim::Prototype* proto_;
  static core::CalibrationResult* calib_;
};

sim::Prototype* IntegrationFixture::proto_ = nullptr;
core::CalibrationResult* IntegrationFixture::calib_ = nullptr;

TEST_F(IntegrationFixture, BackToBackRunsAreIndependent) {
  // Regression: the tracker's scheduled capture must reset between runs
  // (each run restarts simulation time at zero).
  core::TpController c1(calib_->make_pointing_solver(), core::TpConfig{});
  const motion::LinearStrokeMotion profile(proto_->nominal_rig_pose,
                                           {1, 0, 0}, 0.10, {0.10});
  const link::RunResult first = link::run_link_simulation(*proto_, c1, profile);
  core::TpController c2(calib_->make_pointing_solver(), core::TpConfig{});
  const link::RunResult second =
      link::run_link_simulation(*proto_, c2, profile);
  EXPECT_GT(first.realignments, 50);
  EXPECT_GT(second.realignments, 50);
  EXPECT_GT(second.total_up_fraction, 0.99);
}

TEST_F(IntegrationFixture, CommandsPipelineAtHighReportRate) {
  // Regression: with a report period shorter than the pointing latency,
  // commands must still apply (queued), not be overwritten forever.
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.tracker.period_ms = 1.0;
  config.tracker.period_jitter_ms = 0.05;
  config.tracker.position_lag_ms = 1.0;
  sim::Prototype fast = sim::make_prototype(1234, config);
  util::Rng rng(5);
  const core::CalibrationResult calib =
      core::calibrate_prototype(fast, core::CalibrationConfig{}, rng);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  const motion::LinearStrokeMotion profile(fast.nominal_rig_pose, {1, 0, 0},
                                           0.10, {0.3});
  const link::RunResult run =
      link::run_link_simulation(fast, controller, profile);
  EXPECT_GT(run.realignments, 500);
  EXPECT_GT(run.total_up_fraction, 0.95);
}

TEST_F(IntegrationFixture, FrozenOriginSolverIsWorse) {
  const core::PointingSolver full = calib_->make_pointing_solver();
  const core::PointingSolver frozen(
      calib_->tx_stage1.model.with_frozen_origin(),
      calib_->rx_stage1.model.with_frozen_origin(), calib_->mapping.map_tx,
      calib_->mapping.map_rx, core::PointingOptions{});
  EXPECT_TRUE(frozen.tx_vr().origin_frozen());

  util::Rng rng(3);
  double full_power = 0.0, frozen_power = 0.0;
  int n = 0;
  for (int i = 0; i < 10; ++i) {
    const geom::Pose pose = core::random_rig_pose(
        proto_->nominal_rig_pose, 0.2, 0.1, rng);
    proto_->scene.set_rig_pose(pose);
    const geom::Pose psi = proto_->tracker.report(0, pose).pose;
    const auto a = full.solve(psi, {});
    const auto b = frozen.solve(psi, {});
    if (!a.converged || !b.converged) continue;
    full_power += proto_->scene.received_power_dbm(a.voltages);
    frozen_power += proto_->scene.received_power_dbm(b.voltages);
    ++n;
  }
  proto_->scene.set_rig_pose(proto_->nominal_rig_pose);
  ASSERT_GT(n, 5);
  EXPECT_GT(full_power / n, frozen_power / n);
}

TEST_F(IntegrationFixture, FrozenOriginTraceHasConstantOrigin) {
  const core::GmaModel frozen =
      calib_->tx_stage1.model.with_frozen_origin();
  const auto a = frozen.trace(0.0, 0.0);
  const auto b = frozen.trace(4.0, -4.0);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(geom::distance(a->origin, b->origin), 0.0, 1e-12);
  // The unfrozen model's origin moves (the distortion).
  const auto c = calib_->tx_stage1.model.trace(0.0, 0.0);
  const auto d = calib_->tx_stage1.model.trace(4.0, -4.0);
  EXPECT_GT(geom::distance(c->origin, d->origin), 0.1e-3);
}

TEST_F(IntegrationFixture, StreamingOverStillLinkIsClean) {
  core::TpController controller(calib_->make_pointing_solver(),
                                core::TpConfig{});
  net::FrameSource source({.fps = 90.0, .stream_rate_gbps = 8.0},
                          util::Rng(17));
  net::FrameStreamer streamer(net::StreamerConfig{});

  link::SimOptions options;
  options.step = 1000;
  const double goodput = proto_->scene.config().sfp.goodput_gbps;
  options.on_slot = [&](util::SimTimeUs now, bool up, double) {
    while (const auto f = source.poll(now)) streamer.offer(*f);
    streamer.step(now, options.step, up ? goodput : 0.0);
  };
  const motion::StillMotion profile(proto_->nominal_rig_pose, 2.0);
  link::run_link_simulation(*proto_, controller, profile, options);

  EXPECT_GT(streamer.stats().frames_offered, 150);
  EXPECT_EQ(streamer.stats().frames_dropped, 0);
  EXPECT_EQ(streamer.stats().freeze_events, 0);
}

TEST_F(IntegrationFixture, TrackerLagPenalizesOnlyTranslation) {
  // The position-lag model: a translating rig's report is stale by the
  // lag, a rotating rig's orientation is fresh.
  tracking::TrackerConfig config;
  config.position_noise_m = 0.0;
  config.orientation_noise_rad = 0.0;
  tracking::VrhTracker tracker(config, geom::Pose::identity(),
                               geom::Pose::identity(), util::Rng(1));

  const geom::Pose current{geom::Mat3::rotation({0, 1, 0}, 0.1),
                           {0.05, 0.0, 0.0}};
  const geom::Pose lagged{geom::Mat3::rotation({0, 1, 0}, 0.05),
                          {0.04, 0.0, 0.0}};
  const tracking::PoseReport report = tracker.report(0, current, lagged);
  // Position from the lagged pose...
  EXPECT_NEAR(report.pose.translation().x, 0.04, 1e-12);
  // ...orientation from the current pose.
  EXPECT_NEAR(
      geom::rotation_distance(
          report.pose, geom::Pose{current.rotation(), {0.04, 0.0, 0.0}}),
      0.0, 1e-12);
}

TEST(AlignerRobustness, RecoversFromBadHint) {
  sim::Prototype proto =
      sim::make_prototype(77, sim::prototype_10g_config());
  core::ExhaustiveAligner aligner;
  // A hint deep in a dead corner of the voltage space.
  const core::AlignResult result =
      aligner.align(proto.scene, {9.0, -9.0, 9.0, -9.0});
  EXPECT_TRUE(result.converged()) << core::to_string(result.status);
  EXPECT_GT(result.power_dbm, -14.0);
}

TEST(EndToEnd, TwentyFiveGCalibratesAndStreams) {
  sim::Prototype proto =
      sim::make_prototype(2024, sim::prototype_25g_config());
  util::Rng rng(4);
  const core::CalibrationResult calib =
      core::calibrate_prototype(proto, core::CalibrationConfig{}, rng);
  core::TpController controller(calib.make_pointing_solver(),
                                core::TpConfig{});
  motion::MixedRandomMotion::Config mc;
  mc.duration_s = 5.0;
  mc.max_linear_speed = 0.08;
  mc.max_angular_speed = util::deg_to_rad(8.0);
  const motion::MixedRandomMotion profile(proto.nominal_rig_pose, mc,
                                          util::Rng(8));
  const link::RunResult run =
      link::run_link_simulation(proto, controller, profile);
  EXPECT_GT(run.total_up_fraction, 0.95);
}

}  // namespace
}  // namespace cyclops

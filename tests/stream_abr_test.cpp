// ABR rebase oracle: the streaming data plane's EncoderRateAdapter and
// the WireQueue-backed net::FrameStreamer must be bit-exact with the
// pre-stream implementations across the full fig16 trace library
// (ISSUE 7 acceptance: EXPECT_EQ mode-switch sequences and freeze
// counts on all 500 traces).
//
// The legacy implementations are embedded below VERBATIM (modulo obs
// handles, which do not touch the arithmetic) — the same oracle
// discipline as tests/session_core_test.cpp: the old float-op sequence
// is the spec, the new code must reproduce it exactly, not
// approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "link/slot_eval.hpp"
#include "motion/trace_generator.hpp"
#include "net/adaptive_stream.hpp"
#include "net/streamer.hpp"
#include "stream/rate_adapter.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace cyclops::stream {
namespace {

// ---------------------------------------------------------------------
// Legacy oracle #1: AdaptiveStreamController as it was before the
// stream:: rebase (git history, src/net/adaptive_stream.cpp), obs
// handles stripped.
// ---------------------------------------------------------------------

enum class LegacyMode { kRaw, kCompressed };

struct LegacyAdaptiveConfig {
  double raw_rate_gbps = 20.0;
  double compressed_rate_gbps = 0.4;
  double decode_latency_ms = 8.0;
  double downgrade_threshold = 0.90;
  double upgrade_threshold = 0.995;
  util::SimTimeUs window = 500000;
  util::SimTimeUs min_dwell = 1000000;
};

class LegacyAdaptiveStreamController {
 public:
  explicit LegacyAdaptiveStreamController(LegacyAdaptiveConfig config)
      : config_(config) {}

  LegacyMode step(util::SimTimeUs now, double capacity_gbps) {
    const double dt =
        last_step_ == 0 ? 1e-3 : util::us_to_s(now - last_step_);
    last_step_ = now;

    const double satisfied =
        std::clamp(capacity_gbps / config_.raw_rate_gbps, 0.0, 1.0);
    const double alpha =
        1.0 - std::exp(-dt / util::us_to_s(config_.window));
    satisfied_ema_ += alpha * (satisfied - satisfied_ema_);

    const bool dwell_ok = now - last_switch_ >= config_.min_dwell;
    if (mode_ == LegacyMode::kRaw &&
        satisfied_ema_ < config_.downgrade_threshold && dwell_ok) {
      mode_ = LegacyMode::kCompressed;
      ++switches_;
      last_switch_ = now;
    } else if (mode_ == LegacyMode::kCompressed &&
               satisfied_ema_ > config_.upgrade_threshold && dwell_ok) {
      mode_ = LegacyMode::kRaw;
      ++switches_;
      last_switch_ = now;
    }
    return mode_;
  }

  int mode_switches() const noexcept { return switches_; }
  double current_rate_gbps() const noexcept {
    return mode_ == LegacyMode::kRaw ? config_.raw_rate_gbps
                                     : config_.compressed_rate_gbps;
  }

 private:
  LegacyAdaptiveConfig config_;
  LegacyMode mode_ = LegacyMode::kRaw;
  int switches_ = 0;
  util::SimTimeUs last_switch_ = 0;
  double satisfied_ema_ = 1.0;
  util::SimTimeUs last_step_ = 0;
};

// ---------------------------------------------------------------------
// Legacy oracle #2: FrameStreamer as it was before the WireQueue /
// FreezeLedger rebase (git history, src/net/streamer.cpp).
// ---------------------------------------------------------------------

struct LegacyFrame {
  std::int64_t id = 0;
  util::SimTimeUs render_time = 0;
  double bits = 0.0;
};

struct LegacyStreamStats {
  std::int64_t frames_offered = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t frames_dropped = 0;
  double avg_delivery_latency_ms = 0.0;
  double max_delivery_latency_ms = 0.0;
  int freeze_events = 0;
  int longest_freeze_frames = 0;
  std::int64_t last_delivered_id = -1;
};

class LegacyFrameStreamer {
 public:
  LegacyFrameStreamer(util::SimTimeUs deadline, double overhead)
      : deadline_(deadline), overhead_(overhead) {}

  void offer(const LegacyFrame& frame) {
    ++stats_.frames_offered;
    queue_.push_back({frame, frame.bits * overhead_});
  }

  void step(util::SimTimeUs now, util::SimTimeUs slot_duration,
            double capacity_gbps) {
    while (!queue_.empty() &&
           now > queue_.front().frame.render_time + deadline_) {
      record_drop();
      queue_.pop_front();
    }
    double budget_bits = capacity_gbps * 1e9 * util::us_to_s(slot_duration);
    while (budget_bits > 0.0 && !queue_.empty()) {
      InFlight& head = queue_.front();
      const double sent = std::min(budget_bits, head.bits_remaining);
      head.bits_remaining -= sent;
      budget_bits -= sent;
      if (head.bits_remaining <= 0.0) {
        record_delivery(now + slot_duration, head.frame);
        queue_.pop_front();
      }
    }
  }

  const LegacyStreamStats& stats() const noexcept { return stats_; }

 private:
  struct InFlight {
    LegacyFrame frame;
    double bits_remaining = 0.0;
  };

  void record_drop() {
    ++stats_.frames_dropped;
    ++current_drop_run_;
    if (current_drop_run_ == 2) ++stats_.freeze_events;
    stats_.longest_freeze_frames =
        std::max(stats_.longest_freeze_frames, current_drop_run_);
  }

  void record_delivery(util::SimTimeUs now, const LegacyFrame& frame) {
    ++stats_.frames_delivered;
    stats_.last_delivered_id = frame.id;
    current_drop_run_ = 0;
    const double latency_ms = util::us_to_ms(now - frame.render_time);
    latency_sum_ms_ += latency_ms;
    stats_.avg_delivery_latency_ms =
        latency_sum_ms_ / static_cast<double>(stats_.frames_delivered);
    stats_.max_delivery_latency_ms =
        std::max(stats_.max_delivery_latency_ms, latency_ms);
  }

  util::SimTimeUs deadline_;
  double overhead_;
  std::deque<InFlight> queue_;
  LegacyStreamStats stats_;
  double latency_sum_ms_ = 0.0;
  int current_drop_run_ = 0;
};

// ---------------------------------------------------------------------
// Capacity timeline: the fig16 §5.4 study, reduced to a per-slot rate.
// Same interval walk as link::evaluate_trace_fixed_step — off slots
// carry 0 Gbps, on slots the 25G prototype's 23.5 Gbps effective rate.
// ---------------------------------------------------------------------

constexpr double kOnRateGbps = 23.5;

std::vector<double> capacity_per_slot(const motion::Trace& trace,
                                      const link::SlotEvalConfig& config) {
  std::vector<double> capacity;
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    const auto& prev = trace.samples[i - 1];
    const auto& cur = trace.samples[i];
    link::detail::IntervalModel model;
    model.gap_ms = util::us_to_ms(cur.time - prev.time);
    if (model.gap_ms <= 0.0) continue;
    model.lat_rate =
        geom::translation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.ang_rate =
        geom::rotation_distance(prev.pose, cur.pose) / model.gap_ms;
    model.config = &config;
    const int slots =
        std::max(1, static_cast<int>(model.gap_ms / config.slot_ms));
    for (int s = 0; s < slots; ++s) {
      capacity.push_back(model.off_at(s) ? 0.0 : kOnRateGbps);
    }
  }
  return capacity;
}

// The fig16 dataset recipe (bench/fig16_trace_cdf.cpp), verbatim.
std::vector<motion::Trace> make_dataset(int n) {
  util::Rng rng(2022);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
  motion::TraceGeneratorConfig gen_config;
  gen_config.max_linear_mps = 0.19;
  gen_config.shift_peak_mps = 0.17;
  gen_config.shift_rate_hz = 0.22;
  return motion::generate_dataset(base, n, gen_config, rng,
                                  util::ThreadPool::global());
}

// One (time, mode) entry per switch; int so EXPECT_EQ prints cleanly.
using SwitchSeq = std::vector<std::pair<util::SimTimeUs, int>>;

struct TraceOutcome {
  SwitchSeq switches;
  std::int64_t frames_offered = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t frames_dropped = 0;
  int freeze_events = 0;
  int longest_freeze_frames = 0;
  std::int64_t last_delivered_id = -1;
  double avg_delivery_latency_ms = 0.0;
  double max_delivery_latency_ms = 0.0;
};

bool operator==(const TraceOutcome& a, const TraceOutcome& b) {
  return a.switches == b.switches && a.frames_offered == b.frames_offered &&
         a.frames_delivered == b.frames_delivered &&
         a.frames_dropped == b.frames_dropped &&
         a.freeze_events == b.freeze_events &&
         a.longest_freeze_frames == b.longest_freeze_frames &&
         a.last_delivered_id == b.last_delivered_id &&
         a.avg_delivery_latency_ms == b.avg_delivery_latency_ms &&
         a.max_delivery_latency_ms == b.max_delivery_latency_ms;
}

constexpr util::SimTimeUs kSlotUs = 1000;
constexpr util::SimTimeUs kFramePeriodUs = 11111;  // 90 fps

// Drives one trace through an ABR controller + streamer pair.  The same
// slot/frame interleave for both paths: frames rendered since the last
// slot are offered (sized by the controller's current mode), then the
// controller and the wire advance one slot.
template <typename Controller, typename Streamer, typename Offer>
TraceOutcome drive(const std::vector<double>& capacity,
                   Controller& controller, Streamer& streamer,
                   const Offer& offer) {
  TraceOutcome out;
  std::int64_t next_frame = 0;
  int last_switches = 0;
  for (std::size_t s = 0; s < capacity.size(); ++s) {
    const util::SimTimeUs now = static_cast<util::SimTimeUs>(s) * kSlotUs;
    while (next_frame * kFramePeriodUs <= now) {
      const util::SimTimeUs render = next_frame * kFramePeriodUs;
      offer(streamer, next_frame, render,
            controller.current_rate_gbps() * 1e9 / 90.0);
      ++next_frame;
    }
    controller.step(now, capacity[s]);
    if (controller.mode_switches() != last_switches) {
      last_switches = controller.mode_switches();
      out.switches.emplace_back(
          now, static_cast<int>(controller.current_rate_gbps() ==
                                20.0));  // 1 = raw, 0 = compressed
    }
    streamer.step(now, kSlotUs, capacity[s]);
  }
  const auto& st = streamer.stats();
  out.frames_offered = st.frames_offered;
  out.frames_delivered = st.frames_delivered;
  out.frames_dropped = st.frames_dropped;
  out.freeze_events = st.freeze_events;
  out.longest_freeze_frames = st.longest_freeze_frames;
  out.last_delivered_id = st.last_delivered_id;
  out.avg_delivery_latency_ms = st.avg_delivery_latency_ms;
  out.max_delivery_latency_ms = st.max_delivery_latency_ms;
  return out;
}

TraceOutcome run_new(const std::vector<double>& capacity) {
  EncoderRateAdapter adapter{RatePolicy{}};
  net::FrameStreamer streamer{net::StreamerConfig{}};
  return drive(capacity, adapter, streamer,
               [](net::FrameStreamer& s, std::int64_t id,
                  util::SimTimeUs render, double bits) {
                 s.offer(net::Frame{id, render, bits});
               });
}

TraceOutcome run_legacy(const std::vector<double>& capacity) {
  LegacyAdaptiveStreamController controller{LegacyAdaptiveConfig{}};
  LegacyFrameStreamer streamer{22000, 1.05};
  return drive(capacity, controller, streamer,
               [](LegacyFrameStreamer& s, std::int64_t id,
                  util::SimTimeUs render, double bits) {
                 s.offer(LegacyFrame{id, render, bits});
               });
}

// The rebased net::AdaptiveStreamController is itself a thin adapter
// over EncoderRateAdapter; run it too so all three agree.
TraceOutcome run_rebased_controller(const std::vector<double>& capacity) {
  net::AdaptiveStreamController controller{net::AdaptiveConfig{}};
  net::FrameStreamer streamer{net::StreamerConfig{}};
  return drive(capacity, controller, streamer,
               [](net::FrameStreamer& s, std::int64_t id,
                  util::SimTimeUs render, double bits) {
                 s.offer(net::Frame{id, render, bits});
               });
}

TEST(StreamAbrTest, BitExactWithLegacyOnFullTraceLibrary) {
  const auto traces = make_dataset(500);
  const link::SlotEvalConfig slot_config;  // §5.4 constants (25G)

  std::int64_t total_switches = 0;
  std::int64_t total_freezes = 0;
  std::int64_t total_drops = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto capacity = capacity_per_slot(traces[i], slot_config);
    const TraceOutcome legacy = run_legacy(capacity);
    const TraceOutcome fresh = run_new(capacity);
    // EXPECT_EQ per acceptance: the mode-switch sequence (times AND
    // directions) and every freeze/QoE number, bit-exact.
    ASSERT_EQ(fresh.switches, legacy.switches) << "trace " << i;
    ASSERT_TRUE(fresh == legacy) << "trace " << i;
    total_switches += legacy.switches.size();
    total_freezes += legacy.freeze_events;
    total_drops += legacy.frames_dropped;
  }
  // The library must actually exercise the machinery, or bit-exactness
  // is vacuous: some traces flap hard enough to switch modes and freeze.
  EXPECT_GT(total_switches, 0);
  EXPECT_GT(total_freezes, 0);
  EXPECT_GT(total_drops, 0);
}

TEST(StreamAbrTest, RebasedControllerMatchesCoreAdapter) {
  const auto traces = make_dataset(25);
  const link::SlotEvalConfig slot_config;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto capacity = capacity_per_slot(traces[i], slot_config);
    const TraceOutcome via_net = run_rebased_controller(capacity);
    const TraceOutcome via_stream = run_new(capacity);
    ASSERT_TRUE(via_net == via_stream) << "trace " << i;
  }
}

// Synthetic flap: pin the exact switch times on a hand-built capacity
// square wave, independent of the trace generator, so a regression in
// either implementation fails with readable numbers.
TEST(StreamAbrTest, SquareWaveSwitchTimesAreExact) {
  std::vector<double> capacity;
  for (int s = 0; s < 12000; ++s) {
    const bool up = (s / 3000) % 2 == 0;  // 3 s up, 3 s down, ...
    capacity.push_back(up ? kOnRateGbps : 0.0);
  }
  const TraceOutcome legacy = run_legacy(capacity);
  const TraceOutcome fresh = run_new(capacity);
  EXPECT_EQ(fresh.switches, legacy.switches);
  EXPECT_TRUE(fresh == legacy);
  ASSERT_GE(fresh.switches.size(), 2u);
  EXPECT_EQ(fresh.switches[0].second, 0);  // first switch: downgrade
  EXPECT_EQ(fresh.switches[1].second, 1);  // then recovery
  EXPECT_GT(fresh.freeze_events, 0);
}

}  // namespace
}  // namespace cyclops::stream

// Round-trip property tests for the calibration-engine checkpoint file
// (cal/checkpoint.hpp): randomized EngineCheckpoint values must survive
// write -> read bit-exactly (including RNG words above 2^53, which a
// double cannot carry), and malformed inputs — truncation, garbled
// fields, wrong version, wrong counts, signed integers — must be
// rejected with a std::runtime_error naming the 1-based line, never
// loaded silently.
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cal/checkpoint.hpp"
#include "cal/engine.hpp"
#include "core/kspace_calibration.hpp"
#include "geom/pose.hpp"
#include "util/rng.hpp"

using namespace cyclops;
using cal::EngineCheckpoint;

namespace {

geom::Pose random_pose(util::Rng& rng) {
  geom::Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
  if (axis.norm() < 1e-9) axis = {1.0, 0.0, 0.0};
  return {geom::Mat3::rotation(axis.normalized(), rng.uniform(-2.0, 2.0)),
          {rng.normal(), rng.normal(), rng.normal()}};
}

core::KSpaceFitReport random_kspace_report(util::Rng& rng) {
  // One pack/unpack cycle canonicalizes the model (unpack re-normalizes
  // direction vectors) — every model the real pipeline produces has been
  // through unpack, so this is the representative input.
  const core::GmaModel canonical(galvo::GalvoParams::unpack(
      core::nominal_kspace_guess(rng.uniform(1.0, 2.0)).params().pack()));
  return {canonical, rng.normal(), rng.normal(),
          static_cast<int>(rng.uniform(0.0, 100.0)),
          rng.uniform(0.0, 1.0) < 0.5};
}

core::MappingFitReport random_mapping_report(util::Rng& rng) {
  return {random_pose(rng), random_pose(rng), rng.normal(), rng.normal(),
          static_cast<int>(rng.uniform(0.0, 100.0)),
          rng.uniform(0.0, 1.0) < 0.5};
}

EngineCheckpoint random_checkpoint(std::uint64_t seed) {
  util::Rng rng(seed);
  EngineCheckpoint cp;
  cp.phase = static_cast<int>(rng.uniform(0.0, 9.999));
  cp.steps = rng.next_u64();
  // Raw xoshiro words regularly exceed 2^53 — the exact case a
  // double-typed field would corrupt.
  for (auto& word : cp.rng.s) word = rng.next_u64() | (1ull << 63);
  cp.rng.cached_normal = rng.normal();
  cp.rng.has_cached_normal = rng.uniform(0.0, 1.0) < 0.5;

  cp.collector = {static_cast<int>(rng.uniform(1.0, 19.0)),
                  static_cast<int>(rng.uniform(1.0, 14.0)), rng.normal(),
                  rng.normal()};
  const int n_tx = static_cast<int>(rng.uniform(0.0, 5.0));
  for (int i = 0; i < n_tx; ++i) {
    cp.tx_samples.push_back(
        {rng.normal(), rng.normal(), rng.normal(), rng.normal()});
  }
  const int n_rx = static_cast<int>(rng.uniform(0.0, 5.0));
  for (int i = 0; i < n_rx; ++i) {
    cp.rx_samples.push_back(
        {rng.normal(), rng.normal(), rng.normal(), rng.normal()});
  }
  if (rng.uniform(0.0, 1.0) < 0.7) cp.tx_report = random_kspace_report(rng);
  if (rng.uniform(0.0, 1.0) < 0.7) cp.rx_report = random_kspace_report(rng);

  cp.lm_active = rng.uniform(0.0, 1.0) < 0.5;
  const int n_lm = static_cast<int>(rng.uniform(0.0, 25.0));
  for (int i = 0; i < n_lm; ++i) cp.lm.params.push_back(rng.normal());
  cp.lm.lambda = rng.uniform(0.0, 10.0);
  cp.lm.initial_cost = rng.uniform(0.0, 1.0);
  cp.lm.iterations = static_cast<int>(rng.uniform(0.0, 200.0));
  cp.lm.converged = rng.uniform(0.0, 1.0) < 0.5;

  const int n_tuples = static_cast<int>(rng.uniform(0.0, 4.0));
  for (int i = 0; i < n_tuples; ++i) {
    cp.tuples.push_back(
        {sim::Voltages{rng.normal(), rng.normal(), rng.normal(), rng.normal()},
         random_pose(rng)});
  }
  cp.hint = {rng.normal(), rng.normal(), rng.normal(), rng.normal()};
  cp.stage2_i = static_cast<int>(rng.uniform(0.0, 30.0));
  cp.tx_guess = random_pose(rng);
  cp.rx_guess = random_pose(rng);
  cp.mapping = random_mapping_report(rng);

  cp.blind_centroid = {rng.normal(), rng.normal(), rng.normal()};
  cp.blind_a = static_cast<int>(rng.uniform(0.0, 50.0));
  cp.blind_b = static_cast<int>(rng.uniform(0.0, 50.0));
  for (auto& v : cp.blind_tx_best) v = rng.normal();
  cp.blind_tx_best_value = rng.uniform(0.0, 1e6);
  cp.blind_tx_seed = random_pose(rng);
  cp.blind_best = random_mapping_report(rng);
  cp.blind_best_value = rng.uniform(0.0, 1e6);

  cp.retry_attempt = static_cast<int>(rng.uniform(0.0, 10.0));
  cp.retry_tx = random_pose(rng);
  cp.retry_rx = random_pose(rng);
  return cp;
}

void expect_pose_eq(const geom::Pose& a, const geom::Pose& b) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(a.rotation().m[i][j], b.rotation().m[i][j]);
  }
  EXPECT_EQ(a.translation().x, b.translation().x);
  EXPECT_EQ(a.translation().y, b.translation().y);
  EXPECT_EQ(a.translation().z, b.translation().z);
}

void expect_kspace_report_eq(const std::optional<core::KSpaceFitReport>& a,
                             const std::optional<core::KSpaceFitReport>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a) return;
  const auto pa = a->model.params().pack();
  const auto pb = b->model.params().pack();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  EXPECT_EQ(a->avg_error_m, b->avg_error_m);
  EXPECT_EQ(a->max_error_m, b->max_error_m);
  EXPECT_EQ(a->optimizer_iterations, b->optimizer_iterations);
  EXPECT_EQ(a->converged, b->converged);
}

void expect_mapping_report_eq(const core::MappingFitReport& a,
                              const core::MappingFitReport& b) {
  expect_pose_eq(a.map_tx, b.map_tx);
  expect_pose_eq(a.map_rx, b.map_rx);
  EXPECT_EQ(a.avg_coincidence_m, b.avg_coincidence_m);
  EXPECT_EQ(a.max_coincidence_m, b.max_coincidence_m);
  EXPECT_EQ(a.optimizer_iterations, b.optimizer_iterations);
  EXPECT_EQ(a.converged, b.converged);
}

void expect_checkpoint_eq(const EngineCheckpoint& a, const EngineCheckpoint& b) {
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.steps, b.steps);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng.s[i], b.rng.s[i]);
  EXPECT_EQ(a.rng.cached_normal, b.rng.cached_normal);
  EXPECT_EQ(a.rng.has_cached_normal, b.rng.has_cached_normal);

  EXPECT_EQ(a.collector.i, b.collector.i);
  EXPECT_EQ(a.collector.j, b.collector.j);
  EXPECT_EQ(a.collector.v1, b.collector.v1);
  EXPECT_EQ(a.collector.v2, b.collector.v2);

  ASSERT_EQ(a.tx_samples.size(), b.tx_samples.size());
  for (std::size_t i = 0; i < a.tx_samples.size(); ++i) {
    EXPECT_EQ(a.tx_samples[i].x, b.tx_samples[i].x);
    EXPECT_EQ(a.tx_samples[i].y, b.tx_samples[i].y);
    EXPECT_EQ(a.tx_samples[i].v1, b.tx_samples[i].v1);
    EXPECT_EQ(a.tx_samples[i].v2, b.tx_samples[i].v2);
  }
  ASSERT_EQ(a.rx_samples.size(), b.rx_samples.size());
  for (std::size_t i = 0; i < a.rx_samples.size(); ++i) {
    EXPECT_EQ(a.rx_samples[i].x, b.rx_samples[i].x);
    EXPECT_EQ(a.rx_samples[i].v2, b.rx_samples[i].v2);
  }
  expect_kspace_report_eq(a.tx_report, b.tx_report);
  expect_kspace_report_eq(a.rx_report, b.rx_report);

  EXPECT_EQ(a.lm_active, b.lm_active);
  ASSERT_EQ(a.lm.params.size(), b.lm.params.size());
  for (std::size_t i = 0; i < a.lm.params.size(); ++i) {
    EXPECT_EQ(a.lm.params[i], b.lm.params[i]);
  }
  EXPECT_EQ(a.lm.lambda, b.lm.lambda);
  EXPECT_EQ(a.lm.initial_cost, b.lm.initial_cost);
  EXPECT_EQ(a.lm.iterations, b.lm.iterations);
  EXPECT_EQ(a.lm.converged, b.lm.converged);

  ASSERT_EQ(a.tuples.size(), b.tuples.size());
  for (std::size_t i = 0; i < a.tuples.size(); ++i) {
    EXPECT_EQ(a.tuples[i].voltages.tx1, b.tuples[i].voltages.tx1);
    EXPECT_EQ(a.tuples[i].voltages.rx2, b.tuples[i].voltages.rx2);
    expect_pose_eq(a.tuples[i].psi, b.tuples[i].psi);
  }
  EXPECT_EQ(a.hint.tx1, b.hint.tx1);
  EXPECT_EQ(a.hint.rx2, b.hint.rx2);
  EXPECT_EQ(a.stage2_i, b.stage2_i);
  expect_pose_eq(a.tx_guess, b.tx_guess);
  expect_pose_eq(a.rx_guess, b.rx_guess);
  expect_mapping_report_eq(a.mapping, b.mapping);

  EXPECT_EQ(a.blind_centroid.x, b.blind_centroid.x);
  EXPECT_EQ(a.blind_centroid.y, b.blind_centroid.y);
  EXPECT_EQ(a.blind_centroid.z, b.blind_centroid.z);
  EXPECT_EQ(a.blind_a, b.blind_a);
  EXPECT_EQ(a.blind_b, b.blind_b);
  for (std::size_t i = 0; i < a.blind_tx_best.size(); ++i) {
    EXPECT_EQ(a.blind_tx_best[i], b.blind_tx_best[i]);
  }
  EXPECT_EQ(a.blind_tx_best_value, b.blind_tx_best_value);
  expect_pose_eq(a.blind_tx_seed, b.blind_tx_seed);
  expect_mapping_report_eq(a.blind_best, b.blind_best);
  EXPECT_EQ(a.blind_best_value, b.blind_best_value);

  EXPECT_EQ(a.retry_attempt, b.retry_attempt);
  expect_pose_eq(a.retry_tx, b.retry_tx);
  expect_pose_eq(a.retry_rx, b.retry_rx);
}

std::string serialize(const EngineCheckpoint& cp) {
  std::ostringstream out;
  cal::write_engine_checkpoint(out, cp);
  return out.str();
}

EngineCheckpoint parse(const std::string& text) {
  std::istringstream in(text);
  return cal::read_engine_checkpoint(in);
}

/// Expects parse(text) to throw a runtime_error whose message contains
/// both `line_tag` (e.g. "line 3") and `fragment`.
void expect_parse_error(const std::string& text, const std::string& line_tag,
                        const std::string& fragment) {
  try {
    parse(text);
    FAIL() << "expected a parse error mentioning '" << fragment << "'";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(line_tag), std::string::npos)
        << "message '" << what << "' lacks '" << line_tag << "'";
    EXPECT_NE(what.find(fragment), std::string::npos)
        << "message '" << what << "' lacks '" << fragment << "'";
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// ---- round-trip property ----

TEST(CalCheckpointTest, RandomizedRoundTripIsBitExact) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const EngineCheckpoint cp = random_checkpoint(seed);
    expect_checkpoint_eq(cp, parse(serialize(cp)));
  }
}

TEST(CalCheckpointTest, FileSaveLoadRoundTrip) {
  const EngineCheckpoint cp = random_checkpoint(99);
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "engine.ckpt";
  cal::save_engine_checkpoint(path, cp);
  expect_checkpoint_eq(cp, cal::load_engine_checkpoint(path));
  std::filesystem::remove(path);
}

TEST(CalCheckpointTest, LoadOfMissingFileThrows) {
  EXPECT_THROW(cal::load_engine_checkpoint("/nonexistent/engine.ckpt"),
               std::runtime_error);
}

// ---- negatives: every rejection names the offending line ----

TEST(CalCheckpointTest, EmptyInputRejectedAtLine1) {
  expect_parse_error("", "line 1", "not a cyclops calibration-engine");
}

TEST(CalCheckpointTest, WrongVersionRejectedAtLine1) {
  auto lines = split_lines(serialize(random_checkpoint(1)));
  lines[0] = "cyclops-cal-checkpoint v2";
  expect_parse_error(join_lines(lines), "line 1", "expected 'cyclops-cal-checkpoint v1'");
}

TEST(CalCheckpointTest, ResultFileMagicIsNotACheckpoint) {
  // The finished-calibration persistence format must not silently load as
  // an engine checkpoint (deliberately distinct magics).
  expect_parse_error("cyclops-calibration v1\n", "line 1",
                     "not a cyclops calibration-engine");
}

TEST(CalCheckpointTest, TruncationRejectedWithNextExpectedRecord) {
  const auto lines = split_lines(serialize(random_checkpoint(2)));
  ASSERT_EQ(lines.size(), 25u);
  // Cut after the rng lines: the reader must name the first missing
  // record ("collector", line 5) rather than crash or zero-fill.
  const std::vector<std::string> head(lines.begin(), lines.begin() + 4);
  expect_parse_error(join_lines(head), "line 5", "file truncated");
}

TEST(CalCheckpointTest, EveryTruncationPointRejected) {
  const std::string text = serialize(random_checkpoint(3));
  const auto lines = split_lines(text);
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    SCOPED_TRACE("keep " + std::to_string(keep) + " lines");
    const std::vector<std::string> head(lines.begin(),
                                        lines.begin() + static_cast<long>(keep));
    EXPECT_THROW(parse(join_lines(head)), std::runtime_error);
  }
  EXPECT_NO_THROW(parse(text));
}

TEST(CalCheckpointTest, GarbledFieldNamesLineAndField) {
  auto lines = split_lines(serialize(random_checkpoint(4)));
  // Line 4 is "rng_normal <2 doubles>"; garble its second value.
  std::istringstream in(lines[3]);
  std::string key, v1, v2;
  in >> key >> v1 >> v2;
  ASSERT_EQ(key, "rng_normal");
  lines[3] = key + " " + v1 + " bogus";
  expect_parse_error(join_lines(lines), "line 4", "field 2 of rng_normal");
}

TEST(CalCheckpointTest, SignedRngWordRejected) {
  auto lines = split_lines(serialize(random_checkpoint(5)));
  // Line 3 is "rng_state <4 u64>"; a negative word must not wrap.
  lines[2] = "rng_state 1 2 -3 4";
  expect_parse_error(join_lines(lines), "line 3",
                     "not an unsigned 64-bit integer");
}

TEST(CalCheckpointTest, WrongValueCountRejected) {
  auto lines = split_lines(serialize(random_checkpoint(6)));
  lines[4] = "collector 1 1 0.5";  // 3 values where 4 are required.
  expect_parse_error(join_lines(lines), "line 5", "expected 4 values");
}

TEST(CalCheckpointTest, WrongKeyRejected) {
  auto lines = split_lines(serialize(random_checkpoint(7)));
  lines[16] = "hintt 0 0 0 0";
  expect_parse_error(join_lines(lines), "line 17", "hint");
}

TEST(CalCheckpointTest, PhaseOutOfRangeRejected) {
  auto lines = split_lines(serialize(random_checkpoint(8)));
  lines[1] = "state 99 0 0 0 0 0 0 0 0";
  expect_parse_error(join_lines(lines), "line 2", "phase 99 out of range");
}

TEST(CalCheckpointTest, NonBinaryFlagRejected) {
  auto lines = split_lines(serialize(random_checkpoint(9)));
  lines[1] = "state 0 0 0 0 0 0 2 0 0";  // lm_active = 2.
  expect_parse_error(join_lines(lines), "line 2", "flag must be 0 or 1");
}

TEST(CalCheckpointTest, RngWordsAbove2To53SurviveRoundTrip) {
  EngineCheckpoint cp;
  cp.rng.s[0] = 0xffffffffffffffffull;
  cp.rng.s[1] = (1ull << 53) + 1;  // The first value a double cannot hold.
  cp.rng.s[2] = 0x9e3779b97f4a7c15ull;
  cp.rng.s[3] = 1;
  cp.steps = 0xfedcba9876543210ull;
  const EngineCheckpoint back = parse(serialize(cp));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cp.rng.s[i], back.rng.s[i]);
  EXPECT_EQ(cp.steps, back.steps);
}

}  // namespace

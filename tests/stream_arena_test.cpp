// FrameArena: refcounted slab lifetimes, generation-guarded handles,
// recycling under churn, and the bounded-pool backpressure contract
// (DESIGN.md §14; mirrors the event-slab tests in event_queue_test.cpp).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "stream/frame_arena.hpp"
#include "util/rng.hpp"

namespace cyclops::stream {
namespace {

TEST(StreamArenaTest, AcquireGivesWritableSlabWithRefcountOne) {
  FrameArena arena;
  FrameHandle h = arena.acquire(128);
  ASSERT_TRUE(h.valid());
  ASSERT_TRUE(arena.valid(h));
  EXPECT_EQ(arena.ref_count(h), 1u);
  EXPECT_EQ(arena.size(h), 128u);
  std::byte* p = arena.data(h);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 128);
  EXPECT_EQ(static_cast<unsigned char>(arena.data(h)[127]), 0xabu);
}

TEST(StreamArenaTest, ReleaseRecyclesAndStaleHandleIsRejected) {
  FrameArena arena;
  FrameHandle h = arena.acquire(64);
  ASSERT_TRUE(arena.release(h));
  // The slab is free: every operation through the stale handle is
  // rejected, never touching the slot's next occupant.
  EXPECT_FALSE(arena.valid(h));
  EXPECT_EQ(arena.data(h), nullptr);
  EXPECT_EQ(arena.size(h), 0u);
  EXPECT_EQ(arena.ref_count(h), 0u);
  EXPECT_FALSE(arena.add_ref(h));
  EXPECT_FALSE(arena.release(h));  // double release rejected

  // The recycled slot goes to a new frame under a new generation; the
  // old handle still does not alias it.
  FrameHandle h2 = arena.acquire(64);
  ASSERT_TRUE(h2.valid());
  EXPECT_FALSE(h2 == h);
  EXPECT_FALSE(arena.valid(h));
  EXPECT_TRUE(arena.valid(h2));
  EXPECT_GE(arena.stats().stale_ops, 2u);  // add_ref + release rejections
  EXPECT_EQ(arena.stats().slabs_allocated, 1u);  // recycled, not grown
}

TEST(StreamArenaTest, RefcountPinsSlabAcrossHolders) {
  FrameArena arena;
  FrameHandle h = arena.acquire(32);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(arena.add_ref(h));
  EXPECT_EQ(arena.ref_count(h), 6u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(arena.release(h));
    EXPECT_TRUE(arena.valid(h));  // still pinned by remaining holders
  }
  EXPECT_TRUE(arena.release(h));
  EXPECT_FALSE(arena.valid(h));
}

TEST(StreamArenaTest, OversizeAcquireFailsAndIsCounted) {
  FrameArena arena({.slab_bytes = 256});
  EXPECT_FALSE(arena.acquire(257).valid());
  EXPECT_EQ(arena.stats().failures, 1u);
  EXPECT_TRUE(arena.acquire(256).valid());
}

TEST(StreamArenaTest, MaxSlabsCapIsBackpressureNotGrowth) {
  FrameArena arena({.slab_bytes = 64, .max_slabs = 3});
  std::vector<FrameHandle> held;
  for (int i = 0; i < 3; ++i) {
    FrameHandle h = arena.acquire(64);
    ASSERT_TRUE(h.valid());
    held.push_back(h);
  }
  // Pool exhausted: acquire fails instead of allocating past the cap.
  EXPECT_FALSE(arena.acquire(64).valid());
  EXPECT_EQ(arena.stats().failures, 1u);
  EXPECT_EQ(arena.stats().slabs_allocated, 3u);
  // Freeing one slab un-jams the pool.
  EXPECT_TRUE(arena.release(held.back()));
  held.pop_back();
  EXPECT_TRUE(arena.acquire(64).valid());
  EXPECT_EQ(arena.stats().slabs_allocated, 3u);
}

TEST(StreamArenaTest, CloneIsTheOnlyCopyAndIsCounted) {
  FrameArena arena;
  FrameHandle h = arena.acquire(16);
  for (int j = 0; j < 16; ++j) {
    arena.data(h)[j] = static_cast<std::byte>(j * 7);
  }
  EXPECT_EQ(arena.stats().copies, 0u);
  FrameHandle c = arena.clone(h);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(arena.stats().copies, 1u);
  EXPECT_NE(arena.data(c), arena.data(h));
  EXPECT_EQ(std::memcmp(arena.data(c), arena.data(h), 16), 0);
}

// Churn property test (the event-slab recycling pattern): a bounded
// pool under randomized acquire/add_ref/release traffic never grows past
// its peak concurrency, never hands out an aliasing handle, and every
// stale-handle operation is rejected.
TEST(StreamArenaTest, RandomizedChurnRecyclesWithoutAliasing) {
  FrameArena arena({.slab_bytes = 128});
  util::Rng rng(2022);
  struct Live {
    FrameHandle h;
    std::uint32_t refs;
    unsigned char tag;
  };
  std::vector<Live> live;
  std::vector<FrameHandle> stale;
  std::size_t peak_live = 0;

  for (int op = 0; op < 20000; ++op) {
    const double r = rng.uniform();
    if (r < 0.40 || live.empty()) {
      FrameHandle h = arena.acquire(128);
      ASSERT_TRUE(h.valid());
      const auto tag = static_cast<unsigned char>(op & 0xff);
      std::memset(arena.data(h), tag, 128);
      live.push_back({h, 1, tag});
      peak_live = std::max(peak_live, live.size());
    } else if (r < 0.55) {
      Live& pick = live[rng.uniform_index(live.size())];
      ASSERT_TRUE(arena.add_ref(pick.h));
      ++pick.refs;
    } else if (r < 0.90) {
      const std::size_t i = rng.uniform_index(live.size());
      ASSERT_TRUE(arena.release(live[i].h));
      if (--live[i].refs == 0) {
        stale.push_back(live[i].h);
        live[i] = live.back();
        live.pop_back();
      }
    } else if (!stale.empty()) {
      // Stale handles stay dead forever, even as their slots recycle.
      const FrameHandle h = stale[rng.uniform_index(stale.size())];
      EXPECT_FALSE(arena.add_ref(h));
      EXPECT_FALSE(arena.release(h));
      EXPECT_EQ(arena.data(h), nullptr);
    }
    if (op % 1000 == 0) {
      for (const Live& l : live) {
        ASSERT_EQ(arena.ref_count(l.h), l.refs);
        ASSERT_EQ(static_cast<unsigned char>(arena.data(l.h)[0]), l.tag);
        ASSERT_EQ(static_cast<unsigned char>(arena.data(l.h)[127]), l.tag);
      }
    }
  }
  // The pool is bounded by peak concurrency, not total traffic.
  EXPECT_LE(arena.stats().slabs_allocated, peak_live);
  EXPECT_EQ(arena.stats().in_use, live.size());
  EXPECT_GT(arena.stats().releases, 0u);
  EXPECT_EQ(arena.stats().copies, 0u);
}

TEST(StreamArenaTest, ObsCountersMatchStats) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "OBS=OFF build";
  obs::Registry registry;
  FrameArena arena;
  arena.set_obs(&registry);
  FrameHandle a = arena.acquire(8);
  FrameHandle b = arena.acquire(8);
  arena.release(a);
  arena.clone(b);
  arena.acquire(1 << 20);  // oversize: failure
  EXPECT_EQ(registry.counter("stream_arena_acquires_total").value(),
            arena.stats().acquires);
  EXPECT_EQ(registry.counter("stream_arena_releases_total").value(),
            arena.stats().releases);
  EXPECT_EQ(registry.counter("stream_arena_copies_total").value(),
            arena.stats().copies);
  EXPECT_EQ(registry.counter("stream_arena_failures_total").value(),
            arena.stats().failures);
}

}  // namespace
}  // namespace cyclops::stream

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/bench_io.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace cyclops::util {
namespace {

// ---- units ----

TEST(Units, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
}

TEST(Units, MilliradConversions) {
  EXPECT_DOUBLE_EQ(mrad_to_rad(5.77), 0.00577);
  EXPECT_DOUBLE_EQ(rad_to_mrad(0.002), 2.0);
}

TEST(Units, DbmMilliwatt) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_NEAR(mw_to_dbm(dbm_to_mw(-25.0)), -25.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-30.0), 0.001, 1e-15);
}

TEST(Units, DbRatios) {
  EXPECT_DOUBLE_EQ(ratio_to_db(100.0), 20.0);
  EXPECT_NEAR(db_to_ratio(3.0), 1.9953, 1e-4);
  EXPECT_NEAR(db_to_ratio(ratio_to_db(0.37)), 0.37, 1e-12);
}

TEST(Units, Gbps) {
  EXPECT_DOUBLE_EQ(gbps_to_bps(9.4), 9.4e9);
  EXPECT_DOUBLE_EQ(bps_to_gbps(25e9), 25.0);
}

TEST(Units, Millimeters) {
  EXPECT_DOUBLE_EQ(mm_to_m(4.54), 0.00454);
  EXPECT_DOUBLE_EQ(m_to_mm(0.0016), 1.6);
}

// ---- rng ----

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, SplitDecorrelates) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---- stats ----

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSampleZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 62.5), 3.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(CdfTest, AtAndQuantile) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(CdfTest, PointsMonotone) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  Cdf cdf(xs);
  const auto pts = cdf.points(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GT(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(CdfTest, EmptySafe) {
  Cdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.points(5).empty());
}

// ---- csv ----

TEST(CsvTest, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cyclops_csv_test.csv";
  write_csv(path, {"a", "b"}, {{1.5, 2.5}, {3.0, -4.0}});
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][1], -4.0);
  std::filesystem::remove(path);
}

TEST(CsvTest, NoHeader) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cyclops_csv_test2.csv";
  write_csv(path, {}, {{1.0, 2.0}});
  const CsvTable table = read_csv(path);
  EXPECT_TRUE(table.header.empty());
  ASSERT_EQ(table.rows.size(), 1u);
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/cyclops.csv"), std::runtime_error);
}

// ---- table ----

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"metric", "value"});
  table.add_row({"tolerance", TextTable::num(5.77)});
  std::ostringstream out;
  table.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("5.77"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, NumPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.142");
  EXPECT_EQ(TextTable::num(-2.0, 0), "-2");
}

// ---- clock ----

TEST(SimClockTest, AdvanceAndReset) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(us_from_ms(12.5));
  EXPECT_EQ(clock.now(), 12500);
  clock.advance(us_from_s(1.0));
  EXPECT_EQ(clock.now(), 1012500);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClockTest, Conversions) {
  EXPECT_EQ(us_from_ms(1.0), 1000);
  EXPECT_EQ(us_from_s(0.001), 1000);
  EXPECT_DOUBLE_EQ(us_to_s(2500000), 2.5);
  EXPECT_DOUBLE_EQ(us_to_ms(1500), 1.5);
}

TEST(SimClockTest, ConversionsRoundToNearest) {
  // 2.3 ms is 2299.999... in binary; truncation used to yield 2299 us.
  EXPECT_EQ(us_from_ms(2.3), 2300);
  EXPECT_EQ(us_from_ms(0.1) * 3, us_from_ms(0.3));
  EXPECT_EQ(us_from_s(0.0123456), 12346);  // half-up at the .6 boundary
  EXPECT_EQ(us_from_ms(0.0004), 0);
  EXPECT_EQ(us_from_ms(0.0006), 1);
  // Round half away from zero, both signs.
  EXPECT_EQ(us_round(2.5), 3);
  EXPECT_EQ(us_round(-2.5), -3);
  EXPECT_EQ(us_from_ms(-2.3), -2300);
  static_assert(us_from_ms(2.3) == 2300, "us_round must be constexpr");
}

TEST(BenchIoTest, SanitizedGitRevAcceptsHexTokens) {
  EXPECT_EQ(sanitized_git_rev("d94ce61"), "d94ce61");
  EXPECT_EQ(sanitized_git_rev("0123456789abcdef0123456789abcdef01234567"),
            "0123456789abcdef0123456789abcdef01234567");
  EXPECT_EQ(sanitized_git_rev("ABCDEF12"), "ABCDEF12");
}

TEST(BenchIoTest, SanitizedGitRevDegradesToUnknown) {
  // Configure-time git failures leave markers that must never leak into
  // the bench JSON as a bogus revision.
  EXPECT_EQ(sanitized_git_rev(nullptr), "unknown");
  EXPECT_EQ(sanitized_git_rev(""), "unknown");
  EXPECT_EQ(sanitized_git_rev("unknown"), "unknown");
  EXPECT_EQ(sanitized_git_rev("fatal: not a git repository"), "unknown");
  EXPECT_EQ(sanitized_git_rev("abc"), "unknown");       // too short
  EXPECT_EQ(sanitized_git_rev("deadbeefg"), "unknown");  // non-hex char
  EXPECT_EQ(
      sanitized_git_rev("0123456789abcdef0123456789abcdef012345678"),
      "unknown");  // 41 chars: longer than a full SHA-1
}

}  // namespace
}  // namespace cyclops::util

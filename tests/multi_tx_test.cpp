// Tests for the multi-TX rig and the session log.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "event/scheduler.hpp"
#include "link/event_session.hpp"
#include "link/multi_tx.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "util/units.hpp"

namespace cyclops::link {
namespace {

class MultiTxFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chains_ = new std::vector<TxChain>();
    chains_->push_back(
        make_tx_chain(42, {0.0, 2.2, 0.0}, sim::prototype_10g_config()));
    chains_->push_back(
        make_tx_chain(43, {0.5, 2.2, 0.25}, sim::prototype_10g_config()));
  }
  static void TearDownTestSuite() {
    delete chains_;
    chains_ = nullptr;
  }
  static std::vector<TxChain>* chains_;
};

std::vector<TxChain>* MultiTxFixture::chains_ = nullptr;

TEST_F(MultiTxFixture, BothChainsUsableWithoutOcclusion) {
  const motion::StillMotion profile(
      (*chains_)[0].proto.nominal_rig_pose, 3.0);
  const MultiTxResult result = run_multi_tx_session(
      *chains_, profile, MultiTxConfig{}, nullptr);
  ASSERT_EQ(result.per_tx_usable_fraction.size(), 2u);
  EXPECT_GT(result.per_tx_usable_fraction[0], 0.95);
  EXPECT_GT(result.per_tx_usable_fraction[1], 0.95);
  EXPECT_GT(result.served_fraction, 0.95);
  EXPECT_EQ(result.switches, 0);
}

TEST_F(MultiTxFixture, HandoverBeatsBestSingleTxUnderOcclusion) {
  const motion::StillMotion profile(
      (*chains_)[0].proto.nominal_rig_pose, 12.0);
  // TX0 blocked during [1, 5) s and [8, 11) s; TX1 blocked during [5, 7):
  // no single TX sees more than ~10/12 of the session unobstructed.
  const auto occlusion = [](util::SimTimeUs now, std::size_t tx) {
    const double t = util::us_to_s(now);
    if (tx == 0) return (t >= 1.0 && t < 5.0) || (t >= 8.0 && t < 11.0);
    return t >= 5.0 && t < 7.0;
  };
  MultiTxConfig config;
  config.handover.switch_delay_s = 0.1;
  const MultiTxResult result =
      run_multi_tx_session(*chains_, profile, config, occlusion);
  EXPECT_GT(result.served_fraction, result.best_single_tx_fraction + 0.08);
  EXPECT_GT(result.served_fraction, 0.9);
  EXPECT_GE(result.switches, 2);
}

TEST_F(MultiTxFixture, EmptyChainListIsSafe) {
  std::vector<TxChain> none;
  const motion::StillMotion profile(geom::Pose::identity(), 1.0);
  const MultiTxResult result =
      run_multi_tx_session(none, profile, MultiTxConfig{}, nullptr);
  EXPECT_DOUBLE_EQ(result.served_fraction, 0.0);
}

TEST_F(MultiTxFixture, OnSlotTapMirrorsSessionAccounting) {
  const motion::StillMotion profile(
      (*chains_)[0].proto.nominal_rig_pose, 12.0);
  const auto occlusion = [](util::SimTimeUs now, std::size_t tx) {
    const double t = util::us_to_s(now);
    if (tx == 0) return (t >= 1.0 && t < 5.0) || (t >= 8.0 && t < 11.0);
    return t >= 5.0 && t < 7.0;
  };
  MultiTxConfig config;
  config.handover.switch_delay_s = 0.1;

  struct Tap {
    util::SimTimeUs time;
    int serving;
    bool usable;
    double power_dbm;
  };
  std::vector<Tap> taps;
  config.on_slot = [&](util::SimTimeUs t, int serving, bool usable,
                       double power) {
    taps.push_back({t, serving, usable, power});
  };
  const MultiTxResult result =
      run_multi_tx_session(*chains_, profile, config, occlusion);

  ASSERT_FALSE(taps.empty());
  std::size_t usable_taps = 0, mid_switch_taps = 0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i > 0) EXPECT_EQ(taps[i].time, taps[i - 1].time + config.step);
    if (taps[i].usable) {
      ++usable_taps;
      EXPECT_GE(taps[i].serving, 0);  // usable implies a serving TX
    }
    if (taps[i].serving < 0) ++mid_switch_taps;
    EXPECT_TRUE(std::isfinite(taps[i].power_dbm));
  }
  // The tap sees exactly the slots the result counts.
  EXPECT_NEAR(static_cast<double>(usable_taps) /
                  static_cast<double>(taps.size()),
              result.served_fraction, 1e-12);
  // Two occlusion-triggered switches at 0.1 s delay each: the tap must
  // report serving == -1 while they are in flight.
  EXPECT_GE(result.switches, 2);
  EXPECT_GT(mid_switch_taps, 0u);
}

// ---- HandoverProcess: reacquisition exactly at the switch deadline ----
//
// The boundary the arena's migration accounting leans on: when the old TX
// recovers at the *exact* instant the switch-done timer fires, the timer
// wins (it was scheduled first — FIFO at equal times), the switch
// commits, and nothing is counted as cancelled.

TEST(HandoverDeadlineTest, ReacquisitionAtExactDeadlineDoesNotCancel) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.hysteresis_db = 3.0;
  config.drop_threshold_dbm = -25.0;
  config.switch_delay_s = 0.1;
  config.cancel_on_reacquire = true;
  link::SessionLog log;
  link::HandoverProcess handover(2, config, sched, &log);

  EXPECT_EQ(handover.on_powers(std::vector<double>{-10.0, -20.0}), 0);

  // t = 1 ms: TX0 drops; a drop-triggered switch starts, deadline 101 ms.
  sched.run_until(1000);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-40.0, -20.0}), -1);
  EXPECT_TRUE(handover.switching());

  // One tick before the deadline the old TX is still down.
  sched.run_until(100999);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-40.0, -20.0}), -1);
  EXPECT_TRUE(handover.switching());

  // run_until(101000) dispatches the switch-done timer (commit), so the
  // reacquisition powers fed at the same instant arrive too late.
  sched.run_until(101000);
  EXPECT_FALSE(handover.switching());
  EXPECT_EQ(handover.active(), 1);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-12.0, -11.0}), 1);

  EXPECT_EQ(handover.started(), 1);
  EXPECT_EQ(handover.cancelled_switches(), 0);
  EXPECT_EQ(handover.switches(), 1);
  ASSERT_EQ(log.count(link::SessionEventKind::kHandover), 1);
  EXPECT_EQ(log.events().front().time, 101000);
  EXPECT_EQ(log.count(link::SessionEventKind::kReacquisition), 0);
}

TEST(HandoverDeadlineTest, ReacquisitionOneTickEarlierCancels) {
  event::Scheduler sched;
  link::HandoverConfig config;
  config.hysteresis_db = 3.0;
  config.drop_threshold_dbm = -25.0;
  config.switch_delay_s = 0.1;
  config.cancel_on_reacquire = true;
  link::SessionLog log;
  link::HandoverProcess handover(2, config, sched, &log);

  EXPECT_EQ(handover.on_powers(std::vector<double>{-10.0, -20.0}), 0);
  sched.run_until(1000);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-40.0, -20.0}), -1);

  // Reacquire one microsecond before the deadline: switch abandoned.
  sched.run_until(100999);
  EXPECT_EQ(handover.on_powers(std::vector<double>{-12.0, -20.0}), 0);
  EXPECT_FALSE(handover.switching());
  EXPECT_EQ(handover.cancelled_switches(), 1);
  EXPECT_EQ(handover.switches(), 0);

  sched.run();  // the cancelled timer must never commit
  EXPECT_EQ(handover.active(), 0);
  EXPECT_EQ(log.count(link::SessionEventKind::kHandover), 0);
  ASSERT_EQ(log.count(link::SessionEventKind::kReacquisition), 1);
  EXPECT_EQ(log.events().front().time, 100999);
}

// ---- SessionLog ----

TEST(SessionLogTest, RecordsTransitions) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(1000, true, -10.0);
  log.on_slot(2000, false, -40.0);
  log.on_slot(3000, false, -40.0);
  log.on_slot(4000, true, -10.0);
  EXPECT_EQ(log.count(SessionEventKind::kLinkUp), 2);  // initial + recovery
  EXPECT_EQ(log.count(SessionEventKind::kLinkDown), 1);
}

TEST(SessionLogTest, LongestOutage) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(util::us_from_s(1.0), false, -40.0);
  log.on_slot(util::us_from_s(3.5), true, -10.0);
  log.on_slot(util::us_from_s(4.0), false, -40.0);
  log.on_slot(util::us_from_s(4.5), true, -10.0);
  EXPECT_NEAR(log.longest_outage_s(), 2.5, 1e-9);
}

TEST(SessionLogTest, OpenEndedOutageCounts) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(util::us_from_s(1.0), false, -40.0);
  log.on_slot(util::us_from_s(4.0), false, -40.0);
  EXPECT_NEAR(log.longest_outage_s(), 3.0, 1e-9);
}

TEST(SessionLogTest, SavesCsvPair) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(1000, false, -40.0);
  RunResult run;
  WindowSample w;
  w.t_s = 0.0;
  w.throughput_gbps = 9.4;
  run.windows.push_back(w);
  log.finish(run);

  const auto stem = std::filesystem::temp_directory_path() / "cyclops_log";
  log.save(stem);
  EXPECT_TRUE(std::filesystem::exists(stem.string() + "_windows.csv"));
  EXPECT_TRUE(std::filesystem::exists(stem.string() + "_events.csv"));
  std::filesystem::remove(stem.string() + "_windows.csv");
  std::filesystem::remove(stem.string() + "_events.csv");
}

}  // namespace
}  // namespace cyclops::link

// Tests for the multi-TX rig and the session log.
#include <gtest/gtest.h>

#include <filesystem>

#include "link/multi_tx.hpp"
#include "link/session_log.hpp"
#include "motion/profile.hpp"
#include "util/units.hpp"

namespace cyclops::link {
namespace {

class MultiTxFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chains_ = new std::vector<TxChain>();
    chains_->push_back(
        make_tx_chain(42, {0.0, 2.2, 0.0}, sim::prototype_10g_config()));
    chains_->push_back(
        make_tx_chain(43, {0.5, 2.2, 0.25}, sim::prototype_10g_config()));
  }
  static void TearDownTestSuite() {
    delete chains_;
    chains_ = nullptr;
  }
  static std::vector<TxChain>* chains_;
};

std::vector<TxChain>* MultiTxFixture::chains_ = nullptr;

TEST_F(MultiTxFixture, BothChainsUsableWithoutOcclusion) {
  const motion::StillMotion profile(
      (*chains_)[0].proto.nominal_rig_pose, 3.0);
  const MultiTxResult result = run_multi_tx_session(
      *chains_, profile, MultiTxConfig{}, nullptr);
  ASSERT_EQ(result.per_tx_usable_fraction.size(), 2u);
  EXPECT_GT(result.per_tx_usable_fraction[0], 0.95);
  EXPECT_GT(result.per_tx_usable_fraction[1], 0.95);
  EXPECT_GT(result.served_fraction, 0.95);
  EXPECT_EQ(result.switches, 0);
}

TEST_F(MultiTxFixture, HandoverBeatsBestSingleTxUnderOcclusion) {
  const motion::StillMotion profile(
      (*chains_)[0].proto.nominal_rig_pose, 12.0);
  // TX0 blocked during [1, 5) s and [8, 11) s; TX1 blocked during [5, 7):
  // no single TX sees more than ~10/12 of the session unobstructed.
  const auto occlusion = [](util::SimTimeUs now, std::size_t tx) {
    const double t = util::us_to_s(now);
    if (tx == 0) return (t >= 1.0 && t < 5.0) || (t >= 8.0 && t < 11.0);
    return t >= 5.0 && t < 7.0;
  };
  MultiTxConfig config;
  config.handover.switch_delay_s = 0.1;
  const MultiTxResult result =
      run_multi_tx_session(*chains_, profile, config, occlusion);
  EXPECT_GT(result.served_fraction, result.best_single_tx_fraction + 0.08);
  EXPECT_GT(result.served_fraction, 0.9);
  EXPECT_GE(result.switches, 2);
}

TEST_F(MultiTxFixture, EmptyChainListIsSafe) {
  std::vector<TxChain> none;
  const motion::StillMotion profile(geom::Pose::identity(), 1.0);
  const MultiTxResult result =
      run_multi_tx_session(none, profile, MultiTxConfig{}, nullptr);
  EXPECT_DOUBLE_EQ(result.served_fraction, 0.0);
}

// ---- SessionLog ----

TEST(SessionLogTest, RecordsTransitions) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(1000, true, -10.0);
  log.on_slot(2000, false, -40.0);
  log.on_slot(3000, false, -40.0);
  log.on_slot(4000, true, -10.0);
  EXPECT_EQ(log.count(SessionEventKind::kLinkUp), 2);  // initial + recovery
  EXPECT_EQ(log.count(SessionEventKind::kLinkDown), 1);
}

TEST(SessionLogTest, LongestOutage) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(util::us_from_s(1.0), false, -40.0);
  log.on_slot(util::us_from_s(3.5), true, -10.0);
  log.on_slot(util::us_from_s(4.0), false, -40.0);
  log.on_slot(util::us_from_s(4.5), true, -10.0);
  EXPECT_NEAR(log.longest_outage_s(), 2.5, 1e-9);
}

TEST(SessionLogTest, OpenEndedOutageCounts) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(util::us_from_s(1.0), false, -40.0);
  log.on_slot(util::us_from_s(4.0), false, -40.0);
  EXPECT_NEAR(log.longest_outage_s(), 3.0, 1e-9);
}

TEST(SessionLogTest, SavesCsvPair) {
  SessionLog log;
  log.on_slot(0, true, -10.0);
  log.on_slot(1000, false, -40.0);
  RunResult run;
  WindowSample w;
  w.t_s = 0.0;
  w.throughput_gbps = 9.4;
  run.windows.push_back(w);
  log.finish(run);

  const auto stem = std::filesystem::temp_directory_path() / "cyclops_log";
  log.save(stem);
  EXPECT_TRUE(std::filesystem::exists(stem.string() + "_windows.csv"));
  EXPECT_TRUE(std::filesystem::exists(stem.string() + "_events.csv"));
  std::filesystem::remove(stem.string() + "_windows.csv");
  std::filesystem::remove(stem.string() + "_events.csv");
}

}  // namespace
}  // namespace cyclops::link

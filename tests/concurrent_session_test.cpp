// The Context refactor's isolation guarantee, end to end: N sessions run
// through link::run_concurrent_sessions — each on its own isolated
// context — produce SessionLogs and metric exports byte-identical to the
// same session run alone, at every driver thread count (DESIGN.md §11).
//
// The session body is a real event-driven link session (truth-calibrated
// pointing solver, synthetic head trace from the context RNG), so every
// plane the refactor touched is on the path: scheduler on the context
// clock, solver metrics into the context registry, alignment polish on
// the context pool.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/gma_model.hpp"
#include "core/pointing.hpp"
#include "core/tp_controller.hpp"
#include "link/concurrent.hpp"
#include "link/event_session.hpp"
#include "motion/trace_generator.hpp"
#include "obs/obs.hpp"
#include "runtime/context.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

constexpr std::size_t kSessions = 4;

/// Ground-truth pointing solver: keeps sessions cheap (no calibration)
/// and free of wall-clock metrics (LM records lm_solve_wall_us, which is
/// not deterministic; G'/session metrics are pure sim-time quantities).
core::PointingSolver truth_solver(const sim::Prototype& proto,
                                  const runtime::Context& ctx) {
  return core::PointingSolver(
      core::GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      core::GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx, {}, ctx);
}

link::RunResult session_body(std::size_t i, runtime::Context& ctx,
                             link::SessionLog& log) {
  sim::Prototype proto =
      sim::make_prototype(100 + i, sim::prototype_25g_config());
  core::TpController controller(truth_solver(proto, ctx), core::TpConfig{});

  motion::TraceGeneratorConfig trace_config;
  trace_config.duration_s = 2.0;
  util::Rng trace_rng = ctx.rng(/*key=*/1);
  const motion::Trace trace = motion::generate_viewing_trace(
      proto.nominal_rig_pose, trace_config, trace_rng);
  const motion::TraceMotion profile(trace);

  link::SimOptions options;
  options.step = 1000;
  return link::run_link_session_events(proto, controller, profile, ctx,
                                       options, &log);
}

runtime::Context make_session_ctx(std::size_t i) {
  runtime::Context::Options opts;
  opts.seed = 1000 + i;  // per-session stream; inline pool (threads = 1)
  return runtime::Context::isolated(opts);
}

void expect_logs_identical(const link::SessionLog& a,
                           const link::SessionLog& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].power_dbm, b.events()[i].power_dbm);  // exact
  }
}

void expect_outputs_identical(const link::SessionOutput& a,
                              const link::SessionOutput& b) {
  EXPECT_EQ(a.run.total_up_fraction, b.run.total_up_fraction);  // exact
  EXPECT_EQ(a.run.realignments, b.run.realignments);
  EXPECT_EQ(a.run.tp_failures, b.run.tp_failures);
  EXPECT_EQ(a.run.avg_pointing_iterations, b.run.avg_pointing_iterations);
  expect_logs_identical(a.log, b.log);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);  // byte-identical export
}

TEST(ConcurrentSessionTest, ParallelSessionsMatchAloneRunsByteForByte) {
  // Baseline: each session truly alone — its own context, run serially,
  // nothing else in flight.
  std::vector<link::SessionOutput> alone(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    runtime::Context ctx = make_session_ctx(i);
    alone[i].run = session_body(i, ctx, alone[i].log);
    if constexpr (obs::kEnabled) {
      alone[i].metrics_jsonl = obs::to_jsonl(ctx.registry());
    }
  }
  ASSERT_GE(alone[0].log.events().size(), 1u);
  if constexpr (obs::kEnabled) {
    ASSERT_FALSE(alone[0].metrics_jsonl.empty());
  }

  // The driver at 1, 2, and 8 threads must reproduce the alone runs
  // byte for byte — the sessions share nothing, so interleaving them
  // arbitrarily cannot change any output.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("driver threads = " + std::to_string(threads));
    util::ThreadPool pool(threads);
    const std::vector<link::SessionOutput> outputs =
        link::run_concurrent_sessions(kSessions, make_session_ctx,
                                      session_body, pool);
    ASSERT_EQ(outputs.size(), kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      SCOPED_TRACE("session " + std::to_string(i));
      expect_outputs_identical(outputs[i], alone[i]);
    }
  }
}

TEST(ConcurrentSessionTest, SessionsDifferFromEachOther) {
  // Sanity: the byte-equality above is not vacuous — distinct seeds give
  // distinct traces, so sessions are genuinely different computations.
  const std::vector<link::SessionOutput> outputs =
      link::run_concurrent_sessions(2, make_session_ctx, session_body,
                                    util::ThreadPool::serial());
  const bool all_equal =
      outputs[0].run.avg_pointing_iterations ==
          outputs[1].run.avg_pointing_iterations &&
      outputs[0].log.events().size() == outputs[1].log.events().size() &&
      outputs[0].metrics_jsonl == outputs[1].metrics_jsonl;
  EXPECT_FALSE(all_equal);
}

TEST(ConcurrentSessionTest, MetricsRollUpAcrossSessionRegistries) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "OBS=OFF build";
  // Fleet rollup: parse each session's export back into one registry.
  const std::vector<link::SessionOutput> outputs =
      link::run_concurrent_sessions(2, make_session_ctx, session_body,
                                    util::ThreadPool::serial());
  obs::Registry fleet;
  for (const link::SessionOutput& out : outputs) {
    ASSERT_TRUE(obs::from_jsonl(out.metrics_jsonl, fleet));
  }
  const std::uint64_t total =
      fleet.counter("session_slots_total").value();
  std::uint64_t per_session_sum = 0;
  for (const link::SessionOutput& out : outputs) {
    obs::Registry one;
    ASSERT_TRUE(obs::from_jsonl(out.metrics_jsonl, one));
    per_session_sum += one.counter("session_slots_total").value();
  }
  EXPECT_EQ(total, per_session_sum);
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace cyclops

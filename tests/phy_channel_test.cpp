// The unified phy::Channel contract: rate/sensitivity boundaries for the
// FSO SFP tables (10G ZR, 25G SFP28), the WDM lane ladder under both
// collimators, and the mmWave MCS ladder + beam-retraining state — all
// probed through the adapter interface the session core consumes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baseline/mmwave.hpp"
#include "geom/mat3.hpp"
#include "obs/config.hpp"
#include "obs/registry.hpp"
#include "optics/sfp.hpp"
#include "optics/wdm.hpp"
#include "phy/fso_channel.hpp"
#include "phy/mmwave_channel.hpp"
#include "phy/wdm_channel.hpp"
#include "sim/prototype.hpp"
#include "util/units.hpp"

namespace cyclops::phy {
namespace {

constexpr double kEps = 1e-9;

// ---- SFP rate/sensitivity tables through make_sfp_info ----

TEST(PhySfpInfoTest, TenGigZrTable) {
  const ChannelInfo info = make_sfp_info(optics::sfp_10g_zr());
  EXPECT_EQ(info.name, "SFP-10G-ZR");
  EXPECT_DOUBLE_EQ(info.peak_rate_gbps, 9.4);
  EXPECT_DOUBLE_EQ(info.sensitivity, -25.0);
  EXPECT_FALSE(info.rate_adaptive);
}

TEST(PhySfpInfoTest, TwentyFiveGigTable) {
  const ChannelInfo info = make_sfp_info(optics::sfp28_lr());
  EXPECT_DOUBLE_EQ(info.peak_rate_gbps, 23.5);
  EXPECT_DOUBLE_EQ(info.sensitivity, -14.0);
  EXPECT_FALSE(info.rate_adaptive);
}

// ---- FsoChannel: all-or-nothing rate at the sensitivity boundary ----

class FsoChannelTest : public ::testing::Test {
 protected:
  static double boundary_rate(const sim::PrototypeConfig& config) {
    sim::Prototype proto = sim::make_prototype(7, config);
    FsoChannel channel(proto.scene);
    const ChannelInfo& info = channel.info();
    EXPECT_DOUBLE_EQ(channel.rate_for(info.sensitivity),
                     info.peak_rate_gbps);
    EXPECT_DOUBLE_EQ(channel.rate_for(info.sensitivity - kEps), 0.0);
    EXPECT_DOUBLE_EQ(channel.rate_for(info.sensitivity + 10.0),
                     info.peak_rate_gbps);
    EXPECT_DOUBLE_EQ(
        channel.rate_for(-std::numeric_limits<double>::infinity()), 0.0);
    return channel.rate_for(info.sensitivity);
  }
};

TEST_F(FsoChannelTest, TenGigBoundary) {
  EXPECT_DOUBLE_EQ(boundary_rate(sim::prototype_10g_config()), 9.4);
}

TEST_F(FsoChannelTest, TwentyFiveGigBoundary) {
  // Whatever SFP the 25G prototype carries, its goodput is the SFP28 line.
  EXPECT_DOUBLE_EQ(boundary_rate(sim::prototype_25g_config()), 23.5);
}

TEST_F(FsoChannelTest, ReacquisitionDelayThroughAdapter) {
  sim::Prototype proto = sim::make_prototype(7, sim::prototype_10g_config());
  FsoChannel channel(proto.scene);
  const double good = channel.info().sensitivity + 3.0;
  const double bad = channel.info().sensitivity - 3.0;
  channel.force_up();
  EXPECT_TRUE(channel.step(0, good));
  EXPECT_FALSE(channel.step(1000, bad));  // drop is instant
  // Re-acquisition takes the SFP's link_up_delay (2 s for both specs).
  const util::SimTimeUs delay =
      util::us_from_s(proto.scene.config().sfp.link_up_delay_s);
  EXPECT_FALSE(channel.step(2000, good));
  EXPECT_FALSE(channel.step(2000 + delay - 1, good));
  EXPECT_TRUE(channel.step(2000 + delay, good));
}

// ---- WdmChannel: per-lane thresholds and the 5-step rate ladder ----

double expected_rate_at(const WdmChannel& channel, double margin_db) {
  const optics::WdmTransceiver& t = channel.transceiver();
  double rate = 0.0;
  for (std::size_t i = 0; i < t.lanes.size(); ++i) {
    if (margin_db >= channel.lane_threshold(i)) rate += t.lanes[i].rate_gbps;
  }
  return rate;
}

void check_wdm_ladder(const optics::WdmTransceiver& transceiver,
                      const optics::CollimatorChromatics& collimator) {
  WdmChannel channel(transceiver, collimator,
                     [](const geom::Pose&, util::SimTimeUs) { return 0.0; });
  const ChannelInfo& info = channel.info();
  EXPECT_TRUE(info.rate_adaptive);
  EXPECT_DOUBLE_EQ(info.peak_rate_gbps, transceiver.total_rate_gbps());

  // sensitivity is the best lane's threshold — the first lane to light.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < transceiver.lanes.size(); ++i) {
    best = std::min(best, channel.lane_threshold(i));
  }
  EXPECT_DOUBLE_EQ(info.sensitivity, best);
  EXPECT_DOUBLE_EQ(channel.rate_for(info.sensitivity - kEps), 0.0);

  // At and just below each lane's threshold the aggregate rate must match
  // the lane-sum ladder exactly (the boundary lane flips, nothing else).
  for (std::size_t i = 0; i < transceiver.lanes.size(); ++i) {
    const double at = channel.lane_threshold(i);
    EXPECT_DOUBLE_EQ(channel.rate_for(at), expected_rate_at(channel, at))
        << transceiver.name << " lane " << i;
    EXPECT_DOUBLE_EQ(channel.rate_for(at - kEps),
                     expected_rate_at(channel, at - kEps))
        << transceiver.name << " lane " << i;
    EXPECT_LT(channel.rate_for(at - kEps), channel.rate_for(at));
  }
  // Zero shared loss lights every lane on both transceivers.
  EXPECT_DOUBLE_EQ(channel.rate_for(0.0), info.peak_rate_gbps);
}

TEST(WdmChannelTest, TenGigLadderCommodityCollimator) {
  check_wdm_ladder(optics::qsfp_lr4(), optics::commodity_collimator());
}

TEST(WdmChannelTest, TwentyFiveGigLadderCommodityCollimator) {
  check_wdm_ladder(optics::qsfp28_lr4(), optics::commodity_collimator());
}

TEST(WdmChannelTest, TwentyFiveGigLadderAchromaticCollimator) {
  check_wdm_ladder(optics::qsfp28_lr4(), optics::custom_achromatic_collimator());
}

TEST(WdmChannelTest, AchromaticCollimatorTightensThresholdSpread) {
  WdmChannel commodity(optics::qsfp28_lr4(), optics::commodity_collimator(),
                       [](const geom::Pose&, util::SimTimeUs) { return 0.0; });
  WdmChannel custom(optics::qsfp28_lr4(),
                    optics::custom_achromatic_collimator(),
                    [](const geom::Pose&, util::SimTimeUs) { return 0.0; });
  const auto spread = [](const WdmChannel& c) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < c.transceiver().lanes.size(); ++i) {
      lo = std::min(lo, c.lane_threshold(i));
      hi = std::max(hi, c.lane_threshold(i));
    }
    return hi - lo;
  };
  EXPECT_LT(spread(custom), 0.1 * spread(commodity));
}

TEST(WdmChannelTest, PowerAtIsNegatedSharedLoss) {
  WdmChannel channel(
      optics::qsfp28_lr4(), optics::commodity_collimator(),
      [](const geom::Pose&, util::SimTimeUs t) { return 0.001 * t; });
  const geom::Pose pose;
  EXPECT_DOUBLE_EQ(channel.power_at(pose, 0), 0.0);
  EXPECT_DOUBLE_EQ(channel.power_at(pose, 3000), -3.0);
}

// ---- MmWaveChannel: MCS ladder boundaries and beam retraining ----

TEST(MmWaveChannelTest, McsIndexBoundaries) {
  const auto& table = baseline::mcs_table();
  EXPECT_EQ(baseline::mcs_index_for(table.front().min_snr_db - kEps), 0);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(baseline::mcs_index_for(table[i].min_snr_db),
              static_cast<int>(i) + 1);
    EXPECT_EQ(baseline::mcs_index_for(table[i].min_snr_db - kEps),
              static_cast<int>(i));
  }
}

TEST(MmWaveChannelTest, InfoMatchesLadderCeiling) {
  MmWaveChannel channel(MmWaveChannelConfig{});
  const ChannelInfo& info = channel.info();
  const auto& table = baseline::mcs_table();
  EXPECT_EQ(info.name, "mmwave-60ghz");
  EXPECT_TRUE(info.rate_adaptive);
  EXPECT_DOUBLE_EQ(info.peak_rate_gbps, table.back().phy_rate_gbps * 0.65);
  EXPECT_DOUBLE_EQ(info.sensitivity, table.front().min_snr_db);
  // rate_for walks the same ladder, scaled by MAC efficiency.
  EXPECT_DOUBLE_EQ(channel.rate_for(table.back().min_snr_db),
                   info.peak_rate_gbps);
  EXPECT_DOUBLE_EQ(channel.rate_for(table.front().min_snr_db),
                   table.front().phy_rate_gbps * 0.65);
  EXPECT_DOUBLE_EQ(channel.rate_for(table.front().min_snr_db - kEps), 0.0);
}

TEST(MmWaveChannelTest, RotationTriggersRetrainOutage) {
  obs::Registry registry;
  MmWaveChannelConfig config;  // 12 deg beam, 10 ms retrain
  MmWaveChannel channel(config, &registry);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 1.2, 0.0}};

  double snr = channel.power_at(base, 0);
  EXPECT_GT(snr, channel.info().sensitivity);  // ~1 m from the AP
  EXPECT_TRUE(channel.step(0, snr));
  EXPECT_EQ(channel.retrains(), 0);

  // Rotate past half the beamwidth: the next slot must retrain and the
  // outage must last retrain_time_ms.
  const geom::Pose turned{
      geom::Mat3::rotation({0.0, 1.0, 0.0}, util::deg_to_rad(10.0)),
      base.translation()};
  snr = channel.power_at(turned, 1000);
  EXPECT_FALSE(channel.step(1000, snr));
  EXPECT_EQ(channel.retrains(), 1);
  snr = channel.power_at(turned, 5000);
  EXPECT_FALSE(channel.step(5000, snr));  // still inside the 10 ms sweep
  snr = channel.power_at(turned, 12000);
  EXPECT_TRUE(channel.step(12000, snr));  // sweep done, link back

  channel.finish(20000);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry.counter("mmwave_retrains_total").value(), 1u);
    EXPECT_GE(registry.counter("mmwave_retrain_slots_total").value(), 2u);
    EXPECT_EQ(registry.counter("mmwave_blocked_slots_total").value(), 0u);
  }
}

TEST(MmWaveChannelTest, BlockageCostsSnrAndIsCounted) {
  obs::Registry registry;
  MmWaveChannelConfig config;
  config.blockage = [](util::SimTimeUs t) { return t >= 1000 && t < 3000; };
  MmWaveChannel channel(config, &registry);
  const geom::Pose base{geom::Mat3::identity(), {0.0, 1.2, 0.0}};

  const double clear = channel.power_at(base, 0);
  channel.step(0, clear);
  const double blocked = channel.power_at(base, 1000);
  channel.step(1000, blocked);
  EXPECT_NEAR(clear - blocked, config.radio.blockage_loss_db, 1e-12);
  const double after = channel.power_at(base, 3000);
  channel.step(3000, after);
  EXPECT_DOUBLE_EQ(after, clear);

  channel.finish(4000);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry.counter("mmwave_blocked_slots_total").value(), 1u);
  }
}

}  // namespace
}  // namespace cyclops::phy

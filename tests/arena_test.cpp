// Unit and property tests for the arena's building blocks: topology
// geometry (grid, margins, occlusion), the beam scheduler's duty-budget
// invariant, and admission control.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>
#include <vector>

#include "arena/admission.hpp"
#include "arena/scheduler.hpp"
#include "arena/topology.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::arena {
namespace {

// ---- Topology: TX grid ----

TEST(ArenaTopologyTest, SingleTxSitsAtRoomCenter) {
  const ArenaConfig config;
  const auto grid = ArenaTopology::tx_grid(config, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_NEAR(grid[0].x, 0.0, 1e-12);
  EXPECT_NEAR(grid[0].z, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(grid[0].y, config.ceiling_h);
}

TEST(ArenaTopologyTest, GridIsCenteredAndInsideRoom) {
  const ArenaConfig config;
  for (const std::size_t n : {2u, 4u, 6u, 9u}) {
    const auto grid = ArenaTopology::tx_grid(config, n);
    ASSERT_EQ(grid.size(), n);
    double sx = 0.0, sz = 0.0;
    for (const auto& p : grid) {
      EXPECT_DOUBLE_EQ(p.y, config.ceiling_h);
      EXPECT_LE(std::abs(p.x), config.room_w / 2.0);
      EXPECT_LE(std::abs(p.z), config.room_d / 2.0);
      sx += p.x;
      sz += p.z;
    }
    EXPECT_NEAR(sx / static_cast<double>(n), 0.0, 1e-9);
    EXPECT_NEAR(sz / static_cast<double>(n), 0.0, 1e-9);
  }
}

// ---- Topology: link margin ----

TEST(ArenaTopologyTest, MarginPeaksBelowTxAndDecaysWithRangeAndAngle) {
  const ArenaConfig config;
  ArenaTopology topo(config, 1,
                     ArenaTopology::make_tracks(config, 1, Scenario::kUniform,
                                                1.0, 1));
  TrackSample below;
  below.pos = {0.0, config.head_h, 0.0};
  const double m0 = topo.geo_margin_db(0, below, false);
  // Straight below: zenith 0, range = ceiling - head; pure spreading law.
  const double drop = config.ceiling_h - config.head_h;
  EXPECT_NEAR(m0,
              config.base_margin_db -
                  20.0 * std::log10(drop / config.ref_range_m),
              1e-9);

  TrackSample offset = below;
  offset.pos.x = 1.5;  // farther and off-axis: strictly worse
  const double m1 = topo.geo_margin_db(0, offset, false);
  EXPECT_LT(m1, m0);
  EXPECT_GT(m1, kBlockedMarginDb);

  // Outside the galvo cone the beam cannot exist at all.  The cell edge
  // at head height is (ceiling - head) * tan(fov).
  const double cell =
      (config.ceiling_h - config.head_h) *
      std::tan(config.fov_deg * std::numbers::pi / 180.0);
  TrackSample outside = below;
  outside.pos.x = cell * 1.05;
  EXPECT_EQ(topo.geo_margin_db(0, outside, false), kBlockedMarginDb);

  // Occlusion blocks regardless of geometry.
  EXPECT_EQ(topo.geo_margin_db(0, below, true), kBlockedMarginDb);
}

// ---- Topology: cylinder intersection ----

TEST(ArenaCylinderTest, KnownGeometry) {
  const geom::Vec3 base{0.0, 0.0, 0.0};
  const double r = 0.25, top = 1.6;
  // Horizontal segment through the axis at mid height: hit.
  EXPECT_TRUE(ArenaTopology::segment_hits_cylinder(
      {-2.0, 1.0, 0.0}, {2.0, 1.0, 0.0}, base, r, top));
  // Same segment far off to the side: miss.
  EXPECT_FALSE(ArenaTopology::segment_hits_cylinder(
      {-2.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, base, r, top));
  // Passing over the top of the cylinder: miss.
  EXPECT_FALSE(ArenaTopology::segment_hits_cylinder(
      {-2.0, 2.0, 0.0}, {2.0, 2.0, 0.0}, base, r, top));
  // Steep ceiling-to-floor segment grazing the axis region: hit.
  EXPECT_TRUE(ArenaTopology::segment_hits_cylinder(
      {0.1, 2.8, 0.1}, {-0.1, 0.2, -0.1}, base, r, top));
}

TEST(ArenaCylinderTest, EndpointSymmetryProperty) {
  util::Rng rng(0xA11CE5);
  for (int i = 0; i < 2000; ++i) {
    const geom::Vec3 a{rng.uniform(-4.0, 4.0), rng.uniform(0.0, 3.0),
                       rng.uniform(-4.0, 4.0)};
    const geom::Vec3 b{rng.uniform(-4.0, 4.0), rng.uniform(0.0, 3.0),
                       rng.uniform(-4.0, 4.0)};
    const geom::Vec3 base{rng.uniform(-3.0, 3.0), 0.0,
                          rng.uniform(-3.0, 3.0)};
    const double r = rng.uniform(0.05, 0.5);
    const double top = rng.uniform(0.5, 2.5);
    EXPECT_EQ(ArenaTopology::segment_hits_cylinder(a, b, base, r, top),
              ArenaTopology::segment_hits_cylinder(b, a, base, r, top))
        << "asymmetric hit test at iteration " << i;
  }
}

TEST(ArenaOcclusionTest, OwnBodyNeverOccludesAndBlockerDoes) {
  const ArenaConfig config;
  // A lone player can never be occluded (only *other* bodies count).
  ArenaTopology solo(config, 1,
                     ArenaTopology::make_tracks(config, 1, Scenario::kUniform,
                                                2.0, 3));
  for (int ms = 0; ms < 2000; ms += 100) {
    const auto samples = solo.sample_all(util::us_from_ms(ms));
    EXPECT_FALSE(solo.beam_occluded(0, 0, samples));
  }

  // Hand-built samples.  A ceiling beam only dips below head height at
  // the receiver, so bodies block it where it lands: a player standing
  // shoulder-to-shoulder with the receiver (within body_radius in xz)
  // occludes; the same body mid-path at head height does not — the beam
  // passes over it.
  ArenaTopology pair(config, 1,
                     ArenaTopology::make_tracks(config, 2, Scenario::kUniform,
                                                2.0, 3));
  std::vector<TrackSample> samples(2);
  samples[0].pos = {1.2, config.head_h, 0.0};
  samples[1].pos = {1.05, config.head_h, 0.1};  // 0.18 m away: adjacent
  EXPECT_TRUE(pair.beam_occluded(0, 0, samples));
  // Mid-path, same height: the slanted beam clears the body.
  samples[1].pos = {0.5, config.head_h, 0.0};
  EXPECT_FALSE(pair.beam_occluded(0, 0, samples));
  // Well off to the side: clear.
  samples[1].pos = {1.05, config.head_h, 2.0};
  EXPECT_FALSE(pair.beam_occluded(0, 0, samples));
}

TEST(ArenaTrackTest, SamplesStayInRoomAndAreDeterministic) {
  const ArenaConfig config;
  const auto tracks = ArenaTopology::make_tracks(
      config, 4, Scenario::kUniform, 10.0, 99);
  const auto again = ArenaTopology::make_tracks(
      config, 4, Scenario::kUniform, 10.0, 99);
  ASSERT_EQ(tracks.size(), 4u);
  for (std::size_t p = 0; p < tracks.size(); ++p) {
    for (int ms = 0; ms <= 10000; ms += 250) {
      const TrackSample s = tracks[p].sample(util::us_from_ms(ms));
      EXPECT_LE(std::abs(s.pos.x), config.room_w / 2.0);
      EXPECT_LE(std::abs(s.pos.z), config.room_d / 2.0);
      EXPECT_DOUBLE_EQ(s.pos.y, config.head_h);
      const TrackSample s2 = again[p].sample(util::us_from_ms(ms));
      EXPECT_DOUBLE_EQ(s.pos.x, s2.pos.x);
      EXPECT_DOUBLE_EQ(s.yaw, s2.yaw);
    }
  }
}

TEST(ArenaTrackTest, ClusteredCornerConfinesPlayers) {
  const ArenaConfig config;
  const auto tracks = ArenaTopology::make_tracks(
      config, 4, Scenario::kClusteredCorner, 8.0, 7);
  for (const auto& track : tracks) {
    for (int ms = 0; ms <= 8000; ms += 500) {
      const TrackSample s = track.sample(util::us_from_ms(ms));
      // Everyone lives in one quadrant (positive x/z corner).
      EXPECT_GE(s.pos.x, 0.0);
      EXPECT_GE(s.pos.z, 0.0);
    }
  }
}

// ---- BeamScheduler ----

HeadsetUrgency servable_urgency(double drift = 0.0, double predicted = 0.0,
                                double starved = 0.0) {
  HeadsetUrgency u;
  u.servable = true;
  u.drift_rad = drift;
  u.predicted_rad = predicted;
  u.starved_s = starved;
  return u;
}

TEST(BeamSchedulerTest, BudgetPerFrameFormula) {
  SchedulerConfig config;
  config.frame_slots = 10;
  config.duty_budget = 0.9;
  EXPECT_EQ(BeamScheduler(config, 1).budget_per_frame(), 9);
  config.duty_budget = 0.05;  // floor(0.5) = 0, clamped to 1
  EXPECT_EQ(BeamScheduler(config, 1).budget_per_frame(), 1);
}

TEST(BeamSchedulerTest, RoundRobinCyclesRoster) {
  SchedulerConfig config;
  config.policy = SchedulePolicy::kRoundRobin;
  config.frame_slots = 100;  // budget never binds here
  BeamScheduler beam(config, 1);
  beam.add(0, 5);
  beam.add(0, 7);
  beam.add(0, 9);
  std::vector<int> choice(1);
  std::vector<int> picks;
  for (std::uint64_t slot = 0; slot < 6; ++slot) {
    beam.schedule_slot(slot, [](int) { return servable_urgency(); },
                       choice);
    picks.push_back(choice[0]);
  }
  EXPECT_EQ(picks, (std::vector<int>{5, 7, 9, 5, 7, 9}));
}

TEST(BeamSchedulerTest, RoundRobinSkipsUnservable) {
  SchedulerConfig config;
  config.policy = SchedulePolicy::kRoundRobin;
  config.frame_slots = 100;
  BeamScheduler beam(config, 1);
  beam.add(0, 0);
  beam.add(0, 1);
  std::vector<int> choice(1);
  const auto only_h1 = [](int h) {
    HeadsetUrgency u = servable_urgency();
    u.servable = (h == 1);
    return u;
  };
  for (std::uint64_t slot = 0; slot < 4; ++slot) {
    beam.schedule_slot(slot, only_h1, choice);
    EXPECT_EQ(choice[0], 1);
  }
  // Nothing servable -> idle slot, not a crash or a stale pick.
  beam.schedule_slot(4, [](int) { return HeadsetUrgency{}; }, choice);
  EXPECT_EQ(choice[0], -1);
}

TEST(BeamSchedulerTest, MigrateMovesBetweenRosters) {
  SchedulerConfig config;
  BeamScheduler beam(config, 2);
  beam.add(0, 3);
  beam.add(0, 4);
  beam.migrate(4, 0, 1);
  EXPECT_EQ(beam.roster(0), (std::vector<int>{3}));
  EXPECT_EQ(beam.roster(1), (std::vector<int>{4}));
}

TEST(BeamSchedulerTest, MarginWeightedPicksLargestDriftLowestIdTie) {
  SchedulerConfig config;
  config.policy = SchedulePolicy::kMarginWeighted;
  config.frame_slots = 100;
  BeamScheduler beam(config, 1);
  beam.add(0, 0);
  beam.add(0, 1);
  beam.add(0, 2);
  std::vector<int> choice(1);
  const auto drifts = [](int h) {
    return servable_urgency(h == 1 ? 0.5 : 0.1);
  };
  beam.schedule_slot(0, drifts, choice);
  EXPECT_EQ(choice[0], 1);
  // Exact tie: lowest headset id wins (deterministic across platforms).
  beam.schedule_slot(1, [](int) { return servable_urgency(0.3); }, choice);
  EXPECT_EQ(choice[0], 0);
}

TEST(BeamSchedulerTest, PredictiveRanksOnPredictedDrift) {
  SchedulerConfig config;
  config.policy = SchedulePolicy::kPredictive;
  config.frame_slots = 100;
  BeamScheduler beam(config, 1);
  beam.add(0, 0);
  beam.add(0, 1);
  std::vector<int> choice(1);
  // Headset 0 has more accumulated drift, but headset 1 is about to turn
  // fast: predictive pre-positions for the turn.
  const auto urgency = [](int h) {
    return h == 0 ? servable_urgency(0.2, 0.2) : servable_urgency(0.05, 0.6);
  };
  beam.schedule_slot(0, urgency, choice);
  EXPECT_EQ(choice[0], 1);
}

// The hard invariant (§tentpole): no TX ever emits more serve-slots per
// frame than its duty budget, under any roster, policy, or servability
// pattern.
TEST(BeamSchedulerPropertyTest, DutyBudgetNeverExceeded) {
  util::Rng rng(0xD00D);
  for (int trial = 0; trial < 60; ++trial) {
    SchedulerConfig config;
    config.policy = static_cast<SchedulePolicy>(rng.uniform_index(3));
    config.frame_slots = 2 + static_cast<int>(rng.uniform_index(12));
    config.duty_budget = rng.uniform(0.05, 1.0);
    const std::size_t num_tx = 1 + rng.uniform_index(4);
    BeamScheduler beam(config, num_tx);

    int next_headset = 0;
    for (std::size_t tx = 0; tx < num_tx; ++tx) {
      const std::size_t roster = rng.uniform_index(5);
      for (std::size_t k = 0; k < roster; ++k) beam.add(tx, next_headset++);
    }

    std::vector<int> choice(num_tx);
    std::vector<int> served_this_frame(num_tx, 0);
    const std::uint64_t slots = 20u * static_cast<std::uint64_t>(
                                          config.frame_slots);
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      if (slot % static_cast<std::uint64_t>(config.frame_slots) == 0) {
        std::fill(served_this_frame.begin(), served_this_frame.end(), 0);
      }
      auto local = rng.split(slot);
      const auto urgency = [&local](int) {
        HeadsetUrgency u;
        u.servable = local.uniform() < 0.8;
        u.drift_rad = local.uniform(0.0, 0.1);
        u.predicted_rad = u.drift_rad + local.uniform(0.0, 0.1);
        u.starved_s = local.uniform(0.0, 1.0);
        return u;
      };
      beam.schedule_slot(slot, urgency, choice);
      for (std::size_t tx = 0; tx < num_tx; ++tx) {
        if (choice[tx] >= 0) ++served_this_frame[tx];
        ASSERT_LE(served_this_frame[tx], beam.budget_per_frame())
            << "duty budget exceeded: trial " << trial << " slot " << slot;
        ASSERT_EQ(beam.frame_served(tx), served_this_frame[tx]);
      }
    }
  }
}

// ---- AdmissionController ----

TEST(AdmissionTest, CapacityFormula) {
  SlaConfig sla;  // min 1, peak 10, headroom 0.8
  EXPECT_EQ(AdmissionController(sla, 0.9, 10).per_tx_capacity(), 7u);
  // Tiny duty still carries one headset (never a zero-capacity TX).
  EXPECT_EQ(AdmissionController(sla, 0.01, 10).per_tx_capacity(), 1u);
}

TEST(AdmissionTest, PlacesOnBestMarginTxWithRoom) {
  const SlaConfig sla;
  const AdmissionController ctl(sla, 0.9, 10);
  const auto d = ctl.place({5.0, 9.0}, {0, 0}, 0);
  EXPECT_EQ(d.action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(d.tx, 1);
  // Best TX full -> next-best with room.
  const auto d2 = ctl.place({5.0, 9.0}, {0, ctl.per_tx_capacity()}, 0);
  EXPECT_EQ(d2.action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(d2.tx, 0);
}

TEST(AdmissionTest, QueuesBelowMarginThenRejectsWhenQueueFull) {
  SlaConfig sla;
  sla.queue_capacity = 2;
  const AdmissionController ctl(sla, 0.9, 10);
  // No TX clears admit_margin_db (3 dB): queue while there is room.
  const auto q = ctl.place({2.9, 1.0}, {0, 0}, 1);
  EXPECT_EQ(q.action, AdmissionController::Decision::kQueue);
  const auto r = ctl.place({2.9, 1.0}, {0, 0}, 2);
  EXPECT_EQ(r.action, AdmissionController::Decision::kReject);
}

TEST(AdmissionTest, FullArenaQueuesEvenWithGoodMargins) {
  const SlaConfig sla;
  const AdmissionController ctl(sla, 0.9, 10);
  const std::size_t cap = ctl.per_tx_capacity();
  const auto d = ctl.place({10.0, 10.0}, {cap, cap}, 0);
  EXPECT_EQ(d.action, AdmissionController::Decision::kQueue);
}

}  // namespace
}  // namespace cyclops::arena

// The generic session layer (src/session): scheduler reset/reuse
// semantics, the thread-local Workspace lease discipline, lazy isolated
// contexts, and run_session's uniform accounting.  The fleet-scale
// determinism contract (fleet == alone, byte for byte, at any driver
// width) lives in tests/fleet_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "event/scheduler.hpp"
#include "obs/config.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "session/catalog.hpp"
#include "session/fleet.hpp"
#include "session/lifecycle.hpp"

namespace cyclops {
namespace {

/// Schedules a follow-up event `count` times, recording dispatch times.
class ChainProcess final : public event::Process {
 public:
  explicit ChainProcess(int count) : remaining_(count) {}

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    times.push_back(ev.time);
    if (--remaining_ > 0) {
      event::Event next = ev;
      next.time = ev.time + 7;
      sched.schedule(next);
    }
  }
  const char* name() const noexcept override { return "chain"; }

  std::vector<util::SimTimeUs> times;

 private:
  int remaining_;
};

void drive_chain(event::Scheduler& sched, int count,
                 std::vector<util::SimTimeUs>* out) {
  ChainProcess chain(count);
  const event::ProcessId pid = sched.add_process(&chain);
  event::Event first;
  first.time = 3;
  first.type = 1;
  first.target = pid;
  sched.schedule(first);
  sched.run();
  if (out != nullptr) *out = chain.times;
}

TEST(SchedulerResetTest, ResetIsObservationallyFresh) {
  event::Scheduler sched;
  std::vector<util::SimTimeUs> first_run;
  drive_chain(sched, 32, &first_run);
  ASSERT_EQ(first_run.size(), 32u);
  EXPECT_EQ(sched.dispatched(), 32u);
  const std::size_t slab = sched.pool_slots();

  sched.reset();
  EXPECT_EQ(sched.dispatched(), 0u);
  EXPECT_EQ(sched.scheduled(), 0u);
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.pool_slots(), slab) << "reset() must keep the event slab";

  std::vector<util::SimTimeUs> second_run;
  drive_chain(sched, 32, &second_run);
  EXPECT_EQ(second_run, first_run);
}

TEST(SchedulerResetTest, ResetRebindsToExternalClock) {
  util::SimClock clock;
  clock.advance_to(5000);
  event::Scheduler sched;
  drive_chain(sched, 4, nullptr);
  clock.reset();
  sched.reset(clock);
  EXPECT_EQ(sched.now(), 0);
  drive_chain(sched, 4, nullptr);
  EXPECT_EQ(clock.now(), 3 + 3 * 7) << "runs must drive the external clock";
}

TEST(WorkspaceTest, ScopedSchedulerLeasesBoundWorkspace) {
  ASSERT_EQ(session::current_workspace(), nullptr);
  session::Workspace workspace;
  {
    session::WorkspaceScope scope(workspace);
    ASSERT_EQ(session::current_workspace(), &workspace);
    {
      session::ScopedScheduler outer(nullptr);
      EXPECT_EQ(&outer.get(), &workspace.scheduler())
          << "first lease must reuse the workspace scheduler";
      // Nested acquisition while the workspace is leased falls back to an
      // owned scheduler (a runner driving a StreamPipeline mid-session).
      session::ScopedScheduler inner(nullptr);
      EXPECT_NE(&inner.get(), &workspace.scheduler());
    }
    EXPECT_EQ(workspace.leases(), 1u);
    {
      session::ScopedScheduler again(nullptr);
      EXPECT_EQ(&again.get(), &workspace.scheduler());
    }
    EXPECT_EQ(workspace.leases(), 2u);
  }
  EXPECT_EQ(session::current_workspace(), nullptr);
}

TEST(WorkspaceTest, LeasedSchedulerIsFreshAndSlabStabilizes) {
  session::Workspace workspace;
  session::WorkspaceScope scope(workspace);
  std::vector<util::SimTimeUs> baseline;
  std::size_t slab_after_first = 0;
  for (int i = 0; i < 4; ++i) {
    session::ScopedScheduler lease(nullptr);
    EXPECT_EQ(lease.get().dispatched(), 0u);
    EXPECT_EQ(lease.get().now(), 0);
    std::vector<util::SimTimeUs> times;
    drive_chain(lease.get(), 16, &times);
    if (i == 0) {
      baseline = times;
      slab_after_first = lease.get().pool_slots();
    } else {
      EXPECT_EQ(times, baseline);
      EXPECT_EQ(lease.get().pool_slots(), slab_after_first)
          << "slab must not grow across identical reused sessions";
    }
  }
}

TEST(LazyContextTest, IsolatedOwnsWithoutPreMaterializing) {
  runtime::Context ctx = runtime::Context::isolated({.seed = 11});
  // Ownership is reported before anything is materialized…
  EXPECT_TRUE(ctx.owns_pool());
  EXPECT_TRUE(ctx.owns_registry());
  // …and accessors materialize stable singletons on demand.
  obs::Registry& registry = ctx.registry();
  EXPECT_EQ(&registry, &ctx.registry());
  util::ThreadPool& pool = ctx.pool();
  EXPECT_EQ(&pool, &ctx.pool());
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(ctx.seed(), 11u);
}

TEST(RunSessionTest, StampsSpecAndAccountingCounters) {
  session::SessionSpec spec;
  spec.variant = session::Variant::kChannel;
  spec.seed = 17;
  spec.duration_s = 0.5;

  obs::Registry rollup;
  session::SessionExecution exec;
  exec.capture_metrics = true;
  exec.rollup = &rollup;
  const session::Report report =
      session::run_session(spec, session::catalog_factory(), exec);

  EXPECT_EQ(report.variant, session::Variant::kChannel);
  EXPECT_EQ(report.seed, 17u);
  EXPECT_GT(report.events, 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(report.slots, 0u);
    EXPECT_EQ(rollup.counter("fleet_sessions_total").value(), 1u);
    EXPECT_EQ(rollup.counter("fleet_events_total").value(), report.events);
    EXPECT_EQ(rollup.counter("fleet_slots_total").value(), report.slots);
    EXPECT_NE(report.metrics_jsonl.find("fleet_events_total"),
              std::string::npos);
  }
}

TEST(RunSessionTest, EveryCatalogVariantRuns) {
  for (std::size_t v = 0; v < session::kVariantCount; ++v) {
    session::SessionSpec spec;
    spec.variant = static_cast<session::Variant>(v);
    spec.seed = 23 + v;
    spec.duration_s = 0.1;
    const session::Report report =
        session::run_session(spec, session::catalog_factory());
    EXPECT_GT(report.events, 0u)
        << session::variant_name(spec.variant) << " dispatched no events";
    EXPECT_EQ(report.variant, spec.variant);
  }
}

}  // namespace
}  // namespace cyclops

// Tests for the telemetry subsystem (src/obs): metric primitives and
// merge semantics, histogram bucket math, registry label handling, the
// Prometheus/JSONL exporters (byte-stable round-trips), sharded-registry
// determinism across thread counts on the §5.4 evaluator, instrumentation
// transparency (sim outputs unchanged with/without a registry), and the
// EventCounter rebase onto obs primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "event/obs_hook.hpp"
#include "event/process.hpp"
#include "event/scheduler.hpp"
#include "event/trace_hook.hpp"
#include "link/slot_eval.hpp"
#include "motion/trace.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace cyclops {
namespace {

// ---- Counter / Gauge ----

TEST(ObsCounterTest, IncrementsAndMerges) {
  obs::Counter a, b;
  a.inc();
  a.inc(41);
  b.inc(100);
  EXPECT_EQ(a.value(), 42u);
  a.merge_from(b);
  EXPECT_EQ(a.value(), 142u);
  EXPECT_EQ(b.value(), 100u);  // merge does not consume the source
}

TEST(ObsGaugeTest, MergeKeepsOtherOnlyWhenEverSet) {
  obs::Gauge set_once, never_set, target;
  set_once.set(3.5);
  target.set(1.0);
  target.merge_from(never_set);  // no-op: the source never wrote
  EXPECT_DOUBLE_EQ(target.value(), 1.0);
  target.merge_from(set_once);
  EXPECT_DOUBLE_EQ(target.value(), 3.5);
  EXPECT_FALSE(never_set.ever_set());
  EXPECT_TRUE(target.ever_set());
}

TEST(ObsGaugeTest, MergeIsOrderIndependent) {
  // Fleet shard rollups merge per-session registries in arbitrary order;
  // gauge merge takes the max so any order yields the same bytes.
  obs::Gauge ab, ba, lo, hi;
  lo.set(3.0);
  hi.set(5.0);
  ab.merge_from(lo);
  ab.merge_from(hi);
  ba.merge_from(hi);
  ba.merge_from(lo);
  EXPECT_DOUBLE_EQ(ab.value(), 5.0);
  EXPECT_DOUBLE_EQ(ba.value(), 5.0);
}

// ---- HistogramSpec ----

TEST(ObsHistogramSpecTest, LogScaleEdges) {
  const obs::HistogramSpec spec = obs::HistogramSpec::log_scale(1.0, 1e3, 5);
  // 5 buckets per decade over 3 decades: edges 10^0, 10^0.2, ..., 10^3.
  ASSERT_EQ(spec.bounds.size(), 16u);
  EXPECT_DOUBLE_EQ(spec.bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(spec.bounds[5], 10.0);    // exact at decade boundaries
  EXPECT_DOUBLE_EQ(spec.bounds[10], 100.0);
  EXPECT_DOUBLE_EQ(spec.bounds.back(), 1000.0);
  for (std::size_t i = 1; i < spec.bounds.size(); ++i) {
    EXPECT_LT(spec.bounds[i - 1], spec.bounds[i]);
  }
}

TEST(ObsHistogramSpecTest, LinearEdgesMapIntegersToOwnBuckets) {
  // The EventCounter layout: edges -0.5+i so bucket_index(t) == t exactly
  // for integer t.
  const obs::HistogramSpec spec = obs::HistogramSpec::linear(-0.5, 1.0, 8);
  obs::Histogram h(spec);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(h.bucket_index(static_cast<double>(t)),
              static_cast<std::size_t>(t));
  }
  EXPECT_EQ(h.bucket_index(8.0), 8u);  // overflow bucket
}

// ---- Histogram ----

TEST(ObsHistogramTest, RecordCountExtremaAndOverflow) {
  obs::Histogram h(obs::HistogramSpec::linear(0.0, 10.0, 3));  // 10,20,30
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_TRUE(std::isinf(h.max()));
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.5), 0.0);  // empty -> 0

  h.record(5.0);    // bucket 0 (le 10)
  h.record(10.0);   // bucket 0: bounds are inclusive upper edges
  h.record(10.5);   // bucket 1
  h.record(1e9);    // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // approx_sum uses upper edges, overflow clamped to the last finite edge:
  // 10 + 10 + 20 + 30.
  EXPECT_DOUBLE_EQ(h.approx_sum(), 70.0);
  EXPECT_DOUBLE_EQ(h.approx_mean(), 17.5);
}

TEST(ObsHistogramTest, QuantilesUseNearestRank) {
  obs::Histogram h(obs::HistogramSpec::linear(0.0, 1.0, 10));
  for (int i = 0; i < 100; ++i) h.record(i * 0.1);  // ~10 per bucket
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.0), 1.0);   // rank clamps to 1
  EXPECT_DOUBLE_EQ(h.approx_quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.approx_quantile(1.0), 10.0);
}

TEST(ObsHistogramTest, MergePreservesBucketsAndExtrema) {
  const obs::HistogramSpec spec = obs::HistogramSpec::linear(0.0, 1.0, 4);
  obs::Histogram a(spec), b(spec);
  a.record(0.5);
  a.record(3.5);
  b.record(2.5);
  b.record(100.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.bucket(3), 1u);
  EXPECT_EQ(a.bucket(4), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

// ---- Spans ----

TEST(ObsSpanTest, SimSpanRecordsOnceAndNullIsNoop) {
  obs::Histogram h(obs::HistogramSpec::duration_us());
  obs::SimSpan span(&h, 1000);
  EXPECT_TRUE(span.open());
  span.end(4000);
  span.end(9000);  // second end is a no-op
  EXPECT_FALSE(span.open());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3000.0);

  obs::SimSpan null_span(nullptr, 0);
  null_span.end(123);  // must not crash
  { obs::WallSpan null_wall(nullptr); }
}

TEST(ObsSpanTest, TracerBindsRegistryHistograms) {
  obs::Registry registry;
  obs::Tracer tracer(&registry);
  { obs::WallSpan span = tracer.wall("op_wall_us"); }
  obs::SimSpan sim = tracer.sim("op_sim_us", 100);
  sim.end(600);
  EXPECT_EQ(registry.histogram("op_wall_us", obs::HistogramSpec::duration_us())
                .count(),
            1u);
  EXPECT_DOUBLE_EQ(
      registry.histogram("op_sim_us", obs::HistogramSpec::duration_us()).min(),
      500.0);

  obs::Tracer detached(nullptr);  // null registry -> no-op spans
  detached.sim("x", 0).end(10);
  { obs::WallSpan span = detached.wall("y"); }
}

// ---- Registry ----

TEST(ObsRegistryTest, GetOrCreateByNameAndLabels) {
  obs::Registry registry;
  EXPECT_TRUE(registry.empty());
  obs::Counter& a = registry.counter("hits_total", {{"plane", "eval"}});
  obs::Counter& b = registry.counter("hits_total", {{"plane", "session"}});
  obs::Counter& a2 = registry.counter("hits_total", {{"plane", "eval"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);  // same key -> same metric
  a.inc(3);
  EXPECT_FALSE(registry.empty());

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  // Sorted by (name, labels): eval before session.
  EXPECT_EQ(counters[0].first.labels.at("plane"), "eval");
  EXPECT_EQ(counters[0].second->value(), 3u);
}

TEST(ObsRegistryTest, MergeCreatesAndAccumulates) {
  obs::Registry a, b;
  a.counter("n").inc(1);
  b.counter("n").inc(10);
  b.gauge("g").set(7.0);
  b.histogram("h", obs::HistogramSpec::linear(0.0, 1.0, 2)).record(0.5);
  a.merge_from(b);
  EXPECT_EQ(a.counter("n").value(), 11u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 7.0);
  EXPECT_EQ(a.histogram("h", obs::HistogramSpec::linear(0.0, 1.0, 2)).count(),
            1u);
}

// Fleet-wide rollup: two sessions' context registries folded into one.
// Same metric names; labels partly disjoint (per-session label) and
// partly overlapping (shared plane label) — the shapes
// run_concurrent_sessions outputs produce when merged for a rollup.
TEST(ObsRegistryTest, MergeRollupDisjointLabelSets) {
  obs::Registry fleet, s0, s1;
  s0.counter("session_slots_total", {{"session", "0"}}).inc(100);
  s1.counter("session_slots_total", {{"session", "1"}}).inc(200);
  fleet.merge_from(s0);
  fleet.merge_from(s1);

  // Disjoint label sets stay separate series under the same name.
  const auto counters = fleet.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(fleet.counter("session_slots_total", {{"session", "0"}}).value(),
            100u);
  EXPECT_EQ(fleet.counter("session_slots_total", {{"session", "1"}}).value(),
            200u);
}

TEST(ObsRegistryTest, MergeRollupOverlappingLabelSets) {
  obs::Registry fleet, s0, s1;
  // The same (name, labels) series in both sessions must accumulate...
  s0.counter("realignments_total", {{"plane", "session"}}).inc(3);
  s1.counter("realignments_total", {{"plane", "session"}}).inc(5);
  // ...while a label set only one session emits rides along untouched.
  s1.counter("realignments_total", {{"plane", "eval"}}).inc(7);
  fleet.merge_from(s0);
  fleet.merge_from(s1);

  EXPECT_EQ(fleet.counter("realignments_total", {{"plane", "session"}}).value(),
            8u);
  EXPECT_EQ(fleet.counter("realignments_total", {{"plane", "eval"}}).value(),
            7u);
  ASSERT_EQ(fleet.counters().size(), 2u);
}

TEST(ObsRegistryTest, MergeRollupHistogramsSumBucketsAndMergeExtrema) {
  const obs::HistogramSpec spec = obs::HistogramSpec::linear(0.0, 1.0, 4);
  obs::Registry fleet, s0, s1;
  obs::Histogram& h0 = s0.histogram("latency_us", spec, {{"op", "realign"}});
  obs::Histogram& h1 = s1.histogram("latency_us", spec, {{"op", "realign"}});
  h0.record(0.5);
  h0.record(1.5);
  h1.record(1.5);
  h1.record(3.5);
  fleet.merge_from(s0);
  fleet.merge_from(s1);

  obs::Histogram& merged =
      fleet.histogram("latency_us", spec, {{"op", "realign"}});
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.min(), 0.5);
  EXPECT_DOUBLE_EQ(merged.max(), 3.5);
  EXPECT_EQ(merged.bucket(0), 1u);  // [0,1): the 0.5
  EXPECT_EQ(merged.bucket(1), 2u);  // [1,2): both 1.5s
  EXPECT_EQ(merged.bucket(3), 1u);  // [3,4): the 3.5
}

// Merging is per-(name, labels), so a rollup is order-independent for
// counters/histograms — merge s1 before s0 and every value is the same.
TEST(ObsRegistryTest, MergeRollupIsOrderIndependent) {
  const obs::HistogramSpec spec = obs::HistogramSpec::linear(0.0, 1.0, 4);
  obs::Registry ab, ba, s0, s1;
  s0.counter("n", {{"session", "0"}}).inc(2);
  s0.counter("shared").inc(10);
  s0.histogram("h", spec).record(0.5);
  s1.counter("n", {{"session", "1"}}).inc(4);
  s1.counter("shared").inc(20);
  s1.histogram("h", spec).record(2.5);
  ab.merge_from(s0);
  ab.merge_from(s1);
  ba.merge_from(s1);
  ba.merge_from(s0);

  EXPECT_EQ(obs::to_jsonl(ab), obs::to_jsonl(ba));
  EXPECT_EQ(ab.counter("shared").value(), 30u);
}

TEST(ObsRegistryTest, RecordThreadPoolSnapshotsStats) {
  util::ThreadPool pool(2);
  pool.run_chunked(100, [](std::size_t, std::size_t, std::size_t) {});
  obs::Registry registry;
  obs::record_thread_pool(registry, pool);
  EXPECT_GE(registry.counter("pool_jobs_total").value(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("pool_threads").value(), 2.0);
}

// ---- Exporters ----

obs::Registry& fill_sample(obs::Registry& registry) {
  registry.counter("requests_total", {{"plane", "eval"}}).inc(7);
  registry.counter("requests_total", {{"plane", "session"}}).inc(9);
  registry.counter("drops_total").inc(0);
  registry.gauge("threads").set(8.0);
  obs::Histogram& h = registry.histogram(
      "latency_us", obs::HistogramSpec::log_scale(1.0, 1e3, 5),
      {{"op", "realign\"n\\"}});  // labels with escapable characters
  h.record(0.5);
  h.record(12.0);
  h.record(5e6);  // overflow
  registry.histogram("empty_us", obs::HistogramSpec::linear(0.0, 1.0, 2));
  return registry;
}

TEST(ObsExportTest, PrometheusRoundTripIsByteStable) {
  obs::Registry registry;
  const std::string text = obs::to_prometheus(fill_sample(registry));
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);

  // One # TYPE header per family even with several label sets.
  std::size_t type_headers = 0, pos = 0;
  while ((pos = text.find("# TYPE requests_total", pos)) != std::string::npos) {
    ++type_headers;
    ++pos;
  }
  EXPECT_EQ(type_headers, 1u);

  obs::Registry imported;
  ASSERT_TRUE(obs::from_prometheus(text, imported));
  // Everything the format can carry survives: re-export is byte-identical.
  EXPECT_EQ(obs::to_prometheus(imported), text);
}

TEST(ObsExportTest, JsonlRoundTripIsByteStable) {
  obs::Registry registry;
  const std::string text = obs::to_jsonl(fill_sample(registry));
  obs::Registry imported;
  ASSERT_TRUE(obs::from_jsonl(text, imported));
  EXPECT_EQ(obs::to_jsonl(imported), text);
  // JSONL keeps the exact extrema (Prometheus cannot).
  const obs::Histogram& h = imported.histogram(
      "latency_us", obs::HistogramSpec::log_scale(1.0, 1e3, 5),
      {{"op", "realign\"n\\"}});
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 5e6);
}

TEST(ObsExportTest, ParsersFailClosedOnGarbage) {
  obs::Registry registry;
  EXPECT_FALSE(obs::from_prometheus("not a metric line\n", registry));
  EXPECT_FALSE(obs::from_prometheus("unknown_kind_metric 3\n", registry));
  EXPECT_FALSE(obs::from_jsonl("{\"kind\":\"widget\",\"name\":\"x\"}\n",
                               registry));
  EXPECT_FALSE(obs::from_jsonl("truncated\n", registry));
  EXPECT_TRUE(obs::from_jsonl("", registry));  // empty input is fine
}

// ---- Determinism + transparency on the §5.4 evaluator ----

motion::Trace drifting_trace(double mps) {
  motion::Trace trace;
  for (int i = 0; i <= 200; ++i) {
    const double t_s = i * 0.01;
    trace.samples.push_back(
        {static_cast<util::SimTimeUs>(t_s * 1e6),
         geom::Pose{geom::Mat3::identity(), {mps * t_s, 0.0, 0.0}}});
  }
  return trace;
}

TEST(ObsDeterminismTest, EvalMetricsBitIdenticalAcrossThreadCounts) {
  std::vector<motion::Trace> traces;
  for (int i = 0; i < 9; ++i) traces.push_back(drifting_trace(0.04 * i));
  const link::SlotEvalConfig config;

  obs::Registry baseline;
  link::evaluate_dataset(traces, config, util::ThreadPool::serial(),
                         &baseline);
  const std::string expected = obs::to_jsonl(baseline);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(baseline.counter("eval_traces_total").value(), 0u);
    EXPECT_GT(baseline.counter("eval_bisect_iters_total").value(), 0u);
  } else {
    // OFF builds null the registry before the hot loop: nothing recorded,
    // and the byte-equality below degenerates to empty == empty.
    EXPECT_TRUE(baseline.empty());
  }

  for (std::size_t threads : {2u, 8u}) {
    util::ThreadPool pool(threads);
    obs::Registry registry;
    link::evaluate_dataset(traces, config, pool, &registry);
    // Byte-equal JSONL covers every counter, bucket, and extremum.
    EXPECT_EQ(obs::to_jsonl(registry), expected) << threads << " threads";
  }
}

TEST(ObsDeterminismTest, InstrumentationDoesNotChangeSimOutput) {
  std::vector<motion::Trace> traces;
  for (int i = 0; i < 5; ++i) traces.push_back(drifting_trace(0.05 * i));
  const link::SlotEvalConfig config;

  const link::DatasetEvalResult plain =
      link::evaluate_dataset(traces, config, util::ThreadPool::serial());
  obs::Registry registry;
  const link::DatasetEvalResult observed = link::evaluate_dataset(
      traces, config, util::ThreadPool::serial(), &registry);

  EXPECT_EQ(observed.per_trace_off_fraction, plain.per_trace_off_fraction);
  EXPECT_EQ(observed.pooled.total_slots, plain.pooled.total_slots);
  EXPECT_EQ(observed.pooled.off_slots, plain.pooled.off_slots);
  EXPECT_EQ(observed.pooled.off_per_dirty_frame,
            plain.pooled.off_per_dirty_frame);
  EXPECT_EQ(observed.events, plain.events);
}

// ---- EventCounter rebase + MetricsHook ----

class NullProcess final : public event::Process {
 public:
  void handle(event::Scheduler&, const event::Event&) override {}
};

TEST(ObsEventCounterTest, MatchesLegacyMapSemantics) {
  event::Scheduler sched;
  event::EventCounter counter;
  sched.add_hook(&counter);
  NullProcess process;
  const event::ProcessId target = sched.add_process(&process);

  // The legacy tally this class replaced: a std::map<EventType, uint64>
  // bumped per dispatch.  Replay the same traffic into both.
  std::map<event::EventType, std::uint64_t> legacy;
  const event::EventType types[] = {3, 1, 3, 7, 3, 1};
  for (const event::EventType type : types) {
    event::Event ev;
    ev.time = sched.now() + 10;
    ev.type = type;
    ev.target = target;
    sched.schedule(ev);
    ++legacy[type];
  }
  event::Event cancelled_ev;
  cancelled_ev.time = sched.now() + 5;
  cancelled_ev.type = 9;
  cancelled_ev.target = target;
  const event::Timer timer = sched.schedule(cancelled_ev);
  sched.cancel(timer);
  sched.run();

  EXPECT_EQ(counter.scheduled(), 7u);
  EXPECT_EQ(counter.cancelled(), 1u);
  EXPECT_EQ(counter.dispatched(), 6u);
  EXPECT_EQ(counter.histogram(), legacy);  // same shape, same counts
  EXPECT_EQ(counter.dispatched(3), 3u);
  EXPECT_EQ(counter.dispatched(9), 0u);  // cancelled, never dispatched
  EXPECT_EQ(counter.dispatched(event::EventCounter::kMaxTypes + 5), 0u);
}

TEST(ObsMetricsHookTest, CountsSchedulerTrafficPerPlane) {
  obs::Registry registry;
  event::Scheduler sched;
  event::MetricsHook hook(registry, "test_plane");
  sched.add_hook(&hook);
  NullProcess process;
  const event::ProcessId target = sched.add_process(&process);

  for (int i = 0; i < 4; ++i) {
    event::Event ev;
    ev.time = sched.now() + i;
    ev.target = target;
    sched.schedule(ev);
  }
  sched.run();

  const obs::Labels plane{{"plane", "test_plane"}};
  EXPECT_EQ(registry.counter("events_scheduled_total", plane).value(), 4u);
  EXPECT_EQ(registry.counter("events_dispatched_total", plane).value(), 4u);
  EXPECT_EQ(registry.counter("events_cancelled_total", plane).value(), 0u);
}

}  // namespace
}  // namespace cyclops

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.hpp"
#include "core/evaluation.hpp"
#include "core/kspace_calibration.hpp"
#include "galvo/factory.hpp"
#include "util/units.hpp"

namespace cyclops::core {
namespace {

// Shared fixture: calibrating is expensive, do it once per suite.
class CalibrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    proto_ = new sim::Prototype(
        sim::make_prototype(42, sim::prototype_10g_config()));
    util::Rng rng(7);
    calib_ = new CalibrationResult(
        calibrate_prototype(*proto_, CalibrationConfig{}, rng));
  }
  static void TearDownTestSuite() {
    delete calib_;
    delete proto_;
    calib_ = nullptr;
    proto_ = nullptr;
  }

  static sim::Prototype* proto_;
  static CalibrationResult* calib_;
};

sim::Prototype* CalibrationFixture::proto_ = nullptr;
CalibrationResult* CalibrationFixture::calib_ = nullptr;

// ---- Stage 1 ----

TEST(BoardSamplingTest, CollectsInteriorGridPoints) {
  util::Rng rng(1);
  sim::Prototype proto = sim::make_prototype(3, sim::prototype_10g_config());
  const galvo::GalvoMirror gm(proto.tx_galvo_truth, galvo::gvs102_spec());
  const auto samples =
      collect_board_samples(gm, proto.k_from_tx_gma, BoardConfig{}, rng);
  // 19 x 14 interior points of the 20 x 15 board (§4.1: ~266).
  EXPECT_EQ(samples.size(), 266u);
}

TEST(BoardSamplingTest, VoltagesActuallyHitRecordedPoints) {
  util::Rng rng(2);
  sim::Prototype proto = sim::make_prototype(5, sim::prototype_10g_config());
  const galvo::GalvoMirror gm(proto.rx_galvo_truth, galvo::gvs102_spec());
  BoardConfig config;
  config.alignment_sigma = 0.0;  // perfect hand alignment for this check
  const auto samples =
      collect_board_samples(gm, proto.k_from_rx_gma, config, rng);
  const GmaModel truth_in_k =
      GmaModel(gm.params()).transformed(proto.k_from_rx_gma);
  for (std::size_t i = 0; i < samples.size(); i += 37) {
    EXPECT_LT(board_error(truth_in_k, samples[i]), 0.2e-3);
  }
}

TEST_F(CalibrationFixture, Stage1ErrorsMatchTable2Band) {
  // Table 2: first-stage avg 1.24 / 1.90 mm, max 5.30 / 5.41 mm.
  EXPECT_GT(calib_->tx_stage1.avg_error_m, 0.3e-3);
  EXPECT_LT(calib_->tx_stage1.avg_error_m, 2.5e-3);
  EXPECT_LT(calib_->tx_stage1.max_error_m, 8e-3);
  EXPECT_GT(calib_->rx_stage1.avg_error_m, 0.3e-3);
  EXPECT_LT(calib_->rx_stage1.avg_error_m, 2.5e-3);
}

TEST_F(CalibrationFixture, Stage1GeneralizesToHeldOutPoints) {
  // The paper notes the 2-D board samples still pin down a general 3-D
  // model (thanks to the distortion effect).  Check: the learned model
  // predicts the physical beam on a *different* board distance.
  const GmaModel learned = calib_->tx_stage1.model;
  const GmaModel truth =
      GmaModel(proto_->tx_galvo_truth).transformed(proto_->k_from_tx_gma);
  // Compare beam hits on a plane parallel to, but well off, the training
  // board (z = 0.5 m).  Point-at-arclength comparisons would be polluted
  // by the harmless gauge freedom of sliding the origin along the beam.
  const geom::Plane test_plane{{0, 0, 0.5}, {0, 0, 1}};
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double v1 = rng.uniform(-4.0, 4.0);
    const double v2 = rng.uniform(-3.0, 3.0);
    const auto a = learned.trace(v1, v2);
    const auto b = truth.trace(v1, v2);
    ASSERT_TRUE(a && b);
    const auto ta = geom::intersect(*a, test_plane, false);
    const auto tb = geom::intersect(*b, test_plane, false);
    ASSERT_TRUE(ta && tb);
    // Extrapolating a full meter off the training plane costs accuracy:
    // expect sub-centimeter, not the ~1 mm seen on the board itself.
    EXPECT_LT(geom::distance(a->at(*ta), b->at(*tb)), 10e-3);
  }
}

TEST(KSpaceFitTest, RecoversExactModelFromNoiselessData) {
  util::Rng rng(11);
  sim::Prototype proto = sim::make_prototype(9, sim::prototype_10g_config());
  const galvo::GalvoMirror gm(proto.tx_galvo_truth, galvo::gvs102_spec());
  BoardConfig config;
  config.alignment_sigma = 0.0;
  const auto samples =
      collect_board_samples(gm, proto.k_from_tx_gma, config, rng);
  const auto report = fit_kspace_model(
      samples, nominal_kspace_guess(proto.config.board_distance));
  EXPECT_LT(report.avg_error_m, 0.1e-3);
}

TEST(KSpaceFitTest, NominalGuessStartsWorseThanFit) {
  util::Rng rng(13);
  sim::Prototype proto = sim::make_prototype(15, sim::prototype_10g_config());
  const galvo::GalvoMirror gm(proto.tx_galvo_truth, galvo::gvs102_spec());
  const auto samples =
      collect_board_samples(gm, proto.k_from_tx_gma, BoardConfig{}, rng);
  const GmaModel guess = nominal_kspace_guess(proto.config.board_distance);

  double guess_error = 0.0;
  for (const auto& s : samples) guess_error += board_error(guess, s);
  guess_error /= samples.size();

  const auto report = fit_kspace_model(samples, guess);
  EXPECT_LT(report.avg_error_m, guess_error / 2.0);
}

// ---- Stage 2 ----

TEST_F(CalibrationFixture, Stage2CollectsRequestedSamples) {
  EXPECT_GE(calib_->stage2_samples.size(), 25u);
  EXPECT_LE(calib_->stage2_samples.size(), 30u);
}

TEST_F(CalibrationFixture, Stage2ResidualIsMillimetric) {
  EXPECT_LT(calib_->mapping.avg_coincidence_m, 12e-3);
  EXPECT_GT(calib_->mapping.avg_coincidence_m, 0.1e-3);
}

TEST_F(CalibrationFixture, LearnedMappingNearTruth) {
  // The learned 6-DoF maps should land close to the hidden truth (they
  // absorb tracker noise and rig flex, so a few mm / mrad is expected).
  EXPECT_LT(geom::translation_distance(calib_->mapping.map_tx,
                                       proto_->true_map_tx),
            20e-3);
  EXPECT_LT(geom::rotation_distance(calib_->mapping.map_tx,
                                    proto_->true_map_tx),
            20e-3);
  EXPECT_LT(geom::translation_distance(calib_->mapping.map_rx,
                                       proto_->true_map_rx),
            25e-3);
}

TEST_F(CalibrationFixture, CombinedErrorsMatchTable2Band) {
  // Table 2 combined: TX 2.18 mm avg / 4.07 max; RX 4.54 avg / 6.50 max.
  util::Rng rng(23);
  const CombinedErrors errors =
      evaluate_combined_errors(*proto_, *calib_, 12, 0.15, 0.1, rng);
  ASSERT_GT(errors.tx.samples, 5);
  EXPECT_LT(errors.tx.avg_m, 8e-3);
  // Bound covers cross-seed calibration variance (typical ~2-5 mm, worst
  // draws ~12-15 mm; the paper itself reports 4.54 avg / 6.50 max).
  EXPECT_LT(errors.rx.avg_m, 20e-3);
  EXPECT_GT(errors.tx.avg_m, 0.05e-3);
}

TEST_F(CalibrationFixture, LemmaPointsCoincideAtAlignment) {
  // Lemma 1, evaluated with the learned models on real aligned tuples.
  const GmaModel tx_vr =
      calib_->tx_stage1.model.transformed(calib_->mapping.map_tx);
  for (const auto& sample : calib_->stage2_samples) {
    const GmaModel rx_vr = calib_->rx_stage1.model.transformed(
        sample.psi * calib_->mapping.map_rx);
    const LemmaPoints pts = lemma_points(tx_vr, rx_vr, sample.voltages);
    ASSERT_TRUE(pts.valid);
    EXPECT_LT(pts.coincidence_error(), 25e-3);
  }
}

TEST(MappingFitTest, PerfectDataRecoversMapping) {
  // Synthetic check with zero noise anywhere: Stage 2 must recover the
  // exact mapping poses.
  sim::PrototypeConfig config = sim::prototype_10g_config();
  config.rig_flex_position_sigma = 0.0;
  config.rig_flex_angle_sigma = 0.0;
  config.tracker.position_noise_m = 0.0;
  config.tracker.orientation_noise_rad = 0.0;
  sim::Prototype proto = sim::make_prototype(31, config);

  // True models (skip Stage-1 noise too).
  const GmaModel tx_k =
      GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma);
  const GmaModel rx_k =
      GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma);

  util::Rng rng(37);
  ExhaustiveAligner aligner;
  std::vector<AlignedSample> tuples;
  sim::Voltages hint{};
  for (int i = 0; i < 12; ++i) {
    const geom::Pose pose =
        random_rig_pose(proto.nominal_rig_pose, 0.15, 0.1, rng);
    proto.scene.set_rig_pose(pose);
    const AlignResult aligned = aligner.align(proto.scene, hint);
    ASSERT_TRUE(aligned.converged()) << to_string(aligned.status);
    hint = aligned.voltages;
    tuples.push_back({aligned.voltages, proto.tracker.report(0, pose).pose});
  }

  const geom::Pose tx_guess =
      proto.true_map_tx *
      geom::Pose{geom::Mat3::rotation({0, 0, 1}, 0.02), {0.01, -0.01, 0.02}};
  const geom::Pose rx_guess =
      proto.true_map_rx *
      geom::Pose{geom::Mat3::rotation({1, 0, 0}, -0.02), {-0.01, 0.01, 0.01}};
  const MappingFitReport report =
      fit_mapping(tx_k, rx_k, tuples, tx_guess, rx_guess);

  EXPECT_LT(report.avg_coincidence_m, 1e-3);
  EXPECT_LT(geom::translation_distance(report.map_tx, proto.true_map_tx),
            3e-3);
  EXPECT_LT(geom::rotation_distance(report.map_tx, proto.true_map_tx), 3e-3);
}

}  // namespace
}  // namespace cyclops::core

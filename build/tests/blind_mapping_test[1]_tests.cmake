add_test([=[BlindMappingTest.SelfCalibratesWithoutManualMeasurement]=]  /root/repo/build/tests/blind_mapping_test [==[--gtest_filter=BlindMappingTest.SelfCalibratesWithoutManualMeasurement]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[BlindMappingTest.SelfCalibratesWithoutManualMeasurement]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  blind_mapping_test_TESTS BlindMappingTest.SelfCalibratesWithoutManualMeasurement)

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/optics_test[1]_include.cmake")
include("/root/repo/build/tests/galvo_test[1]_include.cmake")
include("/root/repo/build/tests/tracking_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_gprime_test[1]_include.cmake")
include("/root/repo/build/tests/core_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/core_pointing_test[1]_include.cmake")
include("/root/repo/build/tests/motion_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/wave_optics_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/opt_annealing_test[1]_include.cmake")
include("/root/repo/build/tests/blind_mapping_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_stream_test[1]_include.cmake")
include("/root/repo/build/tests/multi_tx_test[1]_include.cmake")
include("/root/repo/build/tests/aligner_test[1]_include.cmake")
include("/root/repo/build/tests/tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/drift_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/core_gprime_test.dir/core_gprime_test.cpp.o"
  "CMakeFiles/core_gprime_test.dir/core_gprime_test.cpp.o.d"
  "core_gprime_test"
  "core_gprime_test.pdb"
  "core_gprime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gprime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

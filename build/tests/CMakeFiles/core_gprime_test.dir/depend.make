# Empty dependencies file for core_gprime_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for multi_tx_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/multi_tx_test.dir/multi_tx_test.cpp.o"
  "CMakeFiles/multi_tx_test.dir/multi_tx_test.cpp.o.d"
  "multi_tx_test"
  "multi_tx_test.pdb"
  "multi_tx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/aligner_test.dir/aligner_test.cpp.o"
  "CMakeFiles/aligner_test.dir/aligner_test.cpp.o.d"
  "aligner_test"
  "aligner_test.pdb"
  "aligner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for blind_mapping_test.
# This may be replaced when dependencies are built.

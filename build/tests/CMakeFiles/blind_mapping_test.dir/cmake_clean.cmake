file(REMOVE_RECURSE
  "CMakeFiles/blind_mapping_test.dir/blind_mapping_test.cpp.o"
  "CMakeFiles/blind_mapping_test.dir/blind_mapping_test.cpp.o.d"
  "blind_mapping_test"
  "blind_mapping_test.pdb"
  "blind_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blind_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

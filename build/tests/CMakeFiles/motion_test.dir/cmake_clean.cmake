file(REMOVE_RECURSE
  "CMakeFiles/motion_test.dir/motion_test.cpp.o"
  "CMakeFiles/motion_test.dir/motion_test.cpp.o.d"
  "motion_test"
  "motion_test.pdb"
  "motion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

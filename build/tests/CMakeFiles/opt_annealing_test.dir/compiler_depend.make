# Empty compiler generated dependencies file for opt_annealing_test.
# This may be replaced when dependencies are built.

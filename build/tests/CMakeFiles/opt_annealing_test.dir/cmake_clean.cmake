file(REMOVE_RECURSE
  "CMakeFiles/opt_annealing_test.dir/opt_annealing_test.cpp.o"
  "CMakeFiles/opt_annealing_test.dir/opt_annealing_test.cpp.o.d"
  "opt_annealing_test"
  "opt_annealing_test.pdb"
  "opt_annealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geom_test.cpp" "tests/CMakeFiles/geom_test.dir/geom_test.cpp.o" "gcc" "tests/CMakeFiles/geom_test.dir/geom_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/cyclops_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cyclops_core.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cyclops_link.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/cyclops_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cyclops_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cyclops_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/cyclops_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/galvo/CMakeFiles/cyclops_galvo.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/cyclops_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cyclops_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

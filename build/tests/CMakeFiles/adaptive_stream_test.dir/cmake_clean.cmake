file(REMOVE_RECURSE
  "CMakeFiles/adaptive_stream_test.dir/adaptive_stream_test.cpp.o"
  "CMakeFiles/adaptive_stream_test.dir/adaptive_stream_test.cpp.o.d"
  "adaptive_stream_test"
  "adaptive_stream_test.pdb"
  "adaptive_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

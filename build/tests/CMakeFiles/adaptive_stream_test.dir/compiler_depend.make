# Empty compiler generated dependencies file for adaptive_stream_test.
# This may be replaced when dependencies are built.

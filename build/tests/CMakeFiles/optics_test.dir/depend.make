# Empty dependencies file for optics_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for galvo_test.
# This may be replaced when dependencies are built.

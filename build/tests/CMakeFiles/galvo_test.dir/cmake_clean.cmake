file(REMOVE_RECURSE
  "CMakeFiles/galvo_test.dir/galvo_test.cpp.o"
  "CMakeFiles/galvo_test.dir/galvo_test.cpp.o.d"
  "galvo_test"
  "galvo_test.pdb"
  "galvo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galvo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

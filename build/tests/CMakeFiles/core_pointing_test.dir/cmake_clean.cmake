file(REMOVE_RECURSE
  "CMakeFiles/core_pointing_test.dir/core_pointing_test.cpp.o"
  "CMakeFiles/core_pointing_test.dir/core_pointing_test.cpp.o.d"
  "core_pointing_test"
  "core_pointing_test.pdb"
  "core_pointing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pointing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_pointing_test.
# This may be replaced when dependencies are built.

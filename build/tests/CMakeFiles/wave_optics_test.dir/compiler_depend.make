# Empty compiler generated dependencies file for wave_optics_test.
# This may be replaced when dependencies are built.

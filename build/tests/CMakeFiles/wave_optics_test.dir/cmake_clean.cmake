file(REMOVE_RECURSE
  "CMakeFiles/wave_optics_test.dir/wave_optics_test.cpp.o"
  "CMakeFiles/wave_optics_test.dir/wave_optics_test.cpp.o.d"
  "wave_optics_test"
  "wave_optics_test.pdb"
  "wave_optics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_optics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/micro_pointing"
  "../bench/micro_pointing.pdb"
  "CMakeFiles/micro_pointing.dir/micro_pointing.cpp.o"
  "CMakeFiles/micro_pointing.dir/micro_pointing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for micro_pointing.
# This may be replaced when dependencies are built.

# Empty dependencies file for tp_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/tp_accuracy"
  "../bench/tp_accuracy.pdb"
  "CMakeFiles/tp_accuracy.dir/tp_accuracy.cpp.o"
  "CMakeFiles/tp_accuracy.dir/tp_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for coverage_planner.
# This may be replaced when dependencies are built.

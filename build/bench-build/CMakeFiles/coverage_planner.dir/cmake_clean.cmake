file(REMOVE_RECURSE
  "../bench/coverage_planner"
  "../bench/coverage_planner.pdb"
  "CMakeFiles/coverage_planner.dir/coverage_planner.cpp.o"
  "CMakeFiles/coverage_planner.dir/coverage_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/table1_link_tolerance"
  "../bench/table1_link_tolerance.pdb"
  "CMakeFiles/table1_link_tolerance.dir/table1_link_tolerance.cpp.o"
  "CMakeFiles/table1_link_tolerance.dir/table1_link_tolerance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_link_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

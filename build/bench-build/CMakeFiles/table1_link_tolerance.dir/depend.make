# Empty dependencies file for table1_link_tolerance.
# This may be replaced when dependencies are built.

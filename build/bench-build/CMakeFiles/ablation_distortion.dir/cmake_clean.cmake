file(REMOVE_RECURSE
  "../bench/ablation_distortion"
  "../bench/ablation_distortion.pdb"
  "CMakeFiles/ablation_distortion.dir/ablation_distortion.cpp.o"
  "CMakeFiles/ablation_distortion.dir/ablation_distortion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_distortion.
# This may be replaced when dependencies are built.

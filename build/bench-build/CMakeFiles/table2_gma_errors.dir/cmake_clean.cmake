file(REMOVE_RECURSE
  "../bench/table2_gma_errors"
  "../bench/table2_gma_errors.pdb"
  "CMakeFiles/table2_gma_errors.dir/table2_gma_errors.cpp.o"
  "CMakeFiles/table2_gma_errors.dir/table2_gma_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gma_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

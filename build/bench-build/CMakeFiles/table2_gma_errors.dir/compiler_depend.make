# Empty compiler generated dependencies file for table2_gma_errors.
# This may be replaced when dependencies are built.

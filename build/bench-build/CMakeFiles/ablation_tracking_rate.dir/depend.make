# Empty dependencies file for ablation_tracking_rate.
# This may be replaced when dependencies are built.

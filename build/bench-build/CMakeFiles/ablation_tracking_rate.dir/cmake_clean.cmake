file(REMOVE_RECURSE
  "../bench/ablation_tracking_rate"
  "../bench/ablation_tracking_rate.pdb"
  "CMakeFiles/ablation_tracking_rate.dir/ablation_tracking_rate.cpp.o"
  "CMakeFiles/ablation_tracking_rate.dir/ablation_tracking_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracking_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

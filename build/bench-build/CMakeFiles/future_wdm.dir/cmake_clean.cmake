file(REMOVE_RECURSE
  "../bench/future_wdm"
  "../bench/future_wdm.pdb"
  "CMakeFiles/future_wdm.dir/future_wdm.cpp.o"
  "CMakeFiles/future_wdm.dir/future_wdm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_wdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

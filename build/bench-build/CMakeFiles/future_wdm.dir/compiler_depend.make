# Empty compiler generated dependencies file for future_wdm.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for roomscale_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/roomscale_study"
  "../bench/roomscale_study.pdb"
  "CMakeFiles/roomscale_study.dir/roomscale_study.cpp.o"
  "CMakeFiles/roomscale_study.dir/roomscale_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roomscale_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

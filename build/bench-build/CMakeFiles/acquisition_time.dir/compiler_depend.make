# Empty compiler generated dependencies file for acquisition_time.
# This may be replaced when dependencies are built.

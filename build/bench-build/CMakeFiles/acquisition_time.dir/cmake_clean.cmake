file(REMOVE_RECURSE
  "../bench/acquisition_time"
  "../bench/acquisition_time.pdb"
  "CMakeFiles/acquisition_time.dir/acquisition_time.cpp.o"
  "CMakeFiles/acquisition_time.dir/acquisition_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquisition_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

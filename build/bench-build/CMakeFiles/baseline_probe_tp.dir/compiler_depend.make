# Empty compiler generated dependencies file for baseline_probe_tp.
# This may be replaced when dependencies are built.

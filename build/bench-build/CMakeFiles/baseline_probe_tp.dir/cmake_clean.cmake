file(REMOVE_RECURSE
  "../bench/baseline_probe_tp"
  "../bench/baseline_probe_tp.pdb"
  "CMakeFiles/baseline_probe_tp.dir/baseline_probe_tp.cpp.o"
  "CMakeFiles/baseline_probe_tp.dir/baseline_probe_tp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_probe_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

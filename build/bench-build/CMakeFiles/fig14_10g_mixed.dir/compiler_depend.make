# Empty compiler generated dependencies file for fig14_10g_mixed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig14_10g_mixed"
  "../bench/fig14_10g_mixed.pdb"
  "CMakeFiles/fig14_10g_mixed.dir/fig14_10g_mixed.cpp.o"
  "CMakeFiles/fig14_10g_mixed.dir/fig14_10g_mixed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_10g_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig15_25g"
  "../bench/fig15_25g.pdb"
  "CMakeFiles/fig15_25g.dir/fig15_25g.cpp.o"
  "CMakeFiles/fig15_25g.dir/fig15_25g.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_25g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_25g.
# This may be replaced when dependencies are built.

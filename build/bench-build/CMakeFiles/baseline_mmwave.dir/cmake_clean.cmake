file(REMOVE_RECURSE
  "../bench/baseline_mmwave"
  "../bench/baseline_mmwave.pdb"
  "CMakeFiles/baseline_mmwave.dir/baseline_mmwave.cpp.o"
  "CMakeFiles/baseline_mmwave.dir/baseline_mmwave.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_mmwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for baseline_mmwave.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig13_10g_pure.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig13_10g_pure"
  "../bench/fig13_10g_pure.pdb"
  "CMakeFiles/fig13_10g_pure.dir/fig13_10g_pure.cpp.o"
  "CMakeFiles/fig13_10g_pure.dir/fig13_10g_pure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_10g_pure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig16_trace_cdf"
  "../bench/fig16_trace_cdf.pdb"
  "CMakeFiles/fig16_trace_cdf.dir/fig16_trace_cdf.cpp.o"
  "CMakeFiles/fig16_trace_cdf.dir/fig16_trace_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_trace_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_direct_gprime.
# This may be replaced when dependencies are built.

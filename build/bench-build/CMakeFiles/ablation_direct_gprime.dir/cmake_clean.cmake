file(REMOVE_RECURSE
  "../bench/ablation_direct_gprime"
  "../bench/ablation_direct_gprime.pdb"
  "CMakeFiles/ablation_direct_gprime.dir/ablation_direct_gprime.cpp.o"
  "CMakeFiles/ablation_direct_gprime.dir/ablation_direct_gprime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direct_gprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

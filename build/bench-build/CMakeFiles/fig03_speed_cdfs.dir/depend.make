# Empty dependencies file for fig03_speed_cdfs.
# This may be replaced when dependencies are built.

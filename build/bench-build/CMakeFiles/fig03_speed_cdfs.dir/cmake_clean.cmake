file(REMOVE_RECURSE
  "../bench/fig03_speed_cdfs"
  "../bench/fig03_speed_cdfs.pdb"
  "CMakeFiles/fig03_speed_cdfs.dir/fig03_speed_cdfs.cpp.o"
  "CMakeFiles/fig03_speed_cdfs.dir/fig03_speed_cdfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_speed_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_beam_diameter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig11_beam_diameter"
  "../bench/fig11_beam_diameter.pdb"
  "CMakeFiles/fig11_beam_diameter.dir/fig11_beam_diameter.cpp.o"
  "CMakeFiles/fig11_beam_diameter.dir/fig11_beam_diameter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_beam_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/conv_pointing"
  "../bench/conv_pointing.pdb"
  "CMakeFiles/conv_pointing.dir/conv_pointing.cpp.o"
  "CMakeFiles/conv_pointing.dir/conv_pointing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_pointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

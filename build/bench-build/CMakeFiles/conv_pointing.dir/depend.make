# Empty dependencies file for conv_pointing.
# This may be replaced when dependencies are built.

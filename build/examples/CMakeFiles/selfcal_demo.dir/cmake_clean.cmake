file(REMOVE_RECURSE
  "CMakeFiles/selfcal_demo.dir/selfcal_demo.cpp.o"
  "CMakeFiles/selfcal_demo.dir/selfcal_demo.cpp.o.d"
  "selfcal_demo"
  "selfcal_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfcal_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

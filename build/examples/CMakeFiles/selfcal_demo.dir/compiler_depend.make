# Empty compiler generated dependencies file for selfcal_demo.
# This may be replaced when dependencies are built.

# Empty dependencies file for handover_demo.
# This may be replaced when dependencies are built.

# Empty dependencies file for vr_session.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vr_session.dir/vr_session.cpp.o"
  "CMakeFiles/vr_session.dir/vr_session.cpp.o.d"
  "vr_session"
  "vr_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

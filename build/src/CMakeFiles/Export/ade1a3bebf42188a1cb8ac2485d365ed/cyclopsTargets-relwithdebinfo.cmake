#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "cyclops::cyclops_util" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_util.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_util )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_util "${_IMPORT_PREFIX}/lib/libcyclops_util.a" )

# Import target "cyclops::cyclops_geom" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_geom APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_geom PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_geom.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_geom )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_geom "${_IMPORT_PREFIX}/lib/libcyclops_geom.a" )

# Import target "cyclops::cyclops_opt" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_opt APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_opt PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_opt.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_opt )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_opt "${_IMPORT_PREFIX}/lib/libcyclops_opt.a" )

# Import target "cyclops::cyclops_optics" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_optics APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_optics PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_optics.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_optics )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_optics "${_IMPORT_PREFIX}/lib/libcyclops_optics.a" )

# Import target "cyclops::cyclops_galvo" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_galvo APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_galvo PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_galvo.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_galvo )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_galvo "${_IMPORT_PREFIX}/lib/libcyclops_galvo.a" )

# Import target "cyclops::cyclops_tracking" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_tracking APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_tracking PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_tracking.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_tracking )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_tracking "${_IMPORT_PREFIX}/lib/libcyclops_tracking.a" )

# Import target "cyclops::cyclops_sim" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_sim.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_sim )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_sim "${_IMPORT_PREFIX}/lib/libcyclops_sim.a" )

# Import target "cyclops::cyclops_core" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_core.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_core )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_core "${_IMPORT_PREFIX}/lib/libcyclops_core.a" )

# Import target "cyclops::cyclops_motion" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_motion APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_motion PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_motion.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_motion )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_motion "${_IMPORT_PREFIX}/lib/libcyclops_motion.a" )

# Import target "cyclops::cyclops_net" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_net.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_net )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_net "${_IMPORT_PREFIX}/lib/libcyclops_net.a" )

# Import target "cyclops::cyclops_baseline" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_baseline APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_baseline PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_baseline.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_baseline )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_baseline "${_IMPORT_PREFIX}/lib/libcyclops_baseline.a" )

# Import target "cyclops::cyclops_link" for configuration "RelWithDebInfo"
set_property(TARGET cyclops::cyclops_link APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(cyclops::cyclops_link PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libcyclops_link.a"
  )

list(APPEND _cmake_import_check_targets cyclops::cyclops_link )
list(APPEND _cmake_import_check_files_for_cyclops::cyclops_link "${_IMPORT_PREFIX}/lib/libcyclops_link.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_net.dir/adaptive_stream.cpp.o"
  "CMakeFiles/cyclops_net.dir/adaptive_stream.cpp.o.d"
  "CMakeFiles/cyclops_net.dir/frame_source.cpp.o"
  "CMakeFiles/cyclops_net.dir/frame_source.cpp.o.d"
  "CMakeFiles/cyclops_net.dir/streamer.cpp.o"
  "CMakeFiles/cyclops_net.dir/streamer.cpp.o.d"
  "libcyclops_net.a"
  "libcyclops_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcyclops_net.a"
)

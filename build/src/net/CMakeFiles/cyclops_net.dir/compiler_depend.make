# Empty compiler generated dependencies file for cyclops_net.
# This may be replaced when dependencies are built.

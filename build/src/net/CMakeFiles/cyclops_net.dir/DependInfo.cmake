
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/adaptive_stream.cpp" "src/net/CMakeFiles/cyclops_net.dir/adaptive_stream.cpp.o" "gcc" "src/net/CMakeFiles/cyclops_net.dir/adaptive_stream.cpp.o.d"
  "/root/repo/src/net/frame_source.cpp" "src/net/CMakeFiles/cyclops_net.dir/frame_source.cpp.o" "gcc" "src/net/CMakeFiles/cyclops_net.dir/frame_source.cpp.o.d"
  "/root/repo/src/net/streamer.cpp" "src/net/CMakeFiles/cyclops_net.dir/streamer.cpp.o" "gcc" "src/net/CMakeFiles/cyclops_net.dir/streamer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

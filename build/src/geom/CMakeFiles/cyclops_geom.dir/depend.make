# Empty dependencies file for cyclops_geom.
# This may be replaced when dependencies are built.

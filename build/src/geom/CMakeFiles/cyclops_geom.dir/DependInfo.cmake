
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/mat3.cpp" "src/geom/CMakeFiles/cyclops_geom.dir/mat3.cpp.o" "gcc" "src/geom/CMakeFiles/cyclops_geom.dir/mat3.cpp.o.d"
  "/root/repo/src/geom/pose.cpp" "src/geom/CMakeFiles/cyclops_geom.dir/pose.cpp.o" "gcc" "src/geom/CMakeFiles/cyclops_geom.dir/pose.cpp.o.d"
  "/root/repo/src/geom/quat.cpp" "src/geom/CMakeFiles/cyclops_geom.dir/quat.cpp.o" "gcc" "src/geom/CMakeFiles/cyclops_geom.dir/quat.cpp.o.d"
  "/root/repo/src/geom/reflect.cpp" "src/geom/CMakeFiles/cyclops_geom.dir/reflect.cpp.o" "gcc" "src/geom/CMakeFiles/cyclops_geom.dir/reflect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

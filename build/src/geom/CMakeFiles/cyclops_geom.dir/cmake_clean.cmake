file(REMOVE_RECURSE
  "CMakeFiles/cyclops_geom.dir/mat3.cpp.o"
  "CMakeFiles/cyclops_geom.dir/mat3.cpp.o.d"
  "CMakeFiles/cyclops_geom.dir/pose.cpp.o"
  "CMakeFiles/cyclops_geom.dir/pose.cpp.o.d"
  "CMakeFiles/cyclops_geom.dir/quat.cpp.o"
  "CMakeFiles/cyclops_geom.dir/quat.cpp.o.d"
  "CMakeFiles/cyclops_geom.dir/reflect.cpp.o"
  "CMakeFiles/cyclops_geom.dir/reflect.cpp.o.d"
  "libcyclops_geom.a"
  "libcyclops_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcyclops_geom.a"
)

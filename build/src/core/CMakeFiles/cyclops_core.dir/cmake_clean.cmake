file(REMOVE_RECURSE
  "CMakeFiles/cyclops_core.dir/calibration.cpp.o"
  "CMakeFiles/cyclops_core.dir/calibration.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/drift_monitor.cpp.o"
  "CMakeFiles/cyclops_core.dir/drift_monitor.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/evaluation.cpp.o"
  "CMakeFiles/cyclops_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/exhaustive_aligner.cpp.o"
  "CMakeFiles/cyclops_core.dir/exhaustive_aligner.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/gma_model.cpp.o"
  "CMakeFiles/cyclops_core.dir/gma_model.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/gprime.cpp.o"
  "CMakeFiles/cyclops_core.dir/gprime.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/kspace_calibration.cpp.o"
  "CMakeFiles/cyclops_core.dir/kspace_calibration.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/mapping_calibration.cpp.o"
  "CMakeFiles/cyclops_core.dir/mapping_calibration.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/persistence.cpp.o"
  "CMakeFiles/cyclops_core.dir/persistence.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/pointing.cpp.o"
  "CMakeFiles/cyclops_core.dir/pointing.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/tolerance.cpp.o"
  "CMakeFiles/cyclops_core.dir/tolerance.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/tp_controller.cpp.o"
  "CMakeFiles/cyclops_core.dir/tp_controller.cpp.o.d"
  "libcyclops_core.a"
  "libcyclops_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/cyclops_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/drift_monitor.cpp" "src/core/CMakeFiles/cyclops_core.dir/drift_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/drift_monitor.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/cyclops_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/exhaustive_aligner.cpp" "src/core/CMakeFiles/cyclops_core.dir/exhaustive_aligner.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/exhaustive_aligner.cpp.o.d"
  "/root/repo/src/core/gma_model.cpp" "src/core/CMakeFiles/cyclops_core.dir/gma_model.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/gma_model.cpp.o.d"
  "/root/repo/src/core/gprime.cpp" "src/core/CMakeFiles/cyclops_core.dir/gprime.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/gprime.cpp.o.d"
  "/root/repo/src/core/kspace_calibration.cpp" "src/core/CMakeFiles/cyclops_core.dir/kspace_calibration.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/kspace_calibration.cpp.o.d"
  "/root/repo/src/core/mapping_calibration.cpp" "src/core/CMakeFiles/cyclops_core.dir/mapping_calibration.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/mapping_calibration.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/cyclops_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/persistence.cpp.o.d"
  "/root/repo/src/core/pointing.cpp" "src/core/CMakeFiles/cyclops_core.dir/pointing.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/pointing.cpp.o.d"
  "/root/repo/src/core/tolerance.cpp" "src/core/CMakeFiles/cyclops_core.dir/tolerance.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/tolerance.cpp.o.d"
  "/root/repo/src/core/tp_controller.cpp" "src/core/CMakeFiles/cyclops_core.dir/tp_controller.cpp.o" "gcc" "src/core/CMakeFiles/cyclops_core.dir/tp_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cyclops_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/galvo/CMakeFiles/cyclops_galvo.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/cyclops_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/tracking/CMakeFiles/cyclops_tracking.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cyclops_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

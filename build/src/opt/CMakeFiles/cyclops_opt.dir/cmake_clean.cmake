file(REMOVE_RECURSE
  "CMakeFiles/cyclops_opt.dir/annealing.cpp.o"
  "CMakeFiles/cyclops_opt.dir/annealing.cpp.o.d"
  "CMakeFiles/cyclops_opt.dir/levmar.cpp.o"
  "CMakeFiles/cyclops_opt.dir/levmar.cpp.o.d"
  "CMakeFiles/cyclops_opt.dir/linalg.cpp.o"
  "CMakeFiles/cyclops_opt.dir/linalg.cpp.o.d"
  "CMakeFiles/cyclops_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/cyclops_opt.dir/nelder_mead.cpp.o.d"
  "libcyclops_opt.a"
  "libcyclops_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

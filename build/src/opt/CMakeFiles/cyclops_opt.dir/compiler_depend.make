# Empty compiler generated dependencies file for cyclops_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcyclops_opt.a"
)

file(REMOVE_RECURSE
  "libcyclops_link.a"
)

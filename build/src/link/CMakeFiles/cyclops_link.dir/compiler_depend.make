# Empty compiler generated dependencies file for cyclops_link.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_link.dir/coverage.cpp.o"
  "CMakeFiles/cyclops_link.dir/coverage.cpp.o.d"
  "CMakeFiles/cyclops_link.dir/fso_link.cpp.o"
  "CMakeFiles/cyclops_link.dir/fso_link.cpp.o.d"
  "CMakeFiles/cyclops_link.dir/handover.cpp.o"
  "CMakeFiles/cyclops_link.dir/handover.cpp.o.d"
  "CMakeFiles/cyclops_link.dir/multi_tx.cpp.o"
  "CMakeFiles/cyclops_link.dir/multi_tx.cpp.o.d"
  "CMakeFiles/cyclops_link.dir/session_log.cpp.o"
  "CMakeFiles/cyclops_link.dir/session_log.cpp.o.d"
  "CMakeFiles/cyclops_link.dir/slot_eval.cpp.o"
  "CMakeFiles/cyclops_link.dir/slot_eval.cpp.o.d"
  "libcyclops_link.a"
  "libcyclops_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

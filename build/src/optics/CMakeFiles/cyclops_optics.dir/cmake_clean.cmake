file(REMOVE_RECURSE
  "CMakeFiles/cyclops_optics.dir/beam.cpp.o"
  "CMakeFiles/cyclops_optics.dir/beam.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/coupling.cpp.o"
  "CMakeFiles/cyclops_optics.dir/coupling.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/eye_safety.cpp.o"
  "CMakeFiles/cyclops_optics.dir/eye_safety.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/field.cpp.o"
  "CMakeFiles/cyclops_optics.dir/field.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/gaussian_beam.cpp.o"
  "CMakeFiles/cyclops_optics.dir/gaussian_beam.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/link_budget.cpp.o"
  "CMakeFiles/cyclops_optics.dir/link_budget.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/photodiode.cpp.o"
  "CMakeFiles/cyclops_optics.dir/photodiode.cpp.o.d"
  "CMakeFiles/cyclops_optics.dir/wdm.cpp.o"
  "CMakeFiles/cyclops_optics.dir/wdm.cpp.o.d"
  "libcyclops_optics.a"
  "libcyclops_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

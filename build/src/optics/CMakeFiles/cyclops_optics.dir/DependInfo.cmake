
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/beam.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/beam.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/beam.cpp.o.d"
  "/root/repo/src/optics/coupling.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/coupling.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/coupling.cpp.o.d"
  "/root/repo/src/optics/eye_safety.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/eye_safety.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/eye_safety.cpp.o.d"
  "/root/repo/src/optics/field.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/field.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/field.cpp.o.d"
  "/root/repo/src/optics/gaussian_beam.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/gaussian_beam.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/gaussian_beam.cpp.o.d"
  "/root/repo/src/optics/link_budget.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/link_budget.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/link_budget.cpp.o.d"
  "/root/repo/src/optics/photodiode.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/photodiode.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/photodiode.cpp.o.d"
  "/root/repo/src/optics/wdm.cpp" "src/optics/CMakeFiles/cyclops_optics.dir/wdm.cpp.o" "gcc" "src/optics/CMakeFiles/cyclops_optics.dir/wdm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcyclops_optics.a"
)

# Empty compiler generated dependencies file for cyclops_optics.
# This may be replaced when dependencies are built.

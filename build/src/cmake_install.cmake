# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/geom/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/opt/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/optics/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/galvo/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/tracking/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/sim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/motion/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/net/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/baseline/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/link/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/libcyclops_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/geom/libcyclops_geom.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/opt/libcyclops_opt.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/optics/libcyclops_optics.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/galvo/libcyclops_galvo.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/tracking/libcyclops_tracking.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libcyclops_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libcyclops_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/motion/libcyclops_motion.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/net/libcyclops_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/baseline/libcyclops_baseline.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/link/libcyclops_link.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/cyclops" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops/cyclopsTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops/cyclopsTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/ade1a3bebf42188a1cb8ac2485d365ed/cyclopsTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops/cyclopsTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops/cyclopsTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/ade1a3bebf42188a1cb8ac2485d365ed/cyclopsTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/cyclops" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/ade1a3bebf42188a1cb8ac2485d365ed/cyclopsTargets-relwithdebinfo.cmake")
  endif()
endif()


file(REMOVE_RECURSE
  "libcyclops_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_sim.dir/prototype.cpp.o"
  "CMakeFiles/cyclops_sim.dir/prototype.cpp.o.d"
  "CMakeFiles/cyclops_sim.dir/scene.cpp.o"
  "CMakeFiles/cyclops_sim.dir/scene.cpp.o.d"
  "libcyclops_sim.a"
  "libcyclops_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcyclops_tracking.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_tracking.dir/predictor.cpp.o"
  "CMakeFiles/cyclops_tracking.dir/predictor.cpp.o.d"
  "CMakeFiles/cyclops_tracking.dir/vrh_tracker.cpp.o"
  "CMakeFiles/cyclops_tracking.dir/vrh_tracker.cpp.o.d"
  "libcyclops_tracking.a"
  "libcyclops_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracking/predictor.cpp" "src/tracking/CMakeFiles/cyclops_tracking.dir/predictor.cpp.o" "gcc" "src/tracking/CMakeFiles/cyclops_tracking.dir/predictor.cpp.o.d"
  "/root/repo/src/tracking/vrh_tracker.cpp" "src/tracking/CMakeFiles/cyclops_tracking.dir/vrh_tracker.cpp.o" "gcc" "src/tracking/CMakeFiles/cyclops_tracking.dir/vrh_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

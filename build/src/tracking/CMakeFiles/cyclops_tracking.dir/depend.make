# Empty dependencies file for cyclops_tracking.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cyclops_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcyclops_baseline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_baseline.dir/mmwave.cpp.o"
  "CMakeFiles/cyclops_baseline.dir/mmwave.cpp.o.d"
  "libcyclops_baseline.a"
  "libcyclops_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

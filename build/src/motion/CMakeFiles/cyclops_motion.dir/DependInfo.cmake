
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motion/profile.cpp" "src/motion/CMakeFiles/cyclops_motion.dir/profile.cpp.o" "gcc" "src/motion/CMakeFiles/cyclops_motion.dir/profile.cpp.o.d"
  "/root/repo/src/motion/trace.cpp" "src/motion/CMakeFiles/cyclops_motion.dir/trace.cpp.o" "gcc" "src/motion/CMakeFiles/cyclops_motion.dir/trace.cpp.o.d"
  "/root/repo/src/motion/trace_generator.cpp" "src/motion/CMakeFiles/cyclops_motion.dir/trace_generator.cpp.o" "gcc" "src/motion/CMakeFiles/cyclops_motion.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

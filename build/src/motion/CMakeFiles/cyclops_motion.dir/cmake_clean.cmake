file(REMOVE_RECURSE
  "CMakeFiles/cyclops_motion.dir/profile.cpp.o"
  "CMakeFiles/cyclops_motion.dir/profile.cpp.o.d"
  "CMakeFiles/cyclops_motion.dir/trace.cpp.o"
  "CMakeFiles/cyclops_motion.dir/trace.cpp.o.d"
  "CMakeFiles/cyclops_motion.dir/trace_generator.cpp.o"
  "CMakeFiles/cyclops_motion.dir/trace_generator.cpp.o.d"
  "libcyclops_motion.a"
  "libcyclops_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

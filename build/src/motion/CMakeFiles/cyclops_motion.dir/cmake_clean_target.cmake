file(REMOVE_RECURSE
  "libcyclops_motion.a"
)

# Empty compiler generated dependencies file for cyclops_motion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcyclops_util.a"
)

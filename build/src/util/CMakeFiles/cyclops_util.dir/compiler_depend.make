# Empty compiler generated dependencies file for cyclops_util.
# This may be replaced when dependencies are built.

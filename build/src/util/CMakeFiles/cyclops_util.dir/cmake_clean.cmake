file(REMOVE_RECURSE
  "CMakeFiles/cyclops_util.dir/csv.cpp.o"
  "CMakeFiles/cyclops_util.dir/csv.cpp.o.d"
  "CMakeFiles/cyclops_util.dir/fft.cpp.o"
  "CMakeFiles/cyclops_util.dir/fft.cpp.o.d"
  "CMakeFiles/cyclops_util.dir/rng.cpp.o"
  "CMakeFiles/cyclops_util.dir/rng.cpp.o.d"
  "CMakeFiles/cyclops_util.dir/stats.cpp.o"
  "CMakeFiles/cyclops_util.dir/stats.cpp.o.d"
  "CMakeFiles/cyclops_util.dir/table.cpp.o"
  "CMakeFiles/cyclops_util.dir/table.cpp.o.d"
  "libcyclops_util.a"
  "libcyclops_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cyclops_galvo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcyclops_galvo.a"
)

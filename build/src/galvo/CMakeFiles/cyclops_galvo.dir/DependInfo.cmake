
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/galvo/factory.cpp" "src/galvo/CMakeFiles/cyclops_galvo.dir/factory.cpp.o" "gcc" "src/galvo/CMakeFiles/cyclops_galvo.dir/factory.cpp.o.d"
  "/root/repo/src/galvo/galvo_mirror.cpp" "src/galvo/CMakeFiles/cyclops_galvo.dir/galvo_mirror.cpp.o" "gcc" "src/galvo/CMakeFiles/cyclops_galvo.dir/galvo_mirror.cpp.o.d"
  "/root/repo/src/galvo/gma.cpp" "src/galvo/CMakeFiles/cyclops_galvo.dir/gma.cpp.o" "gcc" "src/galvo/CMakeFiles/cyclops_galvo.dir/gma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/cyclops_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/cyclops_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclops_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cyclops_galvo.dir/factory.cpp.o"
  "CMakeFiles/cyclops_galvo.dir/factory.cpp.o.d"
  "CMakeFiles/cyclops_galvo.dir/galvo_mirror.cpp.o"
  "CMakeFiles/cyclops_galvo.dir/galvo_mirror.cpp.o.d"
  "CMakeFiles/cyclops_galvo.dir/gma.cpp.o"
  "CMakeFiles/cyclops_galvo.dir/gma.cpp.o.d"
  "libcyclops_galvo.a"
  "libcyclops_galvo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_galvo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "event/trace_hook.hpp"

#include <cassert>

#include "event/scheduler.hpp"

namespace cyclops::event {

void TraceHook::on_schedule(const Scheduler&, const Event&) {}
void TraceHook::on_cancel(const Scheduler&, const Event&) {}
void TraceHook::on_dispatch(const Scheduler&, const Event&) {}

EventCounter::EventCounter()
    // Bucket edges -0.5 + i for i = 1..kMaxTypes put integer type t in
    // bucket t exactly (lower_bound picks the first edge >= t).
    : by_type_(obs::HistogramSpec::linear(-0.5, 1.0,
                                          static_cast<int>(kMaxTypes))) {}

void EventCounter::on_schedule(const Scheduler&, const Event&) {
  scheduled_.inc();
}

void EventCounter::on_cancel(const Scheduler&, const Event&) {
  cancelled_.inc();
}

void EventCounter::on_dispatch(const Scheduler&, const Event& ev) {
  assert(ev.type < kMaxTypes);
  dispatched_.inc();
  by_type_.record(static_cast<double>(ev.type));
}

std::uint64_t EventCounter::dispatched(EventType type) const {
  return type < kMaxTypes ? by_type_.bucket(type) : 0;
}

std::map<EventType, std::uint64_t> EventCounter::histogram() const {
  std::map<EventType, std::uint64_t> out;
  for (EventType t = 0; t < kMaxTypes; ++t) {
    const std::uint64_t n = by_type_.bucket(t);
    if (n != 0) out[t] = n;
  }
  return out;
}

JsonlTraceWriter::JsonlTraceWriter(const std::filesystem::path& path)
    : file_(std::fopen(path.string().c_str(), "w")) {
  if (!file_) {
    std::fprintf(stderr, "JsonlTraceWriter: cannot open %s\n",
                 path.string().c_str());
  }
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_) std::fclose(file_);
}

void JsonlTraceWriter::on_dispatch(const Scheduler& sched, const Event& ev) {
  if (!file_) return;
  writer_.clear();
  writer_.begin();
  writer_.field("t_us", static_cast<std::int64_t>(ev.time));
  writer_.field("type", static_cast<std::uint64_t>(ev.type));
  writer_.field("target", std::string_view(sched.process_name(ev.target)));
  writer_.field("i64", ev.i64);
  writer_.field("f64", ev.f64);
  writer_.end();
  std::fputs(writer_.str().c_str(), file_);
  std::fputc('\n', file_);
}

}  // namespace cyclops::event

#include "event/trace_hook.hpp"

#include "event/scheduler.hpp"
#include "util/bench_io.hpp"

namespace cyclops::event {

void TraceHook::on_schedule(const Scheduler&, const Event&) {}
void TraceHook::on_cancel(const Scheduler&, const Event&) {}
void TraceHook::on_dispatch(const Scheduler&, const Event&) {}

void EventCounter::on_schedule(const Scheduler&, const Event&) {
  ++scheduled_;
}

void EventCounter::on_cancel(const Scheduler&, const Event&) { ++cancelled_; }

void EventCounter::on_dispatch(const Scheduler&, const Event& ev) {
  ++dispatched_;
  ++by_type_[ev.type];
}

std::uint64_t EventCounter::dispatched(EventType type) const {
  const auto it = by_type_.find(type);
  return it != by_type_.end() ? it->second : 0;
}

JsonlTraceWriter::JsonlTraceWriter(const std::filesystem::path& path)
    : file_(std::fopen(path.string().c_str(), "w")) {
  if (!file_) {
    std::fprintf(stderr, "JsonlTraceWriter: cannot open %s\n",
                 path.string().c_str());
  }
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_) std::fclose(file_);
}

void JsonlTraceWriter::on_dispatch(const Scheduler& sched, const Event& ev) {
  if (!file_) return;
  std::fprintf(file_, "{\"t_us\":%lld,\"type\":%u,\"target\":\"%s\",\"i64\":%lld,\"f64\":",
               static_cast<long long>(ev.time), ev.type,
               sched.process_name(ev.target), static_cast<long long>(ev.i64));
  std::fprintf(file_, util::kJsonNumberFormat, ev.f64);
  std::fputs("}\n", file_);
}

}  // namespace cyclops::event

// Observability for the event engine: hooks see every schedule / cancel /
// dispatch.  Ships two implementations — per-type counters (cheap, always
// safe to attach) and a JSONL event trace for offline inspection.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>

#include "event/event.hpp"
#include "obs/metrics.hpp"
#include "util/json_writer.hpp"

namespace cyclops::event {

class Scheduler;

class TraceHook {
 public:
  virtual ~TraceHook() = default;
  virtual void on_schedule(const Scheduler& sched, const Event& ev);
  virtual void on_cancel(const Scheduler& sched, const Event& ev);
  virtual void on_dispatch(const Scheduler& sched, const Event& ev);
};

/// Per-event-type counters and totals, backed by obs metric primitives:
/// three obs::Counter totals plus an obs::Histogram whose unit-width
/// buckets map event type t to bucket t exactly (types must stay below
/// kMaxTypes; every subsystem enum tops out below ten today).
class EventCounter final : public TraceHook {
 public:
  EventCounter();

  void on_schedule(const Scheduler& sched, const Event& ev) override;
  void on_cancel(const Scheduler& sched, const Event& ev) override;
  void on_dispatch(const Scheduler& sched, const Event& ev) override;

  std::uint64_t scheduled() const noexcept { return scheduled_.value(); }
  std::uint64_t cancelled() const noexcept { return cancelled_.value(); }
  std::uint64_t dispatched() const noexcept { return dispatched_.value(); }
  std::uint64_t dispatched(EventType type) const;
  /// Non-zero per-type dispatch counts in ascending type order (same shape
  /// the old std::map-based tally reported; now materialized on demand
  /// from the histogram buckets).
  std::map<EventType, std::uint64_t> histogram() const;

  /// Largest representable event type + 1 (histogram bucket count).
  static constexpr EventType kMaxTypes = 64;

 private:
  obs::Counter scheduled_;
  obs::Counter cancelled_;
  obs::Counter dispatched_;
  obs::Histogram by_type_;
};

/// Writes one JSON object per dispatched event:
///   {"t_us":1250,"type":3,"target":"tracker","i64":0,"f64":-12.5}
/// Built on util::JsonWriter so numbers use the same round-trip format as
/// util::write_bench_json.
class JsonlTraceWriter final : public TraceHook {
 public:
  explicit JsonlTraceWriter(const std::filesystem::path& path);
  ~JsonlTraceWriter() override;
  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }
  void on_dispatch(const Scheduler& sched, const Event& ev) override;

 private:
  std::FILE* file_ = nullptr;
  util::JsonWriter writer_;
};

}  // namespace cyclops::event

// Observability for the event engine: hooks see every schedule / cancel /
// dispatch.  Ships two implementations — per-type counters (cheap, always
// safe to attach) and a JSONL event trace for offline inspection.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>

#include "event/event.hpp"

namespace cyclops::event {

class Scheduler;

class TraceHook {
 public:
  virtual ~TraceHook() = default;
  virtual void on_schedule(const Scheduler& sched, const Event& ev);
  virtual void on_cancel(const Scheduler& sched, const Event& ev);
  virtual void on_dispatch(const Scheduler& sched, const Event& ev);
};

/// Per-event-type counters and totals.  std::map keeps the histogram
/// iteration order deterministic for reports.
class EventCounter final : public TraceHook {
 public:
  void on_schedule(const Scheduler& sched, const Event& ev) override;
  void on_cancel(const Scheduler& sched, const Event& ev) override;
  void on_dispatch(const Scheduler& sched, const Event& ev) override;

  std::uint64_t scheduled() const noexcept { return scheduled_; }
  std::uint64_t cancelled() const noexcept { return cancelled_; }
  std::uint64_t dispatched() const noexcept { return dispatched_; }
  std::uint64_t dispatched(EventType type) const;
  const std::map<EventType, std::uint64_t>& histogram() const noexcept {
    return by_type_;
  }

 private:
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t dispatched_ = 0;
  std::map<EventType, std::uint64_t> by_type_;
};

/// Writes one JSON object per dispatched event:
///   {"t_us":1250,"type":3,"target":"tracker","i64":0,"f64":-12.5}
/// Numbers use the same round-trip format as util::write_bench_json.
class JsonlTraceWriter final : public TraceHook {
 public:
  explicit JsonlTraceWriter(const std::filesystem::path& path);
  ~JsonlTraceWriter() override;
  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }
  void on_dispatch(const Scheduler& sched, const Event& ev) override;

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace cyclops::event

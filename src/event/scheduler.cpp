#include "event/scheduler.hpp"

#include <cassert>

namespace cyclops::event {

ProcessId Scheduler::add_process(Process* process) {
  assert(process != nullptr);
  processes_.push_back(process);
  return static_cast<ProcessId>(processes_.size() - 1);
}

void Scheduler::add_hook(TraceHook* hook) {
  assert(hook != nullptr);
  hooks_.push_back(hook);
}

Timer Scheduler::schedule(const Event& ev) {
  assert(ev.time >= clock_->now() && "cannot schedule into the past");
  assert(ev.target < processes_.size() && "event targets no process");
  ++scheduled_;
  for (TraceHook* hook : hooks_) hook->on_schedule(*this, ev);
  return Timer(queue_.push(ev));
}

Timer Scheduler::schedule_after(util::SimTimeUs dt, Event ev) {
  assert(dt >= 0);
  ev.time = clock_->now() + dt;
  return schedule(ev);
}

bool Scheduler::cancel(const Timer& timer) {
  if (!timer.valid() || !queue_.cancel(timer.id_)) return false;
  for (TraceHook* hook : hooks_) hook->on_cancel(*this, Event{});
  return true;
}

bool Scheduler::reschedule(Timer& timer, const Event& ev) {
  assert(ev.time >= clock_->now() && "cannot schedule into the past");
  assert(ev.target < processes_.size() && "event targets no process");
  if (timer.valid()) {
    const EventQueue::Id new_id = queue_.reschedule(timer.id_, ev);
    if (new_id != 0) {
      // Counter/hook parity with an explicit cancel()+schedule() pair, so
      // EventCounter tallies and the JSONL trace cannot tell the two
      // idioms apart.
      for (TraceHook* hook : hooks_) hook->on_cancel(*this, Event{});
      ++scheduled_;
      for (TraceHook* hook : hooks_) hook->on_schedule(*this, ev);
      timer = Timer(new_id);
      return true;
    }
  }
  timer = schedule(ev);
  return false;
}

void Scheduler::reset() noexcept {
  own_clock_.reset();
  reset(own_clock_);
}

void Scheduler::reset(util::SimClock& clock) noexcept {
  queue_.clear();
  processes_.clear();
  hooks_.clear();
  dispatched_ = 0;
  scheduled_ = 0;
  clock_ = &clock;
}

void Scheduler::dispatch(const Event& ev) {
  clock_->advance_to(ev.time);
  ++dispatched_;
  for (TraceHook* hook : hooks_) hook->on_dispatch(*this, ev);
  assert(ev.target < processes_.size());
  processes_[ev.target]->handle(*this, ev);
}

bool Scheduler::step() {
  Event ev;
  if (!queue_.pop_next(ev)) return false;
  dispatch(ev);
  return true;
}

std::uint64_t Scheduler::run_until(util::SimTimeUs t_end) {
  std::uint64_t n = 0;
  const Event* next;
  if (hooks_.empty()) {
    // Hook check hoisted; one clock store per event.
    while ((next = queue_.peek()) != nullptr && next->time <= t_end) {
      const Event ev = queue_.pop();
      clock_->advance_to(ev.time);
      ++dispatched_;
      processes_[ev.target]->handle(*this, ev);
      ++n;
    }
  } else {
    while ((next = queue_.peek()) != nullptr && next->time <= t_end) {
      dispatch(queue_.pop());
      ++n;
    }
  }
  if (t_end > clock_->now()) clock_->advance_to(t_end);
  return n;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  if (hooks_.empty()) {
    Event ev;
    while (queue_.pop_next(ev)) {
      clock_->advance_to(ev.time);
      ++dispatched_;
      processes_[ev.target]->handle(*this, ev);
      ++n;
    }
    return n;
  }
  while (step()) ++n;
  return n;
}

const char* Scheduler::process_name(ProcessId id) const noexcept {
  return id < processes_.size() ? processes_[id]->name() : "none";
}

}  // namespace cyclops::event

// The process model: a Process is a stateful handler registered with one
// Scheduler; the scheduler dispatches each event to its target process
// with the simulation clock already advanced to the event's time.
//
// Writing a Process (DESIGN.md §9 has the full rules):
//   * keep all mutable state inside the process (or a shared per-engine
//     state struct) — never in globals, so engines can fan out in parallel;
//   * schedule follow-up events only at times >= scheduler.now();
//   * rely on FIFO tie-breaking for same-time ordering: whatever is
//     scheduled first, dispatches first.
#pragma once

namespace cyclops::event {

class Scheduler;
struct Event;

class Process {
 public:
  virtual ~Process() = default;

  /// Called with the clock at ev.time.  May schedule/cancel further events.
  virtual void handle(Scheduler& sched, const Event& ev) = 0;

  /// Stable label for traces and the JSONL event log.
  virtual const char* name() const noexcept { return "process"; }
};

}  // namespace cyclops::event

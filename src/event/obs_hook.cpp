#include "event/obs_hook.hpp"

namespace cyclops::event {

MetricsHook::MetricsHook(obs::Registry& registry, std::string plane)
    : scheduled_(registry.counter("events_scheduled_total",
                                  {{"plane", plane}})),
      cancelled_(registry.counter("events_cancelled_total",
                                  {{"plane", plane}})),
      dispatched_(registry.counter("events_dispatched_total",
                                   {{"plane", plane}})) {}

void MetricsHook::on_schedule(const Scheduler&, const Event&) {
  scheduled_.inc();
}

void MetricsHook::on_cancel(const Scheduler&, const Event&) {
  cancelled_.inc();
}

void MetricsHook::on_dispatch(const Scheduler&, const Event&) {
  dispatched_.inc();
}

}  // namespace cyclops::event

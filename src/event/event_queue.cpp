#include "event/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace cyclops::event {

EventQueue::Id EventQueue::push(const Event& ev) {
  const Id id = next_id_++;
  heap_.push_back(Entry{ev, id});
  std::push_heap(heap_.begin(), heap_.end(), later);
  states_.push_back(State::kPending);
  ++live_;
  return id;
}

bool EventQueue::cancel(Id id) {
  if (id == 0 || id >= next_id_) return false;
  State& state = states_[id - 1];
  if (state != State::kPending) return false;
  state = State::kCancelled;
  --live_;
  return true;
}

void EventQueue::prune() {
  while (!heap_.empty() &&
         states_[heap_.front().id - 1] == State::kCancelled) {
    states_[heap_.front().id - 1] = State::kPopped;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

const Event* EventQueue::peek() {
  prune();
  return heap_.empty() ? nullptr : &heap_.front().event;
}

Event EventQueue::pop() {
  prune();
  assert(!heap_.empty());
  states_[heap_.front().id - 1] = State::kPopped;
  --live_;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Event ev = heap_.back().event;
  heap_.pop_back();
  return ev;
}

}  // namespace cyclops::event

#include "event/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cyclops::event {
namespace {

constexpr std::int64_t kNoEpoch = std::numeric_limits<std::int64_t>::max();

}  // namespace

EventQueue::EventQueue(Discipline discipline, CalendarConfig calendar)
    : discipline_(discipline),
      width_log2_(calendar.bucket_width_log2),
      bucket_mask_((std::int64_t{1} << calendar.bucket_count_log2) - 1),
      bucket_count_(std::int64_t{1} << calendar.bucket_count_log2),
      overflow_min_epoch_(kNoEpoch) {
  assert(calendar.bucket_width_log2 >= 0 && calendar.bucket_width_log2 < 62);
  assert(calendar.bucket_count_log2 >= 1 && calendar.bucket_count_log2 < 24);
  if (discipline_ == Discipline::kCalendar) {
    buckets_.resize(static_cast<std::size_t>(bucket_count_));
  }
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].pos;
    return s;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) noexcept {
  Slot& sl = slots_[slot];
  // The generation bump is what invalidates every outstanding id for this
  // slot — including stale copies still buried in the active heap.
  ++sl.generation;
  sl.where = kFree;
  sl.pos = free_head_;
  free_head_ = slot;
}

void EventQueue::clear() noexcept {
  active_.clear();
  for (std::vector<Entry>& bucket : buckets_) bucket.clear();
  overflow_.clear();
  cur_epoch_ = 0;
  in_window_ = 0;
  overflow_min_epoch_ = kNoEpoch;
  next_seq_ = 0;
  live_ = 0;
  // Rebuild the free list over the whole slab in ascending slot order (so
  // a cleared queue hands slots out 0, 1, 2, ... like a fresh one).  Slots
  // that held a live entry bump their generation exactly as free_slot()
  // would, killing every outstanding id.
  free_head_ = kNoSlot;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& sl = slots_[i];
    if (sl.where != kFree) {
      ++sl.generation;
      sl.where = kFree;
    }
    sl.pos = free_head_;
    free_head_ = static_cast<std::uint32_t>(i);
  }
}

std::uint32_t EventQueue::pending_slot(Id id) const noexcept {
  if (id == 0) return kNoSlot;
  const std::uint32_t s = slot_of(id);
  if (s >= slots_.size()) return kNoSlot;
  if (slots_[s].generation != generation_of(id)) return kNoSlot;
  return s;
}

void EventQueue::place(const Entry& entry) {
  Slot& sl = slots_[slot_of(entry.id)];
  if (discipline_ == Discipline::kCalendar) {
    const std::int64_t e = epoch_of(entry.event.time);
    if (e > cur_epoch_) {
      if (e - cur_epoch_ < bucket_count_) {
        // Near-future: O(1) append; the bucket heapifies when the window
        // reaches its epoch.
        const auto b = static_cast<std::uint32_t>(e & bucket_mask_);
        sl.where = kInBucket;
        sl.bucket = b;
        sl.pos = static_cast<std::uint32_t>(buckets_[b].size());
        buckets_[b].push_back(entry);
        ++in_window_;
        return;
      }
      sl.where = kOverflow;
      sl.pos = static_cast<std::uint32_t>(overflow_.size());
      overflow_.push_back(entry);
      overflow_min_epoch_ = std::min(overflow_min_epoch_, e);
      return;
    }
    // At (or before) the window position: joins the drain heap directly.
  }
  sl.where = kActive;
  active_.push_back(entry);
  if (active_.size() > 1) {
    std::push_heap(active_.begin(), active_.end(), later);
  }
}

void EventQueue::remove_placed(std::uint32_t slot) noexcept {
  Slot& sl = slots_[slot];
  assert(sl.where == kInBucket || sl.where == kOverflow);
  std::vector<Entry>& vec =
      sl.where == kInBucket ? buckets_[sl.bucket] : overflow_;
  const std::size_t pos = sl.pos;
  assert(pos < vec.size());
  if (pos + 1 != vec.size()) {
    vec[pos] = vec.back();
    slots_[slot_of(vec[pos].id)].pos = static_cast<std::uint32_t>(pos);
  }
  vec.pop_back();
  if (sl.where == kInBucket) {
    --in_window_;
  } else if (overflow_.empty()) {
    overflow_min_epoch_ = kNoEpoch;
  }
}

EventQueue::Id EventQueue::push(const Event& ev) {
  assert(ev.time >= 0 && "calendar epochs require non-negative times");
  const std::uint32_t s = alloc_slot();
  const Id id = make_id(s, slots_[s].generation);
  if (live_ == 0 && discipline_ == Discipline::kCalendar) {
    // Empty-queue jump: re-anchor the window at the new event's epoch and
    // seat it in the active heap directly.  The one-pending-timer pattern
    // (the per-trace evaluator's report chain) then never touches the
    // bucket ring or the window scan at all.  Safe because an empty queue
    // has no entry anywhere that a window move could strand.
    active_.clear();  // stale residue only
    cur_epoch_ = epoch_of(ev.time);
    Slot& sl = slots_[s];
    sl.where = kActive;
    active_.push_back(Entry{ev, id, next_seq_++});
    ++live_;
    return id;
  }
  place(Entry{ev, id, next_seq_++});
  ++live_;
  return id;
}

bool EventQueue::cancel(Id id) {
  const std::uint32_t s = pending_slot(id);
  if (s == kNoSlot) return false;
  // Eager in buckets/overflow (physical swap-remove via the back-pointer);
  // lazy in the active heap, where the freed generation marks the buried
  // entry stale for pop-time pruning.
  if (slots_[s].where != kActive) remove_placed(s);
  free_slot(s);
  --live_;
  return true;
}

EventQueue::Id EventQueue::reschedule(Id id, const Event& ev) {
  assert(ev.time >= 0);
  const std::uint32_t s = pending_slot(id);
  if (s == kNoSlot) return 0;
  if (slots_[s].where != kActive) {
    // Bucket/overflow entries mutate in place: same pool slot (and id),
    // fresh sequence number so the event re-enters FIFO order exactly as a
    // cancel+push would.
    remove_placed(s);
    place(Entry{ev, id, next_seq_++});
    return id;
  }
  // Active-heap entries are buried at arbitrary heap positions; fall back
  // to lazy-cancel + fresh push.
  free_slot(s);
  --live_;
  return push(ev);
}

void EventQueue::pop_active_top() noexcept {
  if (active_.size() > 1) {
    std::pop_heap(active_.begin(), active_.end(), later);
  }
  active_.pop_back();
}

bool EventQueue::settle_active() {
  while (!active_.empty()) {
    if (!stale(active_.front())) return true;
    pop_active_top();
  }
  return false;
}

void EventQueue::advance_window() {
  assert(discipline_ == Discipline::kCalendar);
  assert(active_.empty());
  // Next stop: the earlier of the first non-empty near-future bucket and
  // the overflow ladder's minimum epoch.
  std::int64_t bucket_epoch = kNoEpoch;
  if (in_window_ > 0) {
    for (std::int64_t e = cur_epoch_ + 1;; ++e) {
      if (!buckets_[static_cast<std::size_t>(e & bucket_mask_)].empty()) {
        bucket_epoch = e;
        break;
      }
    }
  }
  const std::int64_t next = std::min(bucket_epoch, overflow_min_epoch_);
  assert(next != kNoEpoch && "advance_window with no pending entries");
  cur_epoch_ = next;
  if (bucket_epoch == next) {
    std::vector<Entry>& b =
        buckets_[static_cast<std::size_t>(next & bucket_mask_)];
    in_window_ -= b.size();
    for (const Entry& en : b) slots_[slot_of(en.id)].where = kActive;
    active_.insert(active_.end(), b.begin(), b.end());
    b.clear();
  }
  // overflow_min_epoch_ is a lower bound (cancels don't re-scan), so a
  // rebucket may move nothing into active_; the peek loop just advances
  // again with the recomputed exact minimum.
  if (overflow_min_epoch_ == next) rebucket_overflow();
  std::make_heap(active_.begin(), active_.end(), later);
}

void EventQueue::rebucket_overflow() {
  std::size_t kept = 0;
  std::int64_t new_min = kNoEpoch;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    const Entry en = overflow_[i];
    Slot& sl = slots_[slot_of(en.id)];
    const std::int64_t e = epoch_of(en.event.time);
    if (e <= cur_epoch_) {
      sl.where = kActive;
      active_.push_back(en);  // caller re-heapifies
    } else if (e - cur_epoch_ < bucket_count_) {
      const auto b = static_cast<std::uint32_t>(e & bucket_mask_);
      sl.where = kInBucket;
      sl.bucket = b;
      sl.pos = static_cast<std::uint32_t>(buckets_[b].size());
      buckets_[b].push_back(en);
      ++in_window_;
    } else {
      new_min = std::min(new_min, e);
      sl.pos = static_cast<std::uint32_t>(kept);
      overflow_[kept++] = en;
    }
  }
  overflow_.resize(kept);
  overflow_min_epoch_ = new_min;
}

const Event* EventQueue::peek() {
  if (live_ == 0) {
    active_.clear();  // drop any stale residue in one shot
    return nullptr;
  }
  while (!settle_active()) advance_window();
  return &active_.front().event;
}

bool EventQueue::pop_next(Event& out) {
  if (live_ == 0) {
    active_.clear();
    return false;
  }
  while (!settle_active()) advance_window();
  const Entry& top = active_.front();
  out = top.event;
  free_slot(slot_of(top.id));
  --live_;
  pop_active_top();
  return true;
}

Event EventQueue::pop() {
  Event ev;
  const bool ok = pop_next(ev);
  assert(ok && "pop() on an empty EventQueue");
  (void)ok;
  return ev;
}

}  // namespace cyclops::event

// The event loop: owns the clock and the pending-event queue, dispatches
// typed events to registered processes, and hands out cancellable Timer
// handles.  One Scheduler == one deterministic simulation; parallel
// workloads run one scheduler per trace/session (see DESIGN.md §9).
//
// The queue discipline is selectable at construction: kCalendar (the
// default production engine) or kBinaryHeap (the original heap, kept as
// the equivalence oracle).  Dispatch order is identical either way.
//
// Hot-path structure (DESIGN.md §13): run()/run_until() hoist the
// hook-presence check out of the loop and batch clock updates into a
// single store per event; run_single<P>() additionally devirtualizes
// dispatch for the one-process-per-engine pattern the per-trace
// evaluators use.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "event/event.hpp"
#include "event/event_queue.hpp"
#include "event/process.hpp"
#include "event/trace_hook.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::event {

/// Cancellable handle for a scheduled event.  Value type: copying it does
/// not duplicate the event; cancelling any copy cancels the one event.
class Timer {
 public:
  Timer() = default;
  /// False for default-constructed handles (never scheduled).
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Scheduler;
  explicit Timer(EventQueue::Id id) : id_(id) {}
  EventQueue::Id id_ = 0;
};

class Scheduler {
 public:
  using Discipline = EventQueue::Discipline;

  /// Self-clocked scheduler (the common per-trace case: every parallel
  /// eval engine owns an independent timeline).
  explicit Scheduler(Discipline discipline = Discipline::kCalendar) noexcept
      : queue_(discipline), clock_(&own_clock_) {}
  /// Rides an external clock — a runtime::Context's session clock, so the
  /// session timeline outlives this scheduler and other components can
  /// read the same `now`.  The clock must outlive the scheduler; events
  /// must respect whatever time it already shows.
  explicit Scheduler(util::SimClock& clock,
                     Discipline discipline = Discipline::kCalendar) noexcept
      : queue_(discipline), clock_(&clock) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a handler (non-owning; the process must outlive the
  /// scheduler).  Returns the id events use as their `target`.
  ProcessId add_process(Process* process);

  /// Observability hook (non-owning).  Hooks fire in registration order.
  void add_hook(TraceHook* hook);

  /// Schedules `ev` at ev.time (must be >= now()).
  Timer schedule(const Event& ev);

  /// Schedules `ev` at now() + dt (dt >= 0); ev.time is overwritten.
  Timer schedule_after(util::SimTimeUs dt, Event ev);

  /// Cancels a pending event.  Returns false when the event already
  /// dispatched or was already cancelled — safe to call either way.
  bool cancel(const Timer& timer);

  /// Replaces `timer`'s pending event with `ev` — observably identical to
  /// cancel(timer) + timer = schedule(ev) (hooks and counters included),
  /// but the queue mutates bucket entries in place instead of
  /// cancel+reinsert.  When `timer` was invalid or already fired, plain
  /// schedule semantics apply.  Returns true when a pending event was
  /// superseded.
  bool reschedule(Timer& timer, const Event& ev);

  /// Dispatches the next event, advancing the clock to its time.
  /// Returns false when no live events remain.
  bool step();

  /// Dispatches every event with time <= t_end, then advances the clock
  /// to t_end.  Returns the number of events dispatched.
  std::uint64_t run_until(util::SimTimeUs t_end);

  /// Dispatches until the queue drains.
  std::uint64_t run();

  /// Devirtualized drain for single-process engines: `proc` must be this
  /// scheduler's only registered process (and `P` its final type), and no
  /// hooks may be registered.  The qualified call lets the compiler
  /// statically dispatch — and inline — the handler.
  template <typename P>
  std::uint64_t run_single(P& proc) {
    assert(processes_.size() == 1 && processes_[0] == &proc &&
           "run_single requires exactly the one registered process");
    assert(hooks_.empty() && "run_single skips hooks; use run()");
    std::uint64_t n = 0;
    Event ev;
    while (queue_.pop_next(ev)) {
      clock_->advance_to(ev.time);
      ++dispatched_;
      proc.P::handle(*this, ev);
      ++n;
    }
    return n;
  }

  /// Returns the scheduler to its just-constructed state — pending
  /// events discarded (their Timer ids go stale), processes and hooks
  /// unregistered, dispatch/schedule counters zeroed — while the event
  /// slab keeps its capacity.  The self-clocked overload rewinds the
  /// internal clock to 0; the other rebinds the timeline to `clock`
  /// (NOT reset — the caller owns that clock's lifecycle).  This is the
  /// reuse primitive behind session::Workspace: one scheduler runs
  /// thousands of fleet sessions with no per-session heap churn beyond
  /// the slab itself.
  void reset() noexcept;
  void reset(util::SimClock& clock) noexcept;

  util::SimTimeUs now() const noexcept { return clock_->now(); }
  bool empty() const noexcept { return queue_.empty(); }
  std::uint64_t dispatched() const noexcept { return dispatched_; }
  std::uint64_t scheduled() const noexcept { return scheduled_; }
  Discipline discipline() const noexcept { return queue_.discipline(); }
  /// Slab slots ever allocated by the queue — stable across reset(),
  /// which is how the workspace tests pin "no per-session slab growth".
  std::size_t pool_slots() const noexcept { return queue_.pool_slots(); }

  /// Label of a registered process (for trace hooks).
  const char* process_name(ProcessId id) const noexcept;

 private:
  void dispatch(const Event& ev);

  EventQueue queue_;
  util::SimClock own_clock_;   // backing storage for the default ctor
  util::SimClock* clock_;      // the timeline actually advanced
  std::vector<Process*> processes_;
  std::vector<TraceHook*> hooks_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t scheduled_ = 0;
};

}  // namespace cyclops::event

// TraceHook that feeds a metrics Registry: scheduler traffic becomes
// `events_{scheduled,cancelled,dispatched}_total` counters, labelled by
// plane ("eval", "session", "multi_tx", ...) so one registry can hold
// several control planes side by side.  Metric references are hoisted at
// construction; the per-event cost is one relaxed atomic increment.
#pragma once

#include <string>

#include "event/trace_hook.hpp"
#include "obs/registry.hpp"

namespace cyclops::event {

class MetricsHook final : public TraceHook {
 public:
  MetricsHook(obs::Registry& registry, std::string plane);

  void on_schedule(const Scheduler& sched, const Event& ev) override;
  void on_cancel(const Scheduler& sched, const Event& ev) override;
  void on_dispatch(const Scheduler& sched, const Event& ev) override;

 private:
  obs::Counter& scheduled_;
  obs::Counter& cancelled_;
  obs::Counter& dispatched_;
};

}  // namespace cyclops::event

// Discrete-event core: the event record shared by the queue, scheduler,
// processes, and trace hooks.
//
// Cyclops' control plane is asynchronous — TP actuation latency, galvo
// settle, SFP reacquisition, and handover timers all land *between* the
// 1 ms slot boundaries the legacy fixed-step simulators walk.  The event
// engine executes those occurrences at their exact microsecond times.
// Determinism rules (see DESIGN.md §9):
//   * events are ordered by (time, schedule sequence) — ties dispatch in
//     FIFO schedule order, never by pointer value or hash order;
//   * a Scheduler is a single-threaded object; fan-out parallelism runs
//     one engine per trace/session via util::parallel_for.
#pragma once

#include <cstdint>

#include "util/sim_clock.hpp"

namespace cyclops::event {

/// Index of a registered Process within its Scheduler.
using ProcessId = std::uint32_t;

/// Domain-defined discriminator; each subsystem declares its own enum
/// (e.g. link::SessionEventType) and interprets the payload accordingly.
using EventType = std::uint32_t;

inline constexpr ProcessId kNoProcess = 0xffffffffu;

/// One scheduled occurrence.  The POD payload (i64/f64) covers slot
/// counts, TX indices, and powers without a heap allocation per event.
struct Event {
  util::SimTimeUs time = 0;
  EventType type = 0;
  ProcessId target = kNoProcess;
  std::int64_t i64 = 0;
  double f64 = 0.0;
};

}  // namespace cyclops::event

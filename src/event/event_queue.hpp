// Pending-event set with two selectable disciplines behind one interface:
//
//   * kBinaryHeap — a single binary min-heap keyed on (time, sequence),
//     the original design and the equivalence oracle for the calendar.
//   * kCalendar  — a calendar queue (ROOT-Sim style): a power-of-two ring
//     of near-future buckets indexed by time epoch, an overflow ladder for
//     far-future events, and a small binary heap for the bucket currently
//     being drained.  Pushes into the near future are O(1) appends; pops
//     heapify one bucket at a time.
//
// Both disciplines dispatch in the identical (time, FIFO-sequence) total
// order — ties pop in push order — which the queue-discipline property
// test enforces on randomized schedule/cancel/pop workloads.
//
// Entry bookkeeping lives in a slab pool: every pushed event borrows a
// fixed-size slot carrying a generation counter, and the slot returns to a
// free list when the event pops, cancels, or reschedules.  Steady-state
// scheduling therefore does zero heap traffic and the pool footprint is
// bounded by the peak number of concurrently pending events (the old
// design grew a per-id state vector forever).  Ids encode
// (generation, slot): a recycled slot bumps its generation, so a stale id
// can never cancel or resurrect the slot's new occupant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "event/event.hpp"

namespace cyclops::event {

class EventQueue {
 public:
  /// Handle of a pushed event; 0 is never issued (reserved for "invalid").
  /// Encodes (generation << 32) | (pool slot + 1); ids are NOT monotonic
  /// (slots recycle) — FIFO tie-breaking uses an internal sequence number.
  using Id = std::uint64_t;

  enum class Discipline : std::uint8_t { kBinaryHeap, kCalendar };

  /// Calendar geometry.  Defaults suit the link planes: 2^12 us (~4 ms)
  /// buckets x 256 buckets give a ~1 s near-future window, so 10 ms report
  /// chains and sub-frame timers land in O(1) buckets while multi-second
  /// handover timers ride the overflow ladder.
  struct CalendarConfig {
    int bucket_width_log2 = 12;  ///< log2 of bucket width in microseconds.
    int bucket_count_log2 = 8;   ///< log2 of the bucket-ring size.
  };

  EventQueue() : EventQueue(Discipline::kCalendar) {}
  explicit EventQueue(Discipline discipline)
      : EventQueue(discipline, CalendarConfig{}) {}
  EventQueue(Discipline discipline, CalendarConfig calendar);

  /// O(1) amortized for near-future pushes under kCalendar; O(log n)
  /// under kBinaryHeap.  Equal-time events pop FIFO in push order.
  Id push(const Event& ev);

  /// Cancels a pending event and recycles its slot.  Eager (physical
  /// removal) when the entry sits in a future bucket or the overflow
  /// ladder; lazy (skipped at pop time) when it is already in the active
  /// heap.  Returns false when `id` already popped, already cancelled, or
  /// never issued — cancelling a fired timer is a harmless no-op.
  bool cancel(Id id);

  /// Atomically replaces a pending event — observably identical to
  /// cancel(id) + push(ev) (the entry re-enters FIFO order at the back of
  /// its new timestamp), but mutates bucket/overflow entries in place and
  /// keeps their pool slot.  Returns the handle of the rescheduled event
  /// (== `id` when the slot was reused), or 0 when `id` was not pending
  /// (nothing is pushed in that case).
  Id reschedule(Id id, const Event& ev);

  /// Next live event, or nullptr when empty.  Prunes cancelled entries.
  const Event* peek();

  /// Pops the next live event into `out`; false when the queue is empty.
  /// The one-call primitive the scheduler hot loop uses (a peek()+pop()
  /// pair re-checks staleness twice).
  bool pop_next(Event& out);

  /// Pops the next live event.  Precondition: !empty().
  Event pop();

  bool empty() const noexcept { return live_ == 0; }

  /// True while `id` names a live (not popped / cancelled / rescheduled-
  /// away) event.  A recycled slot bumps its generation, so ids issued
  /// for previous occupants report false here forever.
  bool pending(Id id) const noexcept { return pending_slot(id) != kNoSlot; }

  /// Live (non-cancelled) entries.
  std::size_t size() const noexcept { return live_; }

  /// Discards every pending event but keeps the slab (and every
  /// container's capacity): generations of live slots bump so all
  /// outstanding ids go stale, the free list rebuilds over the whole
  /// pool, and sequence/window state returns to the just-constructed
  /// values.  Dispatch order after clear() is indistinguishable from a
  /// fresh queue — this is what lets one queue run thousands of sessions
  /// with zero steady-state allocation (session::Workspace).
  void clear() noexcept;

  Discipline discipline() const noexcept { return discipline_; }

  /// Pool slots ever allocated — bounded by peak concurrency, not by the
  /// total number of events pushed (what the recycling tests pin down).
  std::size_t pool_slots() const noexcept { return slots_.size(); }

 private:
  struct Entry {
    Event event;
    Id id = 0;
    std::uint64_t seq = 0;  ///< monotonic push sequence; breaks time ties.
  };

  /// Where a live entry currently lives (drives eager vs lazy cancel).
  enum Where : std::uint8_t {
    kFree = 0,   ///< slot on the free list
    kActive,     ///< in the active heap (binary heap / current bucket)
    kInBucket,   ///< in a near-future calendar bucket
    kOverflow,   ///< in the far-future overflow ladder
  };

  struct Slot {
    std::uint32_t generation = 0;
    Where where = kFree;
    std::uint32_t bucket = 0;  ///< bucket index when kInBucket
    std::uint32_t pos = 0;     ///< index in its container; free-list next when kFree
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Min-heap order: earliest time first, lowest sequence (push order) on
  /// ties.
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.event.time != b.event.time ? a.event.time > b.event.time
                                        : a.seq > b.seq;
  }

  static std::uint32_t slot_of(Id id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(Id id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static Id make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<Id>(generation) << 32) |
           (static_cast<Id>(slot) + 1);
  }

  bool stale(const Entry& e) const noexcept {
    return slots_[slot_of(e.id)].generation != generation_of(e.id);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot) noexcept;

  /// Validates `id` against the pool; kNoSlot when not pending.
  std::uint32_t pending_slot(Id id) const noexcept;

  std::int64_t epoch_of(util::SimTimeUs t) const noexcept {
    return t >> width_log2_;
  }

  /// Files `entry` (whose slot is already allocated) into the right
  /// container for its timestamp under the current window.
  void place(const Entry& entry);
  /// Swap-removes the entry a pending slot points at from its bucket or
  /// overflow vector, fixing the displaced entry's back-pointer.
  void remove_placed(std::uint32_t slot) noexcept;

  /// Advances cur_epoch_ to the next epoch holding live entries and loads
  /// that epoch's entries into the active heap.  Pre: no live entry in
  /// active_, live_ > 0.
  void advance_window();
  /// Redistributes the overflow ladder under the current window; entries
  /// at cur_epoch_ join active_ (caller re-heapifies).
  void rebucket_overflow();
  /// Drops stale entries off the top of active_; false when it empties.
  bool settle_active();
  /// Removes active_'s min entry (size-1 heaps skip the sift entirely).
  void pop_active_top() noexcept;

  Discipline discipline_;
  int width_log2_ = 0;
  std::int64_t bucket_mask_ = 0;   ///< bucket_count - 1
  std::int64_t bucket_count_ = 0;

  /// kBinaryHeap: the one heap.  kCalendar: heap of the bucket being
  /// drained (the only place cancellation is lazy).
  std::vector<Entry> active_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  std::int64_t cur_epoch_ = 0;
  std::size_t in_window_ = 0;  ///< live entries across buckets_
  std::int64_t overflow_min_epoch_ = 0;  ///< lower bound; exact after rebucket

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cyclops::event

// Pending-event set: a binary min-heap keyed on (time, sequence) with
// deterministic FIFO tie-breaking and O(1) lazy cancellation — the same
// shape as ROOT-Sim's node_heap_t, plus the cancellable-timer semantics of
// wisun-br-linux's timer list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "event/event.hpp"

namespace cyclops::event {

class EventQueue {
 public:
  /// Handle of a pushed event; 0 is never issued (reserved for "invalid").
  using Id = std::uint64_t;

  /// O(log n).  Ids increase monotonically in push order, which is what
  /// makes equal-time events pop FIFO.
  Id push(const Event& ev);

  /// Lazy cancel: the entry stays in the heap but will be skipped.
  /// Returns false when `id` already popped, already cancelled, or never
  /// issued — cancelling a fired timer is a harmless no-op.
  bool cancel(Id id);

  /// Next live event, or nullptr when empty.  Prunes cancelled entries.
  const Event* peek();

  /// Pops the next live event.  Precondition: !empty().
  Event pop();

  bool empty() { return peek() == nullptr; }

  /// Live (non-cancelled) entries.
  std::size_t size() const noexcept { return live_; }

 private:
  struct Entry {
    Event event;
    Id id = 0;
  };
  enum class State : std::uint8_t { kPending, kCancelled, kPopped };

  /// Min-heap order: earliest time first, lowest id (schedule order) on ties.
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.event.time != b.event.time ? a.event.time > b.event.time
                                        : a.id > b.id;
  }
  void prune();

  std::vector<Entry> heap_;
  /// Per-id lifecycle, indexed by id - 1: ids are issued sequentially, so
  /// a flat vector beats hash sets on the hot push/pop path (one event per
  /// report interval and per link-state run adds up — see BENCH_fig16).
  std::vector<State> states_;
  std::size_t live_ = 0;
  Id next_id_ = 1;
};

}  // namespace cyclops::event

// What a session IS, independent of how it runs: one value that names a
// workload variant plus the handful of knobs every variant understands.
// A SessionSpec is the unit the fleet simulator stripes across the
// driver pool — everything a runner needs must be derivable from
// (variant, seed, knobs) so a session is reproducible anywhere, in any
// order, on any thread (DESIGN.md §16).
#pragma once

#include <cstdint>

#include "util/sim_clock.hpp"

namespace cyclops::session {

/// The five legacy runner families, the streaming plane, and the
/// drift-injected online-recalibration scenario.  Every variant maps
/// onto one concrete SessionRunner in session/catalog.
enum class Variant : std::uint8_t {
  kLink,        ///< link::run_link_session_events (exact-timing FSO loop)
  kChannel,     ///< link::run_channel_session (steering-free phy::Channel)
  kHetero,      ///< link::run_hetero_session (FSO + fallback, handover)
  kMultiTx,     ///< link::run_multi_tx_session (N TXs, one headset)
  kArena,       ///< arena::run_arena_session (N TXs × M headsets)
  kStream,      ///< stream::StreamPipeline (zero-copy data plane)
  kOnlineRecal, ///< cal::run_online_recal_session (drift + in-flight refit)
};

inline constexpr std::size_t kVariantCount = 7;

constexpr const char* variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::kLink: return "link";
    case Variant::kChannel: return "channel";
    case Variant::kHetero: return "hetero";
    case Variant::kMultiTx: return "multi_tx";
    case Variant::kArena: return "arena";
    case Variant::kStream: return "stream";
    case Variant::kOnlineRecal: return "online_recal";
  }
  return "unknown";
}

/// One session, fully specified.  Knobs a variant does not use are
/// ignored by its runner (e.g. spectators outside kStream); defaults
/// keep every variant cheap enough for 10k-session fleets.
struct SessionSpec {
  Variant variant = Variant::kChannel;
  /// Per-session RNG stream AND prototype/track seed.  Two specs that
  /// differ only in seed are fully independent workloads.
  std::uint64_t seed = 1;
  double duration_s = 1.0;
  /// Motion/scenario selector (catalog-defined per variant: viewing-trace
  /// style for the link family, arena::Scenario for kArena).
  std::uint32_t motion = 0;
  /// Motion intensity scale (1.0 = the paper's Fig-3 calibration).
  double intensity = 1.0;
  std::uint32_t num_tx = 2;       ///< kMultiTx / kArena
  std::uint32_t num_players = 4;  ///< kArena
  std::uint32_t spectators = 0;   ///< kStream fan-out
  util::SimTimeUs step_us = 1000; ///< Sampling slot where the variant has one.
};

}  // namespace cyclops::session

// The standard runner catalog: one concrete SessionRunner per Variant,
// built for LP-scale fleets — truth-calibrated pointing solvers instead
// of full calibrations (the concurrent_session_test recipe), standalone
// channels, synthetic deterministic workloads.  Everything a runner
// does is a pure function of (SessionSpec, isolated Context), so fleet
// runs are byte-identical to alone runs by construction.
#pragma once

#include <memory>

#include "session/runner.hpp"
#include "session/spec.hpp"

namespace cyclops::session {

/// Concrete runner for `spec.variant`.
std::unique_ptr<SessionRunner> make_runner(const SessionSpec& spec);

/// The catalog as a RunnerFactory (what run_fleet / run_session take).
RunnerFactory catalog_factory();

}  // namespace cyclops::session

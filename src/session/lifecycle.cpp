#include "session/lifecycle.hpp"

namespace cyclops::session {
namespace {

thread_local Workspace* t_workspace = nullptr;

}  // namespace

WorkspaceScope::WorkspaceScope(Workspace& workspace) noexcept
    : prev_(t_workspace) {
  t_workspace = &workspace;
}

WorkspaceScope::~WorkspaceScope() { t_workspace = prev_; }

Workspace* current_workspace() noexcept { return t_workspace; }

ScopedScheduler::ScopedScheduler(util::SimClock* clock) {
  Workspace* ws = current_workspace();
  if (ws != nullptr && !ws->leased_) {
    // Lease the per-driver scheduler: reset() rebinds the timeline and
    // clears processes/hooks/counters while the event slab keeps its
    // capacity — the "no per-session heap churn" half of the LP budget.
    if (clock != nullptr) {
      ws->sched_.reset(*clock);
    } else {
      ws->sched_.reset();
    }
    ws->leased_ = true;
    ++ws->leases_;
    leased_from_ = ws;
    sched_ = &ws->sched_;
    return;
  }
  if (clock != nullptr) {
    owned_.emplace(*clock);
  } else {
    owned_.emplace();
  }
  sched_ = &*owned_;
}

ScopedScheduler::~ScopedScheduler() {
  if (leased_from_ != nullptr) leased_from_->leased_ = false;
}

}  // namespace cyclops::session

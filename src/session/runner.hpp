// The unified session lifecycle: prepare → run → Report.
//
// A SessionRunner is the adapter shape all five legacy runner families
// (and the streaming pipeline) reduce to.  prepare() does the expensive
// deterministic setup — prototypes, solvers, traces — against the
// session's isolated context; run() executes the event-driven session
// and distills its result into the variant-independent Report.  The
// split exists so a future warm-pool can prepare ahead of run, and so
// the fleet driver can account the two phases separately.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/context.hpp"
#include "session/spec.hpp"

namespace cyclops::session {

/// Variant-independent distillation of one session.  Every field is a
/// pure function of the SessionSpec (deterministic code, isolated
/// context), so fleet runs compare byte-identical to alone runs —
/// including the doubles, compared with ==, never a tolerance.
struct Report {
  Variant variant = Variant::kChannel;
  std::uint64_t seed = 0;
  /// Events dispatched by the session's scheduler(s).
  std::uint64_t events = 0;
  /// Work-unit count (sampling slots / arena ticks / frames — the
  /// variant's natural denominator).  Read from the session's own obs
  /// counters, so it is 0 in CYCLOPS_OBS=OFF builds (consistently on
  /// both sides of any comparison).
  std::uint64_t slots = 0;
  /// Fraction of slots the link/service was delivering (variant's
  /// closest analogue: up fraction, served fraction, SLA fraction,
  /// goodput/offered).
  double served_fraction = 0.0;
  double avg_rate_gbps = 0.0;
  /// Handovers / realignments / mode switches — the variant's control-
  /// plane activity count.
  std::uint64_t switches = 0;
  /// obs::to_jsonl of the session registry, captured when the caller
  /// asked for it (SessionExecution::capture_metrics).  Byte-stable.
  std::string metrics_jsonl;
};

class SessionRunner {
 public:
  virtual ~SessionRunner() = default;
  virtual const char* name() const noexcept = 0;
  /// Deterministic setup: everything derivable from (spec, ctx) that the
  /// run itself should not re-pay — prototypes, solvers, traces, tracks.
  virtual void prepare(runtime::Context& ctx) = 0;
  /// Executes the session.  Fills the variant-specific Report fields;
  /// run_session() stamps variant/seed and captures metrics.
  virtual Report run(runtime::Context& ctx) = 0;
};

/// Maps a spec onto a concrete runner.  session/catalog.hpp provides the
/// standard catalog; tests and benches can substitute their own.
using RunnerFactory =
    std::function<std::unique_ptr<SessionRunner>(const SessionSpec&)>;

}  // namespace cyclops::session

#include "session/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "obs/config.hpp"
#include "obs/export.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::session {

Report run_session(const SessionSpec& spec, const RunnerFactory& factory,
                   const SessionExecution& exec) {
  runtime::Context ctx =
      runtime::Context::isolated({.seed = spec.seed, .threads = 1});
  std::unique_ptr<SessionRunner> runner = factory(spec);
  runner->prepare(ctx);
  Report report = runner->run(ctx);
  report.variant = spec.variant;
  report.seed = spec.seed;
  if constexpr (obs::kEnabled) {
    // Uniform accounting counters in the session's own registry, BEFORE
    // capture/merge: rollup-vs-per-session reconciliation then holds by
    // construction for every variant, including ones whose native
    // counters differ in shape.
    obs::Registry& registry = ctx.registry();
    registry.counter("fleet_sessions_total").inc(1);
    registry.counter("fleet_events_total").inc(report.events);
    registry.counter("fleet_slots_total").inc(report.slots);
    if (exec.capture_metrics) report.metrics_jsonl = obs::to_jsonl(registry);
    if (exec.rollup != nullptr) exec.rollup->merge_from(registry);
  }
  return report;
}

FleetResult run_fleet(const std::vector<SessionSpec>& specs,
                      const RunnerFactory& factory, const FleetConfig& config,
                      util::ThreadPool* pool) {
  util::ThreadPool& drivers =
      pool != nullptr ? *pool : util::ThreadPool::global();
  const std::size_t n = specs.size();
  FleetResult result;
  result.reports.resize(n);

  std::size_t chunks =
      config.chunks != 0 ? config.chunks : 4 * drivers.thread_count();
  chunks = std::clamp<std::size_t>(chunks, 1, std::max<std::size_t>(n, 1));

  obs::ShardedRegistry shards(chunks);
  // One workspace per chunk: a chunk runs on exactly one executor at a
  // time (the dispenser hands out whole chunks), so the workspace is
  // single-threaded by construction and TSan-clean.
  std::vector<std::unique_ptr<Workspace>> workspaces(chunks);
  if (config.reuse_workspace) {
    for (std::unique_ptr<Workspace>& w : workspaces) {
      w = std::make_unique<Workspace>();
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  drivers.run_chunked(
      n, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::optional<WorkspaceScope> scope;
        if (config.reuse_workspace) scope.emplace(*workspaces[chunk]);
        SessionExecution exec;
        exec.capture_metrics = config.capture_metrics;
        exec.rollup = &shards.shard(chunk);
        for (std::size_t i = begin; i < end; ++i) {
          result.reports[i] = run_session(specs[i], factory, exec);
        }
      });
  result.totals.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  result.rollup = std::make_unique<obs::Registry>();
  shards.merge_into(*result.rollup);

  result.totals.sessions = n;
  for (const Report& report : result.reports) {
    result.totals.events += report.events;
    result.totals.slots += report.slots;
  }
  if constexpr (obs::kEnabled) {
    result.reconciled =
        result.rollup->counter("fleet_sessions_total").value() ==
            result.totals.sessions &&
        result.rollup->counter("fleet_events_total").value() ==
            result.totals.events &&
        result.rollup->counter("fleet_slots_total").value() ==
            result.totals.slots;
  } else {
    result.reconciled = true;
  }
  return result;
}

}  // namespace cyclops::session

// The shared session lifecycle plumbing the five legacy runners used to
// re-implement by hand: acquire a scheduler (fresh, or leased from a
// per-driver Workspace so fleet sessions reuse one event slab), bind it
// to the session timeline (a runtime::Context clock or a private one),
// run, release.
//
//   session::ScopedScheduler lease(session::bind_session_clock(ctx));
//   event::Scheduler& sched = lease.get();
//
// replaces the optional<Scheduler> / make_unique<Scheduler> boilerplate
// at every runner entry point, and transparently upgrades every runner
// to slab reuse whenever a Workspace is bound on the current thread
// (the fleet driver binds one per chunk).  Without a workspace the
// behavior is exactly the pre-refactor one: a stack-owned scheduler per
// session — which is how the byte-identical oracles stay meaningful.
#pragma once

#include <cstdint>
#include <optional>

#include "event/scheduler.hpp"
#include "runtime/context.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::session {

/// Reusable per-driver session state: one scheduler whose event slab
/// (and container capacities) survive across sessions.  Bind it to the
/// current thread with WorkspaceScope; every ScopedScheduler constructed
/// while the scope is active leases the workspace scheduler instead of
/// building its own.  Not thread-safe — one workspace per driver chunk.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Sessions that leased this workspace so far.
  std::uint64_t leases() const noexcept { return leases_; }
  /// The reused scheduler (tests pin pool_slots() stability across
  /// sessions through this).
  const event::Scheduler& scheduler() const noexcept { return sched_; }

 private:
  friend class ScopedScheduler;
  friend class WorkspaceScope;

  event::Scheduler sched_;
  std::uint64_t leases_ = 0;
  bool leased_ = false;  ///< A ScopedScheduler currently holds sched_.
};

/// Thread-local workspace binding (RAII, nestable: the previous binding
/// restores on destruction).
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& workspace) noexcept;
  ~WorkspaceScope();
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace* prev_;
};

/// The workspace bound to the current thread, or nullptr.
Workspace* current_workspace() noexcept;

/// Context-to-timeline step of the lifecycle: resets the session clock
/// (a context represents one session timeline; the session starts at
/// t=0) and hands it to ScopedScheduler.  nullptr stays nullptr — the
/// self-clocked mode.
inline util::SimClock* bind_session_clock(const runtime::Context* ctx) {
  if (ctx == nullptr) return nullptr;
  ctx->clock().reset();
  return &ctx->clock();
}

/// Scheduler acquisition for one session.  With a clock: the scheduler
/// rides it (the caller decides whether/when it resets — see
/// bind_session_clock).  Without: a private clock starting at 0.  When a
/// Workspace is bound on this thread and not already leased (sessions
/// can nest — e.g. a runner that drives a StreamPipeline), the workspace
/// scheduler is reset and reused; otherwise a scheduler lives on this
/// object.  Either way get() is a just-constructed scheduler: no
/// processes, no hooks, zero counters.
class ScopedScheduler {
 public:
  explicit ScopedScheduler(util::SimClock* clock);
  ~ScopedScheduler();
  ScopedScheduler(const ScopedScheduler&) = delete;
  ScopedScheduler& operator=(const ScopedScheduler&) = delete;

  event::Scheduler& get() noexcept { return *sched_; }

 private:
  std::optional<event::Scheduler> owned_;
  event::Scheduler* sched_ = nullptr;
  Workspace* leased_from_ = nullptr;
};

}  // namespace cyclops::session

#include "session/catalog.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "arena/session.hpp"
#include "arena/topology.hpp"
#include "cal/online.hpp"
#include "core/calibration.hpp"
#include "core/gma_model.hpp"
#include "core/pointing.hpp"
#include "core/tp_controller.hpp"
#include "link/event_session.hpp"
#include "link/hetero_session.hpp"
#include "link/multi_tx.hpp"
#include "link/session_core.hpp"
#include "motion/trace.hpp"
#include "motion/trace_generator.hpp"
#include "obs/config.hpp"
#include "phy/mmwave_channel.hpp"
#include "sim/prototype.hpp"
#include "stream/pipeline.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::session {
namespace {

/// Ground-truth pointing solver: keeps sessions cheap (no calibration)
/// and free of wall-clock metrics — the concurrent_session_test recipe.
core::PointingSolver truth_solver(const sim::Prototype& proto,
                                  const runtime::Context& ctx) {
  return core::PointingSolver(
      core::GmaModel(proto.tx_galvo_truth).transformed(proto.k_from_tx_gma),
      core::GmaModel(proto.rx_galvo_truth).transformed(proto.k_from_rx_gma),
      proto.true_map_tx, proto.true_map_rx, {}, ctx);
}

/// Viewer-style knobs from the spec: `motion` picks a style, `intensity`
/// scales it — the GazeProphet-style per-session workload heterogeneity
/// the fleet exists to express.
motion::TraceGeneratorConfig trace_config(const SessionSpec& spec) {
  motion::TraceGeneratorConfig config;
  config.duration_s = spec.duration_s;
  double scale = spec.intensity;
  switch (spec.motion % 3) {
    case 0: break;                                  // paper-calibrated
    case 1: scale *= 0.5; break;                    // calm viewer
    case 2: config.saccade_rate_hz *= 3.0; break;   // saccade-heavy
  }
  config.yaw_rate_sigma *= scale;
  config.pitch_rate_sigma *= scale;
  config.roll_rate_sigma *= scale;
  config.sway_speed_sigma *= scale;
  return config;
}

std::uint64_t counter_value(const runtime::Context& ctx, std::string name,
                            obs::Labels labels = {}) {
  if constexpr (obs::kEnabled) {
    return ctx.registry()
        .counter(std::move(name), std::move(labels))
        .value();
  } else {
    return 0;
  }
}

/// kLink — the exact-timing single-TX FSO loop over a synthetic viewing
/// trace (truth solver, per-session seed'd prototype).
class LinkRunner final : public SessionRunner {
 public:
  explicit LinkRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "link"; }

  void prepare(runtime::Context& ctx) override {
    proto_.emplace(sim::make_prototype(100 + spec_.seed % 512,
                                       sim::prototype_25g_config()));
    controller_.emplace(truth_solver(*proto_, ctx), core::TpConfig{});
    util::Rng trace_rng = ctx.rng(/*key=*/1);
    trace_ = motion::generate_viewing_trace(proto_->nominal_rig_pose,
                                            trace_config(spec_), trace_rng);
    profile_.emplace(trace_);
  }

  Report run(runtime::Context& ctx) override {
    link::SimOptions options;
    options.step = spec_.step_us;
    link::EventSessionStats stats;
    const link::RunResult r = link::run_link_session_events(
        *proto_, *controller_, *profile_, ctx, options, nullptr, &stats);
    Report report;
    report.events = stats.events;
    report.slots = counter_value(ctx, "session_slots_total");
    report.served_fraction = r.total_up_fraction;
    report.avg_rate_gbps = r.avg_rate_gbps;
    report.switches = static_cast<std::uint64_t>(r.realignments);
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<sim::Prototype> proto_;
  std::optional<core::TpController> controller_;
  motion::Trace trace_;
  std::optional<motion::TraceMotion> profile_;
};

/// kChannel — a steering-free phy::MmWaveChannel under the unified
/// session core (no prototype, no solver: the cheapest variant).
class ChannelRunner final : public SessionRunner {
 public:
  explicit ChannelRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "channel"; }

  void prepare(runtime::Context& ctx) override {
    channel_.emplace(phy::MmWaveChannelConfig{}, ctx);
    const geom::Pose base{geom::Mat3::identity(), {0.0, 0.8, 1.2}};
    util::Rng trace_rng = ctx.rng(/*key=*/1);
    trace_ = motion::generate_viewing_trace(base, trace_config(spec_),
                                            trace_rng);
    profile_.emplace(trace_);
  }

  Report run(runtime::Context& ctx) override {
    link::ChannelSessionOptions options;
    options.step = spec_.step_us;
    link::ChannelSessionStats stats;
    const link::RunResult r =
        link::run_channel_session(*channel_, *profile_, ctx, options, &stats);
    channel_->finish(util::us_from_s(profile_->duration_s()));
    Report report;
    report.events = stats.events;
    report.slots = stats.slots;
    report.served_fraction = r.total_up_fraction;
    report.avg_rate_gbps = r.avg_rate_gbps;
    report.switches = static_cast<std::uint64_t>(channel_->retrains());
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<phy::MmWaveChannel> channel_;
  motion::Trace trace_;
  std::optional<motion::TraceMotion> profile_;
};

/// kHetero — the FSO chain plus an mmWave fallback in one scheduler,
/// HandoverProcess arbitrating in margin space.
class HeteroRunner final : public SessionRunner {
 public:
  explicit HeteroRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "hetero"; }

  void prepare(runtime::Context& ctx) override {
    proto_.emplace(sim::make_prototype(100 + spec_.seed % 512,
                                       sim::prototype_25g_config()));
    controller_.emplace(truth_solver(*proto_, ctx), core::TpConfig{});
    fallback_.emplace(phy::MmWaveChannelConfig{}, ctx);
    util::Rng trace_rng = ctx.rng(/*key=*/1);
    trace_ = motion::generate_viewing_trace(proto_->nominal_rig_pose,
                                            trace_config(spec_), trace_rng);
    profile_.emplace(trace_);
  }

  Report run(runtime::Context& ctx) override {
    link::HeteroConfig config;
    config.step = spec_.step_us;
    // Periodic LOS obstruction so the fallback genuinely serves: blocked
    // 100 ms out of every 700 ms, phase-shifted by the seed.
    const util::SimTimeUs phase =
        static_cast<util::SimTimeUs>(spec_.seed % 7) * 100000;
    config.fso_occlusion = [phase](util::SimTimeUs t) {
      return ((t + phase) % 700000) < 100000;
    };
    const link::HeteroResult r = link::run_hetero_session(
        *proto_, *controller_, *fallback_, *profile_, ctx, config);
    Report report;
    report.events = r.events;
    report.slots = counter_value(ctx, "hetero_slots_total");
    report.served_fraction = r.served_fraction;
    report.avg_rate_gbps = r.avg_rate_gbps;
    report.switches = static_cast<std::uint64_t>(r.switches);
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<sim::Prototype> proto_;
  std::optional<core::TpController> controller_;
  std::optional<phy::MmWaveChannel> fallback_;
  motion::Trace trace_;
  std::optional<motion::TraceMotion> profile_;
};

/// kMultiTx — num_tx truth-calibrated ceiling chains serving one headset
/// under a rotating occluder (so TX↔TX handover actually exercises).
class MultiTxRunner final : public SessionRunner {
 public:
  explicit MultiTxRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "multi_tx"; }

  void prepare(runtime::Context& ctx) override {
    const std::size_t n = std::max<std::uint32_t>(spec_.num_tx, 1);
    sim::PrototypeConfig base = sim::prototype_25g_config();
    const geom::Vec3 origin = base.tx_position;
    chains_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      sim::PrototypeConfig config = base;
      // TX0 stays at the nominal overhead mount (the rig's resting pose
      // faces it; an offset TX0 would tilt every chain's rig off-axis);
      // the rest fan out alternately ±0.5 m, ±1.0 m, ... along x.
      const double offset =
          0.5 * static_cast<double>((i + 1) / 2) * (i % 2 == 1 ? 1.0 : -1.0);
      config.tx_position = origin + geom::Vec3{i == 0 ? 0.0 : offset, 0.0, 0.0};
      chains_.push_back(link::TxChain::from_truth(
          sim::make_prototype(100 + spec_.seed % 512 + i, config), ctx));
    }
    util::Rng trace_rng = ctx.rng(/*key=*/1);
    trace_ = motion::generate_viewing_trace(
        chains_[0].proto.nominal_rig_pose, trace_config(spec_), trace_rng);
    profile_.emplace(trace_);
  }

  Report run(runtime::Context& ctx) override {
    link::MultiTxConfig config;
    config.step = spec_.step_us;
    // Rotating occluder: each TX takes a 400 ms turn being blocked, with
    // an all-clear slot leading every rotation so short sessions (and the
    // post-handover reacquisitions) see an unblocked serving TX.
    const std::size_t n = chains_.size();
    auto occlusion = [n](util::SimTimeUs t, std::size_t tx) {
      const auto slot = static_cast<std::size_t>(
          (t / 400000) % static_cast<std::int64_t>(n + 1));
      return slot > 0 && slot - 1 == tx;
    };
    const link::MultiTxResult r = link::run_multi_tx_session(
        chains_, *profile_, config, occlusion, ctx);
    Report report;
    report.events = r.events;
    report.slots = counter_value(ctx, "multi_tx_slots_total");
    report.served_fraction = r.served_fraction;
    report.avg_rate_gbps = 0.0;  // the multi-TX session reports fractions
    report.switches = static_cast<std::uint64_t>(r.switches);
    return report;
  }

 private:
  SessionSpec spec_;
  std::vector<link::TxChain> chains_;
  motion::Trace trace_;
  std::optional<motion::TraceMotion> profile_;
};

/// kArena — N TXs × M headsets shared airspace; `motion` selects the
/// bench scenario population.
class ArenaRunner final : public SessionRunner {
 public:
  explicit ArenaRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "arena"; }

  void prepare(runtime::Context&) override {
    arena::ArenaConfig config;
    const arena::Scenario scenario =
        spec_.motion % 3 == 1   ? arena::Scenario::kClusteredCorner
        : spec_.motion % 3 == 2 ? arena::Scenario::kSyncFastMotion
                                : arena::Scenario::kUniform;
    topology_.emplace(
        config, std::max<std::uint32_t>(spec_.num_tx, 1),
        arena::ArenaTopology::make_tracks(
            config, std::max<std::uint32_t>(spec_.num_players, 1), scenario,
            spec_.duration_s, spec_.seed));
  }

  Report run(runtime::Context& ctx) override {
    arena::ArenaOptions options;
    options.duration_s = spec_.duration_s;
    const arena::ArenaResult r =
        arena::run_arena_session(*topology_, options, ctx);
    Report report;
    report.events = r.events;
    report.slots = counter_value(ctx, "arena_slots_total");
    report.served_fraction =
        r.headsets.empty()
            ? 0.0
            : static_cast<double>(r.sla_met_count()) /
                  static_cast<double>(r.headsets.size());
    double rate_sum = 0.0;
    for (const arena::HeadsetQoE& h : r.headsets) rate_sum += h.avg_rate_gbps;
    report.avg_rate_gbps =
        r.headsets.empty() ? 0.0
                           : rate_sum / static_cast<double>(r.headsets.size());
    report.switches = static_cast<std::uint64_t>(r.migrations);
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<arena::ArenaTopology> topology_;
};

/// kStream — the zero-copy streaming plane over a deterministic flapping
/// capacity (period/depth seeded per session).
class StreamRunner final : public SessionRunner {
 public:
  explicit StreamRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "stream"; }

  void prepare(runtime::Context& ctx) override {
    stream::PipelineConfig config;
    config.duration = util::us_from_s(spec_.duration_s);
    config.spectators = static_cast<int>(spec_.spectators);
    config.slot = spec_.step_us;
    pipeline_.emplace(config, ctx);
  }

  Report run(runtime::Context&) override {
    // Peak clears the default RatePolicy raw rate (20 Gbps) so raw-mode
    // frames actually drain; the dips are what freeze-ledgers and the
    // adapter react to.
    const double peak_gbps = 23.0 + static_cast<double>(spec_.seed % 3);
    const util::SimTimeUs period =
        200000 + static_cast<util::SimTimeUs>(spec_.seed % 5) * 50000;
    const util::SimTimeUs dip = 30000;
    const auto capacity = [peak_gbps, period, dip](util::SimTimeUs t) {
      return (t % period) < dip ? 12.0 : peak_gbps;
    };
    const stream::PipelineResult r = pipeline_->run(capacity);
    Report report;
    report.events = r.events_dispatched;
    report.slots = static_cast<std::uint64_t>(r.frames_generated);
    report.served_fraction =
        r.offered_gbps > 0.0 ? r.goodput_gbps / r.offered_gbps : 0.0;
    report.avg_rate_gbps = r.goodput_gbps;
    report.switches = static_cast<std::uint64_t>(r.mode_switches);
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<stream::StreamPipeline> pipeline_;
};

/// kOnlineRecal — a drift-injected serving session with the mapping
/// refitted in flight (cal::run_online_recal_session).  The calibration
/// is assembled from prototype ground truth (the fleet measures the
/// *recal plane*, not the offline pipeline), `motion` scales the drift
/// severity, and `intensity` scales the rig excursion.
class OnlineRecalRunner final : public SessionRunner {
 public:
  explicit OnlineRecalRunner(const SessionSpec& spec) : spec_(spec) {}
  const char* name() const noexcept override { return "online_recal"; }

  void prepare(runtime::Context&) override {
    proto_.emplace(sim::make_prototype(100 + spec_.seed % 512,
                                       sim::prototype_25g_config()));
    calibration_.emplace(core::CalibrationResult{
        core::KSpaceFitReport{core::GmaModel(proto_->tx_galvo_truth)
                                  .transformed(proto_->k_from_tx_gma),
                              0.0, 0.0, 0, true},
        core::KSpaceFitReport{core::GmaModel(proto_->rx_galvo_truth)
                                  .transformed(proto_->k_from_rx_gma),
                              0.0, 0.0, 0, true},
        core::MappingFitReport{proto_->true_map_tx, proto_->true_map_rx, 0.0,
                               0.0, 0, true},
        {}});
  }

  Report run(runtime::Context& ctx) override {
    cal::OnlineRecalConfig config;
    config.duration_s = spec_.duration_s;
    config.slot_us = spec_.step_us;
    config.seed = spec_.seed;
    const double severity = 1.0 + 0.5 * static_cast<double>(spec_.motion % 3);
    config.drift.ramp_angle_rad *= severity;
    config.drift.ramp_translation_m *= severity;
    config.pose_position_extent *= spec_.intensity;
    config.pose_angle_extent *= spec_.intensity;
    const cal::OnlineRecalResult r =
        cal::run_online_recal_session(*proto_, *calibration_, config, &ctx);
    Report report;
    report.events = r.events;
    report.slots = r.slots;
    report.served_fraction = r.up_fraction;
    report.avg_rate_gbps = 0.0;  // the recal plane reports margins
    report.switches = static_cast<std::uint64_t>(r.refits);
    return report;
  }

 private:
  SessionSpec spec_;
  std::optional<sim::Prototype> proto_;
  std::optional<core::CalibrationResult> calibration_;
};

}  // namespace

std::unique_ptr<SessionRunner> make_runner(const SessionSpec& spec) {
  switch (spec.variant) {
    case Variant::kLink: return std::make_unique<LinkRunner>(spec);
    case Variant::kChannel: return std::make_unique<ChannelRunner>(spec);
    case Variant::kHetero: return std::make_unique<HeteroRunner>(spec);
    case Variant::kMultiTx: return std::make_unique<MultiTxRunner>(spec);
    case Variant::kArena: return std::make_unique<ArenaRunner>(spec);
    case Variant::kStream: return std::make_unique<StreamRunner>(spec);
    case Variant::kOnlineRecal: return std::make_unique<OnlineRecalRunner>(spec);
  }
  return std::make_unique<ChannelRunner>(spec);
}

RunnerFactory catalog_factory() {
  return [](const SessionSpec& spec) { return make_runner(spec); };
}

}  // namespace cyclops::session

// The fleet simulator: 10k–100k isolated sessions striped across the
// driver pool — the ROADMAP's "millions of users" story in miniature
// (LP-per-session, ROOT-Sim style; DESIGN.md §16).
//
// Determinism contract, the same one run_concurrent_sessions pioneered:
// every session runs on its own isolated Context (private RNG streams,
// clock, metrics registry), chunk index → session range is the static
// ThreadPool::chunk_range geometry, telemetry accumulates into a
// shard-per-chunk ShardedRegistry merged in shard order — so the whole
// FleetResult (Report fields AND JSONL metric exports AND the rolled-up
// registry) is byte-identical at any driver thread count, and identical
// to running every session alone.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "session/runner.hpp"
#include "session/spec.hpp"
#include "util/thread_pool.hpp"

namespace cyclops::session {

/// Per-session execution knobs shared by the fleet driver and alone
/// runs (tests call run_session directly with the same values to build
/// their byte-equality baselines).
struct SessionExecution {
  /// Capture obs::to_jsonl(session registry) into Report::metrics_jsonl.
  /// Off by default: a 100k-session fleet does not want 100k strings.
  bool capture_metrics = false;
  /// Fold the session registry into this rollup shard after the run.
  obs::Registry* rollup = nullptr;
};

/// Runs ONE session end to end: isolated context seeded from the spec,
/// factory → prepare → run, fleet_{sessions,events,slots}_total counters
/// stamped into the session registry (so rollups reconcile against
/// per-session sums by construction), metrics captured/merged per
/// `exec`.  This is the only session execution path — the fleet chunk
/// body and the alone-run baselines both call it, which is what makes
/// "fleet == alone, byte for byte" a structural property.
Report run_session(const SessionSpec& spec, const RunnerFactory& factory,
                   const SessionExecution& exec = {});

struct FleetConfig {
  /// Chunks handed to ThreadPool::run_chunked; 0 → 4× driver threads
  /// (enough slack for the atomic dispenser to absorb stragglers).
  std::size_t chunks = 0;
  bool capture_metrics = false;  ///< Fill every Report::metrics_jsonl.
  /// Bind one session::Workspace per chunk so all of a chunk's sessions
  /// reuse one event slab.  Off = a fresh scheduler per session (the
  /// pre-refactor behavior; the determinism tests run both).
  bool reuse_workspace = true;
};

struct FleetTotals {
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;  ///< Sum of Report::events.
  std::uint64_t slots = 0;   ///< Sum of Report::slots.
  double wall_seconds = 0.0; ///< Driver wall time (never determinism-checked).
};

struct FleetResult {
  std::vector<Report> reports;  ///< reports[i] ↔ specs[i].
  /// Every session registry folded together: per-chunk shards merged in
  /// shard-index order (ShardedRegistry::merge_into).
  std::unique_ptr<obs::Registry> rollup;
  FleetTotals totals;
  /// fleet_{sessions,events,slots}_total in `rollup` exactly equal the
  /// per-session sums in `totals` (trivially true in OBS=OFF builds).
  bool reconciled = false;
};

/// Stripes `specs` across `pool` (default: the global driver pool).
FleetResult run_fleet(const std::vector<SessionSpec>& specs,
                      const RunnerFactory& factory,
                      const FleetConfig& config = {},
                      util::ThreadPool* pool = nullptr);

}  // namespace cyclops::session

// Calibration-engine checkpoints: the full CalibrationEngine state as a
// value, serializable to a line-oriented text file so an interrupted
// calibration survives a power cycle and resumes bit-exactly.
//
//   cyclops-cal-checkpoint v1
//   state         <9 u64: phase steps stage2_i blind_a blind_b
//                         retry_attempt lm_active tx_report rx_report>
//   rng_state     <4 u64>
//   rng_normal    <2 doubles>
//   collector     <4 doubles>
//   tx_report     <29 doubles>    (zeros when the state flag says absent)
//   rx_report     <29 doubles>
//   tx_samples_n  <1 u64>
//   tx_samples    <4n doubles>
//   ... (fixed record sequence; see checkpoint.cpp)
//
// The format deliberately has its own magic — it is NOT a version bump of
// the `cyclops-calibration` result file (core/persistence.hpp), which
// stores only the finished models.  Doubles round-trip exactly (17
// significant digits); RNG words are written as decimal u64 and parsed
// with std::from_chars, because a double cannot hold values above 2^53
// without corruption.  Poses serialize as 9 rotation-matrix entries plus
// the translation — the rotation-vector form (Pose::params) is not
// bit-exact through a round-trip.  Malformed files — truncation, garbled
// fields, wrong counts, unknown versions — are rejected with a
// std::runtime_error naming the 1-based line, never loaded silently.
//
// A checkpoint restores into an engine built against the *same*
// prototype/config/context (the prototype's tracker and flex state are
// live rig state, not engine state).
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <vector>

#include "cal/engine.hpp"
#include "core/kspace_calibration.hpp"
#include "core/mapping_calibration.hpp"
#include "geom/pose.hpp"
#include "opt/levmar.hpp"
#include "sim/scene.hpp"
#include "util/rng.hpp"

namespace cyclops::cal {

/// Everything CalibrationEngine::restore needs, as a plain value.
struct EngineCheckpoint {
  int phase = 0;
  std::uint64_t steps = 0;
  util::RngState rng;

  core::BoardSampleCollector::State collector;
  std::vector<core::BoardSample> tx_samples, rx_samples;
  std::optional<core::KSpaceFitReport> tx_report, rx_report;

  bool lm_active = false;
  opt::LmCheckpoint lm;

  std::vector<core::AlignedSample> tuples;
  sim::Voltages hint;
  int stage2_i = 0;
  geom::Pose tx_guess, rx_guess;
  core::MappingFitReport mapping;

  geom::Vec3 blind_centroid;
  int blind_a = 0, blind_b = 0;
  std::array<double, 6> blind_tx_best{};
  double blind_tx_best_value = 1e18;
  geom::Pose blind_tx_seed;
  core::MappingFitReport blind_best;
  double blind_best_value = 1e18;

  int retry_attempt = 0;
  geom::Pose retry_tx, retry_rx;
};

void write_engine_checkpoint(std::ostream& out, const EngineCheckpoint& cp);
EngineCheckpoint read_engine_checkpoint(std::istream& in);

/// File convenience wrappers.  Throw std::runtime_error on I/O or format
/// errors.
void save_engine_checkpoint(const std::filesystem::path& path,
                            const EngineCheckpoint& cp);
EngineCheckpoint load_engine_checkpoint(const std::filesystem::path& path);

}  // namespace cyclops::cal

// Event-driven calibration: a Process that advances a CalibrationEngine
// on an event::Scheduler timeline.  Sample collection runs as timed
// events (board grid points and aligner searches take real bench time);
// fit iterations batch several LM steps per event at a faster cadence.
//
// Because the engine's arithmetic is independent of how its steps are
// sliced (see cal/engine.hpp), driving it through a scheduler produces a
// CalibrationResult bit-identical to `while (engine.step()) {}` — the
// event plane adds *when*, never *what*.
#pragma once

#include <cstdint>

#include "cal/engine.hpp"
#include "event/event.hpp"
#include "event/process.hpp"
#include "event/scheduler.hpp"

namespace cyclops::cal {

struct CalibrationProcessConfig {
  /// Bench time per collection step (one board grid point or one
  /// exhaustive-aligner search).
  util::SimTimeUs sample_interval_us = 1000;
  /// Collection steps executed per event.
  int samples_per_event = 1;
  /// Wall cadence of optimizer events.
  util::SimTimeUs fit_interval_us = 200;
  /// LM iterations (or multi-starts, in the blind phases) per event.
  int fit_iters_per_event = 4;
};

class CalibrationProcess final : public event::Process {
 public:
  /// `engine` must outlive the process (and may be pre-advanced or
  /// checkpoint-restored; the process simply continues it).
  explicit CalibrationProcess(CalibrationEngine& engine,
                              const CalibrationProcessConfig& config = {})
      : engine_(&engine), config_(config) {}

  /// Registers with `sched` and schedules the first step event.  Call
  /// once; the process then reschedules itself until the engine is done.
  void start(event::Scheduler& sched) {
    id_ = sched.add_process(this);
    schedule_next(sched);
  }

  void handle(event::Scheduler& sched, const event::Event&) override {
    ++events_;
    const int batch = engine_->collecting() ? config_.samples_per_event
                                            : config_.fit_iters_per_event;
    for (int i = 0; i < batch && engine_->step(); ++i) {
    }
    if (!engine_->done()) schedule_next(sched);
  }

  const char* name() const noexcept override { return "calibration"; }

  std::uint64_t events() const noexcept { return events_; }
  bool done() const noexcept { return engine_->done(); }

 private:
  void schedule_next(event::Scheduler& sched) {
    const util::SimTimeUs dt = engine_->collecting()
                                   ? config_.sample_interval_us
                                   : config_.fit_interval_us;
    sched.schedule_after(dt, event::Event{0, /*type=*/0, id_, 0, 0.0});
  }

  CalibrationEngine* engine_;
  CalibrationProcessConfig config_;
  event::ProcessId id_ = event::kNoProcess;
  std::uint64_t events_ = 0;
};

}  // namespace cyclops::cal

#include "cal/online.hpp"

#include <cmath>
#include <cstddef>
#include <utility>

#include "core/pointing.hpp"
#include "event/event.hpp"
#include "event/process.hpp"
#include "event/scheduler.hpp"
#include "geom/mat3.hpp"
#include "obs/registry.hpp"
#include "session/lifecycle.hpp"
#include "util/rng.hpp"

namespace cyclops::cal {

// ---------------------------------------------------------------------------
// OnlineRecalibrator
// ---------------------------------------------------------------------------

OnlineRecalibrator::OnlineRecalibrator(core::GmaModel tx_kspace,
                                       core::GmaModel rx_kspace,
                                       const geom::Pose& map_tx,
                                       const geom::Pose& map_rx,
                                       const core::DriftMonitorConfig& monitor,
                                       const OnlineRefitOptions& options,
                                       const runtime::Context& ctx)
    : tx_kspace_(std::move(tx_kspace)),
      rx_kspace_(std::move(rx_kspace)),
      map_tx_(map_tx),
      map_rx_(map_rx),
      monitor_(monitor),
      options_(options),
      ctx_(&ctx) {
  buffer_.reserve(static_cast<std::size_t>(options_.buffer_capacity));
}

void OnlineRecalibrator::arm(double healthy_power_dbm) {
  core::DriftMonitorConfig cfg = monitor_.config();
  cfg.healthy_power_dbm = healthy_power_dbm;
  monitor_ = core::DriftMonitor(cfg);
}

void OnlineRecalibrator::on_power(double power_dbm) {
  monitor_.on_post_realignment_power(power_dbm);
}

void OnlineRecalibrator::admit(const core::AlignedSample& sample) {
  if (static_cast<int>(buffer_.size()) >= options_.buffer_capacity) {
    buffer_.erase(buffer_.begin());
  }
  buffer_.push_back(sample);
}

void OnlineRecalibrator::observe(const core::AlignedSample& sample,
                                 double power_dbm) {
  admit(sample);
  on_power(power_dbm);
}

bool OnlineRecalibrator::refit_pending() const noexcept {
  return !stepper_.has_value() && monitor_.recalibration_needed() &&
         static_cast<int>(buffer_.size()) >= options_.min_samples;
}

void OnlineRecalibrator::begin_refit(util::SimTimeUs now_us) {
  // Freeze the ring: the residual function captures refit_samples_ by
  // reference, and the live buffer keeps accumulating for the *next*
  // refit while this one iterates.
  refit_samples_ = buffer_;
  refit_started_us_ = now_us;
  core::MappingFitProblem problem = core::make_mapping_problem(
      tx_kspace_, rx_kspace_, refit_samples_, map_tx_, map_rx_);
  stepper_.emplace(std::move(problem.residuals), std::move(problem.initial),
                   options_.options, *ctx_);
}

bool OnlineRecalibrator::step_refit() { return stepper_->step(); }

core::MappingFitReport OnlineRecalibrator::finish_refit(util::SimTimeUs now_us) {
  const opt::LevMarResult fit = stepper_->result();
  const core::MappingFitReport report =
      core::finish_mapping_fit(tx_kspace_, rx_kspace_, refit_samples_, fit);
  map_tx_ = report.map_tx;
  map_rx_ = report.map_rx;
  stepper_.reset();
  buffer_.clear();
  monitor_.reset();
  ++refits_;
  if constexpr (obs::kEnabled) {
    obs::Registry& reg = ctx_->registry();
    reg.counter("cal_refits_total").inc();
    reg.counter("cal_refit_iterations_total")
        .inc(static_cast<std::uint64_t>(fit.iterations));
    reg.histogram("cal_refit_latency_us", obs::HistogramSpec::duration_us())
        .record(static_cast<double>(now_us - refit_started_us_));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Drift-injected serving session
// ---------------------------------------------------------------------------

namespace {

constexpr event::EventType kSlotEvent = 0;
constexpr event::EventType kRefitEvent = 1;

/// Fixed (arbitrary, unit-norm) drift directions — the injection is a
/// deterministic scenario, not a random process.
geom::Vec3 drift_rotation_axis() {
  return geom::Vec3{0.31, -0.52, 0.80}.normalized();
}
geom::Vec3 drift_translation_dir() {
  return geom::Vec3{-0.45, 0.62, 0.64}.normalized();
}

/// VR-frame drift at session fraction `frac`: slow ramp plus a step.
geom::Pose drift_pose(const DriftInjection& d, double frac) {
  double angle = d.ramp_angle_rad * frac;
  double trans = d.ramp_translation_m * frac;
  if (frac >= d.step_at_fraction) {
    angle += d.step_angle_rad;
    trans += d.step_translation_m;
  }
  return {geom::Mat3::rotation(drift_rotation_axis(), angle),
          drift_translation_dir() * trans};
}

/// RX galvo gain drift: the voltages the RX mirrors *apply* for a command.
sim::Voltages gain_scaled(const sim::Voltages& v, double gain) {
  return {v.tx1, v.tx2, v.rx1 * (1.0 + gain), v.rx2 * (1.0 + gain)};
}

double* channel(sim::Voltages& v, int c) {
  switch (c) {
    case 0: return &v.tx1;
    case 1: return &v.tx2;
    case 2: return &v.rx1;
    default: return &v.rx2;
  }
}

/// Cheap measured-power coordinate descent around the solver's answer, so
/// admitted tuples are *genuinely* aligned under the drifted physics (the
/// online stand-in for Stage 2's exhaustive aligner).  Deterministic; no
/// RNG draws, so the frozen baseline's random stream is unaffected by
/// whether polishing runs.
double polish_voltages(const sim::Scene& scene, double gain, int rounds,
                       sim::Voltages& v) {
  double best = scene.received_power_dbm(gain_scaled(v, gain));
  double step = 0.08;
  for (int r = 0; r < rounds; ++r, step *= 0.35) {
    for (int c = 0; c < 4; ++c) {
      double* ch = channel(v, c);
      bool moved = true;
      for (int m = 0; m < 6 && moved; ++m) {
        moved = false;
        for (const double dir : {1.0, -1.0}) {
          const double saved = *ch;
          *ch = saved + dir * step;
          const double p = scene.received_power_dbm(gain_scaled(v, gain));
          if (p > best) {
            best = p;
            moved = true;
            break;
          }
          *ch = saved;
        }
      }
    }
  }
  return best;
}

class RecalSession final : public event::Process {
 public:
  RecalSession(sim::Prototype& proto, const core::CalibrationResult& calibration,
               const OnlineRecalConfig& config, const runtime::Context& ctx)
      : proto_(&proto),
        calibration_(&calibration),
        config_(config),
        ctx_(&ctx),
        rng_(0x0ca1u + config.seed * 0x9e3779b97f4a7c15ull),
        recal_(calibration.tx_stage1.model, calibration.rx_stage1.model,
               calibration.mapping.map_tx, calibration.mapping.map_rx,
               config.monitor, config.refit, ctx),
        sensitivity_(proto.scene.config().sfp.rx_sensitivity_dbm) {
    solver_.emplace(calibration.make_pointing_solver({}, ctx));
    total_slots_ = static_cast<std::uint64_t>(config_.duration_s * 1e6 /
                                              static_cast<double>(config_.slot_us));
    if (total_slots_ == 0) total_slots_ = 1;
  }

  void start(event::Scheduler& sched) {
    id_ = sched.add_process(this);
    sched.schedule_after(config_.slot_us, event::Event{0, kSlotEvent, id_, 0, 0.0});
  }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    if (ev.type == kSlotEvent) {
      on_slot(sched);
    } else {
      on_refit(sched);
    }
  }

  const char* name() const noexcept override { return "online_recal"; }

  OnlineRecalResult finish() {
    if (win_slots_ > 0) close_window();
    result_.slots = slot_;
    result_.windows = result_.window_stats.size();
    result_.refits = recal_.refits();
    result_.avg_margin_db =
        margin_n_ > 0 ? margin_sum_ / static_cast<double>(margin_n_) : 0.0;
    result_.up_fraction =
        slot_ > 0 ? 1.0 - static_cast<double>(result_.down_slots) /
                              static_cast<double>(slot_)
                  : 0.0;
    const std::size_t n = result_.window_stats.size();
    if (n > 0) {
      const std::size_t q = n >= 4 ? n / 4 : 1;
      double early = 0.0, tail = 0.0;
      for (std::size_t i = 0; i < q; ++i) {
        early += result_.window_stats[i].avg_margin_db;
        tail += result_.window_stats[n - 1 - i].avg_margin_db;
      }
      result_.early_margin_db = early / static_cast<double>(q);
      result_.tail_margin_db = tail / static_cast<double>(q);
    }
    return result_;
  }

 private:
  void on_slot(event::Scheduler& sched) {
    const util::SimTimeUs now = sched.now();
    const double frac =
        static_cast<double>(slot_) / static_cast<double>(total_slots_);

    // The rig wanders; the tracker reports; the injected VR-frame drift
    // corrupts the report; the gain drift corrupts the applied voltages.
    const geom::Pose rig = core::random_rig_pose(
        proto_->nominal_rig_pose, config_.pose_position_extent,
        config_.pose_angle_extent, rng_);
    proto_->scene.set_rig_pose(rig);
    const geom::Pose psi =
        drift_pose(config_.drift, frac) * proto_->tracker.report(now, rig).pose;
    const double gain = config_.drift.galvo_gain_drift * frac;

    const core::PointingResult pr = solver_->solve(psi, hint_);
    hint_ = pr.voltages;
    const double power =
        proto_->scene.received_power_dbm(gain_scaled(pr.voltages, gain));
    const double margin = power - sensitivity_;
    const bool up = std::isfinite(power) && margin > 0.0;

    if (std::isfinite(margin)) {
      margin_sum_ += margin;
      ++margin_n_;
      win_margin_sum_ += margin;
      ++win_margin_n_;
      win_power_sum_ += power;
    }
    ++win_slots_;
    win_up_ += up ? 1 : 0;
    if (!up) {
      ++result_.down_slots;
      // Attributable to refit only if one is in flight at this slot —
      // drift-caused outage before the monitor latches is not the
      // recalibrator's doing.
      if (recal_.refit_active()) win_refit_down_ = true;
    }
    win_refit_ = win_refit_ || recal_.refit_active();

    if constexpr (obs::kEnabled) {
      obs::Registry& reg = ctx_->registry();
      reg.counter("cal_slots_total").inc();
      if (std::isfinite(margin)) {
        reg.histogram("cal_margin_db", obs::HistogramSpec::linear(-20.25, 0.5, 96))
            .record(margin);
      }
    }

    if (armed_) {
      recal_.on_power(power);
    }

    // Sample admission: every Nth slot, polish against measured power and
    // keep the tuple only if the link is genuinely coupled there.
    if (config_.online && slot_ % static_cast<std::uint64_t>(
                                      config_.sample_every_slots) == 0) {
      sim::Voltages v = pr.voltages;
      const double polished =
          polish_voltages(proto_->scene, gain, config_.polish_rounds, v);
      if (polished > sensitivity_) {
        recal_.admit({v, psi});
        if constexpr (obs::kEnabled) {
          ctx_->registry().counter("cal_samples_admitted_total").inc();
        }
      }
    }

    if (config_.online && recal_.refit_pending()) {
      recal_.begin_refit(now);
      win_refit_ = true;
      sched.schedule_after(config_.fit_interval_us,
                           event::Event{0, kRefitEvent, id_, 0, 0.0});
    }

    ++slot_;
    if (slot_ % config_.window_slots == 0) close_window();
    if (slot_ < total_slots_) {
      sched.schedule_after(config_.slot_us,
                           event::Event{0, kSlotEvent, id_, 0, 0.0});
    }
  }

  void on_refit(event::Scheduler& sched) {
    if (!recal_.refit_active()) return;
    bool more = false;
    for (int i = 0; i < config_.fit_iters_per_event; ++i) {
      more = recal_.step_refit();
      if (!more) break;
    }
    if (more) {
      sched.schedule_after(config_.fit_interval_us,
                           event::Event{0, kRefitEvent, id_, 0, 0.0});
      return;
    }
    recal_.finish_refit(sched.now());
    // Atomic swap: the very next slot realigns with the refreshed mapping.
    solver_.emplace(calibration_->tx_stage1.model, calibration_->rx_stage1.model,
                    recal_.map_tx(), recal_.map_rx(), core::PointingOptions{},
                    *ctx_);
  }

  void close_window() {
    OnlineRecalWindow w;
    w.avg_margin_db =
        win_margin_n_ > 0 ? win_margin_sum_ / static_cast<double>(win_margin_n_)
                          : -30.0;
    w.up_fraction = win_slots_ > 0
                        ? static_cast<double>(win_up_) /
                              static_cast<double>(win_slots_)
                        : 0.0;
    w.refit_active = win_refit_;
    if (win_refit_) {
      ++result_.refit_windows;
      if (win_refit_down_) ++result_.refit_down_windows;
    }
    result_.window_stats.push_back(w);

    // First window closed = commissioning baseline measured: arm the
    // drift monitor at this link's own healthy power.
    if (!armed_) {
      const double healthy = win_margin_n_ > 0
                                 ? win_power_sum_ /
                                       static_cast<double>(win_margin_n_)
                                 : sensitivity_ + 5.0;
      recal_.arm(healthy);
      armed_ = true;
    }
    // NOTE: the monitor's gauge export (DriftMonitor::publish) is NOT
    // called here — gauges merge last-writer-wins, which would make
    // fleet shard rollups order-dependent.  Callers that own their
    // registry publish explicitly.
    win_margin_sum_ = 0.0;
    win_power_sum_ = 0.0;
    win_margin_n_ = 0;
    win_slots_ = 0;
    win_up_ = 0;
    win_refit_ = false;
    win_refit_down_ = false;
  }

  sim::Prototype* proto_;
  const core::CalibrationResult* calibration_;
  OnlineRecalConfig config_;
  const runtime::Context* ctx_;
  util::Rng rng_;
  OnlineRecalibrator recal_;
  std::optional<core::PointingSolver> solver_;
  double sensitivity_;

  event::ProcessId id_ = event::kNoProcess;
  std::uint64_t total_slots_ = 0;
  std::uint64_t slot_ = 0;
  sim::Voltages hint_{};
  bool armed_ = false;

  double margin_sum_ = 0.0;
  std::uint64_t margin_n_ = 0;
  double win_margin_sum_ = 0.0;
  double win_power_sum_ = 0.0;
  std::uint32_t win_margin_n_ = 0;
  std::uint32_t win_slots_ = 0;
  std::uint32_t win_up_ = 0;
  bool win_refit_ = false;
  bool win_refit_down_ = false;

  OnlineRecalResult result_;
};

}  // namespace

OnlineRecalResult run_online_recal_session(sim::Prototype& proto,
                                           const core::CalibrationResult& calibration,
                                           const OnlineRecalConfig& config,
                                           const runtime::Context* ctx) {
  const runtime::Context& c =
      ctx != nullptr ? *ctx : runtime::Context::default_ctx();
  session::ScopedScheduler lease(session::bind_session_clock(ctx));
  event::Scheduler& sched = lease.get();

  RecalSession session(proto, calibration, config, c);
  session.start(sched);
  sched.run();

  OnlineRecalResult result = session.finish();
  result.events = sched.dispatched();
  proto.scene.set_rig_pose(proto.nominal_rig_pose);
  return result;
}

}  // namespace cyclops::cal

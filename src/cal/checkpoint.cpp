#include "cal/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/persistence.hpp"
#include "galvo/galvo_mirror.hpp"

namespace cyclops::cal {
namespace {

using core::persist::expect_line;
using core::persist::expect_u64_line;
using core::persist::fail;
using core::persist::write_u64_values;
using core::persist::write_values;

constexpr const char* kMagic = "cyclops-cal-checkpoint v1";
constexpr std::size_t kModelParams = galvo::GalvoParams::kParamCount;  // 25
constexpr std::size_t kReportDoubles = kModelParams + 4;               // 29

// Poses round-trip through the raw rotation matrix (row-major) plus the
// translation: 12 doubles.  Pose::params() goes through the
// rotation-vector form, which loses ULPs — not acceptable for bit-exact
// resume.
std::array<double, 12> pose_to_raw(const geom::Pose& pose) {
  std::array<double, 12> out{};
  const geom::Mat3& r = pose.rotation();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) out[static_cast<std::size_t>(3 * i + j)] = r.m[i][j];
  }
  out[9] = pose.translation().x;
  out[10] = pose.translation().y;
  out[11] = pose.translation().z;
  return out;
}

geom::Pose pose_from_raw(const std::vector<double>& v, std::size_t offset = 0) {
  geom::Mat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      r.m[i][j] = v[offset + static_cast<std::size_t>(3 * i + j)];
    }
  }
  return {r, {v[offset + 9], v[offset + 10], v[offset + 11]}};
}

std::array<double, kReportDoubles> kspace_report_to_raw(
    const std::optional<core::KSpaceFitReport>& report) {
  std::array<double, kReportDoubles> out{};
  if (!report) return out;
  const auto packed = report->model.params().pack();
  std::copy(packed.begin(), packed.end(), out.begin());
  out[kModelParams] = report->avg_error_m;
  out[kModelParams + 1] = report->max_error_m;
  out[kModelParams + 2] = static_cast<double>(report->optimizer_iterations);
  out[kModelParams + 3] = report->converged ? 1.0 : 0.0;
  return out;
}

core::KSpaceFitReport kspace_report_from_raw(const std::vector<double>& v) {
  // Raw field assignment, NOT GalvoParams::unpack: unpack re-normalizes
  // the direction vectors, which shifts ULPs on load and would break the
  // bit-exact-continuation contract for every phase after a Stage-1 fit
  // completes.  The checkpointed model is already canonical (it came out
  // of unpack when the fit finished); the reader must reproduce it
  // verbatim.
  galvo::GalvoParams params;
  params.p0 = {v[0], v[1], v[2]};
  params.x0 = {v[3], v[4], v[5]};
  params.n1 = {v[6], v[7], v[8]};
  params.q1 = {v[9], v[10], v[11]};
  params.r1 = {v[12], v[13], v[14]};
  params.n2 = {v[15], v[16], v[17]};
  params.q2 = {v[18], v[19], v[20]};
  params.r2 = {v[21], v[22], v[23]};
  params.theta1 = v[24];
  return {core::GmaModel(params), v[kModelParams], v[kModelParams + 1],
          static_cast<int>(v[kModelParams + 2]), v[kModelParams + 3] != 0.0};
}

std::array<double, 28> mapping_report_to_raw(
    const core::MappingFitReport& report) {
  std::array<double, 28> out{};
  const auto tx = pose_to_raw(report.map_tx);
  const auto rx = pose_to_raw(report.map_rx);
  std::copy(tx.begin(), tx.end(), out.begin());
  std::copy(rx.begin(), rx.end(), out.begin() + 12);
  out[24] = report.avg_coincidence_m;
  out[25] = report.max_coincidence_m;
  out[26] = static_cast<double>(report.optimizer_iterations);
  out[27] = report.converged ? 1.0 : 0.0;
  return out;
}

core::MappingFitReport mapping_report_from_raw(const std::vector<double>& v) {
  return {pose_from_raw(v, 0),  pose_from_raw(v, 12),       v[24], v[25],
          static_cast<int>(v[26]), v[27] != 0.0};
}

bool flag(const std::vector<std::uint64_t>& values, std::size_t index,
          const char* what, int line_number) {
  if (values[index] > 1) {
    fail(line_number, std::string(what) + " flag must be 0 or 1, got " +
                          std::to_string(values[index]));
  }
  return values[index] == 1;
}

}  // namespace

void write_engine_checkpoint(std::ostream& out, const EngineCheckpoint& cp) {
  out << kMagic << '\n';
  const std::uint64_t state[9] = {
      static_cast<std::uint64_t>(cp.phase),
      cp.steps,
      static_cast<std::uint64_t>(cp.stage2_i),
      static_cast<std::uint64_t>(cp.blind_a),
      static_cast<std::uint64_t>(cp.blind_b),
      static_cast<std::uint64_t>(cp.retry_attempt),
      cp.lm_active ? 1ull : 0ull,
      cp.tx_report ? 1ull : 0ull,
      cp.rx_report ? 1ull : 0ull};
  write_u64_values(out, "state", state);
  write_u64_values(out, "rng_state", cp.rng.s);
  const double rng_normal[2] = {cp.rng.cached_normal,
                                cp.rng.has_cached_normal ? 1.0 : 0.0};
  write_values(out, "rng_normal", rng_normal);
  const double collector[4] = {static_cast<double>(cp.collector.i),
                               static_cast<double>(cp.collector.j),
                               cp.collector.v1, cp.collector.v2};
  write_values(out, "collector", collector);
  write_values(out, "tx_report", kspace_report_to_raw(cp.tx_report));
  write_values(out, "rx_report", kspace_report_to_raw(cp.rx_report));

  const auto write_board_samples =
      [&out](const char* count_key, const char* data_key,
             const std::vector<core::BoardSample>& samples) {
        const std::uint64_t n[1] = {samples.size()};
        write_u64_values(out, count_key, n);
        std::vector<double> flat;
        flat.reserve(samples.size() * 4);
        for (const auto& s : samples) {
          flat.push_back(s.x);
          flat.push_back(s.y);
          flat.push_back(s.v1);
          flat.push_back(s.v2);
        }
        write_values(out, data_key, flat);
      };
  write_board_samples("tx_samples_n", "tx_samples", cp.tx_samples);
  write_board_samples("rx_samples_n", "rx_samples", cp.rx_samples);

  const std::uint64_t lm_n[1] = {cp.lm.params.size()};
  write_u64_values(out, "lm_n", lm_n);
  write_values(out, "lm_params", cp.lm.params);
  const double lm_state[4] = {cp.lm.lambda, cp.lm.initial_cost,
                              static_cast<double>(cp.lm.iterations),
                              cp.lm.converged ? 1.0 : 0.0};
  write_values(out, "lm_state", lm_state);

  const std::uint64_t tuples_n[1] = {cp.tuples.size()};
  write_u64_values(out, "tuples_n", tuples_n);
  std::vector<double> flat;
  flat.reserve(cp.tuples.size() * 16);
  for (const auto& t : cp.tuples) {
    flat.push_back(t.voltages.tx1);
    flat.push_back(t.voltages.tx2);
    flat.push_back(t.voltages.rx1);
    flat.push_back(t.voltages.rx2);
    const auto psi = pose_to_raw(t.psi);
    flat.insert(flat.end(), psi.begin(), psi.end());
  }
  write_values(out, "tuples", flat);

  const double hint[4] = {cp.hint.tx1, cp.hint.tx2, cp.hint.rx1, cp.hint.rx2};
  write_values(out, "hint", hint);
  write_values(out, "tx_guess", pose_to_raw(cp.tx_guess));
  write_values(out, "rx_guess", pose_to_raw(cp.rx_guess));
  write_values(out, "mapping", mapping_report_to_raw(cp.mapping));

  std::array<double, 11> blind{};
  blind[0] = cp.blind_centroid.x;
  blind[1] = cp.blind_centroid.y;
  blind[2] = cp.blind_centroid.z;
  std::copy(cp.blind_tx_best.begin(), cp.blind_tx_best.end(),
            blind.begin() + 3);
  blind[9] = cp.blind_tx_best_value;
  blind[10] = cp.blind_best_value;
  write_values(out, "blind", blind);
  write_values(out, "blind_seed", pose_to_raw(cp.blind_tx_seed));
  write_values(out, "blind_best", mapping_report_to_raw(cp.blind_best));
  write_values(out, "retry_tx", pose_to_raw(cp.retry_tx));
  write_values(out, "retry_rx", pose_to_raw(cp.retry_rx));
}

EngineCheckpoint read_engine_checkpoint(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  int line = 1;
  if (magic != kMagic) {
    fail(line, "not a cyclops calibration-engine checkpoint header: '" +
                   magic + "' (expected '" + kMagic + "')");
  }

  EngineCheckpoint cp;
  const auto state = expect_u64_line(in, "state", 9, line);
  if (state[0] > static_cast<std::uint64_t>(Phase::kDone)) {
    fail(line, "phase " + std::to_string(state[0]) + " out of range (0.." +
                   std::to_string(static_cast<int>(Phase::kDone)) + ")");
  }
  cp.phase = static_cast<int>(state[0]);
  cp.steps = state[1];
  cp.stage2_i = static_cast<int>(state[2]);
  cp.blind_a = static_cast<int>(state[3]);
  cp.blind_b = static_cast<int>(state[4]);
  cp.retry_attempt = static_cast<int>(state[5]);
  cp.lm_active = flag(state, 6, "lm_active", line);
  const bool has_tx_report = flag(state, 7, "tx_report", line);
  const bool has_rx_report = flag(state, 8, "rx_report", line);

  const auto rng_s = expect_u64_line(in, "rng_state", 4, line);
  std::copy(rng_s.begin(), rng_s.end(), cp.rng.s);
  const auto rng_normal = expect_line(in, "rng_normal", 2, line);
  cp.rng.cached_normal = rng_normal[0];
  cp.rng.has_cached_normal = rng_normal[1] != 0.0;

  const auto collector = expect_line(in, "collector", 4, line);
  cp.collector = {static_cast<int>(collector[0]),
                  static_cast<int>(collector[1]), collector[2], collector[3]};

  const auto tx_report = expect_line(in, "tx_report", kReportDoubles, line);
  if (has_tx_report) cp.tx_report = kspace_report_from_raw(tx_report);
  const auto rx_report = expect_line(in, "rx_report", kReportDoubles, line);
  if (has_rx_report) cp.rx_report = kspace_report_from_raw(rx_report);

  const auto read_board_samples = [&](const char* count_key,
                                      const char* data_key) {
    const auto n = expect_u64_line(in, count_key, 1, line)[0];
    const auto flat = expect_line(in, data_key, n * 4, line);
    std::vector<core::BoardSample> samples;
    samples.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      samples.push_back({flat[4 * i], flat[4 * i + 1], flat[4 * i + 2],
                         flat[4 * i + 3]});
    }
    return samples;
  };
  cp.tx_samples = read_board_samples("tx_samples_n", "tx_samples");
  cp.rx_samples = read_board_samples("rx_samples_n", "rx_samples");

  const auto lm_n = expect_u64_line(in, "lm_n", 1, line)[0];
  cp.lm.params = expect_line(in, "lm_params", lm_n, line);
  const auto lm_state = expect_line(in, "lm_state", 4, line);
  cp.lm.lambda = lm_state[0];
  cp.lm.initial_cost = lm_state[1];
  cp.lm.iterations = static_cast<int>(lm_state[2]);
  cp.lm.converged = lm_state[3] != 0.0;

  const auto tuples_n = expect_u64_line(in, "tuples_n", 1, line)[0];
  const auto tuples = expect_line(in, "tuples", tuples_n * 16, line);
  cp.tuples.reserve(tuples_n);
  for (std::uint64_t i = 0; i < tuples_n; ++i) {
    const std::size_t base = 16 * i;
    cp.tuples.push_back(
        {sim::Voltages{tuples[base], tuples[base + 1], tuples[base + 2],
                       tuples[base + 3]},
         pose_from_raw(tuples, base + 4)});
  }

  const auto hint = expect_line(in, "hint", 4, line);
  cp.hint = {hint[0], hint[1], hint[2], hint[3]};
  cp.tx_guess = pose_from_raw(expect_line(in, "tx_guess", 12, line));
  cp.rx_guess = pose_from_raw(expect_line(in, "rx_guess", 12, line));
  cp.mapping = mapping_report_from_raw(expect_line(in, "mapping", 28, line));

  const auto blind = expect_line(in, "blind", 11, line);
  cp.blind_centroid = {blind[0], blind[1], blind[2]};
  std::copy(blind.begin() + 3, blind.begin() + 9, cp.blind_tx_best.begin());
  cp.blind_tx_best_value = blind[9];
  cp.blind_best_value = blind[10];
  cp.blind_tx_seed = pose_from_raw(expect_line(in, "blind_seed", 12, line));
  cp.blind_best =
      mapping_report_from_raw(expect_line(in, "blind_best", 28, line));
  cp.retry_tx = pose_from_raw(expect_line(in, "retry_tx", 12, line));
  cp.retry_rx = pose_from_raw(expect_line(in, "retry_rx", 12, line));
  return cp;
}

void save_engine_checkpoint(const std::filesystem::path& path,
                            const EngineCheckpoint& cp) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  write_engine_checkpoint(out, cp);
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

EngineCheckpoint load_engine_checkpoint(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  return read_engine_checkpoint(in);
}

EngineCheckpoint CalibrationEngine::checkpoint() const {
  EngineCheckpoint cp;
  cp.phase = static_cast<int>(phase_);
  cp.steps = steps_;
  cp.rng = rng_.state();
  cp.tx_samples = tx_samples_;
  cp.rx_samples = rx_samples_;
  if (collector_) {
    cp.collector = collector_->state();
    // Mid-collection the in-progress samples live in the collector.
    if (phase_ == Phase::kStage1TxCollect) {
      cp.tx_samples = collector_->samples();
    } else {
      cp.rx_samples = collector_->samples();
    }
  }
  cp.tx_report = tx_report_;
  cp.rx_report = rx_report_;
  if (lm_) {
    cp.lm_active = true;
    cp.lm = lm_->checkpoint();
  }
  cp.tuples = tuples_;
  cp.hint = hint_;
  cp.stage2_i = stage2_i_;
  cp.tx_guess = tx_guess_;
  cp.rx_guess = rx_guess_;
  cp.mapping = mapping_;
  cp.blind_centroid = blind_centroid_;
  cp.blind_a = blind_a_;
  cp.blind_b = blind_b_;
  cp.blind_tx_best = blind_tx_best_;
  cp.blind_tx_best_value = blind_tx_best_value_;
  cp.blind_tx_seed = blind_tx_seed_;
  cp.blind_best = blind_best_;
  cp.blind_best_value = blind_best_value_;
  cp.retry_attempt = retry_attempt_;
  cp.retry_tx = retry_tx_;
  cp.retry_rx = retry_rx_;
  return cp;
}

void CalibrationEngine::restore(const EngineCheckpoint& cp) {
  if (cp.phase < 0 || cp.phase > static_cast<int>(Phase::kDone)) {
    throw std::runtime_error("checkpoint phase " + std::to_string(cp.phase) +
                             " out of range");
  }
  phase_ = static_cast<Phase>(cp.phase);
  steps_ = cp.steps;
  rng_ = util::Rng::from_state(cp.rng);
  tx_samples_ = cp.tx_samples;
  rx_samples_ = cp.rx_samples;
  tx_report_ = cp.tx_report;
  rx_report_ = cp.rx_report;
  tuples_ = cp.tuples;
  hint_ = cp.hint;
  stage2_i_ = cp.stage2_i;
  tx_guess_ = cp.tx_guess;
  rx_guess_ = cp.rx_guess;
  mapping_ = cp.mapping;
  blind_centroid_ = cp.blind_centroid;
  blind_a_ = cp.blind_a;
  blind_b_ = cp.blind_b;
  blind_tx_best_ = cp.blind_tx_best;
  blind_tx_best_value_ = cp.blind_tx_best_value;
  blind_tx_seed_ = cp.blind_tx_seed;
  blind_best_ = cp.blind_best;
  blind_best_value_ = cp.blind_best_value;
  retry_attempt_ = cp.retry_attempt;
  retry_tx_ = cp.retry_tx;
  retry_rx_ = cp.retry_rx;

  collector_.reset();
  galvo_.reset();
  aligner_.reset();
  lm_.reset();
  lm_wall_us_ = 0.0;
  result_.reset();

  const auto require_models = [this] {
    if (!tx_report_ || !rx_report_) {
      throw std::runtime_error(
          "checkpoint phase needs Stage-1 models but carries none");
    }
  };
  const auto require_lm = [&cp] {
    if (!cp.lm_active) {
      throw std::runtime_error(
          "checkpoint phase is mid-solve but carries no lm record");
    }
  };

  switch (phase_) {
    case Phase::kStage1TxCollect:
      begin_tx_collect();
      collector_->restore(cp.collector, std::move(tx_samples_));
      tx_samples_.clear();
      break;
    case Phase::kStage1TxFit: {
      require_lm();
      const core::KSpaceFitProblem problem =
          core::make_kspace_problem(tx_samples_, guess_);
      lm_.emplace(problem.residuals, cp.lm, config_.stage1_options, *ctx_);
      break;
    }
    case Phase::kStage1RxCollect:
      begin_rx_collect();
      collector_->restore(cp.collector, std::move(rx_samples_));
      rx_samples_.clear();
      break;
    case Phase::kStage1RxFit: {
      require_lm();
      const core::KSpaceFitProblem problem =
          core::make_kspace_problem(rx_samples_, guess_);
      lm_.emplace(problem.residuals, cp.lm, config_.stage1_options, *ctx_);
      break;
    }
    case Phase::kStage2Collect:
      require_models();
      aligner_.emplace(config_.aligner, *ctx_);
      break;
    case Phase::kStage2Fit: {
      require_models();
      require_lm();
      const core::MappingFitProblem problem = core::make_mapping_problem(
          tx_report_->model, rx_report_->model, tuples_, tx_guess_, rx_guess_);
      lm_.emplace(problem.residuals, cp.lm, config_.stage2_options, *ctx_);
      break;
    }
    case Phase::kStage2BlindA:
      require_models();
      make_blind_tx_residuals();
      break;
    case Phase::kStage2BlindB:
      require_models();
      break;
    case Phase::kStage2Retry:
      require_models();
      if (cp.lm_active) {
        const core::MappingFitProblem problem = core::make_mapping_problem(
            tx_report_->model, rx_report_->model, tuples_, retry_tx_,
            retry_rx_);
        lm_.emplace(problem.residuals, cp.lm, config_.stage2_options, *ctx_);
      }
      break;
    case Phase::kDone:
      require_models();
      result_.emplace(core::CalibrationResult{*tx_report_, *rx_report_,
                                              mapping_, tuples_});
      break;
  }
}

}  // namespace cyclops::cal

// The resumable calibration engine: the §4 two-stage pipeline
// (Stage-1 board collection + K-space fits, Stage-2 aligned-tuple
// collection + mapping fit, multi-start retries) decomposed into small
// uniform steps so a calibration can be paused, checkpointed to disk
// (cal/checkpoint.hpp), resumed, or driven by a discrete-event scheduler
// (cal/process.hpp) — with arithmetic bit-identical to the historical
// one-shot core::calibrate_prototype, which survives as a thin adapter
// over this engine.
//
// One step() is:
//   * one board grid point (collect phases — core::BoardSampleCollector),
//   * one LM iteration (fit phases — opt::LmStepper),
//   * one aligned-sample attempt (Stage-2 collection),
//   * one multi-start (blind Stage-2: a full inner LM solve per step).
//
// Determinism contract: however the steps are sliced across calls (or
// events, or checkpoint/resume cycles), the engine draws the same RNG
// values in the same order as the one-shot pipeline, so the resulting
// CalibrationResult — and the caller-visible RNG stream — are
// bit-identical.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/calibration.hpp"
#include "core/exhaustive_aligner.hpp"
#include "core/kspace_calibration.hpp"
#include "core/mapping_calibration.hpp"
#include "galvo/galvo_mirror.hpp"
#include "opt/levmar.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"
#include "util/rng.hpp"

namespace cyclops::cal {

/// Pipeline position.  The numeric values are part of the checkpoint
/// format (cal/checkpoint.hpp) — append, never renumber.
enum class Phase : int {
  kStage1TxCollect = 0,
  kStage1TxFit = 1,
  kStage1RxCollect = 2,
  kStage1RxFit = 3,
  kStage2Collect = 4,
  kStage2Fit = 5,      ///< Direct 12-parameter fit from the manual guesses.
  kStage2BlindA = 6,   ///< Blind install: 6-D TX multi-starts.
  kStage2BlindB = 7,   ///< Blind install: RX multi-starts + joint polish.
  kStage2Retry = 8,    ///< Jittered-guess retries while the residual is poor.
  kDone = 9,
};

const char* phase_name(Phase phase) noexcept;

struct EngineCheckpoint;

class CalibrationEngine {
 public:
  /// `proto` must outlive the engine; the engine mutates its scene (rig
  /// poses during Stage-2 collection) exactly as the one-shot pipeline
  /// did and restores the nominal pose on completion.  The engine owns a
  /// copy of `rng` — read the advanced stream back via rng_state().
  CalibrationEngine(sim::Prototype& proto,
                    const core::CalibrationConfig& config,
                    const util::Rng& rng,
                    const runtime::Context& ctx = runtime::Context::default_ctx());
  CalibrationEngine(const CalibrationEngine&) = delete;
  CalibrationEngine& operator=(const CalibrationEngine&) = delete;

  /// Runs one pipeline step.  Returns !done() afterwards, so
  /// `while (engine.step()) {}` reproduces calibrate_prototype.
  bool step();

  bool done() const noexcept { return phase_ == Phase::kDone; }
  Phase phase() const noexcept { return phase_; }
  /// True in the timed-sampling phases (board grid points / aligner
  /// searches); false in the optimizer phases.  Drives the event cadence
  /// in cal::CalibrationProcess.
  bool collecting() const noexcept {
    return phase_ == Phase::kStage1TxCollect ||
           phase_ == Phase::kStage1RxCollect ||
           phase_ == Phase::kStage2Collect;
  }
  /// Steps taken so far (monotonic; survives checkpoint/resume).
  std::uint64_t steps() const noexcept { return steps_; }

  /// The engine's RNG stream (for handing back to a caller-owned Rng).
  util::RngState rng_state() const noexcept { return rng_.state(); }

  /// Valid once done().
  const core::CalibrationResult& result() const noexcept { return *result_; }
  core::CalibrationResult take_result() { return std::move(*result_); }

  /// Snapshot at the current step boundary.  Restoring it into a fresh
  /// engine built against the *same* prototype/config/context continues
  /// the calibration bit-exactly.
  EngineCheckpoint checkpoint() const;
  void restore(const EngineCheckpoint& checkpoint);

 private:
  void step_stage1_collect();
  void step_stage1_fit();
  void step_stage2_collect();
  void step_stage2_fit();
  void step_blind_a();
  void step_blind_b();
  void step_retry();
  void finalize();

  void begin_tx_collect();
  void begin_rx_collect();
  void begin_stage2_fit();
  void begin_blind();
  void enter_blind_b();
  void begin_retry_fit();
  void make_blind_tx_residuals();

  /// One LmStepper iteration with wall accounting; emits the `lm_*`
  /// metrics on completion (the stepper itself records nothing — parity
  /// with the levenberg_marquardt adapter is the engine's job).
  bool lm_step_and_record();

  sim::Prototype* proto_;
  core::CalibrationConfig config_;
  const runtime::Context* ctx_;
  util::Rng rng_;

  galvo::GalvoSpec spec_;
  core::GmaModel guess_;

  Phase phase_ = Phase::kStage1TxCollect;
  std::uint64_t steps_ = 0;

  // Stage 1.  (The reports are optional because GmaModel — deliberately —
  // has no default state.)
  std::optional<galvo::GalvoMirror> galvo_;
  std::optional<core::BoardSampleCollector> collector_;
  std::vector<core::BoardSample> tx_samples_, rx_samples_;
  std::optional<core::KSpaceFitReport> tx_report_, rx_report_;

  // The in-flight LM solve (Stage-1 fits, Stage-2 direct fit, retries).
  std::optional<opt::LmStepper> lm_;
  double lm_wall_us_ = 0.0;

  // Stage 2.
  std::optional<core::ExhaustiveAligner> aligner_;
  std::vector<core::AlignedSample> tuples_;
  sim::Voltages hint_{};
  int stage2_i_ = 0;
  geom::Pose tx_guess_, rx_guess_;
  core::MappingFitReport mapping_;

  // Blind Stage-2 sub-state (fit_mapping_blind's multi-start search).
  opt::ResidualFn blind_tx_residuals_;
  geom::Vec3 blind_centroid_{};
  int blind_a_ = 0, blind_b_ = 0;
  std::array<double, 6> blind_tx_best_{};
  double blind_tx_best_value_ = 1e18;
  geom::Pose blind_tx_seed_;
  core::MappingFitReport blind_best_;
  double blind_best_value_ = 1e18;

  // Retry sub-state.
  int retry_attempt_ = 0;
  geom::Pose retry_tx_, retry_rx_;

  std::optional<core::CalibrationResult> result_;
};

}  // namespace cyclops::cal

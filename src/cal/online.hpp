// Online recalibration (§4's deployment story, made operational): while a
// session is serving, consume per-slot post-realignment link-margin
// residuals, let core::DriftMonitor decide when the learned Stage-2
// mapping has drifted, and incrementally refit the 12 mapping parameters
// from freshly collected aligned tuples — WITHOUT interrupting service.
// The old mapping keeps steering the beam while refit iterations run as
// scheduler events; the refreshed mapping swaps in atomically at the end.
//
// Stage 1 is never re-learned online (the GMA's K-space model is factory
// property); this is exactly the paper's "only re-training that needs to
// be re-done is the mapping step".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/calibration.hpp"
#include "core/drift_monitor.hpp"
#include "core/gma_model.hpp"
#include "core/mapping_calibration.hpp"
#include "geom/pose.hpp"
#include "opt/levmar.hpp"
#include "runtime/context.hpp"
#include "sim/prototype.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::cal {

struct OnlineRefitOptions {
  /// Aligned tuples required before a refit may start.
  int min_samples = 24;
  /// Ring capacity for freshly admitted tuples (oldest evicted).
  int buffer_capacity = 48;
  opt::LevMarOptions options;
};

/// The serving-side refit core: drift detection + sample admission +
/// iteration-granular mapping refit.  Owns the current mapping poses; a
/// caller rebuilds its PointingSolver from map_tx()/map_rx() after each
/// finish_refit().
class OnlineRecalibrator {
 public:
  OnlineRecalibrator(core::GmaModel tx_kspace, core::GmaModel rx_kspace,
                     const geom::Pose& map_tx, const geom::Pose& map_rx,
                     const core::DriftMonitorConfig& monitor,
                     const OnlineRefitOptions& options,
                     const runtime::Context& ctx = runtime::Context::default_ctx());

  const geom::Pose& map_tx() const noexcept { return map_tx_; }
  const geom::Pose& map_rx() const noexcept { return map_rx_; }

  /// Installs the commissioning baseline: rebuilds the drift monitor with
  /// `healthy_power_dbm` measured from the live link's first window.
  /// Discards any evidence fed before arming.
  void arm(double healthy_power_dbm);

  /// Feeds one post-realignment power residual (drift evidence only).
  void on_power(double power_dbm);

  /// Admits a freshly *verified-aligned* tuple to the refit ring (oldest
  /// evicted at capacity).  Does not touch the drift monitor.
  void admit(const core::AlignedSample& sample);

  /// Convenience: admit(sample) + on_power(power_dbm).
  void observe(const core::AlignedSample& sample, double power_dbm);

  /// True when the monitor has latched drift, enough fresh tuples are
  /// buffered, and no refit is in flight.
  bool refit_pending() const noexcept;
  bool refit_active() const noexcept { return stepper_.has_value(); }

  /// Freezes the buffered tuples and starts an LM refit seeded from the
  /// current mapping.  `now_us` stamps the refit-latency metric.
  void begin_refit(util::SimTimeUs now_us);

  /// One LM iteration.  Returns true while more iterations remain.
  bool step_refit();

  /// Installs the refreshed mapping, resets the drift monitor (hysteresis
  /// release), clears the buffer, and records the cal_* metrics.
  /// Returns the refit's fit report.
  core::MappingFitReport finish_refit(util::SimTimeUs now_us);

  int refits() const noexcept { return refits_; }
  int buffered() const noexcept { return static_cast<int>(buffer_.size()); }
  const core::DriftMonitor& monitor() const noexcept { return monitor_; }
  core::DriftMonitor& monitor() noexcept { return monitor_; }

 private:
  core::GmaModel tx_kspace_, rx_kspace_;
  geom::Pose map_tx_, map_rx_;
  core::DriftMonitor monitor_;
  OnlineRefitOptions options_;
  const runtime::Context* ctx_;

  std::vector<core::AlignedSample> buffer_;
  std::vector<core::AlignedSample> refit_samples_;  ///< Frozen for the fit.
  std::optional<opt::LmStepper> stepper_;
  util::SimTimeUs refit_started_us_ = 0;
  int refits_ = 0;
};

/// The drift-injection scenario: a slow VRH-T frame drift (rotation +
/// translation ramp over the session) plus a step perturbation partway
/// through, plus a slow RX galvo gain drift — the re-deployment/VRH-drift
/// conditions of §4.  Frame drift corrupts the *reports* (the physical
/// world is untouched); gain drift scales the voltages the RX galvos
/// actually apply.
struct DriftInjection {
  double ramp_angle_rad = 0.010;      ///< Frame-rotation ramp (full session).
  double ramp_translation_m = 0.010;  ///< Frame-translation ramp.
  double step_angle_rad = 0.0015;     ///< Step perturbation (added at once).
  double step_translation_m = 0.0015;
  double step_at_fraction = 0.55;     ///< Session fraction where the step hits.
  double galvo_gain_drift = 0.003;    ///< Relative RX gain error at session end.
};

struct OnlineRecalConfig {
  double duration_s = 2.0;
  util::SimTimeUs slot_us = 1000;
  std::uint32_t window_slots = 50;
  /// false = frozen-calibration baseline: identical slot stream, no refit.
  bool online = true;
  std::uint64_t seed = 1;
  DriftInjection drift;
  /// healthy_power_dbm is overridden at runtime from the first window's
  /// measured mean (the commissioning baseline).
  core::DriftMonitorConfig monitor{-10.5, 2.0, 32, 16};
  /// Every Nth slot, polish the solver's voltages against measured power
  /// and admit the tuple to the refit buffer.
  int sample_every_slots = 4;
  /// Coordinate-descent polish rounds per admitted sample.
  int polish_rounds = 3;
  OnlineRefitOptions refit;
  /// Refit event cadence: LM iterations per event / event spacing.
  int fit_iters_per_event = 6;
  util::SimTimeUs fit_interval_us = 500;
  /// Rig-pose excursion box while serving (sample diversity).
  double pose_position_extent = 0.08;
  double pose_angle_extent = 0.06;
};

struct OnlineRecalWindow {
  double avg_margin_db = 0.0;
  double up_fraction = 0.0;
  bool refit_active = false;
};

struct OnlineRecalResult {
  std::uint64_t events = 0;
  std::uint64_t slots = 0;
  std::uint64_t windows = 0;
  int refits = 0;
  std::uint64_t down_slots = 0;
  /// Windows in which a slot was down *while a refit was in flight* —
  /// the "refit without outage" gate counts these.  Down slots before
  /// the monitor latches are drift outage, not refit outage.
  std::uint64_t refit_down_windows = 0;
  std::uint64_t refit_windows = 0;
  double avg_margin_db = 0.0;
  /// Mean window margin over the first/last quarter of the session (the
  /// pre-drift baseline and the post-drift outcome).
  double early_margin_db = 0.0;
  double tail_margin_db = 0.0;
  double up_fraction = 0.0;
  std::vector<OnlineRecalWindow> window_stats;
};

/// Runs one drift-injected serving session on an event scheduler: slot
/// events realign via the pointing solver, admit polished tuples, and —
/// when `config.online` — refit the mapping in flight.  Deterministic
/// given (proto seed, config.seed); the frozen baseline (online=false)
/// sees the *identical* slot stream, so twin runs isolate exactly the
/// recalibration effect.
OnlineRecalResult run_online_recal_session(sim::Prototype& proto,
                                           const core::CalibrationResult& calibration,
                                           const OnlineRecalConfig& config,
                                           const runtime::Context* ctx = nullptr);

}  // namespace cyclops::cal

#include "cal/engine.hpp"

#include <algorithm>
#include <chrono>

#include "galvo/factory.hpp"
#include "geom/ray.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace cyclops::cal {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kStage1TxCollect: return "stage1_tx_collect";
    case Phase::kStage1TxFit: return "stage1_tx_fit";
    case Phase::kStage1RxCollect: return "stage1_rx_collect";
    case Phase::kStage1RxFit: return "stage1_rx_fit";
    case Phase::kStage2Collect: return "stage2_collect";
    case Phase::kStage2Fit: return "stage2_fit";
    case Phase::kStage2BlindA: return "stage2_blind_a";
    case Phase::kStage2BlindB: return "stage2_blind_b";
    case Phase::kStage2Retry: return "stage2_retry";
    case Phase::kDone: return "done";
  }
  return "unknown";
}

CalibrationEngine::CalibrationEngine(sim::Prototype& proto,
                                     const core::CalibrationConfig& config,
                                     const util::Rng& rng,
                                     const runtime::Context& ctx)
    : proto_(&proto),
      config_(config),
      ctx_(&ctx),
      rng_(rng),
      spec_(galvo::gvs102_spec()),
      guess_(core::nominal_kspace_guess(proto.config.board_distance)) {
  begin_tx_collect();
}

void CalibrationEngine::begin_tx_collect() {
  galvo_.emplace(proto_->tx_galvo_truth, spec_);
  collector_.emplace(*galvo_, proto_->k_from_tx_gma, config_.board, *ctx_);
}

void CalibrationEngine::begin_rx_collect() {
  galvo_.emplace(proto_->rx_galvo_truth, spec_);
  collector_.emplace(*galvo_, proto_->k_from_rx_gma, config_.board, *ctx_);
}

bool CalibrationEngine::step() {
  if (done()) return false;
  ++steps_;
  switch (phase_) {
    case Phase::kStage1TxCollect:
    case Phase::kStage1RxCollect:
      step_stage1_collect();
      break;
    case Phase::kStage1TxFit:
    case Phase::kStage1RxFit:
      step_stage1_fit();
      break;
    case Phase::kStage2Collect:
      step_stage2_collect();
      break;
    case Phase::kStage2Fit:
      step_stage2_fit();
      break;
    case Phase::kStage2BlindA:
      step_blind_a();
      break;
    case Phase::kStage2BlindB:
      step_blind_b();
      break;
    case Phase::kStage2Retry:
      step_retry();
      break;
    case Phase::kDone:
      break;
  }
  return !done();
}

bool CalibrationEngine::lm_step_and_record() {
  const auto t0 = std::chrono::steady_clock::now();
  const bool more = lm_->step();
  lm_wall_us_ +=
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  if (!more) {
    // The solve just finished: re-emit the metrics levenberg_marquardt
    // records, so a stepped calibration is indistinguishable from the
    // one-shot pipeline in the registry (iteration counts deterministic,
    // wall time best-effort).
    if constexpr (obs::kEnabled) {
      const opt::LevMarResult fit = lm_->result();
      obs::Registry& registry = ctx_->registry();
      registry.counter("lm_solves_total").inc();
      if (fit.converged) registry.counter("lm_converged_total").inc();
      registry
          .histogram("lm_iterations", obs::HistogramSpec::linear(-0.5, 1.0, 64))
          .record(static_cast<double>(fit.iterations));
      registry.histogram("lm_solve_wall_us", obs::HistogramSpec::duration_us())
          .record(lm_wall_us_);
    }
  }
  return more;
}

void CalibrationEngine::step_stage1_collect() {
  collector_->step(rng_);
  if (!collector_->done()) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (phase_ == Phase::kStage1TxCollect) {
    tx_samples_ = collector_->take_samples();
    collector_.reset();
    const core::KSpaceFitProblem problem =
        core::make_kspace_problem(tx_samples_, guess_);
    lm_wall_us_ = 0.0;
    lm_.emplace(problem.residuals, problem.initial, config_.stage1_options,
                *ctx_);
    phase_ = Phase::kStage1TxFit;
  } else {
    rx_samples_ = collector_->take_samples();
    collector_.reset();
    const core::KSpaceFitProblem problem =
        core::make_kspace_problem(rx_samples_, guess_);
    lm_wall_us_ = 0.0;
    lm_.emplace(problem.residuals, problem.initial, config_.stage1_options,
                *ctx_);
    phase_ = Phase::kStage1RxFit;
  }
  lm_wall_us_ +=
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
}

void CalibrationEngine::step_stage1_fit() {
  if (lm_step_and_record()) return;
  const opt::LevMarResult fit = lm_->result();
  lm_.reset();
  if (phase_ == Phase::kStage1TxFit) {
    tx_report_ = core::finish_kspace_fit(tx_samples_, fit);
    begin_rx_collect();
    phase_ = Phase::kStage1RxCollect;
  } else {
    rx_report_ = core::finish_kspace_fit(rx_samples_, fit);
    galvo_.reset();
    aligner_.emplace(config_.aligner, *ctx_);
    tuples_.clear();
    tuples_.reserve(static_cast<std::size_t>(
        std::max(config_.stage2_samples, 0)));
    hint_ = {};
    stage2_i_ = 0;
    phase_ = Phase::kStage2Collect;
  }
}

void CalibrationEngine::step_stage2_collect() {
  if (stage2_i_ < config_.stage2_samples) {
    // One aligned-sample attempt: exactly the one-shot loop body.
    const geom::Pose pose = core::random_rig_pose(
        proto_->nominal_rig_pose, config_.pose_position_extent,
        config_.pose_angle_extent, rng_);
    proto_->apply_rig_flex(rng_);
    proto_->scene.set_rig_pose(pose);
    const core::AlignResult aligned = aligner_->align(proto_->scene, hint_);
    if constexpr (obs::kEnabled) {
      ctx_->registry()
          .counter("align_status_total",
                   {{"status", core::to_string(aligned.status)}})
          .inc();
    }
    ++stage2_i_;
    if (aligned.converged()) {
      hint_ = aligned.voltages;
      const tracking::PoseReport report = proto_->tracker.report(0, pose);
      tuples_.push_back({aligned.voltages, report.pose});
    }
    if (stage2_i_ < config_.stage2_samples) return;
  }
  // Collection complete.  The manual-measurement guesses are always drawn
  // (even for the blind install) — the one-shot pipeline drew them before
  // branching, and the RNG stream is part of the contract.
  aligner_.reset();
  tx_guess_ = proto_->true_map_tx *
              core::random_pose_error(rng_, config_.guess_position_sigma,
                                      config_.guess_angle_sigma);
  rx_guess_ = proto_->true_map_rx *
              core::random_pose_error(rng_, config_.guess_position_sigma,
                                      config_.guess_angle_sigma);
  if (config_.blind_stage2) {
    begin_blind();
    phase_ = Phase::kStage2BlindA;
  } else {
    begin_stage2_fit();
    phase_ = Phase::kStage2Fit;
  }
}

void CalibrationEngine::begin_stage2_fit() {
  const core::MappingFitProblem problem = core::make_mapping_problem(
      tx_report_->model, rx_report_->model, tuples_, tx_guess_, rx_guess_);
  lm_wall_us_ = 0.0;
  lm_.emplace(problem.residuals, problem.initial, config_.stage2_options,
              *ctx_);
}

void CalibrationEngine::step_stage2_fit() {
  if (lm_step_and_record()) return;
  mapping_ = core::finish_mapping_fit(tx_report_->model, rx_report_->model,
                                      tuples_, lm_->result());
  lm_.reset();
  retry_attempt_ = 0;
  phase_ = Phase::kStage2Retry;
}

void CalibrationEngine::make_blind_tx_residuals() {
  // fit_mapping_blind's phase-A cost, verbatim: the TX beam must pass
  // within centimeters of every reported VRH position.
  blind_tx_residuals_ = [this](std::span<const double> p6,
                               std::vector<double>& r) {
    std::array<double, 6> arr{};
    std::copy(p6.begin(), p6.end(), arr.begin());
    const core::GmaModel tx_vr =
        tx_report_->model.transformed(geom::Pose::from_params(arr));
    r.resize(tuples_.size());
    for (std::size_t s = 0; s < tuples_.size(); ++s) {
      const auto ray =
          tx_vr.trace(tuples_[s].voltages.tx1, tuples_[s].voltages.tx2);
      r[s] = ray ? geom::line_point_distance(*ray,
                                             tuples_[s].psi.translation())
                 : 2.0;
    }
  };
}

void CalibrationEngine::begin_blind() {
  blind_centroid_ = geom::Vec3{};
  for (const auto& sample : tuples_) blind_centroid_ += sample.psi.translation();
  if (!tuples_.empty()) {
    blind_centroid_ = blind_centroid_ / static_cast<double>(tuples_.size());
  }
  blind_a_ = 0;
  blind_tx_best_.fill(0.0);
  blind_tx_best_value_ = 1e18;
  make_blind_tx_residuals();
}

void CalibrationEngine::step_blind_a() {
  // One phase-A multi-start: a full (bounded) inner LM solve.  The solve
  // goes through levenberg_marquardt so its lm_* metrics record exactly
  // as fit_mapping_blind's did.
  const geom::Vec3 axis =
      geom::Vec3{rng_.normal(), rng_.normal(), rng_.normal()}.normalized();
  const geom::Vec3 rv = axis * rng_.uniform(0.0, 3.1);
  const std::vector<double> x0{rv.x,
                               rv.y,
                               rv.z,
                               blind_centroid_.x + rng_.normal(0.0, 0.5),
                               blind_centroid_.y + rng_.normal(0.0, 0.5),
                               blind_centroid_.z + rng_.normal(0.0, 0.5)};
  opt::LevMarOptions lm;
  lm.max_iterations = 60;
  const auto fit = opt::levenberg_marquardt(blind_tx_residuals_, x0, lm, *ctx_);
  if (fit.final_cost < blind_tx_best_value_) {
    blind_tx_best_value_ = fit.final_cost;
    std::copy(fit.params.begin(), fit.params.end(), blind_tx_best_.begin());
  }
  ++blind_a_;
  if (blind_a_ >= 60) enter_blind_b();
}

void CalibrationEngine::enter_blind_b() {
  blind_tx_seed_ = geom::Pose::from_params(blind_tx_best_);
  blind_b_ = 0;
  blind_best_ = core::MappingFitReport{};
  blind_best_value_ = 1e18;
  phase_ = Phase::kStage2BlindB;
}

void CalibrationEngine::step_blind_b() {
  // One phase-B multi-start: RX rotation drawn over SO(3), full 12-param
  // joint polish (one-shot fit_mapping, exactly as the blind pipeline).
  const geom::Vec3 axis =
      geom::Vec3{rng_.normal(), rng_.normal(), rng_.normal()}.normalized();
  const geom::Vec3 rv = axis * rng_.uniform(0.0, 3.1);
  const std::array<double, 6> rx_arr{rv.x, rv.y, rv.z, 0.0, 0.0, 0.0};
  const geom::Pose rx_seed = geom::Pose::from_params(rx_arr);
  const core::MappingFitReport report = core::fit_mapping(
      tx_report_->model, rx_report_->model, tuples_, blind_tx_seed_, rx_seed,
      config_.stage2_options, *ctx_);
  if (report.avg_coincidence_m < blind_best_value_) {
    blind_best_value_ = report.avg_coincidence_m;
    blind_best_ = report;
  }
  ++blind_b_;
  if (blind_best_value_ < 5e-3 || blind_b_ >= 12) {  // good basin found
    mapping_ = blind_best_;
    retry_attempt_ = 0;
    phase_ = Phase::kStage2Retry;
  }
}

void CalibrationEngine::begin_retry_fit() {
  const core::MappingFitProblem problem = core::make_mapping_problem(
      tx_report_->model, rx_report_->model, tuples_, retry_tx_, retry_rx_);
  lm_wall_us_ = 0.0;
  lm_.emplace(problem.residuals, problem.initial, config_.stage2_options,
              *ctx_);
}

void CalibrationEngine::step_retry() {
  if (!lm_) {
    // Between attempts: decide whether another jittered-guess retry is
    // warranted (the one-shot loop's `attempt < 4 && avg > 5e-3`).
    if (retry_attempt_ >= 4 || mapping_.avg_coincidence_m <= 5e-3) {
      finalize();
      return;
    }
    retry_tx_ = tx_guess_ *
                core::random_pose_error(rng_, config_.guess_position_sigma,
                                        config_.guess_angle_sigma);
    retry_rx_ = rx_guess_ *
                core::random_pose_error(rng_, config_.guess_position_sigma,
                                        config_.guess_angle_sigma);
    begin_retry_fit();
    return;
  }
  if (lm_step_and_record()) return;
  core::MappingFitReport candidate = core::finish_mapping_fit(
      tx_report_->model, rx_report_->model, tuples_, lm_->result());
  lm_.reset();
  if (candidate.avg_coincidence_m < mapping_.avg_coincidence_m) {
    mapping_ = std::move(candidate);
  }
  ++retry_attempt_;
}

void CalibrationEngine::finalize() {
  proto_->scene.set_rig_pose(proto_->nominal_rig_pose);
  result_.emplace(core::CalibrationResult{*tx_report_, *rx_report_, mapping_,
                                          tuples_});
  phase_ = Phase::kDone;
}

}  // namespace cyclops::cal

namespace cyclops::core {

// The historical one-shot entry point, now an adapter: drive the engine
// to completion and hand the advanced RNG stream back to the caller
// (tests use `rng` after calibration; its state is part of the contract).
CalibrationResult calibrate_prototype(sim::Prototype& proto,
                                      const CalibrationConfig& config,
                                      util::Rng& rng,
                                      const runtime::Context& ctx) {
  cal::CalibrationEngine engine(proto, config, rng, ctx);
  while (engine.step()) {
  }
  rng = util::Rng::from_state(engine.rng_state());
  return engine.take_result();
}

}  // namespace cyclops::core

#include "arena/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace cyclops::arena {

const char* to_string(SchedulePolicy policy) noexcept {
  switch (policy) {
    case SchedulePolicy::kRoundRobin: return "round_robin";
    case SchedulePolicy::kMarginWeighted: return "margin_weighted";
    case SchedulePolicy::kPredictive: return "predictive";
  }
  return "?";
}

BeamScheduler::BeamScheduler(SchedulerConfig config, std::size_t num_tx)
    : config_(config),
      budget_per_frame_(std::max(
          1, static_cast<int>(std::floor(config.frame_slots *
                                         config.duty_budget)))),
      rosters_(num_tx),
      rr_next_(num_tx, 0),
      frame_served_(num_tx, 0) {
  assert(config.frame_slots > 0);
}

void BeamScheduler::add(std::size_t tx, int headset) {
  rosters_[tx].push_back(headset);
}

void BeamScheduler::remove(std::size_t tx, int headset) {
  auto& roster = rosters_[tx];
  const auto it = std::find(roster.begin(), roster.end(), headset);
  assert(it != roster.end());
  const auto index = static_cast<std::size_t>(it - roster.begin());
  roster.erase(it);
  // Keep the cyclic cursor pointing at the same *next* headset.
  if (rr_next_[tx] > index) --rr_next_[tx];
  if (!roster.empty()) rr_next_[tx] %= roster.size();
  else rr_next_[tx] = 0;
}

void BeamScheduler::migrate(int headset, std::size_t from_tx,
                            std::size_t to_tx) {
  remove(from_tx, headset);
  add(to_tx, headset);
}

void BeamScheduler::schedule_slot(
    std::uint64_t slot_index,
    const std::function<HeadsetUrgency(int)>& urgency,
    std::span<int> out_choice) {
  assert(out_choice.size() == rosters_.size());
  const std::uint64_t frame =
      slot_index / static_cast<std::uint64_t>(config_.frame_slots);
  if (frame != current_frame_) {
    current_frame_ = frame;
    std::fill(frame_served_.begin(), frame_served_.end(), 0);
  }
  for (std::size_t tx = 0; tx < rosters_.size(); ++tx) {
    if (frame_served_[tx] >= budget_per_frame_) {
      out_choice[tx] = -1;  // duty budget exhausted for this frame
      continue;
    }
    const int choice = pick(tx, urgency);
    out_choice[tx] = choice;
    if (choice >= 0) ++frame_served_[tx];
  }
}

int BeamScheduler::pick(std::size_t tx,
                        const std::function<HeadsetUrgency(int)>& urgency) {
  const auto& roster = rosters_[tx];
  if (roster.empty()) return -1;
  if (config_.policy == SchedulePolicy::kRoundRobin) {
    // Next servable headset in cyclic order.
    for (std::size_t k = 0; k < roster.size(); ++k) {
      const std::size_t i = (rr_next_[tx] + k) % roster.size();
      if (urgency(roster[i]).servable) {
        rr_next_[tx] = (i + 1) % roster.size();
        return roster[i];
      }
    }
    return -1;
  }
  // Urgency policies: highest score wins, ties to the lowest headset id
  // (deterministic at any thread count — no pointer or hash order).
  int best = -1;
  double best_score = 0.0;
  for (const int h : roster) {
    const HeadsetUrgency u = urgency(h);
    if (!u.servable) continue;
    const double drift = config_.policy == SchedulePolicy::kPredictive
                             ? u.predicted_rad
                             : u.drift_rad;
    // The starvation term keeps still headsets (zero drift) from being
    // locked out: 0.05 rad/s of equivalent urgency per starved second.
    const double score = drift + 0.05 * u.starved_s;
    if (best < 0 || score > best_score ||
        (score == best_score && h < best)) {
      best = h;
      best_score = score;
    }
  }
  return best;
}

}  // namespace cyclops::arena

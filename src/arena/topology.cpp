#include "arena/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/units.hpp"

namespace cyclops::arena {

const char* to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kUniform: return "uniform";
    case Scenario::kClusteredCorner: return "clustered_corner";
    case Scenario::kSyncFastMotion: return "sync_fast_motion";
  }
  return "?";
}

PlayerTrack::PlayerTrack(const WalkConfig& config, double duration_s,
                         double head_h, util::Rng rng)
    : duration_s_(duration_s), head_h_(head_h) {
  const auto point = [&] {
    return geom::Vec3{rng.uniform(config.x_lo, config.x_hi), head_h_,
                      rng.uniform(config.z_lo, config.z_hi)};
  };
  geom::Vec3 here = point();
  double t = 0.0;
  while (t < duration_s_) {
    const geom::Vec3 next = point();
    const double speed = rng.uniform(config.speed_lo, config.speed_hi);
    const double walk_s = std::max(1e-3, distance(here, next) / speed);
    segments_.push_back({t, t + walk_s, here, next});
    t += walk_s;
    const double pause_s = rng.uniform(config.pause_lo_s, config.pause_hi_s);
    segments_.push_back({t, t + pause_s, next, next});
    t += pause_s;
    here = next;
  }
  rebuild_bursts(rng, config);
}

void PlayerTrack::rebuild_bursts(util::Rng& rng, const WalkConfig& config) {
  bursts_.clear();
  if (config.burst_interval_s <= 0.0) return;
  double t = rng.uniform(0.0, config.burst_interval_s);
  double yaw = 0.0;
  while (t < duration_s_) {
    const double ang = rng.uniform(config.burst_ang_lo, config.burst_ang_hi);
    const double sweep =
        rng.uniform(config.burst_sweep_lo, config.burst_sweep_hi);
    const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
    const double dur = sweep / ang;
    bursts_.push_back({t, t + dur, yaw, sign * ang});
    yaw += sign * sweep;
    t += dur + rng.uniform(0.5 * config.burst_interval_s,
                           1.5 * config.burst_interval_s);
  }
}

void PlayerTrack::set_burst_schedule(const std::vector<double>& start_times_s,
                                     double ang_speed_rps, double sweep_rad) {
  bursts_.clear();
  double yaw = 0.0;
  const double dur = sweep_rad / ang_speed_rps;
  for (std::size_t i = 0; i < start_times_s.size(); ++i) {
    const double t = start_times_s[i];
    if (t >= duration_s_) break;
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;  // sweep back and forth
    bursts_.push_back({t, t + dur, yaw, sign * ang_speed_rps});
    yaw += sign * sweep_rad;
  }
}

TrackSample PlayerTrack::sample(util::SimTimeUs t) const {
  const double ts = std::min(util::us_to_s(t), duration_s_);
  TrackSample s;
  // Position: binary search the walk segments (sorted, contiguous).
  const auto seg = std::partition_point(
      segments_.begin(), segments_.end(),
      [ts](const Segment& g) { return g.t1_s <= ts; });
  if (seg == segments_.end()) {
    s.pos = segments_.empty() ? geom::Vec3{0.0, head_h_, 0.0}
                              : segments_.back().to;
  } else {
    const double span = seg->t1_s - seg->t0_s;
    const double a = span > 0.0 ? (ts - seg->t0_s) / span : 1.0;
    s.pos = seg->from + (seg->to - seg->from) * a;
    s.lin_speed = distance(seg->from, seg->to) / std::max(span, 1e-9);
  }
  // Yaw: last burst whose start is <= ts fixes the phase.
  const auto b = std::partition_point(
      bursts_.begin(), bursts_.end(),
      [ts](const Burst& g) { return g.t0_s <= ts; });
  if (b != bursts_.begin()) {
    const Burst& burst = *(b - 1);
    if (ts < burst.t1_s) {
      s.yaw = burst.from_yaw + burst.ang_speed * (ts - burst.t0_s);
      s.ang_speed = std::abs(burst.ang_speed);
    } else {
      s.yaw =
          burst.from_yaw + burst.ang_speed * (burst.t1_s - burst.t0_s);
    }
  }
  return s;
}

ArenaTopology::ArenaTopology(ArenaConfig config, std::size_t num_tx,
                             std::vector<PlayerTrack> tracks)
    : config_(config),
      tx_positions_(tx_grid(config, num_tx)),
      tracks_(std::move(tracks)) {}

std::vector<geom::Vec3> ArenaTopology::tx_grid(const ArenaConfig& config,
                                               std::size_t n) {
  std::vector<geom::Vec3> out;
  if (n == 0) return out;
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  out.reserve(n);
  for (std::size_t r = 0; r < rows && out.size() < n; ++r) {
    // The last row may be short; center its columns too.
    const std::size_t row_cols = std::min(cols, n - r * cols);
    for (std::size_t c = 0; c < row_cols; ++c) {
      const double x =
          config.room_w * (static_cast<double>(c) + 0.5) /
              static_cast<double>(row_cols) -
          config.room_w * 0.5;
      const double z =
          config.room_d * (static_cast<double>(r) + 0.5) /
              static_cast<double>(rows) -
          config.room_d * 0.5;
      out.push_back({x, config.ceiling_h, z});
    }
  }
  return out;
}

std::vector<PlayerTrack> ArenaTopology::make_tracks(const ArenaConfig& config,
                                                    std::size_t m,
                                                    Scenario scenario,
                                                    double duration_s,
                                                    std::uint64_t seed) {
  PlayerTrack::WalkConfig walk;
  const double margin = 0.5;  // keep off the walls
  walk.x_lo = -config.room_w * 0.5 + margin;
  walk.x_hi = config.room_w * 0.5 - margin;
  walk.z_lo = -config.room_d * 0.5 + margin;
  walk.z_hi = config.room_d * 0.5 - margin;
  if (scenario == Scenario::kClusteredCorner) {
    // Everyone in one corner quadrant: one TX's cone is oversubscribed
    // and bodies crowd each other's beams.
    walk.x_lo = config.room_w * 0.5 - std::max(1.5, config.room_w * 0.3);
    walk.z_lo = config.room_d * 0.5 - std::max(1.5, config.room_d * 0.3);
  }
  util::Rng base(seed);
  std::vector<PlayerTrack> tracks;
  tracks.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    tracks.emplace_back(walk, duration_s, config.head_h, base.split(i));
  }
  if (scenario == Scenario::kSyncFastMotion) {
    // Everyone whips their head at the same instants — worst case for
    // galvo time-sharing, since every headset needs fresh pointing at
    // once.
    std::vector<double> starts;
    for (double t = 2.0; t < duration_s; t += 3.0) starts.push_back(t);
    for (auto& track : tracks) {
      track.set_burst_schedule(starts, /*ang_speed_rps=*/4.0,
                               /*sweep_rad=*/2.0);
    }
  }
  return tracks;
}

std::vector<TrackSample> ArenaTopology::sample_all(util::SimTimeUs t) const {
  std::vector<TrackSample> out;
  out.reserve(tracks_.size());
  for (const auto& track : tracks_) out.push_back(track.sample(t));
  return out;
}

bool ArenaTopology::segment_hits_cylinder(const geom::Vec3& a,
                                          const geom::Vec3& b,
                                          const geom::Vec3& base, double r,
                                          double top) {
  // Work in the xz plane: find the s-interval of p(s) = a + s (b - a),
  // s in [0, 1], whose horizontal distance to the cylinder axis is < r,
  // then check whether the segment's height dips to <= top anywhere in
  // that interval (y is linear in s, so its minimum is at an endpoint).
  // Every quantity is a symmetric function of the unordered pair {a, b}
  // up to the s -> 1 - s relabeling, so the test is endpoint-symmetric.
  const double dx = b.x - a.x, dz = b.z - a.z;
  const double fx = a.x - base.x, fz = a.z - base.z;
  const double qa = dx * dx + dz * dz;
  const double qb = 2.0 * (fx * dx + fz * dz);
  const double qc = fx * fx + fz * fz - r * r;
  double s0, s1;
  if (qa <= 1e-12) {
    // Degenerate horizontal direction (vertical segment): inside or out.
    if (qc >= 0.0) return false;
    s0 = 0.0;
    s1 = 1.0;
  } else {
    const double disc = qb * qb - 4.0 * qa * qc;
    if (disc <= 0.0) return false;  // never enters the cylinder radially
    const double root = std::sqrt(disc);
    s0 = (-qb - root) / (2.0 * qa);
    s1 = (-qb + root) / (2.0 * qa);
    s0 = std::max(s0, 0.0);
    s1 = std::min(s1, 1.0);
    if (s0 >= s1) return false;  // overlap lies outside the segment
  }
  const double y0 = a.y + (b.y - a.y) * s0;
  const double y1 = a.y + (b.y - a.y) * s1;
  return std::min(y0, y1) <= top;
}

bool ArenaTopology::beam_occluded(
    std::size_t tx, std::size_t player,
    const std::vector<TrackSample>& samples) const {
  assert(tx < tx_positions_.size() && player < samples.size());
  const geom::Vec3& from = tx_positions_[tx];
  const geom::Vec3& to = samples[player].pos;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    if (j == player) continue;  // your own body is below your headset
    if (segment_hits_cylinder(from, to, samples[j].pos, config_.body_radius,
                              config_.head_h)) {
      return true;
    }
  }
  return false;
}

double ArenaTopology::range_m(std::size_t tx,
                              const TrackSample& player) const {
  return distance(tx_positions_[tx], player.pos);
}

double ArenaTopology::geo_margin_db(std::size_t tx, const TrackSample& player,
                                    bool occluded) const {
  if (occluded) return kBlockedMarginDb;
  const geom::Vec3 delta = player.pos - tx_positions_[tx];
  const double drop = -delta.y;  // TX is above the head
  if (drop <= 0.0) return kBlockedMarginDb;
  const double horiz = std::sqrt(delta.x * delta.x + delta.z * delta.z);
  const double zenith_deg = util::rad_to_deg(std::atan2(horiz, drop));
  if (zenith_deg > config_.fov_deg) return kBlockedMarginDb;
  const double range = delta.norm();
  // Free-space spreading of the diverging beam: 20 log10(d / d0).
  const double range_loss =
      20.0 * std::log10(std::max(range, 0.1) / config_.ref_range_m);
  const double angle_loss =
      std::max(0.0, zenith_deg - config_.comfortable_zenith_deg) *
      config_.angle_loss_db_per_deg;
  return config_.base_margin_db - range_loss - angle_loss;
}

}  // namespace cyclops::arena

// Multi-TX arena geometry: N ceiling transmitters and M headset motion
// tracks sharing one room's airspace.
//
// The paper deploys one TX over one headset; an arcade/classroom is a
// grid of ceiling TXs time-sharing their galvos across players whose
// *bodies* occlude each other's beams.  This layer is the spatial model
// the arena session (arena/session) runs on:
//
//   * TX placement   — a near-square ceiling grid centered in the room.
//   * Player tracks  — deterministic waypoint walks (position) plus yaw
//     "turn bursts" (the fast head motion that stresses beam pointing),
//     all a pure function of (seed, t) so every run is reproducible.
//   * Occlusion      — each player's body is a vertical cylinder; a TX →
//     headset ray blocked by *another* player's cylinder is a blocked
//     beam.  This generalizes the mmWave blockage model (phy::MmWave's
//     body-blockage spans) to FSO line-of-sight geometry; the ray test is
//     symmetric in its endpoints by construction (property-tested).
//   * Link margin    — a scalar dB margin per (TX, headset) pair from
//     range spreading and off-axis (galvo cone) loss, kBlockedMarginDb
//     when occluded / out of cone / failed.  The arena session layers the
//     fine-pointing staleness penalty (scheduling-dependent) on top.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec3.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::arena {

/// Margin assigned to a beam that cannot exist at all (occluded, outside
/// the galvo cone, failed TX).  Finite so downstream arithmetic and JSON
/// stay clean, far below any drop threshold.
inline constexpr double kBlockedMarginDb = -300.0;

struct ArenaConfig {
  /// Room extent (m), centered on the origin: x in [-room_w/2, room_w/2],
  /// z in [-room_d/2, room_d/2].
  double room_w = 8.0;
  double room_d = 8.0;
  double ceiling_h = 2.8;  ///< TX mount height (m).
  double head_h = 1.6;     ///< Headset (and body-cylinder top) height (m).
  double body_radius = 0.22;  ///< Player body occluder radius (m).

  /// Galvo steering cone: half-angle from straight down (deg).  Beyond
  /// it the TX simply cannot point at the headset.  70 deg puts a TX's
  /// cell at ~3.3 m radius on the head plane — a 2x2 ceiling grid covers
  /// an 8x8 m room with overlap at the cell seams, one TX leaves the
  /// walls dark (the capacity curve's reason to add TXs).
  double fov_deg = 70.0;
  /// Link margin (dB) straight below a TX at ref_range_m.
  double base_margin_db = 14.0;
  double ref_range_m = 2.0;
  /// Beyond this zenith angle, margin decays linearly per degree — the
  /// coupling/incidence loss of a steeply angled beam.
  double comfortable_zenith_deg = 25.0;
  double angle_loss_db_per_deg = 0.2;
};

/// Instantaneous kinematic state of one player's headset.
struct TrackSample {
  geom::Vec3 pos;          ///< Head position (m, world frame).
  double yaw = 0.0;        ///< Facing (rad; cosmetic, bursts drive it).
  double ang_speed = 0.0;  ///< |dyaw/dt| (rad/s).
  double lin_speed = 0.0;  ///< |dpos/dt| (m/s).
};

/// One player's deterministic motion: piecewise-linear waypoint walking
/// with pauses, plus yaw turn bursts at (seeded or scripted) times.
/// Everything is precomputed at construction; sample() is pure.
class PlayerTrack {
 public:
  struct WalkConfig {
    /// Walk region (world xz rectangle).  Defaults to the whole room
    /// minus a wall margin; the clustered-corner scenario shrinks it.
    double x_lo = 0.0, x_hi = 0.0, z_lo = 0.0, z_hi = 0.0;
    double speed_lo = 0.6, speed_hi = 1.2;  ///< Walk speed range (m/s).
    double pause_lo_s = 0.5, pause_hi_s = 2.0;
    /// Mean interval between yaw turn bursts (s); 0 disables bursts.
    double burst_interval_s = 4.0;
    double burst_ang_lo = 1.5, burst_ang_hi = 5.0;  ///< Burst speed (rad/s).
    double burst_sweep_lo = 1.0, burst_sweep_hi = 2.6;  ///< Sweep (rad).
  };

  /// Randomized track: positions and burst times drawn from `rng`.
  PlayerTrack(const WalkConfig& config, double duration_s, double head_h,
              util::Rng rng);

  /// Replaces the seeded burst schedule with a fixed one (synchronized
  /// fast-head-motion scenario: every player turns at the same instants).
  void set_burst_schedule(const std::vector<double>& start_times_s,
                          double ang_speed_rps, double sweep_rad);

  TrackSample sample(util::SimTimeUs t) const;
  double duration_s() const noexcept { return duration_s_; }

 private:
  struct Segment {          // position: linear from -> to over [t0, t1]
    double t0_s, t1_s;
    geom::Vec3 from, to;
  };
  struct Burst {            // yaw sweep at ang_speed over [t0, t1]
    double t0_s, t1_s;
    double from_yaw, ang_speed;  // signed rad/s
  };
  void rebuild_bursts(util::Rng& rng, const WalkConfig& config);

  double duration_s_;
  double head_h_;
  std::vector<Segment> segments_;
  std::vector<Burst> bursts_;
};

/// Built-in player populations for the bench scenarios.
enum class Scenario {
  kUniform,          ///< Players spread over the whole room.
  kClusteredCorner,  ///< Everyone packed into one corner quadrant.
  kSyncFastMotion,   ///< Uniform walks + synchronized fast yaw bursts.
};
const char* to_string(Scenario scenario) noexcept;

/// The static world: TX positions + player tracks + the geometry math.
class ArenaTopology {
 public:
  ArenaTopology(ArenaConfig config, std::size_t num_tx,
                std::vector<PlayerTrack> tracks);

  /// Near-square ceiling grid for `n` TXs, centered in the room.
  static std::vector<geom::Vec3> tx_grid(const ArenaConfig& config,
                                         std::size_t n);
  /// Scenario population of `m` tracks (deterministic in `seed`).
  static std::vector<PlayerTrack> make_tracks(const ArenaConfig& config,
                                              std::size_t m,
                                              Scenario scenario,
                                              double duration_s,
                                              std::uint64_t seed);

  const ArenaConfig& config() const noexcept { return config_; }
  std::size_t num_tx() const noexcept { return tx_positions_.size(); }
  std::size_t num_players() const noexcept { return tracks_.size(); }
  const geom::Vec3& tx_position(std::size_t i) const {
    return tx_positions_[i];
  }
  const PlayerTrack& track(std::size_t i) const { return tracks_[i]; }

  /// Kinematic state of every player at `t` (index == player).
  std::vector<TrackSample> sample_all(util::SimTimeUs t) const;

  /// True when the segment a→b passes through the vertical body cylinder
  /// of radius r, height [0, top], centered (in xz) at `base`.  Symmetric
  /// in (a, b) by construction.
  static bool segment_hits_cylinder(const geom::Vec3& a, const geom::Vec3& b,
                                    const geom::Vec3& base, double r,
                                    double top);

  /// Is the TX→headset beam for `player` blocked by any *other* player's
  /// body at these positions?
  bool beam_occluded(std::size_t tx, std::size_t player,
                     const std::vector<TrackSample>& samples) const;

  /// Geometric link margin (dB) of TX `tx` serving `player`:
  /// base − range spreading − off-axis loss; kBlockedMarginDb when the
  /// player is outside the galvo cone or `occluded` is set.  Staleness
  /// (scheduling) penalties are the session's business, not geometry's.
  double geo_margin_db(std::size_t tx, const TrackSample& player,
                       bool occluded) const;

  /// Straight-line TX→headset range (m).
  double range_m(std::size_t tx, const TrackSample& player) const;

 private:
  ArenaConfig config_;
  std::vector<geom::Vec3> tx_positions_;
  std::vector<PlayerTrack> tracks_;
};

}  // namespace cyclops::arena

#include "arena/session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <vector>

#include "event/scheduler.hpp"
#include "link/event_session.hpp"
#include "session/lifecycle.hpp"

namespace cyclops::arena {

namespace {

// Arena-plane event type (disjoint from link::SessionEventType values by
// construction: each process only receives its own events).
constexpr event::EventType kEvArenaTick = 100;

struct HeadsetState {
  int assigned = -1;          // roster TX, -1 while queued/rejected
  bool admitted = false;
  bool ever_admitted = false;
  double drift_rad = 0.0;     // accumulated fine-pointing error
  util::SimTimeUs last_slot = 0;       // last granted galvo slot
  util::SimTimeUs last_delivery = -1;  // last data slot (or admit time)
  util::SimTimeUs unservable_since = -1;
  util::SimTimeUs occl_start = -1;
  std::int64_t active_ticks = 0;
  std::int64_t sched_slots = 0;
  std::int64_t delivered_slots = 0;
  std::int64_t occl_ticks = 0;
  util::SimTimeUs longest_gap = 0;
  int migrations = 0;
};

// Hoisted metric handles — all null without a registry / in OBS=OFF
// builds, and every use is guarded by `if constexpr (obs::kEnabled)`.
struct ArenaMetrics {
  obs::Counter* admissions = nullptr;
  obs::Counter* queued = nullptr;
  obs::Counter* rejections = nullptr;
  obs::Counter* migrations = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Counter* slots = nullptr;
  obs::Counter* delivered = nullptr;
  obs::Counter* duty_violations = nullptr;
  obs::Counter* tx_failures = nullptr;
  obs::Histogram* rate_gbps = nullptr;
  obs::Histogram* occl_outage_us = nullptr;

  explicit ArenaMetrics(obs::Registry* reg) {
    if constexpr (obs::kEnabled) {
      if (reg == nullptr) return;
      admissions = &reg->counter("arena_admissions_total");
      queued = &reg->counter("arena_queued_total");
      rejections = &reg->counter("arena_rejections_total");
      migrations = &reg->counter("arena_migrations_total");
      evictions = &reg->counter("arena_evictions_total");
      slots = &reg->counter("arena_slots_total");
      delivered = &reg->counter("arena_delivered_slots_total");
      duty_violations = &reg->counter("arena_duty_violations_total");
      tx_failures = &reg->counter("arena_tx_failures_total");
      // 0..12 Gbps in 0.5 Gbps steps covers min-rate floors through the
      // 10 G peak with headroom for future 25 G SLAs' lower shares.
      rate_gbps = &reg->histogram("arena_headset_rate_gbps",
                                  obs::HistogramSpec::linear(0.0, 0.5, 24));
      occl_outage_us = &reg->histogram("arena_occlusion_outage_us",
                                       obs::HistogramSpec::duration_us());
    }
  }
};

class ArenaSlotProcess final : public event::Process {
 public:
  ArenaSlotProcess(const ArenaTopology& topo, const ArenaOptions& opt,
                   event::Scheduler& sched, obs::Registry* registry,
                   ArenaResult& result)
      : topo_(topo),
        opt_(opt),
        sched_(sched),
        metrics_(registry),
        result_(result),
        beam_(opt.scheduler, topo.num_tx()),
        admission_(opt.sla, opt.scheduler.duty_budget,
                   opt.scheduler.frame_slots),
        heads_(topo.num_players()),
        tx_failed_logged_(topo.num_tx(), false),
        tx_serve_slots_(topo.num_tx(), 0),
        geo_(topo.num_tx() * topo.num_players()),
        occl_(topo.num_tx() * topo.num_players()),
        choice_(topo.num_tx()) {
    self_ = sched_.add_process(this);
    // One HandoverProcess per headset: the same cancellable-switch-timer
    // machinery as the single-headset rig, fed candidate margins instead
    // of receive powers.  Registered after this process, so a switch-done
    // timer and a tick at the same instant dispatch timer-first (FIFO by
    // schedule order — the timer is always scheduled earlier).
    handovers_.reserve(heads_.size());
    for (std::size_t h = 0; h < heads_.size(); ++h) {
      handovers_.push_back(std::make_unique<link::HandoverProcess>(
          topo_.num_tx(), opt_.handover, sched_, nullptr, registry));
    }
    total_ticks_ =
        std::max<std::int64_t>(1, util::us_from_s(opt.duration_s) / opt.slot);
  }

  void start() {
    initial_admission();
    event::Event tick;
    tick.type = kEvArenaTick;
    tick.target = self_;
    tick.time = 0;
    sched_.schedule(tick);
  }

  void handle(event::Scheduler& sched, const event::Event& ev) override {
    assert(ev.type == kEvArenaTick);
    tick(ev.time, static_cast<std::uint64_t>(ev.i64));
    if (ev.i64 + 1 < total_ticks_) {
      event::Event next;
      next.type = kEvArenaTick;
      next.target = self_;
      next.i64 = ev.i64 + 1;
      sched.schedule_after(opt_.slot, next);
    }
  }

  const char* name() const noexcept override { return "arena"; }

  void finish();

 private:
  double& geo(std::size_t tx, std::size_t h) {
    return geo_[tx * heads_.size() + h];
  }
  bool occl(std::size_t tx, std::size_t h) const {
    return occl_[tx * heads_.size() + h] != 0;
  }

  std::size_t roster_load(std::size_t tx) const {
    return beam_.roster(tx).size();
  }

  void log_event(util::SimTimeUs t, ArenaEventKind kind, int headset, int tx) {
    result_.log.push_back(ArenaEvent{t, kind, headset, tx});
  }

  void admit(util::SimTimeUs t, int h, int tx) {
    HeadsetState& s = heads_[static_cast<std::size_t>(h)];
    beam_.add(static_cast<std::size_t>(tx), h);
    handovers_[static_cast<std::size_t>(h)]->set_active(tx);
    s.assigned = tx;
    s.admitted = true;
    s.ever_admitted = true;
    s.drift_rad = 0.0;
    s.last_slot = t;
    if (s.last_delivery < 0) s.last_delivery = t;
    s.unservable_since = -1;
    ++result_.admissions;
    if constexpr (obs::kEnabled) {
      if (metrics_.admissions != nullptr) metrics_.admissions->inc();
    }
    log_event(t, ArenaEventKind::kAdmitted, h, tx);
  }

  void initial_admission() {
    const auto samples = topo_.sample_all(0);
    refresh_margins(0, samples);
    for (std::size_t h = 0; h < heads_.size(); ++h) {
      const auto margins = margins_for(h);
      const auto loads = all_loads();
      const auto d = admission_.place(margins, loads, queue_.size());
      switch (d.action) {
        case AdmissionController::Decision::kAdmit:
          admit(0, static_cast<int>(h), d.tx);
          break;
        case AdmissionController::Decision::kQueue:
          queue_.push_back(static_cast<int>(h));
          ++result_.queued;
          if constexpr (obs::kEnabled) {
            if (metrics_.queued != nullptr) metrics_.queued->inc();
          }
          log_event(0, ArenaEventKind::kQueued, static_cast<int>(h), -1);
          break;
        case AdmissionController::Decision::kReject:
          ++result_.rejections;
          if constexpr (obs::kEnabled) {
            if (metrics_.rejections != nullptr) metrics_.rejections->inc();
          }
          log_event(0, ArenaEventKind::kRejected, static_cast<int>(h), -1);
          break;
      }
    }
  }

  void refresh_margins(util::SimTimeUs t,
                       const std::vector<TrackSample>& samples) {
    for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
      const bool failed = opt_.tx_failed && opt_.tx_failed(t, tx);
      if (failed && !tx_failed_logged_[tx]) {
        tx_failed_logged_[tx] = true;
        if constexpr (obs::kEnabled) {
          if (metrics_.tx_failures != nullptr) metrics_.tx_failures->inc();
        }
        log_event(t, ArenaEventKind::kTxFailed, -1, static_cast<int>(tx));
      }
      for (std::size_t h = 0; h < heads_.size(); ++h) {
        const bool blocked = topo_.beam_occluded(tx, h, samples);
        occl_[tx * heads_.size() + h] = blocked ? 1 : 0;
        geo(tx, h) = failed ? kBlockedMarginDb
                            : topo_.geo_margin_db(tx, samples[h], blocked);
      }
    }
  }

  std::vector<double> margins_for(std::size_t h) const {
    std::vector<double> m(topo_.num_tx());
    for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
      m[tx] = geo_[tx * heads_.size() + h];
    }
    return m;
  }

  std::vector<std::size_t> all_loads() const {
    std::vector<std::size_t> loads(topo_.num_tx());
    for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
      loads[tx] = roster_load(tx);
    }
    return loads;
  }

  void tick(util::SimTimeUs t, std::uint64_t slot_index) {
    const auto samples = topo_.sample_all(t);
    refresh_margins(t, samples);
    const double dt_s = util::us_to_s(opt_.slot);
    const std::size_t capacity = admission_.per_tx_capacity();

    std::vector<int> evict;
    for (std::size_t h = 0; h < heads_.size(); ++h) {
      HeadsetState& s = heads_[h];
      if (!s.admitted) continue;
      ++s.active_ticks;
      link::HandoverProcess& ho = *handovers_[h];

      // Migration commits (switch-done timers fired since the last tick
      // — same-instant timers already dispatched, FIFO order).  The
      // commit force-up's fine pointing on the new TX: re-acquisition is
      // part of the switch delay already paid.
      if (ho.active() != s.assigned) {
        beam_.migrate(static_cast<int>(h),
                      static_cast<std::size_t>(s.assigned),
                      static_cast<std::size_t>(ho.active()));
        s.assigned = ho.active();
        s.drift_rad = 0.0;
        ++s.migrations;
        ++result_.migrations;
        if constexpr (obs::kEnabled) {
          if (metrics_.migrations != nullptr) metrics_.migrations->inc();
        }
        log_event(t, ArenaEventKind::kMigrated, static_cast<int>(h),
                  s.assigned);
      }

      // Fine-pointing drift: the TP loop only closes while the beam is on
      // this headset, so error grows with head rotation plus translation
      // swept angle between serve slots.
      const TrackSample& smp = samples[h];
      const double range =
          std::max(0.5, topo_.range_m(static_cast<std::size_t>(s.assigned),
                                      smp));
      s.drift_rad += smp.ang_speed * dt_s + smp.lin_speed * dt_s / range;

      // Candidate margins: geometry minus a contention charge per roster
      // occupant, with non-serving TXs at admission capacity masked out
      // entirely (a migration there would break the SLA promise).
      bool any_usable = false;
      std::vector<double> cand(topo_.num_tx());
      for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
        const double g = geo(tx, h);
        const bool self_tx = static_cast<int>(tx) == s.assigned;
        const std::size_t load =
            roster_load(tx) - (self_tx ? 1u : 0u);
        if (g <= kBlockedMarginDb || (!self_tx && load >= capacity)) {
          cand[tx] = kBlockedMarginDb;
        } else {
          cand[tx] = g - opt_.contention_penalty_db *
                             static_cast<double>(load);
          any_usable = true;
        }
      }

      // Feed handover only while at least one TX is usable: with every
      // candidate blocked there is no beam to switch *to*, and letting
      // the drop trigger fire would churn blocked->blocked migrations.
      if (any_usable || ho.switching()) {
        (void)ho.on_powers(cand);
      }

      const bool mid_switch = ho.switching();
      const double serving_geo =
          geo(static_cast<std::size_t>(ho.active()), h);

      // Occlusion accounting against the serving TX.
      const bool serving_occluded =
          occl(static_cast<std::size_t>(ho.active()), h);
      if (serving_occluded) {
        ++s.occl_ticks;
        if (s.occl_start < 0) s.occl_start = t;
      } else if (s.occl_start >= 0) {
        record_occl_span(t - s.occl_start);
        s.occl_start = -1;
      }

      // Eviction clock: continuously unservable (no usable beam from the
      // serving TX and no switch under way) beyond the grace period sends
      // the headset back to the wait queue — logged, never silent.
      const bool unservable = !mid_switch && serving_geo < 0.0;
      if (unservable) {
        if (s.unservable_since < 0) s.unservable_since = t;
        if (util::us_to_s(t - s.unservable_since) >
            opt_.sla.eviction_grace_s) {
          evict.push_back(static_cast<int>(h));
        }
      } else {
        s.unservable_since = -1;
      }
    }

    for (const int h : evict) {
      HeadsetState& s = heads_[static_cast<std::size_t>(h)];
      assert(!handovers_[static_cast<std::size_t>(h)]->switching());
      beam_.remove(static_cast<std::size_t>(s.assigned), h);
      if (s.occl_start >= 0) {
        record_occl_span(t - s.occl_start);
        s.occl_start = -1;
      }
      s.admitted = false;
      s.assigned = -1;
      s.unservable_since = -1;
      queue_.push_back(h);
      ++result_.evictions;
      if constexpr (obs::kEnabled) {
        if (metrics_.evictions != nullptr) metrics_.evictions->inc();
      }
      log_event(t, ArenaEventKind::kEvicted, h, -1);
    }

    // Wait-queue pump: strict FIFO — the head either places now or keeps
    // everyone behind it waiting (no queue jumping past a blocked head).
    while (!queue_.empty()) {
      const int h = queue_.front();
      const auto d = admission_.place(margins_for(static_cast<std::size_t>(h)),
                                      all_loads(), queue_.size() - 1);
      if (d.action != AdmissionController::Decision::kAdmit) break;
      queue_.pop_front();
      admit(t, h, d.tx);
    }

    // Galvo slot assignment + service.
    const auto urgency = [&](int h) {
      const HeadsetState& s = heads_[static_cast<std::size_t>(h)];
      const link::HandoverProcess& ho =
          *handovers_[static_cast<std::size_t>(h)];
      HeadsetUrgency u;
      u.servable = s.admitted && !ho.switching() &&
                   geo(static_cast<std::size_t>(ho.active()),
                       static_cast<std::size_t>(h)) >= 0.0;
      u.drift_rad = s.drift_rad;
      const util::SimTimeUs look = util::us_from_s(opt_.scheduler.lookahead_s);
      u.predicted_rad =
          s.drift_rad + topo_.track(static_cast<std::size_t>(h))
                                .sample(t + look)
                                .ang_speed *
                            opt_.scheduler.lookahead_s;
      u.starved_s = util::us_to_s(t - s.last_slot);
      return u;
    };
    beam_.schedule_slot(slot_index, urgency, choice_);

    for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
      // The budget is enforced inside schedule_slot; count (rather than
      // trust) any excess so the bench gate can assert zero.
      const int over = beam_.frame_served(tx) - beam_.budget_per_frame();
      if (over > 0) {
        result_.duty_violations += over;
        if constexpr (obs::kEnabled) {
          if (metrics_.duty_violations != nullptr) {
            metrics_.duty_violations->inc(static_cast<std::uint64_t>(over));
          }
        }
      }
      const int h = choice_[tx];
      if (h < 0) continue;
      ++tx_serve_slots_[tx];
      HeadsetState& s = heads_[static_cast<std::size_t>(h)];
      ++s.sched_slots;
      s.last_slot = t;
      if constexpr (obs::kEnabled) {
        if (metrics_.slots != nullptr) metrics_.slots->inc();
      }
      // Serve: margin left after the drift penalty decides data vs a
      // re-pointing (recovery) slot; either way the TP loop re-converges.
      const double penalty =
          std::max(0.0, s.drift_rad - opt_.drift_free_rad) *
          opt_.drift_penalty_db_per_rad;
      const double eff = geo(tx, static_cast<std::size_t>(h)) - penalty;
      if (eff >= 0.0) {
        ++s.delivered_slots;
        const util::SimTimeUs gap = t - s.last_delivery;
        s.longest_gap = std::max(s.longest_gap, gap);
        s.last_delivery = t;
        if constexpr (obs::kEnabled) {
          if (metrics_.delivered != nullptr) metrics_.delivered->inc();
        }
      }
      s.drift_rad = 0.0;
    }
  }

  void record_occl_span(util::SimTimeUs span) {
    if constexpr (obs::kEnabled) {
      if (metrics_.occl_outage_us != nullptr) {
        metrics_.occl_outage_us->record(static_cast<double>(span));
      }
    }
  }

  const ArenaTopology& topo_;
  const ArenaOptions& opt_;
  event::Scheduler& sched_;
  ArenaMetrics metrics_;
  ArenaResult& result_;
  BeamScheduler beam_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<link::HandoverProcess>> handovers_;
  std::vector<HeadsetState> heads_;
  std::deque<int> queue_;
  std::vector<char> tx_failed_logged_;
  std::vector<std::int64_t> tx_serve_slots_;
  std::vector<double> geo_;   // [tx * M + h]
  std::vector<char> occl_;    // [tx * M + h]
  std::vector<int> choice_;
  event::ProcessId self_ = event::kNoProcess;
  std::int64_t total_ticks_ = 0;
};

void ArenaSlotProcess::finish() {
  const util::SimTimeUs end = total_ticks_ * opt_.slot;
  result_.headsets.resize(heads_.size());
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    HeadsetState& s = heads_[h];
    HeadsetQoE& q = result_.headsets[h];
    q.admitted = s.ever_admitted;
    q.final_tx = s.assigned;
    q.migrations = s.migrations;
    if (s.occl_start >= 0) {
      record_occl_span(end - s.occl_start);
      s.occl_start = -1;
    }
    if (s.active_ticks > 0) {
      const double ticks = static_cast<double>(s.active_ticks);
      q.avg_rate_gbps = static_cast<double>(s.delivered_slots) / ticks *
                        opt_.sla.peak_rate_gbps;
      q.served_fraction = static_cast<double>(s.sched_slots) / ticks;
      q.delivered_fraction = static_cast<double>(s.delivered_slots) / ticks;
      q.occluded_fraction = static_cast<double>(s.occl_ticks) / ticks;
    }
    if (s.ever_admitted) {
      s.longest_gap = std::max(s.longest_gap, end - s.last_delivery);
      q.longest_outage_s = util::us_to_s(s.longest_gap);
      q.sla_met = q.avg_rate_gbps >= opt_.sla.min_rate_gbps;
    }
    if constexpr (obs::kEnabled) {
      if (metrics_.rate_gbps != nullptr && s.ever_admitted) {
        metrics_.rate_gbps->record(q.avg_rate_gbps);
      }
    }
  }
  result_.per_tx_duty.resize(topo_.num_tx());
  std::int64_t total_sched = 0, total_delivered = 0;
  for (std::size_t tx = 0; tx < topo_.num_tx(); ++tx) {
    result_.per_tx_duty[tx] =
        static_cast<double>(tx_serve_slots_[tx]) /
        static_cast<double>(total_ticks_);
  }
  for (const HeadsetState& s : heads_) {
    total_sched += s.sched_slots;
    total_delivered += s.delivered_slots;
  }
  result_.schedule_efficiency =
      total_sched > 0
          ? static_cast<double>(total_delivered) /
                static_cast<double>(total_sched)
          : 0.0;
  int cancelled = 0;
  for (const auto& ho : handovers_) cancelled += ho->cancelled_switches();
  result_.cancelled_migrations = cancelled;
}

ArenaResult run_arena_session_impl(const ArenaTopology& topology,
                                   const ArenaOptions& options,
                                   obs::Registry* registry,
                                   util::SimClock* clock) {
  ArenaResult result;
  session::ScopedScheduler lease(clock);
  event::Scheduler& sched = lease.get();
  ArenaSlotProcess arena(topology, options, sched, registry, result);
  arena.start();
  sched.run();
  arena.finish();
  result.events = sched.dispatched();
  return result;
}

}  // namespace

const char* to_string(ArenaEventKind kind) noexcept {
  switch (kind) {
    case ArenaEventKind::kAdmitted: return "admitted";
    case ArenaEventKind::kQueued: return "queued";
    case ArenaEventKind::kRejected: return "rejected";
    case ArenaEventKind::kMigrated: return "migrated";
    case ArenaEventKind::kEvicted: return "evicted";
    case ArenaEventKind::kTxFailed: return "tx_failed";
  }
  return "?";
}

int ArenaResult::sla_met_count() const {
  int n = 0;
  for (const HeadsetQoE& q : headsets) n += q.sla_met ? 1 : 0;
  return n;
}

ArenaResult run_arena_session(const ArenaTopology& topology,
                              const ArenaOptions& options,
                              obs::Registry* registry) {
  return run_arena_session_impl(topology, options, registry, nullptr);
}

ArenaResult run_arena_session(const ArenaTopology& topology,
                              const ArenaOptions& options,
                              const runtime::Context& ctx) {
  ctx.clock().reset();
  return run_arena_session_impl(topology, options, &ctx.registry(),
                                &ctx.clock());
}

}  // namespace cyclops::arena

#include "arena/admission.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyclops::arena {

AdmissionController::AdmissionController(SlaConfig sla, double duty_budget,
                                         int frame_slots)
    : sla_(sla) {
  assert(frame_slots > 0);
  // A TX hands out floor(frame_slots * duty) serve-slots per frame; K
  // roster members split them, so each sees peak * budget / (frame * K).
  // Solve for the largest K that keeps that (de-rated by the headroom)
  // above the SLA minimum.
  const double budget =
      std::max(1.0, std::floor(frame_slots * duty_budget));
  const double duty_fraction = budget / frame_slots;
  const double k = duty_fraction * sla_.admit_headroom *
                   sla_.peak_rate_gbps / sla_.min_rate_gbps;
  capacity_ = static_cast<std::size_t>(std::max(1.0, std::floor(k)));
}

AdmissionController::Decision AdmissionController::place(
    const std::vector<double>& margins_db,
    const std::vector<std::size_t>& loads, std::size_t queue_len) const {
  assert(margins_db.size() == loads.size());
  Decision d;
  for (std::size_t tx = 0; tx < margins_db.size(); ++tx) {
    if (loads[tx] >= capacity_) continue;
    if (margins_db[tx] < sla_.admit_margin_db) continue;
    if (d.tx < 0 || margins_db[tx] > margins_db[static_cast<std::size_t>(d.tx)]) {
      d.tx = static_cast<int>(tx);
    }
  }
  if (d.tx >= 0) {
    d.action = Decision::kAdmit;
  } else if (queue_len < sla_.queue_capacity) {
    d.action = Decision::kQueue;
  } else {
    d.action = Decision::kReject;
  }
  return d;
}

}  // namespace cyclops::arena

// The arena session: N TXs × M headsets under shared airspace, run on
// the discrete-event engine.
//
// One ArenaSlotProcess ticks the world (track kinematics, occlusion,
// margins, drift accounting, scheduling, service) and M
// link::HandoverProcess instances — the same cancellable-switch-timer
// machinery the single-headset multi-TX rig uses — arbitrate each
// headset's serving TX over the *candidate margin* vector:
//
//   candidate[tx] = geo margin − contention penalty × roster load,
//                   capacity-masked for non-serving TXs.
//
// A commit (the switch timer firing) migrates the headset between TX
// rosters and force-up's its fine pointing: the new TX re-acquires on
// commit, so the first scheduled slot after a migration delivers data —
// the §5.3 force_up semantics mapped onto the arena's drift model.
//
// Fine-pointing drift: Cyclops' coarse pose comes from the VRH-T and is
// always fresh, but the sub-mrad TP correction (§4's feedback loop)
// converges only while the beam is on the receiver.  Between serve slots
// the residual error grows with the headset's motion; a serve slot
// whose drift-penalized margin is still non-negative delivers peak rate
// and re-converges the loop, otherwise the slot is spent re-pointing
// (no data) and the loop re-converges anyway.  This is what couples the
// scheduler policy to capacity: fast-turning headsets need fresher
// serves, and a policy that anticipates the turn keeps them aligned.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arena/admission.hpp"
#include "arena/scheduler.hpp"
#include "arena/topology.hpp"
#include "link/handover.hpp"
#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::arena {

struct ArenaOptions {
  SchedulerConfig scheduler;
  SlaConfig sla;
  /// Handover thresholds in candidate-margin space.  drop_threshold is
  /// below zero so contention penalties alone (a loaded but visible TX)
  /// never fake a drop; a blocked beam (kBlockedMarginDb) always does.
  link::HandoverConfig handover{.hysteresis_db = 3.0,
                                .drop_threshold_dbm = -6.0,
                                .switch_delay_s = 0.15,
                                .cancel_on_reacquire = true};
  util::SimTimeUs slot = 2000;  ///< Galvo slot / world tick (µs).
  double duration_s = 30.0;
  /// dB charged per roster occupant on a candidate TX, so handover
  /// prefers less-loaded TXs when geometry is comparable.
  double contention_penalty_db = 0.75;
  /// Drift below this is free (the TP loop's converged residual).
  double drift_free_rad = 0.01;
  /// Margin penalty per radian of accumulated drift beyond the free
  /// allowance — the knob that makes scheduling frequency matter.
  double drift_penalty_db_per_rad = 200.0;
  /// Scenario hook: TX `i` is dead at time `t` (margins collapse to
  /// kBlockedMarginDb; its headsets drop-trigger migrations).
  std::function<bool(util::SimTimeUs, std::size_t)> tx_failed;
};

enum class ArenaEventKind {
  kAdmitted,
  kQueued,
  kRejected,
  kMigrated,   ///< TX↔TX handover committed (force_up on the new TX).
  kEvicted,    ///< Unservable past the grace period; back to the queue.
  kTxFailed,
};
const char* to_string(ArenaEventKind kind) noexcept;

/// The accountability trail: every admission-control and migration
/// decision, in tick order.  Invariant (property-tested): an admitted
/// headset never stops being served without a kMigrated/kEvicted entry.
struct ArenaEvent {
  util::SimTimeUs time = 0;
  ArenaEventKind kind = ArenaEventKind::kAdmitted;
  int headset = -1;
  int tx = -1;  ///< Target TX (admission/migration) or failed TX.
};

struct HeadsetQoE {
  bool admitted = false;     ///< Ever held a roster slot.
  int final_tx = -1;         ///< Serving TX at session end (-1 if none).
  double avg_rate_gbps = 0.0;
  double served_fraction = 0.0;    ///< Galvo slots granted / ticks active.
  double delivered_fraction = 0.0; ///< Slots that carried data / ticks.
  double occluded_fraction = 0.0;  ///< Ticks the serving beam was blocked.
  double longest_outage_s = 0.0;   ///< Longest gap between data slots.
  int migrations = 0;
  bool sla_met = false;  ///< admitted && avg_rate >= SLA minimum.
};

struct ArenaResult {
  std::vector<HeadsetQoE> headsets;
  std::vector<double> per_tx_duty;  ///< Serve slots emitted / total ticks.
  int admissions = 0;
  int queued = 0;
  int rejections = 0;
  int migrations = 0;
  int cancelled_migrations = 0;
  int evictions = 0;
  /// Slots a TX emitted beyond its frame budget.  Zero by construction;
  /// counted (and gated in bench/check.sh) rather than trusted.
  int duty_violations = 0;
  /// Delivered / scheduled serve slots (how much granted galvo time
  /// actually carried data).
  double schedule_efficiency = 0.0;
  std::uint64_t events = 0;  ///< Dispatched by the event engine.
  std::vector<ArenaEvent> log;

  int sla_met_count() const;
};

/// Runs the arena on its own event scheduler.  `registry` (optional)
/// receives arena_{admissions,queued,rejections,migrations,evictions,
/// slots,delivered_slots,duty_violations,tx_failures}_total counters, the
/// arena_headset_rate_gbps and arena_occlusion_outage_us histograms, and
/// the per-headset HandoverProcess metrics (handover_*).  No-op in
/// CYCLOPS_OBS=OFF builds.  Deterministic: same topology + options give
/// byte-identical results at any driver-pool thread count (the session
/// itself never touches a pool).
ArenaResult run_arena_session(const ArenaTopology& topology,
                              const ArenaOptions& options,
                              obs::Registry* registry = nullptr);

/// Context overload: metrics land in ctx.registry() and the scheduler
/// rides ctx.clock() (reset to 0 — one context, one session timeline).
ArenaResult run_arena_session(const ArenaTopology& topology,
                              const ArenaOptions& options,
                              const runtime::Context& ctx);

}  // namespace cyclops::arena

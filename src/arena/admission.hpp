// Admission control: a TX's galvo duty is a finite resource, so the
// arena accepts a headset only when every admitted headset (including the
// newcomer) can still be offered its SLA minimum rate.  Overflow goes to
// a bounded FIFO wait queue (re-examined whenever capacity frees up);
// beyond that, rejection.
#pragma once

#include <cstddef>
#include <vector>

namespace cyclops::arena {

struct SlaConfig {
  /// Minimum average goodput an admitted headset is promised (Gbps).
  double min_rate_gbps = 1.0;
  /// Goodput while the beam is on the headset and aligned (Gbps).
  double peak_rate_gbps = 10.0;
  /// Fraction of the nominal duty share actually promised — headroom for
  /// switch outages, occlusion, and pointing recovery slots.
  double admit_headroom = 0.8;
  /// Wait-queue bound; arrivals beyond it are rejected outright.
  std::size_t queue_capacity = 8;
  /// An admitted headset continuously unservable for longer than this
  /// (occluded with no migration candidate) is evicted back to the queue.
  double eviction_grace_s = 2.0;
  /// Candidate TXs must clear this geometric margin to admit/migrate.
  double admit_margin_db = 3.0;
};

class AdmissionController {
 public:
  /// `duty_budget` / `frame_slots` mirror the scheduler's ledger; they fix
  /// how many serve-slots per frame a TX can hand out.
  AdmissionController(SlaConfig sla, double duty_budget, int frame_slots);

  const SlaConfig& sla() const noexcept { return sla_; }

  /// Headsets one TX can carry with each still promised min_rate:
  ///   floor(duty * headroom * peak / min_rate), at least 1.
  std::size_t per_tx_capacity() const noexcept { return capacity_; }

  struct Decision {
    enum Action { kAdmit, kQueue, kReject } action = kReject;
    int tx = -1;  ///< Target TX when kAdmit.
  };

  /// Places a headset given the per-TX geometric margins (dB) and current
  /// roster sizes: best-margin TX among those with margin >=
  /// admit_margin_db and load < capacity; otherwise queue (if
  /// `queue_len` < queue_capacity), otherwise reject.
  Decision place(const std::vector<double>& margins_db,
                 const std::vector<std::size_t>& loads,
                 std::size_t queue_len) const;

 private:
  SlaConfig sla_;
  std::size_t capacity_;
};

}  // namespace cyclops::arena

// Galvo time-sharing: each TX steers its beam at ONE headset per slot, so
// a TX serving K players is a TDM schedule over its roster.  The
// scheduler enforces a per-TX duty budget (slots per frame the galvo may
// actively serve; the rest is reserved for safety sweeps / re-calibration
// dwell) and delegates the who-gets-this-slot choice to a policy:
//
//   * kRoundRobin      — cyclic over the roster; the fairness baseline.
//   * kMarginWeighted  — most-urgent-first: the headset whose fine
//     pointing has drifted furthest (largest accumulated misalignment)
//     gets the slot, so margin is spent where it is collapsing.
//   * kPredictive      — margin-weighted on *predicted* drift a lookahead
//     ahead (the track's angular speed at t + L), pre-positioning the
//     beam before a fast head turn instead of reacting after margin
//     collapse (GazeProphetV2-style head-movement lookahead).
//
// The duty budget is a hard invariant: schedule_slot() can never emit
// more serve-slots per frame than the budget, and the arena property
// tests fuzz exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace cyclops::arena {

enum class SchedulePolicy { kRoundRobin, kMarginWeighted, kPredictive };
const char* to_string(SchedulePolicy policy) noexcept;

struct SchedulerConfig {
  SchedulePolicy policy = SchedulePolicy::kRoundRobin;
  /// Fraction of each frame's slots a TX's galvo may spend serving.
  double duty_budget = 0.9;
  /// Slots per duty-accounting frame.
  int frame_slots = 10;
  /// Predictive lookahead (s) — how far ahead kPredictive reads the track.
  double lookahead_s = 0.12;
};

/// Per-slot inputs the policies rank headsets by.  The session computes
/// these; the scheduler owns only rosters and the duty ledger.
struct HeadsetUrgency {
  bool servable = false;    ///< Beam possible now (not occluded/switching).
  double drift_rad = 0.0;   ///< Accumulated fine-pointing misalignment.
  double predicted_rad = 0.0;  ///< Drift projected lookahead_s ahead.
  double starved_s = 0.0;   ///< Time since this headset last got a slot.
};

class BeamScheduler {
 public:
  BeamScheduler(SchedulerConfig config, std::size_t num_tx);

  const SchedulerConfig& config() const noexcept { return config_; }
  /// Serve-slots each TX may emit per frame (floor(frame_slots * budget),
  /// but at least 1 so a lone TX is never totally mute).
  int budget_per_frame() const noexcept { return budget_per_frame_; }

  void add(std::size_t tx, int headset);
  void remove(std::size_t tx, int headset);
  /// Moves `headset` between rosters (TX↔TX migration commit).
  void migrate(int headset, std::size_t from_tx, std::size_t to_tx);
  const std::vector<int>& roster(std::size_t tx) const {
    return rosters_[tx];
  }

  /// Chooses the headset each TX serves in slot `slot_index` (global slot
  /// counter; frames are slot_index / frame_slots).  `urgency(h)` supplies
  /// the policy inputs for headset h.  out_choice[tx] = headset or -1
  /// (idle: empty roster, nothing servable, or duty budget exhausted).
  void schedule_slot(std::uint64_t slot_index,
                     const std::function<HeadsetUrgency(int)>& urgency,
                     std::span<int> out_choice);

  /// Serve-slots TX emitted in the current frame (resets at frame edges).
  int frame_served(std::size_t tx) const { return frame_served_[tx]; }

 private:
  int pick(std::size_t tx, const std::function<HeadsetUrgency(int)>& urgency);

  SchedulerConfig config_;
  int budget_per_frame_;
  std::vector<std::vector<int>> rosters_;
  std::vector<std::size_t> rr_next_;   ///< Round-robin cursor per TX.
  std::vector<int> frame_served_;
  std::uint64_t current_frame_ = 0;
};

}  // namespace cyclops::arena

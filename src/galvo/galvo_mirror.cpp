#include "galvo/galvo_mirror.hpp"

#include <cmath>

#include "geom/mat3.hpp"
#include "geom/reflect.hpp"
#include "util/units.hpp"

namespace cyclops::galvo {

std::array<double, GalvoParams::kParamCount> GalvoParams::pack() const {
  return {p0.x, p0.y, p0.z, x0.x, x0.y, x0.z, n1.x, n1.y, n1.z,
          q1.x, q1.y, q1.z, r1.x, r1.y, r1.z, n2.x, n2.y, n2.z,
          q2.x, q2.y, q2.z, r2.x, r2.y, r2.z, theta1};
}

GalvoParams GalvoParams::unpack(
    const std::array<double, kParamCount>& v) {
  GalvoParams p;
  p.p0 = {v[0], v[1], v[2]};
  p.x0 = geom::Vec3{v[3], v[4], v[5]}.normalized();
  p.n1 = geom::Vec3{v[6], v[7], v[8]}.normalized();
  p.q1 = {v[9], v[10], v[11]};
  p.r1 = geom::Vec3{v[12], v[13], v[14]}.normalized();
  p.n2 = geom::Vec3{v[15], v[16], v[17]}.normalized();
  p.q2 = {v[18], v[19], v[20]};
  p.r2 = geom::Vec3{v[21], v[22], v[23]}.normalized();
  p.theta1 = v[24];
  return p;
}

GalvoSpec gvs102_spec() { return {}; }

GalvoMirror::GalvoMirror(GalvoParams params, GalvoSpec spec)
    : params_(std::move(params)), spec_(spec) {}

geom::Plane GalvoMirror::mirror1_plane(double v1) const {
  const geom::Mat3 rot = geom::Mat3::rotation(params_.r1, params_.theta1 * v1);
  return {params_.q1, rot * params_.n1};
}

geom::Plane GalvoMirror::mirror2_plane(double v2) const {
  const geom::Mat3 rot = geom::Mat3::rotation(params_.r2, params_.theta1 * v2);
  return {params_.q2, rot * params_.n2};
}

std::optional<geom::Ray> trace_ideal(const GalvoParams& params, double v1,
                                     double v2) {
  // Mirror intersections here use the *algebraic* (non-forward-only)
  // ray/plane solution: the closed-form G of §4.1 is a total function of
  // the voltages, and the learned parameter estimates must stay evaluable
  // while the optimizer explores (or mildly extrapolates beyond) the
  // trained region.  The physical device model (GalvoMirror::trace)
  // enforces real forward propagation and apertures instead.
  const auto reflect_algebraic =
      [](const geom::Ray& ray,
         const geom::Plane& mirror) -> std::optional<geom::Ray> {
    const auto t = geom::intersect(ray, mirror, /*forward_only=*/false);
    if (!t) return std::nullopt;
    const geom::Vec3 n = mirror.normal.normalized();
    return geom::Ray{ray.at(*t), geom::reflect_dir(ray.dir, n)};
  };

  const geom::Ray input{params.p0, params.x0.normalized()};
  const geom::Mat3 rot1 = geom::Mat3::rotation(params.r1, params.theta1 * v1);
  const geom::Plane m1{params.q1, rot1 * params.n1};
  const auto mid = reflect_algebraic(input, m1);
  if (!mid) return std::nullopt;
  const geom::Mat3 rot2 = geom::Mat3::rotation(params.r2, params.theta1 * v2);
  const geom::Plane m2{params.q2, rot2 * params.n2};
  return reflect_algebraic(*mid, m2);
}

std::optional<geom::Ray> GalvoMirror::trace(double v1, double v2) const {
  if (!voltage_in_range(v1) || !voltage_in_range(v2)) return std::nullopt;
  const geom::Ray input{params_.p0, params_.x0.normalized()};

  const geom::Plane m1 = mirror1_plane(v1);
  const auto mid = geom::reflect(input, m1);
  if (!mid) return std::nullopt;
  if (geom::distance(mid->origin, params_.q1) > spec_.mirror_radius) {
    return std::nullopt;  // clipped by mirror 1
  }

  const geom::Plane m2 = mirror2_plane(v2);
  const auto out = geom::reflect(*mid, m2);
  if (!out) return std::nullopt;
  if (geom::distance(out->origin, params_.q2) > spec_.mirror_radius) {
    return std::nullopt;  // clipped by mirror 2
  }
  return out;
}

double Daq::quantize(double v) const noexcept {
  return std::round(v / quantization_step) * quantization_step;
}

}  // namespace cyclops::galvo

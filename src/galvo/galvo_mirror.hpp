// Physical model of a two-axis galvo mirror (GM), e.g. the ThorLabs GVS102.
//
// This is the *ground truth* device the learning pipeline in src/core must
// recover: the same parameterization as the paper's §4.1 — input beam
// (p0, x0), per-mirror plane (n_i, q_i) and rotation axis (r_i), and the
// voltage-to-angle gain theta1 shared by both mirrors:
//
//   n_i' = R(r_i, theta1 * v_i) * n_i
//   (p_mid, x_mid) = reflect(p0, x0 | n_1', q_1)
//   (p,     x    ) = reflect(p_mid, x_mid | n_2', q_2)
//
// Note the output origin p lies on mirror 2 and moves with the voltages —
// the "distortion" effect [58] the paper insists must be modeled.
#pragma once

#include <array>
#include <optional>

#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cyclops::galvo {

/// The paper's GMA parameter set (Fig 7).
struct GalvoParams {
  geom::Vec3 p0;  ///< Input-beam origin (collimator output).
  geom::Vec3 x0;  ///< Input-beam direction (unit).
  geom::Vec3 n1;  ///< Mirror-1 normal at zero voltage (unit).
  geom::Vec3 q1;  ///< Point on mirror 1's plane and rotation axis.
  geom::Vec3 r1;  ///< Mirror-1 rotation-axis direction (unit).
  geom::Vec3 n2;  ///< Mirror-2 normal at zero voltage (unit).
  geom::Vec3 q2;  ///< Point on mirror 2's plane and rotation axis.
  geom::Vec3 r2;  ///< Mirror-2 rotation-axis direction (unit).
  double theta1 = 0.0;  ///< Mirror rotation per volt (rad/V), same for both.

  /// Flat 25-double encoding for the Stage-1 optimizer.
  static constexpr std::size_t kParamCount = 25;
  std::array<double, kParamCount> pack() const;
  static GalvoParams unpack(const std::array<double, kParamCount>& values);
};

/// Operating limits of the steering hardware.
struct GalvoSpec {
  double max_voltage = 10.0;        ///< |v| limit (V).
  double min_voltage_step = 1e-3;   ///< Smallest commanded step (V).
  double mirror_radius = 12e-3;     ///< Clear radius of each mirror (m).
  double small_angle_settle_s = 300e-6;  ///< GVS102 small-angle latency.
  double angular_accuracy_rad = 10e-6;   ///< GVS102 pointing accuracy.
};

/// GVS102-like defaults.
GalvoSpec gvs102_spec();

class GalvoMirror {
 public:
  GalvoMirror(GalvoParams params, GalvoSpec spec);

  const GalvoParams& params() const noexcept { return params_; }
  const GalvoSpec& spec() const noexcept { return spec_; }

  /// Mirror planes for the given voltages (normals rotated per model).
  geom::Plane mirror1_plane(double v1) const;
  geom::Plane mirror2_plane(double v2) const;

  /// Traces the input beam through both mirrors.  Returns the output beam
  /// (origin on mirror 2), or nullopt if the beam misses a mirror plane,
  /// falls outside a mirror's clear radius, or a voltage is out of range.
  std::optional<geom::Ray> trace(double v1, double v2) const;

  bool voltage_in_range(double v) const noexcept {
    return v >= -spec_.max_voltage && v <= spec_.max_voltage;
  }

 private:
  GalvoParams params_;
  GalvoSpec spec_;
};

/// Ideal two-mirror trace with no aperture or voltage-range checks — the
/// pure §4.1 G function.  Used by the *learned* model (which has no notion
/// of clear apertures) and shared with the physical device's trace.
std::optional<geom::Ray> trace_ideal(const GalvoParams& params, double v1,
                                     double v2);

/// DAQ between the controller and the galvo servos: quantizes commanded
/// voltages and contributes most of the 1-2 ms pointing latency (§5.2).
struct Daq {
  double quantization_step = 20.0 / 65536.0;  ///< 16-bit over +/-10 V.
  double conversion_latency_s = 1.5e-3;

  double quantize(double v) const noexcept;
};

/// Servo settle dynamics: the GVS102's quoted 300 us is its *small-angle*
/// latency; large steps take longer (full-scale steps approach
/// milliseconds).  Linear model: settle = small_angle + slope * |step|.
struct ServoDynamics {
  double small_angle_settle_s = 300e-6;
  /// Extra settle per volt of commanded step (GVS102-class: ~60 us/V).
  double settle_per_volt_s = 60e-6;

  double settle_time_s(double step_volts) const noexcept {
    const double magnitude = step_volts < 0.0 ? -step_volts : step_volts;
    return small_angle_settle_s + settle_per_volt_s * magnitude;
  }
};

}  // namespace cyclops::galvo

#include "galvo/factory.hpp"

#include "geom/mat3.hpp"
#include "util/units.hpp"

namespace cyclops::galvo {
namespace {

/// Tilts `dir` by a random small rotation of magnitude ~sigma.
geom::Vec3 jitter_direction(const geom::Vec3& dir, double sigma,
                            util::Rng& rng) {
  const geom::Vec3 axis =
      geom::Vec3{rng.normal(), rng.normal(), rng.normal()}.normalized();
  const double angle = rng.normal(0.0, sigma);
  return (geom::Mat3::rotation(axis, angle) * dir).normalized();
}

geom::Vec3 jitter_position(const geom::Vec3& p, double sigma, util::Rng& rng) {
  return p + geom::Vec3{rng.normal(0.0, sigma), rng.normal(0.0, sigma),
                        rng.normal(0.0, sigma)};
}

}  // namespace

GalvoParams nominal_params() {
  GalvoParams p;
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  // Collimator feeds mirror 1 from +x, 60 mm away, 30 mm below mirror 2.
  p.p0 = {0.060, -0.030, 0.0};
  p.x0 = {-1.0, 0.0, 0.0};
  // Mirror 1 turns -x into +y; rotates about the local z axis.
  p.q1 = {0.0, -0.030, 0.0};
  p.n1 = geom::Vec3{-1.0, -1.0, 0.0} * inv_sqrt2;
  p.r1 = {0.0, 0.0, 1.0};
  // Mirror 2 (at the local origin) turns +y into -z; rotates about x.
  p.q2 = {0.0, 0.0, 0.0};
  p.n2 = geom::Vec3{0.0, 1.0, 1.0} * inv_sqrt2;
  p.r2 = {1.0, 0.0, 0.0};
  // 1 degree of mirror rotation per volt.
  p.theta1 = util::deg_to_rad(1.0);
  return p;
}

GalvoParams perturbed_params(const GalvoParams& nominal,
                             const AssemblyTolerances& tol, util::Rng& rng) {
  GalvoParams p = nominal;
  p.p0 = jitter_position(nominal.p0, tol.position_sigma, rng);
  p.x0 = jitter_direction(nominal.x0, tol.direction_sigma_rad, rng);
  p.q1 = jitter_position(nominal.q1, tol.position_sigma, rng);
  p.n1 = jitter_direction(nominal.n1, tol.direction_sigma_rad, rng);
  p.r1 = jitter_direction(nominal.r1, tol.direction_sigma_rad, rng);
  p.q2 = jitter_position(nominal.q2, tol.position_sigma, rng);
  p.n2 = jitter_direction(nominal.n2, tol.direction_sigma_rad, rng);
  p.r2 = jitter_direction(nominal.r2, tol.direction_sigma_rad, rng);
  p.theta1 = nominal.theta1 * (1.0 + rng.normal(0.0, tol.theta1_relative_sigma));
  return p;
}

}  // namespace cyclops::galvo

// Construction of nominal (CAD) and manufactured (perturbed) galvo units.
//
// The nominal geometry plays the role of the manufacturer's CAD drawing:
// it seeds the Stage-1 optimizer's initial guess.  A "manufactured" unit is
// the nominal geometry plus assembly tolerances — the ground truth the
// learner must recover without ever being told the perturbations.
#pragma once

#include "galvo/galvo_mirror.hpp"
#include "util/rng.hpp"

namespace cyclops::galvo {

/// Nominal GVS102-style geometry in the GMA's local (K-space-like) frame:
/// the output beam at zero voltage leaves mirror 2 (at the local origin)
/// along -z; the collimator feeds mirror 1 from the +x side.
GalvoParams nominal_params();

/// Assembly tolerances applied by perturbed_params.
struct AssemblyTolerances {
  double position_sigma = 1.0e-3;   ///< p0/q1/q2 jitter (m).
  double direction_sigma_rad = 8.7e-3;  ///< x0/n/r tilt (~0.5 deg).
  double theta1_relative_sigma = 0.02;  ///< Gain error (2 %).
};

/// A manufactured unit: nominal + random assembly error.
GalvoParams perturbed_params(const GalvoParams& nominal,
                             const AssemblyTolerances& tol, util::Rng& rng);

}  // namespace cyclops::galvo

// GM Assembly (GMA): SFP + collimator + galvo mirror, mounted at a pose.
//
// The TX-GMA launches a beam (with the link design's envelope) within the
// GM's coverage cone; the RX-GMA steers the received beam onto its
// collimator.  Both share the same trace math; the RX side exposes it as a
// "capture ray" — Lemma 1's imaginary beam emanating from the RX.
#pragma once

#include <optional>

#include "galvo/galvo_mirror.hpp"
#include "geom/pose.hpp"
#include "optics/beam.hpp"

namespace cyclops::galvo {

class GmaPhysical {
 public:
  /// `mount` maps the GMA's local frame (its K-space) into the parent
  /// frame: the world for the TX, the RX rig frame for the RX.
  GmaPhysical(GalvoMirror galvo, geom::Pose mount);

  const GalvoMirror& galvo() const noexcept { return galvo_; }
  const geom::Pose& mount() const noexcept { return mount_; }
  void set_mount(const geom::Pose& mount) { mount_ = mount; }

  /// Output chief ray in the *parent* frame for the given voltages.
  std::optional<geom::Ray> trace_parent(double v1, double v2) const;

  /// TX use: the launched beam with envelope, in the parent frame.
  std::optional<optics::TracedBeam> emit(double v1, double v2,
                                         const optics::BeamSpec& spec) const;

  /// RX use: the imaginary beam from the collimator out through the GM —
  /// its origin is the capture point on mirror 2 (Lemma 1's p_r) and its
  /// direction is where the assembly currently "looks".
  std::optional<geom::Ray> capture_ray(double v1, double v2) const {
    return trace_parent(v1, v2);
  }

  /// Mirror-2 plane in the parent frame (the plane containing Lemma 1's
  /// target points tau).
  geom::Plane mirror2_plane_parent(double v2) const;

 private:
  GalvoMirror galvo_;
  geom::Pose mount_;
};

}  // namespace cyclops::galvo

#include "galvo/gma.hpp"

namespace cyclops::galvo {

GmaPhysical::GmaPhysical(GalvoMirror galvo, geom::Pose mount)
    : galvo_(std::move(galvo)), mount_(std::move(mount)) {}

std::optional<geom::Ray> GmaPhysical::trace_parent(double v1, double v2) const {
  const auto local = galvo_.trace(v1, v2);
  if (!local) return std::nullopt;
  return mount_.apply(*local);
}

std::optional<optics::TracedBeam> GmaPhysical::emit(
    double v1, double v2, const optics::BeamSpec& spec) const {
  const auto ray = trace_parent(v1, v2);
  if (!ray) return std::nullopt;
  return optics::launch_beam(*ray, spec);
}

geom::Plane GmaPhysical::mirror2_plane_parent(double v2) const {
  return mount_.apply(galvo_.mirror2_plane(v2));
}

}  // namespace cyclops::galvo

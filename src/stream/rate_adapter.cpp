#include "stream/rate_adapter.hpp"

#include <algorithm>
#include <cmath>

#include "obs/config.hpp"

namespace cyclops::stream {

const char* to_string(EncoderMode mode) noexcept {
  return mode == EncoderMode::kRaw ? "raw" : "compressed";
}

void EncoderRateAdapter::set_obs(obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (registry == nullptr) {
    m_switch_to_raw_ = m_switch_to_compressed_ = nullptr;
    m_dwell_raw_us_ = m_dwell_compressed_us_ = nullptr;
    return;
  }
  m_switch_to_raw_ =
      &registry->counter("adaptive_switches_total", {{"to", "raw"}});
  m_switch_to_compressed_ =
      &registry->counter("adaptive_switches_total", {{"to", "compressed"}});
  m_dwell_raw_us_ = &registry->histogram(
      "adaptive_mode_dwell_us", obs::HistogramSpec::duration_us(),
      {{"mode", "raw"}});
  m_dwell_compressed_us_ = &registry->histogram(
      "adaptive_mode_dwell_us", obs::HistogramSpec::duration_us(),
      {{"mode", "compressed"}});
}

EncoderMode EncoderRateAdapter::step(util::SimTimeUs now,
                                     double capacity_gbps) {
  const double dt =
      last_step_ == 0 ? 1e-3 : util::us_to_s(now - last_step_);
  last_step_ = now;

  // How satisfied is the *raw* demand right now?  (Judge against raw so
  // the adapter can tell when an upgrade would succeed.)
  double satisfied =
      std::clamp(capacity_gbps / policy_.raw_rate_gbps, 0.0, 1.0);
  // Backpressure extension, branch-gated so the weight-0 default keeps
  // the float sequence bit-exact with the legacy controller.
  if (policy_.backpressure_weight > 0.0 && pressure_ > 0.0) {
    satisfied = std::clamp(
        satisfied - policy_.backpressure_weight * pressure_, 0.0, 1.0);
  }
  const double alpha =
      1.0 - std::exp(-dt / util::us_to_s(policy_.window));
  satisfied_ema_ += alpha * (satisfied - satisfied_ema_);

  const bool dwell_ok = now - last_switch_ >= policy_.min_dwell;
  if (mode_ == EncoderMode::kRaw &&
      satisfied_ema_ < policy_.downgrade_threshold && dwell_ok) {
    if (m_dwell_raw_us_ != nullptr) {
      m_dwell_raw_us_->record(static_cast<double>(now - last_switch_));
      m_switch_to_compressed_->inc();
    }
    mode_ = EncoderMode::kCompressed;
    ++switches_;
    last_switch_ = now;
  } else if (mode_ == EncoderMode::kCompressed &&
             satisfied_ema_ > policy_.upgrade_threshold && dwell_ok) {
    if (m_dwell_compressed_us_ != nullptr) {
      m_dwell_compressed_us_->record(static_cast<double>(now - last_switch_));
      m_switch_to_raw_->inc();
    }
    mode_ = EncoderMode::kRaw;
    ++switches_;
    last_switch_ = now;
  }
  return mode_;
}

}  // namespace cyclops::stream

// Delivered-frame QoE accounting, shared by every stage that decides a
// frame's fate (the legacy net::FrameStreamer wire queue and the new
// jitter-buffered playout path).
//
// One definition of the paper's §5.4 user-experience bookkeeping:
//   * a frame is either delivered (display advances) or dropped (the
//     display re-shows the previous frame);
//   * a run of >= 2 consecutive dropped frames is one freeze event;
//   * delivery latency is render -> fully received.
// Keeping the arithmetic here byte-for-byte identical to the pre-stream
// FrameStreamer is what lets the rebased adapter stay bit-exact against
// the legacy implementation (tests/stream_abr_test.cpp drives both over
// the 500-trace library and EXPECT_EQs the outcome).
#pragma once

#include <cstdint>

#include "obs/registry.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

struct LedgerStats {
  std::int64_t frames_offered = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t frames_dropped = 0;
  double avg_delivery_latency_ms = 0.0;  ///< Render -> fully received.
  double max_delivery_latency_ms = 0.0;
  /// Display freezes: runs of >= 2 consecutive dropped frames.
  int freeze_events = 0;
  int longest_freeze_frames = 0;
  /// Id of the most recently delivered frame (-1 before the first); while
  /// frames drop, the display keeps re-showing this one.
  std::int64_t last_delivered_id = -1;

  double delivery_rate() const {
    return frames_offered > 0
               ? static_cast<double>(frames_delivered) / frames_offered
               : 0.0;
  }
  double freeze_rate() const {
    return frames_offered > 0
               ? static_cast<double>(frames_dropped) / frames_offered
               : 0.0;
  }
};

class FreezeLedger {
 public:
  /// Attaches QoE metrics under the legacy names —
  /// stream_frames_{offered,delivered,dropped}_total, stream_freezes_total,
  /// and the stream_delivery_latency_us histogram — with the given label
  /// set (empty for the FrameStreamer adapter, {"stage", ...} /
  /// {"receiver", ...} for pipeline stages).  Handles are hoisted here;
  /// pass nullptr to detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry, obs::Labels labels = {});

  void on_offered();
  void on_dropped();
  void on_delivered(util::SimTimeUs now, std::int64_t frame_id,
                    util::SimTimeUs render_time);

  const LedgerStats& stats() const noexcept { return stats_; }

 private:
  LedgerStats stats_;
  double latency_sum_ms_ = 0.0;
  int current_drop_run_ = 0;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_offered_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_freezes_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;
};

}  // namespace cyclops::stream

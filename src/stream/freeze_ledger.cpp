#include "stream/freeze_ledger.hpp"

#include <algorithm>
#include <utility>

#include "obs/config.hpp"

namespace cyclops::stream {

void FreezeLedger::set_obs(obs::Registry* registry, obs::Labels labels) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (registry == nullptr) {
    m_offered_ = m_delivered_ = m_dropped_ = m_freezes_ = nullptr;
    m_latency_us_ = nullptr;
    return;
  }
  m_offered_ = &registry->counter("stream_frames_offered_total", labels);
  m_delivered_ = &registry->counter("stream_frames_delivered_total", labels);
  m_dropped_ = &registry->counter("stream_frames_dropped_total", labels);
  m_freezes_ = &registry->counter("stream_freezes_total", labels);
  m_latency_us_ = &registry->histogram("stream_delivery_latency_us",
                                       obs::HistogramSpec::duration_us(),
                                       std::move(labels));
}

void FreezeLedger::on_offered() {
  ++stats_.frames_offered;
  if (m_offered_ != nullptr) m_offered_->inc();
}

void FreezeLedger::on_dropped() {
  ++stats_.frames_dropped;
  ++current_drop_run_;
  if (current_drop_run_ == 2) {
    ++stats_.freeze_events;
    if (m_freezes_ != nullptr) m_freezes_->inc();
  }
  stats_.longest_freeze_frames =
      std::max(stats_.longest_freeze_frames, current_drop_run_);
  if (m_dropped_ != nullptr) m_dropped_->inc();
}

void FreezeLedger::on_delivered(util::SimTimeUs now, std::int64_t frame_id,
                                util::SimTimeUs render_time) {
  ++stats_.frames_delivered;
  stats_.last_delivered_id = frame_id;
  current_drop_run_ = 0;
  const double latency_ms = util::us_to_ms(now - render_time);
  latency_sum_ms_ += latency_ms;
  stats_.avg_delivery_latency_ms =
      latency_sum_ms_ / static_cast<double>(stats_.frames_delivered);
  stats_.max_delivery_latency_ms =
      std::max(stats_.max_delivery_latency_ms, latency_ms);
  if (m_delivered_ != nullptr) {
    m_delivered_->inc();
    m_latency_us_->record(static_cast<double>(now - render_time));
  }
}

}  // namespace cyclops::stream

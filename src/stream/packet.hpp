// The RTP-flavored wire format of the streaming data plane.
//
// Like ka9q-radio's modules, the pipeline stages are independent and
// meet only at this sequenced-datagram boundary: every packet carries a
// transport-wide sequence number, its frame's id and render timestamp,
// fragment coordinates, and a payload *reference* — a refcounted arena
// handle plus (offset, length) into the slab, never a byte copy.
//
// Tiers implement the GazeProphetV2 observation that not all pixels are
// equally worth delivering: when the send queue exceeds its backlog
// budget, peripheral packets are evicted first, foveal next, and
// intra-coded frames last — so loss degrades the periphery before it
// tears the stream state.
#pragma once

#include <cstdint>

#include "stream/frame_arena.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

/// Packet priority tier, ordered most- to least-protected.
enum class Tier : std::uint8_t {
  kIntra = 0,       ///< I-frame fragments: loss stalls every later P frame.
  kFoveal = 1,      ///< Gaze-region fragments of a predicted frame.
  kPeripheral = 2,  ///< Out-of-gaze fragments: cheapest to sacrifice.
};

inline constexpr int kTierCount = 3;

const char* to_string(Tier tier) noexcept;

/// One frame as the data plane sees it: wire size in bits (drives the
/// capacity model) plus the stored payload in the arena.  The stored
/// payload may be a digest of the logical frame (simulations don't
/// materialize 27 MB of pixels per frame); its bytes are what the
/// reassembly property test checks end to end.
struct FrameDesc {
  std::int64_t id = 0;
  util::SimTimeUs render_time = 0;
  double bits = 0.0;        ///< Logical wire size (pre-overhead).
  FrameHandle payload;      ///< Stored payload slab (refcounted).
  Tier tier = Tier::kPeripheral;  ///< Dominant tier (I frames: kIntra).
};

struct PacketHeader {
  std::uint64_t seq = 0;    ///< Transport-wide monotonic sequence.
  std::int64_t frame_id = 0;
  util::SimTimeUs timestamp = 0;  ///< Frame render time.
  std::uint32_t frag_index = 0;
  std::uint32_t frag_count = 1;
  std::uint32_t offset = 0;  ///< Byte offset into the stored payload.
  std::uint32_t length = 0;  ///< Stored payload bytes in this packet.
  double bits = 0.0;         ///< Wire bits of this fragment (pre-overhead).
  Tier tier = Tier::kPeripheral;
  bool marker = false;       ///< Last fragment of its frame.
};

/// A sequenced datagram: header + payload reference.  The transport
/// add_refs the slab once per in-flight packet and the receive side
/// releases it — packets never own bytes.
struct Packet {
  PacketHeader header;
  FrameHandle payload;
};

}  // namespace cyclops::stream

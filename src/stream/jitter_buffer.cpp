#include "stream/jitter_buffer.hpp"

namespace cyclops::stream {

JitterBuffer::~JitterBuffer() {
  for (auto& [id, frame] : buffer_) arena_->release(frame.payload);
}

void JitterBuffer::push(const FrameDesc& frame) {
  ++stats_.frames_pushed;
  if (frame.id < next_display_id_ || buffer_.contains(frame.id)) {
    ++stats_.stale_arrivals;
    return;
  }
  if (!arena_->add_ref(frame.payload)) {
    ++stats_.stale_arrivals;
    return;
  }
  buffer_.emplace(frame.id, frame);
}

void JitterBuffer::account_gap(std::int64_t up_to) {
  while (next_display_id_ < up_to) {
    ledger_->on_dropped();
    ++next_display_id_;
  }
}

void JitterBuffer::on_vsync(util::SimTimeUs now) {
  // Expire frames past their playout deadline.  `>` (not `>=`): a frame
  // is still displayable at exactly render_time + playout_deadline.
  // Its id is accounted as a ledger drop when the playhead passes it
  // (account_gap / finalize), keeping drops in frame-id order.
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (now > it->second.render_time + config_.playout_deadline) {
      arena_->release(it->second.payload);
      ++stats_.late_drops;
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  if (buffer_.empty()) {
    ++stats_.re_shows;  // display keeps showing the previous frame
    return;
  }
  auto it = buffer_.begin();
  const FrameDesc frame = it->second;
  buffer_.erase(it);
  account_gap(frame.id);
  ledger_->on_delivered(now, frame.id, frame.render_time);
  ++stats_.frames_displayed;
  stats_.displayed_bits += frame.bits;
  next_display_id_ = frame.id + 1;
  arena_->release(frame.payload);
}

void JitterBuffer::finalize(std::int64_t last_offered_id) {
  for (auto& [id, frame] : buffer_) arena_->release(frame.payload);
  buffer_.clear();
  account_gap(last_offered_id + 1);
}

}  // namespace cyclops::stream

// Jitter-buffered playout: in-order display against a playout deadline,
// with re-show accounting and an explicit backpressure signal.
//
// Reassembled frames can arrive bursty and out of render order (loss,
// reorder, retransmission gaps upstream).  The jitter buffer absorbs
// that: frames queue keyed by id, each vsync displays the next id in
// order if one is ready and still within its playout deadline, and when
// nothing is displayable the display re-shows the previous frame (a
// re-show; two or more in a row over missing frames is the freeze the
// ledger counts).
//
// DEADLINE BOUNDARY — same predicate as the wire queue: a frame is late
// once `now > render_time + playout_deadline`; displayable at exactly
// the deadline instant, dropped one microsecond past it
// (tests/stream_jitter_test.cpp pins both sides).
//
// QoE accounting goes through the shared FreezeLedger in frame-id
// order: when frame k displays after frame j, the ids in (j, k) that
// never made it are recorded as drops first, then k's delivery — so the
// drop-run/freeze arithmetic matches the legacy FrameStreamer's
// per-frame outcome sequence.  fill() exposes buffer occupancy in
// [0, 1] for the EncoderRateAdapter's backpressure input.
#pragma once

#include <cstdint>
#include <map>

#include "stream/frame_arena.hpp"
#include "stream/freeze_ledger.hpp"
#include "stream/packet.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

struct JitterConfig {
  /// Playout deadline relative to render time (see DEADLINE BOUNDARY
  /// above).  Matches the wire queue's 22 ms default.
  util::SimTimeUs playout_deadline = 22000;
  /// Occupancy at which fill() saturates to 1.0 — the backpressure
  /// reference depth.
  std::size_t depth_limit = 8;
};

struct JitterStats {
  std::int64_t frames_pushed = 0;
  std::int64_t frames_displayed = 0;
  std::int64_t late_drops = 0;     ///< Expired in the buffer (past deadline).
  std::int64_t stale_arrivals = 0; ///< Arrived already behind the playhead.
  std::int64_t re_shows = 0;       ///< Vsyncs with nothing displayable.
  double displayed_bits = 0.0;     ///< Logical wire bits shown (goodput).
};

class JitterBuffer {
 public:
  JitterBuffer(JitterConfig config, FrameArena& arena, FreezeLedger& ledger)
      : config_(config), arena_(&arena), ledger_(&ledger) {}
  ~JitterBuffer();
  JitterBuffer(const JitterBuffer&) = delete;
  JitterBuffer& operator=(const JitterBuffer&) = delete;

  /// Buffers a reassembled frame (pins one arena reference; refcount-only,
  /// never a copy).  Frames at or behind the playhead are dropped as
  /// stale; their ids were already accounted when the playhead passed.
  void push(const FrameDesc& frame);

  /// One display refresh: expires frames past their playout deadline,
  /// then shows the lowest buffered id if it is displayable — recording
  /// the skipped ids before it as drops — or counts a re-show.
  void on_vsync(util::SimTimeUs now);

  /// Accounts every id in (last displayed, last_offered_id] that never
  /// displayed as dropped.  Call once at end of run so tail losses reach
  /// the ledger.
  void finalize(std::int64_t last_offered_id);

  /// Buffer occupancy in [0, 1] relative to depth_limit — the
  /// backpressure signal fed to EncoderRateAdapter::on_backpressure.
  double fill() const noexcept {
    const double f = static_cast<double>(buffer_.size()) /
                     static_cast<double>(config_.depth_limit);
    return f > 1.0 ? 1.0 : f;
  }

  std::size_t depth() const noexcept { return buffer_.size(); }
  const JitterStats& stats() const noexcept { return stats_; }
  const JitterConfig& config() const noexcept { return config_; }

 private:
  /// Records ids in (next_display_id_ - 1, up_to) exclusive of up_to as
  /// ledger drops and advances the playhead.
  void account_gap(std::int64_t up_to);

  JitterConfig config_;
  FrameArena* arena_;
  FreezeLedger* ledger_;
  std::map<std::int64_t, FrameDesc> buffer_;  ///< Ordered by frame id.
  std::int64_t next_display_id_ = 0;  ///< Playhead: smallest undisplayed id.
  JitterStats stats_;
};

}  // namespace cyclops::stream

#include "stream/transport.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "obs/config.hpp"

namespace cyclops::stream {

const char* to_string(Tier tier) noexcept {
  switch (tier) {
    case Tier::kIntra: return "intra";
    case Tier::kFoveal: return "foveal";
    case Tier::kPeripheral: return "peripheral";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Reassembler

Reassembler::~Reassembler() {
  for (auto& [id, p] : partials_) arena_->release(p.payload);
  FrameDesc f;
  while (pop(f)) arena_->release(f.payload);
}

void Reassembler::on_packet(util::SimTimeUs now, const Packet& pkt) {
  ++stats_.packets_accepted;
  const auto& h = pkt.header;
  if (resolved_.count(h.frame_id) != 0) {
    // Straggler duplicate for a frame already completed (or torn): a
    // frame surfaces at most once, so this must not seed a new partial.
    ++stats_.duplicate_fragments;
    arena_->release(pkt.payload);
    return;
  }
  auto [it, inserted] = partials_.try_emplace(h.frame_id);
  Partial& p = it->second;
  if (inserted) {
    p.first_arrival = now;
    p.timestamp = h.timestamp;
    p.frag_count = h.frag_count;
    p.tier = h.tier;
    p.got.assign(h.frag_count, false);
    p.payload = pkt.payload;  // keeps the caller's reference
  } else {
    // The partial already pins the slab; this packet's reference is
    // surplus.
    arena_->release(pkt.payload);
  }
  if (h.frag_index >= p.frag_count || p.got[h.frag_index]) {
    ++stats_.duplicate_fragments;
    return;
  }
  p.got[h.frag_index] = true;
  ++p.received;
  p.bits += h.bits;
  p.spans.emplace_back(h.offset, h.length);
  if (static_cast<std::uint8_t>(h.tier) < static_cast<std::uint8_t>(p.tier)) {
    p.tier = h.tier;
  }
  if (p.received == p.frag_count) {
    finish(now, h.frame_id, p);
    partials_.erase(it);
  }
}

void Reassembler::finish(util::SimTimeUs now, std::int64_t frame_id,
                         Partial& p) {
  resolved_.insert(frame_id);
  resolved_log_.emplace_back(now, frame_id);
  // A frame surfaces only when its fragment spans tile the stored
  // payload exactly — [0, size) with no gap or overlap.  Anything else
  // is a torn frame: counted, dropped, never shown.
  std::sort(p.spans.begin(), p.spans.end());
  std::uint32_t cursor = 0;
  bool tiled = true;
  for (const auto& [off, len] : p.spans) {
    if (off != cursor) { tiled = false; break; }
    cursor += len;
  }
  tiled = tiled && cursor == arena_->size(p.payload);
  if (!tiled) {
    ++stats_.frames_torn;
    arena_->release(p.payload);
    return;
  }
  ++stats_.frames_completed;
  FrameDesc out;
  out.id = frame_id;
  out.render_time = p.timestamp;
  out.bits = p.bits;
  out.payload = p.payload;  // the partial's reference transfers
  out.tier = p.tier;
  ready_.push_back(out);
}

void Reassembler::expire(util::SimTimeUs now) {
  while (!resolved_log_.empty() &&
         now - resolved_log_.front().first > timeout_) {
    resolved_.erase(resolved_log_.front().second);
    resolved_log_.pop_front();
  }
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (now - it->second.first_arrival > timeout_) {
      arena_->release(it->second.payload);
      ++stats_.frames_expired;
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Reassembler::pop(FrameDesc& out) {
  if (ready_.empty()) return false;
  out = ready_.front();
  ready_.pop_front();
  return true;
}

// ---------------------------------------------------------------------------
// SequencedTransport

SequencedTransport::SequencedTransport(TransportConfig config,
                                       FrameArena& arena, util::Rng rng)
    : config_(config), arena_(&arena), rng_(rng) {}

SequencedTransport::~SequencedTransport() {
  for (auto& q : queues_) {
    for (const Packet& pkt : q) arena_->release(pkt.payload);
  }
  for (auto& r : receivers_) {
    for (const Packet& pkt : r->held) arena_->release(pkt.payload);
  }
}

void SequencedTransport::set_obs(obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  registry_ = registry;
  if (registry == nullptr) {
    m_sent_ = m_evicted_ = nullptr;
    for (auto& r : receivers_) {
      r->m_delivered = r->m_lost = r->m_frames = nullptr;
    }
    return;
  }
  m_sent_ = &registry->counter("stream_packets_sent_total");
  m_evicted_ = &registry->counter("stream_packets_evicted_total");
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    obs::Labels labels{{"receiver", std::to_string(i)}};
    receivers_[i]->m_delivered =
        &registry->counter("stream_packets_delivered_total", labels);
    receivers_[i]->m_lost =
        &registry->counter("stream_packets_lost_total", labels);
    receivers_[i]->m_frames =
        &registry->counter("stream_frames_reassembled_total", labels);
  }
}

int SequencedTransport::add_receiver(Impairments impairments,
                                     FrameSink sink) {
  const int index = static_cast<int>(receivers_.size());
  receivers_.push_back(std::make_unique<Receiver>(
      *arena_, config_.reassembly_timeout, impairments,
      rng_.split(static_cast<std::uint64_t>(index)), std::move(sink)));
  if (registry_ != nullptr) {
    Receiver& r = *receivers_.back();
    obs::Labels labels{{"receiver", std::to_string(index)}};
    r.m_delivered =
        &registry_->counter("stream_packets_delivered_total", labels);
    r.m_lost = &registry_->counter("stream_packets_lost_total", labels);
    r.m_frames =
        &registry_->counter("stream_frames_reassembled_total", labels);
  }
  return index;
}

int SequencedTransport::offer(const FrameDesc& frame) {
  ++stats_.frames_offered;
  const double mtu_bits =
      static_cast<double>(config_.max_fragment_bytes) * 8.0;
  const std::uint32_t frag_count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(frame.bits / mtu_bits)));
  const std::uint32_t foveal_cut =
      frame.tier == Tier::kIntra
          ? frag_count
          : static_cast<std::uint32_t>(
                std::ceil(config_.foveal_fraction * frag_count));
  const std::size_t stored = arena_->size(frame.payload);
  int queued = 0;
  for (std::uint32_t i = 0; i < frag_count; ++i) {
    if (!arena_->add_ref(frame.payload)) break;  // stale handle: stop
    Packet pkt;
    pkt.header.seq = next_seq_++;
    pkt.header.frame_id = frame.id;
    pkt.header.timestamp = frame.render_time;
    pkt.header.frag_index = i;
    pkt.header.frag_count = frag_count;
    pkt.header.offset = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(stored) * i / frag_count);
    pkt.header.length =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(stored) *
                                   (i + 1) / frag_count) -
        pkt.header.offset;
    pkt.header.bits = frame.bits / frag_count;
    pkt.header.tier = frame.tier == Tier::kIntra ? Tier::kIntra
                      : i < foveal_cut           ? Tier::kFoveal
                                                 : frame.tier;
    pkt.header.marker = i + 1 == frag_count;
    pkt.payload = frame.payload;
    backlog_bits_ += pkt.header.bits;
    queues_[static_cast<int>(pkt.header.tier)].push_back(pkt);
    ++stats_.packets_queued;
    ++queued;
  }
  evict_over_backlog();
  return queued;
}

void SequencedTransport::evict_over_backlog() {
  if (config_.max_backlog_bits <= 0.0) return;
  while (backlog_bits_ > config_.max_backlog_bits) {
    // Peripheral first, foveal next, intra only when nothing else is
    // left — loss degrades the periphery before it stalls the GOP.
    int tier = -1;
    for (int t = kTierCount - 1; t >= 0; --t) {
      if (!queues_[t].empty()) { tier = t; break; }
    }
    if (tier < 0) break;
    const Packet pkt = queues_[tier].front();  // oldest: closest to deadline
    queues_[tier].pop_front();
    backlog_bits_ -= pkt.header.bits;
    arena_->release(pkt.payload);
    ++stats_.packets_evicted[tier];
    if (m_evicted_ != nullptr) m_evicted_->inc();
  }
}

void SequencedTransport::deliver(Receiver& r, util::SimTimeUs arrive,
                                 const Packet& pkt) {
  if (!arena_->add_ref(pkt.payload)) return;
  if (r.impairments.reorder > 0.0 &&
      r.rng.uniform() < r.impairments.reorder) {
    ++r.stats.packets_reordered;
    r.held.push_back(pkt);  // jumps behind the next delivered packet
    return;
  }
  r.reassembler.on_packet(arrive, pkt);
  ++r.stats.packets_delivered;
  if (r.m_delivered != nullptr) r.m_delivered->inc();
  // Anything held back is now "later" than a delivered packet — flush.
  for (const Packet& held : r.held) {
    r.reassembler.on_packet(arrive, held);
    ++r.stats.packets_delivered;
    if (r.m_delivered != nullptr) r.m_delivered->inc();
  }
  r.held.clear();
}

void SequencedTransport::fan_out(util::SimTimeUs arrive, const Packet& pkt) {
  for (auto& rp : receivers_) {
    Receiver& r = *rp;
    if (r.rng.uniform() < r.impairments.loss) {
      ++r.stats.packets_lost;
      if (r.m_lost != nullptr) r.m_lost->inc();
      continue;
    }
    deliver(r, arrive, pkt);
    if (r.impairments.dup > 0.0 && r.rng.uniform() < r.impairments.dup) {
      ++r.stats.packets_duped;
      deliver(r, arrive, pkt);
    }
  }
}

void SequencedTransport::step(util::SimTimeUs now,
                              util::SimTimeUs slot_duration,
                              double capacity_gbps) {
  const util::SimTimeUs arrive = now + slot_duration;
  double budget_bits = budget_carry_bits_ +
                       capacity_gbps * 1e9 * util::us_to_s(slot_duration);
  bool drained = false;
  while (budget_bits > 0.0) {
    int tier = -1;
    for (int t = 0; t < kTierCount; ++t) {
      if (!queues_[t].empty()) { tier = t; break; }
    }
    if (tier < 0) { drained = true; break; }
    const Packet pkt = queues_[tier].front();
    queues_[tier].pop_front();
    budget_bits -= pkt.header.bits * config_.overhead;
    backlog_bits_ -= pkt.header.bits;
    ++stats_.packets_sent;
    if (m_sent_ != nullptr) m_sent_->inc();
    fan_out(arrive, pkt);
    arena_->release(pkt.payload);  // the queue's reference
  }
  // Overdraw (a packet larger than the remaining budget still went out
  // whole) carries as serialization debt; idle budget is not banked.
  budget_carry_bits_ = drained ? 0.0 : std::min(budget_bits, 0.0);

  for (auto& rp : receivers_) {
    Receiver& r = *rp;
    // Reorder stashes whose "later" packet never came this slot flush at
    // slot end — a hold is a delay, never a loss.
    for (const Packet& held : r.held) {
      r.reassembler.on_packet(arrive, held);
      ++r.stats.packets_delivered;
      if (r.m_delivered != nullptr) r.m_delivered->inc();
    }
    r.held.clear();
    r.reassembler.expire(arrive);
    FrameDesc frame;
    while (r.reassembler.pop(frame)) {
      if (r.m_frames != nullptr) r.m_frames->inc();
      if (r.sink) r.sink(arrive, frame);
      arena_->release(frame.payload);
    }
  }
}

}  // namespace cyclops::stream

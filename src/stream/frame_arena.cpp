#include "stream/frame_arena.hpp"

#include <algorithm>
#include <cstring>

#include "obs/config.hpp"

namespace cyclops::stream {

FrameArena::FrameArena(ArenaConfig config) : config_(config) {}

void FrameArena::set_obs(obs::Registry* registry) {
  if constexpr (!obs::kEnabled) registry = nullptr;
  if (registry == nullptr) {
    m_acquires_ = m_releases_ = m_copies_ = m_failures_ = nullptr;
    m_slabs_ = nullptr;
    return;
  }
  m_acquires_ = &registry->counter("stream_arena_acquires_total");
  m_releases_ = &registry->counter("stream_arena_releases_total");
  m_copies_ = &registry->counter("stream_arena_copies_total");
  m_failures_ = &registry->counter("stream_arena_failures_total");
  m_slabs_ = &registry->gauge("stream_arena_slabs");
}

std::uint32_t FrameArena::live_slot(FrameHandle h) const noexcept {
  if (!h.valid()) return kNoSlot;
  const std::uint32_t slot = slot_of(h);
  if (slot >= slots_.size()) return kNoSlot;
  const Slot& s = slots_[slot];
  if (s.refs == 0 || s.generation != generation_of(h)) return kNoSlot;
  return slot;
}

FrameHandle FrameArena::acquire(std::size_t bytes) {
  if (bytes > config_.slab_bytes) {
    ++stats_.failures;
    if (m_failures_ != nullptr) m_failures_->inc();
    return FrameHandle();
  }
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].free_next;
  } else {
    if (config_.max_slabs != 0 && slots_.size() >= config_.max_slabs) {
      ++stats_.failures;
      if (m_failures_ != nullptr) m_failures_->inc();
      return FrameHandle();
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slabs_.push_back(std::make_unique<std::byte[]>(config_.slab_bytes));
    stats_.slabs_allocated = slots_.size();
    if (m_slabs_ != nullptr) m_slabs_->set(static_cast<double>(slots_.size()));
  }
  Slot& s = slots_[slot];
  s.refs = 1;
  s.bytes = bytes;
  s.free_next = kNoSlot;
  ++stats_.acquires;
  ++stats_.in_use;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  if (m_acquires_ != nullptr) m_acquires_->inc();
  return make_handle(slot, s.generation);
}

bool FrameArena::add_ref(FrameHandle h) {
  const std::uint32_t slot = live_slot(h);
  if (slot == kNoSlot) {
    ++stats_.stale_ops;
    return false;
  }
  ++slots_[slot].refs;
  return true;
}

bool FrameArena::release(FrameHandle h) {
  const std::uint32_t slot = live_slot(h);
  if (slot == kNoSlot) {
    ++stats_.stale_ops;
    return false;
  }
  Slot& s = slots_[slot];
  if (--s.refs == 0) {
    // Recycle: bump the generation so every outstanding handle for this
    // occupancy reports stale forever, then chain onto the free list.
    ++s.generation;
    s.bytes = 0;
    s.free_next = free_head_;
    free_head_ = slot;
    ++stats_.releases;
    --stats_.in_use;
    if (m_releases_ != nullptr) m_releases_->inc();
  }
  return true;
}

std::byte* FrameArena::data(FrameHandle h) noexcept {
  const std::uint32_t slot = live_slot(h);
  return slot == kNoSlot ? nullptr : slabs_[slot].get();
}

const std::byte* FrameArena::data(FrameHandle h) const noexcept {
  const std::uint32_t slot = live_slot(h);
  return slot == kNoSlot ? nullptr : slabs_[slot].get();
}

std::size_t FrameArena::size(FrameHandle h) const noexcept {
  const std::uint32_t slot = live_slot(h);
  return slot == kNoSlot ? 0 : slots_[slot].bytes;
}

bool FrameArena::valid(FrameHandle h) const noexcept {
  return live_slot(h) != kNoSlot;
}

std::uint32_t FrameArena::ref_count(FrameHandle h) const noexcept {
  const std::uint32_t slot = live_slot(h);
  return slot == kNoSlot ? 0 : slots_[slot].refs;
}

FrameHandle FrameArena::clone(FrameHandle h) {
  const std::uint32_t slot = live_slot(h);
  if (slot == kNoSlot) {
    ++stats_.stale_ops;
    return FrameHandle();
  }
  const std::size_t bytes = slots_[slot].bytes;
  const FrameHandle copy = acquire(bytes);
  if (!copy.valid()) return copy;
  std::memcpy(slabs_[slot_of(copy)].get(), slabs_[slot].get(), bytes);
  ++stats_.copies;
  if (m_copies_ != nullptr) m_copies_->inc();
  return copy;
}

}  // namespace cyclops::stream

// The assembled streaming data plane: frame source -> encoder rate
// adaptation -> zero-copy arena -> sequenced transport -> per-receiver
// jitter-buffered playout, all driven event-first by one
// event::Scheduler.
//
// Three event streams interleave on the scheduler timeline:
//   * kFrameEvent  — at the frame period: the source renders a frame at
//     the EncoderRateAdapter's current mode rate, stamps a deterministic
//     payload digest into an arena slab, and offers it to the transport
//     (refcount-only from here on);
//   * kSlotEvent   — at the 1 ms slot: sample the capacity function
//     (any phy::Channel rate, a trace replay, or a synthetic flap),
//     step the rate adapter, drain the transport against the slot
//     budget, and feed jitter-buffer fill back as backpressure;
//   * kVsyncEvent  — per receiver at the display refresh: the jitter
//     buffer shows the next in-order frame or re-shows the last.
//
// Fan-out: receiver 0 is the headset; N spectators attach with their own
// impairments, reassemblers, and jitter buffers, all sharing the
// headset's arena slabs refcount-only — PipelineResult carries the arena
// copy counter so callers can assert it stayed zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "event/process.hpp"
#include "event/scheduler.hpp"
#include "phy/channel.hpp"
#include "runtime/context.hpp"
#include "session/lifecycle.hpp"
#include "stream/frame_arena.hpp"
#include "stream/jitter_buffer.hpp"
#include "stream/rate_adapter.hpp"
#include "stream/transport.hpp"

namespace cyclops::stream {

/// Link capacity (Gbps) available during the slot starting at `t`.
using CapacityFn = std::function<double(util::SimTimeUs)>;

/// Adapts a phy::Channel into a CapacityFn: per slot, evaluate the
/// channel metric at the pose `pose_at(t)` gives, advance its link-state
/// machine, and yield the bought rate (0 while the link is down).  Call
/// in time order only — channels mutate internal state.
CapacityFn channel_capacity(phy::Channel& channel,
                            std::function<geom::Pose(util::SimTimeUs)> pose_at);

struct PipelineConfig {
  double fps = 90.0;
  util::SimTimeUs slot = 1000;
  util::SimTimeUs duration = 10'000'000;  ///< 10 s.
  /// Spectator receivers beyond the headset (receiver 0).
  int spectators = 0;
  /// Every gop-th frame is intra-coded (tier kIntra).
  int gop = 8;
  /// Stored payload digest per frame (logical size is FrameDesc::bits).
  std::size_t stored_payload_bytes = 4096;
  /// Fractional frame-size jitter (Gaussian), 0 for exact-size frames.
  double size_jitter = 0.0;
  RatePolicy policy;
  TransportConfig transport;
  JitterConfig jitter;
  ArenaConfig arena;
  Impairments headset;    ///< Receiver 0.
  Impairments spectator;  ///< Each spectator receiver.
};

struct ReceiverReport {
  LedgerStats ledger;
  JitterStats jitter;
  ReceiverStats transport;
  ReassemblyStats reassembly;
};

struct PipelineResult {
  std::vector<ReceiverReport> receivers;  ///< [0] = headset.
  std::int64_t frames_generated = 0;
  int mode_switches = 0;
  std::uint64_t events_dispatched = 0;
  ArenaStats arena;          ///< arena.copies must be 0: zero-copy fan-out.
  TransportStats transport;
  double duration_s = 0.0;
  double offered_gbps = 0.0;  ///< Rendered logical bits / duration.
  double goodput_gbps = 0.0;  ///< Headset displayed bits / duration.
  std::int64_t torn_frames = 0;  ///< Sum over receivers; must be 0.
};

class StreamPipeline final : public event::Process {
 public:
  /// RNG key for the pipeline's keyed split of the context generator.
  static constexpr std::uint64_t kRngKey = 0x73747265616dULL;  // "stream"

  /// Builds the full plane from a context: obs lands in ctx.registry()
  /// (headset ledger unlabelled — the legacy FrameStreamer names — and
  /// spectators labelled {"receiver", i}), randomness from
  /// ctx.rng(kRngKey).
  StreamPipeline(PipelineConfig config, const runtime::Context& ctx);

  /// Runs the plane over [0, duration] against the capacity function and
  /// returns the end-of-run report (jitter buffers finalized: undisplayed
  /// tail frames are accounted as drops).  One run per pipeline.
  PipelineResult run(const CapacityFn& capacity);

  void handle(event::Scheduler& sched, const event::Event& ev) override;
  const char* name() const noexcept override { return "stream_pipeline"; }

  const FrameArena& arena() const noexcept { return arena_; }
  const SequencedTransport& transport() const noexcept { return transport_; }
  const EncoderRateAdapter& adapter() const noexcept { return adapter_; }

 private:
  static constexpr event::EventType kFrameEvent = 0;
  static constexpr event::EventType kSlotEvent = 1;
  static constexpr event::EventType kVsyncEvent = 2;  ///< i64 = receiver.

  void render_frame(event::Scheduler& sched);

  PipelineConfig config_;
  util::SimTimeUs frame_period_;
  util::Rng rng_;
  FrameArena arena_;
  EncoderRateAdapter adapter_;
  SequencedTransport transport_;
  std::vector<std::unique_ptr<FreezeLedger>> ledgers_;
  std::vector<std::unique_ptr<JitterBuffer>> jitters_;
  /// Self-clocked scheduler lease: borrows the bound fleet Workspace's
  /// scheduler when one is free, else owns a private one — either way the
  /// timeline starts at 0, exactly the pre-lease `event::Scheduler` member.
  session::ScopedScheduler sched_lease_{nullptr};
  event::ProcessId pid_ = event::kNoProcess;
  const CapacityFn* capacity_ = nullptr;
  std::int64_t next_frame_id_ = 0;
  double offered_bits_ = 0.0;
};

}  // namespace cyclops::stream

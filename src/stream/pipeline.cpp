#include "stream/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace cyclops::stream {

CapacityFn channel_capacity(
    phy::Channel& channel,
    std::function<geom::Pose(util::SimTimeUs)> pose_at) {
  return [&channel, pose_at = std::move(pose_at)](util::SimTimeUs t) {
    const double power = channel.power_at(pose_at(t), t);
    const bool up = channel.step(t, power);
    return up ? channel.rate_for(power) : 0.0;
  };
}

StreamPipeline::StreamPipeline(PipelineConfig config,
                               const runtime::Context& ctx)
    : config_(config),
      frame_period_(static_cast<util::SimTimeUs>(
          std::llround(1e6 / config.fps))),
      rng_(ctx.rng(kRngKey)),
      arena_(config.arena),
      adapter_(config.policy, ctx),
      transport_(config.transport, arena_, ctx.rng(kRngKey + 1)) {
  obs::Registry* registry = &ctx.registry();
  arena_.set_obs(registry);
  transport_.set_obs(registry);
  const int receivers = 1 + std::max(0, config_.spectators);
  for (int i = 0; i < receivers; ++i) {
    ledgers_.push_back(std::make_unique<FreezeLedger>());
    // Receiver 0 keeps the legacy unlabelled FrameStreamer metric names;
    // spectators get their own label set.
    if (i == 0) {
      ledgers_.back()->set_obs(registry);
    } else {
      ledgers_.back()->set_obs(registry,
                               {{"receiver", std::to_string(i)}});
    }
    jitters_.push_back(std::make_unique<JitterBuffer>(
        config_.jitter, arena_, *ledgers_.back()));
    const Impairments imp = i == 0 ? config_.headset : config_.spectator;
    JitterBuffer* jb = jitters_.back().get();
    transport_.add_receiver(
        imp, [jb](util::SimTimeUs, const FrameDesc& frame) {
          jb->push(frame);
        });
  }
  pid_ = sched_lease_.get().add_process(this);
}

void StreamPipeline::render_frame(event::Scheduler& sched) {
  const std::int64_t id = next_frame_id_++;
  const util::SimTimeUs now = sched.now();
  for (auto& ledger : ledgers_) ledger->on_offered();

  double bits = adapter_.current_rate_gbps() * 1e9 / config_.fps;
  if (config_.size_jitter > 0.0) {
    bits *= std::max(0.1, 1.0 + config_.size_jitter * rng_.normal());
  }
  offered_bits_ += bits;

  FrameDesc frame;
  frame.id = id;
  frame.render_time = now;
  frame.bits = bits;
  frame.tier = (config_.gop > 0 && id % config_.gop == 0)
                   ? Tier::kIntra
                   : Tier::kPeripheral;
  frame.payload = arena_.acquire(config_.stored_payload_bytes);
  if (!frame.payload.valid()) {
    // Arena exhausted (max_slabs backpressure): the frame renders but
    // never reaches the wire; jitter-buffer gap accounting records the
    // drop per receiver when the playhead passes this id.
    return;
  }
  std::byte* p = arena_.data(frame.payload);
  for (std::size_t j = 0; j < config_.stored_payload_bytes; ++j) {
    p[j] = static_cast<std::byte>(
        static_cast<std::uint64_t>(id) * 131 + j * 31);
  }
  transport_.offer(frame);
  arena_.release(frame.payload);  // transport fragments hold their own refs
}

void StreamPipeline::handle(event::Scheduler& sched,
                            const event::Event& ev) {
  switch (ev.type) {
    case kFrameEvent: {
      render_frame(sched);
      const util::SimTimeUs next = ev.time + frame_period_;
      if (next < config_.duration) {
        sched.schedule({next, kFrameEvent, pid_, 0, 0.0});
      }
      break;
    }
    case kSlotEvent: {
      const double capacity = (*capacity_)(ev.time);
      adapter_.step(ev.time, capacity);
      transport_.step(ev.time, config_.slot, capacity);
      double fill = 0.0;
      for (auto& jb : jitters_) fill = std::max(fill, jb->fill());
      adapter_.on_backpressure(fill);
      const util::SimTimeUs next = ev.time + config_.slot;
      if (next < config_.duration) {
        sched.schedule({next, kSlotEvent, pid_, 0, 0.0});
      }
      break;
    }
    case kVsyncEvent: {
      jitters_[static_cast<std::size_t>(ev.i64)]->on_vsync(ev.time);
      const util::SimTimeUs next = ev.time + frame_period_;
      if (next <= config_.duration) {
        sched.schedule({next, kVsyncEvent, pid_, ev.i64, 0.0});
      }
      break;
    }
    default:
      break;
  }
}

PipelineResult StreamPipeline::run(const CapacityFn& capacity) {
  capacity_ = &capacity;
  // FIFO tie-break puts same-time events in schedule order: render, then
  // transmit the slot, then display.
  sched_lease_.get().schedule({0, kFrameEvent, pid_, 0, 0.0});
  sched_lease_.get().schedule({0, kSlotEvent, pid_, 0, 0.0});
  for (std::size_t i = 0; i < jitters_.size(); ++i) {
    sched_lease_.get().schedule({frame_period_, kVsyncEvent, pid_,
                         static_cast<std::int64_t>(i), 0.0});
  }
  const std::uint64_t dispatched = sched_lease_.get().run_single(*this);
  for (auto& jb : jitters_) jb->finalize(next_frame_id_ - 1);
  capacity_ = nullptr;

  PipelineResult result;
  result.frames_generated = next_frame_id_;
  result.mode_switches = adapter_.mode_switches();
  result.events_dispatched = dispatched;
  result.arena = arena_.stats();
  result.transport = transport_.stats();
  result.duration_s = util::us_to_s(config_.duration);
  result.offered_gbps = offered_bits_ / result.duration_s / 1e9;
  for (std::size_t i = 0; i < jitters_.size(); ++i) {
    ReceiverReport report;
    report.ledger = ledgers_[i]->stats();
    report.jitter = jitters_[i]->stats();
    report.transport = transport_.receiver_stats(static_cast<int>(i));
    report.reassembly = transport_.reassembly_stats(static_cast<int>(i));
    result.torn_frames += report.reassembly.frames_torn;
    result.receivers.push_back(report);
  }
  result.goodput_gbps =
      result.receivers[0].jitter.displayed_bits / result.duration_s / 1e9;
  return result;
}

}  // namespace cyclops::stream

// Zero-copy frame arena: refcounted fixed-slab frame buffers with
// generation-guarded handles.
//
// The streaming data plane moves rendered frames through packetization,
// per-receiver reassembly, and jitter-buffered playout without ever
// copying payload bytes: a frame's bytes live in exactly one slab, and
// every stage — each in-flight packet, each spectator's reassembler,
// each jitter buffer — holds a refcount on that slab instead of a copy.
// Slabs recycle through a free list when the last reference drops, so a
// steady-state pipeline does zero heap traffic and the arena footprint
// is bounded by the peak number of frames simultaneously in flight.
//
// Handles follow the same lifetime discipline as the event slab
// (event::EventQueue, DESIGN.md §13): a FrameHandle encodes
// (generation << 32) | (slot + 1), recycling a slot bumps its
// generation, and every accessor validates the generation — a stale
// handle (released, recycled) can never read, pin, or free the slot's
// next occupant.  The arena is single-threaded like a Scheduler; fan-out
// parallelism runs one arena per pipeline.
//
// The arena counts copies: clone() is the only API that duplicates
// payload bytes, and it increments stats().copies.  The spectator
// fan-out path asserts this counter stays zero — N receivers share one
// slab refcount-only (bench/stream_pipeline enforces it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.hpp"

namespace cyclops::stream {

/// Handle to one arena slab; 0 is never issued (reserved for invalid).
/// Value type: copying the handle does NOT take a reference — use
/// FrameArena::add_ref / release to manage the slab's refcount.
class FrameHandle {
 public:
  FrameHandle() = default;
  bool valid() const noexcept { return bits_ != 0; }
  bool operator==(const FrameHandle&) const = default;

 private:
  friend class FrameArena;
  explicit FrameHandle(std::uint64_t bits) : bits_(bits) {}
  std::uint64_t bits_ = 0;
};

struct ArenaConfig {
  /// Payload capacity of one slab (bytes).  One slab holds one frame's
  /// stored payload; acquire() fails for larger requests.
  std::size_t slab_bytes = 1 << 16;
  /// Hard cap on allocated slabs (0 = unbounded).  When every slab is
  /// referenced, acquire() fails instead of allocating past the cap —
  /// the arena-level backpressure signal.
  std::size_t max_slabs = 0;
};

struct ArenaStats {
  std::size_t slabs_allocated = 0;  ///< Slabs ever allocated (== peak pool).
  std::size_t in_use = 0;           ///< Slabs currently referenced.
  std::size_t peak_in_use = 0;
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;  ///< Slab recycles (refcount reached zero).
  std::uint64_t copies = 0;    ///< Payload byte copies (clone() calls).
  std::uint64_t failures = 0;  ///< acquire() rejections (size / cap).
  std::uint64_t stale_ops = 0; ///< Operations rejected on stale handles.
};

class FrameArena {
 public:
  explicit FrameArena(ArenaConfig config = {});
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Attaches arena metrics (stream_arena_* counters/gauge).  Handles are
  /// hoisted here; pass nullptr to detach.  No-op in CYCLOPS_OBS=OFF.
  void set_obs(obs::Registry* registry);

  /// Allocates a slab for `bytes` of payload with refcount 1.  Returns an
  /// invalid handle when `bytes` exceeds slab_bytes or the pool is at
  /// max_slabs with every slab referenced.
  FrameHandle acquire(std::size_t bytes);

  /// Pins the slab for another holder (a packet, a receiver).  False (and
  /// no-op) when the handle is stale.
  bool add_ref(FrameHandle h);

  /// Drops one reference; recycles the slab (generation bump, free list)
  /// when the count reaches zero.  False when the handle is stale —
  /// double-release of a recycled slab is rejected, never corrupting the
  /// next occupant.
  bool release(FrameHandle h);

  /// Payload bytes, or nullptr when the handle is stale.
  std::byte* data(FrameHandle h) noexcept;
  const std::byte* data(FrameHandle h) const noexcept;

  /// Stored payload size of the frame in the slab (0 when stale).
  std::size_t size(FrameHandle h) const noexcept;

  /// True while the handle names a live (referenced) slab.
  bool valid(FrameHandle h) const noexcept;

  /// Current refcount (0 when stale) — used by tests to pin the
  /// refcount-only fan-out contract.
  std::uint32_t ref_count(FrameHandle h) const noexcept;

  /// Deep copy into a fresh slab — the ONLY payload-copying API, counted
  /// in stats().copies.  Exists so the zero-copy claim is falsifiable:
  /// the fan-out bench asserts the counter stays zero.
  FrameHandle clone(FrameHandle h);

  const ArenaStats& stats() const noexcept { return stats_; }
  const ArenaConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::uint32_t generation = 0;
    std::uint32_t refs = 0;
    std::size_t bytes = 0;          ///< Stored payload size.
    std::uint32_t free_next = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static std::uint32_t slot_of(FrameHandle h) noexcept {
    return static_cast<std::uint32_t>(h.bits_ & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(FrameHandle h) noexcept {
    return static_cast<std::uint32_t>(h.bits_ >> 32);
  }
  static FrameHandle make_handle(std::uint32_t slot,
                                 std::uint32_t generation) noexcept {
    return FrameHandle((static_cast<std::uint64_t>(generation) << 32) |
                       (static_cast<std::uint64_t>(slot) + 1));
  }

  /// Slot index when `h` is live, kNoSlot otherwise.
  std::uint32_t live_slot(FrameHandle h) const noexcept;

  ArenaConfig config_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;  ///< Stable addresses.
  std::uint32_t free_head_ = kNoSlot;
  ArenaStats stats_;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_acquires_ = nullptr;
  obs::Counter* m_releases_ = nullptr;
  obs::Counter* m_copies_ = nullptr;
  obs::Counter* m_failures_ = nullptr;
  obs::Gauge* m_slabs_ = nullptr;
};

}  // namespace cyclops::stream

// Encoder rate adaptation: raw video when the link allows it, a
// compressed fallback when it does not.
//
// This is the policy core that net::AdaptiveStreamController now
// delegates to.  Its step() arithmetic is a float-op-for-float-op port
// of the legacy controller — tests/stream_abr_test.cpp drives both over
// the 500-trace library and EXPECT_EQs every mode switch — so the
// rebase is a pure refactor, not a behavior change.
//
// What the stream plane adds on top of the legacy policy is an explicit
// backpressure input: the jitter buffer (or any downstream queue) can
// report its fill level, and when RatePolicy::backpressure_weight is
// non-zero that pressure is subtracted from the link-satisfaction
// sample before the EMA — a full downstream queue reads as an
// unsatisfied link even when the photons are flowing.  With the default
// weight of 0 the extension is branch-gated off and the float sequence
// is identical to the legacy controller.
#pragma once

#include "obs/registry.hpp"
#include "runtime/context.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

enum class EncoderMode {
  kRaw,         ///< Uncompressed frames over the FSO link.
  kCompressed,  ///< Codec fallback (e.g. HEVC at ~0.4 Gbps).
};

const char* to_string(EncoderMode mode) noexcept;

/// Field-for-field mirror of the legacy net::AdaptiveConfig, plus the
/// backpressure extension knob.
struct RatePolicy {
  double raw_rate_gbps = 20.0;
  double compressed_rate_gbps = 0.4;
  /// Extra motion-to-photon latency the decoder adds in compressed mode.
  double decode_latency_ms = 8.0;
  /// Downgrade when the delivered fraction over the window drops below
  /// this; upgrade back above the high-water mark (hysteresis).
  double downgrade_threshold = 0.90;
  double upgrade_threshold = 0.995;
  /// Sliding window over which delivery is judged.
  util::SimTimeUs window = 500000;  // 0.5 s
  /// Minimum dwell time in a mode (prevents flapping).
  util::SimTimeUs min_dwell = 1000000;  // 1 s
  /// How strongly downstream backpressure (jitter-buffer fill in [0,1])
  /// discounts the link-satisfaction sample.  0 disables the extension
  /// entirely — the step arithmetic is then bit-exact with the legacy
  /// AdaptiveStreamController.
  double backpressure_weight = 0.0;
};

class EncoderRateAdapter {
 public:
  explicit EncoderRateAdapter(RatePolicy policy) : policy_(policy) {}

  /// Context constructor: mode metrics land in ctx.registry() (handles
  /// hoisted once, here) — the one-argument form of construct + set_obs.
  EncoderRateAdapter(RatePolicy policy, const runtime::Context& ctx)
      : EncoderRateAdapter(policy) {
    set_obs(&ctx.registry());
  }

  /// Attaches mode metrics under the legacy names: adaptive_switches_total
  /// counters (labelled by destination mode) and adaptive_mode_dwell_us
  /// histograms (time spent in the mode being left, labelled by that
  /// mode).  Pass nullptr to detach.  No-op in CYCLOPS_OBS=OFF builds.
  void set_obs(obs::Registry* registry);

  /// Reports downstream queue pressure in [0, 1] (e.g. jitter-buffer
  /// fill fraction).  Consumed by the next step(); ignored unless
  /// policy.backpressure_weight > 0.
  void on_backpressure(double fill) noexcept { pressure_ = fill; }

  /// Feeds one slot: the link's current deliverable capacity.  Returns
  /// the mode to use for frames rendered now.
  EncoderMode step(util::SimTimeUs now, double capacity_gbps);

  EncoderMode mode() const noexcept { return mode_; }
  int mode_switches() const noexcept { return switches_; }

  /// Rate demanded from the link in the current mode.
  double current_rate_gbps() const noexcept {
    return mode_ == EncoderMode::kRaw ? policy_.raw_rate_gbps
                                      : policy_.compressed_rate_gbps;
  }

  /// End-to-end latency penalty of the current mode.
  double current_decode_latency_ms() const noexcept {
    return mode_ == EncoderMode::kRaw ? 0.0 : policy_.decode_latency_ms;
  }

  const RatePolicy& policy() const noexcept { return policy_; }

 private:
  RatePolicy policy_;
  EncoderMode mode_ = EncoderMode::kRaw;
  int switches_ = 0;
  util::SimTimeUs last_switch_ = 0;
  // Sliding accounting: how much of the demanded rate the link could
  // carry over the recent window (exponential moving average matched to
  // the window length).
  double satisfied_ema_ = 1.0;
  util::SimTimeUs last_step_ = 0;
  double pressure_ = 0.0;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_switch_to_raw_ = nullptr;
  obs::Counter* m_switch_to_compressed_ = nullptr;
  obs::Histogram* m_dwell_raw_us_ = nullptr;
  obs::Histogram* m_dwell_compressed_us_ = nullptr;
};

}  // namespace cyclops::stream

// RTP-style sequenced transport: packetizer, tiered send queues, lossy
// fan-out, and per-receiver reassembly.
//
// The ka9q-radio shape — independent stages meeting at a sequenced-
// datagram boundary — applied to the VR stream:
//
//   offer(FrameDesc)                 step(now, slot, capacity_gbps)
//        │                                    │
//   packetize ──> tier queues ──> budgeted drain ──> per-receiver
//   (arena refs)  (peripheral-first   (capacity model  impairments ──>
//                  eviction under      from any         Reassembler ──>
//                  backlog)            phy::Channel     frame sink
//                                      rate)
//
// Zero-copy discipline: a packet carries an arena handle + (offset,
// length), never bytes.  The tier queue holds one reference per queued
// packet; fan-out to N receivers pins N more references on the same
// slab; reassembly holds one per partial frame.  The arena's copy
// counter stays zero through all of it.
//
// Delivery contract (pinned by tests/stream_transport_test.cpp): a
// receiver surfaces a frame only when every fragment arrived and the
// fragment spans tile the stored payload exactly — otherwise the frame
// is cleanly dropped (reassembly timeout).  Torn frames — surfaced with
// gapped coverage — are counted and must never occur.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "stream/frame_arena.hpp"
#include "stream/packet.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

struct TransportConfig {
  /// Wire MTU of one fragment (bytes of *logical* frame, pre-overhead).
  std::uint32_t max_fragment_bytes = 256 * 1024;
  /// Transmission overhead factor (protocol framing, FEC).
  double overhead = 1.05;
  /// Send-queue backlog cap in wire bits (pre-overhead); past it the
  /// lowest tier is evicted first (peripheral, then foveal, then — only
  /// when nothing else remains — intra).  0 disables eviction.
  double max_backlog_bits = 1e9;
  /// Leading fraction of a non-intra frame's fragments marked kFoveal
  /// (the gaze region packs first); the rest are kPeripheral.
  double foveal_fraction = 0.2;
  /// A partial frame older than this (since first fragment arrival) is
  /// dropped by the reassembler.
  util::SimTimeUs reassembly_timeout = 22000;
};

/// Per-receiver channel impairments, applied at fan-out with a keyed
/// per-receiver Rng stream (deterministic regardless of receiver count).
struct Impairments {
  double loss = 0.0;     ///< P(drop) per packet.
  double dup = 0.0;      ///< P(deliver twice) per packet.
  double reorder = 0.0;  ///< P(held back past the next packet) per packet.
};

struct ReassemblyStats {
  std::int64_t packets_accepted = 0;
  std::int64_t duplicate_fragments = 0;
  std::int64_t frames_completed = 0;
  std::int64_t frames_expired = 0;  ///< Timed out incomplete — clean drops.
  std::int64_t frames_torn = 0;     ///< Complete but mis-tiled — must be 0.
};

/// Per-receiver fragment collector.  Feeds on packets (taking ownership
/// of one arena reference each), surfaces frames complete-or-never.
class Reassembler {
 public:
  Reassembler(FrameArena& arena, util::SimTimeUs timeout)
      : arena_(&arena), timeout_(timeout) {}
  ~Reassembler();
  Reassembler(const Reassembler&) = delete;
  Reassembler& operator=(const Reassembler&) = delete;

  /// Ingests one packet; the caller's reference on pkt.payload passes to
  /// the reassembler (released on duplicate / completion / expiry).
  void on_packet(util::SimTimeUs now, const Packet& pkt);

  /// Drops partial frames whose first fragment is older than the timeout.
  void expire(util::SimTimeUs now);

  /// Pops the next completed frame (completion order).  The returned
  /// descriptor carries one arena reference the caller must release or
  /// hand off.  Returns false when none is ready.
  bool pop(FrameDesc& out);

  const ReassemblyStats& stats() const noexcept { return stats_; }
  std::size_t partial_count() const noexcept { return partials_.size(); }

 private:
  struct Partial {
    util::SimTimeUs first_arrival = 0;
    util::SimTimeUs timestamp = 0;
    std::uint32_t frag_count = 0;
    std::uint32_t received = 0;
    double bits = 0.0;           ///< Sum of received fragment wire bits.
    Tier tier = Tier::kPeripheral;  ///< Most-protected tier seen.
    FrameHandle payload;         ///< One reference held while partial.
    std::vector<bool> got;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  };

  void finish(util::SimTimeUs now, std::int64_t frame_id, Partial& p);

  FrameArena* arena_;
  util::SimTimeUs timeout_;
  std::unordered_map<std::int64_t, Partial> partials_;
  std::deque<FrameDesc> ready_;
  // Recently-resolved frame ids (completed or torn): straggler duplicate
  // fragments for these must not seed a second partial — a frame
  // surfaces at most once.  Pruned on the same timeout as partials.
  std::unordered_set<std::int64_t> resolved_;
  std::deque<std::pair<util::SimTimeUs, std::int64_t>> resolved_log_;
  ReassemblyStats stats_;
};

struct TransportStats {
  std::int64_t frames_offered = 0;
  std::int64_t packets_queued = 0;
  std::int64_t packets_sent = 0;
  /// Eviction counts by tier index (peripheral-first policy).
  std::int64_t packets_evicted[kTierCount] = {0, 0, 0};
};

struct ReceiverStats {
  std::int64_t packets_delivered = 0;
  std::int64_t packets_lost = 0;
  std::int64_t packets_duped = 0;
  std::int64_t packets_reordered = 0;
};

/// The sender: packetizes frames into tiered queues and drains them
/// against the per-slot capacity budget, fanning each sent packet out to
/// every attached receiver refcount-only.
class SequencedTransport {
 public:
  /// Frames surfaced to a receiver.  The descriptor's payload reference
  /// is owned by the transport for the duration of the call — add_ref to
  /// keep it (the jitter buffer does).
  using FrameSink = std::function<void(util::SimTimeUs, const FrameDesc&)>;

  SequencedTransport(TransportConfig config, FrameArena& arena,
                     util::Rng rng);
  ~SequencedTransport();
  SequencedTransport(const SequencedTransport&) = delete;
  SequencedTransport& operator=(const SequencedTransport&) = delete;

  /// Attaches transport metrics (stream_packets_*, stream_frames_*
  /// reassembly counters, per-receiver labels).  Call before
  /// add_receiver; pass nullptr to detach.  No-op in CYCLOPS_OBS=OFF.
  void set_obs(obs::Registry* registry);

  /// Attaches a receiver; returns its index.  Impairments draw from a
  /// keyed split of the transport Rng, so receiver i's loss pattern is
  /// independent of how many other receivers exist.
  int add_receiver(Impairments impairments, FrameSink sink);

  /// Packetizes one frame into the send queues.  Takes one arena
  /// reference per fragment (the caller keeps its own reference on
  /// frame.payload).  Returns the number of fragments queued.
  int offer(const FrameDesc& frame);

  /// Drains one slot of `capacity_gbps * slot_duration` wire bits from
  /// the queues (strict tier priority, FIFO within a tier; overdrawn budget
  /// carries to the next slot as serialization debt), fans sent packets out
  /// through each receiver's impairments into its reassembler, then
  /// expires stale partials and surfaces completed frames to the sinks.
  /// Packets land at `now + slot_duration` (end-of-slot, matching the
  /// WireQueue discipline).
  void step(util::SimTimeUs now, util::SimTimeUs slot_duration,
            double capacity_gbps);

  double backlog_bits() const noexcept { return backlog_bits_; }
  std::size_t receiver_count() const noexcept { return receivers_.size(); }
  const TransportStats& stats() const noexcept { return stats_; }
  const ReceiverStats& receiver_stats(int i) const {
    return receivers_[static_cast<std::size_t>(i)]->stats;
  }
  const ReassemblyStats& reassembly_stats(int i) const {
    return receivers_[static_cast<std::size_t>(i)]->reassembler.stats();
  }
  const TransportConfig& config() const noexcept { return config_; }

 private:
  struct Receiver {
    Receiver(FrameArena& arena, util::SimTimeUs timeout, Impairments imp,
             util::Rng r, FrameSink s)
        : impairments(imp), rng(r), reassembler(arena, timeout),
          sink(std::move(s)) {}
    Impairments impairments;
    util::Rng rng;
    Reassembler reassembler;
    FrameSink sink;
    ReceiverStats stats;
    std::vector<Packet> held;  ///< Reorder stash (flushed within the slot).
    // Hoisted metric handles (null when detached / OBS=OFF).
    obs::Counter* m_delivered = nullptr;
    obs::Counter* m_lost = nullptr;
    obs::Counter* m_frames = nullptr;
  };

  void evict_over_backlog();
  /// Hands one reference on pkt.payload into the receiver path.
  void deliver(Receiver& r, util::SimTimeUs arrive, const Packet& pkt);
  void fan_out(util::SimTimeUs arrive, const Packet& pkt);

  TransportConfig config_;
  FrameArena* arena_;
  util::Rng rng_;
  std::deque<Packet> queues_[kTierCount];
  double backlog_bits_ = 0.0;      ///< Queued wire bits (pre-overhead).
  double budget_carry_bits_ = 0.0; ///< Serialization spillover (<= 0).
  std::uint64_t next_seq_ = 0;
  std::vector<std::unique_ptr<Receiver>> receivers_;
  TransportStats stats_;
  obs::Registry* registry_ = nullptr;

  // Hoisted metric handles (null when detached / OBS=OFF).
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
};

}  // namespace cyclops::stream

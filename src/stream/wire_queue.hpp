// Deadline-driven FIFO wire queue — the transmission mechanism the
// legacy net::FrameStreamer used, extracted so it has exactly one
// definition under the stream data plane.
//
// Policy (unchanged from the pre-stream FrameStreamer, and pinned by
// tests/net_test.cpp + tests/stream_abr_test.cpp):
//   * frames queue FIFO and are serialized against the per-slot
//     capacity budget `capacity_gbps * slot_duration`;
//   * DEADLINE BOUNDARY: a frame still undelivered once `now` moves
//     PAST render_time + deadline is dropped — the expiry predicate is
//     `now > render_time + deadline`, so a frame that finishes at
//     exactly the deadline instant counts as on-time and one
//     microsecond later is a drop;
//   * a delivered frame's latency is stamped at the END of the slot
//     that finished it (now + slot_duration): partial-slot completion
//     times are not modeled.
#pragma once

#include <cstdint>
#include <deque>

#include "stream/freeze_ledger.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::stream {

struct WireQueueConfig {
  /// Delivery deadline relative to render time (see DEADLINE BOUNDARY
  /// above: at the deadline is on-time, past it is a drop).
  util::SimTimeUs deadline = 22000;  ///< ~2 frame periods at 90 fps.
  /// Transmission overhead factor (protocol framing, FEC).
  double overhead = 1.05;
};

/// FIFO of frames being serialized onto the link.  Outcomes (delivery,
/// deadline drop) are recorded into the caller's FreezeLedger.
class WireQueue {
 public:
  explicit WireQueue(WireQueueConfig config, FreezeLedger& ledger)
      : config_(config), ledger_(&ledger) {}

  /// Enqueues a rendered frame of `bits` wire bits (pre-overhead).
  void offer(std::int64_t frame_id, util::SimTimeUs render_time, double bits);

  /// Advances one slot of `slot_duration`; `capacity_gbps` is the link's
  /// deliverable rate during the slot (0 when the link is down).
  void step(util::SimTimeUs now, util::SimTimeUs slot_duration,
            double capacity_gbps);

  std::size_t depth() const noexcept { return queue_.size(); }
  const WireQueueConfig& config() const noexcept { return config_; }

 private:
  struct InFlight {
    std::int64_t frame_id = 0;
    util::SimTimeUs render_time = 0;
    double bits_remaining = 0.0;
  };

  WireQueueConfig config_;
  FreezeLedger* ledger_;
  std::deque<InFlight> queue_;
};

}  // namespace cyclops::stream

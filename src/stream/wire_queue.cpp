#include "stream/wire_queue.hpp"

#include <algorithm>

namespace cyclops::stream {

void WireQueue::offer(std::int64_t frame_id, util::SimTimeUs render_time,
                      double bits) {
  ledger_->on_offered();
  queue_.push_back({frame_id, render_time, bits * config_.overhead});
}

void WireQueue::step(util::SimTimeUs now, util::SimTimeUs slot_duration,
                     double capacity_gbps) {
  // Expire frames that can no longer make their deadline.  `>` (not
  // `>=`): a frame completing at exactly render_time + deadline is
  // on-time; the first microsecond past it is a drop.
  while (!queue_.empty() &&
         now > queue_.front().render_time + config_.deadline) {
    ledger_->on_dropped();
    queue_.pop_front();
  }

  double budget_bits = capacity_gbps * 1e9 * util::us_to_s(slot_duration);
  while (budget_bits > 0.0 && !queue_.empty()) {
    InFlight& head = queue_.front();
    const double sent = std::min(budget_bits, head.bits_remaining);
    head.bits_remaining -= sent;
    budget_bits -= sent;
    if (head.bits_remaining <= 0.0) {
      ledger_->on_delivered(now + slot_duration, head.frame_id,
                            head.render_time);
      queue_.pop_front();
    }
  }
}

}  // namespace cyclops::stream

// Pose prediction to cancel tracking latency.
//
// §5.2 identifies the speed limit as (tracking period + pointing latency)
// x movement speed; the paper's proposed fix is a faster VRH-T.  An
// alternative that needs no new hardware: predict the pose at voltage-
// application time from the report history.  This module implements a
// constant-velocity Kalman filter per translation axis plus a quaternion
// rate extrapolator; bench/ablation_prediction measures how much of the
// latency wall it buys back.
#pragma once

#include <optional>

#include "geom/pose.hpp"
#include "tracking/vrh_tracker.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::tracking {

struct PredictorConfig {
  /// Process noise: white acceleration (m/s^2, stddev).
  double accel_sigma = 2.0;
  /// Measurement noise of the reported position (m, per axis).
  double position_sigma = 0.3e-3;
  /// Cap on how far ahead extrapolation is trusted.
  double max_horizon_ms = 40.0;
  /// Blend factor for the angular-rate estimate (exponential smoothing).
  double rate_smoothing = 0.5;
};

/// Per-axis constant-velocity Kalman filter.
class ScalarCvKalman {
 public:
  explicit ScalarCvKalman(const PredictorConfig& config)
      : config_(config) {}

  void update(double t_s, double measurement);
  /// Predicted value at t_s (extrapolates from the last update).
  double predict(double t_s) const;
  bool initialized() const noexcept { return initialized_; }
  double velocity() const noexcept { return v_; }

 private:
  PredictorConfig config_;
  bool initialized_ = false;
  double last_t_ = 0.0;
  double x_ = 0.0, v_ = 0.0;
  // Covariance [ [p00 p01], [p01 p11] ].
  double p00_ = 1.0, p01_ = 0.0, p11_ = 1.0;
};

/// Full-pose predictor: CV Kalman on x/y/z, smoothed angular-velocity
/// extrapolation on orientation.
class PosePredictor {
 public:
  explicit PosePredictor(PredictorConfig config = {});

  /// Feeds one report (uses capture_time and the reported pose).
  void update(const PoseReport& report);

  /// Pose predicted at `when`; nullopt until two reports have arrived.
  std::optional<geom::Pose> predict(util::SimTimeUs when) const;

  void reset();

 private:
  PredictorConfig config_;
  ScalarCvKalman x_, y_, z_;
  bool have_orientation_ = false;
  geom::Quat last_orientation_;
  util::SimTimeUs last_time_ = 0;
  geom::Vec3 angular_rate_{};  ///< Smoothed body rate (rad/s).
  int updates_ = 0;
};

}  // namespace cyclops::tracking

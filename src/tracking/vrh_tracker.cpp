#include "tracking/vrh_tracker.hpp"

#include "geom/mat3.hpp"

namespace cyclops::tracking {

VrhTracker::VrhTracker(TrackerConfig config, geom::Pose vr_from_world,
                       geom::Pose x_from_rig, util::Rng rng)
    : config_(config),
      vr_from_world_(std::move(vr_from_world)),
      x_from_rig_(std::move(x_from_rig)),
      rng_(rng) {}

util::SimTimeUs VrhTracker::next_capture_time(util::SimTimeUs now) {
  if (!scheduled_ || next_capture_ < now) {
    double gap_ms;
    if (rng_.uniform() < config_.outlier_prob) {
      gap_ms = config_.outlier_period_ms + rng_.uniform(-0.5, 0.5);
    } else {
      gap_ms = config_.period_ms +
               rng_.uniform(-config_.period_jitter_ms, config_.period_jitter_ms);
    }
    next_capture_ = now + util::us_from_ms(gap_ms);
    scheduled_ = true;
  }
  return next_capture_;
}

geom::Pose VrhTracker::ideal_report(const geom::Pose& rig_world_pose) const {
  return vr_from_world_ * rig_world_pose * x_from_rig_;
}

PoseReport VrhTracker::report(util::SimTimeUs capture_time,
                              const geom::Pose& rig_world_pose,
                              const geom::Pose& lagged_rig_pose) {
  PoseReport out;
  out.capture_time = capture_time;
  out.delivery_time =
      capture_time + util::us_from_ms(config_.report_latency_ms);

  // Orientation is current (gyro); position is stale (fused translation).
  const geom::Pose effective{rig_world_pose.rotation(),
                             lagged_rig_pose.translation()};
  const geom::Pose ideal = ideal_report(effective);
  // Position noise: independent per-axis Gaussian.
  const geom::Vec3 dt{rng_.normal(0.0, config_.position_noise_m),
                      rng_.normal(0.0, config_.position_noise_m),
                      rng_.normal(0.0, config_.position_noise_m)};
  // Orientation noise: small random rotation.
  const geom::Vec3 axis =
      geom::Vec3{rng_.normal(), rng_.normal(), rng_.normal()}.normalized();
  const double angle = rng_.normal(0.0, config_.orientation_noise_rad);
  const geom::Mat3 dr = geom::Mat3::rotation(axis, angle);

  out.pose = geom::Pose{dr * ideal.rotation(), ideal.translation() + dt};
  out.lost = config_.report_loss_prob > 0.0 &&
             rng_.uniform() < config_.report_loss_prob;
  scheduled_ = false;  // consume the scheduled slot
  return out;
}

}  // namespace cyclops::tracking

#include "tracking/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "geom/mat3.hpp"

namespace cyclops::tracking {

void ScalarCvKalman::update(double t_s, double measurement) {
  if (!initialized_) {
    x_ = measurement;
    v_ = 0.0;
    p00_ = config_.position_sigma * config_.position_sigma;
    p01_ = 0.0;
    p11_ = 1.0;  // wide-open velocity prior
    last_t_ = t_s;
    initialized_ = true;
    return;
  }
  const double dt = std::max(t_s - last_t_, 1e-6);
  last_t_ = t_s;

  // Predict.
  x_ += v_ * dt;
  const double q = config_.accel_sigma * config_.accel_sigma;
  // CV-model process noise (white acceleration).
  const double q00 = q * dt * dt * dt * dt / 4.0;
  const double q01 = q * dt * dt * dt / 2.0;
  const double q11 = q * dt * dt;
  const double p00 = p00_ + 2.0 * p01_ * dt + p11_ * dt * dt + q00;
  const double p01 = p01_ + p11_ * dt + q01;
  const double p11 = p11_ + q11;

  // Update with the position measurement.
  const double r = config_.position_sigma * config_.position_sigma;
  const double s = p00 + r;
  const double k0 = p00 / s;
  const double k1 = p01 / s;
  const double innovation = measurement - x_;
  x_ += k0 * innovation;
  v_ += k1 * innovation;
  p00_ = (1.0 - k0) * p00;
  p01_ = (1.0 - k0) * p01;
  p11_ = p11 - k1 * p01;
}

double ScalarCvKalman::predict(double t_s) const {
  if (!initialized_) return x_;
  return x_ + v_ * (t_s - last_t_);
}

PosePredictor::PosePredictor(PredictorConfig config)
    : config_(config), x_(config), y_(config), z_(config) {}

void PosePredictor::reset() { *this = PosePredictor(config_); }

void PosePredictor::update(const PoseReport& report) {
  const double t_s = util::us_to_s(report.capture_time);
  const geom::Vec3& p = report.pose.translation();
  x_.update(t_s, p.x);
  y_.update(t_s, p.y);
  z_.update(t_s, p.z);

  const geom::Quat q = report.pose.rotation_quat();
  if (have_orientation_) {
    const double dt = util::us_to_s(report.capture_time - last_time_);
    if (dt > 1e-6) {
      // Relative rotation since the last report -> instantaneous rate.
      const geom::Quat dq = last_orientation_.conjugate() * q;
      const geom::Vec3 rate =
          geom::rotation_vector(dq.to_matrix()) / dt;
      const double a = config_.rate_smoothing;
      angular_rate_ = angular_rate_ * (1.0 - a) + rate * a;
    }
  }
  last_orientation_ = q;
  last_time_ = report.capture_time;
  have_orientation_ = true;
  ++updates_;
}

std::optional<geom::Pose> PosePredictor::predict(util::SimTimeUs when) const {
  if (updates_ < 2) return std::nullopt;
  const double horizon_s = std::clamp(
      util::us_to_s(when - last_time_), 0.0, config_.max_horizon_ms * 1e-3);
  const double t_s = util::us_to_s(last_time_) + horizon_s;

  const geom::Vec3 position{x_.predict(t_s), y_.predict(t_s),
                            z_.predict(t_s)};
  const double angle = angular_rate_.norm() * horizon_s;
  geom::Quat orientation = last_orientation_;
  if (angle > 1e-12) {
    // Body-frame rate: compose on the right.
    orientation =
        orientation * geom::Quat::from_axis_angle(angular_rate_, angle);
  }
  return geom::Pose::from_quat(orientation.normalized(), position);
}

}  // namespace cyclops::tracking

// VRH built-in tracking system (VRH-T) simulator.
//
// Models the Oculus Rift S inside-out tracker as the paper characterizes it
// (§3, §5.2):
//
//  * Reports arrive every 12-13 ms, with ~0.7 % of gaps stretching to
//    14-15 ms.
//  * The reported pose is the pose of *some unknown point X inside the
//    VRH*, expressed in an *unknown coordinate space* (VR-space).  Both
//    indirections are modeled explicitly — vr_from_world and x_from_rig
//    are hidden from the TP learner, which must absorb them into the
//    Stage-2 mapping parameters.
//  * The report is noisy: over 30 stationary minutes the paper saw the
//    location wander by up to 1.79 mm and the orientation by 0.41 mrad;
//    defaults below give that spread for per-report Gaussian noise.
#pragma once

#include "geom/pose.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace cyclops::tracking {

struct TrackerConfig {
  double period_ms = 12.5;        ///< Nominal report period.
  double period_jitter_ms = 0.5;  ///< Uniform jitter around the period.
  double outlier_prob = 0.007;    ///< Probability of a 14-15 ms gap.
  double outlier_period_ms = 14.5;
  double position_noise_m = 0.21e-3;   ///< Per-axis sigma.
  double orientation_noise_rad = 0.048e-3;  ///< Rotation-angle sigma.
  /// One-way control-channel latency for delivering the report (<1 ms).
  double report_latency_ms = 0.5;
  /// Probability that the RF control channel drops a report entirely
  /// (§3 envisions e.g. a macro-cellular channel; real radios lose
  /// packets).  A lost report simply skips one realignment.
  double report_loss_prob = 0.0;
  /// Effective staleness of the reported *position* during motion:
  /// inside-out position tracking (double-integrated IMU fused with
  /// camera frames) lags; gyro-derived *orientation* does not.  This
  /// asymmetry is why linear motion stresses the link more per unit of
  /// tolerance than angular motion does (§5.2's "a custom VRH-T with much
  /// higher tracking frequency would improve Cyclops significantly").
  double position_lag_ms = 8.0;
};

/// One VRH-T report: the pose of point X in VR-space at capture time,
/// delivered to the controller at `delivery_time`.
struct PoseReport {
  util::SimTimeUs capture_time = 0;
  util::SimTimeUs delivery_time = 0;
  geom::Pose pose;  ///< Psi: X's pose in VR-space.
  /// True when the control channel dropped this report — the controller
  /// never sees it and holds the previous voltages.
  bool lost = false;
};

class VrhTracker {
 public:
  /// `vr_from_world`: the hidden VR-space frame (world -> VR).
  /// `x_from_rig`: the hidden pose of point X in the RX-rig frame.
  VrhTracker(TrackerConfig config, geom::Pose vr_from_world,
             geom::Pose x_from_rig, util::Rng rng);

  /// Time of the next report capture at or after `now`.
  util::SimTimeUs next_capture_time(util::SimTimeUs now);

  /// Clears any scheduled capture.  Call when simulation time restarts
  /// (each run_link_simulation begins at t = 0).
  void reset_schedule() noexcept { scheduled_ = false; }

  /// Produces the (noisy) report for the rig's true world pose.  The
  /// position-lag model needs the rig pose `position_lag_ms` ago;
  /// `lagged_rig_pose` supplies it (pass the current pose when the rig is
  /// static or lag is irrelevant).
  PoseReport report(util::SimTimeUs capture_time,
                    const geom::Pose& rig_world_pose,
                    const geom::Pose& lagged_rig_pose);

  /// Static-rig convenience: no lag effect.
  PoseReport report(util::SimTimeUs capture_time,
                    const geom::Pose& rig_world_pose) {
    return report(capture_time, rig_world_pose, rig_world_pose);
  }

  /// Noise-free report — used only by evaluation code to compute errors.
  geom::Pose ideal_report(const geom::Pose& rig_world_pose) const;

  const TrackerConfig& config() const noexcept { return config_; }

 private:
  TrackerConfig config_;
  geom::Pose vr_from_world_;
  geom::Pose x_from_rig_;
  util::Rng rng_;
  util::SimTimeUs next_capture_ = 0;
  bool scheduled_ = false;
};

}  // namespace cyclops::tracking
